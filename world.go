package querygraph

import "github.com/querygraph/querygraph/internal/synth"

// DefaultWorldConfig returns the benchmark world used by the experiments:
// large enough to show the paper's effects, small enough for a laptop run.
// One config (and in particular one Seed) reproduces one world bit-for-bit.
func DefaultWorldConfig() WorldConfig { return synth.Default() }

// GenerateWorld deterministically generates a synthetic benchmark world —
// a Wikipedia-shaped knowledge base, an ImageCLEF-shaped document
// collection and a query benchmark. Feed it to Build to obtain a serving
// Client.
func GenerateWorld(cfg WorldConfig) (*World, error) { return synth.Generate(cfg) }
