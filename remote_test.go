package querygraph

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/querygraph/querygraph/internal/rpc"
)

// startShardFleet boots one rpc.Server per shard file in dir on loopback
// listeners and writes the matching topology file. mut may adjust the
// topology (policy, timeouts, addresses) before it is written. The
// servers shut down in t.Cleanup (idempotently, so tests may also close
// them mid-test to inject faults).
func startShardFleet(t *testing.T, dir string, shards int, mut func(*Topology)) (string, []*rpc.Server) {
	t.Helper()
	topo := Topology{Version: 1}
	servers := make([]*rpc.Server, 0, shards)
	for s := 0; s < shards; s++ {
		srv, err := rpc.LoadServerFile(filepath.Join(dir, fmt.Sprintf("shard-%03d.qgs", s)))
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = srv.Serve(context.Background(), ln)
		}()
		t.Cleanup(func() {
			_ = srv.Close()
			<-done
		})
		servers = append(servers, srv)
		topo.Shards = append(topo.Shards, TopologyShard{ID: s, Addrs: []string{ln.Addr().String()}})
	}
	if mut != nil {
		mut(&topo)
	}
	return writeTopology(t, dir, topo), servers
}

func writeTopology(t *testing.T, dir string, topo Topology) string {
	t.Helper()
	blob, err := json.Marshal(topo)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "topology.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// shardedWorld saves the reference client as a 2-shard fleet directory.
func shardedWorld(t *testing.T) (*Client, string) {
	t.Helper()
	ref := conformanceWorld(t)
	t.Cleanup(func() { _ = ref.Close() })
	dir := t.TempDir()
	if err := ref.SaveShards(dir, 2); err != nil {
		t.Fatal(err)
	}
	return ref, dir
}

// fakeShard is a protocol endpoint that answers OpHealthz with the given
// identity and hangs forever on every other op — the canonical hanging
// shard. Release the returned channel-closer to unblock its goroutines.
func fakeShard(t *testing.T, ident rpc.Identity) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hang := make(chan struct{})
	t.Cleanup(func() {
		close(hang)
		_ = ln.Close()
	})
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				br := bufio.NewReader(c)
				for {
					payload, err := rpc.ReadFrame(br)
					if err != nil {
						return
					}
					r := rpc.NewReader(payload)
					r.Byte() // version
					if op := rpc.Op(r.Byte()); op != rpc.OpHealthz {
						<-hang // never answer: the caller's deadline must fire
						return
					}
					if err := rpc.WriteFrame(c, rpc.AppendIdentity(rpc.AppendOKHeader(nil), ident)); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestReadTopologyValidation pins the topology schema errors onto
// ErrBadTopology.
func TestReadTopologyValidation(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name string
		blob string
	}{
		{"bad version", `{"version":2,"shards":[{"id":0,"addrs":["a:1"]}]}`},
		{"no shards", `{"version":1,"shards":[]}`},
		{"duplicate id", `{"version":1,"shards":[{"id":0,"addrs":["a:1"]},{"id":0,"addrs":["b:1"]}]}`},
		{"id out of range", `{"version":1,"shards":[{"id":5,"addrs":["a:1"]}]}`},
		{"no addrs", `{"version":1,"shards":[{"id":0,"addrs":[]}]}`},
		{"empty addr", `{"version":1,"shards":[{"id":0,"addrs":[""]}]}`},
		{"unknown policy", `{"version":1,"policy":"shrug","shards":[{"id":0,"addrs":["a:1"]}]}`},
		{"unknown field", `{"version":1,"shards":[{"id":0,"addrs":["a:1"]}],"wat":true}`},
		{"negative timeout", `{"version":1,"timeout_ms":-1,"shards":[{"id":0,"addrs":["a:1"]}]}`},
		{"not json", `[1,2,3]`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, "topo.json")
			if err := os.WriteFile(path, []byte(tc.blob), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := ReadTopology(path); !errors.Is(err, ErrBadTopology) {
				t.Fatalf("err = %v, want ErrBadTopology", err)
			}
		})
	}
	if _, err := ReadTopology(filepath.Join(dir, "missing.json")); !errors.Is(err, ErrBadTopology) {
		t.Fatalf("missing file err = %v, want ErrBadTopology", err)
	}

	// Defaults land after a valid read.
	path := filepath.Join(dir, "ok.json")
	if err := os.WriteFile(path, []byte(`{"version":1,"shards":[{"id":1,"addrs":["b:1"]},{"id":0,"addrs":["a:1"]}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	topo, err := ReadTopology(path)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Policy != "fail" || topo.TimeoutMS != 2000 || topo.Retries != 1 || topo.MinShards != 1 {
		t.Errorf("defaults = %+v", topo)
	}
	if topo.Shards[0].ID != 0 || topo.Shards[1].ID != 1 {
		t.Errorf("shards not reordered by id: %+v", topo.Shards)
	}
}

// TestOpenTopologyHandshakeMismatch: a fleet whose servers disagree with
// their topology slots (here: the two shard servers swapped) must be
// refused with ErrBadTopology before any query is served.
func TestOpenTopologyHandshakeMismatch(t *testing.T) {
	_, dir := shardedWorld(t)
	topoPath, _ := startShardFleet(t, dir, 2, func(topo *Topology) {
		topo.Shards[0].Addrs, topo.Shards[1].Addrs = topo.Shards[1].Addrs, topo.Shards[0].Addrs
	})
	if _, err := OpenTopology(topoPath); !errors.Is(err, ErrBadTopology) {
		t.Fatalf("swapped fleet err = %v, want ErrBadTopology", err)
	}
}

// TestRemoteHangingShardDeadline: shard 1 accepts the handshake, then
// hangs on every query op. Under the fail policy the per-shard deadline
// must fire, the failure must classify as shard_unavailable, and the
// deadline hit must be visible in metrics.
func TestRemoteHangingShardDeadline(t *testing.T) {
	ref, dir := shardedWorld(t)
	srv1, err := rpc.LoadServerFile(filepath.Join(dir, "shard-001.qgs"))
	if err != nil {
		t.Fatal(err)
	}
	hangAddr := fakeShard(t, srv1.Identity())

	m := NewMetricsObserver()
	topoPath, _ := startShardFleet(t, dir, 2, func(topo *Topology) {
		topo.Shards[1].Addrs = []string{hangAddr}
		topo.TimeoutMS = 150
		topo.Retries = 0
	})
	be, err := OpenBackend(topoPath, WithObserver(m))
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()

	start := time.Now()
	_, err = be.Search(context.Background(), ref.Queries()[0].Keywords, 5)
	if !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("err = %v, want ErrShardUnavailable", err)
	}
	if got := ErrorClass(err); got != "shard_unavailable" {
		t.Errorf("ErrorClass = %q, want shard_unavailable", got)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline took %v to fire with a 150ms per-shard timeout", elapsed)
	}
	s := m.Snapshot()
	if s.RPCDeadlines == 0 {
		t.Errorf("metrics snapshot = %+v, want RPCDeadlines > 0", s)
	}
	if s.RPCErrors == 0 {
		t.Errorf("metrics snapshot = %+v, want RPCErrors > 0", s)
	}
}

// TestRemoteDegradePolicy: with policy "degrade" a dead shard drops out
// and the survivors' merged ranking is served alongside ErrPartialResult;
// the partial response is counted in metrics. With a dead fleet the
// quorum fails even under degrade.
func TestRemoteDegradePolicy(t *testing.T) {
	ref, dir := shardedWorld(t)
	m := NewMetricsObserver()
	topoPath, servers := startShardFleet(t, dir, 2, func(topo *Topology) {
		topo.Policy = "degrade"
		topo.TimeoutMS = 500
		topo.Retries = 0
	})
	be, err := OpenBackend(topoPath, WithObserver(m))
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	ctx := context.Background()
	kw := ref.Queries()[0].Keywords

	// Healthy fleet first: bit-identical, no partial flag.
	want, err := ref.Search(ctx, kw, MaxRank)
	if err != nil {
		t.Fatal(err)
	}
	got, err := be.Search(ctx, kw, MaxRank)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("healthy fleet diverges:\n got %v\nwant %v", got, want)
	}

	// Kill shard 1 mid-stream: the pooled connection dies, the retryless
	// redial is refused, and the degrade policy serves shard 0's ranking.
	if err := servers[1].Close(); err != nil {
		t.Fatal(err)
	}
	got, err = be.Search(ctx, kw, MaxRank)
	if !errors.Is(err, ErrPartialResult) {
		t.Fatalf("degraded err = %v, want ErrPartialResult", err)
	}
	if len(got) == 0 {
		t.Fatal("degraded response carries no results — degrade must serve the survivors")
	}
	if got := ErrorClass(err); got != "partial_result" {
		t.Errorf("ErrorClass = %q, want partial_result", got)
	}
	if s := m.Snapshot(); s.PartialResults == 0 {
		t.Errorf("metrics snapshot = %+v, want PartialResults > 0", s)
	}

	// Batch paths degrade the same way, keeping their results.
	rss, err := be.SearchAll(ctx, []string{kw, kw}, 5, BatchOptions{})
	if !errors.Is(err, ErrPartialResult) {
		t.Fatalf("degraded batch err = %v, want ErrPartialResult", err)
	}
	if len(rss) != 2 || rss[0] == nil || rss[1] == nil {
		t.Fatalf("degraded batch results = %v", rss)
	}

	// Kill the last shard: the quorum (min_shards 1) is gone.
	if err := servers[0].Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := be.Search(ctx, kw, 5); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("dead fleet err = %v, want ErrShardUnavailable", err)
	}
}

// TestRemoteFailPolicyMidStreamDeath: the default fail policy turns a
// shard dying between requests into ErrShardUnavailable, no partial
// results.
func TestRemoteFailPolicyMidStreamDeath(t *testing.T) {
	ref, dir := shardedWorld(t)
	topoPath, servers := startShardFleet(t, dir, 2, func(topo *Topology) {
		topo.TimeoutMS = 500
		topo.Retries = 1
		topo.RetryBackoffMS = 1
	})
	be, err := OpenBackend(topoPath)
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	ctx := context.Background()
	kw := ref.Queries()[0].Keywords

	if _, err := be.Search(ctx, kw, 5); err != nil {
		t.Fatal(err)
	}
	if err := servers[1].Close(); err != nil {
		t.Fatal(err)
	}
	rs, err := be.Search(ctx, kw, 5)
	if !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("err = %v, want ErrShardUnavailable", err)
	}
	if rs != nil {
		t.Errorf("fail policy returned results %v alongside the error", rs)
	}
}

// TestRemoteRetryFailover: a shard listed with a dead primary address and
// a live replica must fail over within one logical call — same results,
// retries visible in metrics.
func TestRemoteRetryFailover(t *testing.T) {
	ref, dir := shardedWorld(t)

	// A listener that is immediately closed: its port refuses connections.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	_ = dead.Close()

	m := NewMetricsObserver()
	topoPath, _ := startShardFleet(t, dir, 2, func(topo *Topology) {
		topo.Shards[1].Addrs = append([]string{deadAddr}, topo.Shards[1].Addrs...)
		topo.Retries = 1
		topo.RetryBackoffMS = 1
	})
	be, err := OpenBackend(topoPath, WithObserver(m))
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	ctx := context.Background()

	for _, q := range ref.Queries()[:3] {
		want, err := ref.Search(ctx, q.Keywords, MaxRank)
		if err != nil {
			t.Fatal(err)
		}
		got, err := be.Search(ctx, q.Keywords, MaxRank)
		if err != nil {
			t.Fatalf("Search %q through failover: %v", q.Keywords, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("failover ranking diverges for %q:\n got %v\nwant %v", q.Keywords, got, want)
		}
	}
	if s := m.Snapshot(); s.RPCRetries == 0 {
		t.Errorf("metrics snapshot = %+v, want RPCRetries > 0", s)
	}
}

// TestRemoteHedgedRequests: shard 1's primary hangs on every query op;
// with hedging enabled the replica answers and the request succeeds
// without waiting out the primary's deadline.
func TestRemoteHedgedRequests(t *testing.T) {
	ref, dir := shardedWorld(t)
	srv1, err := rpc.LoadServerFile(filepath.Join(dir, "shard-001.qgs"))
	if err != nil {
		t.Fatal(err)
	}
	hangAddr := fakeShard(t, srv1.Identity())

	m := NewMetricsObserver()
	topoPath, _ := startShardFleet(t, dir, 2, func(topo *Topology) {
		topo.Shards[1].Addrs = append([]string{hangAddr}, topo.Shards[1].Addrs...)
		topo.TimeoutMS = 500
		topo.Retries = 0
		topo.HedgeAfterMS = 20
	})
	be, err := OpenBackend(topoPath, WithObserver(m))
	if err != nil {
		t.Fatal(err)
	}
	kw := ref.Queries()[0].Keywords
	want, err := ref.Search(context.Background(), kw, MaxRank)
	if err != nil {
		t.Fatal(err)
	}
	got, err := be.Search(context.Background(), kw, MaxRank)
	if err != nil {
		t.Fatalf("hedged search: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("hedged ranking diverges:\n got %v\nwant %v", got, want)
	}
	if s := m.Snapshot(); s.RPCHedges == 0 {
		t.Errorf("metrics snapshot = %+v, want RPCHedges > 0", s)
	}
	// Close drains the in-flight hung primaries (bounded by their 500ms
	// deadline) — it must not strand them or panic the WaitGroup.
	if err := be.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRemoteCallerDeadlineAborts: the caller's already-expired context
// must surface as its own error, not as a shard failure.
func TestRemoteCallerDeadlineAborts(t *testing.T) {
	ref, dir := shardedWorld(t)
	topoPath, _ := startShardFleet(t, dir, 2, nil)
	be, err := OpenBackend(topoPath)
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := be.Search(ctx, ref.Queries()[0].Keywords, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRemoteInvalidQueryAborts: a parse failure on the shards maps back
// onto ErrInvalidQuery — an application error, never retried and never a
// shard failure.
func TestRemoteInvalidQueryAborts(t *testing.T) {
	_, dir := shardedWorld(t)
	m := NewMetricsObserver()
	topoPath, _ := startShardFleet(t, dir, 2, nil)
	be, err := OpenBackend(topoPath, WithObserver(m))
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	if _, err := be.Search(context.Background(), "#combine(", 5); !errors.Is(err, ErrInvalidQuery) {
		t.Fatalf("err = %v, want ErrInvalidQuery", err)
	}
}

// TestRemoteCloseRacesFanouts hammers the coordinator from many
// goroutines while Close lands mid-storm, then asserts a full drain: no
// leaked goroutines (hedges, fan-out workers, server conns) and every
// call either succeeded, degraded, or failed ErrClosed. Run under -race.
func TestRemoteCloseRacesFanouts(t *testing.T) {
	ref, dir := shardedWorld(t)
	baseline := runtime.NumGoroutine()
	topoPath, servers := startShardFleet(t, dir, 2, func(topo *Topology) {
		topo.TimeoutMS = 1000
		topo.HedgeAfterMS = 5 // exercise the hedge path in the storm
		topo.Shards[0].Addrs = append(topo.Shards[0].Addrs, topo.Shards[0].Addrs[0])
		topo.Shards[1].Addrs = append(topo.Shards[1].Addrs, topo.Shards[1].Addrs[0])
	})
	be, err := OpenTopology(topoPath)
	if err != nil {
		t.Fatal(err)
	}
	kw := ref.Queries()[0].Keywords
	ctx := context.Background()

	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				_, err := be.Search(ctx, kw, 5)
				if err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("Search during Close: %v", err)
					return
				}
				if _, err := be.SearchAll(ctx, []string{kw, kw}, 5, BatchOptions{Workers: 2}); err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("SearchAll during Close: %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		time.Sleep(5 * time.Millisecond)
		if err := be.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	close(start)
	wg.Wait()
	assertClosed(t, be)

	// Shut the servers down too, then require the goroutine count to
	// settle back to the baseline: nothing may leak from either end.
	for _, srv := range servers {
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked after drain: %d > baseline %d\n%s", runtime.NumGoroutine(), baseline, buf[:n])
}

// TestRemoteClosedAccessors pins the post-Close accessor contract shared
// with the Pool: zero values, never a hang or panic.
func TestRemoteClosedAccessors(t *testing.T) {
	_, dir := shardedWorld(t)
	topoPath, _ := startShardFleet(t, dir, 2, nil)
	remote, err := OpenTopology(topoPath)
	if err != nil {
		t.Fatal(err)
	}
	if n := remote.NumShards(); n != 2 {
		t.Fatalf("NumShards = %d, want 2", n)
	}
	if err := remote.Close(); err != nil {
		t.Fatal(err)
	}
	if err := remote.Close(); err != nil {
		t.Fatalf("second Close: %v (want nil — Close is idempotent)", err)
	}
	if n := remote.NumShards(); n != 0 {
		t.Errorf("NumShards after Close = %d, want 0", n)
	}
	if st := remote.Stats(); st != (Stats{}) {
		t.Errorf("Stats after Close = %+v, want zero", st)
	}
	if cs := remote.CacheStats(); cs != (CacheStats{}) {
		t.Errorf("CacheStats after Close = %+v, want zero", cs)
	}
	if title := remote.Title(1); title != "" {
		t.Errorf("Title after Close = %q, want empty", title)
	}
	if ents := remote.Link("x"); ents != nil {
		t.Errorf("Link after Close = %v, want nil", ents)
	}
}
