package querygraph

import "github.com/querygraph/querygraph/internal/report"

// The Report* helpers render an Analysis (and the ablation rows) as the
// text tables cmd/qbench prints: every measured value side by side with
// the paper's reported number.

// ReportAll renders every table and figure plus the ablation comparison.
func ReportAll(a *Analysis, ablation []AblationRow) string { return report.All(a, ablation) }

// ReportTable2 renders the ground-truth precision summaries (Table 2).
func ReportTable2(a *Analysis) string { return report.Table2(a) }

// ReportTable3 renders the query-graph component statistics (Table 3).
func ReportTable3(a *Analysis) string { return report.Table3(a) }

// ReportTable4 renders precision per cycle-length configuration (Table 4).
func ReportTable4(a *Analysis) string { return report.Table4(a) }

// ReportFig5 renders average cycle contribution per length (Figure 5).
func ReportFig5(a *Analysis) string { return report.Fig5(a) }

// ReportFig6 renders average cycles per query per length (Figure 6).
func ReportFig6(a *Analysis) string { return report.Fig6(a) }

// ReportFig7a renders average category ratio per length (Figure 7a).
func ReportFig7a(a *Analysis) string { return report.Fig7a(a) }

// ReportFig7b renders average extra-edge density per length (Figure 7b).
func ReportFig7b(a *Analysis) string { return report.Fig7b(a) }

// ReportFig9 renders the density-vs-contribution trend (Figure 9).
func ReportFig9(a *Analysis) string { return report.Fig9(a) }

// ReportText3 renders the standalone Section 3 structural numbers.
func ReportText3(a *Analysis) string { return report.Text3(a) }

// ReportAblation renders the expander-strategy comparison.
func ReportAblation(rows []AblationRow) string { return report.Ablation(rows) }
