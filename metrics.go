package querygraph

import (
	"fmt"
	"io"
	"sync/atomic"

	"github.com/querygraph/querygraph/internal/hist"
)

// numErrorClasses sizes the per-class counter arrays; the fixed-size
// metricClasses array below keeps it coupled to the label list at compile
// time (growing ErrorClass's taxonomy without bumping this fails to
// build, instead of indexing out of range at serve time).
const numErrorClasses = 14

// metricClasses is the closed label set ErrorClass can produce (minus the
// empty success class), so the per-class counters are fixed-size atomics
// instead of a locked map.
var metricClasses = [numErrorClasses]string{
	"timeout", "canceled", "closed", "invalid_query", "invalid_options",
	"bad_manifest", "bad_snapshot", "no_benchmark",
	"bad_topology", "shard_unavailable", "partial_result",
	"read_only", "delta_full", "internal",
}

func classIndex(class string) int {
	for i, c := range metricClasses {
		if c == class {
			return i
		}
	}
	return numErrorClasses - 1 // unknown labels count as internal
}

// opCounters aggregates one operation's request counters.
type opCounters struct {
	total     atomic.Uint64
	durNanos  atomic.Int64
	errors    [numErrorClasses]atomic.Uint64 // indexed by metricClasses
	errsTotal atomic.Uint64
}

func (c *opCounters) observe(durNanos int64, errClass string) {
	c.total.Add(1)
	c.durNanos.Add(durNanos)
	if errClass != "" {
		c.errors[classIndex(errClass)].Add(1)
		c.errsTotal.Add(1)
	}
}

// MetricsObserver is the built-in Observer: lock-free counters over every
// hook, rendered in Prometheus text exposition format by WritePrometheus
// (cmd/qserve serves it at GET /v1/metrics). One instance may be attached
// to several backends; the counters then aggregate across them. The zero
// value is ready to use.
type MetricsObserver struct {
	search, expand, batch, reload, ingest, compact opCounters

	// ingestedDocs counts documents accepted by successful Ingest calls;
	// deltaDocs gauges the delta segment's current document count (set by
	// every ingest, reset to 0 by a successful compaction); compactedDocs
	// counts documents folded into new generations.
	ingestedDocs  atomic.Uint64
	deltaDocs     atomic.Uint64
	compactedDocs atomic.Uint64

	// cache[CacheOutcome] counts successful single-query expansions by
	// how the expansion cache served them. Failed requests are excluded:
	// a fast failure (dead context, closed backend, invalid options)
	// never reaches the cache but carries the CacheBypass zero value,
	// which would otherwise masquerade as "caching disabled".
	cache [4]atomic.Uint64

	// batchItems sums BatchObservation.Size across batches, so
	// items/batch ratios fall out of two counters.
	batchItems atomic.Uint64

	// generation tracks the most recently observed reload generation
	// (a gauge; 0 until the first reload).
	generation atomic.Uint64

	// rpc[rpcOpIndex] counts the remote coordinator's per-shard RPC
	// attempts by protocol op; retries, hedges and deadline hits are the
	// fleet-health counters of the distributed serving path. Partials
	// counts requests answered degraded (class "partial_result" on the
	// search/batch hooks).
	rpc          [numRPCOps]opCounters
	rpcRetries   atomic.Uint64
	rpcHedges    atomic.Uint64
	rpcDeadlines atomic.Uint64
	partials     atomic.Uint64

	// Latency histograms for the three hot paths. The summary families
	// above give sums and counts; these give the full distribution as
	// Prometheus cumulative buckets, backed by internal/hist's log-linear
	// layout so recording stays a couple of atomic adds. rpcHist pools all
	// protocol ops into one family: per-op attempt counts already exist
	// above, and the attempt-latency distribution is dominated by plan/topk
	// fan-out anyway.
	searchHist, expandHist, rpcHist, compactHist hist.Atomic
}

// numRPCOps sizes the per-op RPC counter array; rpcOpNames keeps it
// coupled to the label list at compile time like metricClasses.
const numRPCOps = 8

// rpcOpNames is the closed op label set of the shard protocol
// (internal/rpc), in wire order.
var rpcOpNames = [numRPCOps]string{
	"healthz", "plan", "topk", "expand", "stats", "queries", "link", "title",
}

func rpcOpIndex(op string) int {
	for i, o := range rpcOpNames {
		if o == op {
			return i
		}
	}
	return 0 // unknown ops count as healthz (cannot happen for in-tree callers)
}

// NewMetricsObserver returns a fresh, zeroed metrics observer.
func NewMetricsObserver() *MetricsObserver { return &MetricsObserver{} }

var (
	_ Observer     = (*MetricsObserver)(nil)
	_ RPCObserver  = (*MetricsObserver)(nil)
	_ LiveObserver = (*MetricsObserver)(nil)
)

// ObserveSearch implements Observer.
func (m *MetricsObserver) ObserveSearch(o SearchObservation) {
	m.search.observe(int64(o.Duration), o.Err)
	m.searchHist.Record(o.Duration)
	if o.Err == "partial_result" {
		m.partials.Add(1)
	}
}

// ObserveExpand implements Observer.
func (m *MetricsObserver) ObserveExpand(o ExpandObservation) {
	m.expand.observe(int64(o.Duration), o.Err)
	m.expandHist.Record(o.Duration)
	if o.Err == "" && o.Cache <= CacheDeduped {
		m.cache[o.Cache].Add(1)
	}
}

// ObserveBatch implements Observer.
func (m *MetricsObserver) ObserveBatch(o BatchObservation) {
	m.batch.observe(int64(o.Duration), o.Err)
	m.batchItems.Add(uint64(o.Size))
	if o.Err == "partial_result" {
		m.partials.Add(1)
	}
}

// ObserveRPC implements RPCObserver: per-shard RPC attempts from the
// remote coordinator.
func (m *MetricsObserver) ObserveRPC(o RPCObservation) {
	m.rpc[rpcOpIndex(o.Op)].observe(int64(o.Duration), o.Err)
	m.rpcHist.Record(o.Duration)
	if o.Attempt > 0 {
		m.rpcRetries.Add(1)
	}
	if o.Hedged {
		m.rpcHedges.Add(1)
	}
	if o.DeadlineHit {
		m.rpcDeadlines.Add(1)
	}
}

// ObserveReload implements Observer.
func (m *MetricsObserver) ObserveReload(o ReloadObservation) {
	m.reload.observe(int64(o.Duration), o.Err)
	m.generation.Store(o.Generation)
}

// ObserveIngest implements LiveObserver: Backend.Ingest calls.
func (m *MetricsObserver) ObserveIngest(o IngestObservation) {
	m.ingest.observe(int64(o.Duration), o.Err)
	if o.Err == "" {
		m.ingestedDocs.Add(uint64(o.Docs))
	}
	m.deltaDocs.Store(uint64(o.DeltaDocs))
}

// ObserveCompact implements LiveObserver: admin- and threshold-triggered
// compactions. A successful compaction empties the delta segment and
// advances the serving generation, so both gauges follow it.
func (m *MetricsObserver) ObserveCompact(o CompactObservation) {
	m.compact.observe(int64(o.Duration), o.Err)
	m.compactHist.Record(o.Duration)
	if o.Err == "" {
		m.compactedDocs.Add(uint64(o.Compacted))
		m.deltaDocs.Store(0)
		m.generation.Store(o.Generation)
	}
}

// MetricsSnapshot is a consistent-enough copy of the observer's counters
// for programmatic assertions (each counter is read atomically; the set is
// not a single atomic snapshot).
type MetricsSnapshot struct {
	Searches, SearchErrors uint64
	Expands, ExpandErrors  uint64
	Batches, BatchErrors   uint64
	Reloads, ReloadErrors  uint64
	BatchItems             uint64
	// Cache counts successful expansions by cache outcome, indexed by
	// CacheOutcome (failed requests are excluded — see MetricsObserver).
	Cache [4]uint64
	// Generation is the most recently observed reload generation.
	Generation uint64
	// RPC counters of the remote coordinator's fan-out path.
	RPCs, RPCErrors                     uint64
	RPCRetries, RPCHedges, RPCDeadlines uint64
	PartialResults                      uint64
	// Live-index counters: Ingest/Compact calls, documents accepted by
	// successful ingests, the delta segment's current document count, and
	// documents folded into new generations by successful compactions.
	Ingests, IngestErrors   uint64
	Compacts, CompactErrors uint64
	IngestedDocs            uint64
	DeltaDocs               uint64
	CompactedDocs           uint64
}

// Snapshot reads the current counter values.
func (m *MetricsObserver) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Searches: m.search.total.Load(), SearchErrors: m.search.errsTotal.Load(),
		Expands: m.expand.total.Load(), ExpandErrors: m.expand.errsTotal.Load(),
		Batches: m.batch.total.Load(), BatchErrors: m.batch.errsTotal.Load(),
		Reloads: m.reload.total.Load(), ReloadErrors: m.reload.errsTotal.Load(),
		Ingests: m.ingest.total.Load(), IngestErrors: m.ingest.errsTotal.Load(),
		Compacts: m.compact.total.Load(), CompactErrors: m.compact.errsTotal.Load(),
		IngestedDocs:  m.ingestedDocs.Load(),
		DeltaDocs:     m.deltaDocs.Load(),
		CompactedDocs: m.compactedDocs.Load(),
		BatchItems:    m.batchItems.Load(),
		Generation:    m.generation.Load(),
	}
	for i := range s.Cache {
		s.Cache[i] = m.cache[i].Load()
	}
	for i := range m.rpc {
		s.RPCs += m.rpc[i].total.Load()
		s.RPCErrors += m.rpc[i].errsTotal.Load()
	}
	s.RPCRetries = m.rpcRetries.Load()
	s.RPCHedges = m.rpcHedges.Load()
	s.RPCDeadlines = m.rpcDeadlines.Load()
	s.PartialResults = m.partials.Load()
	return s
}

// WritePrometheus renders the counters in the Prometheus text exposition
// format (version 0.0.4): querygraph_requests_total and
// querygraph_request_errors_total by {op, class},
// querygraph_request_duration_seconds_{sum,count} by {op},
// querygraph_expand_cache_total by {outcome}, querygraph_batch_items_total,
// full latency histograms (querygraph_search_duration_seconds,
// querygraph_expand_duration_seconds,
// querygraph_rpc_attempt_duration_seconds,
// querygraph_compact_duration_seconds), the live-index write-path
// counters (querygraph_ingest_total, querygraph_ingested_documents_total,
// querygraph_compactions_total, querygraph_compacted_documents_total,
// the querygraph_delta_documents gauge) and the
// querygraph_pool_generation gauge.
func (m *MetricsObserver) WritePrometheus(w io.Writer) error {
	ops := []struct {
		name string
		c    *opCounters
	}{
		{"search", &m.search},
		{"expand", &m.expand},
		{"batch", &m.batch},
		{"reload", &m.reload},
		{"ingest", &m.ingest},
		{"compact", &m.compact},
	}

	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("# HELP querygraph_requests_total Requests observed, by operation.\n# TYPE querygraph_requests_total counter\n"); err != nil {
		return err
	}
	for _, op := range ops {
		if err := p("querygraph_requests_total{op=%q} %d\n", op.name, op.c.total.Load()); err != nil {
			return err
		}
	}
	if err := p("# HELP querygraph_request_errors_total Failed requests, by operation and error class.\n# TYPE querygraph_request_errors_total counter\n"); err != nil {
		return err
	}
	for _, op := range ops {
		for i, class := range metricClasses {
			if n := op.c.errors[i].Load(); n > 0 {
				if err := p("querygraph_request_errors_total{op=%q,class=%q} %d\n", op.name, class, n); err != nil {
					return err
				}
			}
		}
	}
	if err := p("# HELP querygraph_request_duration_seconds Wall time inside the backend, by operation.\n# TYPE querygraph_request_duration_seconds summary\n"); err != nil {
		return err
	}
	for _, op := range ops {
		if err := p("querygraph_request_duration_seconds_sum{op=%q} %g\n", op.name, float64(op.c.durNanos.Load())/1e9); err != nil {
			return err
		}
		if err := p("querygraph_request_duration_seconds_count{op=%q} %d\n", op.name, op.c.total.Load()); err != nil {
			return err
		}
	}
	if err := p("# HELP querygraph_expand_cache_total Successful single-query expansions, by cache outcome.\n# TYPE querygraph_expand_cache_total counter\n"); err != nil {
		return err
	}
	for outcome := CacheBypass; outcome <= CacheDeduped; outcome++ {
		if err := p("querygraph_expand_cache_total{outcome=%q} %d\n", outcome.String(), m.cache[outcome].Load()); err != nil {
			return err
		}
	}
	if err := p("# HELP querygraph_batch_items_total Items submitted across all batches.\n# TYPE querygraph_batch_items_total counter\nquerygraph_batch_items_total %d\n", m.batchItems.Load()); err != nil {
		return err
	}
	if err := p("# HELP querygraph_rpc_total Shard RPC attempts from the remote coordinator, by protocol op.\n# TYPE querygraph_rpc_total counter\n"); err != nil {
		return err
	}
	for i, op := range rpcOpNames {
		if n := m.rpc[i].total.Load(); n > 0 {
			if err := p("querygraph_rpc_total{op=%q} %d\n", op, n); err != nil {
				return err
			}
		}
	}
	if err := p("# HELP querygraph_rpc_errors_total Failed shard RPC attempts, by protocol op and error class.\n# TYPE querygraph_rpc_errors_total counter\n"); err != nil {
		return err
	}
	for i, op := range rpcOpNames {
		for j, class := range metricClasses {
			if n := m.rpc[i].errors[j].Load(); n > 0 {
				if err := p("querygraph_rpc_errors_total{op=%q,class=%q} %d\n", op, class, n); err != nil {
					return err
				}
			}
		}
	}
	if err := p("# HELP querygraph_rpc_duration_seconds Wall time of shard RPC attempts, by protocol op.\n# TYPE querygraph_rpc_duration_seconds summary\n"); err != nil {
		return err
	}
	for i, op := range rpcOpNames {
		if n := m.rpc[i].total.Load(); n > 0 {
			if err := p("querygraph_rpc_duration_seconds_sum{op=%q} %g\n", op, float64(m.rpc[i].durNanos.Load())/1e9); err != nil {
				return err
			}
			if err := p("querygraph_rpc_duration_seconds_count{op=%q} %d\n", op, n); err != nil {
				return err
			}
		}
	}
	hists := []struct {
		name, help string
		a          *hist.Atomic
	}{
		{"querygraph_search_duration_seconds", "Search latency distribution.", &m.searchHist},
		{"querygraph_expand_duration_seconds", "Single-query expansion latency distribution.", &m.expandHist},
		{"querygraph_rpc_attempt_duration_seconds", "Shard RPC attempt latency distribution, all protocol ops.", &m.rpcHist},
		{"querygraph_compact_duration_seconds", "Compaction latency distribution.", &m.compactHist},
	}
	for _, hm := range hists {
		if err := writeHistogram(w, hm.name, hm.help, hm.a.Snapshot()); err != nil {
			return err
		}
	}
	if err := p("# HELP querygraph_rpc_retries_total Shard RPC retry attempts (attempt > 0).\n# TYPE querygraph_rpc_retries_total counter\nquerygraph_rpc_retries_total %d\n", m.rpcRetries.Load()); err != nil {
		return err
	}
	if err := p("# HELP querygraph_rpc_hedges_total Speculative hedged shard RPCs to replicas.\n# TYPE querygraph_rpc_hedges_total counter\nquerygraph_rpc_hedges_total %d\n", m.rpcHedges.Load()); err != nil {
		return err
	}
	if err := p("# HELP querygraph_rpc_deadline_hits_total Shard RPC attempts that died on their per-shard deadline.\n# TYPE querygraph_rpc_deadline_hits_total counter\nquerygraph_rpc_deadline_hits_total %d\n", m.rpcDeadlines.Load()); err != nil {
		return err
	}
	if err := p("# HELP querygraph_partial_results_total Requests answered degraded under the partial-failure policy.\n# TYPE querygraph_partial_results_total counter\nquerygraph_partial_results_total %d\n", m.partials.Load()); err != nil {
		return err
	}
	if err := p("# HELP querygraph_ingest_total Ingest calls observed.\n# TYPE querygraph_ingest_total counter\nquerygraph_ingest_total %d\n", m.ingest.total.Load()); err != nil {
		return err
	}
	if err := p("# HELP querygraph_ingested_documents_total Documents accepted by successful ingests.\n# TYPE querygraph_ingested_documents_total counter\nquerygraph_ingested_documents_total %d\n", m.ingestedDocs.Load()); err != nil {
		return err
	}
	if err := p("# HELP querygraph_delta_documents Documents currently held in the in-memory delta segment.\n# TYPE querygraph_delta_documents gauge\nquerygraph_delta_documents %d\n", m.deltaDocs.Load()); err != nil {
		return err
	}
	if err := p("# HELP querygraph_compactions_total Compactions observed.\n# TYPE querygraph_compactions_total counter\nquerygraph_compactions_total %d\n", m.compact.total.Load()); err != nil {
		return err
	}
	if err := p("# HELP querygraph_compacted_documents_total Delta documents folded into new generations by successful compactions.\n# TYPE querygraph_compacted_documents_total counter\nquerygraph_compacted_documents_total %d\n", m.compactedDocs.Load()); err != nil {
		return err
	}
	return p("# HELP querygraph_pool_generation Most recently observed reload generation (0 before any reload).\n# TYPE querygraph_pool_generation gauge\nquerygraph_pool_generation %d\n", m.generation.Load())
}

// writeHistogram renders one snapshot as a Prometheus histogram family:
// cumulative _bucket series at the DefaultExposition boundaries (each le
// is an exact internal bucket upper, so cumulative counts are exact whole-
// bucket sums, never interpolated), a +Inf bucket, _sum in seconds and
// _count.
func writeHistogram(w io.Writer, name, help string, h hist.Hist) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name); err != nil {
		return err
	}
	var cum uint64
	next := 0
	for _, idx := range hist.DefaultExposition {
		for ; next <= idx; next++ {
			cum += h.Counts[next]
		}
		le := float64(hist.BucketUpper(idx)) / 1e9
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.N); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, float64(h.Sum)/1e9, name, h.N)
	return err
}
