package querygraph

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/querygraph/querygraph/internal/rpc"
	"github.com/querygraph/querygraph/internal/trace"
)

// startHookedFleet mirrors startShardFleet but installs a request hook
// on every shard server before it starts serving (the hook contract —
// SetRequestHook must precede Serve).
func startHookedFleet(t *testing.T, dir string, shards int, hook rpc.RequestHook, mut func(*Topology)) string {
	t.Helper()
	topo := Topology{Version: 1}
	for s := 0; s < shards; s++ {
		srv, err := rpc.LoadServerFile(filepath.Join(dir, fmt.Sprintf("shard-%03d.qgs", s)))
		if err != nil {
			t.Fatal(err)
		}
		srv.SetRequestHook(hook)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = srv.Serve(context.Background(), ln)
		}()
		t.Cleanup(func() {
			_ = srv.Close()
			<-done
		})
		topo.Shards = append(topo.Shards, TopologyShard{ID: s, Addrs: []string{ln.Addr().String()}})
	}
	if mut != nil {
		mut(&topo)
	}
	return writeTopology(t, dir, topo)
}

// traceIDCollector records every trace ID the shard servers see.
type traceIDCollector struct {
	mu   sync.Mutex
	seen []uint64
}

func (c *traceIDCollector) hook(op rpc.Op, traceID uint64, start time.Time, dur time.Duration, errClass string) {
	c.mu.Lock()
	c.seen = append(c.seen, traceID)
	c.mu.Unlock()
}

// ids returns the distinct trace IDs observed, excluding the untraced
// zero (the handshake's healthz probes run before any request trace).
func (c *traceIDCollector) ids() map[uint64]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[uint64]int)
	for _, id := range c.seen {
		if id != 0 {
			out[id]++
		}
	}
	return out
}

// TestRemoteTraceRetryPropagation pins the trace contract under retry
// failover: every shard-side request of one traced search — including
// the retried attempt — carries the one trace ID end to end over the v2
// wire, and the trace's span tree shows the failed attempt 0 and the
// successful attempt 1 on the shard whose primary was dead, plus the
// coordinator's scatter phases.
func TestRemoteTraceRetryPropagation(t *testing.T) {
	ref, dir := shardedWorld(t)

	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	_ = dead.Close()

	var col traceIDCollector
	topoPath := startHookedFleet(t, dir, 2, col.hook, func(topo *Topology) {
		topo.Shards[1].Addrs = append([]string{deadAddr}, topo.Shards[1].Addrs...)
		topo.Retries = 1
		topo.RetryBackoffMS = 1
	})
	be, err := OpenBackend(topoPath)
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()

	id := trace.NewID()
	tr := trace.Begin(id)
	ctx := trace.NewContext(context.Background(), tr)
	if _, err := be.Search(ctx, ref.Queries()[0].Keywords, 5); err != nil {
		t.Fatalf("traced search through failover: %v", err)
	}
	rec := tr.Finish("search", "")

	// One trace ID, shared by every shard-side request.
	ids := col.ids()
	if len(ids) != 1 || ids[uint64(id)] == 0 {
		t.Fatalf("shards saw trace IDs %v, want only %016x", ids, uint64(id))
	}

	// The span tree records the failed attempt and its retry distinctly.
	var failed, retried bool
	phases := make(map[string]bool)
	for _, sp := range rec.Spans {
		phases[sp.Phase] = true
		if !strings.HasPrefix(sp.Phase, "rpc:") {
			continue
		}
		if sp.Shard == 1 && sp.Attempt == 0 && sp.Err != "" && sp.Detail == deadAddr {
			failed = true
		}
		if sp.Shard == 1 && sp.Attempt == 1 && sp.Err == "" {
			retried = true
		}
	}
	if !failed || !retried {
		t.Errorf("spans = %+v, want a failed attempt-0 rpc against %s and a clean attempt-1 retry on shard 1",
			rec.Spans, deadAddr)
	}
	for _, phase := range []string{"plan", "aggregate", "topk", "merge"} {
		if !phases[phase] {
			t.Errorf("span phases = %v, missing coordinator phase %q", phases, phase)
		}
	}
	if rec.TraceID != id.String() {
		t.Errorf("record TraceID = %q, want %q", rec.TraceID, id.String())
	}
}

// TestRemoteTraceHedgedPropagation pins the hedged half: the
// speculative replica attempt shares the primary's trace ID and is
// annotated Hedged in the span tree, distinct from the primary attempt.
func TestRemoteTraceHedgedPropagation(t *testing.T) {
	ref, dir := shardedWorld(t)
	srv1, err := rpc.LoadServerFile(filepath.Join(dir, "shard-001.qgs"))
	if err != nil {
		t.Fatal(err)
	}
	hangAddr := fakeShard(t, srv1.Identity())

	var col traceIDCollector
	topoPath := startHookedFleet(t, dir, 2, col.hook, func(topo *Topology) {
		topo.Shards[1].Addrs = append([]string{hangAddr}, topo.Shards[1].Addrs...)
		topo.TimeoutMS = 500
		topo.Retries = 0
		topo.HedgeAfterMS = 20
	})
	be, err := OpenBackend(topoPath)
	if err != nil {
		t.Fatal(err)
	}

	id := trace.NewID()
	tr := trace.Begin(id)
	ctx := trace.NewContext(context.Background(), tr)
	if _, err := be.Search(ctx, ref.Queries()[0].Keywords, 5); err != nil {
		t.Fatalf("traced hedged search: %v", err)
	}
	rec := tr.Finish("search", "")
	// Close drains the hung primary attempts; their straggling spans land
	// on the dying Trace after Finish, which is harmless — the sealed rec
	// is an immutable copy (pinned by the trace package's straggler test).
	if err := be.Close(); err != nil {
		t.Fatal(err)
	}

	ids := col.ids()
	if len(ids) != 1 || ids[uint64(id)] == 0 {
		t.Fatalf("shards saw trace IDs %v, want only %016x", ids, uint64(id))
	}
	var hedged bool
	for _, sp := range rec.Spans {
		if strings.HasPrefix(sp.Phase, "rpc:") && sp.Shard == 1 && sp.Hedged && sp.Err == "" {
			hedged = true
		}
	}
	if !hedged {
		t.Errorf("spans = %+v, want a clean hedged rpc span on shard 1", rec.Spans)
	}
}
