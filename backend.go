package querygraph

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/querygraph/querygraph/internal/store"
)

// Backend is the one serving contract of the reproduction: every runtime —
// the single-snapshot *Client, the sharded hot-reloadable *Pool, and any
// future remote deployment — satisfies it, so front ends, tools and
// libraries program against interchangeable backends instead of concrete
// types. OpenBackend constructs one from either serving artifact.
//
// The method set is the serving surface: retrieval (Search/SearchAll),
// cycle-based expansion (Expand/ExpandAll), expansion retrieval
// (SearchExpansion/SearchExpansions), entity linking and titles
// (Link/Title), the loaded benchmark and state summaries
// (Queries/Stats/CacheStats) and the lifecycle (Close). The typed request
// structs (SearchRequest, ExpandRequest and batch variants) execute
// against any Backend via their Do methods.
//
// All methods are safe for concurrent use. Every query-path method takes a
// context and honors the package's context contract (a done ctx returns
// ctx.Err() without running a pipeline); after Close they return ErrClosed
// instead. The non-erroring accessors stay harmless after Close: a closed
// Client keeps answering from its in-memory state, a closed Pool returns
// zero values.
//
//qlint:serving
type Backend interface {
	Search(ctx context.Context, query string, k int) ([]Result, error)
	// SearchInto is Search reusing dst's storage for the returned ranking
	// (dst may be nil). It exists for allocation-sensitive front ends: on a
	// *Client the steady-state path — warm query-plan cache, recycled dst —
	// allocates nothing, which is what cmd/qserve's /v1/search handler
	// builds its zero-garbage request loop on. The backend does not retain
	// query or dst beyond the call.
	SearchInto(ctx context.Context, query string, k int, dst []Result) ([]Result, error)
	SearchAll(ctx context.Context, queries []string, k int, opts BatchOptions) ([][]Result, error)
	Expand(ctx context.Context, keywords string, opts ...ExpandOption) (*Expansion, error)
	ExpandAll(ctx context.Context, keywords []string, bopts BatchOptions, opts ...ExpandOption) ([]*Expansion, error)
	SearchExpansion(ctx context.Context, exp *Expansion, k int) ([]Result, bool, error)
	SearchExpansions(ctx context.Context, exps []*Expansion, k int, opts BatchOptions) ([][]Result, error)
	Link(keywords string) []Entity
	Title(id NodeID) string
	Queries() []Query
	Stats() Stats
	CacheStats() CacheStats
	Close() error
}

// Both runtimes satisfy the contract — enforced at compile time.
var (
	_ Backend = (*Client)(nil)
	_ Backend = (*Pool)(nil)
)

// OpenBackend opens either serving artifact behind one constructor: a .qgs
// snapshot file (qgen -out FILE.qgs, Client.Save) yields a *Client, a
// shard manifest (qgen -shards N, Client.SaveShards) yields a *Pool. The
// artifact kind is sniffed from the file's leading bytes — the snapshot
// magic versus JSON — with the path's extension as the tiebreak for
// unreadably short files, so callers never branch on deployment shape.
// Open and OpenPool remain the thin, concrete-typed forms.
func OpenBackend(path string, opts ...Option) (Backend, error) {
	kind, err := sniffArtifact(path)
	if err != nil {
		return nil, err
	}
	if kind == artifactManifest {
		return OpenPool(path, opts...)
	}
	return Open(path, opts...)
}

type artifactKind int

const (
	artifactSnapshot artifactKind = iota
	artifactManifest
)

// sniffArtifact classifies the serving artifact at path by content: the
// snapshot store's magic bytes mean a .qgs snapshot, a leading '{' means a
// JSON shard manifest. Files too short or too ambiguous for either fall
// back to the extension (.json = manifest), and a miss on every rule is
// reported as a bad snapshot — the decoder's error domain for "not a
// serving artifact".
func sniffArtifact(path string) (artifactKind, error) {
	f, err := os.Open(path)
	if err != nil {
		return artifactSnapshot, err
	}
	defer f.Close()
	header := make([]byte, len(store.Magic))
	// ReadFull, not a bare Read: a partial first read (pipe, networked
	// filesystem) must not misclassify a valid artifact as too short.
	n, _ := io.ReadFull(f, header)
	header = header[:n]
	if string(header) == store.Magic {
		return artifactSnapshot, nil
	}
	if trimmed := bytes.TrimLeft(header, " \t\r\n"); len(trimmed) > 0 && trimmed[0] == '{' {
		return artifactManifest, nil
	}
	if strings.HasSuffix(path, ".json") {
		return artifactManifest, nil
	}
	if len(header) < len(store.Magic) {
		return artifactSnapshot, fmt.Errorf("%w: %s: %d-byte file is neither a snapshot nor a shard manifest",
			ErrBadSnapshot, path, n)
	}
	// Neither magic nor JSON nor a .json path: let the snapshot decoder
	// produce its precise bad-magic error.
	return artifactSnapshot, nil
}
