package querygraph

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/querygraph/querygraph/internal/store"
)

// Backend is the one serving contract of the reproduction: every runtime —
// the single-snapshot *Client, the sharded hot-reloadable *Pool, and any
// future remote deployment — satisfies it, so front ends, tools and
// libraries program against interchangeable backends instead of concrete
// types. OpenBackend constructs one from either serving artifact.
//
// The method set is the serving surface: retrieval (Search/SearchAll),
// cycle-based expansion (Expand/ExpandAll), expansion retrieval
// (SearchExpansion/SearchExpansions), the live-index write path
// (Ingest/Compact), entity linking and titles (Link/Title), the loaded
// benchmark and state summaries (Queries/Stats/CacheStats) and the
// lifecycle (Close). The typed request structs (SearchRequest,
// ExpandRequest and batch variants) execute against any Backend via their
// Do methods.
//
// All methods are safe for concurrent use. Every query-path method takes a
// context and honors the package's context contract (a done ctx returns
// ctx.Err() without running a pipeline); after Close they return ErrClosed
// instead. The non-erroring accessors stay harmless after Close: a closed
// Client keeps answering from its in-memory state, a closed Pool returns
// zero values.
//
//qlint:serving
type Backend interface {
	Search(ctx context.Context, query string, k int) ([]Result, error)
	// SearchInto is Search reusing dst's storage for the returned ranking
	// (dst may be nil). It exists for allocation-sensitive front ends: on a
	// *Client the steady-state path — warm query-plan cache, recycled dst —
	// allocates nothing, which is what cmd/qserve's /v1/search handler
	// builds its zero-garbage request loop on. The backend does not retain
	// query or dst beyond the call.
	SearchInto(ctx context.Context, query string, k int, dst []Result) ([]Result, error)
	SearchAll(ctx context.Context, queries []string, k int, opts BatchOptions) ([][]Result, error)
	Expand(ctx context.Context, keywords string, opts ...ExpandOption) (*Expansion, error)
	ExpandAll(ctx context.Context, keywords []string, bopts BatchOptions, opts ...ExpandOption) ([]*Expansion, error)
	SearchExpansion(ctx context.Context, exp *Expansion, k int) ([]Result, bool, error)
	SearchExpansions(ctx context.Context, exps []*Expansion, k int, opts BatchOptions) ([][]Result, error)
	// Ingest appends documents to the backend's in-memory delta segment;
	// they are searchable by the time the call returns and survive into the
	// next compaction. The batch is atomic: on any error (duplicate
	// external id, ErrDeltaFull, ErrClosed, ErrReadOnly on a backend that
	// cannot accept writes) no document is admitted. The backend does not
	// retain docs beyond the call.
	Ingest(ctx context.Context, docs []Document) (IngestStats, error)
	// Compact folds the delta segment into a fresh base generation and
	// hot-swaps it — zero downtime, in-flight requests drain on the old
	// generation. An empty delta is a successful no-op with the generation
	// unchanged. Search results are identical before and after.
	Compact(ctx context.Context) (CompactStats, error)
	Link(keywords string) []Entity
	Title(id NodeID) string
	Queries() []Query
	Stats() Stats
	CacheStats() CacheStats
	Close() error
}

// All three runtimes satisfy the contract — enforced at compile time.
var (
	_ Backend = (*Client)(nil)
	_ Backend = (*Pool)(nil)
	_ Backend = (*Remote)(nil)
)

// OpenBackend opens any serving artifact behind one constructor: a .qgs
// snapshot file (qgen -out FILE.qgs, Client.Save) yields a *Client, a
// shard manifest (qgen -shards N, Client.SaveShards) yields a *Pool, and
// a shard-fleet topology (shards with "addrs" instead of "path") yields a
// *Remote fan-out coordinator. The artifact kind is sniffed from the
// file's leading bytes — the snapshot magic versus JSON, with the two
// JSON schemas told apart by their shard entries — and the path's
// extension breaks ties for unreadably short files, so callers never
// branch on deployment shape. Open, OpenPool and OpenTopology remain the
// thin, concrete-typed forms.
func OpenBackend(path string, opts ...Option) (Backend, error) {
	kind, err := sniffArtifact(path)
	if err != nil {
		return nil, err
	}
	switch kind {
	case artifactManifest:
		return OpenPool(path, opts...)
	case artifactTopology:
		return OpenTopology(path, opts...)
	default:
		return Open(path, opts...)
	}
}

type artifactKind int

const (
	artifactSnapshot artifactKind = iota
	artifactManifest
	artifactTopology
)

// sniffArtifact classifies the serving artifact at path by content: the
// snapshot store's magic bytes mean a .qgs snapshot, a leading '{' means
// one of the JSON artifacts — a shard manifest (shard entries carry a
// "path") or a fleet topology (shard entries carry "addrs"). Files too
// short or too ambiguous for any rule fall back to the extension
// (.json = manifest), and a miss on every rule is reported as a bad
// snapshot — the decoder's error domain for "not a serving artifact".
func sniffArtifact(path string) (artifactKind, error) {
	f, err := os.Open(path)
	if err != nil {
		return artifactSnapshot, err
	}
	defer f.Close()
	header := make([]byte, len(store.Magic))
	// ReadFull, not a bare Read: a partial first read (pipe, networked
	// filesystem) must not misclassify a valid artifact as too short.
	n, _ := io.ReadFull(f, header)
	header = header[:n]
	if string(header) == store.Magic {
		return artifactSnapshot, nil
	}
	if trimmed := bytes.TrimLeft(header, " \t\r\n"); len(trimmed) > 0 && trimmed[0] == '{' {
		return classifyJSON(f)
	}
	if strings.HasSuffix(path, ".json") {
		return artifactManifest, nil
	}
	if len(header) < len(store.Magic) {
		return artifactSnapshot, fmt.Errorf("%w: %s: %d-byte file is neither a snapshot nor a shard manifest",
			ErrBadSnapshot, path, n)
	}
	// Neither magic nor JSON nor a .json path: let the snapshot decoder
	// produce its precise bad-magic error.
	return artifactSnapshot, nil
}

// classifyJSON tells the two JSON artifacts apart by probing the shard
// entries: addresses mean a fleet topology, paths (or anything else,
// including malformed JSON) mean a shard manifest, whose strict decoder
// owns the error reporting.
func classifyJSON(f *os.File) (artifactKind, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return artifactManifest, nil
	}
	var probe struct {
		Shards []struct {
			Path  string   `json:"path"`
			Addrs []string `json:"addrs"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(f).Decode(&probe); err != nil {
		return artifactManifest, nil
	}
	for _, sh := range probe.Shards {
		if len(sh.Addrs) > 0 && sh.Path == "" {
			return artifactTopology, nil
		}
	}
	return artifactManifest, nil
}
