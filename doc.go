// Package querygraph reproduces "Understanding Graph Structure of Wikipedia
// for Query Expansion" (Guisado-Gámez & Prat-Pérez, 2015) as a complete,
// self-contained Go system, and exposes it as a context-aware serving API.
//
// # The Backend contract
//
// Every serving runtime — the single-snapshot *Client and the sharded
// hot-reloadable *Pool — satisfies the one Backend interface, and
// OpenBackend sniffs which artifact a path holds, so callers never branch
// on deployment shape:
//
//	be, err := querygraph.OpenBackend(path)       // .qgs snapshot or shard manifest.json
//	defer be.Close()                              // retire; later calls return ErrClosed
//	results, err := be.Search(ctx, "venice #1(grand canal)", 15)
//	exp, err := be.Expand(ctx, "doge palace venice")
//	results, ok, err := be.SearchExpansion(ctx, exp, 15)
//
// The typed requests are the canonical call shape over a Backend — one
// value carries query, depth, per-request deadline and expansion options:
//
//	resp, err := querygraph.ExpandRequest{Keywords: "doge palace", K: 15}.Do(ctx, be)
//
// # The client
//
// A Client is one loaded knowledge base, document collection, search
// engine and entity linker, safe for concurrent use:
//
//	client, err := querygraph.Open("world.qgs")   // decode a snapshot: serve instantly
//	client, err := querygraph.OpenReader(r)       // the same over any reader
//	client, err := querygraph.Build(world)        // index a generated world: build once
//
// Snapshots are written by Client.Save (or cmd/qgen with -out world.qgs)
// and decoded, not rebuilt, at Open time. Worlds come from GenerateWorld,
// which deterministically produces a Wikipedia-shaped knowledge base, an
// ImageCLEF-shaped collection and a query benchmark from one seed. Beyond
// the Backend surface, a Client carries the research pipeline
// (Analyze, GroundTruth(s), CompareExpanders, MineCycles, Evaluate):
//
//	batch, err := client.ExpandAll(ctx, keywords, querygraph.BatchOptions{})
//	analysis, err := client.Analyze(ctx, querygraph.AnalyzeOptions{})
//
// Expand implements the paper's conclusions as an online engine: it
// entity-links the keywords, mines cycles of length <= 5 in the Wikipedia
// neighborhood of the entities, keeps the structurally promising cycles
// (dense, category ratio around 30%) and proposes the articles they
// introduce as expansion features. Results are memoized in a sharded
// single-flight LRU cache, so heavy traffic with repeated queries is
// served from memory.
//
// # The sharded pool
//
// Beyond one machine's snapshot, a Pool serves a hash-partitioned
// generation — per-shard snapshots plus a manifest, written by
// Client.SaveShards or qgen -shards N — with the knowledge graph
// replicated and the corpus/index partitioned:
//
//	pool, err := querygraph.OpenPool("world4/manifest.json")
//	results, err := pool.Search(ctx, "venice #1(grand canal)", 15)
//	err = pool.Reload("")                         // hot-swap to the next generation
//
// Retrieval scatters to every shard under globally aggregated collection
// statistics and merges, so a Pool returns bit-identical results to a
// Client on the same world at any shard count; expansion runs once on the
// replicated graph. Reload assembles the next generation off to the side
// and swaps it in with zero downtime: in-flight requests finish on the
// generation they started with, and a failed reload (ErrBadManifest)
// leaves serving untouched. Close retires the pool the same way — the
// live generation drains before Close returns.
//
// # Instrumentation
//
// WithObserver attaches hooks that fire on every request path of either
// runtime — duration, ranking depth, shard count, expansion cache outcome
// (hit/miss/single-flight dedup/bypass) and error class. MetricsObserver
// is the built-in counter implementation; its WritePrometheus renders the
// Prometheus text format cmd/qserve serves at GET /v1/metrics.
//
// # Contexts and cancellation
//
// Every query-path method takes a context.Context. A context that is
// already done returns ctx.Err() without running any pipeline. Cancelling
// mid-call stops batch fan-out from scheduling further queries, and a
// caller waiting on another caller's identical in-flight expansion
// abandons the wait (the in-flight run still completes and populates the
// cache). Per-request deadlines therefore bound every call, which is what
// cmd/qserve builds its HTTP timeouts on.
//
// # Errors
//
// Failures are classified by sentinel, tested with errors.Is:
// ErrBadSnapshot (undecodable snapshot bytes), ErrBadManifest (a sharded
// generation that fails to assemble), ErrInvalidOptions (rejected option
// values), ErrInvalidQuery (query-text parse failures), ErrNoBenchmark
// (benchmark-driven calls on a benchmark-less snapshot) and ErrClosed
// (requests after Close). Context failures surface as context.Canceled /
// context.DeadlineExceeded; file-system errors pass through unchanged.
// ErrorClass maps any of them onto the stable instrumentation label set.
//
// # Options
//
// Expansion knobs are functional options validated at the call site —
// WithCategoryRatioBand(0.2, 0.5), WithMaxFeatures(10), WithTwoCycles(true)
// and friends; see DefaultExpandOptions for the paper-tuned defaults. An
// explicit value can never be mistaken for "unset", and invalid values
// fail loudly with ErrInvalidOptions instead of falling back silently.
//
// # Command line and HTTP
//
// cmd/qserve serves Search and Expand over HTTP JSON (POST /v1/search,
// POST /v1/expand, batch variants, GET /v1/healthz, GET /v1/stats) from a
// snapshot loaded at boot, with per-request timeouts and graceful
// shutdown. cmd/qgen generates worlds and snapshots, cmd/qbench
// reproduces every table and figure of the paper next to the reported
// values, and cmd/qgraph inspects one query's ground truth and graph.
//
// # Under the hood
//
// The substrates live under internal/ and are implemented from scratch on
// the standard library: a typed property graph (internal/graph), the
// Wikipedia schema of the paper's Figure 1 (internal/wiki), the synthetic
// world generator (internal/synth), the ImageCLEF document model
// (internal/corpus), a positional inverted index and an INDRI-like engine
// with Dirichlet smoothing (internal/index, internal/search), the
// largest-substring entity linker (internal/linking), the evaluation and
// ground-truth machinery of Section 2 (internal/eval, internal/groundtruth,
// internal/querygraph), cycle mining and its structural metrics
// (internal/cycles), the versioned binary snapshot store (internal/store)
// and the assembled pipeline (internal/core). See DESIGN.md for the
// system inventory, hot paths and the per-experiment benchmark index.
package querygraph
