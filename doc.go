// Package querygraph reproduces "Understanding Graph Structure of Wikipedia
// for Query Expansion" (Guisado-Gámez & Prat-Pérez, 2015) as a complete,
// self-contained Go system.
//
// The repository contains every substrate the paper depends on, implemented
// from scratch on the standard library:
//
//   - internal/graph: a typed property graph with the operations the analysis
//     needs (components, triangles, induced subgraphs, cycle support).
//   - internal/wiki: the Wikipedia schema of the paper's Figure 1 (articles,
//     categories, links, belongs, inside, redirects_to) with validation.
//   - internal/synth: a deterministic generator for a synthetic Wikipedia,
//     an ImageCLEF-shaped document collection and a query benchmark.
//   - internal/corpus: the ImageCLEF XML document model, parser and the
//     relevant-text extraction of the paper's Figure 2.
//   - internal/index, internal/search: a positional inverted index and an
//     INDRI-like engine (#combine / #1 exact phrases, Dirichlet-smoothed
//     query likelihood).
//   - internal/linking: the largest-substring entity linker with redirect
//     synonyms.
//   - internal/eval, internal/groundtruth: top-r precision, the O(A,D)
//     objective and the ADD/REMOVE/SWAP local search that builds X(q).
//   - internal/querygraph, internal/cycles: query-graph assembly and the
//     cycle analysis of Section 3 (category ratio, density of extra edges,
//     contribution).
//   - internal/core: the public facade tying everything together, including
//     an online Expander that applies the paper's findings (dense cycles
//     with a ~30% category ratio) as a practical query-expansion technique,
//     plus the batch serving layer (SearchAll / ExpandAll on bounded worker
//     pools with a sharded LRU expansion cache).
//
// See DESIGN.md for the system inventory, the retrieval hot-path and batch
// serving architecture, and the per-experiment benchmark index; cmd/qbench
// prints paper-vs-measured results for every table and figure.
package querygraph
