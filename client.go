package querygraph

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/querygraph/querygraph/internal/core"
	"github.com/querygraph/querygraph/internal/live"
	"github.com/querygraph/querygraph/internal/search"
	"github.com/querygraph/querygraph/internal/shard"
	"github.com/querygraph/querygraph/internal/store"
	"github.com/querygraph/querygraph/internal/trace"
)

// Client is the single-snapshot serving handle of the reproduction: one
// loaded (or built) knowledge base, document collection, search engine and
// entity linker, safe for concurrent use. It satisfies Backend. Every
// query-path method takes a context.Context; a context that is already
// done returns ctx.Err() without running any pipeline, and cancelling
// mid-call stops batch scheduling and abandons cache waits as documented
// per method. After Close, query-path methods return ErrClosed.
//
// A Client is also a live index: Ingest appends documents to an in-memory
// delta segment searched alongside the base snapshot, and Compact folds
// the segment into a fresh base generation. Readers pin one immutable
// state per request and writers swap whole states, so queries never
// observe a half-applied ingest or compaction.
//
//qlint:serving
//qlint:observed
type Client struct {
	// st is the serving state — base system, delta segment, compaction
	// generation. The query path loads it lock-free; every store happens
	// under mu (enforced by the atomicguard analyzer).
	//
	//qlint:guarded-by mu
	st atomic.Pointer[clientState]

	// mu serializes the write path (Ingest, Compact); readers never take it.
	mu sync.Mutex

	queries []Query
	obs     observers
	closed  atomic.Bool

	// Live-index configuration and lifecycle: the delta capacity and
	// auto-compaction threshold resolved from the options, the system
	// options replayed when a compaction rebuilds the serving system, the
	// completed-compaction count, the single-flight guard of the
	// background compactor and the wait group Close blocks on.
	deltaCap    int
	autoCompact int
	sysOpts     []core.SystemOption
	compactions atomic.Uint64
	compacting  atomic.Bool
	bg          sync.WaitGroup
}

// clientState is one immutable serving state: the base system, the live
// delta segment above it (nil = empty) and the compaction generation
// (starts at 1, advanced by each non-empty Compact).
type clientState struct {
	sys   *core.System
	delta *live.Delta
	gen   uint64
}

// cur returns the current serving state; it is never nil, even after
// Close (the in-memory accessors keep answering from it).
func (c *Client) cur() *clientState { return c.st.Load() }

// newClient assembles a serving client around a loaded system.
func newClient(sys *core.System, queries []Query, cfg clientConfig) *Client {
	c := &Client{
		queries:     queries,
		obs:         cfg.obs,
		deltaCap:    cfg.deltaCapacity(),
		autoCompact: cfg.autoCompact,
		sysOpts:     cfg.sys,
	}
	c.st.Store(&clientState{sys: sys, gen: 1}) //qlint:ignore atomicguard constructor: c has not escaped, no concurrent writer exists yet
	return c
}

// Open loads a .qgs snapshot file written by Save (or qgen -out FILE.qgs)
// and assembles a serving Client around it. Startup is a decode, not a
// rebuild. File-system errors are returned as-is; a file that cannot be
// decoded returns an error wrapping ErrBadSnapshot.
func Open(path string, opts ...Option) (*Client, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return OpenReader(f, opts...)
}

// OpenReader is Open over an arbitrary reader of snapshot bytes. Any
// decode failure — wrong magic, version, checksum, truncation, or a
// failing reader — returns an error wrapping ErrBadSnapshot.
func OpenReader(r io.Reader, opts ...Option) (*Client, error) {
	var cfg clientConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	sys, qs, err := core.LoadSystem(r, cfg.sys...)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return newClient(sys, qs, cfg), nil
}

// Build assembles a Client directly from a generated world: it indexes the
// collection, builds the engine and the entity linker, and adopts the
// world's query benchmark. See GenerateWorld.
func Build(world *World, opts ...Option) (*Client, error) {
	if world == nil {
		return nil, fmt.Errorf("%w: nil world", ErrInvalidOptions)
	}
	var cfg clientConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	sys, err := core.FromWorld(world, cfg.sys...)
	if err != nil {
		return nil, err
	}
	return newClient(sys, core.QueriesFromWorld(world), cfg), nil
}

// Close retires the client: it is idempotent (a second Close returns nil),
// and every query-path method called after it returns ErrClosed. Close
// releases the expansion cache's entries; the decoded serving state itself
// is garbage-collected once the last reference drops, so requests already
// in flight finish safely on it. The cheap in-memory accessors (Queries,
// Stats, CacheStats, Link, Title) keep answering after Close.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	// An in-flight background compaction re-checks closed under mu and
	// bails; wait it out so Close leaves no goroutine behind.
	c.bg.Wait()
	c.cur().sys.PurgeExpandCache()
	return nil
}

// ready gates every query path: a closed client fails with ErrClosed, a
// dead context with ctx.Err(), before any pipeline work.
func (c *Client) ready(ctx context.Context) error {
	if c.closed.Load() {
		return ErrClosed
	}
	return ctx.Err()
}

// shardCount is the Shards coordinate of this client's observations: a
// Client is a one-shard runtime, reported as 0 once closed so both
// runtimes expose the same closed-backend signal to observers.
func (c *Client) shardCount() int {
	if c.closed.Load() {
		return 0
	}
	return 1
}

// Save writes the client's complete serving state plus its query benchmark
// as a versioned, checksummed binary snapshot; Open on the written bytes
// serves bit-identical results. A non-empty delta segment is folded into
// the written snapshot (the snapshot a cold rebuild over base plus delta
// would produce), so ingested documents survive a save/load cycle.
func (c *Client) Save(w io.Writer) error {
	st := c.cur()
	if st.delta.NumDocs() == 0 {
		return st.sys.Save(w, c.queries)
	}
	arch, err := mergedArchive(st, c.queries)
	if err != nil {
		return err
	}
	return store.Write(w, arch)
}

// SaveShards hash-partitions the client's serving state into shards
// per-shard snapshots plus a manifest.json inside dir (created if
// needed): the knowledge graph, engine configuration and query benchmark
// are replicated into every shard, the corpus and index are partitioned
// by document id, and the global collection statistics are recorded in
// each shard so OpenPool on the manifest serves bit-identical results to
// this client. The manifest is written last via an atomic rename, so a
// concurrent Pool.Reload sees either the old generation or the new one.
func (c *Client) SaveShards(dir string, shards int) error {
	if shards < 1 {
		return fmt.Errorf("%w: shard count %d must be >= 1", ErrInvalidOptions, shards)
	}
	st := c.cur()
	arch := st.sys.Archive(c.queries)
	if st.delta.NumDocs() > 0 {
		// Like Save: the written generation includes the delta documents.
		var err error
		arch, err = mergedArchive(st, c.queries)
		if err != nil {
			return err
		}
	}
	_, err := shard.WriteShards(dir, arch, shards)
	return err
}

// Queries returns the loaded query benchmark (empty when the snapshot
// carried none).
func (c *Client) Queries() []Query {
	out := make([]Query, len(c.queries))
	copy(out, c.queries)
	return out
}

// Stats summarizes the serving state: knowledge-base shape, corpus size
// (the base generation; delta documents are reported separately),
// benchmark size, the live delta segment and the expansion cache counters.
type Stats struct {
	Articles   int `json:"articles"`
	Redirects  int `json:"redirects"`
	Categories int `json:"categories"`
	Links      int `json:"links"`

	Documents        int `json:"documents"`
	BenchmarkQueries int `json:"benchmark_queries"`

	Delta DeltaStats `json:"delta"`

	Cache CacheStats `json:"cache"`
}

// Stats reports the client's serving-state summary.
func (c *Client) Stats() Stats {
	cur := c.cur()
	st := cur.sys.Snapshot.Stats()
	return Stats{
		Articles:         st.Articles,
		Redirects:        st.Redirects,
		Categories:       st.Categories,
		Links:            st.Links,
		Documents:        cur.sys.Collection.Len(),
		BenchmarkQueries: len(c.queries),
		Delta: DeltaStats{
			Documents:    cur.delta.NumDocs(),
			PendingBytes: cur.delta.Bytes(),
			Generation:   cur.gen,
			Compactions:  c.compactions.Load(),
		},
		Cache: cur.sys.ExpandCacheStats(),
	}
}

// CacheStats reports the expansion cache's hit/miss/single-flight counters
// and occupancy (all zero when the cache is disabled).
func (c *Client) CacheStats() CacheStats { return c.cur().sys.ExpandCacheStats() }

// parseWithEngine turns raw query text into an AST, wrapping failures in
// ErrInvalidQuery.
func parseWithEngine(e *search.Engine, query string) (search.Node, error) {
	node, err := e.Parse(query)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidQuery, err)
	}
	return node, nil
}

// searchStateLeaves scores flattened leaves against one pinned state: the
// base engine alone on the delta-free fast path (zero allocations at
// steady state), or the two-source base+delta merge under merged
// collection statistics — bit-identical to a rebuilt monolithic index.
func searchStateLeaves(st *clientState, leaves []search.Leaf, k int, dst []Result) ([]Result, error) {
	if st.delta == nil {
		return st.sys.Engine.SearchLeaves(leaves, k, dst)
	}
	sources := []search.Source{{Engine: st.sys.Engine}, st.delta.Source()}
	total := st.sys.Engine.Index().TotalTokens() + st.delta.TotalTokens()
	return search.SearchSourcesLeaves(sources, total, leaves, k, dst)
}

// searchStateNode is searchStateLeaves for an already-parsed query node.
func searchStateNode(st *clientState, node search.Node, k int) ([]Result, error) {
	if st.delta == nil {
		return st.sys.Engine.Search(node, k)
	}
	sources := []search.Source{{Engine: st.sys.Engine}, st.delta.Source()}
	total := st.sys.Engine.Index().TotalTokens() + st.delta.TotalTokens()
	return search.SearchSources(sources, total, node, k)
}

// Search parses the INDRI-style query text (bare keywords, #combine,
// #weight, #1 exact phrases) and returns the top k documents by descending
// Dirichlet-smoothed query likelihood (ties broken by ascending doc id;
// k <= 0 ranks every candidate; no match returns an empty non-nil slice).
// A done ctx returns ctx.Err() without searching.
func (c *Client) Search(ctx context.Context, query string, k int) ([]Result, error) {
	start := time.Now()
	rs, err := c.searchText(ctx, query, k, nil)
	c.obs.search(start, k, c.shardCount(), false, err)
	return rs, err
}

// SearchInto is Search reusing dst's storage for the returned ranking
// (dst may be nil). At steady state — the query's parsed plan already in
// the engine's memoized cache, dst recycled by the caller — the whole
// path allocates nothing: parse, postings planning, scoring scratch and
// the top-k heap all come from pools. Neither query nor dst is retained
// beyond the call.
func (c *Client) SearchInto(ctx context.Context, query string, k int, dst []Result) ([]Result, error) {
	start := time.Now()
	rs, err := c.searchText(ctx, query, k, dst)
	c.obs.search(start, k, c.shardCount(), false, err)
	return rs, err
}

func (c *Client) searchText(ctx context.Context, query string, k int, dst []Result) ([]Result, error) {
	if err := c.ready(ctx); err != nil {
		return nil, err
	}
	st := c.cur()
	// The untraced branch is the pinned 0 allocs/op fast path: one
	// context lookup, then exactly the pre-trace code.
	tr := trace.FromContext(ctx)
	if tr == nil {
		leaves, err := st.sys.Engine.LeavesForQuery(query)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrInvalidQuery, err)
		}
		return searchStateLeaves(st, leaves, k, dst)
	}
	parseStart := time.Now()
	leaves, err := st.sys.Engine.LeavesForQuery(query)
	if err != nil {
		tr.Span("parse", parseStart, "invalid_query")
		return nil, fmt.Errorf("%w: %v", ErrInvalidQuery, err)
	}
	tr.Span("parse", parseStart, "")
	searchStart := time.Now()
	rs, err := searchStateLeaves(st, leaves, k, dst)
	tr.Span("search", searchStart, ErrorClass(err))
	return rs, err
}

// SearchAll evaluates a batch of query texts on a bounded worker pool and
// returns the per-query rankings in input order. All queries are parsed up
// front (the first syntax error aborts the batch with ErrInvalidQuery);
// cancelling ctx stops scheduling the remaining queries and returns
// ctx.Err().
func (c *Client) SearchAll(ctx context.Context, queries []string, k int, opts BatchOptions) ([][]Result, error) {
	start := time.Now()
	rss, err := c.searchAll(ctx, queries, k, opts)
	c.obs.batch(start, BatchSearch, len(queries), k, c.shardCount(), err)
	return rss, err
}

func (c *Client) searchAll(ctx context.Context, queries []string, k int, opts BatchOptions) ([][]Result, error) {
	if err := c.ready(ctx); err != nil {
		return nil, err
	}
	st := c.cur()
	nodes := make([]search.Node, len(queries))
	for i, q := range queries {
		node, err := parseWithEngine(st.sys.Engine, q)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		nodes[i] = node
	}
	return searchStateAll(ctx, st, nodes, k, opts)
}

// searchStateAll is the batch form of searchStateNode: the delta-free
// path keeps the system's batch layer, the delta path fans the two-source
// merge out over the same bounded worker pool. The whole batch runs on
// the pinned state, even if an ingest or compaction lands mid-batch.
func searchStateAll(ctx context.Context, st *clientState, nodes []search.Node, k int, opts BatchOptions) ([][]Result, error) {
	if st.delta == nil {
		return st.sys.SearchAll(ctx, nodes, k, opts)
	}
	out := make([][]Result, len(nodes))
	err := core.ForEach(ctx, len(nodes), opts.Workers, func(i int) error {
		rs, err := searchStateNode(st, nodes[i], k)
		if err != nil {
			return fmt.Errorf("search %d: %w", i, err)
		}
		out[i] = rs
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Expand runs the online cycle-based expansion pipeline of the paper's
// conclusions for one keyword query: entity-link the keywords, induce the
// Wikipedia neighborhood, mine cycles, keep the structurally promising
// ones (dense, category ratio around 30% by default) and rank the articles
// they introduce. Options override the paper-tuned defaults; invalid
// values return an error wrapping ErrInvalidOptions.
//
// Results are memoized in a sharded single-flight LRU cache shared by the
// whole Client; the returned Expansion may be shared with other callers
// and must be treated as read-only. A done ctx returns ctx.Err() without
// touching pipeline or cache; a ctx that dies while another caller's
// identical call is in flight abandons the wait (that caller still
// completes and populates the cache).
func (c *Client) Expand(ctx context.Context, keywords string, opts ...ExpandOption) (*Expansion, error) {
	start := time.Now()
	exp, outcome, err := c.expand(ctx, keywords, opts)
	c.obs.expand(start, outcome, exp, c.shardCount(), err)
	return exp, err
}

func (c *Client) expand(ctx context.Context, keywords string, opts []ExpandOption) (*Expansion, CacheOutcome, error) {
	if err := c.ready(ctx); err != nil {
		return nil, CacheBypass, err
	}
	eopts, err := normalizeExpandOptions(opts)
	if err != nil {
		return nil, CacheBypass, err
	}
	tr := trace.FromContext(ctx)
	start := time.Now()
	exp, outcome, err := c.cur().sys.ExpandOutcome(ctx, keywords, eopts)
	if tr != nil {
		// The cache outcome of the expand lookup rides in the span detail.
		tr.Add("expand", start, -1, 0, false, ErrorClass(err), outcome.String())
	}
	return exp, outcome, err
}

// ExpandAll runs Expand for every keyword query on a bounded worker pool
// and returns the expansions in input order. Repeated keywords are served
// from the expansion cache and concurrent duplicates are single-flighted.
// Cancelling ctx stops scheduling and returns ctx.Err().
func (c *Client) ExpandAll(ctx context.Context, keywords []string, bopts BatchOptions, opts ...ExpandOption) ([]*Expansion, error) {
	start := time.Now()
	exps, err := c.expandAll(ctx, keywords, bopts, opts)
	c.obs.batch(start, BatchExpand, len(keywords), 0, c.shardCount(), err)
	return exps, err
}

func (c *Client) expandAll(ctx context.Context, keywords []string, bopts BatchOptions, opts []ExpandOption) ([]*Expansion, error) {
	if err := c.ready(ctx); err != nil {
		return nil, err
	}
	eopts, err := normalizeExpandOptions(opts)
	if err != nil {
		return nil, err
	}
	return c.cur().sys.ExpandAll(ctx, keywords, eopts, bopts)
}

// SearchExpansion evaluates an expansion end to end: it writes the
// expanded title query (exact phrases for the query entities and every
// feature) and returns the top k documents. ok reports whether the
// expansion had anything to search for (entities, features or keywords);
// it stays true when the search itself fails, so err alone signals
// failure.
func (c *Client) SearchExpansion(ctx context.Context, exp *Expansion, k int) (results []Result, ok bool, err error) {
	start := time.Now()
	rs, ok, err := c.searchExpansion(ctx, exp, k)
	c.obs.search(start, k, c.shardCount(), true, err)
	return rs, ok, err
}

func (c *Client) searchExpansion(ctx context.Context, exp *Expansion, k int) ([]Result, bool, error) {
	if err := c.ready(ctx); err != nil {
		return nil, false, err
	}
	st := c.cur()
	node, ok := exp.Query(st.sys)
	if !ok {
		return nil, false, nil
	}
	rs, err := searchStateNode(st, node, k)
	return rs, true, err
}

// SearchExpansions evaluates a batch of expansions on a bounded worker
// pool, returning the per-expansion rankings in input order. Expansions
// with nothing to search for yield a nil ranking. Cancelling ctx stops
// scheduling and returns ctx.Err().
func (c *Client) SearchExpansions(ctx context.Context, exps []*Expansion, k int, opts BatchOptions) ([][]Result, error) {
	start := time.Now()
	rss, err := c.searchExpansions(ctx, exps, k, opts)
	c.obs.batch(start, BatchSearchExpansions, len(exps), k, c.shardCount(), err)
	return rss, err
}

func (c *Client) searchExpansions(ctx context.Context, exps []*Expansion, k int, opts BatchOptions) ([][]Result, error) {
	if err := c.ready(ctx); err != nil {
		return nil, err
	}
	st := c.cur()
	type job struct {
		idx  int
		node search.Node
	}
	jobs := make([]job, 0, len(exps))
	for i, exp := range exps {
		if node, ok := exp.Query(st.sys); ok {
			jobs = append(jobs, job{idx: i, node: node})
		}
	}
	out := make([][]Result, len(exps))
	nodes := make([]search.Node, len(jobs))
	for i, j := range jobs {
		nodes[i] = j.node
	}
	rs, err := searchStateAll(ctx, st, nodes, k, opts)
	if err != nil {
		return nil, err
	}
	for i, j := range jobs {
		out[j.idx] = rs[i]
	}
	return out, nil
}

// Entity is one knowledge-base article a query mentions.
type Entity struct {
	ID    NodeID `json:"id"`
	Title string `json:"title"`
}

// Link computes L(q.k): the main articles the keywords mention, by
// largest-substring entity linking with redirect synonyms.
func (c *Client) Link(keywords string) []Entity {
	sys := c.cur().sys
	ids := sys.LinkKeywords(keywords)
	out := make([]Entity, len(ids))
	for i, id := range ids {
		out[i] = Entity{ID: id, Title: sys.Snapshot.Name(id)}
	}
	return out
}

// Title returns the display title of a knowledge-base node.
func (c *Client) Title(id NodeID) string { return c.cur().sys.Snapshot.Name(id) }

// Evaluate writes the paper's title query for the given articles (exact
// phrases; the raw keywords back the query off when no article has a
// usable title) and scores the retrieval against the relevant documents:
// it returns the objective O (precision averaged over the paper's rank
// cutoffs) and the ranked top-15 document ids.
func (c *Client) Evaluate(ctx context.Context, keywords string, articles []NodeID, relevant []int32) (float64, []int32, error) {
	if err := c.ready(ctx); err != nil {
		return 0, nil, err
	}
	return c.cur().sys.EvaluateArticles(keywords, articles, newRelevance(relevant))
}
