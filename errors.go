package querygraph

import "errors"

// Sentinel errors of the public API. Every error returned by the package
// either is one of these (test with errors.Is), wraps a context error
// (context.Canceled / context.DeadlineExceeded from a dead ctx), or is an
// I/O error passed through from the operating system (e.g. from Open on a
// missing file).
var (
	// ErrBadSnapshot wraps every failure to decode a .qgs snapshot:
	// wrong magic, unsupported version, checksum mismatch, truncation,
	// or a short/failing reader.
	ErrBadSnapshot = errors.New("querygraph: bad snapshot")

	// ErrInvalidOptions wraps rejected option values — an inverted or
	// out-of-range category-ratio band, a non-positive feature budget,
	// and friends. The message names the offending option.
	ErrInvalidOptions = errors.New("querygraph: invalid options")

	// ErrInvalidQuery wraps query-text parse failures (unbalanced
	// #combine/#1 operators, empty query).
	ErrInvalidQuery = errors.New("querygraph: invalid query")

	// ErrNoBenchmark is returned by benchmark-driven calls (Analyze,
	// CompareExpanders, Queries-dependent helpers) when the client was
	// opened from a snapshot that carries no query benchmark.
	ErrNoBenchmark = errors.New("querygraph: no query benchmark loaded")

	// ErrBadManifest wraps every failure to assemble a sharded generation
	// from a manifest: an unreadable or unparsable manifest file, a shard
	// snapshot that fails to decode, or shards that disagree on partition
	// identity, global statistics or engine configuration (mixed
	// generations). OpenPool and Pool.Reload return it; a failed Reload
	// leaves the serving generation untouched.
	ErrBadManifest = errors.New("querygraph: bad shard manifest")

	// ErrClosed is returned by every query-path method of a Backend after
	// its Close: the handle is retired and will never serve again. Close
	// itself is idempotent — a second Close returns nil, not ErrClosed.
	ErrClosed = errors.New("querygraph: backend closed")

	// ErrBadTopology wraps every failure to assemble a remote coordinator
	// from a topology file: an unreadable or unparsable file, a missing or
	// duplicate shard slot, no addresses for a shard, an unknown policy,
	// or shards whose handshakes disagree on partition identity or engine
	// configuration (mixed generations). OpenTopology returns it.
	ErrBadTopology = errors.New("querygraph: bad shard topology")

	// ErrShardUnavailable wraps a remote fan-out failure: a shard could
	// not be reached (dial, transport, per-shard deadline) or reported a
	// server-side failure on every configured address and retry, and the
	// topology's partial-failure policy did not permit degrading. Under
	// the "degrade" policy it is returned only when the surviving shard
	// count falls below the configured quorum.
	ErrShardUnavailable = errors.New("querygraph: shard unavailable")

	// ErrPartialResult marks a degraded remote response: one or more
	// shards were dropped under the "degrade" partial-failure policy and
	// the returned ranking covers the surviving shards only. It is the one
	// sentinel returned ALONGSIDE results — callers that accept degraded
	// service check errors.Is(err, ErrPartialResult) and keep the results;
	// cmd/qserve surfaces it as "partial": true.
	ErrPartialResult = errors.New("querygraph: partial result (one or more shards dropped)")

	// ErrReadOnly is returned by Ingest and Compact on a backend that
	// cannot accept writes — today the Remote coordinator, whose shards
	// own their snapshots; ingest against a fleet goes to the shards
	// themselves. cmd/qserve surfaces it as 409.
	ErrReadOnly = errors.New("querygraph: backend is read-only")

	// ErrDeltaFull is returned by Ingest when accepting the batch would
	// push the in-memory delta segment past its configured capacity
	// (WithDeltaCapacity). The segment is left unchanged; callers compact
	// (or wait for the auto-compactor) and retry. cmd/qserve surfaces it
	// as 429.
	ErrDeltaFull = errors.New("querygraph: delta segment full")
)
