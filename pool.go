package querygraph

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/querygraph/querygraph/internal/search"
	"github.com/querygraph/querygraph/internal/shard"
)

// Pool is the sharded serving handle: a hash-partitioned snapshot
// generation (qgen -shards N, or Client.SaveShards) served with
// scatter-gather retrieval and single-pass expansion on the replicated
// graph. For the same world, a Pool returns bit-identical Search, Expand
// and SearchExpansion results to a single-snapshot Client at any shard
// count — per-shard scorers run under globally aggregated collection
// statistics and the merged ranking preserves the engine's (score desc,
// doc asc) order over global doc ids.
//
// A Pool also hot-reloads: Reload assembles the next generation off to
// the side, swaps it in atomically, and lets in-flight requests finish on
// the generation they started with (drained generations are released to
// the collector). All methods are safe for concurrent use, including
// concurrently with Reload.
type Pool struct {
	gen atomic.Pointer[poolGeneration]

	// mu serializes Reload; the serving path never takes it.
	mu           sync.Mutex
	manifestPath string
	seq          uint64

	reloads atomic.Uint64
	cfg     clientConfig
}

// poolGeneration is one loaded shard set plus its lifecycle state. refs
// starts at 1 — the pool's own reference, dropped when the generation is
// retired — so the count can only reach zero after retirement, at which
// point drained closes exactly once.
type poolGeneration struct {
	set       *shard.Set
	seq       uint64
	refs      atomic.Int64
	retired   atomic.Bool
	drained   chan struct{}
	drainOnce sync.Once
}

func newPoolGeneration(set *shard.Set, seq uint64) *poolGeneration {
	g := &poolGeneration{set: set, seq: seq, drained: make(chan struct{})}
	g.refs.Store(1)
	return g
}

func (g *poolGeneration) release() {
	if g.refs.Add(-1) == 0 && g.retired.Load() {
		g.drainOnce.Do(func() { close(g.drained) })
	}
}

// retire marks the generation as superseded and drops the pool's own
// reference; drained closes once the last in-flight request releases.
func (g *poolGeneration) retire() {
	g.retired.Store(true)
	g.release()
}

// OpenPool loads every shard named by the manifest (written by qgen
// -shards N or Client.SaveShards) and assembles the sharded serving
// runtime. Manifest or shard failures — unreadable files, undecodable
// snapshots, shards from mixed generations — return an error wrapping
// ErrBadManifest. Options apply to every generation this pool ever loads,
// including reloaded ones.
func OpenPool(manifestPath string, opts ...Option) (*Pool, error) {
	var cfg clientConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	set, err := shard.Load(manifestPath, cfg.sys...)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadManifest, err)
	}
	p := &Pool{manifestPath: manifestPath, cfg: cfg, seq: 1}
	p.gen.Store(newPoolGeneration(set, 1))
	return p, nil
}

// Reload loads the generation named by manifestPath (empty = the current
// manifest path, re-read from disk) and swaps it in with zero downtime:
// requests that started on the old generation finish there, new requests
// see the new one, and the old generation is released once its last
// request drains. A failed load leaves the serving generation untouched
// and returns an error wrapping ErrBadManifest. Reloads are serialized;
// the expansion cache starts cold on the new generation.
func (p *Pool) Reload(manifestPath string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if manifestPath == "" {
		manifestPath = p.manifestPath
	}
	set, err := shard.Load(manifestPath, p.cfg.sys...)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadManifest, err)
	}
	p.seq++
	next := newPoolGeneration(set, p.seq)
	old := p.gen.Swap(next)
	p.manifestPath = manifestPath
	p.reloads.Add(1)
	old.retire()
	return nil
}

// acquire pins the current generation for one request. The retry loop
// closes the swap race: after incrementing refs we re-check that the
// generation is still current — if it is, the pool's own reference had
// not been dropped when we incremented (atomic operations are totally
// ordered), so the count can not have touched zero and the generation is
// safely pinned; if it is not, we release and pin the newer one instead.
func (p *Pool) acquire() *poolGeneration {
	for {
		g := p.gen.Load()
		g.refs.Add(1)
		if p.gen.Load() == g {
			return g
		}
		g.release()
	}
}

// NumShards returns the current generation's shard count.
func (p *Pool) NumShards() int {
	g := p.acquire()
	defer g.release()
	return g.set.NumShards()
}

// Generation returns the monotonically increasing sequence number of the
// currently served generation (1 for the initially opened one).
func (p *Pool) Generation() uint64 {
	g := p.acquire()
	defer g.release()
	return g.seq
}

// Queries returns the benchmark replicated into the current generation's
// shards (empty when the snapshots carry none).
func (p *Pool) Queries() []Query {
	g := p.acquire()
	defer g.release()
	qs := g.set.Queries()
	out := make([]Query, len(qs))
	copy(out, qs)
	return out
}

// Title returns the display title of a knowledge-base node (replicated
// graph, current generation).
func (p *Pool) Title(id NodeID) string {
	g := p.acquire()
	defer g.release()
	return g.set.Systems()[0].Snapshot.Name(id)
}

// Link computes L(q.k) against the current generation's replicated graph.
func (p *Pool) Link(keywords string) []Entity {
	g := p.acquire()
	defer g.release()
	sys := g.set.Systems()[0]
	ids := sys.LinkKeywords(keywords)
	out := make([]Entity, len(ids))
	for i, id := range ids {
		out[i] = Entity{ID: id, Title: sys.Snapshot.Name(id)}
	}
	return out
}

// parseWith mirrors Client.parse: raw query text to AST, failures
// wrapping ErrInvalidQuery.
func parseWith(set *shard.Set, query string) (search.Node, error) {
	node, err := set.Parse(query)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidQuery, err)
	}
	return node, nil
}

// Search is Client.Search over the sharded generation: scatter to every
// shard, score under global statistics, merge to the global top k. Same
// contract (top k by descending score, ties by ascending global doc id,
// empty non-nil slice on no match, k <= 0 ranks all candidates).
func (p *Pool) Search(ctx context.Context, query string, k int) ([]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g := p.acquire()
	defer g.release()
	node, err := parseWith(g.set, query)
	if err != nil {
		return nil, err
	}
	return g.set.Search(ctx, node, k)
}

// SearchAll is Client.SearchAll over the sharded generation: the batch
// fans out over a bounded worker pool and each worker runs its query's
// scatter-gather. The whole batch runs on the generation current at call
// time, even if a Reload lands mid-batch.
func (p *Pool) SearchAll(ctx context.Context, queries []string, k int, opts BatchOptions) ([][]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g := p.acquire()
	defer g.release()
	nodes := make([]search.Node, len(queries))
	for i, q := range queries {
		node, err := parseWith(g.set, q)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		nodes[i] = node
	}
	return g.set.SearchAll(ctx, nodes, k, opts)
}

// Expand is Client.Expand on the replicated graph: the pipeline runs once
// (shard 0), not per shard, through that generation's memoizing
// single-flight cache.
func (p *Pool) Expand(ctx context.Context, keywords string, opts ...ExpandOption) (*Expansion, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	eopts, err := normalizeExpandOptions(opts)
	if err != nil {
		return nil, err
	}
	g := p.acquire()
	defer g.release()
	return g.set.Expand(ctx, keywords, eopts)
}

// ExpandAll is Client.ExpandAll on the replicated graph.
func (p *Pool) ExpandAll(ctx context.Context, keywords []string, bopts BatchOptions, opts ...ExpandOption) ([]*Expansion, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	eopts, err := normalizeExpandOptions(opts)
	if err != nil {
		return nil, err
	}
	g := p.acquire()
	defer g.release()
	return g.set.ExpandAll(ctx, keywords, eopts, bopts)
}

// SearchExpansion evaluates an expansion end to end like
// Client.SearchExpansion: the expanded title query is built once on the
// replicated graph and scattered to every shard.
func (p *Pool) SearchExpansion(ctx context.Context, exp *Expansion, k int) (results []Result, ok bool, err error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	g := p.acquire()
	defer g.release()
	node, ok := g.set.ExpansionQuery(exp)
	if !ok {
		return nil, false, nil
	}
	rs, err := g.set.Search(ctx, node, k)
	return rs, true, err
}

// SearchExpansions is Client.SearchExpansions over the sharded
// generation; expansions with nothing to search for keep a nil ranking.
func (p *Pool) SearchExpansions(ctx context.Context, exps []*Expansion, k int, opts BatchOptions) ([][]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g := p.acquire()
	defer g.release()
	type job struct {
		idx  int
		node search.Node
	}
	jobs := make([]job, 0, len(exps))
	for i, exp := range exps {
		if node, ok := g.set.ExpansionQuery(exp); ok {
			jobs = append(jobs, job{idx: i, node: node})
		}
	}
	nodes := make([]search.Node, len(jobs))
	for i, j := range jobs {
		nodes[i] = j.node
	}
	rs, err := g.set.SearchAll(ctx, nodes, k, opts)
	if err != nil {
		return nil, err
	}
	out := make([][]Result, len(exps))
	for i, j := range jobs {
		out[j.idx] = rs[i]
	}
	return out, nil
}

// ShardStats is the size of one loaded shard.
type ShardStats struct {
	ID        int   `json:"id"`
	Documents int   `json:"documents"`
	Terms     int   `json:"terms"`
	Postings  int64 `json:"postings"`
}

// PoolStats extends the serving stats with the sharded runtime's shape:
// per-shard document/term/postings counts, the served generation's
// sequence number and how many reloads have happened.
type PoolStats struct {
	Stats
	Shards     []ShardStats `json:"shards"`
	Generation uint64       `json:"generation"`
	Reloads    uint64       `json:"reloads"`
}

// Stats reports the aggregate serving-state summary of the current
// generation (documents are the global count across shards; cache
// counters are the replicated-graph expansion cache's).
func (p *Pool) Stats() Stats {
	g := p.acquire()
	defer g.release()
	return poolStatsOf(g).Stats
}

// PoolStats reports the aggregate summary plus the per-shard breakdown
// and generation counters.
func (p *Pool) PoolStats() PoolStats {
	g := p.acquire()
	defer g.release()
	ps := poolStatsOf(g)
	ps.Reloads = p.reloads.Load()
	return ps
}

func poolStatsOf(g *poolGeneration) PoolStats {
	systems := g.set.Systems()
	st := systems[0].Snapshot.Stats()
	ps := PoolStats{
		Stats: Stats{
			Articles:         st.Articles,
			Redirects:        st.Redirects,
			Categories:       st.Categories,
			Links:            st.Links,
			Documents:        g.set.GlobalDocs(),
			BenchmarkQueries: len(g.set.Queries()),
			Cache:            g.set.ExpandCacheStats(),
		},
		Generation: g.seq,
		Shards:     make([]ShardStats, len(systems)),
	}
	for i, sys := range systems {
		ix := sys.Engine.Index()
		ps.Shards[i] = ShardStats{
			ID:        i,
			Documents: ix.NumDocs(),
			Terms:     ix.NumTerms(),
			Postings:  ix.NumPostings(),
		}
	}
	return ps
}

// CacheStats reports the current generation's expansion cache counters
// (the cache lives with the generation, so a reload starts it cold).
func (p *Pool) CacheStats() CacheStats {
	g := p.acquire()
	defer g.release()
	return g.set.ExpandCacheStats()
}
