package querygraph

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/querygraph/querygraph/internal/core"
	"github.com/querygraph/querygraph/internal/live"
	"github.com/querygraph/querygraph/internal/search"
	"github.com/querygraph/querygraph/internal/shard"
	"github.com/querygraph/querygraph/internal/trace"
)

// Pool is the sharded serving handle: a hash-partitioned snapshot
// generation (qgen -shards N, or Client.SaveShards) served with
// scatter-gather retrieval and single-pass expansion on the replicated
// graph. It satisfies Backend. For the same world, a Pool returns
// bit-identical Search, Expand and SearchExpansion results to a
// single-snapshot Client at any shard count — per-shard scorers run under
// globally aggregated collection statistics and the merged ranking
// preserves the engine's (score desc, doc asc) order over global doc ids.
//
// A Pool also hot-reloads: Reload assembles the next generation off to
// the side, swaps it in atomically, and lets in-flight requests finish on
// the generation they started with (drained generations are released to
// the collector). All methods are safe for concurrent use, including
// concurrently with Reload and Close. After Close, query-path methods
// return ErrClosed and the zero-value accessors return zero values.
//
//qlint:serving
//qlint:observed
type Pool struct {
	// gen is the serving generation; nil once the pool is closed. The
	// serving path loads it lock-free; every store happens under mu
	// (enforced by the atomicguard analyzer).
	//
	//qlint:guarded-by mu
	gen atomic.Pointer[poolGeneration]

	// mu serializes the write path — Reload, Close, Ingest and Compact;
	// the serving path never takes it.
	mu           sync.Mutex
	manifestPath string
	seq          uint64

	reloads atomic.Uint64
	cfg     clientConfig

	// Live-index lifecycle: completed-compaction count, the single-flight
	// guard of the background compactor, and the wait group Close blocks
	// on so no compaction goroutine outlives the pool.
	compactions atomic.Uint64
	compacting  atomic.Bool
	bg          sync.WaitGroup
}

// obs is the observer list attached at OpenPool time (it survives
// reloads, which only re-read cfg.sys).
func (p *Pool) obs() observers { return p.cfg.obs }

// poolGeneration is one loaded shard set plus its lifecycle state. refs
// starts at 1 — the pool's own reference, dropped when the generation is
// retired — so the count can only reach zero after retirement, at which
// point drained closes exactly once.
type poolGeneration struct {
	set *shard.Set
	seq uint64

	// delta is the live segment above this generation's base snapshot
	// (nil = empty). The serving path loads it lock-free together with
	// set; every store happens under the pool's mu (enforced by the
	// atomicguard analyzer). It lives with the generation so a pinned
	// request sees one consistent base+delta pair.
	//
	//qlint:guarded-by mu
	delta atomic.Pointer[live.Delta]

	refs      atomic.Int64
	retired   atomic.Bool
	drained   chan struct{}
	drainOnce sync.Once
}

func newPoolGeneration(set *shard.Set, seq uint64) *poolGeneration {
	g := &poolGeneration{set: set, seq: seq, drained: make(chan struct{})}
	g.refs.Store(1)
	return g
}

func (g *poolGeneration) release() {
	if g.refs.Add(-1) == 0 && g.retired.Load() {
		g.drainOnce.Do(func() { close(g.drained) })
	}
}

// retire marks the generation as superseded and drops the pool's own
// reference; drained closes once the last in-flight request releases.
func (g *poolGeneration) retire() {
	g.retired.Store(true)
	g.release()
}

// OpenPool loads every shard named by the manifest (written by qgen
// -shards N or Client.SaveShards) and assembles the sharded serving
// runtime. Manifest or shard failures — unreadable files, undecodable
// snapshots, shards from mixed generations — return an error wrapping
// ErrBadManifest. Options apply to every generation this pool ever loads,
// including reloaded ones.
func OpenPool(manifestPath string, opts ...Option) (*Pool, error) {
	var cfg clientConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	set, err := shard.Load(manifestPath, cfg.sys...)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadManifest, err)
	}
	p := &Pool{manifestPath: manifestPath, cfg: cfg, seq: 1}
	p.gen.Store(newPoolGeneration(set, 1)) //qlint:ignore atomicguard constructor: p has not escaped, no concurrent Reload/Close exists yet
	return p, nil
}

// Close retires the pool: the live generation is retired, in-flight
// requests drain (Close blocks until the last one releases), and every
// later query-path call returns ErrClosed. Close is idempotent — a second
// call returns nil immediately — and safe concurrently with Reload and
// the serving path. After Close, the zero-value accessors (NumShards,
// Generation, Queries, Title, Link, Stats, CacheStats) return zero
// values.
func (p *Pool) Close() error {
	p.mu.Lock()
	old := p.gen.Swap(nil)
	p.mu.Unlock()
	if old == nil {
		return nil
	}
	// An in-flight background compaction finds the nil generation under
	// mu and bails; wait it out so Close leaves no goroutine behind.
	p.bg.Wait()
	old.retire()
	<-old.drained
	return nil
}

// Reload loads the generation named by manifestPath (empty = the current
// manifest path, re-read from disk) and swaps it in with zero downtime:
// requests that started on the old generation finish there, new requests
// see the new one, and the old generation is released once its last
// request drains. A failed load leaves the serving generation untouched
// and returns an error wrapping ErrBadManifest; reloading a closed pool
// returns ErrClosed. Reloads are serialized; the expansion cache starts
// cold on the new generation.
func (p *Pool) Reload(manifestPath string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	start := time.Now()
	gen, shards, err := p.reloadLocked(manifestPath)
	// Observed under mu: serialized reloads report in order, so a
	// generation gauge never goes stale behind a racing reload.
	p.obs().reload(start, gen, shards, err)
	return err
}

// reloadLocked does the load-and-swap; Reload holds mu across it.
//
//qlint:locked mu
func (p *Pool) reloadLocked(manifestPath string) (generation uint64, shards int, err error) {
	cur := p.gen.Load()
	if cur == nil {
		return 0, 0, ErrClosed
	}
	if manifestPath == "" {
		manifestPath = p.manifestPath
	}
	set, err := shard.Load(manifestPath, p.cfg.sys...)
	if err != nil {
		// The old generation keeps serving; report its coordinates.
		return cur.seq, cur.set.NumShards(), fmt.Errorf("%w: %v", ErrBadManifest, err)
	}
	p.seq++
	next := newPoolGeneration(set, p.seq)
	// Carry a pending delta segment into the new generation when it still
	// fits: same base document count, same engine configuration — i.e. the
	// reloaded manifest is the same corpus the segment was ingested above
	// (a reload after Compact lands here with an already-empty delta). A
	// manifest with different shape supersedes the segment and drops it.
	if d := cur.delta.Load(); d.NumDocs() > 0 &&
		d.BaseDocs() == set.GlobalDocs() && d.Config() == liveConfigOf(set.Systems()[0]) {
		next.delta.Store(d)
	}
	old := p.gen.Swap(next)
	p.manifestPath = manifestPath
	p.reloads.Add(1)
	old.retire()
	return next.seq, set.NumShards(), nil
}

// acquire pins the current generation for one request; it fails with
// ErrClosed once Close has swapped the generation out. The retry loop
// closes the swap race: after incrementing refs we re-check that the
// generation is still current — if it is, the pool's own reference had
// not been dropped when we incremented (atomic operations are totally
// ordered), so the count can not have touched zero and the generation is
// safely pinned; if it is not (a Reload swapped in a newer generation, or
// Close swapped in nil), we release and retry on whatever is current.
func (p *Pool) acquire() (*poolGeneration, error) {
	for {
		g := p.gen.Load()
		if g == nil {
			return nil, ErrClosed
		}
		g.refs.Add(1)
		if p.gen.Load() == g {
			return g, nil
		}
		g.release()
	}
}

// NumShards returns the current generation's shard count (0 once closed).
func (p *Pool) NumShards() int {
	g, err := p.acquire()
	if err != nil {
		return 0
	}
	defer g.release()
	return g.set.NumShards()
}

// Generation returns the monotonically increasing sequence number of the
// currently served generation (1 for the initially opened one; 0 once
// closed).
func (p *Pool) Generation() uint64 {
	g, err := p.acquire()
	if err != nil {
		return 0
	}
	defer g.release()
	return g.seq
}

// Queries returns the benchmark replicated into the current generation's
// shards (empty when the snapshots carry none, or once closed).
func (p *Pool) Queries() []Query {
	g, err := p.acquire()
	if err != nil {
		return nil
	}
	defer g.release()
	qs := g.set.Queries()
	out := make([]Query, len(qs))
	copy(out, qs)
	return out
}

// Title returns the display title of a knowledge-base node (replicated
// graph, current generation; "" once closed).
func (p *Pool) Title(id NodeID) string {
	g, err := p.acquire()
	if err != nil {
		return ""
	}
	defer g.release()
	return g.set.Systems()[0].Snapshot.Name(id)
}

// Link computes L(q.k) against the current generation's replicated graph
// (nil once closed).
func (p *Pool) Link(keywords string) []Entity {
	g, err := p.acquire()
	if err != nil {
		return nil
	}
	defer g.release()
	sys := g.set.Systems()[0]
	ids := sys.LinkKeywords(keywords)
	out := make([]Entity, len(ids))
	for i, id := range ids {
		out[i] = Entity{ID: id, Title: sys.Snapshot.Name(id)}
	}
	return out
}

// parseWith mirrors the client's parse: raw query text to AST, failures
// wrapping ErrInvalidQuery.
func parseWith(set *shard.Set, query string) (search.Node, error) {
	node, err := set.Parse(query)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidQuery, err)
	}
	return node, nil
}

// searchGen evaluates one parsed query on a pinned generation: the
// delta-free fast path keeps the shard scatter-gather untouched, a live
// delta joins the fan-out as one extra source under merged statistics.
func searchGen(ctx context.Context, g *poolGeneration, node search.Node, k int) ([]Result, error) {
	if d := g.delta.Load(); d != nil && d.NumDocs() > 0 {
		return g.set.SearchExtra(ctx, node, k, d.Source(), d.TotalTokens())
	}
	return g.set.Search(ctx, node, k)
}

// searchGenAll is the batch form of searchGen: delta-free batches keep
// the fused union scorer, delta batches fan the extra-source search out
// over the same bounded worker pool. The whole batch runs on the pinned
// generation.
func searchGenAll(ctx context.Context, g *poolGeneration, nodes []search.Node, k int, opts BatchOptions) ([][]Result, error) {
	d := g.delta.Load()
	if d == nil || d.NumDocs() == 0 {
		return g.set.SearchAll(ctx, nodes, k, opts)
	}
	out := make([][]Result, len(nodes))
	err := core.ForEach(ctx, len(nodes), opts.Workers, func(i int) error {
		rs, err := g.set.SearchExtra(ctx, nodes[i], k, d.Source(), d.TotalTokens())
		if err != nil {
			return fmt.Errorf("search %d: %w", i, err)
		}
		out[i] = rs
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Search is Client.Search over the sharded generation: scatter to every
// shard, score under global statistics, merge to the global top k. Same
// contract (top k by descending score, ties by ascending global doc id,
// empty non-nil slice on no match, k <= 0 ranks all candidates).
func (p *Pool) Search(ctx context.Context, query string, k int) ([]Result, error) {
	start := time.Now()
	rs, shards, err := p.searchText(ctx, query, k)
	p.obs().search(start, k, shards, false, err)
	return rs, err
}

// SearchInto is Search reusing dst's storage for the returned ranking
// (dst may be nil). The scatter-gather itself still allocates per-shard
// merge state — the zero-allocation steady state is a *Client property —
// but the contract (results copied into dst, query and dst not retained)
// is identical, so front ends program against one Backend shape.
func (p *Pool) SearchInto(ctx context.Context, query string, k int, dst []Result) ([]Result, error) {
	start := time.Now()
	rs, shards, err := p.searchIntoText(ctx, query, k, dst)
	p.obs().search(start, k, shards, false, err)
	return rs, err
}

func (p *Pool) searchIntoText(ctx context.Context, query string, k int, dst []Result) ([]Result, int, error) {
	rs, shards, err := p.searchText(ctx, query, k)
	if err != nil {
		return nil, shards, err
	}
	if dst == nil && rs != nil {
		return rs, shards, nil
	}
	return append(dst[:0], rs...), shards, nil
}

func (p *Pool) searchText(ctx context.Context, query string, k int) ([]Result, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	g, err := p.acquire()
	if err != nil {
		return nil, 0, err
	}
	defer g.release()
	// The untraced branch is the pinned 0 allocs/op fast path: one
	// context lookup, then exactly the pre-trace code.
	tr := trace.FromContext(ctx)
	if tr == nil {
		node, err := parseWith(g.set, query)
		if err != nil {
			return nil, g.set.NumShards(), err
		}
		rs, err := searchGen(ctx, g, node, k)
		return rs, g.set.NumShards(), err
	}
	parseStart := time.Now()
	node, err := parseWith(g.set, query)
	if err != nil {
		tr.Span("parse", parseStart, "invalid_query")
		return nil, g.set.NumShards(), err
	}
	tr.Span("parse", parseStart, "")
	searchStart := time.Now()
	rs, err := searchGen(ctx, g, node, k)
	tr.Span("search", searchStart, ErrorClass(err))
	return rs, g.set.NumShards(), err
}

// SearchAll is Client.SearchAll over the sharded generation: the batch
// fans out over a bounded worker pool and each worker runs its query's
// scatter-gather. The whole batch runs on the generation current at call
// time, even if a Reload lands mid-batch.
func (p *Pool) SearchAll(ctx context.Context, queries []string, k int, opts BatchOptions) ([][]Result, error) {
	start := time.Now()
	rss, shards, err := p.searchAll(ctx, queries, k, opts)
	p.obs().batch(start, BatchSearch, len(queries), k, shards, err)
	return rss, err
}

func (p *Pool) searchAll(ctx context.Context, queries []string, k int, opts BatchOptions) ([][]Result, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	g, err := p.acquire()
	if err != nil {
		return nil, 0, err
	}
	defer g.release()
	nodes := make([]search.Node, len(queries))
	for i, q := range queries {
		node, err := parseWith(g.set, q)
		if err != nil {
			return nil, g.set.NumShards(), fmt.Errorf("query %d: %w", i, err)
		}
		nodes[i] = node
	}
	rss, err := searchGenAll(ctx, g, nodes, k, opts)
	return rss, g.set.NumShards(), err
}

// Expand is Client.Expand on the replicated graph: the pipeline runs once
// (shard 0), not per shard, through that generation's memoizing
// single-flight cache.
func (p *Pool) Expand(ctx context.Context, keywords string, opts ...ExpandOption) (*Expansion, error) {
	start := time.Now()
	exp, outcome, shards, err := p.expand(ctx, keywords, opts)
	p.obs().expand(start, outcome, exp, shards, err)
	return exp, err
}

func (p *Pool) expand(ctx context.Context, keywords string, opts []ExpandOption) (*Expansion, CacheOutcome, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, CacheBypass, 0, err
	}
	eopts, err := normalizeExpandOptions(opts)
	if err != nil {
		return nil, CacheBypass, 0, err
	}
	g, err := p.acquire()
	if err != nil {
		return nil, CacheBypass, 0, err
	}
	defer g.release()
	tr := trace.FromContext(ctx)
	start := time.Now()
	exp, outcome, err := g.set.ExpandOutcome(ctx, keywords, eopts)
	if tr != nil {
		// The cache outcome of the expand lookup rides in the span detail.
		tr.Add("expand", start, -1, 0, false, ErrorClass(err), outcome.String())
	}
	return exp, outcome, g.set.NumShards(), err
}

// ExpandAll is Client.ExpandAll on the replicated graph.
func (p *Pool) ExpandAll(ctx context.Context, keywords []string, bopts BatchOptions, opts ...ExpandOption) ([]*Expansion, error) {
	start := time.Now()
	exps, shards, err := p.expandAll(ctx, keywords, bopts, opts)
	p.obs().batch(start, BatchExpand, len(keywords), 0, shards, err)
	return exps, err
}

func (p *Pool) expandAll(ctx context.Context, keywords []string, bopts BatchOptions, opts []ExpandOption) ([]*Expansion, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	eopts, err := normalizeExpandOptions(opts)
	if err != nil {
		return nil, 0, err
	}
	g, err := p.acquire()
	if err != nil {
		return nil, 0, err
	}
	defer g.release()
	exps, err := g.set.ExpandAll(ctx, keywords, eopts, bopts)
	return exps, g.set.NumShards(), err
}

// SearchExpansion evaluates an expansion end to end like
// Client.SearchExpansion: the expanded title query is built once on the
// replicated graph and scattered to every shard.
func (p *Pool) SearchExpansion(ctx context.Context, exp *Expansion, k int) (results []Result, ok bool, err error) {
	start := time.Now()
	rs, ok, shards, err := p.searchExpansion(ctx, exp, k)
	p.obs().search(start, k, shards, true, err)
	return rs, ok, err
}

func (p *Pool) searchExpansion(ctx context.Context, exp *Expansion, k int) ([]Result, bool, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, 0, err
	}
	g, err := p.acquire()
	if err != nil {
		return nil, false, 0, err
	}
	defer g.release()
	node, ok := g.set.ExpansionQuery(exp)
	if !ok {
		return nil, false, g.set.NumShards(), nil
	}
	rs, err := searchGen(ctx, g, node, k)
	return rs, true, g.set.NumShards(), err
}

// SearchExpansions is Client.SearchExpansions over the sharded
// generation; expansions with nothing to search for keep a nil ranking.
func (p *Pool) SearchExpansions(ctx context.Context, exps []*Expansion, k int, opts BatchOptions) ([][]Result, error) {
	start := time.Now()
	rss, shards, err := p.searchExpansions(ctx, exps, k, opts)
	p.obs().batch(start, BatchSearchExpansions, len(exps), k, shards, err)
	return rss, err
}

func (p *Pool) searchExpansions(ctx context.Context, exps []*Expansion, k int, opts BatchOptions) ([][]Result, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	g, err := p.acquire()
	if err != nil {
		return nil, 0, err
	}
	defer g.release()
	type job struct {
		idx  int
		node search.Node
	}
	jobs := make([]job, 0, len(exps))
	for i, exp := range exps {
		if node, ok := g.set.ExpansionQuery(exp); ok {
			jobs = append(jobs, job{idx: i, node: node})
		}
	}
	nodes := make([]search.Node, len(jobs))
	for i, j := range jobs {
		nodes[i] = j.node
	}
	rs, err := searchGenAll(ctx, g, nodes, k, opts)
	if err != nil {
		return nil, g.set.NumShards(), err
	}
	out := make([][]Result, len(exps))
	for i, j := range jobs {
		out[j.idx] = rs[i]
	}
	return out, g.set.NumShards(), nil
}

// Ingest appends documents to the current generation's in-memory delta
// segment; they are searchable by the time the call returns — joined to
// the shard fan-out as one extra source under merged collection
// statistics, bit-identical to a re-partitioned rebuild — and survive
// into the next compaction. The batch is atomic: a duplicate external id
// (against every shard and the segment itself) or a segment past its
// capacity (WithDeltaCapacity) admits nothing. docs is not retained.
func (p *Pool) Ingest(ctx context.Context, docs []Document) (IngestStats, error) {
	start := time.Now()
	st, shards, err := p.ingest(ctx, docs)
	p.obs().ingest(start, len(docs), st.DeltaDocs, shards, err)
	return st, err
}

func (p *Pool) ingest(ctx context.Context, docs []Document) (IngestStats, int, error) {
	if err := ctx.Err(); err != nil {
		return IngestStats{}, 0, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	g := p.gen.Load()
	if g == nil {
		return IngestStats{}, 0, ErrClosed
	}
	shards := g.set.NumShards()
	cur := g.delta.Load()
	out := IngestStats{
		DeltaDocs:  cur.NumDocs(),
		DeltaBytes: cur.Bytes(),
		Generation: g.seq,
	}
	if len(docs) == 0 {
		return out, shards, nil
	}
	if held := cur.NumDocs(); held+len(docs) > p.cfg.deltaCapacity() {
		return out, shards, fmt.Errorf("%w: %d held + %d submitted exceeds capacity %d",
			ErrDeltaFull, held, len(docs), p.cfg.deltaCapacity())
	}
	for _, d := range docs {
		if d.ID == "" {
			continue
		}
		for _, sys := range g.set.Systems() {
			if _, ok := sys.Collection.ByExternalID(d.ID); ok {
				return out, shards, fmt.Errorf("%w: duplicate external id %q", ErrInvalidOptions, d.ID)
			}
		}
	}
	next, err := live.Append(cur, liveConfigOf(g.set.Systems()[0]), g.set.GlobalDocs(), docs)
	if err != nil {
		return out, shards, fmt.Errorf("%w: %v", ErrInvalidOptions, err)
	}
	g.delta.Store(next) //qlint:ignore atomicguard p.mu is held since the Lock above; the generation's guard is the pool's mutex
	p.maybeAutoCompactLocked(next.NumDocs())
	return IngestStats{
		Ingested:   len(docs),
		DeltaDocs:  next.NumDocs(),
		DeltaBytes: next.Bytes(),
		Generation: g.seq,
	}, shards, nil
}

// Compact folds the delta segment into a fresh on-disk generation — each
// shard's snapshot extended with its hash-share of the delta documents,
// exactly the partition a full re-shard of the merged corpus produces —
// republishes the manifest atomically, and hot-swaps the reloaded
// generation with zero downtime: requests pinned to the old generation
// finish on it (the refcounted drain Reload uses), new requests see the
// compacted one, and search results are identical before and after. An
// empty delta is a successful no-op with the generation unchanged.
func (p *Pool) Compact(ctx context.Context) (CompactStats, error) {
	start := time.Now()
	cs, shards, err := p.compact(ctx)
	p.obs().compact(start, cs.Compacted, cs.Generation, shards, err)
	return cs, err
}

func (p *Pool) compact(ctx context.Context) (CompactStats, int, error) {
	if err := ctx.Err(); err != nil {
		return CompactStats{}, 0, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.compactLocked()
}

// compactLocked does the fold-write-reload-swap; callers hold mu. The
// new generation is loaded back from the bytes just written — the same
// read path Reload exercises — so a compacted snapshot that would not
// serve is rejected here, with the old generation (and its delta) still
// serving untouched.
//
//qlint:locked mu
func (p *Pool) compactLocked() (CompactStats, int, error) {
	g := p.gen.Load()
	if g == nil {
		return CompactStats{}, 0, ErrClosed
	}
	shards := g.set.NumShards()
	delta := g.delta.Load()
	if delta.NumDocs() == 0 {
		return CompactStats{Documents: g.set.GlobalDocs(), Generation: g.seq}, shards, nil
	}
	archives, err := shard.Fold(g.set, delta)
	if err != nil {
		return CompactStats{Generation: g.seq}, shards, err
	}
	if _, err := shard.WriteArchives(p.manifestPath, archives); err != nil {
		return CompactStats{Generation: g.seq}, shards, err
	}
	set, err := shard.Load(p.manifestPath, p.cfg.sys...)
	if err != nil {
		return CompactStats{Generation: g.seq}, shards, fmt.Errorf("%w: %v", ErrBadManifest, err)
	}
	p.seq++
	next := newPoolGeneration(set, p.seq)
	old := p.gen.Swap(next)
	p.compactions.Add(1)
	old.retire()
	return CompactStats{
		Compacted:  delta.NumDocs(),
		Documents:  set.GlobalDocs(),
		Generation: p.seq,
	}, set.NumShards(), nil
}

// maybeAutoCompactLocked launches one background compaction when the
// segment has reached the WithAutoCompact threshold; at most one runs at
// a time and the triggering Ingest returns immediately — searches keep
// being served from base+delta until the new generation swaps in.
// Callers hold mu.
//
//qlint:locked mu
func (p *Pool) maybeAutoCompactLocked(deltaDocs int) {
	if p.cfg.autoCompact <= 0 || deltaDocs < p.cfg.autoCompact {
		return
	}
	if !p.compacting.CompareAndSwap(false, true) {
		return
	}
	p.bg.Add(1)
	go func() {
		defer p.bg.Done()
		defer p.compacting.Store(false)
		start := time.Now()
		cs, shards, err := func() (CompactStats, int, error) {
			p.mu.Lock()
			defer p.mu.Unlock()
			return p.compactLocked()
		}()
		p.obs().compact(start, cs.Compacted, cs.Generation, shards, err)
	}()
}

// ShardStats is the size of one loaded shard.
type ShardStats struct {
	ID        int   `json:"id"`
	Documents int   `json:"documents"`
	Terms     int   `json:"terms"`
	Postings  int64 `json:"postings"`
}

// PoolStats extends the serving stats with the sharded runtime's shape:
// per-shard document/term/postings counts, the served generation's
// sequence number and how many reloads have happened.
type PoolStats struct {
	Stats
	Shards     []ShardStats `json:"shards"`
	Generation uint64       `json:"generation"`
	Reloads    uint64       `json:"reloads"`
}

// Stats reports the aggregate serving-state summary of the current
// generation (documents are the global count across shards; cache
// counters are the replicated-graph expansion cache's). Zero once closed.
func (p *Pool) Stats() Stats {
	g, err := p.acquire()
	if err != nil {
		return Stats{}
	}
	defer g.release()
	return poolStatsOf(g, p.compactions.Load()).Stats
}

// PoolStats reports the aggregate summary plus the per-shard breakdown
// and generation counters. Zero (with the lifetime reload count) once
// closed.
func (p *Pool) PoolStats() PoolStats {
	g, err := p.acquire()
	if err != nil {
		return PoolStats{Reloads: p.reloads.Load()}
	}
	defer g.release()
	ps := poolStatsOf(g, p.compactions.Load())
	ps.Reloads = p.reloads.Load()
	return ps
}

func poolStatsOf(g *poolGeneration, compactions uint64) PoolStats {
	systems := g.set.Systems()
	st := systems[0].Snapshot.Stats()
	delta := g.delta.Load()
	ps := PoolStats{
		Stats: Stats{
			Articles:         st.Articles,
			Redirects:        st.Redirects,
			Categories:       st.Categories,
			Links:            st.Links,
			Documents:        g.set.GlobalDocs(),
			BenchmarkQueries: len(g.set.Queries()),
			Delta: DeltaStats{
				Documents:    delta.NumDocs(),
				PendingBytes: delta.Bytes(),
				Generation:   g.seq,
				Compactions:  compactions,
			},
			Cache: g.set.ExpandCacheStats(),
		},
		Generation: g.seq,
		Shards:     make([]ShardStats, len(systems)),
	}
	for i, sys := range systems {
		ix := sys.Engine.Index()
		ps.Shards[i] = ShardStats{
			ID:        i,
			Documents: ix.NumDocs(),
			Terms:     ix.NumTerms(),
			Postings:  ix.NumPostings(),
		}
	}
	return ps
}

// CacheStats reports the current generation's expansion cache counters
// (the cache lives with the generation, so a reload starts it cold; zero
// once closed).
func (p *Pool) CacheStats() CacheStats {
	g, err := p.acquire()
	if err != nil {
		return CacheStats{}
	}
	defer g.release()
	return g.set.ExpandCacheStats()
}
