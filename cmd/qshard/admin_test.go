package main

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/querygraph/querygraph/internal/rpc"
	"github.com/querygraph/querygraph/internal/trace"
)

// TestAdminServerEndpoints pins the -admin surface, mirroring qserve's:
// pprof and the flight recorder answer on the admin mux. (The RPC
// serving port speaks only the binary shard protocol, so there is no
// HTTP surface there to leak onto — the admin listener is the only
// place these endpoints exist.)
func TestAdminServerEndpoints(t *testing.T) {
	srv := newAdminServer("127.0.0.1:0", trace.NewRecorder(8))
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol", "/v1/debug/requests", "/v1/debug/requests?min_ms=2.5"} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		srv.Handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Errorf("admin %s: status = %d, want 200", path, rec.Code)
		}
	}
}

// TestRequestHookAttributesTraces pins the shard-side half of trace
// propagation: a hooked request carrying a trace ID lands in the flight
// recorder under that ID with the op and error class; an untraced
// (trace-id-0, i.e. v1) request is logged but never recorded.
func TestRequestHookAttributesTraces(t *testing.T) {
	rec := trace.NewRecorder(8)
	var buf bytes.Buffer
	hook := requestHook(rec, slog.New(slog.NewTextHandler(&buf, nil)), true, 0.000001)

	start := time.Now().Add(-2 * time.Millisecond)
	hook(rpc.OpTopK, 0xdeadbeef, start, 2*time.Millisecond, "")
	hook(rpc.OpPlan, 0xdeadbeef, start, 2*time.Millisecond, "timeout")
	hook(rpc.OpHealthz, 0, start, time.Millisecond, "")

	recs := rec.Snapshot(0)
	if len(recs) != 2 {
		t.Fatalf("recorder holds %d records, want 2 (the untraced request must not be recorded)", len(recs))
	}
	if recs[0].Op != "plan" || recs[0].Err != "timeout" || recs[0].TraceID != "00000000deadbeef" {
		t.Errorf("newest record = %+v, want op=plan err=timeout trace 00000000deadbeef", recs[0])
	}
	if recs[1].Op != "topk" || recs[1].Err != "" {
		t.Errorf("older record = %+v, want op=topk with no error", recs[1])
	}
	if recs[0].DurMS < 1.9 || recs[0].DurMS > 2.1 {
		t.Errorf("DurMS = %v, want ~2", recs[0].DurMS)
	}

	// The recorder's JSON endpoint serves shard-side records too.
	w := httptest.NewRecorder()
	trace.Handler(rec)(w, httptest.NewRequest(http.MethodGet, "/v1/debug/requests", nil))
	var resp struct {
		Requests []*trace.Record `json:"requests"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON %q: %v", w.Body.String(), err)
	}
	if len(resp.Requests) != 2 || resp.Requests[0].TraceID != "00000000deadbeef" {
		t.Errorf("endpoint served %+v, want the 2 attributed records", resp.Requests)
	}

	out := buf.String()
	for _, want := range []string{
		"msg=rpc", "op=topk", "op=plan", "op=healthz", "trace_id=00000000deadbeef",
		"trace_id=0000000000000000", `msg="slow rpc"`, "err=timeout",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q:\n%s", want, out)
		}
	}
}
