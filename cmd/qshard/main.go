// Command qshard serves one shard snapshot over the compact binary RPC
// protocol (internal/rpc) — the per-shard half of the distributed
// serving runtime. A fleet of qshard processes, one per shard of a
// partition written by qgen -shards N, is fronted by the fan-out
// coordinator (querygraph.OpenTopology / qserve -load topology.json),
// which scatters plan-leaves and top-k requests across them and merges
// the per-shard rankings bit-identically to the in-process pool.
//
// Usage:
//
//	qshard -load DIR/shard-000.qgs -addr :9000 [-cache N]
//
// -load accepts either a per-shard snapshot (one slice of a qgen -shards
// partition) or a complete single snapshot (qgen -out world.qgs), which
// serves as the sole shard of a one-shard fleet. The same shard file may
// be served by several qshard processes on different addresses —
// replicas — which the coordinator uses for retry failover and hedged
// requests.
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting,
// requests already being handled finish writing their responses, then
// the process exits.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"os/signal"
	"syscall"
	"time"

	"github.com/querygraph/querygraph/internal/core"
	"github.com/querygraph/querygraph/internal/rpc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qshard: ")
	var (
		addr  = flag.String("addr", ":9000", "listen address")
		load  = flag.String("load", "", "shard snapshot to serve (qgen -shards N slice, or a complete .qgs as a one-shard fleet); required")
		cache = flag.Int("cache", 0, "expansion cache capacity (0 = default 1024, negative disables)")
	)
	flag.Parse()
	if *load == "" {
		log.Fatal("-load is required: a shard snapshot (qgen -shards N -out DIR) or a complete snapshot (qgen -out world.qgs)")
	}

	var opts []core.SystemOption
	if *cache != 0 {
		opts = append(opts, core.WithExpandCache(*cache))
	}
	start := time.Now()
	srv, err := rpc.LoadServerFile(*load, opts...)
	if err != nil {
		log.Fatal(err)
	}
	id := srv.Identity()
	log.Printf("loaded %s in %v: shard %d/%d, %d local documents of %d global, %d benchmark queries",
		*load, time.Since(start).Round(time.Millisecond),
		id.ShardID, id.ShardCount, id.LocalDocs, id.GlobalDocs, id.NumQueries)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	log.Printf("serving shard %d/%d on %s (protocol v%d)", id.ShardID, id.ShardCount, ln.Addr(), rpc.Version)
	// Serve closes itself when ctx fires (signal received) and returns
	// nil after the drain; anything else is a real listener failure.
	if err := srv.Serve(ctx, ln); err != nil {
		log.Fatal(err)
	}
	log.Print("bye")
}
