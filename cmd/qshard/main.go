// Command qshard serves one shard snapshot over the compact binary RPC
// protocol (internal/rpc) — the per-shard half of the distributed
// serving runtime. A fleet of qshard processes, one per shard of a
// partition written by qgen -shards N, is fronted by the fan-out
// coordinator (querygraph.OpenTopology / qserve -load topology.json),
// which scatters plan-leaves and top-k requests across them and merges
// the per-shard rankings bit-identically to the in-process pool.
//
// Usage:
//
//	qshard -load DIR/shard-000.qgs -addr :9000 [-cache N]
//
// -load accepts either a per-shard snapshot (one slice of a qgen -shards
// partition) or a complete single snapshot (qgen -out world.qgs), which
// serves as the sole shard of a one-shard fleet. The same shard file may
// be served by several qshard processes on different addresses —
// replicas — which the coordinator uses for retry failover and hedged
// requests.
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting,
// requests already being handled finish writing their responses, then
// the process exits.
//
// -admin ADDR starts a private HTTP listener (mirroring qserve's)
// serving net/http/pprof under /debug/pprof/ and the shard's flight
// recorder at GET /v1/debug/requests — the last -trace-ring RPC
// requests that carried a v2 trace ID, attributed to the originating
// coordinator request, so a slow coordinator trace can be joined
// against the shard-side view. Keep the admin address off the public
// network. -access-log emits one slog line per RPC and -slowlog-ms N
// logs any RPC at least N milliseconds slow at warn level.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/querygraph/querygraph/internal/core"
	"github.com/querygraph/querygraph/internal/rpc"
	"github.com/querygraph/querygraph/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qshard: ")
	var (
		addr  = flag.String("addr", ":9000", "listen address")
		admin = flag.String("admin", "", "optional admin listen address serving net/http/pprof and GET /v1/debug/requests (disabled when empty; keep it private)")
		load  = flag.String("load", "", "shard snapshot to serve (qgen -shards N slice, or a complete .qgs as a one-shard fleet); required")
		cache = flag.Int("cache", 0, "expansion cache capacity (0 = default 1024, negative disables)")

		traceRing = flag.Int("trace-ring", 256, "flight-recorder capacity: last N traced RPC requests served at /v1/debug/requests on the admin listener")
		slowlogMS = flag.Float64("slowlog-ms", 0, "log any RPC at least this many milliseconds slow (0 disables)")
		accessLog = flag.Bool("access-log", false, "structured access log: one slog line per RPC request")
	)
	flag.Parse()
	if *load == "" {
		log.Fatal("-load is required: a shard snapshot (qgen -shards N -out DIR) or a complete snapshot (qgen -out world.qgs)")
	}

	var opts []core.SystemOption
	if *cache != 0 {
		opts = append(opts, core.WithExpandCache(*cache))
	}
	start := time.Now()
	srv, err := rpc.LoadServerFile(*load, opts...)
	if err != nil {
		log.Fatal(err)
	}
	id := srv.Identity()
	log.Printf("loaded %s in %v: shard %d/%d, %d local documents of %d global, %d benchmark queries",
		*load, time.Since(start).Round(time.Millisecond),
		id.ShardID, id.ShardCount, id.LocalDocs, id.GlobalDocs, id.NumQueries)

	recorder := trace.NewRecorder(*traceRing)
	srv.SetRequestHook(requestHook(recorder,
		slog.New(slog.NewTextHandler(os.Stderr, nil)), *accessLog, *slowlogMS))
	var adminSrv *http.Server
	if *admin != "" {
		adminSrv = newAdminServer(*admin, recorder)
		go func() {
			if err := adminSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("admin server: %v", err)
			}
		}()
		log.Printf("admin endpoints (pprof, /v1/debug/requests) on %s", *admin)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	log.Printf("serving shard %d/%d on %s (protocol v%d)", id.ShardID, id.ShardCount, ln.Addr(), rpc.Version)
	// Serve closes itself when ctx fires (signal received) and returns
	// nil after the drain; anything else is a real listener failure.
	if err := srv.Serve(ctx, ln); err != nil {
		log.Fatal(err)
	}
	if adminSrv != nil {
		_ = adminSrv.Close()
	}
	log.Print("bye")
}
