package main

import (
	"context"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"time"

	"github.com/querygraph/querygraph/internal/rpc"
	"github.com/querygraph/querygraph/internal/trace"
)

// newAdminServer builds the private admin listener, mirroring qserve's:
// Go's pprof handlers plus the shard's flight recorder on an explicit
// mux — never the default mux, and never the RPC serving port, which
// speaks only the binary shard protocol.
func newAdminServer(addr string, rec *trace.Recorder) *http.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /v1/debug/requests", trace.Handler(rec))
	return &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
}

// requestHook builds the rpc.Server hook that attributes shard-side
// work to the originating coordinator request: requests carrying a v2
// trace ID land in the flight recorder under that ID (so one
// coordinator trace can be joined against each shard's recorder), the
// access log gets one line per request, and anything at or over the
// slowlog threshold is logged at warn level. Untraced (v1 or
// trace-id-0) requests are logged but never recorded — the recorder
// exists for cross-process attribution, and 0 is the reserved
// "untraced" ID.
func requestHook(rec *trace.Recorder, logger *slog.Logger, accessLog bool, slowlogMS float64) rpc.RequestHook {
	return func(op rpc.Op, traceID uint64, start time.Time, dur time.Duration, errClass string) {
		durMS := float64(dur) / 1e6
		id := trace.ID(traceID)
		if traceID != 0 {
			rec.Store(&trace.Record{
				TraceID: id.String(),
				Op:      op.String(),
				Time:    start,
				DurMS:   durMS,
				Err:     errClass,
				Spans:   []trace.Span{},
			})
		}
		if logger == nil {
			return
		}
		if accessLog {
			logger.LogAttrs(context.Background(), slog.LevelInfo, "rpc",
				slog.String("trace_id", id.String()),
				slog.String("op", op.String()),
				slog.Float64("dur_ms", durMS),
				slog.String("err", errClass))
		}
		if slowlogMS > 0 && durMS >= slowlogMS {
			logger.LogAttrs(context.Background(), slog.LevelWarn, "slow rpc",
				slog.String("trace_id", id.String()),
				slog.String("op", op.String()),
				slog.Float64("dur_ms", durMS),
				slog.String("err", errClass))
		}
	}
}
