// Command qgen generates a synthetic benchmark world — Wikipedia snapshot,
// ImageCLEF-shaped corpus and query set — and writes it out.
//
// With a directory -out (the default), it writes the text dumps:
//
//	corpus.xml   every image record (parsable by internal/corpus)
//	queries.tsv  query id, topic, keywords, relevant doc ids
//	wiki.tsv     knowledge-base dump (nodes and typed edges)
//
// With an -out ending in ".qgs" (e.g. -out world.qgs), it instead builds
// the full serving state — system assembly plus indexing — once, and
// writes the versioned binary snapshot of internal/store. qbench, qgraph
// and the examples load that artifact with -load and start serving
// without re-running generation or indexing.
//
// With -shards N (N >= 1), the serving state is hash-partitioned into N
// per-shard snapshots plus a manifest.json inside the -out directory: the
// knowledge graph and query benchmark are replicated into every shard,
// the corpus and index are partitioned by document id, and global
// collection statistics are recorded so qserve -load DIR/manifest.json
// serves bit-identical results through the sharded pool (with hot reload).
//
// Usage: qgen [-seed N] [-out DIR|FILE.qgs] [-shards N] [-topics N] [-docs N]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	querygraph "github.com/querygraph/querygraph"
	"github.com/querygraph/querygraph/internal/corpus"
	"github.com/querygraph/querygraph/internal/graph"
	"github.com/querygraph/querygraph/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qgen: ")
	var (
		seed   = flag.Int64("seed", 0, "world seed (0 = default)")
		out    = flag.String("out", "world", "output directory, or a .qgs file for a binary serving snapshot")
		shards = flag.Int("shards", 0, "hash-partition the serving state into N shard snapshots plus a manifest.json in the -out directory (0 = single snapshot / text dumps)")
		topics = flag.Int("topics", 0, "topic count (0 = default)")
		docs   = flag.Int("docs", 0, "documents per topic (0 = default)")
	)
	flag.Parse()
	if *shards < 0 {
		log.Fatal("-shards must be >= 1 (or omitted)")
	}
	if *shards > 0 && strings.HasSuffix(*out, ".qgs") {
		log.Fatal("-shards writes a directory of shard snapshots plus manifest.json; pass a directory -out, not a .qgs file")
	}

	cfg := synth.Default()
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *topics > 0 {
		cfg.Topics = *topics
	}
	if *docs > 0 {
		cfg.DocsPerTopic = *docs
	}
	w, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *shards > 0 {
		if err := writeShards(*out, w, *shards); err != nil {
			log.Fatal(err)
		}
		return
	}
	if strings.HasSuffix(*out, ".qgs") {
		if err := writeSnapshot(*out, w); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	if err := writeCorpus(filepath.Join(*out, "corpus.xml"), w); err != nil {
		log.Fatal(err)
	}
	if err := writeQueries(filepath.Join(*out, "queries.tsv"), w); err != nil {
		log.Fatal(err)
	}
	if err := writeWiki(filepath.Join(*out, "wiki.tsv"), w); err != nil {
		log.Fatal(err)
	}
	st := w.Snapshot.Stats()
	fmt.Printf("wrote %s: %d articles, %d redirects, %d categories, %d docs, %d queries\n",
		*out, st.Articles, st.Redirects, st.Categories, w.Collection.Len(), len(w.Queries))
}

// writeShards assembles the serving client once and hash-partitions it
// into shard snapshots plus a manifest.json inside dir.
func writeShards(dir string, w *synth.World, shards int) error {
	client, err := querygraph.Build(w)
	if err != nil {
		return err
	}
	if err := client.SaveShards(dir, shards); err != nil {
		return err
	}
	var total int64
	for s := 0; s < shards; s++ {
		info, err := os.Stat(filepath.Join(dir, fmt.Sprintf("shard-%03d.qgs", s)))
		if err != nil {
			return err
		}
		total += info.Size()
	}
	st := w.Snapshot.Stats()
	fmt.Printf("wrote %s: %d shards + manifest.json, %d articles, %d docs, %d queries (%.1f MiB total)\n",
		dir, shards, st.Articles, w.Collection.Len(), len(w.Queries), float64(total)/(1<<20))
	return nil
}

// writeSnapshot assembles the serving client (indexing the collection)
// and writes the binary snapshot with the query benchmark attached.
func writeSnapshot(path string, w *synth.World) error {
	client, err := querygraph.Build(w)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := client.Save(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	st := w.Snapshot.Stats()
	fmt.Printf("wrote %s: %d articles, %d redirects, %d categories, %d docs, %d queries (%.1f MiB binary snapshot)\n",
		path, st.Articles, st.Redirects, st.Categories, w.Collection.Len(), len(w.Queries),
		float64(info.Size())/(1<<20))
	return nil
}

func writeCorpus(path string, w *synth.World) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	if _, err := bw.WriteString("<collection>\n"); err != nil {
		return err
	}
	for _, doc := range w.Collection.Docs() {
		if err := corpus.EncodeImage(bw, doc.Image); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("</collection>\n"); err != nil {
		return err
	}
	return bw.Flush()
}

func writeQueries(path string, w *synth.World) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	for _, q := range w.Queries {
		ids := make([]string, len(q.Relevant))
		for i, d := range q.Relevant {
			ids[i] = fmt.Sprint(d)
		}
		fmt.Fprintf(bw, "%d\t%d\t%s\t%s\n", q.ID, q.Topic, q.Keywords, strings.Join(ids, ","))
	}
	return bw.Flush()
}

func writeWiki(path string, w *synth.World) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	snap := w.Snapshot
	g := snap.Graph()
	for i := 0; i < g.NumNodes(); i++ {
		id := graph.NodeID(i)
		kind := "article"
		if g.Kind(id) == graph.Category {
			kind = "category"
		} else if snap.IsRedirect(id) {
			kind = "redirect"
		}
		fmt.Fprintf(bw, "node\t%d\t%s\t%s\n", i, kind, snap.Name(id))
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "edge\t%d\t%d\t%s\n", e.From, e.To, e.Kind)
	}
	return bw.Flush()
}
