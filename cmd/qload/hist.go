package main

import (
	"math/bits"
	"time"
)

// hist is an HDR-style log-linear latency histogram: values are bucketed
// by octave with histSub linear sub-buckets per octave, giving a bounded
// relative error (≤ 1/histSub ≈ 3%) across the whole range instead of a
// fixed absolute resolution. Each worker records into its own hist with
// plain (uncontended) increments; the driver merges them when the run
// ends, so the hot loop never shares a cache line, let alone a lock.
//
// The unit is ~1µs (1024ns, a shift instead of a divide); the bucket
// table spans past multi-hour latencies, far beyond any plausible
// request.
type hist struct {
	counts [histBuckets]uint64
	n      uint64
	sum    uint64 // total ns; 2^64 ns ≈ 584 years, no overflow concern
	max    uint64 // ns
}

const (
	histSubBits = 5
	histSub     = 1 << histSubBits // 32 linear sub-buckets per octave
	histBuckets = 50 * histSub     // covers 1024ns << 49 ≈ 6.6 days
	histUnit    = 10               // ns → ~µs shift
)

// bucketOf maps a latency in ns to its bucket index. Monotone: the
// linear range [0, histSub) flows directly into the first log octave.
func bucketOf(ns uint64) int {
	u := ns >> histUnit
	if u < histSub {
		return int(u)
	}
	exp := bits.Len64(u) - histSubBits - 1
	idx := exp*histSub + int(u>>exp)
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketUpper is the inclusive upper bound of a bucket, in ns — the
// value a quantile landing in the bucket reports.
func bucketUpper(idx int) uint64 {
	if idx < histSub {
		return uint64(idx+1) << histUnit
	}
	exp := idx/histSub - 1
	sub := idx - exp*histSub
	return uint64(sub+1) << (exp + histUnit)
}

func (h *hist) record(d time.Duration) {
	ns := uint64(d)
	h.counts[bucketOf(ns)]++
	h.n++
	h.sum += ns
	if ns > h.max {
		h.max = ns
	}
}

// merge folds other into h.
func (h *hist) merge(other *hist) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.n += other.n
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// quantile returns the latency at quantile q in [0,1]: the upper bound
// of the bucket holding the q·n-th observation (capped at the true max,
// which is tracked exactly).
func (h *hist) quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	rank := uint64(q * float64(h.n))
	if rank >= h.n {
		rank = h.n - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			if v := bucketUpper(i); v < h.max {
				return time.Duration(v)
			}
			return time.Duration(h.max)
		}
	}
	return time.Duration(h.max)
}

func (h *hist) mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return time.Duration(h.sum / h.n)
}
