package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/querygraph/querygraph/internal/hist"
)

// opPaths are the endpoints qload can drive; the mix flag weights them.
var opPaths = map[string]string{
	"search":       "/v1/search",
	"search_batch": "/v1/search/batch",
	"expand":       "/v1/expand",
	"expand_batch": "/v1/expand/batch",
	"ingest":       "/v1/admin/ingest",
}

type mixEntry struct {
	name   string
	weight int
}

// parseMix parses "search=90,expand=10" into weighted entries. Order is
// preserved so the deterministic ticket→op mapping is reproducible.
func parseMix(s string) ([]mixEntry, error) {
	var mix []mixEntry
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, w, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q is not name=weight", part)
		}
		if _, known := opPaths[name]; !known {
			return nil, fmt.Errorf("mix entry %q: unknown op (have search, search_batch, expand, expand_batch, ingest)", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("mix names %s twice", name)
		}
		seen[name] = true
		weight, err := strconv.Atoi(w)
		if err != nil || weight <= 0 {
			return nil, fmt.Errorf("mix entry %q: weight must be a positive integer", part)
		}
		mix = append(mix, mixEntry{name: name, weight: weight})
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty mix")
	}
	return mix, nil
}

// buildBodies pre-encodes one request body per query for an op, so the
// load loop never marshals JSON — the driver must not become the
// bottleneck it is measuring.
func buildBodies(op string, queries []string, k, batch int) ([][]byte, error) {
	bodies := make([][]byte, len(queries))
	for i, q := range queries {
		var payload any
		switch op {
		case "search":
			payload = map[string]any{"query": q, "k": k}
		case "search_batch":
			payload = map[string]any{"queries": rotate(queries, i, batch), "k": k}
		case "expand":
			payload = map[string]any{"keywords": q}
		case "expand_batch":
			payload = map[string]any{"keywords": rotate(queries, i, batch)}
		case "ingest":
			// Documents carry no external id: ids must be unique across the
			// whole run, and an anonymous document can never collide. The
			// query text doubles as the indexed description, so ingested
			// documents join the same vocabulary the search ops probe.
			payload = map[string]any{"documents": []map[string]any{{
				"name":  fmt.Sprintf("qload-%d.jpg", i),
				"texts": []map[string]any{{"lang": "en", "description": q}},
			}}}
		default:
			return nil, fmt.Errorf("unknown op %q", op)
		}
		b, err := json.Marshal(payload)
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}
	return bodies, nil
}

// rotate returns n queries starting at offset i, wrapping around.
func rotate(queries []string, i, n int) []string {
	if n > len(queries) {
		n = len(queries)
	}
	out := make([]string, n)
	for j := range out {
		out[j] = queries[(i+j)%len(queries)]
	}
	return out
}

type loadConfig struct {
	Target      string // base URL, e.g. http://127.0.0.1:8080
	Connections int
	TargetRPS   float64 // 0 = unthrottled
	Duration    time.Duration
	Warmup      time.Duration
	Mix         []mixEntry
	K           int
	Batch       int
	Queries     []string
}

// opStats is one worker's view of one op — unshared until the final
// merge. The latency histogram is the shared internal/hist scheme, so
// qload reports and /v1/metrics scrapes bucket identically.
type opStats struct {
	lat      hist.Hist
	requests uint64
	errors   uint64
	statuses map[int]uint64
}

type latencySummary struct {
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
	MaxMS  float64 `json:"max_ms"`
	MeanMS float64 `json:"mean_ms"`
}

func summarize(h *hist.Hist) latencySummary {
	toMS := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	return latencySummary{
		P50MS:  toMS(h.Quantile(0.50)),
		P90MS:  toMS(h.Quantile(0.90)),
		P99MS:  toMS(h.Quantile(0.99)),
		P999MS: toMS(h.Quantile(0.999)),
		MaxMS:  toMS(time.Duration(h.Max)),
		MeanMS: toMS(h.Mean()),
	}
}

type opReport struct {
	Requests uint64            `json:"requests"`
	Errors   uint64            `json:"errors"`
	Latency  latencySummary    `json:"latency"`
	Status   map[string]uint64 `json:"status"`
}

type report struct {
	Target      string              `json:"target"`
	Mix         string              `json:"mix"`
	K           int                 `json:"k"`
	Connections int                 `json:"connections"`
	TargetRPS   float64             `json:"target_rps"`
	WarmupS     float64             `json:"warmup_s"`
	DurationS   float64             `json:"duration_s"`
	Requests    uint64              `json:"requests"`
	Errors      uint64              `json:"errors"`
	AchievedRPS float64             `json:"achieved_rps"`
	Latency     latencySummary      `json:"latency"`
	Ops         map[string]opReport `json:"ops"`
	Meta        map[string]any      `json:"meta,omitempty"`
}

// run executes the load: an optional unrecorded warmup phase, then the
// measured phase. Workers share nothing but an atomic ticket counter —
// the ticket both paces the send (at -rps) and deterministically selects
// the op and query, so a run's request stream is reproducible.
func run(cfg loadConfig) (*report, error) {
	if len(cfg.Queries) == 0 {
		return nil, fmt.Errorf("no queries to send")
	}
	if cfg.Connections <= 0 {
		cfg.Connections = 1
	}
	bodies := map[string][][]byte{}
	totalWeight := 0
	for _, m := range cfg.Mix {
		b, err := buildBodies(m.name, cfg.Queries, cfg.K, cfg.Batch)
		if err != nil {
			return nil, err
		}
		bodies[m.name] = b
		totalWeight += m.weight
	}
	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Connections,
			MaxIdleConnsPerHost: cfg.Connections,
		},
		Timeout: 30 * time.Second,
	}
	defer client.CloseIdleConnections()

	// pickOp maps a ticket to an op by walking the cumulative weights:
	// ticket t sends op i iff t mod totalWeight falls in i's weight span.
	pickOp := func(t int64) string {
		r := int(t % int64(totalWeight))
		for _, m := range cfg.Mix {
			if r < m.weight {
				return m.name
			}
			r -= m.weight
		}
		return cfg.Mix[len(cfg.Mix)-1].name
	}

	phase := func(d time.Duration) ([]map[string]*opStats, time.Duration) {
		var tickets atomic.Int64
		start := time.Now()
		deadline := start.Add(d)
		perWorker := make([]map[string]*opStats, cfg.Connections)
		var wg sync.WaitGroup
		for w := 0; w < cfg.Connections; w++ {
			stats := map[string]*opStats{}
			for _, m := range cfg.Mix {
				stats[m.name] = &opStats{statuses: map[int]uint64{}}
			}
			perWorker[w] = stats
			wg.Add(1)
			go func(stats map[string]*opStats) {
				defer wg.Done()
				for {
					t := tickets.Add(1) - 1
					if cfg.TargetRPS > 0 {
						sched := start.Add(time.Duration(float64(t) / cfg.TargetRPS * float64(time.Second)))
						if sched.After(deadline) {
							return
						}
						if wait := time.Until(sched); wait > 0 {
							time.Sleep(wait)
						}
					} else if !time.Now().Before(deadline) {
						return
					}
					op := pickOp(t)
					st := stats[op]
					ob := bodies[op]
					body := ob[int(t)%len(ob)]
					req, err := http.NewRequest(http.MethodPost, cfg.Target+opPaths[op], bytes.NewReader(body))
					if err != nil {
						st.errors++
						continue
					}
					req.Header.Set("Content-Type", "application/json")
					t0 := time.Now()
					resp, err := client.Do(req)
					lat := time.Since(t0)
					st.requests++
					if err != nil {
						st.errors++
						continue
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					_ = resp.Body.Close()
					st.lat.Record(lat)
					st.statuses[resp.StatusCode]++
					if resp.StatusCode != http.StatusOK {
						st.errors++
					}
				}
			}(stats)
		}
		wg.Wait()
		return perWorker, time.Since(start)
	}

	if cfg.Warmup > 0 {
		phase(cfg.Warmup) // discarded: pools, caches and conns warm up
	}
	perWorker, elapsed := phase(cfg.Duration)

	// Merge the unshared per-worker stats into the report.
	rep := &report{
		Target:      cfg.Target,
		Mix:         mixString(cfg.Mix),
		K:           cfg.K,
		Connections: cfg.Connections,
		TargetRPS:   cfg.TargetRPS,
		WarmupS:     cfg.Warmup.Seconds(),
		DurationS:   elapsed.Seconds(),
		Ops:         map[string]opReport{},
	}
	var total hist.Hist
	for _, m := range cfg.Mix {
		merged := &opStats{statuses: map[int]uint64{}}
		for _, stats := range perWorker {
			st := stats[m.name]
			merged.lat.Merge(&st.lat)
			merged.requests += st.requests
			merged.errors += st.errors
			for code, n := range st.statuses {
				merged.statuses[code] += n
			}
		}
		statusJSON := map[string]uint64{}
		for code, n := range merged.statuses {
			statusJSON[strconv.Itoa(code)] = n
		}
		rep.Ops[m.name] = opReport{
			Requests: merged.requests,
			Errors:   merged.errors,
			Latency:  summarize(&merged.lat),
			Status:   statusJSON,
		}
		rep.Requests += merged.requests
		rep.Errors += merged.errors
		total.Merge(&merged.lat)
	}
	rep.Latency = summarize(&total)
	if elapsed > 0 {
		rep.AchievedRPS = float64(rep.Requests) / elapsed.Seconds()
	}
	return rep, nil
}

func mixString(mix []mixEntry) string {
	parts := make([]string, len(mix))
	for i, m := range mix {
		parts[i] = fmt.Sprintf("%s=%d", m.name, m.weight)
	}
	return strings.Join(parts, ",")
}

// summary renders the human-readable run report.
func (r *report) summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d requests in %.2fs (%.0f req/s, %d errors)\n",
		r.Requests, r.DurationS, r.AchievedRPS, r.Errors)
	fmt.Fprintf(&b, "latency: p50 %.3fms  p90 %.3fms  p99 %.3fms  p99.9 %.3fms  max %.3fms  mean %.3fms\n",
		r.Latency.P50MS, r.Latency.P90MS, r.Latency.P99MS, r.Latency.P999MS, r.Latency.MaxMS, r.Latency.MeanMS)
	names := make([]string, 0, len(r.Ops))
	for name := range r.Ops {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		op := r.Ops[name]
		fmt.Fprintf(&b, "  %-13s %8d reqs  %3d errors  p50 %.3fms  p99 %.3fms\n",
			name, op.Requests, op.Errors, op.Latency.P50MS, op.Latency.P99MS)
	}
	return b.String()
}
