package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync/atomic"
	"testing"
	"time"
)

// TestHistQuantiles checks the log-linear histogram against an exact
// sorted-slice oracle on a deterministic latency population: every
// quantile must land within the structure's ~3% relative error (plus one
// sub-bucket of absolute slack at the low end).
func TestHistQuantiles(t *testing.T) {
	var h hist
	// Deterministic LCG covering several orders of magnitude, µs to
	// seconds — the shape of real latency populations.
	var state uint64 = 0x9e3779b97f4a7c15
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state
	}
	exact := make([]uint64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Spread exponents 10..30 → 1µs..1s.
		exp := 10 + next()%21
		ns := (1 << exp) + next()%(1<<exp)
		exact = append(exact, ns)
		h.record(time.Duration(ns))
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })

	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1.0} {
		idx := int(q * float64(len(exact)))
		if idx >= len(exact) {
			idx = len(exact) - 1
		}
		want := exact[idx]
		got := uint64(h.quantile(q))
		// The reported value is the bucket's upper bound: never below the
		// true quantile's own bucket, and within one sub-bucket width
		// (1/histSub relative) above it.
		lo := want - want/histSub - (1 << histUnit)
		hi := want + want/histSub*2 + (2 << histUnit)
		if got < lo || got > hi {
			t.Errorf("q%.3f: hist %d, exact %d (allowed [%d, %d])", q, got, want, lo, hi)
		}
	}
	if h.n != 20000 {
		t.Errorf("n = %d, want 20000", h.n)
	}
	if got, want := uint64(h.quantile(1.0)), exact[len(exact)-1]; got != want {
		t.Errorf("q1.0 = %d, want exact max %d", got, want)
	}
}

// TestHistMerge pins that merging per-worker histograms is lossless:
// recording a population into one histogram and spreading it across
// several then merging must agree exactly.
func TestHistMerge(t *testing.T) {
	var one hist
	parts := make([]hist, 4)
	for i := 0; i < 10000; i++ {
		d := time.Duration((i%977)*1000 + 500)
		one.record(d)
		parts[i%len(parts)].record(d)
	}
	var merged hist
	for i := range parts {
		merged.merge(&parts[i])
	}
	if merged != one {
		t.Fatal("merged per-worker histograms differ from single-histogram recording")
	}
}

func TestBucketMonotone(t *testing.T) {
	prev := -1
	for ns := uint64(1); ns < 1<<40; ns = ns*3/2 + 1 {
		idx := bucketOf(ns)
		if idx < prev {
			t.Fatalf("bucketOf not monotone at %dns: %d after %d", ns, idx, prev)
		}
		if upper := bucketUpper(idx); upper < ns {
			t.Fatalf("bucketUpper(%d) = %d < value %d", idx, upper, ns)
		}
		prev = idx
	}
}

func TestParseMix(t *testing.T) {
	mix, err := parseMix("search=80, expand=15,search_batch=5")
	if err != nil {
		t.Fatal(err)
	}
	want := []mixEntry{{"search", 80}, {"expand", 15}, {"search_batch", 5}}
	if len(mix) != len(want) {
		t.Fatalf("mix = %v, want %v", mix, want)
	}
	for i := range want {
		if mix[i] != want[i] {
			t.Fatalf("mix[%d] = %v, want %v", i, mix[i], want[i])
		}
	}
	for _, bad := range []string{"", "search", "search=0", "search=-1", "search=x", "unknown=5", "search=1,search=2"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

func TestMetaFlag(t *testing.T) {
	m := metaFlag{}
	for _, kv := range []string{"allocs_before=31", "allocs_after=0", "label=fastpath"} {
		if err := m.Set(kv); err != nil {
			t.Fatal(err)
		}
	}
	if m["allocs_before"] != 31.0 || m["allocs_after"] != 0.0 {
		t.Errorf("numeric meta not parsed as numbers: %v", m)
	}
	if m["label"] != "fastpath" {
		t.Errorf("string meta mangled: %v", m)
	}
	if err := m.Set("nokey"); err == nil {
		t.Error("meta without '=' accepted")
	}
}

// TestRunAgainstServer drives the loader end to end against a stub
// server and checks the report's accounting: every request lands on a
// known endpoint with a well-formed body, the mix is honored
// deterministically, and the totals balance.
func TestRunAgainstServer(t *testing.T) {
	var searches, expands atomic.Uint64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/search", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Query string `json:"query"`
			K     int    `json:"k"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Query == "" || req.K != 7 {
			http.Error(w, "bad body", http.StatusBadRequest)
			return
		}
		searches.Add(1)
		w.Write([]byte(`{"results":[],"took_ms":0.1}`))
	})
	mux.HandleFunc("POST /v1/expand/batch", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Keywords []string `json:"keywords"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Keywords) != 2 {
			http.Error(w, "bad body", http.StatusBadRequest)
			return
		}
		expands.Add(1)
		w.Write([]byte(`{"expansions":[],"took_ms":0.1}`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	rep, err := run(loadConfig{
		Target:      srv.URL,
		Connections: 4,
		Duration:    300 * time.Millisecond,
		Mix:         []mixEntry{{"search", 3}, {"expand_batch", 1}},
		K:           7,
		Batch:       2,
		Queries:     []string{"alpha", "beta", "gamma"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d (report %+v)", rep.Errors, rep)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests sent")
	}
	if got := searches.Load() + expands.Load(); got != rep.Requests {
		t.Errorf("server saw %d requests, report says %d", got, rep.Requests)
	}
	if rep.Ops["search"].Requests != searches.Load() {
		t.Errorf("search op count %d, server saw %d", rep.Ops["search"].Requests, searches.Load())
	}
	// 3:1 mix — the deterministic ticket mapping keeps the ratio within
	// one round of the weight total.
	if s, e := float64(searches.Load()), float64(expands.Load()); e > 0 && (s/e < 2 || s/e > 4) {
		t.Errorf("mix ratio search:expand_batch = %.2f, want ≈3", s/e)
	}
	if rep.Latency.P50MS <= 0 || rep.Latency.MaxMS < rep.Latency.P50MS {
		t.Errorf("implausible latency summary: %+v", rep.Latency)
	}
	if rep.AchievedRPS <= 0 {
		t.Errorf("achieved RPS = %v", rep.AchievedRPS)
	}
	if rep.Ops["search"].Status["200"] != searches.Load() {
		t.Errorf("status accounting: %v", rep.Ops["search"].Status)
	}
}

// TestRunPaced pins the ticket pacer: at -rps R for duration D the fleet
// sends ≈ R·D requests regardless of how many connections it has.
func TestRunPaced(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"results":[],"took_ms":0}`))
	}))
	defer srv.Close()
	rep, err := run(loadConfig{
		Target:      srv.URL,
		Connections: 8,
		TargetRPS:   200,
		Duration:    500 * time.Millisecond,
		Mix:         []mixEntry{{"search", 1}},
		K:           1,
		Batch:       1,
		Queries:     []string{"q"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 200 rps × 0.5s = 100 tickets; allow generous scheduling slop.
	if rep.Requests < 60 || rep.Requests > 140 {
		t.Errorf("paced run sent %d requests, want ≈100", rep.Requests)
	}
}

// TestReportJSONShape pins the committed-benchmark contract: the fields
// BENCH_7.json consumers read must survive a marshal round trip.
func TestReportJSONShape(t *testing.T) {
	rep := &report{
		Target:      "http://x",
		Mix:         "search=100",
		Requests:    10,
		AchievedRPS: 123.4,
		Latency:     latencySummary{P50MS: 1, P99MS: 2},
		Ops:         map[string]opReport{"search": {Requests: 10}},
		Meta:        map[string]any{"search_handler_allocs_after": 0.0},
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"target", "mix", "requests", "achieved_rps", "latency", "ops", "meta"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("report JSON missing %q: %s", key, data)
		}
	}
	if lat, ok := decoded["latency"].(map[string]any); !ok || lat["p50_ms"] != 1.0 {
		t.Errorf("latency block malformed: %s", data)
	}
}
