package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// The histogram oracle tests (quantiles vs a sorted-slice oracle,
// lossless merge, bucket monotonicity) moved to internal/hist with the
// histogram itself — qload now records into hist.Hist directly.

func TestParseMix(t *testing.T) {
	mix, err := parseMix("search=80, expand=15,search_batch=5")
	if err != nil {
		t.Fatal(err)
	}
	want := []mixEntry{{"search", 80}, {"expand", 15}, {"search_batch", 5}}
	if len(mix) != len(want) {
		t.Fatalf("mix = %v, want %v", mix, want)
	}
	for i := range want {
		if mix[i] != want[i] {
			t.Fatalf("mix[%d] = %v, want %v", i, mix[i], want[i])
		}
	}
	for _, bad := range []string{"", "search", "search=0", "search=-1", "search=x", "unknown=5", "search=1,search=2"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

func TestMetaFlag(t *testing.T) {
	m := metaFlag{}
	for _, kv := range []string{"allocs_before=31", "allocs_after=0", "label=fastpath"} {
		if err := m.Set(kv); err != nil {
			t.Fatal(err)
		}
	}
	if m["allocs_before"] != 31.0 || m["allocs_after"] != 0.0 {
		t.Errorf("numeric meta not parsed as numbers: %v", m)
	}
	if m["label"] != "fastpath" {
		t.Errorf("string meta mangled: %v", m)
	}
	if err := m.Set("nokey"); err == nil {
		t.Error("meta without '=' accepted")
	}
}

// TestRunAgainstServer drives the loader end to end against a stub
// server and checks the report's accounting: every request lands on a
// known endpoint with a well-formed body, the mix is honored
// deterministically, and the totals balance.
func TestRunAgainstServer(t *testing.T) {
	var searches, expands atomic.Uint64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/search", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Query string `json:"query"`
			K     int    `json:"k"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Query == "" || req.K != 7 {
			http.Error(w, "bad body", http.StatusBadRequest)
			return
		}
		searches.Add(1)
		w.Write([]byte(`{"results":[],"took_ms":0.1}`))
	})
	mux.HandleFunc("POST /v1/expand/batch", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Keywords []string `json:"keywords"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Keywords) != 2 {
			http.Error(w, "bad body", http.StatusBadRequest)
			return
		}
		expands.Add(1)
		w.Write([]byte(`{"expansions":[],"took_ms":0.1}`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	rep, err := run(loadConfig{
		Target:      srv.URL,
		Connections: 4,
		Duration:    300 * time.Millisecond,
		Mix:         []mixEntry{{"search", 3}, {"expand_batch", 1}},
		K:           7,
		Batch:       2,
		Queries:     []string{"alpha", "beta", "gamma"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d (report %+v)", rep.Errors, rep)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests sent")
	}
	if got := searches.Load() + expands.Load(); got != rep.Requests {
		t.Errorf("server saw %d requests, report says %d", got, rep.Requests)
	}
	if rep.Ops["search"].Requests != searches.Load() {
		t.Errorf("search op count %d, server saw %d", rep.Ops["search"].Requests, searches.Load())
	}
	// 3:1 mix — the deterministic ticket mapping keeps the ratio within
	// one round of the weight total.
	if s, e := float64(searches.Load()), float64(expands.Load()); e > 0 && (s/e < 2 || s/e > 4) {
		t.Errorf("mix ratio search:expand_batch = %.2f, want ≈3", s/e)
	}
	if rep.Latency.P50MS <= 0 || rep.Latency.MaxMS < rep.Latency.P50MS {
		t.Errorf("implausible latency summary: %+v", rep.Latency)
	}
	if rep.AchievedRPS <= 0 {
		t.Errorf("achieved RPS = %v", rep.AchievedRPS)
	}
	if rep.Ops["search"].Status["200"] != searches.Load() {
		t.Errorf("status accounting: %v", rep.Ops["search"].Status)
	}
}

// TestIngestOp drives the ingest op against a stub /v1/admin/ingest and
// pins the wire shape: one anonymous document per request (no external
// id, so repeated runs can never collide) whose English description is a
// query string.
func TestIngestOp(t *testing.T) {
	var ingests atomic.Uint64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/admin/ingest", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Documents []struct {
				ID    string `json:"id"`
				Name  string `json:"name"`
				Texts []struct {
					Lang        string `json:"lang"`
					Description string `json:"description"`
				} `json:"texts"`
			} `json:"documents"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Documents) != 1 {
			http.Error(w, "bad body", http.StatusBadRequest)
			return
		}
		d := req.Documents[0]
		if d.ID != "" || d.Name == "" || len(d.Texts) != 1 || d.Texts[0].Description == "" {
			http.Error(w, "bad document", http.StatusBadRequest)
			return
		}
		ingests.Add(1)
		w.Write([]byte(`{"status":"ok","ingested":1,"delta_docs":1,"delta_bytes":64,"generation":1,"took_ms":0.1}`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	rep, err := run(loadConfig{
		Target:      srv.URL,
		Connections: 2,
		Duration:    200 * time.Millisecond,
		Mix:         []mixEntry{{"ingest", 1}},
		K:           1,
		Batch:       1,
		Queries:     []string{"alpha", "beta"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Requests == 0 {
		t.Fatalf("ingest run: %d requests, %d errors", rep.Requests, rep.Errors)
	}
	if rep.Ops["ingest"].Requests != ingests.Load() {
		t.Errorf("ingest op count %d, server saw %d", rep.Ops["ingest"].Requests, ingests.Load())
	}
}

// TestRunPaced pins the ticket pacer: at -rps R for duration D the fleet
// sends ≈ R·D requests regardless of how many connections it has.
func TestRunPaced(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"results":[],"took_ms":0}`))
	}))
	defer srv.Close()
	rep, err := run(loadConfig{
		Target:      srv.URL,
		Connections: 8,
		TargetRPS:   200,
		Duration:    500 * time.Millisecond,
		Mix:         []mixEntry{{"search", 1}},
		K:           1,
		Batch:       1,
		Queries:     []string{"q"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 200 rps × 0.5s = 100 tickets; allow generous scheduling slop.
	if rep.Requests < 60 || rep.Requests > 140 {
		t.Errorf("paced run sent %d requests, want ≈100", rep.Requests)
	}
}

// TestReportJSONShape pins the committed-benchmark contract: the fields
// BENCH_7.json consumers read must survive a marshal round trip.
func TestReportJSONShape(t *testing.T) {
	rep := &report{
		Target:      "http://x",
		Mix:         "search=100",
		Requests:    10,
		AchievedRPS: 123.4,
		Latency:     latencySummary{P50MS: 1, P99MS: 2},
		Ops:         map[string]opReport{"search": {Requests: 10}},
		Meta:        map[string]any{"search_handler_allocs_after": 0.0},
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"target", "mix", "requests", "achieved_rps", "latency", "ops", "meta"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("report JSON missing %q: %s", key, data)
		}
	}
	if lat, ok := decoded["latency"].(map[string]any); !ok || lat["p50_ms"] != 1.0 {
		t.Errorf("latency block malformed: %s", data)
	}
}
