// Command qload is the HTTP load driver for qserve: it sustains a
// configurable request mix against a running server and reports latency
// quantiles from an HDR-style histogram — the harness behind the repo's
// committed BENCH_7.json and the CI smoke burst. It drives the HTTP API
// only, so it loads any qserve deployment shape the same way — a single
// snapshot, a sharded pool, or a topology-backed fan-out coordinator
// over qshard servers.
//
// Usage:
//
//	qload -addr http://127.0.0.1:8080 [-connections 8] [-rps 0] \
//	      [-duration 10s] [-warmup 2s] [-mix search=90,expand=10] \
//	      [-k 15] [-batch 4] [-queries "a,b"] [-queryfile FILE] \
//	      [-json out.json] [-meta key=value]...
//
// The mix weights the five POST endpoints (search, search_batch, expand,
// expand_batch, ingest). The ingest op exercises the live write path:
// each request appends one anonymous document (no external id, so no
// collisions) built from a query string to the server's delta segment —
// pair it with qserve -auto-compact so a long run folds the segment
// instead of filling it. -rps 0 runs open throttle: every connection issues
// requests back to back. A positive -rps paces the fleet with a shared
// atomic ticket counter — ticket t is sent at start + t/rps, whichever
// worker draws it, so the offered load is independent of per-connection
// latency. Request bodies are pre-encoded, one per (op, query), so the
// measuring loop does no JSON work of its own.
//
// Latency is recorded per worker into log-linear histograms (bounded
// ≈3% relative error at any magnitude) and merged at the end; -json
// writes the full report, including per-op quantiles and status counts,
// plus any -meta key=value pairs (values that parse as numbers are
// emitted as JSON numbers). A warmup phase of the same shape runs first
// and is discarded, so pools, caches and connections are hot when
// measurement starts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"
)

// defaultQueries keep qload usable against any snapshot without flags;
// real benchmarking should pass the world's own queries via -queries or
// -queryfile.
var defaultQueries = []string{
	"graph structure",
	"query expansion",
	"wikipedia categories",
	"information retrieval",
	"knowledge circuits",
	"article links",
}

// metaFlag collects repeatable -meta key=value pairs; numeric values are
// kept as numbers so downstream JSON consumers can compare them.
type metaFlag map[string]any

func (m metaFlag) String() string { return fmt.Sprint(map[string]any(m)) }

func (m metaFlag) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok || k == "" {
		return fmt.Errorf("meta %q is not key=value", s)
	}
	if f, err := strconv.ParseFloat(v, 64); err == nil {
		m[k] = f
	} else {
		m[k] = v
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("qload: ")
	meta := metaFlag{}
	var (
		addr        = flag.String("addr", "http://127.0.0.1:8080", "base URL of the qserve instance under test")
		connections = flag.Int("connections", 8, "concurrent connections (one worker goroutine each)")
		rps         = flag.Float64("rps", 0, "target requests/second across all connections (0 = open throttle)")
		duration    = flag.Duration("duration", 10*time.Second, "measured load duration")
		warmup      = flag.Duration("warmup", 2*time.Second, "unrecorded warmup duration before measuring")
		mixFlag     = flag.String("mix", "search=100", "request mix, e.g. search=80,expand=10,search_batch=5,expand_batch=5")
		k           = flag.Int("k", 15, "ranking depth sent with search requests")
		batch       = flag.Int("batch", 4, "queries per batch request")
		queriesCSV  = flag.String("queries", "", "comma-separated queries to send (default: a built-in generic list)")
		queryFile   = flag.String("queryfile", "", "file with one query per line (overrides -queries)")
		jsonOut     = flag.String("json", "", "write the full JSON report to this path ('-' = stdout)")
	)
	flag.Var(meta, "meta", "extra key=value recorded in the JSON report (repeatable; numeric values stay numbers)")
	flag.Parse()

	mix, err := parseMix(*mixFlag)
	if err != nil {
		log.Fatal(err)
	}
	queries, err := loadQueries(*queriesCSV, *queryFile)
	if err != nil {
		log.Fatal(err)
	}

	target := strings.TrimRight(*addr, "/")
	if err := waitHealthy(target, 10*time.Second); err != nil {
		log.Fatal(err)
	}

	log.Printf("driving %s: %d connections, mix %s, %v warmup + %v measured%s",
		target, *connections, mixString(mix), *warmup, *duration, rpsNote(*rps))
	rep, err := run(loadConfig{
		Target:      target,
		Connections: *connections,
		TargetRPS:   *rps,
		Duration:    *duration,
		Warmup:      *warmup,
		Mix:         mix,
		K:           *k,
		Batch:       *batch,
		Queries:     queries,
	})
	if err != nil {
		log.Fatal(err)
	}
	if len(meta) > 0 {
		rep.Meta = meta
	}
	fmt.Print(rep.summary())
	if *jsonOut != "" {
		if err := writeReport(*jsonOut, rep); err != nil {
			log.Fatal(err)
		}
	}
	if rep.Errors > 0 {
		log.Fatalf("%d of %d requests failed", rep.Errors, rep.Requests)
	}
}

func rpsNote(rps float64) string {
	if rps <= 0 {
		return ", open throttle"
	}
	return fmt.Sprintf(", paced at %.0f req/s", rps)
}

func loadQueries(csv, file string) ([]string, error) {
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		var queries []string
		for _, line := range strings.Split(string(data), "\n") {
			if line = strings.TrimSpace(line); line != "" {
				queries = append(queries, line)
			}
		}
		if len(queries) == 0 {
			return nil, fmt.Errorf("%s holds no queries", file)
		}
		return queries, nil
	}
	if csv != "" {
		var queries []string
		for _, q := range strings.Split(csv, ",") {
			if q = strings.TrimSpace(q); q != "" {
				queries = append(queries, q)
			}
		}
		if len(queries) == 0 {
			return nil, fmt.Errorf("-queries holds no queries")
		}
		return queries, nil
	}
	return defaultQueries, nil
}

// waitHealthy polls /v1/healthz until the server answers, so qload can
// be started alongside qserve without orchestrating a ready barrier.
func waitHealthy(target string, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		resp, err := http.Get(target + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			err = fmt.Errorf("healthz status %d", resp.StatusCode)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s not healthy after %v: %v", target, patience, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func writeReport(path string, rep *report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
