// Command qlint is the project's static-analysis multichecker: it runs
// the internal/lint analyzer suite — the mechanical form of the
// serving-stack invariants DESIGN.md states in prose — over go-style
// package patterns and exits non-zero on any finding, so CI can block
// on it.
//
// Usage:
//
//	qlint [-list] [-only name,name] [pattern ...]
//
// Patterns default to ./... and support the go tool's directory forms
// (., dir, dir/...). Suppress a finding in place with
// "//qlint:ignore <analyzer> <justification>" — the justification is
// mandatory, and a bare ignore is itself reported.
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"strings"

	"github.com/querygraph/querygraph/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("qlint", flag.ContinueOnError)
	list := fs.Bool("list", false, "print the analyzers and their invariants, then exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *only != "" {
		keep := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var filtered []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				filtered = append(filtered, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(os.Stderr, "qlint: unknown analyzer %q (see qlint -list)\n", name)
			return 2
		}
		analyzers = filtered
	}

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset := token.NewFileSet()
	pkgs, err := lint.Load(fset, ".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qlint: %v\n", err)
		return 2
	}

	findings := lint.Run(fset, pkgs, analyzers)
	findings = append(findings, lint.BadIgnores(fset, pkgs)...)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "qlint: %d finding(s) across %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}
