// Command qgraph builds the ground truth and query graph for one benchmark
// query and prints a structural report — the per-query view behind the
// paper's Figures 3 and 4. With -dot it also writes the query graph in
// Graphviz format. Everything goes through the public querygraph API.
//
// Usage: qgraph [-seed N] [-query N] [-dot FILE] [-load FILE.qgs]
//
// With -load, the world is decoded from a binary snapshot written by
// qgen -out world.qgs instead of being regenerated and re-indexed
// (-seed is ignored in that mode).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	querygraph "github.com/querygraph/querygraph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qgraph: ")
	var (
		seed    = flag.Int64("seed", 0, "world seed (0 = default)")
		queryID = flag.Int("query", 0, "benchmark query to inspect")
		dotFile = flag.String("dot", "", "write the query graph as Graphviz DOT to this file")
		load    = flag.String("load", "", "load a binary world snapshot (qgen -out FILE.qgs) instead of generating")
	)
	flag.Parse()
	ctx := context.Background()

	var (
		client *querygraph.Client
		err    error
	)
	if *load != "" {
		// Open through the unified constructor; the structural analysis
		// below needs the single-system runtime, so a sharded manifest is
		// rejected with a pointed message instead of a decode error.
		be, berr := querygraph.OpenBackend(*load)
		if berr != nil {
			log.Fatal(berr)
		}
		var ok bool
		if client, ok = be.(*querygraph.Client); !ok {
			log.Fatalf("%s is a sharded manifest; qgraph's ground-truth analysis needs a single snapshot (qgen -out FILE.qgs)", *load)
		}
	} else {
		cfg := querygraph.DefaultWorldConfig()
		if *seed != 0 {
			cfg.Seed = *seed
		}
		w, gerr := querygraph.GenerateWorld(cfg)
		if gerr != nil {
			log.Fatal(gerr)
		}
		if client, err = querygraph.Build(w); err != nil {
			log.Fatal(err)
		}
	}
	defer client.Close()
	qs := client.Queries()
	if *queryID < 0 || *queryID >= len(qs) {
		log.Fatalf("query %d out of range [0, %d)", *queryID, len(qs))
	}
	q := qs[*queryID]

	gt, err := client.GroundTruth(ctx, q, querygraph.GroundTruthOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query #%d: %q  (%d relevant documents)\n\n", q.ID, q.Keywords, len(q.Relevant))
	fmt.Printf("L(q.k) — query articles:\n")
	for _, a := range gt.QueryArticles {
		fmt.Printf("  - %s\n", client.Title(a))
	}
	fmt.Printf("\nA' — expansion features (X(q) = L(q.k) ∪ A'):\n")
	for _, a := range gt.Expansion {
		fmt.Printf("  - %s\n", client.Title(a))
	}
	fmt.Printf("\nobjective: baseline O = %.3f  →  X(q) O = %.3f\n", gt.Baseline, gt.Score)
	fmt.Printf("precision: P@1 %.2f  P@5 %.2f  P@10 %.2f  P@15 %.2f\n",
		gt.PrecisionAt[1], gt.PrecisionAt[5], gt.PrecisionAt[10], gt.PrecisionAt[15])
	fmt.Printf("local search: %d iterations, %d evaluations\n\n",
		gt.SearchStats.Iterations, gt.SearchStats.Evaluations)

	qg := gt.Graph
	st := qg.LargestComponentStats()
	fmt.Printf("query graph G(q): %d nodes, %d components\n", qg.Size(), qg.NumComponents())
	fmt.Printf("largest component: %d nodes (%.0f%% of G(q)), %.0f%% categories, TPR %.2f, expansion ratio %.2f\n\n",
		st.Size, 100*st.RelSize, 100*st.CategoryFrac, st.TPR, st.ExpansionRatio)

	cs, err := client.MineCycles(ctx, gt, 5)
	if err != nil {
		log.Fatal(err)
	}
	byLen := map[int][]querygraph.Cycle{}
	for _, c := range cs {
		byLen[c.Length] = append(byLen[c.Length], c)
	}
	lengths := make([]int, 0, len(byLen))
	for l := range byLen {
		lengths = append(lengths, l)
	}
	sort.Ints(lengths)
	fmt.Printf("cycles containing a query article (length ≤ 5): %d\n", len(cs))
	for _, l := range lengths {
		fmt.Printf("  length %d: %d cycles\n", l, len(byLen[l]))
		for i, c := range byLen[l] {
			if i >= 3 {
				fmt.Printf("    ...\n")
				break
			}
			fmt.Printf("    [%s]  (cat ratio %.2f, density %.2f)\n",
				strings.Join(c.Titles, " "), c.CategoryRatio, c.ExtraEdgeDensity)
		}
	}

	if *dotFile != "" {
		f, err := os.Create(*dotFile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := client.WriteQueryGraphDOT(f, gt, fmt.Sprintf("query_%d", q.ID)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *dotFile)
	}
}
