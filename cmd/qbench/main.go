// Command qbench regenerates every table and figure of the paper's
// evaluation on the synthetic benchmark and prints them side by side with
// the paper's reported values. It drives everything through the public
// querygraph API — the same surface cmd/qserve serves over HTTP.
//
// Usage:
//
//	qbench [-exp all|table2|table3|table4|fig5|fig6|fig7a|fig7b|fig9|text3|ablation|batch]
//	       [-seed N] [-queries N] [-workers N] [-load FILE.qgs|DIR/manifest.json]
//	       [-json FILE]
//
// The batch experiment exercises the concurrent serving layer
// (ExpandAll / SearchExpansions with the sharded expansion cache) and
// reports queries/sec, retrieval latency quantiles and the cache hit
// rate. With -json FILE (or "-" for stdout) the batch experiment also
// emits a machine-readable summary — queries/sec, p50/p99 latency, cache
// hit rate — for benchmark-trajectory tracking (BENCH_*.json).
//
// With -load, the world is decoded from a binary snapshot written by
// qgen -out world.qgs — or, when the path ends in .json, from a sharded
// snapshot manifest written by qgen -shards N (served through the
// in-process scatter-gather pool) or a shard-fleet topology (served
// through the networked fan-out coordinator over qshard servers); both
// JSON artifacts drive the batch experiment only. -seed and -queries
// are ignored in -load mode.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	querygraph "github.com/querygraph/querygraph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qbench: ")
	var (
		exp     = flag.String("exp", "all", "experiment to run (all, table2, table3, table4, fig5, fig6, fig7a, fig7b, fig9, text3, ablation, batch)")
		seed    = flag.Int64("seed", 0, "world seed (0 = the default benchmark seed)")
		queries = flag.Int("queries", 0, "number of benchmark queries (0 = default 50)")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		load    = flag.String("load", "", "load a binary world snapshot (qgen -out FILE.qgs), a shard manifest (qgen -shards N -out DIR), or a shard-fleet topology .json instead of generating")
		jsonOut = flag.String("json", "", "write a machine-readable batch summary to this file (\"-\" = stdout); requires the batch experiment")
	)
	flag.Parse()
	ctx := context.Background()

	if *jsonOut != "" && *exp != "batch" && *exp != "all" {
		log.Fatalf("-json records the batch experiment; run with -exp batch (or all), not %q", *exp)
	}

	if strings.HasSuffix(*load, ".json") {
		if *exp != "batch" {
			log.Fatalf("a shard manifest or topology serves the batch experiment only; run with -exp batch, not %q", *exp)
		}
		runPool(ctx, *load, *workers, *jsonOut)
		return
	}

	start := time.Now()
	client, fresh, err := buildWorld(*load, *seed, *queries)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	qs := client.Queries()
	st := client.Stats()
	fmt.Printf("world: %s, %d articles, %d redirects, %d categories, %d links, %d docs, %d queries (ready in %v)\n\n",
		worldSource(*load, *seed), st.Articles, st.Redirects, st.Categories, st.Links,
		st.Documents, len(qs), time.Since(start).Round(time.Millisecond))

	needAnalysis := *exp != "ablation" && *exp != "batch"
	var analysis *querygraph.Analysis
	if needAnalysis {
		analysis, err = client.Analyze(ctx, querygraph.AnalyzeOptions{
			GroundTruth: querygraph.GroundTruthOptions{Seed: 1},
			Workers:     *workers,
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	var ablation []querygraph.AblationRow
	if *exp == "ablation" || *exp == "all" {
		ablation, err = client.CompareExpanders(ctx, querygraph.AblationOptions{Workers: *workers})
		if err != nil {
			log.Fatal(err)
		}
	}

	switch *exp {
	case "all":
		fmt.Println(querygraph.ReportAll(analysis, ablation))
		// The analysis and ablation passes above warmed the client's
		// expansion cache; measure batch serving on a fresh client so the
		// cold throughput and cache counters are honest.
		cold, err := fresh()
		if err != nil {
			log.Fatal(err)
		}
		defer cold.Close()
		if err := runBatch(ctx, cold, qs, *workers, worldSource(*load, *seed), 0, *jsonOut); err != nil {
			log.Fatal(err)
		}
	case "table2":
		fmt.Println(querygraph.ReportTable2(analysis))
	case "table3":
		fmt.Println(querygraph.ReportTable3(analysis))
	case "table4":
		fmt.Println(querygraph.ReportTable4(analysis))
	case "fig5":
		fmt.Println(querygraph.ReportFig5(analysis))
	case "fig6":
		fmt.Println(querygraph.ReportFig6(analysis))
	case "fig7a":
		fmt.Println(querygraph.ReportFig7a(analysis))
	case "fig7b":
		fmt.Println(querygraph.ReportFig7b(analysis))
	case "fig9":
		fmt.Println(querygraph.ReportFig9(analysis))
	case "text3":
		fmt.Println(querygraph.ReportText3(analysis))
	case "ablation":
		fmt.Println(querygraph.ReportAblation(ablation))
	case "batch":
		if err := runBatch(ctx, client, qs, *workers, worldSource(*load, *seed), 0, *jsonOut); err != nil {
			log.Fatal(err)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	fmt.Printf("total wall time: %v\n", time.Since(start).Round(time.Millisecond))
}

// runPool serves the batch experiment over a sharded serving artifact —
// a snapshot manifest (in-process scatter-gather pool) or a shard-fleet
// topology (networked fan-out over qshard servers) — driven through the
// one Backend contract (OpenBackend sniffs the artifact kind), so the
// two deployment shapes are benchmarked by the same harness and their
// summaries compare like for like.
func runPool(ctx context.Context, path string, workers int, jsonOut string) {
	start := time.Now()
	be, err := querygraph.OpenBackend(path)
	if err != nil {
		log.Fatal(err)
	}
	defer be.Close()
	var (
		shards int
		source string
	)
	switch b := be.(type) {
	case *querygraph.Pool:
		shards, source = b.NumShards(), "manifest "+path
	case *querygraph.Remote:
		shards, source = b.NumShards(), "topology "+path
	default:
		log.Fatalf("%s did not open as a sharded artifact; pass a manifest.json (qgen -shards) or a shard-fleet topology.json", path)
	}
	qs := be.Queries()
	if len(qs) == 0 {
		log.Fatalf("%s carries no query benchmark", source)
	}
	st := be.Stats()
	fmt.Printf("world: %s (%d shards), %d articles, %d redirects, %d categories, %d links, %d docs, %d queries (ready in %v)\n\n",
		source, shards, st.Articles, st.Redirects, st.Categories, st.Links,
		st.Documents, len(qs), time.Since(start).Round(time.Millisecond))
	if err := runBatch(ctx, be, qs, workers, source, shards, jsonOut); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total wall time: %v\n", time.Since(start).Round(time.Millisecond))
}

// buildWorld assembles the serving client, either by decoding a binary
// snapshot (path != "") or by generating and indexing the synthetic world.
// fresh re-creates an identical cold client — by re-decoding the snapshot
// or re-assembling from the generated world — for experiments that need
// untouched caches.
func buildWorld(path string, seed int64, queries int) (*querygraph.Client, func() (*querygraph.Client, error), error) {
	if path != "" {
		client, err := querygraph.Open(path)
		if err != nil {
			return nil, nil, err
		}
		if len(client.Queries()) == 0 {
			return nil, nil, fmt.Errorf("snapshot %s carries no query benchmark", path)
		}
		fresh := func() (*querygraph.Client, error) { return querygraph.Open(path) }
		return client, fresh, nil
	}
	cfg := querygraph.DefaultWorldConfig()
	if seed != 0 {
		cfg.Seed = seed
	}
	if queries > 0 {
		cfg.Queries = queries
	}
	w, err := querygraph.GenerateWorld(cfg)
	if err != nil {
		return nil, nil, err
	}
	client, err := querygraph.Build(w)
	if err != nil {
		return nil, nil, err
	}
	fresh := func() (*querygraph.Client, error) { return querygraph.Build(w) }
	return client, fresh, nil
}

func worldSource(path string, seed int64) string {
	if path != "" {
		return fmt.Sprintf("snapshot %s", path)
	}
	if seed == 0 {
		seed = querygraph.DefaultWorldConfig().Seed
	}
	return fmt.Sprintf("seed %d", seed)
}

// benchSummary is the machine-readable batch report (-json): one schema,
// one file per run, so BENCH_*.json files accumulate a comparable
// trajectory across commits and machines.
type benchSummary struct {
	SchemaVersion int    `json:"schema_version"`
	World         string `json:"world"`
	Queries       int    `json:"queries"`
	Shards        int    `json:"shards,omitempty"`
	Workers       int    `json:"workers"`

	ExpandColdQPS float64 `json:"expand_cold_qps"`
	ExpandWarmQPS float64 `json:"expand_warm_qps"`
	CacheHitRate  float64 `json:"cache_hit_rate"`

	SearchQPS      float64 `json:"search_qps"`
	SearchK        int     `json:"search_k"`
	LatencyP50MS   float64 `json:"latency_p50_ms"`
	LatencyP99MS   float64 `json:"latency_p99_ms"`
	LatencySamples int     `json:"latency_samples"`

	WallTimeMS float64 `json:"wall_time_ms"`
}

// runBatch drives the concurrent serving layer over the benchmark queries
// through the querygraph.Backend contract (either runtime serves it): one
// cold ExpandAll pass, several warm passes that hit the expansion cache,
// repeated batch retrieval passes over the expanded queries, and a
// sequential latency sampling pass for the p50/p99 quantiles. With
// jsonOut != "" the summary is also written as JSON.
func runBatch(ctx context.Context, client querygraph.Backend, qs []querygraph.Query, workers int, world string, shards int, jsonOut string) error {
	const (
		warmPasses   = 3
		searchPasses = 10
	)
	batchStart := time.Now()
	keywords := make([]string, len(qs))
	for i, q := range qs {
		keywords[i] = q.Keywords
	}
	bopts := querygraph.BatchOptions{Workers: workers}

	start := time.Now()
	exps, err := client.ExpandAll(ctx, keywords, bopts)
	if err != nil {
		return err
	}
	cold := time.Since(start)

	start = time.Now()
	for p := 0; p < warmPasses; p++ {
		if _, err := client.ExpandAll(ctx, keywords, bopts); err != nil {
			return err
		}
	}
	warm := time.Since(start)

	start = time.Now()
	searchable := 0
	for p := 0; p < searchPasses; p++ {
		rss, err := client.SearchExpansions(ctx, exps, querygraph.MaxRank, bopts)
		if err != nil {
			return err
		}
		if p == 0 {
			// Unexpandable entries keep their slot as a nil ranking; only
			// the searched ones count toward throughput.
			for _, rs := range rss {
				if rs != nil {
					searchable++
				}
			}
		}
	}
	searched := time.Since(start)

	// Latency quantiles: sequential single-request retrievals, the shape
	// an online user sees (no batch amortization).
	var samples []float64
	for pass := 0; pass < searchPasses && len(samples) < 1000; pass++ {
		for _, exp := range exps {
			t0 := time.Now()
			_, ok, err := client.SearchExpansion(ctx, exp, querygraph.MaxRank)
			if err != nil {
				return err
			}
			if ok {
				samples = append(samples, float64(time.Since(t0).Microseconds())/1000)
			}
		}
	}
	sort.Float64s(samples)
	quantile := func(q float64) float64 {
		if len(samples) == 0 {
			return 0
		}
		i := int(q * float64(len(samples)-1))
		return samples[i]
	}

	qps := func(n int, d time.Duration) float64 {
		if d <= 0 {
			return 0
		}
		return float64(n) / d.Seconds()
	}
	st := client.CacheStats()
	fmt.Printf("batch serving (%d queries, workers=%d means GOMAXPROCS when 0):\n", len(qs), workers)
	fmt.Printf("  ExpandAll cold:    %10.0f queries/sec  (%v)\n",
		qps(len(keywords), cold), cold.Round(time.Microsecond))
	fmt.Printf("  ExpandAll warm:    %10.0f queries/sec  (%v over %d passes)\n",
		qps(warmPasses*len(keywords), warm), warm.Round(time.Microsecond), warmPasses)
	fmt.Printf("  SearchExpansions:  %10.0f queries/sec  (%v over %d passes, k=%d)\n",
		qps(searchPasses*searchable, searched), searched.Round(time.Microsecond), searchPasses, querygraph.MaxRank)
	fmt.Printf("  search latency:    p50 %.3f ms, p99 %.3f ms (%d sequential samples)\n",
		quantile(0.50), quantile(0.99), len(samples))
	fmt.Printf("  expand cache:      %d/%d entries, %.1f%% hit rate (%d hits, %d misses, %d deduped in flight)\n",
		st.Entries, st.Capacity, 100*st.HitRate(), st.Hits, st.Misses, st.Deduped)

	if jsonOut == "" {
		return nil
	}
	summary := benchSummary{
		SchemaVersion:  1,
		World:          world,
		Queries:        len(qs),
		Shards:         shards,
		Workers:        workers,
		ExpandColdQPS:  qps(len(keywords), cold),
		ExpandWarmQPS:  qps(warmPasses*len(keywords), warm),
		CacheHitRate:   st.HitRate(),
		SearchQPS:      qps(searchPasses*searchable, searched),
		SearchK:        querygraph.MaxRank,
		LatencyP50MS:   quantile(0.50),
		LatencyP99MS:   quantile(0.99),
		LatencySamples: len(samples),
		WallTimeMS:     float64(time.Since(batchStart).Microseconds()) / 1000,
	}
	blob, err := json.MarshalIndent(summary, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if jsonOut == "-" {
		_, err = os.Stdout.Write(blob)
		return err
	}
	if err := os.WriteFile(jsonOut, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote JSON summary to %s\n", jsonOut)
	return nil
}
