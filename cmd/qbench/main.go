// Command qbench regenerates every table and figure of the paper's
// evaluation on the synthetic benchmark and prints them side by side with
// the paper's reported values.
//
// Usage:
//
//	qbench [-exp all|table2|table3|table4|fig5|fig6|fig7a|fig7b|fig9|text3|ablation|batch]
//	       [-seed N] [-queries N] [-workers N] [-load FILE.qgs]
//
// The batch experiment exercises the concurrent serving layer
// (System.ExpandAll / System.SearchAll with the sharded expansion cache)
// and reports queries/sec and the cache hit rate.
//
// With -load, the world is decoded from a binary snapshot written by
// qgen -out world.qgs instead of being regenerated and re-indexed, so
// experiments across runs (and machines) share one artifact and startup
// is near-instant; -seed and -queries are ignored in that mode.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/querygraph/querygraph/internal/core"
	"github.com/querygraph/querygraph/internal/groundtruth"
	"github.com/querygraph/querygraph/internal/report"
	"github.com/querygraph/querygraph/internal/search"
	"github.com/querygraph/querygraph/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qbench: ")
	var (
		exp     = flag.String("exp", "all", "experiment to run (all, table2, table3, table4, fig5, fig6, fig7a, fig7b, fig9, text3, ablation, batch)")
		seed    = flag.Int64("seed", 0, "world seed (0 = the default benchmark seed)")
		queries = flag.Int("queries", 0, "number of benchmark queries (0 = default 50)")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		load    = flag.String("load", "", "load a binary world snapshot (qgen -out FILE.qgs) instead of generating")
	)
	flag.Parse()

	start := time.Now()
	s, qs, fresh, err := buildWorld(*load, *seed, *queries)
	if err != nil {
		log.Fatal(err)
	}
	st := s.Snapshot.Stats()
	fmt.Printf("world: %s, %d articles, %d redirects, %d categories, %d links, %d docs, %d queries (ready in %v)\n\n",
		worldSource(*load, *seed), st.Articles, st.Redirects, st.Categories, st.Links,
		s.Collection.Len(), len(qs), time.Since(start).Round(time.Millisecond))

	needAnalysis := *exp != "ablation" && *exp != "batch"
	var analysis *core.Analysis
	if needAnalysis {
		gts, err := s.BuildAllGroundTruths(qs, core.GroundTruthConfig{
			Search:  groundtruth.Config{Seed: 1},
			Workers: *workers,
		})
		if err != nil {
			log.Fatal(err)
		}
		analysis, err = s.Analyze(gts, core.AnalysisConfig{Workers: *workers})
		if err != nil {
			log.Fatal(err)
		}
	}
	var ablation []core.AblationRow
	if *exp == "ablation" || *exp == "all" {
		ablation, err = s.CompareExpanders(qs, core.AblationConfig{Workers: *workers})
		if err != nil {
			log.Fatal(err)
		}
	}

	switch *exp {
	case "all":
		fmt.Println(report.All(analysis, ablation))
		// The analysis and ablation passes above warmed s's expansion
		// cache; measure batch serving on a fresh system so the cold
		// throughput and cache counters are honest.
		cold, err := fresh()
		if err != nil {
			log.Fatal(err)
		}
		if err := runBatch(cold, qs, *workers); err != nil {
			log.Fatal(err)
		}
	case "table2":
		fmt.Println(report.Table2(analysis))
	case "table3":
		fmt.Println(report.Table3(analysis))
	case "table4":
		fmt.Println(report.Table4(analysis))
	case "fig5":
		fmt.Println(report.Fig5(analysis))
	case "fig6":
		fmt.Println(report.Fig6(analysis))
	case "fig7a":
		fmt.Println(report.Fig7a(analysis))
	case "fig7b":
		fmt.Println(report.Fig7b(analysis))
	case "fig9":
		fmt.Println(report.Fig9(analysis))
	case "text3":
		fmt.Println(report.Text3(analysis))
	case "ablation":
		fmt.Println(report.Ablation(ablation))
	case "batch":
		if err := runBatch(s, qs, *workers); err != nil {
			log.Fatal(err)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	fmt.Printf("total wall time: %v\n", time.Since(start).Round(time.Millisecond))
}

// buildWorld assembles the serving system and query set, either by
// decoding a binary snapshot (path != "") or by generating and indexing
// the synthetic world. fresh re-creates an identical cold system — by
// re-decoding the snapshot or re-assembling from the generated world —
// for experiments that need untouched caches.
func buildWorld(path string, seed int64, queries int) (*core.System, []core.Query, func() (*core.System, error), error) {
	if path != "" {
		s, qs, err := core.LoadSystemFile(path)
		if err != nil {
			return nil, nil, nil, err
		}
		if len(qs) == 0 {
			return nil, nil, nil, fmt.Errorf("snapshot %s carries no query benchmark", path)
		}
		fresh := func() (*core.System, error) {
			s, _, err := core.LoadSystemFile(path)
			return s, err
		}
		return s, qs, fresh, nil
	}
	cfg := synth.Default()
	if seed != 0 {
		cfg.Seed = seed
	}
	if queries > 0 {
		cfg.Queries = queries
	}
	w, err := synth.Generate(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	s, err := core.FromWorld(w)
	if err != nil {
		return nil, nil, nil, err
	}
	fresh := func() (*core.System, error) { return core.FromWorld(w) }
	return s, core.QueriesFromWorld(w), fresh, nil
}

func worldSource(path string, seed int64) string {
	if path != "" {
		return fmt.Sprintf("snapshot %s", path)
	}
	if seed == 0 {
		seed = synth.Default().Seed
	}
	return fmt.Sprintf("seed %d", seed)
}

// runBatch drives the concurrent serving layer over the benchmark queries:
// one cold ExpandAll pass, several warm passes that hit the expansion
// cache, and repeated SearchAll passes over the expanded queries.
func runBatch(s *core.System, qs []core.Query, workers int) error {
	const (
		warmPasses   = 3
		searchPasses = 10
	)
	keywords := make([]string, len(qs))
	for i, q := range qs {
		keywords[i] = q.Keywords
	}
	eopts := core.DefaultExpanderOptions()
	bopts := core.BatchOptions{Workers: workers}

	start := time.Now()
	exps, err := s.ExpandAll(keywords, eopts, bopts)
	if err != nil {
		return err
	}
	cold := time.Since(start)

	start = time.Now()
	for p := 0; p < warmPasses; p++ {
		if _, err := s.ExpandAll(keywords, eopts, bopts); err != nil {
			return err
		}
	}
	warm := time.Since(start)

	nodes := make([]search.Node, 0, len(exps))
	for _, exp := range exps {
		if node, ok := exp.Query(s); ok {
			nodes = append(nodes, node)
		}
	}
	start = time.Now()
	for p := 0; p < searchPasses; p++ {
		if _, err := s.SearchAll(nodes, core.MaxRank, bopts); err != nil {
			return err
		}
	}
	searched := time.Since(start)

	qps := func(n int, d time.Duration) float64 {
		if d <= 0 {
			return 0
		}
		return float64(n) / d.Seconds()
	}
	st := s.ExpandCacheStats()
	fmt.Printf("batch serving (%d queries, workers=%d means GOMAXPROCS when 0):\n", len(qs), workers)
	fmt.Printf("  ExpandAll cold: %10.0f queries/sec  (%v)\n",
		qps(len(keywords), cold), cold.Round(time.Microsecond))
	fmt.Printf("  ExpandAll warm: %10.0f queries/sec  (%v over %d passes)\n",
		qps(warmPasses*len(keywords), warm), warm.Round(time.Microsecond), warmPasses)
	fmt.Printf("  SearchAll:      %10.0f queries/sec  (%v over %d passes, k=%d)\n",
		qps(searchPasses*len(nodes), searched), searched.Round(time.Microsecond), searchPasses, core.MaxRank)
	fmt.Printf("  expand cache:   %d/%d entries, %.1f%% hit rate (%d hits, %d misses, %d deduped in flight)\n",
		st.Entries, st.Capacity, 100*st.HitRate(), st.Hits, st.Misses, st.Deduped)
	return nil
}
