// Command qbench regenerates every table and figure of the paper's
// evaluation on the synthetic benchmark and prints them side by side with
// the paper's reported values.
//
// Usage:
//
//	qbench [-exp all|table2|table3|table4|fig5|fig6|fig7a|fig7b|fig9|text3|ablation]
//	       [-seed N] [-queries N] [-workers N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/querygraph/querygraph/internal/core"
	"github.com/querygraph/querygraph/internal/groundtruth"
	"github.com/querygraph/querygraph/internal/report"
	"github.com/querygraph/querygraph/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qbench: ")
	var (
		exp     = flag.String("exp", "all", "experiment to run (all, table2, table3, table4, fig5, fig6, fig7a, fig7b, fig9, text3, ablation)")
		seed    = flag.Int64("seed", 0, "world seed (0 = the default benchmark seed)")
		queries = flag.Int("queries", 0, "number of benchmark queries (0 = default 50)")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	cfg := synth.Default()
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *queries > 0 {
		cfg.Queries = *queries
	}

	start := time.Now()
	w, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	s, err := core.FromWorld(w)
	if err != nil {
		log.Fatal(err)
	}
	qs := core.QueriesFromWorld(w)
	st := w.Snapshot.Stats()
	fmt.Printf("world: seed %d, %d articles, %d redirects, %d categories, %d links, %d docs, %d queries (built in %v)\n\n",
		cfg.Seed, st.Articles, st.Redirects, st.Categories, st.Links, w.Collection.Len(), len(qs), time.Since(start).Round(time.Millisecond))

	needAnalysis := *exp != "ablation"
	var analysis *core.Analysis
	if needAnalysis {
		gts, err := s.BuildAllGroundTruths(qs, core.GroundTruthConfig{
			Search:  groundtruth.Config{Seed: 1},
			Workers: *workers,
		})
		if err != nil {
			log.Fatal(err)
		}
		analysis, err = s.Analyze(gts, core.AnalysisConfig{Workers: *workers})
		if err != nil {
			log.Fatal(err)
		}
	}
	var ablation []core.AblationRow
	if *exp == "ablation" || *exp == "all" {
		ablation, err = s.CompareExpanders(qs, core.AblationConfig{Workers: *workers})
		if err != nil {
			log.Fatal(err)
		}
	}

	switch *exp {
	case "all":
		fmt.Println(report.All(analysis, ablation))
	case "table2":
		fmt.Println(report.Table2(analysis))
	case "table3":
		fmt.Println(report.Table3(analysis))
	case "table4":
		fmt.Println(report.Table4(analysis))
	case "fig5":
		fmt.Println(report.Fig5(analysis))
	case "fig6":
		fmt.Println(report.Fig6(analysis))
	case "fig7a":
		fmt.Println(report.Fig7a(analysis))
	case "fig7b":
		fmt.Println(report.Fig7b(analysis))
	case "fig9":
		fmt.Println(report.Fig9(analysis))
	case "text3":
		fmt.Println(report.Text3(analysis))
	case "ablation":
		fmt.Println(report.Ablation(ablation))
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	fmt.Printf("total wall time: %v\n", time.Since(start).Round(time.Millisecond))
}
