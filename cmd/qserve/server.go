package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"mime"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	querygraph "github.com/querygraph/querygraph"
	"github.com/querygraph/querygraph/internal/trace"
)

// statusClientClosedRequest is the nginx-convention status for a request
// whose client went away before the response was ready; there is no
// standard-library constant for it.
const statusClientClosedRequest = 499

// maxRequestBody bounds request JSON; expansion batches are lists of short
// keyword strings, so 1 MiB is generous.
const maxRequestBody = 1 << 20

// server is the HTTP front end over one querygraph.Backend — the public
// serving contract both the single-snapshot *Client and the sharded *Pool
// satisfy, so one front end serves either deployment shape without a
// private interface of its own.
type server struct {
	backend querygraph.Backend
	// pool is non-nil when the backend is a sharded Pool: it unlocks
	// /v1/admin/reload and the per-shard stats.
	pool *querygraph.Pool
	// remote is non-nil when the backend is a topology-backed fan-out
	// coordinator: healthz and stats report the fleet's shard count.
	remote *querygraph.Remote
	// metrics is the observer attached to the backend at Open time; when
	// non-nil its counters are served at GET /v1/metrics.
	metrics *querygraph.MetricsObserver
	// timeout bounds each request's context unless the request asks for
	// less via timeout_ms.
	timeout time.Duration
	started time.Time
	mux     *http.ServeMux

	// recorder is the flight recorder the admin mux serves at
	// /v1/debug/requests; nil discards completed traces.
	recorder *trace.Recorder
	// sample traces 1 in sample requests (1 = every request, the
	// default); 0 disables tracing entirely — requests then pay one
	// counter add and the X-Request-ID echo, nothing else.
	sample int
	reqSeq atomic.Uint64
	// slowlogMS dumps a slow request's full span tree through logger
	// when its duration reaches the threshold (0 disables).
	slowlogMS float64
	// accessLog logs one line per completed traced request when set.
	accessLog bool
	// logger receives access-log and slowlog output; nil silences both.
	logger *slog.Logger
}

func newServer(be querygraph.Backend, timeout time.Duration, metrics *querygraph.MetricsObserver) *server {
	s := &server{
		backend: be,
		metrics: metrics,
		timeout: timeout,
		started: time.Now(),
		mux:     http.NewServeMux(),
		sample:  1,
	}
	s.pool, _ = be.(*querygraph.Pool)
	s.remote, _ = be.(*querygraph.Remote)
	s.mux.HandleFunc("POST /v1/search", s.handleSearch)
	s.mux.HandleFunc("POST /v1/search/batch", s.handleSearchBatch)
	s.mux.HandleFunc("POST /v1/expand", s.handleExpand)
	s.mux.HandleFunc("POST /v1/expand/batch", s.handleExpandBatch)
	s.mux.HandleFunc("POST /v1/admin/reload", s.handleReload)
	s.mux.HandleFunc("POST /v1/admin/ingest", s.handleIngest)
	s.mux.HandleFunc("POST /v1/admin/compact", s.handleCompact)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	if metrics != nil {
		s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	}
	return s
}

// ServeHTTP is the tracing middleware around the mux. Every request —
// including errors and 404s — gets an X-Request-ID response header: a
// client-supplied valid ID is echoed back (and becomes the trace ID, so
// a caller can correlate its own logs with /v1/debug/requests), anything
// else is replaced by a freshly minted ID. Sampled-in requests carry a
// trace.Trace through context; the handlers and the backend annotate it
// with per-phase spans, and completion seals it into the flight
// recorder. Sampled-out requests skip all of that: one counter add, the
// header echo, and the nil-trace fast paths everywhere below.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	reqID := r.Header.Get("X-Request-Id")
	id, ok := trace.ParseID(reqID)
	if !ok {
		id = trace.NewID()
		reqID = id.String()
	}
	w.Header().Set("X-Request-Id", reqID)
	if s.sample <= 0 || s.reqSeq.Add(1)%uint64(s.sample) != 0 {
		s.mux.ServeHTTP(w, r)
		return
	}

	tr := trace.Begin(id)
	sw := statusWriterPool.Get().(*statusWriter)
	sw.ResponseWriter, sw.status = w, 0
	s.mux.ServeHTTP(sw, r.WithContext(trace.NewContext(r.Context(), tr)))
	status := sw.status
	if status == 0 {
		status = http.StatusOK
	}
	sw.ResponseWriter = nil
	statusWriterPool.Put(sw)

	errClass := ""
	if status >= 400 {
		errClass = "http_" + strconv.Itoa(status)
	}
	rec := tr.Finish(r.Method+" "+r.URL.Path, errClass)
	s.recorder.Store(rec)
	if s.logger == nil {
		return
	}
	if s.accessLog {
		s.logger.LogAttrs(context.Background(), slog.LevelInfo, "request",
			slog.String("trace_id", rec.TraceID),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", status),
			slog.Float64("dur_ms", rec.DurMS),
			slog.Int("spans", len(rec.Spans)))
	}
	if s.slowlogMS > 0 && rec.DurMS >= s.slowlogMS {
		spans, _ := json.Marshal(rec.Spans)
		s.logger.LogAttrs(context.Background(), slog.LevelWarn, "slow request",
			slog.String("trace_id", rec.TraceID),
			slog.String("op", rec.Op),
			slog.Float64("dur_ms", rec.DurMS),
			slog.String("spans", string(spans)))
	}
}

// statusWriter captures the response status for the access log and the
// trace record; pooled so the traced path does not allocate a wrapper
// per request.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

var statusWriterPool = sync.Pool{New: func() any { return new(statusWriter) }}

// requestContext bounds the request with the server's default timeout;
// a request's own timeout_ms rides in the typed request's Timeout, which
// can only lower the effective deadline (earliest wins).
func (s *server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), s.timeout)
}

// requestTimeout converts a wire timeout_ms into the typed requests'
// Timeout field (0 = inherit the server deadline unchanged). Negative
// values never reach here: every endpoint rejects them first via
// validTimeout.
func requestTimeout(timeoutMS int64) time.Duration {
	if timeoutMS <= 0 {
		return 0
	}
	return time.Duration(timeoutMS) * time.Millisecond
}

// validTimeout rejects a negative timeout_ms with 400 invalid_timeout.
// Before this check existed, a negative value slid through requestTimeout's
// "<= 0 means inherit" clamp and silently behaved like an absent field —
// the opposite of what a client asking for a nonsensical deadline should
// see.
func (s *server) validTimeout(w http.ResponseWriter, timeoutMS int64) bool {
	if timeoutMS >= 0 {
		return true
	}
	s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: errorBody{
		Code:    "invalid_timeout",
		Message: fmt.Sprintf("timeout_ms must be >= 0, got %d", timeoutMS),
	}})
	return false
}

// --- wire types --------------------------------------------------------

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorResponse struct {
	Error errorBody `json:"error"`
}

type resultJSON struct {
	Doc   int32   `json:"doc"`
	Score float64 `json:"score"`
}

func resultsJSON(rs []querygraph.Result) []resultJSON {
	out := make([]resultJSON, len(rs))
	for i, r := range rs {
		out[i] = resultJSON{Doc: r.Doc, Score: r.Score}
	}
	return out
}

type searchRequest struct {
	Query string `json:"query"`
	K     int    `json:"k"`
	// TimeoutMS lowers the server's per-request timeout for this call.
	TimeoutMS int64 `json:"timeout_ms"`
}

type searchResponse struct {
	Results []resultJSON `json:"results"`
	TookMS  float64      `json:"took_ms"`
	// Partial marks a degraded answer: a topology-backed coordinator lost
	// shards but its policy allowed serving the survivors' merge. Absent
	// (false) on every complete response, so the zero-allocation fast path
	// never has to encode it.
	Partial bool `json:"partial,omitempty"`
}

type searchBatchRequest struct {
	Queries   []string `json:"queries"`
	K         int      `json:"k"`
	Workers   int      `json:"workers"`
	TimeoutMS int64    `json:"timeout_ms"`
}

type searchBatchResponse struct {
	Results [][]resultJSON `json:"results"`
	TookMS  float64        `json:"took_ms"`
	// Partial marks a degraded answer (see searchResponse.Partial).
	Partial bool `json:"partial,omitempty"`
}

// expandParams are the optional expansion knobs; pointers distinguish
// "absent, use the paper default" from an explicit zero — the same
// contract the functional options give Go callers.
type expandParams struct {
	MaxCycleLen      *int     `json:"max_cycle_len"`
	Radius           *int     `json:"radius"`
	MaxNeighborhood  *int     `json:"max_neighborhood"`
	MinCategoryRatio *float64 `json:"min_category_ratio"`
	MaxCategoryRatio *float64 `json:"max_category_ratio"`
	MinDensity       *float64 `json:"min_density"`
	MaxFeatures      *int     `json:"max_features"`
	TwoCycles        *bool    `json:"two_cycles"`
	FrequencyRank    *bool    `json:"frequency_rank"`
	RedirectAliases  *bool    `json:"redirect_aliases"`
}

func (p expandParams) options() ([]querygraph.ExpandOption, error) {
	var opts []querygraph.ExpandOption
	if p.MaxCycleLen != nil {
		opts = append(opts, querygraph.WithMaxCycleLen(*p.MaxCycleLen))
	}
	if p.Radius != nil {
		opts = append(opts, querygraph.WithRadius(*p.Radius))
	}
	if p.MaxNeighborhood != nil {
		opts = append(opts, querygraph.WithMaxNeighborhood(*p.MaxNeighborhood))
	}
	if (p.MinCategoryRatio == nil) != (p.MaxCategoryRatio == nil) {
		return nil, fmt.Errorf("%w: min_category_ratio and max_category_ratio must be set together",
			querygraph.ErrInvalidOptions)
	}
	if p.MinCategoryRatio != nil {
		opts = append(opts, querygraph.WithCategoryRatioBand(*p.MinCategoryRatio, *p.MaxCategoryRatio))
	}
	if p.MinDensity != nil {
		opts = append(opts, querygraph.WithMinDensity(*p.MinDensity))
	}
	if p.MaxFeatures != nil {
		opts = append(opts, querygraph.WithMaxFeatures(*p.MaxFeatures))
	}
	if p.TwoCycles != nil {
		opts = append(opts, querygraph.WithTwoCycles(*p.TwoCycles))
	}
	if p.FrequencyRank != nil {
		opts = append(opts, querygraph.WithFrequencyRank(*p.FrequencyRank))
	}
	if p.RedirectAliases != nil {
		opts = append(opts, querygraph.WithRedirectAliases(*p.RedirectAliases))
	}
	return opts, nil
}

type expandRequest struct {
	Keywords string `json:"keywords"`
	// K > 0 additionally runs the expanded retrieval and returns the top
	// K documents alongside the features.
	K         int   `json:"k"`
	TimeoutMS int64 `json:"timeout_ms"`
	expandParams
}

type entityJSON struct {
	ID    int64  `json:"id"`
	Title string `json:"title"`
}

type featureJSON struct {
	Title         string  `json:"title"`
	CycleLen      int     `json:"cycle_len"`
	Density       float64 `json:"density"`
	CategoryRatio float64 `json:"category_ratio"`
}

type expansionJSON struct {
	Keywords         string        `json:"keywords"`
	Entities         []entityJSON  `json:"entities"`
	Features         []featureJSON `json:"features"`
	CyclesConsidered int           `json:"cycles_considered"`
	CyclesAccepted   int           `json:"cycles_accepted"`
	Results          []resultJSON  `json:"results,omitempty"`
}

func (s *server) expansionJSON(exp *querygraph.Expansion, results []querygraph.Result) expansionJSON {
	out := expansionJSON{
		Keywords:         exp.Keywords,
		Entities:         make([]entityJSON, len(exp.QueryArticles)),
		Features:         make([]featureJSON, len(exp.Features)),
		CyclesConsidered: exp.CyclesConsidered,
		CyclesAccepted:   exp.CyclesAccepted,
	}
	for i, id := range exp.QueryArticles {
		out.Entities[i] = entityJSON{ID: int64(id), Title: s.backend.Title(id)}
	}
	for i, f := range exp.Features {
		out.Features[i] = featureJSON{
			Title:         f.Title,
			CycleLen:      f.CycleLen,
			Density:       f.Density,
			CategoryRatio: f.CategoryRatio,
		}
	}
	if results != nil {
		out.Results = resultsJSON(results)
	}
	return out
}

type expandResponse struct {
	expansionJSON
	TookMS float64 `json:"took_ms"`
	// Partial marks a degraded retrieval leg (see searchResponse.Partial);
	// the expansion itself is never partial.
	Partial bool `json:"partial,omitempty"`
}

type expandBatchRequest struct {
	Keywords []string `json:"keywords"`
	// K > 0 additionally runs the expanded retrieval for every entry and
	// attaches the top K documents to each expansion.
	K         int   `json:"k"`
	Workers   int   `json:"workers"`
	TimeoutMS int64 `json:"timeout_ms"`
	expandParams
}

type expandBatchResponse struct {
	Expansions []expansionJSON `json:"expansions"`
	TookMS     float64         `json:"took_ms"`
	// Partial marks a degraded retrieval leg (see searchResponse.Partial).
	Partial bool `json:"partial,omitempty"`
}

// --- handlers ----------------------------------------------------------

// handleSearch is the zero-allocation fast path (see fastpath.go): pooled
// body and encode buffers, a hand-rolled parser and encoder for the two
// wire structs, an interned query string, a timer-free pooled deadline
// context and Backend.SearchInto over pooled result storage. At steady
// state the handler allocates nothing per request — pinned by
// TestSearchHandlerZeroAlloc.
func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if !s.requireJSONFast(w, r) {
		return
	}
	sc := getScratch()
	defer putScratch(sc)
	body, ok := s.readBody(w, r, sc)
	if !ok {
		return
	}
	var req fastSearchReq
	if err := parseSearchBody(body, sc, &req); err != nil {
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: errorBody{
			Code:    "invalid_body",
			Message: "bad request body: " + err.Error(),
		}})
		return
	}
	if !s.validTimeout(w, req.timeoutMS) {
		return
	}
	timeout := s.timeout
	if t := requestTimeout(req.timeoutMS); t > 0 && t < timeout {
		timeout = t
	}
	sc.dctx.reset(r.Context(), timeout)
	start := time.Now()
	rs, err := s.backend.SearchInto(&sc.dctx, sc.internQuery(req.query), s.rank(int(req.k)), sc.results[:0])
	if err != nil {
		// A degraded coordinator (ErrPartialResult) still delivered the
		// survivors' ranking: serve it with the partial flag on the generic
		// slow path. The fast path below stays reserved for complete
		// answers, so its hand-rolled encoder never learns about the flag.
		if errors.Is(err, querygraph.ErrPartialResult) {
			sc.results = rs
			s.writeJSON(w, http.StatusOK, searchResponse{
				Results: resultsJSON(rs),
				TookMS:  tookMS(time.Since(start)),
				Partial: true,
			})
			return
		}
		s.writeError(w, err)
		return
	}
	sc.results = rs
	sc.out = appendSearchResponse(sc.out[:0], rs, time.Since(start))
	w.Header()["Content-Type"] = jsonContentType
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(sc.out)
}

func (s *server) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	var req searchBatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if !s.validTimeout(w, req.TimeoutMS) {
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	resp, err := querygraph.SearchBatchRequest{
		Queries: req.Queries,
		K:       s.rank(req.K),
		Workers: req.Workers,
		Timeout: requestTimeout(req.TimeoutMS),
	}.Do(ctx, s.backend)
	if err != nil && !errors.Is(err, querygraph.ErrPartialResult) {
		s.writeError(w, err)
		return
	}
	out := make([][]resultJSON, len(resp.Results))
	for i, rs := range resp.Results {
		out[i] = resultsJSON(rs)
	}
	s.writeJSON(w, http.StatusOK, searchBatchResponse{
		Results: out,
		TookMS:  tookMS(resp.Took),
		Partial: err != nil,
	})
}

func (s *server) handleExpand(w http.ResponseWriter, r *http.Request) {
	var req expandRequest
	if !s.decode(w, r, &req) {
		return
	}
	if !s.validTimeout(w, req.TimeoutMS) {
		return
	}
	opts, err := req.options()
	if err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	treq := querygraph.ExpandRequest{
		Keywords: req.Keywords,
		Options:  opts,
		Timeout:  requestTimeout(req.TimeoutMS),
	}
	if req.K > 0 {
		treq.K = s.rank(req.K)
	}
	resp, err := treq.Do(ctx, s.backend)
	if err != nil && !errors.Is(err, querygraph.ErrPartialResult) {
		s.writeError(w, err)
		return
	}
	var results []querygraph.Result
	if req.K > 0 {
		results = resp.Results
		if !resp.Searched {
			results = []querygraph.Result{}
		}
	}
	s.writeJSON(w, http.StatusOK, expandResponse{
		expansionJSON: s.expansionJSON(resp.Expansion, results),
		TookMS:        tookMS(resp.Took),
		Partial:       err != nil,
	})
}

func (s *server) handleExpandBatch(w http.ResponseWriter, r *http.Request) {
	var req expandBatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if !s.validTimeout(w, req.TimeoutMS) {
		return
	}
	opts, err := req.options()
	if err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	treq := querygraph.ExpandBatchRequest{
		Keywords: req.Keywords,
		Options:  opts,
		Workers:  req.Workers,
		Timeout:  requestTimeout(req.TimeoutMS),
	}
	if req.K > 0 {
		treq.K = s.rank(req.K)
	}
	resp, err := treq.Do(ctx, s.backend)
	if err != nil && !errors.Is(err, querygraph.ErrPartialResult) {
		s.writeError(w, err)
		return
	}
	out := make([]expansionJSON, len(resp.Expansions))
	for i, exp := range resp.Expansions {
		var rs []querygraph.Result
		if resp.Results != nil && resp.Results[i] != nil {
			rs = resp.Results[i]
		}
		out[i] = s.expansionJSON(exp, rs)
	}
	s.writeJSON(w, http.StatusOK, expandBatchResponse{
		Expansions: out,
		TookMS:     tookMS(resp.Took),
		Partial:    err != nil,
	})
}

// --- admin: hot reload --------------------------------------------------

type reloadRequest struct {
	// Manifest optionally switches the pool to a different manifest path;
	// empty (or an empty body) re-reads the manifest the pool is on.
	Manifest string `json:"manifest"`
}

type reloadResponse struct {
	Status     string  `json:"status"`
	Generation uint64  `json:"generation"`
	Shards     int     `json:"shards"`
	Documents  int     `json:"documents"`
	TookMS     float64 `json:"took_ms"`
}

// handleReload swaps in the next snapshot generation with zero downtime
// (Pool.Reload): in-flight requests finish on the old generation. An
// empty body re-reads the current manifest; {"manifest": "..."} switches
// paths. Only a pool-backed server (qserve -load manifest.json) can
// reload; a single-snapshot server answers 409.
func (s *server) handleReload(w http.ResponseWriter, r *http.Request) {
	if s.pool == nil {
		s.writeJSON(w, http.StatusConflict, errorResponse{Error: errorBody{
			Code:    "not_reloadable",
			Message: "server is backed by a single snapshot, not a sharded manifest; restart to change data",
		}})
		return
	}
	var req reloadRequest
	sc := getScratch()
	defer putScratch(sc)
	body, ok := s.readBody(w, r, sc)
	if !ok {
		return
	}
	if len(bytes.TrimSpace(body)) > 0 {
		if !s.requireJSON(w, r) {
			return
		}
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: errorBody{
				Code:    "invalid_body",
				Message: "bad request body: " + err.Error(),
			}})
			return
		}
	}
	start := time.Now()
	if err := s.pool.Reload(req.Manifest); err != nil {
		s.writeJSON(w, http.StatusUnprocessableEntity, errorResponse{Error: errorBody{
			Code:    "invalid_manifest",
			Message: err.Error(),
		}})
		return
	}
	st := s.pool.PoolStats()
	s.writeJSON(w, http.StatusOK, reloadResponse{
		Status:     "ok",
		Generation: st.Generation,
		Shards:     len(st.Shards),
		Documents:  st.Documents,
		TookMS:     ms(start),
	})
}

// --- admin: live ingest and compaction ----------------------------------

// ingestDoc is the wire shape of one document to ingest, mirroring the
// ImageCLEF record the indexer understands (corpus.Image). Only the
// English text section, the file name and the wiki-template comment feed
// the index (the paper's Section 2.1 extraction); id is an optional
// external identifier that must be unique across the base snapshot and
// the delta segment.
type ingestDoc struct {
	ID      string       `json:"id,omitempty"`
	File    string       `json:"file,omitempty"`
	Name    string       `json:"name,omitempty"`
	Texts   []ingestText `json:"texts,omitempty"`
	Comment string       `json:"comment,omitempty"`
	License string       `json:"license,omitempty"`
}

type ingestText struct {
	Lang        string          `json:"lang,omitempty"`
	Description string          `json:"description,omitempty"`
	Comment     string          `json:"comment,omitempty"`
	Captions    []ingestCaption `json:"captions,omitempty"`
}

type ingestCaption struct {
	Article string `json:"article,omitempty"`
	Value   string `json:"value"`
}

func (d ingestDoc) document() querygraph.Document {
	doc := querygraph.Document{
		ID:      d.ID,
		File:    d.File,
		Name:    d.Name,
		Comment: d.Comment,
		License: d.License,
	}
	for _, t := range d.Texts {
		text := querygraph.DocumentText{
			Lang:        t.Lang,
			Description: t.Description,
			Comment:     t.Comment,
		}
		for _, c := range t.Captions {
			text.Captions = append(text.Captions, querygraph.Caption{Article: c.Article, Value: c.Value})
		}
		doc.Texts = append(doc.Texts, text)
	}
	return doc
}

type ingestRequest struct {
	Documents []ingestDoc `json:"documents"`
	TimeoutMS int64       `json:"timeout_ms"`
}

type ingestResponse struct {
	Status     string  `json:"status"`
	Ingested   int     `json:"ingested"`
	DeltaDocs  int     `json:"delta_docs"`
	DeltaBytes int64   `json:"delta_bytes"`
	Generation uint64  `json:"generation"`
	TookMS     float64 `json:"took_ms"`
}

// handleIngest appends a batch of documents to the backend's in-memory
// delta segment; they are searchable by the time the 200 arrives. The
// batch is atomic: a duplicate external id rejects the whole batch (400),
// a full segment answers 429 delta_full (compact, then retry), and a
// read-only backend (a fan-out coordinator) answers 409.
func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	if !s.decode(w, r, &req) {
		return
	}
	if !s.validTimeout(w, req.TimeoutMS) {
		return
	}
	docs := make([]querygraph.Document, len(req.Documents))
	for i, d := range req.Documents {
		docs[i] = d.document()
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	start := time.Now()
	st, err := s.backend.Ingest(ctx, docs)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, ingestResponse{
		Status:     "ok",
		Ingested:   st.Ingested,
		DeltaDocs:  st.DeltaDocs,
		DeltaBytes: st.DeltaBytes,
		Generation: st.Generation,
		TookMS:     ms(start),
	})
}

type compactResponse struct {
	Status     string  `json:"status"`
	Compacted  int     `json:"compacted"`
	Documents  int     `json:"documents"`
	Generation uint64  `json:"generation"`
	TookMS     float64 `json:"took_ms"`
}

// handleCompact folds the delta segment into a fresh snapshot generation
// and hot-swaps it with zero downtime; search results are identical
// before and after, only the generation counter moves. An empty delta is
// a successful no-op with the generation unchanged. The body is ignored.
func (s *server) handleCompact(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.requestContext(r)
	defer cancel()
	start := time.Now()
	st, err := s.backend.Compact(ctx)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, compactResponse{
		Status:     "ok",
		Compacted:  st.Compacted,
		Documents:  st.Documents,
		Generation: st.Generation,
		TookMS:     ms(start),
	})
}

type healthzResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Articles      int     `json:"articles"`
	Documents     int     `json:"documents"`
	// Shards is present when serving a sharded pool or a shard-fleet
	// topology; Generation only when serving a pool.
	Shards     int    `json:"shards,omitempty"`
	Generation uint64 `json:"generation,omitempty"`
	// DeltaDocuments and PendingBytes surface the live delta segment:
	// documents ingested since the last compaction and the heap they hold
	// until a compaction folds them into the base snapshot.
	DeltaDocuments int   `json:"delta_documents"`
	PendingBytes   int64 `json:"pending_bytes"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthzResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.started).Seconds(),
	}
	// One stats snapshot per response: a reload landing mid-handler must
	// not mix two generations' numbers.
	if s.pool != nil {
		ps := s.pool.PoolStats()
		resp.Articles = ps.Articles
		resp.Documents = ps.Documents
		resp.Shards = len(ps.Shards)
		resp.Generation = ps.Generation
		resp.DeltaDocuments = ps.Delta.Documents
		resp.PendingBytes = ps.Delta.PendingBytes
	} else {
		st := s.backend.Stats()
		resp.Articles = st.Articles
		resp.Documents = st.Documents
		resp.DeltaDocuments = st.Delta.Documents
		resp.PendingBytes = st.Delta.PendingBytes
		if s.remote != nil {
			resp.Shards = s.remote.NumShards()
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleMetrics serves the backend observer's counters in Prometheus text
// exposition format: request/error totals by operation and class,
// duration sums, expansion cache outcomes and the pool generation gauge.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = s.metrics.WritePrometheus(w)
}

type cacheStatsJSON struct {
	Hits     uint64  `json:"hits"`
	Misses   uint64  `json:"misses"`
	Deduped  uint64  `json:"deduped"`
	Entries  int     `json:"entries"`
	Capacity int     `json:"capacity"`
	HitRate  float64 `json:"hit_rate"`
}

type statsResponse struct {
	Articles         int            `json:"articles"`
	Redirects        int            `json:"redirects"`
	Categories       int            `json:"categories"`
	Links            int            `json:"links"`
	Documents        int            `json:"documents"`
	BenchmarkQueries int            `json:"benchmark_queries"`
	ExpandCache      cacheStatsJSON `json:"expand_cache"`
	// Sharded-pool extras: per-shard sizes and the generation counters.
	Shards     []querygraph.ShardStats `json:"shards,omitempty"`
	Generation uint64                  `json:"generation,omitempty"`
	Reloads    uint64                  `json:"reloads"`
	// Delta is the live-segment view: documents ingested since the last
	// compaction, the bytes a compaction would fold, the compaction
	// generation and the number of compactions run.
	Delta deltaStatsJSON `json:"delta"`
}

type deltaStatsJSON struct {
	Documents    int    `json:"documents"`
	PendingBytes int64  `json:"pending_bytes"`
	Generation   uint64 `json:"generation"`
	Compactions  uint64 `json:"compactions"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	// One stats snapshot per response (see handleHealthz): on a pool, a
	// single PoolStats call supplies the aggregate and the per-shard rows
	// from the same generation.
	var resp statsResponse
	var st querygraph.Stats
	if s.pool != nil {
		ps := s.pool.PoolStats()
		st = ps.Stats
		resp.Shards = ps.Shards
		resp.Generation = ps.Generation
		resp.Reloads = ps.Reloads
	} else {
		st = s.backend.Stats()
	}
	resp.Articles = st.Articles
	resp.Redirects = st.Redirects
	resp.Categories = st.Categories
	resp.Links = st.Links
	resp.Documents = st.Documents
	resp.BenchmarkQueries = st.BenchmarkQueries
	resp.Delta = deltaStatsJSON{
		Documents:    st.Delta.Documents,
		PendingBytes: st.Delta.PendingBytes,
		Generation:   st.Delta.Generation,
		Compactions:  st.Delta.Compactions,
	}
	resp.ExpandCache = cacheStatsJSON{
		Hits:     st.Cache.Hits,
		Misses:   st.Cache.Misses,
		Deduped:  st.Cache.Deduped,
		Entries:  st.Cache.Entries,
		Capacity: st.Cache.Capacity,
		HitRate:  st.Cache.HitRate(),
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// --- plumbing ----------------------------------------------------------

// rank clamps the requested depth: 0 means the paper's top-15, and the
// depth is capped so one request cannot ask the engine to rank the whole
// collection.
func (s *server) rank(k int) int {
	const maxK = 1000
	switch {
	case k <= 0:
		return querygraph.MaxRank
	case k > maxK:
		return maxK
	default:
		return k
	}
}

// requireJSON enforces the POST content type: the declared media type
// must be application/json (parameters like charset are fine). Rejecting
// everything else keeps browser-form cross-site posts and accidental
// x-www-form-urlencoded clients out of the JSON decoder.
func (s *server) requireJSON(w http.ResponseWriter, r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil || mt != "application/json" {
		s.writeJSON(w, http.StatusUnsupportedMediaType, errorResponse{Error: errorBody{
			Code:    "unsupported_media_type",
			Message: fmt.Sprintf("Content-Type %q is not application/json", ct),
		}})
		return false
	}
	return true
}

func (s *server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	if !s.requireJSON(w, r) {
		return false
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{Error: errorBody{
				Code:    "request_too_large",
				Message: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit),
			}})
			return false
		}
		s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: errorBody{
			Code:    "invalid_body",
			Message: "bad request body: " + err.Error(),
		}})
		return false
	}
	return true
}

// writeError maps an error from the serving API onto the HTTP error
// model, keyed by the same querygraph.ErrorClass taxonomy the observers
// use (one switch can't drift from the other): 408 for a deadline the
// request ran into, 499 (nginx convention) for a client that went away,
// 400 for invalid queries or options, 503 for a backend already retired
// by shutdown or a shard fleet below quorum, 409 for a write against a
// read-only backend, 429 for a delta segment at capacity, 500 for
// everything else.
// The body is always an errorResponse. ErrPartialResult never reaches
// here: the handlers serve a degraded 200 with the partial flag instead.
func (s *server) writeError(w http.ResponseWriter, err error) {
	var status int
	class := querygraph.ErrorClass(err)
	code := class
	switch class {
	case "timeout":
		status = http.StatusRequestTimeout
	case "canceled":
		status, code = statusClientClosedRequest, "client_closed_request"
	case "invalid_query", "invalid_options":
		status = http.StatusBadRequest
	case "closed":
		status, code = http.StatusServiceUnavailable, "shutting_down"
	case "read_only":
		// The backend has no write path (a fan-out coordinator): ingest
		// against a shard server or a pool-backed deployment instead.
		status = http.StatusConflict
	case "delta_full":
		// The delta segment is at capacity; a compaction frees it. Retry
		// after POST /v1/admin/compact (or wait for the auto-compactor).
		status = http.StatusTooManyRequests
	case "shard_unavailable":
		// The fan-out coordinator could not reach quorum: the data plane is
		// down or degraded past policy, which is a service condition (retry
		// against a healthier fleet), not a caller mistake.
		status = http.StatusServiceUnavailable
	default:
		status, code = http.StatusInternalServerError, "internal"
	}
	s.writeJSON(w, status, errorResponse{Error: errorBody{Code: code, Message: err.Error()}})
}

// encoderBufPool recycles the staging buffers writeJSON encodes into; the
// per-response json.Encoder is unavoidable on this generic path, but the
// buffer (the larger allocation) is not.
var encoderBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func (s *server) writeJSON(w http.ResponseWriter, status int, body any) {
	buf := encoderBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	_ = json.NewEncoder(buf).Encode(body)
	w.Header()["Content-Type"] = jsonContentType
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
	encoderBufPool.Put(buf)
}

func ms(start time.Time) float64 {
	return tookMS(time.Since(start))
}

func tookMS(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}
