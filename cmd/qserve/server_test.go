package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	querygraph "github.com/querygraph/querygraph"
)

var (
	clientOnce sync.Once
	testClient *querygraph.Client
)

func serveClient(t *testing.T) *querygraph.Client {
	t.Helper()
	clientOnce.Do(func() {
		cfg := querygraph.DefaultWorldConfig()
		cfg.Topics = 8
		cfg.ArticlesPerTopic = 12
		cfg.DocsPerTopic = 20
		cfg.Queries = 10
		cfg.NoiseVocab = 80
		w, err := querygraph.GenerateWorld(cfg)
		if err != nil {
			panic(err)
		}
		c, err := querygraph.Build(w)
		if err != nil {
			panic(err)
		}
		testClient = c
	})
	return testClient
}

func testServer(t *testing.T) *server {
	t.Helper()
	return newServer(serveClient(t), 5*time.Second, nil)
}

// do posts body (JSON-encoded if non-nil) with the required JSON content
// type and returns the recorder.
func do(t *testing.T, s *server, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	if method == http.MethodPost {
		req.Header.Set("Content-Type", "application/json")
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func decodeInto(t *testing.T, rec *httptest.ResponseRecorder, into any) {
	t.Helper()
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), into); err != nil {
		t.Fatalf("bad response JSON %q: %v", rec.Body.String(), err)
	}
}

func errorCode(t *testing.T, rec *httptest.ResponseRecorder) string {
	t.Helper()
	var resp errorResponse
	decodeInto(t, rec, &resp)
	if resp.Error.Message == "" {
		t.Errorf("error response without message: %q", rec.Body.String())
	}
	return resp.Error.Code
}

func TestHealthz(t *testing.T) {
	rec := do(t, testServer(t), http.MethodGet, "/v1/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	var resp healthzResponse
	decodeInto(t, rec, &resp)
	if resp.Status != "ok" || resp.Articles <= 0 || resp.Documents <= 0 {
		t.Errorf("healthz = %+v, want ok with a loaded world", resp)
	}
}

func TestStats(t *testing.T) {
	rec := do(t, testServer(t), http.MethodGet, "/v1/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	var resp statsResponse
	decodeInto(t, rec, &resp)
	if resp.Articles <= 0 || resp.Documents <= 0 || resp.BenchmarkQueries <= 0 {
		t.Errorf("stats = %+v, want a loaded world with a benchmark", resp)
	}
	if resp.ExpandCache.Capacity <= 0 {
		t.Errorf("stats report a disabled cache: %+v", resp.ExpandCache)
	}
}

func TestSearchMatchesClient(t *testing.T) {
	s := testServer(t)
	q := serveClient(t).Queries()[0]
	rec := do(t, s, http.MethodPost, "/v1/search", searchRequest{Query: q.Keywords, K: 5})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (%s), want 200", rec.Code, rec.Body.String())
	}
	var resp searchResponse
	decodeInto(t, rec, &resp)

	want, err := serveClient(t).Search(context.Background(), q.Keywords, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(want) {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(want))
	}
	for i, r := range resp.Results {
		if r.Doc != want[i].Doc {
			t.Errorf("rank %d: doc %d, want %d", i, r.Doc, want[i].Doc)
		}
	}
}

func TestSearchBatchAlignment(t *testing.T) {
	s := testServer(t)
	qs := serveClient(t).Queries()
	queries := []string{qs[0].Keywords, qs[1].Keywords, qs[2].Keywords}
	rec := do(t, s, http.MethodPost, "/v1/search/batch", searchBatchRequest{Queries: queries, K: 3})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (%s), want 200", rec.Code, rec.Body.String())
	}
	var resp searchBatchResponse
	decodeInto(t, rec, &resp)
	if len(resp.Results) != len(queries) {
		t.Fatalf("got %d rankings for %d queries", len(resp.Results), len(queries))
	}
	for i, q := range queries {
		want, err := serveClient(t).Search(context.Background(), q, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Results[i]) != len(want) {
			t.Errorf("query %d: %d results, want %d", i, len(resp.Results[i]), len(want))
		}
	}
}

func TestExpandWithRetrieval(t *testing.T) {
	s := testServer(t)
	q := serveClient(t).Queries()[0]
	max := 5
	rec := do(t, s, http.MethodPost, "/v1/expand", expandRequest{
		Keywords:     q.Keywords,
		K:            10,
		expandParams: expandParams{MaxFeatures: &max},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (%s), want 200", rec.Code, rec.Body.String())
	}
	var resp expandResponse
	decodeInto(t, rec, &resp)
	if resp.Keywords != q.Keywords {
		t.Errorf("echoed keywords %q, want %q", resp.Keywords, q.Keywords)
	}
	if len(resp.Entities) == 0 {
		t.Error("no entities linked")
	}
	if len(resp.Features) > max {
		t.Errorf("%d features, want at most %d", len(resp.Features), max)
	}
	if resp.Results == nil {
		t.Error("k > 0 should attach retrieval results")
	}

	// An absurd k is clamped, not handed to the engine verbatim.
	rec = do(t, s, http.MethodPost, "/v1/expand", expandRequest{Keywords: q.Keywords, K: 100000000})
	if rec.Code != http.StatusOK {
		t.Fatalf("huge-k status = %d (%s), want 200", rec.Code, rec.Body.String())
	}
	var clamped expandResponse
	decodeInto(t, rec, &clamped)
	if len(clamped.Results) > 1000 {
		t.Errorf("huge k returned %d results, want the clamp at 1000", len(clamped.Results))
	}
}

func TestExpandBatchAttachesRetrieval(t *testing.T) {
	s := testServer(t)
	qs := serveClient(t).Queries()
	rec := do(t, s, http.MethodPost, "/v1/expand/batch", expandBatchRequest{
		Keywords: []string{qs[5].Keywords, qs[6].Keywords},
		K:        4,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (%s), want 200", rec.Code, rec.Body.String())
	}
	var resp expandBatchResponse
	decodeInto(t, rec, &resp)
	if len(resp.Expansions) != 2 {
		t.Fatalf("got %d expansions, want 2", len(resp.Expansions))
	}
	for i, exp := range resp.Expansions {
		if len(exp.Results) == 0 {
			t.Errorf("expansion %d: k > 0 should attach retrieval results", i)
		}
		if len(exp.Results) > 4 {
			t.Errorf("expansion %d: %d results, want at most k=4", i, len(exp.Results))
		}
	}
}

func TestExpandBatchWarmsCache(t *testing.T) {
	s := testServer(t)
	qs := serveClient(t).Queries()
	keywords := []string{qs[3].Keywords, qs[3].Keywords, qs[4].Keywords}
	rec := do(t, s, http.MethodPost, "/v1/expand/batch", expandBatchRequest{Keywords: keywords})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (%s), want 200", rec.Code, rec.Body.String())
	}
	var resp expandBatchResponse
	decodeInto(t, rec, &resp)
	if len(resp.Expansions) != len(keywords) {
		t.Fatalf("got %d expansions for %d keywords", len(resp.Expansions), len(keywords))
	}
	// A second pass over the same keywords is served from the cache.
	before := serveClient(t).CacheStats().Hits
	rec = do(t, s, http.MethodPost, "/v1/expand/batch", expandBatchRequest{Keywords: keywords})
	if rec.Code != http.StatusOK {
		t.Fatalf("warm pass status = %d, want 200", rec.Code)
	}
	if after := serveClient(t).CacheStats().Hits; after < before+uint64(len(keywords)) {
		t.Errorf("cache hits %d -> %d, want at least %d more", before, after, len(keywords))
	}
}

func TestErrorModel(t *testing.T) {
	s := testServer(t)
	t.Run("malformed body", func(t *testing.T) {
		req := httptest.NewRequest(http.MethodPost, "/v1/search", strings.NewReader("{not json"))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", rec.Code)
		}
		if code := errorCode(t, rec); code != "invalid_body" {
			t.Errorf("code = %q, want invalid_body", code)
		}
	})
	t.Run("invalid query", func(t *testing.T) {
		rec := do(t, s, http.MethodPost, "/v1/search", searchRequest{Query: "#combine(unclosed"})
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", rec.Code)
		}
		if code := errorCode(t, rec); code != "invalid_query" {
			t.Errorf("code = %q, want invalid_query", code)
		}
	})
	t.Run("invalid options", func(t *testing.T) {
		lo, hi := 0.9, 0.1
		rec := do(t, s, http.MethodPost, "/v1/expand", expandRequest{
			Keywords:     "anything",
			expandParams: expandParams{MinCategoryRatio: &lo, MaxCategoryRatio: &hi},
		})
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", rec.Code)
		}
		if code := errorCode(t, rec); code != "invalid_options" {
			t.Errorf("code = %q, want invalid_options", code)
		}
	})
	t.Run("half-set band", func(t *testing.T) {
		lo := 0.2
		rec := do(t, s, http.MethodPost, "/v1/expand", expandRequest{
			Keywords:     "anything",
			expandParams: expandParams{MinCategoryRatio: &lo},
		})
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", rec.Code)
		}
	})
	t.Run("method not allowed", func(t *testing.T) {
		rec := do(t, s, http.MethodGet, "/v1/search", nil)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("status = %d, want 405", rec.Code)
		}
	})
}

// TestRequestTimeout pins the 408 contract: a request whose deadline has
// passed before (or while) the pipeline runs gets a JSON timeout error,
// for both single and batch endpoints.
func TestRequestTimeout(t *testing.T) {
	// A server whose per-request budget is one nanosecond times out
	// deterministically at the first context check.
	s := newServer(serveClient(t), time.Nanosecond, nil)
	q := serveClient(t).Queries()[0]

	for _, tc := range []struct {
		name, path string
		body       any
	}{
		{"search", "/v1/search", searchRequest{Query: q.Keywords, K: 5}},
		{"search batch", "/v1/search/batch", searchBatchRequest{Queries: []string{q.Keywords}}},
		{"expand", "/v1/expand", expandRequest{Keywords: q.Keywords}},
		{"expand batch", "/v1/expand/batch", expandBatchRequest{Keywords: []string{q.Keywords}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rec := do(t, s, http.MethodPost, tc.path, tc.body)
			if rec.Code != http.StatusRequestTimeout {
				t.Fatalf("status = %d (%s), want 408", rec.Code, rec.Body.String())
			}
			if code := errorCode(t, rec); code != "timeout" {
				t.Errorf("code = %q, want timeout", code)
			}
		})
	}

	// timeout_ms can only lower the budget, and a 1 ms budget on a batch
	// of many distinct cold expansions runs out mid-batch.
	big := newServer(serveClient(t), 5*time.Second, nil)
	keywords := make([]string, 500)
	for i := range keywords {
		keywords[i] = q.Keywords + " uncached variant " + strings.Repeat("x", i%7+1) + string(rune('a'+i%26))
	}
	rec := do(t, big, http.MethodPost, "/v1/expand/batch", expandBatchRequest{Keywords: keywords, TimeoutMS: 1})
	if rec.Code != http.StatusRequestTimeout {
		t.Fatalf("mid-batch status = %d (%s), want 408", rec.Code, rec.Body.String())
	}
}

// TestClientClosedRequest pins the 499 contract: when the requester's own
// context dies (the connection went away), the handler reports the
// nginx-style 499 rather than a timeout.
func TestClientClosedRequest(t *testing.T) {
	s := testServer(t)
	q := serveClient(t).Queries()[0]
	body, err := json.Marshal(searchRequest{Query: q.Keywords, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/search", bytes.NewReader(body)).WithContext(ctx)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("status = %d (%s), want 499", rec.Code, rec.Body.String())
	}
	if code := errorCode(t, rec); code != "client_closed_request" {
		t.Errorf("code = %q, want client_closed_request", code)
	}
}

// TestGracefulShutdown drives the real http.Server wiring: an in-flight
// request is drained before Shutdown returns.
func TestGracefulShutdown(t *testing.T) {
	s := testServer(t)
	srv := httptest.NewServer(s)
	q := serveClient(t).Queries()[0]
	body, _ := json.Marshal(searchRequest{Query: q.Keywords, K: 5})

	resp, err := http.Post(srv.URL+"/v1/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	srv.Close() // drains like Shutdown; a hang here fails the test by timeout
}

// TestShutdownClosesBackend pins the lifecycle satellite: the shutdown
// sequence drains the HTTP server and then calls Backend.Close, so the
// generation/refcount state is retired rather than abandoned — observable
// as post-shutdown requests failing with ErrClosed.
func TestShutdownClosesBackend(t *testing.T) {
	cfg := querygraph.DefaultWorldConfig()
	cfg.Topics = 4
	cfg.ArticlesPerTopic = 8
	cfg.DocsPerTopic = 8
	cfg.Queries = 4
	cfg.NoiseVocab = 40
	w, err := querygraph.GenerateWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := querygraph.Build(w)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := c.SaveShards(dir, 2); err != nil {
		t.Fatal(err)
	}
	pool, err := querygraph.OpenPool(dir + "/manifest.json")
	if err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(newServer(pool, 5*time.Second, nil))
	q := c.Queries()[0]
	body, _ := json.Marshal(searchRequest{Query: q.Keywords, K: 5})
	resp, err := http.Post(srv.URL+"/v1/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := drainAndClose(ctx, srv.Config, pool); err != nil {
		t.Fatalf("drainAndClose: %v", err)
	}
	if _, err := pool.Search(context.Background(), q.Keywords, 5); !errors.Is(err, querygraph.ErrClosed) {
		t.Fatalf("post-shutdown Search err = %v, want ErrClosed", err)
	}
	if gen := pool.Generation(); gen != 0 {
		t.Errorf("post-shutdown generation = %d, want 0 (backend retired)", gen)
	}
	// drainAndClose is idempotent about the backend: a second Close is nil.
	if err := pool.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestClosedBackend503 pins the HTTP mapping of ErrClosed: a request that
// races shutdown and reaches a retired backend is answered 503
// shutting_down, not a generic 500.
func TestClosedBackend503(t *testing.T) {
	cfg := querygraph.DefaultWorldConfig()
	cfg.Topics = 4
	cfg.ArticlesPerTopic = 8
	cfg.DocsPerTopic = 8
	cfg.Queries = 4
	cfg.NoiseVocab = 40
	w, err := querygraph.GenerateWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := querygraph.Build(w)
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(c, 5*time.Second, nil)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	rec := do(t, s, http.MethodPost, "/v1/search", searchRequest{Query: "anything", K: 3})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%s), want 503", rec.Code, rec.Body.String())
	}
	if code := errorCode(t, rec); code != "shutting_down" {
		t.Errorf("code = %q, want shutting_down", code)
	}
}

// TestMetricsEndpoint drives the observer-instrumented server and asserts
// GET /v1/metrics serves live Prometheus counters that increment with
// traffic.
func TestMetricsEndpoint(t *testing.T) {
	cfg := querygraph.DefaultWorldConfig()
	cfg.Topics = 4
	cfg.ArticlesPerTopic = 8
	cfg.DocsPerTopic = 8
	cfg.Queries = 4
	cfg.NoiseVocab = 40
	w, err := querygraph.GenerateWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	metrics := querygraph.NewMetricsObserver()
	c, err := querygraph.Build(w, querygraph.WithObserver(metrics))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := newServer(c, 5*time.Second, metrics)

	fetch := func() string {
		t.Helper()
		rec := do(t, s, http.MethodGet, "/v1/metrics", nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("metrics status = %d (%s), want 200", rec.Code, rec.Body.String())
		}
		if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("metrics Content-Type = %q, want text/plain", ct)
		}
		return rec.Body.String()
	}
	if text := fetch(); !strings.Contains(text, `querygraph_requests_total{op="search"} 0`) {
		t.Fatalf("fresh metrics missing zeroed search counter:\n%s", text)
	}

	q := c.Queries()[0]
	rec := do(t, s, http.MethodPost, "/v1/search", searchRequest{Query: q.Keywords, K: 5})
	if rec.Code != http.StatusOK {
		t.Fatalf("search status = %d", rec.Code)
	}
	rec = do(t, s, http.MethodPost, "/v1/expand", expandRequest{Keywords: q.Keywords})
	if rec.Code != http.StatusOK {
		t.Fatalf("expand status = %d", rec.Code)
	}
	rec = do(t, s, http.MethodPost, "/v1/search", searchRequest{Query: "#combine("})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad search status = %d", rec.Code)
	}

	text := fetch()
	for _, want := range []string{
		`querygraph_requests_total{op="search"} 2`,
		`querygraph_requests_total{op="expand"} 1`,
		`querygraph_request_errors_total{op="search",class="invalid_query"} 1`,
		`querygraph_expand_cache_total{outcome="miss"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics after traffic missing %q:\n%s", want, text)
		}
	}

	// A server without an attached observer has no metrics route.
	bare := newServer(c, 5*time.Second, nil)
	if rec := do(t, bare, http.MethodGet, "/v1/metrics", nil); rec.Code != http.StatusNotFound {
		t.Errorf("metrics without observer: status = %d, want 404", rec.Code)
	}
}

// poolServer builds a sharded pool over a small world and wraps it in a
// server; it returns the pool and a second manifest (a different world)
// to reload into.
// buildManifest generates a small sharded world and returns its manifest
// path.
func buildManifest(t *testing.T, seed int64, shards int) string {
	t.Helper()
	cfg := querygraph.DefaultWorldConfig()
	cfg.Seed = seed
	cfg.Topics = 6
	cfg.ArticlesPerTopic = 10
	cfg.DocsPerTopic = 12
	cfg.Queries = 6
	w, err := querygraph.GenerateWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := querygraph.Build(w)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := c.SaveShards(dir, shards); err != nil {
		t.Fatal(err)
	}
	return dir + "/manifest.json"
}

func poolServer(t *testing.T) (*server, *querygraph.Pool, string) {
	t.Helper()
	manifestA := buildManifest(t, 3, 2)
	manifestB := buildManifest(t, 9, 3)
	pool, err := querygraph.OpenPool(manifestA)
	if err != nil {
		t.Fatal(err)
	}
	return newServer(pool, 5*time.Second, nil), pool, manifestB
}

// TestContentTypeEnforced pins the 415 contract: every POST endpoint
// rejects a missing or non-JSON Content-Type before reading the body.
func TestContentTypeEnforced(t *testing.T) {
	s := testServer(t)
	q := serveClient(t).Queries()[0]
	body, err := json.Marshal(searchRequest{Query: q.Keywords, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/v1/search", "/v1/search/batch", "/v1/expand", "/v1/expand/batch"} {
		for _, ct := range []string{"", "text/plain", "application/x-www-form-urlencoded", "application/jsonx"} {
			req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
			if ct != "" {
				req.Header.Set("Content-Type", ct)
			}
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != http.StatusUnsupportedMediaType {
				t.Fatalf("%s with Content-Type %q: status = %d (%s), want 415",
					path, ct, rec.Code, rec.Body.String())
			}
			if code := errorCode(t, rec); code != "unsupported_media_type" {
				t.Errorf("%s: code = %q, want unsupported_media_type", path, code)
			}
		}
	}
	// Parameters on the media type are fine.
	req := httptest.NewRequest(http.MethodPost, "/v1/search", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json; charset=utf-8")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Errorf("charset parameter rejected: status = %d (%s)", rec.Code, rec.Body.String())
	}
}

// TestRequestBodyCap pins the 413 contract: a body over the 1 MiB cap is
// refused with request_too_large, not a generic decode error.
func TestRequestBodyCap(t *testing.T) {
	s := testServer(t)
	huge := bytes.Repeat([]byte("x"), maxRequestBody+1024)
	body := []byte(`{"query":"` + string(huge) + `"}`)
	req := httptest.NewRequest(http.MethodPost, "/v1/search", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d (%s), want 413", rec.Code, rec.Body.String())
	}
	if code := errorCode(t, rec); code != "request_too_large" {
		t.Errorf("code = %q, want request_too_large", code)
	}
	// A body exactly at the cap still decodes (and fails later on its own
	// merits, not on size).
	ok := bytes.Repeat([]byte("y"), 1024)
	req = httptest.NewRequest(http.MethodPost, "/v1/search", bytes.NewReader(
		[]byte(`{"query":"`+string(ok)+`","k":1}`)))
	req.Header.Set("Content-Type", "application/json")
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Errorf("in-cap body: status = %d (%s), want 200", rec.Code, rec.Body.String())
	}
}

// TestReloadRequiresPool: a single-snapshot server answers 409 to the
// admin reload endpoint.
func TestReloadRequiresPool(t *testing.T) {
	rec := do(t, testServer(t), http.MethodPost, "/v1/admin/reload", nil)
	if rec.Code != http.StatusConflict {
		t.Fatalf("status = %d (%s), want 409", rec.Code, rec.Body.String())
	}
	if code := errorCode(t, rec); code != "not_reloadable" {
		t.Errorf("code = %q, want not_reloadable", code)
	}
}

// TestPoolServerReloadAndStats drives the sharded server end to end:
// pool-backed healthz/stats expose shards and generation, an empty-body
// reload re-reads the manifest, a manifest-switching reload changes the
// served world, and a bad manifest is a 422 that leaves serving intact.
func TestPoolServerReloadAndStats(t *testing.T) {
	s, pool, manifestB := poolServer(t)

	rec := do(t, s, http.MethodGet, "/v1/healthz", nil)
	var hz healthzResponse
	decodeInto(t, rec, &hz)
	if hz.Shards != 2 || hz.Generation != 1 {
		t.Errorf("healthz = %+v, want 2 shards at generation 1", hz)
	}

	rec = do(t, s, http.MethodGet, "/v1/stats", nil)
	var st statsResponse
	decodeInto(t, rec, &st)
	if len(st.Shards) != 2 || st.Generation != 1 || st.Reloads != 0 {
		t.Fatalf("stats = %+v, want 2 shard rows at generation 1", st)
	}
	docs := 0
	for _, sh := range st.Shards {
		if sh.Postings <= 0 || sh.Terms <= 0 {
			t.Errorf("shard row %+v has empty index stats", sh)
		}
		docs += sh.Documents
	}
	if docs != st.Documents {
		t.Errorf("shard documents sum to %d, stats report %d", docs, st.Documents)
	}

	// Empty body: re-read the same manifest.
	rec = do(t, s, http.MethodPost, "/v1/admin/reload", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("reload status = %d (%s), want 200", rec.Code, rec.Body.String())
	}
	var rl reloadResponse
	decodeInto(t, rec, &rl)
	if rl.Status != "ok" || rl.Generation != 2 || rl.Shards != 2 {
		t.Errorf("reload = %+v, want generation 2 on 2 shards", rl)
	}

	// Switch manifests: the served world changes shape.
	rec = do(t, s, http.MethodPost, "/v1/admin/reload", reloadRequest{Manifest: manifestB})
	if rec.Code != http.StatusOK {
		t.Fatalf("switch status = %d (%s), want 200", rec.Code, rec.Body.String())
	}
	decodeInto(t, rec, &rl)
	if rl.Generation != 3 || rl.Shards != 3 {
		t.Errorf("switch reload = %+v, want generation 3 on 3 shards", rl)
	}
	if got := pool.NumShards(); got != 3 {
		t.Errorf("pool serves %d shards after switch, want 3", got)
	}

	// A bad manifest is rejected and serving continues on generation 3.
	rec = do(t, s, http.MethodPost, "/v1/admin/reload", reloadRequest{Manifest: "/nonexistent/manifest.json"})
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("bad manifest status = %d (%s), want 422", rec.Code, rec.Body.String())
	}
	if code := errorCode(t, rec); code != "invalid_manifest" {
		t.Errorf("code = %q, want invalid_manifest", code)
	}
	if got := pool.Generation(); got != 3 {
		t.Errorf("failed reload moved the generation to %d", got)
	}

	// Searches on the pool server keep the whole error model.
	rec = do(t, s, http.MethodPost, "/v1/search", searchRequest{Query: "#combine(", K: 1})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("pool search error status = %d, want 400", rec.Code)
	}
}
