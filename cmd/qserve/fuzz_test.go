package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	querygraph "github.com/querygraph/querygraph"
)

var (
	fuzzOnce   sync.Once
	fuzzServer *server
)

// fuzzTestServer builds one tiny world per process so each fuzz exec is
// cheap; the 5s request budget means a pathological body can at worst
// time out into a 408, never hang the target.
func fuzzTestServer() *server {
	fuzzOnce.Do(func() {
		cfg := querygraph.DefaultWorldConfig()
		cfg.Topics = 4
		cfg.ArticlesPerTopic = 8
		cfg.DocsPerTopic = 8
		cfg.Queries = 4
		cfg.NoiseVocab = 40
		w, err := querygraph.GenerateWorld(cfg)
		if err != nil {
			panic(err)
		}
		c, err := querygraph.Build(w)
		if err != nil {
			panic(err)
		}
		fuzzServer = newServer(c, 5*time.Second, querygraph.NewMetricsObserver())
	})
	return fuzzServer
}

// fuzzPaths are the POST endpoints whose JSON decoding the fuzzer drives.
var fuzzPaths = []string{
	"/v1/search",
	"/v1/search/batch",
	"/v1/expand",
	"/v1/expand/batch",
	"/v1/admin/reload",
}

// FuzzServerRequests throws arbitrary bodies at every POST endpoint: the
// server must never panic, must always answer JSON, must keep the error
// envelope on failures, and must stay inside the documented status set —
// no request body may produce a 500.
func FuzzServerRequests(f *testing.F) {
	// Seeds: one well-formed body per endpoint, every expansion knob, the
	// batch forms, and the classic malformed shapes.
	f.Add(0, []byte(`{"query":"ciazia","k":5}`))
	f.Add(0, []byte(`{"query":"#combine(#1(grand canal) venice)","k":15,"timeout_ms":100}`))
	f.Add(1, []byte(`{"queries":["a","b","#1(c d)"],"k":3,"workers":2}`))
	f.Add(2, []byte(`{"keywords":"ciazia","k":3,"max_features":5,"max_cycle_len":4,"radius":1,"max_neighborhood":50,"min_category_ratio":0.1,"max_category_ratio":0.6,"min_density":0.25,"two_cycles":true,"frequency_rank":true,"redirect_aliases":true}`))
	f.Add(2, []byte(`{"keywords":"x","min_category_ratio":0.9,"max_category_ratio":0.1}`))
	f.Add(2, []byte(`{"keywords":"x","max_cycle_len":99}`))
	f.Add(3, []byte(`{"keywords":["ciazia","ciazia","other"],"k":2,"workers":0}`))
	f.Add(3, []byte(`{"keywords":[],"k":-5}`))
	f.Add(4, []byte(`{"manifest":"some/path.json"}`))
	f.Add(4, []byte(``))
	f.Add(0, []byte(`{not json`))
	f.Add(0, []byte(`{"query":"a","unknown_field":1}`))
	f.Add(1, []byte(`{"queries":"not a list"}`))
	f.Add(2, []byte("{\"keywords\":\"\\u0000\\uffff\",\"radius\":-1}"))
	f.Add(0, []byte(`null`))
	f.Add(0, []byte(`[]`))

	allowed := map[int]bool{
		http.StatusOK:                    true,
		http.StatusBadRequest:            true,
		http.StatusRequestTimeout:        true,
		http.StatusConflict:              true, // reload on a snapshot backend
		http.StatusRequestEntityTooLarge: true,
		http.StatusUnsupportedMediaType:  true,
		http.StatusUnprocessableEntity:   true,
	}
	f.Fuzz(func(t *testing.T, which int, body []byte) {
		s := fuzzTestServer()
		idx := which % len(fuzzPaths)
		if idx < 0 {
			idx += len(fuzzPaths) // negation would overflow on MinInt
		}
		path := fuzzPaths[idx]
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)

		if !allowed[rec.Code] {
			t.Fatalf("%s %q: status %d outside the documented set (%s)",
				path, body, rec.Code, rec.Body.String())
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s: response Content-Type %q", path, ct)
		}
		if !json.Valid(rec.Body.Bytes()) {
			t.Fatalf("%s: response is not valid JSON: %q", path, rec.Body.String())
		}
		if rec.Code != http.StatusOK {
			var resp errorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil || resp.Error.Code == "" {
				t.Fatalf("%s: %d response without error envelope: %q", path, rec.Code, rec.Body.String())
			}
		}
	})
}
