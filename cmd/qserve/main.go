// Command qserve is the HTTP front end of the reproduction: it loads a
// binary serving snapshot (qgen -out world.qgs) at boot and serves search
// and cycle-based query expansion as a JSON API — the online half of the
// paper's offline-mine / online-serve split.
//
// Usage:
//
//	qserve -load world.qgs [-addr :8080] [-timeout 5s] [-cache N]
//
// Endpoints:
//
//	POST /v1/search        {"query": "...", "k": 15, "timeout_ms": 500}
//	POST /v1/search/batch  {"queries": ["...", ...], "k": 15, "workers": 0}
//	POST /v1/expand        {"keywords": "...", "k": 15, "max_features": 10, ...}
//	POST /v1/expand/batch  {"keywords": ["...", ...], "workers": 0}
//	GET  /v1/healthz
//	GET  /v1/stats
//
// Every request runs under a deadline — the -timeout default, lowered per
// request via timeout_ms — and timeouts surface as 408 JSON errors (499
// when the client itself went away). SIGINT/SIGTERM drain in-flight
// requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	querygraph "github.com/querygraph/querygraph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qserve: ")
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		load    = flag.String("load", "", "binary world snapshot to serve (qgen -out FILE.qgs); required")
		timeout = flag.Duration("timeout", 5*time.Second, "default per-request timeout (requests may lower it via timeout_ms)")
		cache   = flag.Int("cache", 0, "expansion cache capacity (0 = default 1024, negative disables)")
	)
	flag.Parse()
	if *load == "" {
		log.Fatal("-load FILE.qgs is required: build one with qgen -out world.qgs")
	}

	var opts []querygraph.Option
	if *cache != 0 {
		opts = append(opts, querygraph.WithExpandCache(*cache))
	}
	start := time.Now()
	client, err := querygraph.Open(*load, opts...)
	if err != nil {
		log.Fatal(err)
	}
	st := client.Stats()
	log.Printf("loaded %s in %v: %d articles, %d documents, %d benchmark queries",
		*load, time.Since(start).Round(time.Millisecond), st.Articles, st.Documents, st.BenchmarkQueries)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServer(client, *timeout),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serving on %s (per-request timeout %v)", *addr, *timeout)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("shutting down: draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Print("bye")
}
