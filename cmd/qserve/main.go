// Command qserve is the HTTP front end of the reproduction: it loads a
// binary serving snapshot (qgen -out world.qgs), a sharded snapshot
// manifest (qgen -shards N -out DIR), or a shard-fleet topology (shards
// served remotely by qshard) at boot and serves search and cycle-based
// query expansion as a JSON API — the online half of the paper's
// offline-mine / online-serve split.
//
// Usage:
//
//	qserve -load world.qgs           [-addr :8080] [-timeout 5s] [-cache N]
//	qserve -load DIR/manifest.json   (sharded pool: scatter-gather + hot reload)
//	qserve -load topology.json       (fan-out coordinator over qshard servers)
//
// Endpoints:
//
//	POST /v1/search        {"query": "...", "k": 15, "timeout_ms": 500}
//	POST /v1/search/batch  {"queries": ["...", ...], "k": 15, "workers": 0}
//	POST /v1/expand        {"keywords": "...", "k": 15, "max_features": 10, ...}
//	POST /v1/expand/batch  {"keywords": ["...", ...], "workers": 0}
//	POST /v1/admin/reload  {"manifest": "..."} (pool only; empty body = same path)
//	POST /v1/admin/ingest  {"documents": [{"id": "...", "name": "...", "texts": [...]}, ...]}
//	POST /v1/admin/compact {} (fold the delta into a fresh generation; body ignored)
//	GET  /v1/healthz
//	GET  /v1/stats
//	GET  /v1/metrics       (Prometheus text format: request/error/cache counters)
//
// Ingested documents join the in-memory delta segment and are searchable
// by the time the POST returns, merged with the base snapshot under
// combined collection statistics — rankings are bit-identical to a full
// rebuild over the merged corpus. -delta-cap bounds the segment (429
// delta_full past it) and -auto-compact N folds it into a fresh
// generation in the background once it holds N documents; compaction is
// also available on demand via POST /v1/admin/compact. A topology-backed
// coordinator is read-only: ingest answers 409.
//
// The serving state is opened through querygraph.OpenBackend, which
// sniffs the artifact kind, and driven through the querygraph.Backend
// interface — the same contract either runtime satisfies. A
// querygraph.MetricsObserver is attached at open time; its counters are
// what GET /v1/metrics serves.
//
// POST bodies must declare Content-Type: application/json and are capped
// at 1 MiB (413 beyond). Every request runs under a deadline — the
// -timeout default, lowered per request via timeout_ms — and timeouts
// surface as 408 JSON errors (499 when the client itself went away).
// When serving a sharded pool, SIGHUP hot-reloads the manifest with zero
// downtime (in-flight requests finish on the old generation), like
// POST /v1/admin/reload. SIGINT/SIGTERM drain in-flight requests, retire
// the SIGHUP reload loop, and Close the backend before exiting.
//
// When serving a topology, the backend is a querygraph.Remote fan-out
// coordinator: searches scatter to the qshard fleet and merge
// bit-identically with the in-process runtimes. Under the degrade policy
// a fleet that lost shards (but kept quorum) answers 200 with
// "partial": true; below quorum the coordinator's shard_unavailable
// errors surface as 503.
//
// -admin ADDR starts a second listener serving Go's net/http/pprof
// endpoints under /debug/pprof/ — CPU and heap profiles of the live
// server, which is how the zero-allocation /v1/search fast path was
// found and verified (see DESIGN.md, "Load testing & profiling") — and
// the flight recorder at GET /v1/debug/requests: the last -trace-ring
// completed request traces as span trees, ?min_ms=N keeping only the
// slow ones. Keep the admin address off the public network; it is
// deliberately a separate listener so the serving port never exposes
// profiling or traces.
//
// Every request is traced by default (-trace-sample 1; N traces 1 in N,
// 0 disables) and every response carries an X-Request-ID header — the
// client's own, when it sent a valid 16-hex-digit one, else freshly
// minted — which is the trace ID to look up in /v1/debug/requests.
// -access-log emits one structured slog line per traced request and
// -slowlog-ms N dumps the full span tree of any request at least N
// milliseconds slow. See DESIGN.md, "Tracing & the flight recorder".
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	querygraph "github.com/querygraph/querygraph"
	"github.com/querygraph/querygraph/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qserve: ")
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		admin   = flag.String("admin", "", "optional admin listen address serving net/http/pprof under /debug/pprof/ (disabled when empty; keep it private)")
		load    = flag.String("load", "", "serving state: a .qgs snapshot (qgen -out FILE.qgs), a shard manifest .json (qgen -shards N -out DIR), or a shard-fleet topology .json (remote qshard servers); required")
		timeout = flag.Duration("timeout", 5*time.Second, "default per-request timeout (requests may lower it via timeout_ms)")
		cache   = flag.Int("cache", 0, "expansion cache capacity (0 = default 1024, negative disables)")

		deltaCap    = flag.Int("delta-cap", 0, "live delta segment capacity in documents (0 = default 65536, negative = reject all ingest)")
		autoCompact = flag.Int("auto-compact", 0, "fold the delta into a fresh generation in the background once it holds this many documents (0 disables)")

		traceRing   = flag.Int("trace-ring", 256, "flight-recorder capacity: last N completed request traces served at /v1/debug/requests on the admin listener")
		traceSample = flag.Int("trace-sample", 1, "trace 1 in N requests (1 = every request, 0 disables tracing)")
		slowlogMS   = flag.Float64("slowlog-ms", 0, "log the full span tree of any request at least this many milliseconds slow (0 disables)")
		accessLog   = flag.Bool("access-log", false, "structured access log: one slog line per traced request")
	)
	flag.Parse()
	if *load == "" {
		log.Fatal("-load is required: a snapshot (qgen -out world.qgs), a shard manifest (qgen -shards 4 -out worlddir), or a shard-fleet topology json")
	}

	metrics := querygraph.NewMetricsObserver()
	opts := []querygraph.Option{querygraph.WithObserver(metrics)}
	if *cache != 0 {
		opts = append(opts, querygraph.WithExpandCache(*cache))
	}
	if *deltaCap != 0 {
		opts = append(opts, querygraph.WithDeltaCapacity(*deltaCap))
	}
	if *autoCompact != 0 {
		opts = append(opts, querygraph.WithAutoCompact(*autoCompact))
	}
	start := time.Now()
	be, err := querygraph.OpenBackend(*load, opts...)
	if err != nil {
		log.Fatal(err)
	}
	pool, _ := be.(*querygraph.Pool)
	remote, _ := be.(*querygraph.Remote)
	st := be.Stats()
	switch {
	case pool != nil:
		log.Printf("loaded %s in %v: %d shards, %d articles, %d documents, %d benchmark queries",
			*load, time.Since(start).Round(time.Millisecond), pool.NumShards(),
			st.Articles, st.Documents, st.BenchmarkQueries)
	case remote != nil:
		log.Printf("connected to %s in %v: %d remote shards, %d articles, %d documents, %d benchmark queries",
			*load, time.Since(start).Round(time.Millisecond), remote.NumShards(),
			st.Articles, st.Documents, st.BenchmarkQueries)
	default:
		log.Printf("loaded %s in %v: %d articles, %d documents, %d benchmark queries",
			*load, time.Since(start).Round(time.Millisecond), st.Articles, st.Documents, st.BenchmarkQueries)
	}

	recorder := trace.NewRecorder(*traceRing)
	hs := newServer(be, *timeout, metrics)
	hs.recorder = recorder
	hs.sample = *traceSample
	hs.slowlogMS = *slowlogMS
	hs.accessLog = *accessLog
	hs.logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	srv := newHTTPServer(*addr, hs, *timeout)

	var adminSrv *http.Server
	if *admin != "" {
		adminSrv = newAdminServer(*admin, recorder)
		go func() {
			if err := adminSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("admin server: %v", err)
			}
		}()
		log.Printf("admin endpoints (pprof) on %s", *admin)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	var (
		hup     chan os.Signal
		hupDone chan struct{}
	)
	if pool != nil {
		hup = make(chan os.Signal, 1)
		hupDone = make(chan struct{})
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			defer close(hupDone)
			reloadLoop(pool, hup)
		}()
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serving on %s (per-request timeout %v)", *addr, *timeout)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("shutting down: draining in-flight requests")
	// Retire the SIGHUP loop before draining: signal.Stop ends delivery,
	// closing the channel exits the loop, and waiting on hupDone guarantees
	// no reload is mid-flight when the backend is closed. The loop used to
	// simply outlive the drain, leaving a window where a SIGHUP could
	// reload a pool that shutdown was concurrently retiring.
	if pool != nil {
		signal.Stop(hup)
		close(hup)
		<-hupDone
	}
	if adminSrv != nil {
		_ = adminSrv.Close()
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := drainAndClose(shutdownCtx, srv, be); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Print("bye")
}

// newHTTPServer builds the serving http.Server with its full timeout
// set. The server used to set only ReadHeaderTimeout, which left two
// holes: a client could trickle a request body forever (no ReadTimeout),
// and an idle keep-alive connection was held open indefinitely (no
// IdleTimeout). ReadTimeout is sized above the per-request deadline so a
// legitimate slow request hits the 408 JSON error from its own deadline,
// never a silently killed connection.
func newHTTPServer(addr string, handler http.Handler, reqTimeout time.Duration) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: readHeaderTimeout,
		ReadTimeout:       reqTimeout + readTimeoutPad,
		IdleTimeout:       idleTimeout,
	}
}

// The timeout components are package vars only so the slow-client tests
// can scale them down to milliseconds; production always runs the values
// below. ReadTimeout's pad keeps it strictly above the request deadline.
var (
	readHeaderTimeout = 5 * time.Second
	readTimeoutPad    = 10 * time.Second
	idleTimeout       = 2 * time.Minute
)

// newAdminServer builds the private admin listener: Go's pprof handlers
// and the flight-recorder endpoint on an explicit mux (never the default
// mux, so nothing else leaks onto this port, and neither pprof nor
// request traces leak onto the serving port).
func newAdminServer(addr string, rec *trace.Recorder) *http.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /v1/debug/requests", trace.Handler(rec))
	return &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
}

// reloadLoop services SIGHUP hot reloads until its channel closes. Main
// retires it during shutdown — signal.Stop, close(hup), wait — so a
// reload can never race the drain or touch a closed pool.
func reloadLoop(pool *querygraph.Pool, hup <-chan os.Signal) {
	for range hup {
		t0 := time.Now()
		if err := pool.Reload(""); err != nil {
			log.Printf("SIGHUP reload failed (still serving generation %d): %v", pool.Generation(), err)
			continue
		}
		log.Printf("SIGHUP reload: now serving generation %d (%d shards, %d documents) after %v",
			pool.Generation(), pool.NumShards(), pool.Stats().Documents,
			time.Since(t0).Round(time.Millisecond))
	}
}

// drainAndClose is the shutdown sequence: drain in-flight HTTP requests
// (srv.Shutdown), then retire the backend so the generation/refcount
// state is released rather than abandoned — Pool.Close waits for any
// stragglers to release their generation, Client.Close drops the
// expansion cache. Backend.Close runs even when the drain times out, so
// a slow shutdown still retires the serving state.
func drainAndClose(ctx context.Context, srv *http.Server, be querygraph.Backend) error {
	shutdownErr := srv.Shutdown(ctx)
	if err := be.Close(); err != nil {
		return err
	}
	return shutdownErr
}
