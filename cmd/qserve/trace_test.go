package main

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/querygraph/querygraph/internal/trace"
)

// tracedServer builds a serving mux with the flight recorder attached
// and every request sampled in.
func tracedServer(t *testing.T) (*server, *trace.Recorder) {
	t.Helper()
	s := newServer(serveClient(t), 5*time.Second, nil)
	rec := trace.NewRecorder(16)
	s.recorder = rec
	return s, rec
}

// TestRequestIDEcho pins the X-Request-ID contract on every response,
// success and error alike: a valid client-supplied ID is echoed back
// verbatim, anything else is replaced by a freshly minted valid ID.
func TestRequestIDEcho(t *testing.T) {
	s := testServer(t)
	q := serveClient(t).Queries()[0].Keywords

	t.Run("minted when absent", func(t *testing.T) {
		rec := do(t, s, http.MethodPost, "/v1/search", searchRequest{Query: q, K: 5})
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d", rec.Code)
		}
		id := rec.Header().Get("X-Request-Id")
		if _, ok := trace.ParseID(id); !ok {
			t.Errorf("minted X-Request-ID %q is not a valid trace ID", id)
		}
	})

	t.Run("valid client ID echoed", func(t *testing.T) {
		for _, sent := range []string{"00000000deadbeef", "00000000DEADBEEF"} {
			req := httptest.NewRequest(http.MethodPost, "/v1/search",
				strings.NewReader(`{"query":"x","k":5}`))
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set("X-Request-Id", sent)
			w := httptest.NewRecorder()
			s.ServeHTTP(w, req)
			if got := w.Header().Get("X-Request-Id"); got != sent {
				t.Errorf("X-Request-ID = %q, want the client's %q echoed", got, sent)
			}
		}
	})

	t.Run("invalid client ID replaced", func(t *testing.T) {
		for _, sent := range []string{"not-an-id", "0000000000000000", "deadbeef", ""} {
			req := httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
			if sent != "" {
				req.Header.Set("X-Request-Id", sent)
			}
			w := httptest.NewRecorder()
			s.ServeHTTP(w, req)
			got := w.Header().Get("X-Request-Id")
			if got == sent {
				t.Errorf("invalid X-Request-ID %q echoed back instead of replaced", sent)
			}
			if _, ok := trace.ParseID(got); !ok {
				t.Errorf("replacement X-Request-ID %q is not a valid trace ID", got)
			}
		}
	})

	t.Run("present on errors", func(t *testing.T) {
		for _, c := range []struct {
			method, path string
			body         any
			wantStatus   int
		}{
			{http.MethodPost, "/v1/search", searchRequest{Query: "#combine(", K: 5}, http.StatusBadRequest},
			{http.MethodGet, "/v1/nosuch", nil, http.StatusNotFound},
			{http.MethodPost, "/v1/admin/reload", nil, http.StatusConflict},
		} {
			rec := do(t, s, c.method, c.path, c.body)
			if rec.Code != c.wantStatus {
				t.Fatalf("%s %s: status = %d, want %d", c.method, c.path, rec.Code, c.wantStatus)
			}
			if _, ok := trace.ParseID(rec.Header().Get("X-Request-Id")); !ok {
				t.Errorf("%s %s (%d): missing or invalid X-Request-ID %q",
					c.method, c.path, rec.Code, rec.Header().Get("X-Request-Id"))
			}
		}
	})
}

// TestFlightRecorderCapturesSearch drives a traced search end to end:
// the sealed record lands in the recorder under the client's trace ID
// with the parse and search phase spans, and trace.Handler serves (and
// min_ms-filters) it exactly as the admin endpoint does.
func TestFlightRecorderCapturesSearch(t *testing.T) {
	s, rec := tracedServer(t)
	q := serveClient(t).Queries()[0].Keywords

	const sent = "00000000deadbeef"
	req := httptest.NewRequest(http.MethodPost, "/v1/search",
		strings.NewReader(`{"query":`+string(mustJSON(t, q))+`,"k":5}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", sent)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}

	recs := rec.Snapshot(0)
	if len(recs) != 1 {
		t.Fatalf("recorder holds %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.TraceID != sent {
		t.Errorf("TraceID = %q, want %q", r.TraceID, sent)
	}
	if r.Op != "POST /v1/search" {
		t.Errorf("Op = %q, want POST /v1/search", r.Op)
	}
	if r.Err != "" || r.DurMS < 0 {
		t.Errorf("record = %+v, want no error and a non-negative duration", r)
	}
	phases := make(map[string]bool)
	for _, sp := range r.Spans {
		phases[sp.Phase] = true
	}
	if !phases["parse"] || !phases["search"] {
		t.Errorf("span phases = %v, want parse and search", phases)
	}

	// The admin endpoint serves the snapshot and honors min_ms.
	h := trace.Handler(rec)
	for _, c := range []struct {
		url  string
		want int
	}{
		{"/v1/debug/requests", 1},
		{"/v1/debug/requests?min_ms=0", 1},
		{"/v1/debug/requests?min_ms=100000", 0},
	} {
		dreq := httptest.NewRequest(http.MethodGet, c.url, nil)
		dw := httptest.NewRecorder()
		h(dw, dreq)
		if dw.Code != http.StatusOK {
			t.Fatalf("GET %s: status = %d", c.url, dw.Code)
		}
		var resp struct {
			Requests []*trace.Record `json:"requests"`
		}
		if err := json.Unmarshal(dw.Body.Bytes(), &resp); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", c.url, dw.Body.String(), err)
		}
		if len(resp.Requests) != c.want {
			t.Errorf("GET %s: %d records, want %d", c.url, len(resp.Requests), c.want)
		}
		if c.want == 1 && resp.Requests[0].TraceID != sent {
			t.Errorf("GET %s: TraceID = %q, want %q", c.url, resp.Requests[0].TraceID, sent)
		}
	}
	dreq := httptest.NewRequest(http.MethodGet, "/v1/debug/requests?min_ms=banana", nil)
	dw := httptest.NewRecorder()
	h(dw, dreq)
	if dw.Code != http.StatusBadRequest {
		t.Errorf("bad min_ms: status = %d, want 400", dw.Code)
	}
}

// TestTraceSampling pins the 1-in-N sampling contract: 0 disables
// tracing entirely, N records every Nth request — and sampled-out
// requests still get their X-Request-ID echo.
func TestTraceSampling(t *testing.T) {
	s, rec := tracedServer(t)
	s.sample = 0
	for i := 0; i < 4; i++ {
		w := do(t, s, http.MethodGet, "/v1/healthz", nil)
		if _, ok := trace.ParseID(w.Header().Get("X-Request-Id")); !ok {
			t.Fatal("sampled-out request lost its X-Request-ID echo")
		}
	}
	if n := rec.Len(); n != 0 {
		t.Fatalf("recorder holds %d records with sampling disabled, want 0", n)
	}

	s.sample = 2
	for i := 0; i < 4; i++ {
		do(t, s, http.MethodGet, "/v1/healthz", nil)
	}
	if n := rec.Len(); n != 2 {
		t.Errorf("recorder holds %d records after 4 requests at 1-in-2 sampling, want 2", n)
	}
}

// TestAccessAndSlowLogs pins the slog surface: -access-log emits one
// line per traced request carrying the trace ID, and -slowlog-ms dumps
// the span tree of anything at or over the threshold.
func TestAccessAndSlowLogs(t *testing.T) {
	s, _ := tracedServer(t)
	var buf bytes.Buffer
	s.logger = slog.New(slog.NewTextHandler(&buf, nil))
	s.accessLog = true
	s.slowlogMS = 0.000001 // everything is "slow"

	const sent = "00000000deadbeef"
	req := httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
	req.Header.Set("X-Request-Id", sent)
	s.ServeHTTP(httptest.NewRecorder(), req)

	out := buf.String()
	for _, want := range []string{
		"msg=request", "trace_id=" + sent, "path=/v1/healthz", "status=200",
		`msg="slow request"`, "spans=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q:\n%s", want, out)
		}
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
