package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	querygraph "github.com/querygraph/querygraph"
)

// faultBackend wraps a real backend and injects a fan-out error on the
// retrieval paths, the way a topology-backed *Remote surfaces one: an
// ErrPartialResult arrives ALONGSIDE the survivors' results, every other
// error replaces them. It lets the HTTP mapping be pinned without
// standing up a shard fleet.
type faultBackend struct {
	querygraph.Backend
	err error
}

func (f *faultBackend) inject(rs []querygraph.Result, err error) ([]querygraph.Result, error) {
	if f.err == nil || err != nil {
		return rs, err
	}
	if errors.Is(f.err, querygraph.ErrPartialResult) {
		return rs, f.err
	}
	return nil, f.err
}

func (f *faultBackend) Search(ctx context.Context, query string, k int) ([]querygraph.Result, error) {
	return f.inject(f.Backend.Search(ctx, query, k))
}

func (f *faultBackend) SearchInto(ctx context.Context, query string, k int, dst []querygraph.Result) ([]querygraph.Result, error) {
	return f.inject(f.Backend.SearchInto(ctx, query, k, dst))
}

func (f *faultBackend) SearchAll(ctx context.Context, queries []string, k int, opts querygraph.BatchOptions) ([][]querygraph.Result, error) {
	rss, err := f.Backend.SearchAll(ctx, queries, k, opts)
	if f.err == nil || err != nil {
		return rss, err
	}
	if errors.Is(f.err, querygraph.ErrPartialResult) {
		return rss, f.err
	}
	return nil, f.err
}

// TestSearchPartialResult pins the degraded-fleet contract end to end:
// ErrPartialResult from the backend turns into a 200 whose body carries
// the survivors' results plus "partial": true — never an error status,
// and never a silently complete-looking answer.
func TestSearchPartialResult(t *testing.T) {
	fb := &faultBackend{
		Backend: serveClient(t),
		err:     fmt.Errorf("%w: 1 of 2 shards dropped", querygraph.ErrPartialResult),
	}
	s := newServer(fb, 5*time.Second, nil)
	// A benchmark query is guaranteed to match documents, so an empty
	// Results below can only mean the handler dropped the survivors.
	query := serveClient(t).Queries()[0].Keywords

	rec := do(t, s, http.MethodPost, "/v1/search", searchRequest{Query: query, K: 5})
	if rec.Code != http.StatusOK {
		t.Fatalf("partial search status = %d (%s), want 200", rec.Code, rec.Body.String())
	}
	var resp searchResponse
	decodeInto(t, rec, &resp)
	if !resp.Partial {
		t.Error("partial search response did not set partial: true")
	}
	if len(resp.Results) == 0 {
		t.Error("partial search response dropped the survivors' results")
	}

	// A complete answer must not carry the flag — and must not even encode
	// the field (omitempty keeps the fast path's output shape).
	healthy := do(t, testServer(t), http.MethodPost, "/v1/search", searchRequest{Query: query, K: 5})
	if healthy.Code != http.StatusOK {
		t.Fatalf("healthy search status = %d", healthy.Code)
	}
	if body := healthy.Body.String(); strings.Contains(body, `"partial"`) {
		t.Errorf("healthy response encodes the partial field: %s", body)
	}

	batch := do(t, s, http.MethodPost, "/v1/search/batch",
		searchBatchRequest{Queries: []string{query, query}, K: 5})
	if batch.Code != http.StatusOK {
		t.Fatalf("partial batch status = %d (%s), want 200", batch.Code, batch.Body.String())
	}
	var bresp searchBatchResponse
	decodeInto(t, batch, &bresp)
	if !bresp.Partial || len(bresp.Results) != 2 {
		t.Errorf("partial batch = {partial: %v, %d rankings}, want both rankings flagged partial",
			bresp.Partial, len(bresp.Results))
	}
}

// TestSearchShardUnavailable503 pins the below-quorum mapping: a fleet
// that cannot answer is a service condition, so the coordinator's
// ErrShardUnavailable surfaces as 503 shard_unavailable, not a 500.
func TestSearchShardUnavailable503(t *testing.T) {
	fb := &faultBackend{
		Backend: serveClient(t),
		err:     fmt.Errorf("%w: shard 1 after 2 attempts: connection refused", querygraph.ErrShardUnavailable),
	}
	s := newServer(fb, 5*time.Second, nil)

	rec := do(t, s, http.MethodPost, "/v1/search", searchRequest{Query: "venice", K: 5})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%s), want 503", rec.Code, rec.Body.String())
	}
	if code := errorCode(t, rec); code != "shard_unavailable" {
		t.Errorf("error code = %q, want shard_unavailable", code)
	}
}
