package main

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"testing"
	"time"

	querygraph "github.com/querygraph/querygraph"
)

// TestParseSearchBodyParity feeds the same bodies to the hand-rolled
// parser and to the encoding/json configuration the generic handlers use
// (DisallowUnknownFields, one value per Decode) and demands they agree on
// accept/reject and on every decoded field. The fast path is only
// allowed to be faster, not different.
func TestParseSearchBodyParity(t *testing.T) {
	cases := []string{
		`{}`,
		`null`,
		`  null  `,
		`{"query":"graph databases","k":15,"timeout_ms":250}`,
		`{"timeout_ms":250,"k":15,"query":"order independent"}`,
		`{"query":"dup","query":"last wins"}`,
		`{"query":null,"k":null,"timeout_ms":null}`,
		`{"query":"esc \" \\ \/ \b \f \n \r \t"}`,
		`{"query":"\u0041\u00e9\u4e2d"}`,
		`{"query":"\ud83d\ude00 pair"}`,
		`{"query":"lone \ud800 high"}`,
		`{"query":"low first \udc00\ud800"}`,
		`{"k":-7}`,
		`{"k":0}`,
		`{"timeout_ms":0}`,
		`{"k":9223372036854775807}`,
		"\t {\n\"query\" : \"ws\" ,\n\"k\" : 2 }",
		`{"query":"trailing"} garbage after`,
		`{"query":"trailing"}{"k":1}`,
		// rejects
		``,
		`   `,
		`[]`,
		`"just a string"`,
		`42`,
		`true`,
		`{`,
		`{"query"}`,
		`{"query":}`,
		`{"query":"unterminated`,
		`{"query":"bad \x escape"}`,
		`{"query":"trunc \u12"}`,
		`{"unknown_field":1}`,
		`{"query":"a","extra":true}`,
		`{"k":1.5}`,
		`{"k":1e3}`,
		`{"k":01}`,
		`{"k":"5"}`,
		`{"k":9223372036854775808}`,
		`{"query":7}`,
		`{"query":"a",}`,
		`{"query":"a" "k":1}`,
		`{"timeout_ms":true}`,
		"{\"query\":\"raw ctrl \x01\"}",
	}
	for _, body := range cases {
		var want searchRequest
		dec := json.NewDecoder(bytes.NewReader([]byte(body)))
		dec.DisallowUnknownFields()
		wantErr := dec.Decode(&want)

		sc := getScratch()
		var got fastSearchReq
		gotErr := parseSearchBody([]byte(body), sc, &got)
		if (gotErr != nil) != (wantErr != nil) {
			putScratch(sc)
			t.Errorf("%q: fast err = %v, encoding/json err = %v", body, gotErr, wantErr)
			continue
		}
		if wantErr == nil {
			if string(got.query) != want.Query || int(got.k) != want.K || got.timeoutMS != want.TimeoutMS {
				t.Errorf("%q: fast = (%q, %d, %d), encoding/json = (%q, %d, %d)",
					body, got.query, got.k, got.timeoutMS, want.Query, want.K, want.TimeoutMS)
			}
		}
		putScratch(sc)
	}
}

// TestAppendSearchResponseParity renders rankings through the hand-rolled
// encoder and through the json.Encoder the handler used to call, byte for
// byte — including the float corner cases that pick encoding/json's 'e'
// form and its trimmed exponent.
func TestAppendSearchResponseParity(t *testing.T) {
	cases := [][]querygraph.Result{
		nil,
		{{Doc: 0, Score: 0}},
		{{Doc: 1, Score: -3.514223422}, {Doc: 2147483647, Score: 0.25}},
		{{Doc: 7, Score: 1e-7}, {Doc: 8, Score: -9.5e-7}},
		{{Doc: 9, Score: 3e21}, {Doc: 10, Score: -1e21}},
		{{Doc: 11, Score: 1e-6}, {Doc: 12, Score: 0.999999999999}},
		{{Doc: 13, Score: math.SmallestNonzeroFloat64}, {Doc: 14, Score: math.MaxFloat64}},
		{{Doc: 15, Score: -0.0000033333}},
	}
	for _, rs := range cases {
		took := 1234567 * time.Nanosecond
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(searchResponse{
			Results: resultsJSON(rs),
			TookMS:  tookMS(took),
		}); err != nil {
			t.Fatal(err)
		}
		got := appendSearchResponse(nil, rs, took)
		if string(got) != buf.String() {
			t.Errorf("results %v:\nfast:          %q\nencoding/json: %q", rs, got, buf.String())
		}
	}
}

// TestDeadlineCtxSemantics pins the pooled context's contract: the
// earliest deadline wins, Err answers from the clock without a timer, and
// a canceled parent takes precedence over an expired deadline.
func TestDeadlineCtxSemantics(t *testing.T) {
	var d deadlineCtx
	d.reset(t.Context(), time.Hour)
	if err := d.Err(); err != nil {
		t.Fatalf("fresh deadlineCtx.Err() = %v", err)
	}
	if dl, ok := d.Deadline(); !ok || time.Until(dl) > time.Hour {
		t.Fatalf("Deadline() = %v, %v", dl, ok)
	}

	d.reset(t.Context(), -time.Nanosecond)
	if err := d.Err(); err == nil || err.Error() != "context deadline exceeded" {
		t.Fatalf("expired deadlineCtx.Err() = %v, want deadline exceeded", err)
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	d.reset(canceled, -time.Nanosecond)
	if err := d.Err(); err == nil || err.Error() != "context canceled" {
		t.Fatalf("canceled-parent Err() = %v, want canceled (parent outranks the deadline)", err)
	}
}

// TestScratchInternBounded pins the intern map's two bounds: oversized
// queries are never interned, and a full map is cleared instead of
// growing without limit.
func TestScratchInternBounded(t *testing.T) {
	sc := getScratch()
	defer putScratch(sc)
	clear(sc.intern)

	huge := bytes.Repeat([]byte("q"), internMax+1)
	_ = sc.internQuery(huge)
	if len(sc.intern) != 0 {
		t.Fatalf("oversized query was interned (%d entries)", len(sc.intern))
	}

	var b [8]byte
	for i := 0; i < internMax; i++ {
		n := copy(b[:], "q")
		for v, j := i, n; j < len(b); v, j = v/10, j+1 {
			b[j] = byte('0' + v%10)
		}
		_ = sc.internQuery(b[:])
	}
	if len(sc.intern) != internMax {
		t.Fatalf("intern entries = %d, want %d", len(sc.intern), internMax)
	}
	_ = sc.internQuery([]byte("overflow"))
	if len(sc.intern) != 1 {
		t.Fatalf("intern entries after overflow = %d, want 1 (cleared then re-added)", len(sc.intern))
	}
}
