package main

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	querygraph "github.com/querygraph/querygraph"
	"github.com/querygraph/querygraph/internal/trace"
)

// TestHTTPServerTimeoutsConfigured pins the production timeout shape: the
// server used to set only ReadHeaderTimeout, leaving slow-body and idle
// keep-alive connections unbounded.
func TestHTTPServerTimeoutsConfigured(t *testing.T) {
	reqTimeout := 5 * time.Second
	srv := newHTTPServer(":0", nil, reqTimeout)
	if srv.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout unset")
	}
	if srv.ReadTimeout <= reqTimeout {
		t.Errorf("ReadTimeout %v not above the per-request deadline %v: a legitimate slow request would be killed at the TCP level instead of getting its 408", srv.ReadTimeout, reqTimeout)
	}
	if srv.IdleTimeout <= 0 {
		t.Error("IdleTimeout unset: idle keep-alive connections would be held forever")
	}
}

// scaleTimeouts shrinks the server's timeout components to milliseconds
// for the behavioral tests below, restoring them afterwards.
func scaleTimeouts(t *testing.T) {
	t.Helper()
	oh, op, oi := readHeaderTimeout, readTimeoutPad, idleTimeout
	readHeaderTimeout, readTimeoutPad, idleTimeout = 150*time.Millisecond, 200*time.Millisecond, 250*time.Millisecond
	t.Cleanup(func() { readHeaderTimeout, readTimeoutPad, idleTimeout = oh, op, oi })
}

// startHardenedServer serves the shared test client through newHTTPServer
// on a real socket and returns its address.
func startHardenedServer(t *testing.T, reqTimeout time.Duration) string {
	t.Helper()
	srv := newHTTPServer("127.0.0.1:0", newServer(serveClient(t), reqTimeout, nil), reqTimeout)
	ln, err := net.Listen("tcp", srv.Addr)
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return ln.Addr().String()
}

// readUntilClosed drains conn until the server closes it (true) or the
// budget elapses with the connection still open (false).
func readUntilClosed(t *testing.T, conn net.Conn, budget time.Duration) bool {
	t.Helper()
	_ = conn.SetReadDeadline(time.Now().Add(budget))
	buf := make([]byte, 4096)
	for {
		if _, err := conn.Read(buf); err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				return false // our own deadline: the server never hung up
			}
			return true // EOF or reset: the server closed the connection
		}
	}
}

// TestSlowClientDisconnected pins the behavior the new timeouts buy: a
// client that stalls mid-headers, stalls mid-body, or parks an idle
// keep-alive connection is disconnected instead of pinning a connection
// (and its handler goroutine) forever.
func TestSlowClientDisconnected(t *testing.T) {
	scaleTimeouts(t)
	addr := startHardenedServer(t, 50*time.Millisecond)
	dial := func(t *testing.T) net.Conn {
		t.Helper()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = conn.Close() })
		return conn
	}

	t.Run("stalled headers", func(t *testing.T) {
		conn := dial(t)
		fmt.Fprintf(conn, "POST /v1/search HTTP/1.1\r\n") // never finish the headers
		if !readUntilClosed(t, conn, 3*time.Second) {
			t.Fatal("server kept a stalled-header connection open past ReadHeaderTimeout")
		}
	})

	t.Run("stalled body", func(t *testing.T) {
		conn := dial(t)
		fmt.Fprintf(conn, "POST /v1/search HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\nContent-Length: 64\r\n\r\n{\"query\":")
		if !readUntilClosed(t, conn, 3*time.Second) {
			t.Fatal("server kept a stalled-body connection open past ReadTimeout")
		}
	})

	t.Run("idle keep-alive", func(t *testing.T) {
		conn := dial(t)
		fmt.Fprintf(conn, "GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n")
		// The response arrives, then the connection sits idle; the server
		// must hang up at IdleTimeout.
		if !readUntilClosed(t, conn, 3*time.Second) {
			t.Fatal("server held an idle keep-alive connection open past IdleTimeout")
		}
	})
}

// TestNegativeTimeoutRejected pins the invalid_timeout contract on every
// endpoint that reads timeout_ms: a negative value used to slip through
// the "<= 0 means inherit" clamp and silently behave like an absent
// field.
func TestNegativeTimeoutRejected(t *testing.T) {
	s := testServer(t)
	q := serveClient(t).Queries()[0].Keywords
	for _, tc := range []struct {
		path string
		body any
	}{
		{"/v1/search", searchRequest{Query: q, TimeoutMS: -1}},
		{"/v1/search/batch", searchBatchRequest{Queries: []string{q}, TimeoutMS: -5}},
		{"/v1/expand", expandRequest{Keywords: q, TimeoutMS: -1}},
		{"/v1/expand/batch", expandBatchRequest{Keywords: []string{q}, TimeoutMS: -1000}},
	} {
		rec := do(t, s, http.MethodPost, tc.path, tc.body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d (%s), want 400", tc.path, rec.Code, rec.Body.String())
			continue
		}
		if code := errorCode(t, rec); code != "invalid_timeout" {
			t.Errorf("%s: code = %q, want invalid_timeout", tc.path, code)
		}
	}
}

// TestReloadLoopDrains pins the shutdown contract of the SIGHUP loop: it
// services reloads while its channel is open and exits promptly when main
// retires it (signal.Stop + close). The loop used to run forever,
// leaving a window where a late SIGHUP could reload a pool that shutdown
// was concurrently closing.
func TestReloadLoopDrains(t *testing.T) {
	_, pool, _ := poolServer(t)
	defer pool.Close()
	gen := pool.Generation()

	hup := make(chan os.Signal)
	done := make(chan struct{})
	go func() {
		reloadLoop(pool, hup)
		close(done)
	}()

	hup <- syscall.SIGHUP
	deadline := time.After(10 * time.Second)
	for pool.Generation() == gen {
		select {
		case <-deadline:
			t.Fatal("SIGHUP reload never advanced the pool generation")
		default:
			time.Sleep(time.Millisecond)
		}
	}

	close(hup)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("reload loop did not exit after its channel closed")
	}
}

// TestAdminServerServesPprof pins the -admin surface: the profiling
// endpoints and the flight recorder answer on the admin mux, and the
// serving mux exposes none of them.
func TestAdminServerServesPprof(t *testing.T) {
	srv := newAdminServer("127.0.0.1:0", trace.NewRecorder(8))
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/heap?debug=1", "/debug/pprof/symbol", "/v1/debug/requests", "/v1/debug/requests?min_ms=5"} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		srv.Handler.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Errorf("admin %s: status = %d, want 200", path, rec.Code)
		}
	}
	s := testServer(t)
	for _, path := range []string{"/debug/pprof/", "/v1/debug/requests"} {
		if rec := do(t, s, http.MethodGet, path, nil); rec.Code != http.StatusNotFound {
			t.Errorf("serving mux exposes %s: status = %d, want 404", path, rec.Code)
		}
	}
}

// TestConcurrentMetricsScrapesUnderLoad drives live search traffic,
// /v1/metrics scrapes and manifest hot reloads through one pool-backed
// server at once; under -race this pins that the metrics observer, the
// fast path's pooled scratch and the pool's generation swap are safe
// against each other.
func TestConcurrentMetricsScrapesUnderLoad(t *testing.T) {
	manifestA := buildManifest(t, 3, 2)
	manifestB := buildManifest(t, 9, 3)
	metrics := querygraph.NewMetricsObserver()
	pool, err := querygraph.OpenPool(manifestA, querygraph.WithObserver(metrics))
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	s := newServer(pool, 5*time.Second, metrics)
	queries := pool.Queries()
	if len(queries) == 0 {
		t.Fatal("pool has no benchmark queries")
	}

	var wg sync.WaitGroup
	for worker := 0; worker < 4; worker++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				q := queries[(worker+i)%len(queries)].Keywords
				rec := do(t, s, http.MethodPost, "/v1/search", searchRequest{Query: q, K: 5})
				if rec.Code != http.StatusOK {
					t.Errorf("search under load: status = %d (%s)", rec.Code, rec.Body.String())
					return
				}
			}
		}(worker)
	}
	for scraper := 0; scraper < 2; scraper++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 75; i++ {
				rec := do(t, s, http.MethodGet, "/v1/metrics", nil)
				if rec.Code != http.StatusOK {
					t.Errorf("metrics scrape: status = %d", rec.Code)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			manifest := manifestA
			if i%2 == 0 {
				manifest = manifestB
			}
			rec := do(t, s, http.MethodPost, "/v1/admin/reload", reloadRequest{Manifest: manifest})
			if rec.Code != http.StatusOK {
				t.Errorf("reload under load: status = %d (%s)", rec.Code, rec.Body.String())
				return
			}
		}
	}()
	wg.Wait()

	var text string
	if rec := do(t, s, http.MethodGet, "/v1/metrics", nil); rec.Code == http.StatusOK {
		text = rec.Body.String()
	}
	if want := `querygraph_requests_total{op="search"} 600`; !strings.Contains(text, want) {
		t.Errorf("metrics after load missing %q:\n%s", want, text)
	}
}
