package main

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	querygraph "github.com/querygraph/querygraph"
)

// liveServer builds a server over its own private client (never the
// shared fixture: ingest mutates the backend) with the given options.
func liveServer(t *testing.T, opts ...querygraph.Option) *server {
	t.Helper()
	cfg := querygraph.DefaultWorldConfig()
	cfg.Topics = 4
	cfg.ArticlesPerTopic = 8
	cfg.DocsPerTopic = 10
	cfg.Queries = 4
	cfg.NoiseVocab = 50
	w, err := querygraph.GenerateWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := querygraph.Build(w, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return newServer(c, 5*time.Second, nil)
}

// liveDoc is a minimal ingestable record carrying one distinctive term
// through the Section 2.1 extraction (the English description).
func liveDoc(id, term string) ingestDoc {
	return ingestDoc{
		ID:   id,
		Name: term + ".jpg",
		Texts: []ingestText{{
			Lang:        "en",
			Description: "a " + term + " photographed in the wild",
		}},
	}
}

func searchDocs(t *testing.T, s *server, query string) []resultJSON {
	t.Helper()
	rec := do(t, s, http.MethodPost, "/v1/search", searchRequest{Query: query, K: 10})
	if rec.Code != http.StatusOK {
		t.Fatalf("search status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp searchResponse
	decodeInto(t, rec, &resp)
	return resp.Results
}

// TestIngestSearchableThenCompact is the acceptance path over HTTP: a
// POSTed document is returned by /v1/search before any compaction, and
// after /v1/admin/compact the generation advances while the results stay
// identical.
func TestIngestSearchableThenCompact(t *testing.T) {
	s := liveServer(t)
	base := s.backend.Stats().Documents

	rec := do(t, s, http.MethodPost, "/v1/admin/ingest", ingestRequest{
		Documents: []ingestDoc{liveDoc("live-1", "zyzzogeton")},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest status = %d: %s", rec.Code, rec.Body.String())
	}
	var ing ingestResponse
	decodeInto(t, rec, &ing)
	if ing.Ingested != 1 || ing.DeltaDocs != 1 || ing.DeltaBytes <= 0 {
		t.Fatalf("ingest response = %+v, want 1 document in the delta", ing)
	}

	before := searchDocs(t, s, "zyzzogeton")
	if len(before) == 0 || before[0].Doc != int32(base) {
		t.Fatalf("pre-compaction search = %+v, want the ingested doc at global id %d", before, base)
	}

	rec = do(t, s, http.MethodPost, "/v1/admin/compact", struct{}{})
	if rec.Code != http.StatusOK {
		t.Fatalf("compact status = %d: %s", rec.Code, rec.Body.String())
	}
	var cmp compactResponse
	decodeInto(t, rec, &cmp)
	if cmp.Compacted != 1 || cmp.Generation != ing.Generation+1 {
		t.Fatalf("compact response = %+v, want 1 compacted and generation %d", cmp, ing.Generation+1)
	}
	if got := s.backend.Stats().Documents; got != base+1 {
		t.Fatalf("post-compaction documents = %d, want %d", got, base+1)
	}

	after := searchDocs(t, s, "zyzzogeton")
	if len(after) != len(before) {
		t.Fatalf("result count changed across compaction: %d != %d", len(after), len(before))
	}
	for i := range after {
		if after[i] != before[i] {
			t.Fatalf("result %d changed across compaction: %+v != %+v", i, after[i], before[i])
		}
	}
}

func TestIngestDuplicateExternalID(t *testing.T) {
	s := liveServer(t)
	if rec := do(t, s, http.MethodPost, "/v1/admin/ingest", ingestRequest{
		Documents: []ingestDoc{liveDoc("dup-1", "first")},
	}); rec.Code != http.StatusOK {
		t.Fatalf("first ingest status = %d", rec.Code)
	}
	rec := do(t, s, http.MethodPost, "/v1/admin/ingest", ingestRequest{
		Documents: []ingestDoc{liveDoc("dup-1", "second")},
	})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("duplicate ingest status = %d, want 400: %s", rec.Code, rec.Body.String())
	}
	if code := errorCode(t, rec); code != "invalid_options" {
		t.Errorf("duplicate ingest code = %q, want invalid_options", code)
	}
	// The batch was atomic: nothing from the rejected batch is visible.
	if got := searchDocs(t, s, "second"); len(got) != 0 {
		t.Errorf("rejected batch is searchable: %+v", got)
	}
}

func TestIngestDeltaFull(t *testing.T) {
	s := liveServer(t, querygraph.WithDeltaCapacity(1))
	if rec := do(t, s, http.MethodPost, "/v1/admin/ingest", ingestRequest{
		Documents: []ingestDoc{liveDoc("", "filler")},
	}); rec.Code != http.StatusOK {
		t.Fatalf("first ingest status = %d", rec.Code)
	}
	rec := do(t, s, http.MethodPost, "/v1/admin/ingest", ingestRequest{
		Documents: []ingestDoc{liveDoc("", "overflow")},
	})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow ingest status = %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if code := errorCode(t, rec); code != "delta_full" {
		t.Errorf("overflow ingest code = %q, want delta_full", code)
	}
	// Compaction frees the segment; the retry then lands.
	if rec := do(t, s, http.MethodPost, "/v1/admin/compact", struct{}{}); rec.Code != http.StatusOK {
		t.Fatalf("compact status = %d", rec.Code)
	}
	if rec := do(t, s, http.MethodPost, "/v1/admin/ingest", ingestRequest{
		Documents: []ingestDoc{liveDoc("", "overflow")},
	}); rec.Code != http.StatusOK {
		t.Fatalf("post-compaction ingest status = %d: %s", rec.Code, rec.Body.String())
	}
}

func TestCompactEmptyDeltaNoop(t *testing.T) {
	s := liveServer(t)
	rec := do(t, s, http.MethodPost, "/v1/admin/compact", struct{}{})
	if rec.Code != http.StatusOK {
		t.Fatalf("compact status = %d: %s", rec.Code, rec.Body.String())
	}
	var cmp compactResponse
	decodeInto(t, rec, &cmp)
	if cmp.Compacted != 0 || cmp.Generation != 1 {
		t.Fatalf("empty compact = %+v, want a no-op on generation 1", cmp)
	}
}

func TestStatsAndHealthzReportDelta(t *testing.T) {
	s := liveServer(t)
	if rec := do(t, s, http.MethodPost, "/v1/admin/ingest", ingestRequest{
		Documents: []ingestDoc{liveDoc("", "pending")},
	}); rec.Code != http.StatusOK {
		t.Fatalf("ingest status = %d", rec.Code)
	}

	var st statsResponse
	decodeInto(t, do(t, s, http.MethodGet, "/v1/stats", nil), &st)
	if st.Delta.Documents != 1 || st.Delta.PendingBytes <= 0 || st.Delta.Generation != 1 {
		t.Errorf("stats delta = %+v, want 1 pending document on generation 1", st.Delta)
	}

	var hz healthzResponse
	decodeInto(t, do(t, s, http.MethodGet, "/v1/healthz", nil), &hz)
	if hz.DeltaDocuments != 1 || hz.PendingBytes <= 0 {
		t.Errorf("healthz delta = %d docs / %d bytes, want the pending document", hz.DeltaDocuments, hz.PendingBytes)
	}

	if rec := do(t, s, http.MethodPost, "/v1/admin/compact", struct{}{}); rec.Code != http.StatusOK {
		t.Fatalf("compact status = %d", rec.Code)
	}
	decodeInto(t, do(t, s, http.MethodGet, "/v1/stats", nil), &st)
	if st.Delta.Documents != 0 || st.Delta.Generation != 2 || st.Delta.Compactions != 1 {
		t.Errorf("post-compaction stats delta = %+v, want an empty delta on generation 2", st.Delta)
	}
}

// TestWriteErrorLiveClasses pins the HTTP mapping of the live-index
// sentinels: a read-only backend is a 409 conflict, a full delta a 429.
func TestWriteErrorLiveClasses(t *testing.T) {
	s := liveServer(t)
	cases := []struct {
		err    error
		status int
		code   string
	}{
		{querygraph.ErrReadOnly, http.StatusConflict, "read_only"},
		{querygraph.ErrDeltaFull, http.StatusTooManyRequests, "delta_full"},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		s.writeError(rec, tc.err)
		if rec.Code != tc.status {
			t.Errorf("writeError(%v) status = %d, want %d", tc.err, rec.Code, tc.status)
		}
		if code := errorCode(t, rec); code != tc.code {
			t.Errorf("writeError(%v) code = %q, want %q", tc.err, code, tc.code)
		}
	}
}
