package main

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"
	"unicode/utf16"
	"unicode/utf8"

	querygraph "github.com/querygraph/querygraph"
)

// The /v1/search fast path: profiling qserve under qload showed the
// steady-state request loop dominated by per-request garbage — the JSON
// decoder and its query string, the context.WithTimeout timer, the
// resultsJSON translation slice and the JSON encoder — all of it
// allocated per call and all of it immediately dead. This file removes
// every one of those allocations: request bodies are read into pooled
// buffers, the three-field search request is parsed by hand, the query
// string is interned per scratch, the deadline is a pooled lazy-checked
// context instead of a timer, the ranking lands in a pooled dst via
// Backend.SearchInto, and the response is appended to a pooled byte
// buffer. At steady state (repeated query shapes, warm pools) the handler
// performs zero heap allocations per request — pinned by
// TestSearchHandlerZeroAlloc.

// scratch is the pooled per-request working state of the fast path. One
// scratch serves one request at a time; the pool bounds live scratches by
// the number of concurrent requests.
type scratch struct {
	body    []byte              // raw request body
	qbuf    []byte              // unescaped query text (aliased by req.query)
	results []querygraph.Result // ranking storage handed to SearchInto
	out     []byte              // response encode buffer
	intern  map[string]string   // query-bytes → durable string, bounded
	dctx    deadlineCtx         // pooled lazy-deadline context
}

var scratchPool = sync.Pool{New: func() any {
	return &scratch{
		body:   make([]byte, 0, 4096),
		qbuf:   make([]byte, 0, 256),
		out:    make([]byte, 0, 4096),
		intern: make(map[string]string),
	}
}}

func getScratch() *scratch { return scratchPool.Get().(*scratch) }

func putScratch(sc *scratch) {
	sc.dctx.parent = nil // do not pin the request context across reuse
	scratchPool.Put(sc)
}

// internMax bounds both the length of interned query strings and the
// entry count of a scratch's intern map: queries longer than this are
// materialized per request (one allocation, pathological shapes only),
// and a full map is cleared rather than grown without bound.
const internMax = 1024

// internQuery returns a durable string for the query bytes without
// allocating on repeat: the map lookup with a string-converted []byte key
// compiles to a no-allocation probe, so only the first sighting of a
// query (or a post-clear re-sighting) pays for the string.
func (sc *scratch) internQuery(b []byte) string {
	if len(b) > internMax {
		return string(b)
	}
	if s, ok := sc.intern[string(b)]; ok {
		return s
	}
	if len(sc.intern) >= internMax {
		clear(sc.intern)
	}
	s := string(b)
	sc.intern[s] = s
	return s
}

// deadlineCtx imposes a lazily-checked deadline over a parent context
// without allocating a timer: Err answers from the clock, Deadline
// reports the earlier of the two deadlines, and Done deliberately returns
// the parent's channel — the deadline itself never fires Done. That is
// sound for the single-search path, whose only context use is polling
// Err() before work (Client.Search/SearchInto never select on Done); the
// batch and expansion paths, which do select, keep the timer-backed
// context.WithTimeout plumbing.
type deadlineCtx struct {
	parent   context.Context
	deadline time.Time
}

func (d *deadlineCtx) Deadline() (time.Time, bool) {
	if pd, ok := d.parent.Deadline(); ok && pd.Before(d.deadline) {
		return pd, true
	}
	return d.deadline, true
}

func (d *deadlineCtx) Done() <-chan struct{} { return d.parent.Done() }

func (d *deadlineCtx) Err() error {
	if err := d.parent.Err(); err != nil {
		return err
	}
	if !time.Now().Before(d.deadline) {
		return context.DeadlineExceeded
	}
	return nil
}

func (d *deadlineCtx) Value(key any) any { return d.parent.Value(key) }

// reset arms the pooled context for one request.
func (d *deadlineCtx) reset(parent context.Context, timeout time.Duration) {
	d.parent = parent
	d.deadline = time.Now().Add(timeout)
}

// --- request body ------------------------------------------------------

// readBody reads the whole request body into the scratch's pooled buffer,
// enforcing maxRequestBody exactly like the MaxBytesReader path of the
// generic handlers (413 with the same error envelope). On false, the
// error response has been written.
func (s *server) readBody(w http.ResponseWriter, r *http.Request, sc *scratch) ([]byte, bool) {
	buf := sc.body[:0]
	for {
		if len(buf) > maxRequestBody {
			sc.body = buf
			s.writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{Error: errorBody{
				Code:    "request_too_large",
				Message: fmt.Sprintf("request body exceeds %d bytes", maxRequestBody),
			}})
			return nil, false
		}
		if len(buf) == cap(buf) {
			next := make([]byte, len(buf), min(max(2*cap(buf), 4096), maxRequestBody+1))
			copy(next, buf)
			buf = next
		}
		n, err := r.Body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			sc.body = buf
			s.writeJSON(w, http.StatusBadRequest, errorResponse{Error: errorBody{
				Code:    "invalid_body",
				Message: "bad request body: " + err.Error(),
			}})
			return nil, false
		}
	}
	sc.body = buf
	if len(buf) > maxRequestBody {
		s.writeJSON(w, http.StatusRequestEntityTooLarge, errorResponse{Error: errorBody{
			Code:    "request_too_large",
			Message: fmt.Sprintf("request body exceeds %d bytes", maxRequestBody),
		}})
		return nil, false
	}
	return buf, true
}

// requireJSONFast accepts the overwhelmingly common exact Content-Type
// without running the allocating media-type parser; anything else goes
// through the full requireJSON check.
func (s *server) requireJSONFast(w http.ResponseWriter, r *http.Request) bool {
	if r.Header.Get("Content-Type") == "application/json" {
		return true
	}
	return s.requireJSON(w, r)
}

// --- hand-rolled search request parser ---------------------------------

// fastSearchReq is the decoded wire searchRequest; query aliases the
// scratch's qbuf and must be interned (or copied) before it can outlive
// the request.
type fastSearchReq struct {
	query     []byte
	k         int64
	timeoutMS int64
}

// parseSearchBody decodes {"query": string, "k": int, "timeout_ms": int}
// with encoding/json's observable semantics for this shape: leading
// "null" is a no-op, unknown fields are rejected (the generic handlers
// run DisallowUnknownFields), duplicate fields are last-wins, string
// escapes (including surrogate pairs) are honored, numbers must be JSON
// integers, field values may be null, and trailing bytes after the value
// are ignored (json.Decoder.Decode reads one value). It allocates nothing
// on well-formed input.
func parseSearchBody(body []byte, sc *scratch, req *fastSearchReq) error {
	p := jsonParser{b: body}
	p.skipWS()
	if p.lit("null") {
		return nil
	}
	if !p.byte('{') {
		return p.errAt("expected a JSON object")
	}
	for field := 0; ; field++ {
		p.skipWS()
		if p.byte('}') {
			return nil
		}
		if field > 0 {
			if !p.byte(',') {
				return p.errAt("expected ',' or '}' in object")
			}
			p.skipWS()
		}
		key, err := p.rawKey()
		if err != nil {
			return err
		}
		p.skipWS()
		if !p.byte(':') {
			return p.errAt("expected ':' after object key")
		}
		p.skipWS()
		switch string(key) {
		case "query":
			if p.lit("null") {
				continue
			}
			sc.qbuf, err = p.string(sc.qbuf[:0])
			if err != nil {
				return err
			}
			req.query = sc.qbuf
		case "k":
			if p.lit("null") {
				continue
			}
			req.k, err = p.integer()
			if err != nil {
				return err
			}
		case "timeout_ms":
			if p.lit("null") {
				continue
			}
			req.timeoutMS, err = p.integer()
			if err != nil {
				return err
			}
		default:
			return fmt.Errorf("json: unknown field %q", key)
		}
	}
}

type jsonParser struct {
	b []byte
	i int
}

func (p *jsonParser) errAt(msg string) error {
	return fmt.Errorf("invalid JSON at offset %d: %s", p.i, msg)
}

func (p *jsonParser) skipWS() {
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case ' ', '\t', '\r', '\n':
			p.i++
		default:
			return
		}
	}
}

// byte consumes c if it is next.
func (p *jsonParser) byte(c byte) bool {
	if p.i < len(p.b) && p.b[p.i] == c {
		p.i++
		return true
	}
	return false
}

// lit consumes the literal s if it is next.
func (p *jsonParser) lit(s string) bool {
	if len(p.b)-p.i >= len(s) && string(p.b[p.i:p.i+len(s)]) == s {
		p.i += len(s)
		return true
	}
	return false
}

// rawKey parses an object key without unescaping: the known keys contain
// no escapes, so a key with a backslash simply fails the field-name match
// (reported as an unknown field, which the endpoint rejects anyway).
func (p *jsonParser) rawKey() ([]byte, error) {
	if !p.byte('"') {
		return nil, p.errAt("expected object key")
	}
	start := p.i
	for p.i < len(p.b) {
		switch c := p.b[p.i]; {
		case c == '"':
			key := p.b[start:p.i]
			p.i++
			return key, nil
		case c == '\\':
			// Escaped keys cannot match a known field; skip the escape so
			// the key still terminates at its real closing quote.
			p.i += 2
		case c < 0x20:
			return nil, p.errAt("control character in string")
		default:
			p.i++
		}
	}
	return nil, p.errAt("unterminated string")
}

// string parses a JSON string, unescaping into buf.
func (p *jsonParser) string(buf []byte) ([]byte, error) {
	if !p.byte('"') {
		return nil, p.errAt("expected string")
	}
	for p.i < len(p.b) {
		c := p.b[p.i]
		switch {
		case c == '"':
			p.i++
			return buf, nil
		case c == '\\':
			p.i++
			var err error
			buf, err = p.escape(buf)
			if err != nil {
				return nil, err
			}
		case c < 0x20:
			return nil, p.errAt("control character in string")
		default:
			buf = append(buf, c)
			p.i++
		}
	}
	return nil, p.errAt("unterminated string")
}

// escape decodes one backslash escape (the backslash is already
// consumed), appending the decoded bytes to buf. Unpaired surrogates
// decode to U+FFFD, matching encoding/json.
func (p *jsonParser) escape(buf []byte) ([]byte, error) {
	if p.i >= len(p.b) {
		return nil, p.errAt("unterminated escape")
	}
	c := p.b[p.i]
	p.i++
	switch c {
	case '"', '\\', '/':
		return append(buf, c), nil
	case 'b':
		return append(buf, '\b'), nil
	case 'f':
		return append(buf, '\f'), nil
	case 'n':
		return append(buf, '\n'), nil
	case 'r':
		return append(buf, '\r'), nil
	case 't':
		return append(buf, '\t'), nil
	case 'u':
		r, err := p.hex4()
		if err != nil {
			return nil, err
		}
		if utf16.IsSurrogate(r) {
			if p.i+1 < len(p.b) && p.b[p.i] == '\\' && p.b[p.i+1] == 'u' {
				save := p.i
				p.i += 2
				r2, err := p.hex4()
				if err != nil {
					return nil, err
				}
				if dec := utf16.DecodeRune(r, r2); dec != utf8.RuneError {
					return utf8.AppendRune(buf, dec), nil
				}
				p.i = save // second escape was not the pair's low half
			}
			r = utf8.RuneError
		}
		return utf8.AppendRune(buf, r), nil
	default:
		return nil, p.errAt("invalid escape character")
	}
}

func (p *jsonParser) hex4() (rune, error) {
	if p.i+4 > len(p.b) {
		return 0, p.errAt("truncated \\u escape")
	}
	var r rune
	for _, c := range p.b[p.i : p.i+4] {
		r <<= 4
		switch {
		case c >= '0' && c <= '9':
			r |= rune(c - '0')
		case c >= 'a' && c <= 'f':
			r |= rune(c-'a') + 10
		case c >= 'A' && c <= 'F':
			r |= rune(c-'A') + 10
		default:
			return 0, p.errAt("invalid \\u escape")
		}
	}
	p.i += 4
	return r, nil
}

// integer parses a JSON integer (the grammar's number production minus
// fractions and exponents, which cannot unmarshal into an int field).
func (p *jsonParser) integer() (int64, error) {
	start := p.i
	neg := p.byte('-')
	digits := 0
	var v int64
	for p.i < len(p.b) {
		c := p.b[p.i]
		if c < '0' || c > '9' {
			break
		}
		if digits > 0 && p.b[start+btoi(neg)] == '0' {
			return 0, p.errAt("number with leading zero")
		}
		if v > (math.MaxInt64-int64(c-'0'))/10 {
			return 0, p.errAt("integer overflow")
		}
		v = v*10 + int64(c-'0')
		digits++
		p.i++
	}
	if digits == 0 {
		return 0, p.errAt("expected integer")
	}
	if p.i < len(p.b) {
		if c := p.b[p.i]; c == '.' || c == 'e' || c == 'E' {
			return 0, p.errAt("number is not an integer")
		}
	}
	if neg {
		v = -v
	}
	return v, nil
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// --- response encoder --------------------------------------------------

// jsonContentType is the pre-built Content-Type value the fast path
// assigns directly into the header map — http.Header.Set allocates a
// fresh one-element slice per call; this shared slice is read-only by
// contract (net/http only reads header values when writing the response).
var jsonContentType = []string{"application/json"}

// appendSearchResponse renders searchResponse exactly as
// json.NewEncoder(w).Encode does — same field order, same float
// formatting, same trailing newline — into a reusable buffer.
func appendSearchResponse(b []byte, rs []querygraph.Result, took time.Duration) []byte {
	b = append(b, `{"results":[`...)
	for i, r := range rs {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"doc":`...)
		b = strconv.AppendInt(b, int64(r.Doc), 10)
		b = append(b, `,"score":`...)
		b = appendJSONFloat(b, r.Score)
		b = append(b, '}')
	}
	b = append(b, `],"took_ms":`...)
	b = appendJSONFloat(b, tookMS(took))
	b = append(b, '}', '\n')
	return b
}

// appendJSONFloat formats a float64 with encoding/json's algorithm:
// shortest round-trip representation, %f for the ES6-conventional
// magnitude window and %e outside it, with the exponent's leading zero
// trimmed. Scores (log-likelihoods) and took_ms are always finite, so the
// NaN/Inf error path of encoding/json cannot arise here.
func appendJSONFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}
