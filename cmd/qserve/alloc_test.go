//go:build !race

package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"testing"
	"time"

	querygraph "github.com/querygraph/querygraph"
)

// nullWriter is a reusable ResponseWriter: httptest's recorder allocates
// its body buffer per response, which would drown the number under test.
type nullWriter struct {
	header http.Header
	status int
	body   []byte
}

func (w *nullWriter) Header() http.Header  { return w.header }
func (w *nullWriter) WriteHeader(code int) { w.status = code }
func (w *nullWriter) Write(p []byte) (int, error) {
	w.body = append(w.body[:0], p...)
	return len(p), nil
}

// replayBody is a rewindable in-memory request body.
type replayBody struct {
	data []byte
	off  int
}

func (b *replayBody) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.EOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}

func (b *replayBody) Close() error { return nil }

// TestSearchHandlerZeroAlloc pins the tentpole number of the load-test
// round: at steady state — warm scratch pool, interned query, warm
// query-plan cache — the /v1/search handler performs zero heap
// allocations per request, with the metrics observer attached (its hooks
// are atomic-only by design). The handler is invoked directly rather
// than through the mux so the number is the handler's own, independent of
// routing internals. Excluded under -race because the race runtime
// instruments allocation.
func TestSearchHandlerZeroAlloc(t *testing.T) {
	cfg := querygraph.DefaultWorldConfig()
	cfg.Topics = 6
	cfg.ArticlesPerTopic = 10
	cfg.DocsPerTopic = 16
	cfg.Queries = 6
	cfg.NoiseVocab = 60
	w, err := querygraph.GenerateWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	metrics := querygraph.NewMetricsObserver()
	c, err := querygraph.Build(w, querygraph.WithObserver(metrics))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := newServer(c, 5*time.Second, metrics)

	raw, err := json.Marshal(searchRequest{Query: c.Queries()[0].Keywords, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	body := &replayBody{data: raw}
	req := &http.Request{
		Method: http.MethodPost,
		URL:    &url.URL{Path: "/v1/search"},
		Header: http.Header{"Content-Type": {"application/json"}},
		Body:   body,
	}
	rw := &nullWriter{header: make(http.Header)}

	run := func() {
		body.off = 0
		rw.status = 0
		s.handleSearch(rw, req)
		if rw.status != http.StatusOK {
			t.Fatalf("status = %d, body %s", rw.status, rw.body)
		}
	}
	// Warm every pooled resource the steady state relies on: the scratch
	// pool, the intern map, the engine's query-plan cache and the response
	// buffer.
	for i := 0; i < 64; i++ {
		run()
	}
	var resp searchResponse
	if err := json.Unmarshal(rw.body, &resp); err != nil {
		t.Fatalf("bad response %q: %v", rw.body, err)
	}
	if len(resp.Results) == 0 {
		t.Fatal("warmed search returned no results; the measurement below would be vacuous")
	}

	if avg := testing.AllocsPerRun(1000, run); avg != 0 {
		t.Fatalf("search handler allocs/op = %v, want 0", avg)
	}

	// Through the full middleware with tracing sampled out, the handler
	// itself still allocates nothing: the only per-request garbage is the
	// X-Request-ID echo (http.Header.Set stores a fresh one-element
	// slice). The request supplies its own valid ID, as a traced caller
	// would, so no ID string is minted.
	s.sample = 0
	req.Header.Set("X-Request-Id", "00000000deadbeef")
	runMux := func() {
		body.off = 0
		rw.status = 0
		s.ServeHTTP(rw, req)
		if rw.status != http.StatusOK {
			t.Fatalf("status = %d, body %s", rw.status, rw.body)
		}
	}
	for i := 0; i < 64; i++ {
		runMux()
	}
	if avg := testing.AllocsPerRun(1000, runMux); avg > 1 {
		t.Fatalf("sampled-out middleware allocs/op = %v, want at most 1 (the header echo)", avg)
	}
}
