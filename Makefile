GO ?= go

.PHONY: build test qlint lint check fmt

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

# qlint is the project-native analyzer suite (internal/lint): the
# serving-stack invariants, run over the whole module. Exits non-zero on
# any finding; needs no network and no installed tools.
qlint:
	$(GO) run ./cmd/qlint ./...

# lint = everything CI's lint job runs that works offline. staticcheck
# and govulncheck are added by scripts/check.sh when installed.
lint: qlint
	$(GO) vet ./...

fmt:
	gofmt -w .

# check mirrors the CI gates locally (see scripts/check.sh).
check:
	./scripts/check.sh
