package querygraph

import (
	"context"
	"errors"
	"time"
)

// The typed request structs are the canonical call shape over a Backend:
// one value carries the query, the ranking depth, the per-request deadline
// and (for expansion) the validated functional options, and Do executes it
// against any backend. cmd/qserve decodes its wire JSON into these instead
// of re-plumbing each knob by hand, and library callers get the same
// shape:
//
//	resp, err := querygraph.SearchRequest{Query: "venice", K: 15}.Do(ctx, be)
//
// A request's Timeout only ever lowers the caller's deadline (the earlier
// of the two wins, exactly like a nested context.WithTimeout); zero means
// "inherit ctx unchanged".
//
// ErrPartialResult is the one error returned alongside a usable response:
// a degrade-policy *Remote that lost shards still delivers the survivors'
// ranking, so Do returns the populated response AND the wrapped sentinel,
// and callers decide whether a partial answer is acceptable. Every other
// error keeps the zero response.

// SearchRequest is one ranked retrieval over raw query text.
type SearchRequest struct {
	// Query is INDRI-style query text (bare keywords, #combine, #weight,
	// #1 exact phrases).
	Query string
	// K bounds the ranking depth; <= 0 ranks every candidate.
	K int
	// Timeout, when positive, bounds the request to min(Timeout, the
	// deadline already on ctx).
	Timeout time.Duration
}

// SearchResponse is the outcome of one SearchRequest.
type SearchResponse struct {
	Results []Result
	// Took is the request's wall time inside the backend.
	Took time.Duration
}

// Do executes the request against any backend.
func (r SearchRequest) Do(ctx context.Context, b Backend) (SearchResponse, error) {
	ctx, cancel := requestContext(ctx, r.Timeout)
	defer cancel()
	start := time.Now()
	rs, err := b.Search(ctx, r.Query, r.K)
	if err != nil && !errors.Is(err, ErrPartialResult) {
		return SearchResponse{}, err
	}
	return SearchResponse{Results: rs, Took: time.Since(start)}, err
}

// SearchBatchRequest is a batch of retrievals on a bounded worker pool.
type SearchBatchRequest struct {
	Queries []string
	K       int
	// Workers bounds the fan-out; <= 0 means GOMAXPROCS.
	Workers int
	Timeout time.Duration
}

// SearchBatchResponse is the outcome of one SearchBatchRequest; Results
// holds the per-query rankings in input order.
type SearchBatchResponse struct {
	Results [][]Result
	Took    time.Duration
}

// Do executes the batch against any backend.
func (r SearchBatchRequest) Do(ctx context.Context, b Backend) (SearchBatchResponse, error) {
	ctx, cancel := requestContext(ctx, r.Timeout)
	defer cancel()
	start := time.Now()
	rss, err := b.SearchAll(ctx, r.Queries, r.K, BatchOptions{Workers: r.Workers})
	if err != nil && !errors.Is(err, ErrPartialResult) {
		return SearchBatchResponse{}, err
	}
	return SearchBatchResponse{Results: rss, Took: time.Since(start)}, err
}

// ExpandRequest is one cycle-based query expansion, optionally followed by
// the expanded retrieval.
type ExpandRequest struct {
	Keywords string
	// Options tune the expansion; nil uses the paper-tuned defaults
	// (DefaultExpandOptions). Invalid values fail the request with
	// ErrInvalidOptions.
	Options []ExpandOption
	// K > 0 additionally evaluates the expanded title query and attaches
	// the top K documents to the response.
	K       int
	Timeout time.Duration
}

// ExpandResponse is the outcome of one ExpandRequest.
type ExpandResponse struct {
	// Expansion is shared with the backend's cache: read-only.
	Expansion *Expansion
	// Results is the expanded retrieval's ranking when the request asked
	// for one (K > 0) and the expansion had anything to search for;
	// Searched reports the latter.
	Results  []Result
	Searched bool
	Took     time.Duration
}

// Do executes the request against any backend.
func (r ExpandRequest) Do(ctx context.Context, b Backend) (ExpandResponse, error) {
	ctx, cancel := requestContext(ctx, r.Timeout)
	defer cancel()
	start := time.Now()
	exp, err := b.Expand(ctx, r.Keywords, r.Options...)
	if err != nil {
		return ExpandResponse{}, err
	}
	resp := ExpandResponse{Expansion: exp}
	var perr error
	if r.K > 0 {
		rs, ok, serr := b.SearchExpansion(ctx, exp, r.K)
		if serr != nil && !errors.Is(serr, ErrPartialResult) {
			return ExpandResponse{}, serr
		}
		resp.Results, resp.Searched = rs, ok
		perr = serr
	}
	resp.Took = time.Since(start)
	return resp, perr
}

// ExpandBatchRequest is a batch of expansions on a bounded worker pool,
// optionally followed by the expanded retrievals.
type ExpandBatchRequest struct {
	Keywords []string
	Options  []ExpandOption
	// K > 0 additionally evaluates every expansion and attaches the
	// per-expansion rankings.
	K       int
	Workers int
	Timeout time.Duration
}

// ExpandBatchResponse is the outcome of one ExpandBatchRequest; both
// slices are in input order. Results is nil unless the request asked for
// retrieval (K > 0); entries with nothing to search for keep nil rankings.
type ExpandBatchResponse struct {
	Expansions []*Expansion
	Results    [][]Result
	Took       time.Duration
}

// Do executes the batch against any backend.
func (r ExpandBatchRequest) Do(ctx context.Context, b Backend) (ExpandBatchResponse, error) {
	ctx, cancel := requestContext(ctx, r.Timeout)
	defer cancel()
	start := time.Now()
	bopts := BatchOptions{Workers: r.Workers}
	exps, err := b.ExpandAll(ctx, r.Keywords, bopts, r.Options...)
	if err != nil {
		return ExpandBatchResponse{}, err
	}
	resp := ExpandBatchResponse{Expansions: exps}
	var perr error
	if r.K > 0 {
		rss, serr := b.SearchExpansions(ctx, exps, r.K, bopts)
		if serr != nil && !errors.Is(serr, ErrPartialResult) {
			return ExpandBatchResponse{}, serr
		}
		resp.Results = rss
		perr = serr
	}
	resp.Took = time.Since(start)
	return resp, perr
}

// requestContext applies a request's Timeout: a positive value nests a
// WithTimeout (so the earlier of it and ctx's own deadline wins), zero
// passes ctx through with a no-op cancel.
func requestContext(ctx context.Context, timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout > 0 {
		return context.WithTimeout(ctx, timeout)
	}
	return ctx, func() {}
}
