package querygraph

import (
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/querygraph/querygraph/internal/corpus"
)

// liveSplit generates a world, splits its collection at a seed-dependent
// cut, and returns the monolithic reference client over every document,
// a base world holding only the head, and the tail as ingestable
// documents. The base benchmark's relevant lists are clamped to the base
// range (the store validates them against the corpus, and a live
// deployment's benchmark likewise predates ingest).
func liveSplit(t *testing.T, seed int64, cutFrac float64) (*Client, *World, []Document) {
	t.Helper()
	cfg := DefaultWorldConfig()
	cfg.Seed = seed
	cfg.Topics = 5
	cfg.ArticlesPerTopic = 8
	cfg.DocsPerTopic = 12
	cfg.Queries = 6
	cfg.NoiseVocab = 60
	w, err := GenerateWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Build(w)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ref.Close() })

	docs := w.Collection.Docs()
	cut := int(float64(len(docs)) * cutFrac)
	if cut < 1 || cut >= len(docs) {
		t.Fatalf("cut %d leaves no base or no tail in %d docs", cut, len(docs))
	}
	base := *w
	baseColl, err := corpus.LoadCollection(docs[:cut])
	if err != nil {
		t.Fatal(err)
	}
	base.Collection = baseColl
	base.Queries = append(base.Queries[:0:0], w.Queries...)
	for i := range base.Queries {
		kept := base.Queries[i].Relevant[:0:0]
		for _, d := range base.Queries[i].Relevant {
			if int(d) < cut {
				kept = append(kept, d)
			}
		}
		base.Queries[i].Relevant = kept
	}
	tail := make([]Document, len(docs)-cut)
	for i, d := range docs[cut:] {
		tail[i] = d.Image
	}
	return ref, &base, tail
}

// searchGolden collects the reference ranking of every benchmark query.
func searchGolden(t *testing.T, be Backend, qs []Query) [][]Result {
	t.Helper()
	ctx := context.Background()
	out := make([][]Result, len(qs))
	for i, q := range qs {
		rs, err := be.Search(ctx, q.Keywords, MaxRank)
		if err != nil {
			t.Fatalf("search %q: %v", q.Keywords, err)
		}
		out[i] = rs
	}
	return out
}

// TestLiveIngestMatchesMonolithic is the equivalence property of the live
// index: a random split of the corpus into a base build plus ingested
// delta documents serves Search and expanded retrieval bit-identical to
// the monolithic build over the whole corpus — on the snapshot Client and
// the sharded Pool alike — and a compaction advances the generation
// without moving a single result.
func TestLiveIngestMatchesMonolithic(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		seed    int64
		cutFrac float64
	}{{seed: 3, cutFrac: 0.6}, {seed: 9, cutFrac: 0.35}} {
		t.Run(fmt.Sprintf("seed=%d", tc.seed), func(t *testing.T) {
			ref, base, tail := liveSplit(t, tc.seed, tc.cutFrac)
			qs := ref.Queries()
			keywords := make([]string, len(qs))
			for i, q := range qs {
				keywords[i] = q.Keywords
			}
			wantSearch := searchGolden(t, ref, qs)
			wantExp, err := ref.ExpandAll(ctx, keywords, BatchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			wantExpSearch, err := ref.SearchExpansions(ctx, wantExp, MaxRank, BatchOptions{})
			if err != nil {
				t.Fatal(err)
			}

			client, err := Build(base)
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()
			dir := t.TempDir()
			if err := client.SaveShards(dir, 3); err != nil {
				t.Fatal(err)
			}
			pool, err := OpenBackend(filepath.Join(dir, "manifest.json"))
			if err != nil {
				t.Fatal(err)
			}
			defer pool.Close()

			for name, be := range map[string]Backend{"client": client, "pool-3": pool} {
				// Two batches so the segment's append-merge path runs too.
				mid := len(tail) / 2
				for _, span := range [][]Document{tail[:mid], tail[mid:]} {
					if _, err := be.Ingest(ctx, span); err != nil {
						t.Fatalf("%s: ingest: %v", name, err)
					}
				}
				st := be.Stats()
				if st.Delta.Documents != len(tail) || st.Delta.PendingBytes <= 0 {
					t.Fatalf("%s: delta stats = %+v, want %d pending documents", name, st.Delta, len(tail))
				}

				deltaServed := searchGolden(t, be, qs)
				if !reflect.DeepEqual(deltaServed, wantSearch) {
					t.Fatalf("%s: base+delta search diverges from the monolithic build", name)
				}
				gotExp, err := be.ExpandAll(ctx, keywords, BatchOptions{})
				if err != nil {
					t.Fatal(err)
				}
				gotExpSearch, err := be.SearchExpansions(ctx, gotExp, MaxRank, BatchOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gotExpSearch, wantExpSearch) {
					t.Fatalf("%s: base+delta expanded retrieval diverges from the monolithic build", name)
				}

				cs, err := be.Compact(ctx)
				if err != nil {
					t.Fatalf("%s: compact: %v", name, err)
				}
				if cs.Compacted != len(tail) || cs.Generation != 2 {
					t.Fatalf("%s: compact stats = %+v, want %d compacted on generation 2", name, cs, len(tail))
				}
				st = be.Stats()
				if st.Delta.Documents != 0 || st.Delta.Generation != 2 || st.Delta.Compactions != 1 ||
					st.Documents != ref.Stats().Documents {
					t.Fatalf("%s: post-compaction stats = %+v (documents %d)", name, st.Delta, st.Documents)
				}
				if got := searchGolden(t, be, qs); !reflect.DeepEqual(got, deltaServed) {
					t.Fatalf("%s: results moved across compaction", name)
				}
			}
		})
	}
}

// TestLiveIngestBatchAtomic pins the all-or-nothing batch contract: a
// batch with a duplicate external id admits nothing, and a batch past
// the capacity answers ErrDeltaFull with the segment unchanged.
func TestLiveIngestBatchAtomic(t *testing.T) {
	ctx := context.Background()
	ref, base, tail := liveSplit(t, 17, 0.5)
	_ = ref
	client, err := Build(base, WithDeltaCapacity(len(tail)))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Duplicate against the base corpus: nothing lands.
	dup := []Document{tail[0], {ID: base.Collection.Docs()[0].Image.ID, Name: "dup.jpg"}}
	if _, err := client.Ingest(ctx, dup); !isInvalidOptions(err) {
		t.Fatalf("duplicate-id batch err = %v, want ErrInvalidOptions", err)
	}
	if st := client.Stats(); st.Delta.Documents != 0 {
		t.Fatalf("rejected batch left %d documents in the delta", st.Delta.Documents)
	}

	// Over capacity: ErrDeltaFull, segment unchanged.
	if _, err := client.Ingest(ctx, tail); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Ingest(ctx, tail[:1]); !isDeltaFull(err) {
		t.Fatalf("over-capacity err = %v, want ErrDeltaFull", err)
	}
	if st := client.Stats(); st.Delta.Documents != len(tail) {
		t.Fatalf("over-capacity batch changed the segment: %d docs", st.Delta.Documents)
	}

}

func isInvalidOptions(err error) bool { return err != nil && ErrorClass(err) == "invalid_options" }
func isDeltaFull(err error) bool      { return err != nil && ErrorClass(err) == "delta_full" }

// TestLiveRace races ingest, compaction, reload and search on a sharded
// pool and then proves the ledger balances: every successfully ingested
// document is present exactly once after the final compaction — none
// dropped by a racing reload or compaction, none double-counted.
func TestLiveRace(t *testing.T) {
	ctx := context.Background()
	_, base, _ := liveSplit(t, 23, 0.7)
	client, err := Build(base)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := client.SaveShards(dir, 2); err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	be, err := OpenBackend(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	pool := be.(*Pool)
	defer pool.Close()
	baseDocs := pool.Stats().Documents
	kw := pool.Queries()[0].Keywords

	var (
		ingested atomic.Int64
		stop     atomic.Bool
		wg       sync.WaitGroup
	)
	worker := func(fn func(i int) error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				if err := fn(i); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for g := 0; g < 2; g++ {
		g := g
		worker(func(i int) error {
			doc := Document{
				Name:  fmt.Sprintf("race-%d-%d.jpg", g, i),
				Texts: []DocumentText{{Lang: "en", Description: fmt.Sprintf("racer %d round %d", g, i)}},
			}
			if _, err := pool.Ingest(ctx, []Document{doc}); err != nil {
				return fmt.Errorf("ingest: %w", err)
			}
			ingested.Add(1)
			return nil
		})
	}
	worker(func(i int) error {
		if _, err := pool.Search(ctx, kw, 5); err != nil {
			return fmt.Errorf("search: %w", err)
		}
		return nil
	})
	worker(func(i int) error {
		if _, err := pool.Compact(ctx); err != nil {
			return fmt.Errorf("compact: %w", err)
		}
		time.Sleep(5 * time.Millisecond)
		return nil
	})
	worker(func(i int) error {
		if err := pool.Reload(""); err != nil {
			return fmt.Errorf("reload: %w", err)
		}
		time.Sleep(5 * time.Millisecond)
		return nil
	})

	time.Sleep(300 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		return
	}

	if _, err := pool.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	want := baseDocs + int(ingested.Load())
	if got := pool.Stats().Documents; got != want {
		t.Fatalf("after the dust settles: %d documents, want %d (base %d + %d ingested)",
			got, want, baseDocs, ingested.Load())
	}
	if st := pool.Stats(); st.Delta.Documents != 0 {
		t.Fatalf("final compaction left %d delta documents", st.Delta.Documents)
	}
}
