package querygraph

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// poolTestWorld builds a small deterministic world and its single-snapshot
// client — the equivalence oracle every Pool assertion compares against.
func poolTestWorld(t *testing.T, seed int64) *Client {
	t.Helper()
	cfg := DefaultWorldConfig()
	cfg.Seed = seed
	cfg.Topics = 8
	cfg.ArticlesPerTopic = 12
	cfg.DocsPerTopic = 20
	cfg.Queries = 10
	cfg.NoiseVocab = 80
	w, err := GenerateWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	client, err := Build(w)
	if err != nil {
		t.Fatal(err)
	}
	return client
}

// shardedPool writes an n-shard generation of the client's world and
// opens a Pool over it, returning the manifest path too.
func shardedPool(t *testing.T, client *Client, n int) (*Pool, string) {
	t.Helper()
	dir := t.TempDir()
	if err := client.SaveShards(dir, n); err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(dir, "manifest.json")
	pool, err := OpenPool(manifest)
	if err != nil {
		t.Fatal(err)
	}
	return pool, manifest
}

// TestPoolEquivalence is the sharded-correctness contract: for the same
// world and queries, a Pool over 1, 2, 4 or 7 shards returns bit-identical
// results to the single-snapshot Client — ranked documents with scores
// compared by ==, expansions compared structurally, expanded retrieval
// end to end.
func TestPoolEquivalence(t *testing.T) {
	client := poolTestWorld(t, 0)
	ctx := context.Background()
	queries := client.Queries()
	if len(queries) == 0 {
		t.Fatal("world has no benchmark queries")
	}
	for _, n := range []int{1, 2, 4, 7} {
		pool, _ := shardedPool(t, client, n)
		if got := pool.NumShards(); got != n {
			t.Fatalf("NumShards = %d, want %d", got, n)
		}
		if !reflect.DeepEqual(pool.Queries(), queries) {
			t.Fatalf("n=%d: replicated benchmark diverged", n)
		}
		keywords := make([]string, len(queries))
		for i, q := range queries {
			keywords[i] = q.Keywords
		}

		for _, q := range queries {
			for _, k := range []int{1, 15, 0} {
				want, err := client.Search(ctx, q.Keywords, k)
				if err != nil {
					t.Fatal(err)
				}
				got, err := pool.Search(ctx, q.Keywords, k)
				if err != nil {
					t.Fatal(err)
				}
				if got == nil {
					t.Fatalf("n=%d query %q k=%d: nil results", n, q.Keywords, k)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("n=%d query %q k=%d: ranking diverged\ngot  %+v\nwant %+v",
						n, q.Keywords, k, got, want)
				}
			}

			wantExp, err := client.Expand(ctx, q.Keywords, WithMaxFeatures(8), WithFrequencyRank(true))
			if err != nil {
				t.Fatal(err)
			}
			gotExp, err := pool.Expand(ctx, q.Keywords, WithMaxFeatures(8), WithFrequencyRank(true))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotExp, wantExp) {
				t.Fatalf("n=%d query %q: expansion diverged\ngot  %+v\nwant %+v",
					n, q.Keywords, gotExp, wantExp)
			}

			wantRS, wantOK, err := client.SearchExpansion(ctx, wantExp, 15)
			if err != nil {
				t.Fatal(err)
			}
			gotRS, gotOK, err := pool.SearchExpansion(ctx, gotExp, 15)
			if err != nil {
				t.Fatal(err)
			}
			if gotOK != wantOK || !reflect.DeepEqual(gotRS, wantRS) {
				t.Fatalf("n=%d query %q: expanded retrieval diverged", n, q.Keywords)
			}
		}

		// Batch paths agree with the single-query paths.
		wantBatch, err := client.SearchAll(ctx, keywords, 10, BatchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		gotBatch, err := pool.SearchAll(ctx, keywords, 10, BatchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotBatch, wantBatch) {
			t.Fatalf("n=%d: batch rankings diverged", n)
		}
		wantExps, err := client.ExpandAll(ctx, keywords, BatchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		gotExps, err := pool.ExpandAll(ctx, keywords, BatchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotExps, wantExps) {
			t.Fatalf("n=%d: batch expansions diverged", n)
		}
		wantRanked, err := client.SearchExpansions(ctx, wantExps, 15, BatchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		gotRanked, err := pool.SearchExpansions(ctx, gotExps, 15, BatchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotRanked, wantRanked) {
			t.Fatalf("n=%d: batch expanded retrieval diverged", n)
		}

		// Stats see the partition, not the fragment.
		st := pool.PoolStats()
		if st.Documents != client.Stats().Documents {
			t.Errorf("n=%d: pool reports %d documents, want the global %d",
				n, st.Documents, client.Stats().Documents)
		}
		if len(st.Shards) != n || st.Generation != 1 {
			t.Errorf("n=%d: pool stats %+v", n, st)
		}
		var docs int
		var postings int64
		for _, sh := range st.Shards {
			docs += sh.Documents
			postings += sh.Postings
		}
		if docs != st.Documents {
			t.Errorf("n=%d: shard documents sum to %d, want %d", n, docs, st.Documents)
		}
		if postings <= 0 {
			t.Errorf("n=%d: no postings reported", n)
		}
	}
}

// TestPoolReloadUnderLoad hammers Search/Expand from many goroutines while
// the pool hot-swaps between two different worlds: zero requests may fail,
// every response must be a valid ranking of whichever generation served
// it, and every retired generation must drain. Run under -race this also
// proves the generation lifecycle is data-race-free.
func TestPoolReloadUnderLoad(t *testing.T) {
	clientA := poolTestWorld(t, 0)
	clientB := poolTestWorld(t, 7)
	pool, manifestA := shardedPool(t, clientA, 3)
	dirB := t.TempDir()
	if err := clientB.SaveShards(dirB, 2); err != nil {
		t.Fatal(err)
	}
	manifestB := filepath.Join(dirB, "manifest.json")

	keywords := make([]string, 0, 20)
	for _, q := range clientA.Queries() {
		keywords = append(keywords, q.Keywords)
	}
	for _, q := range clientB.Queries() {
		keywords = append(keywords, q.Keywords)
	}

	const workers = 8
	ctx := context.Background()
	stop := make(chan struct{})
	var failures atomic.Int64
	var served atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				kw := keywords[i%len(keywords)]
				if i%5 == 0 {
					if _, err := pool.Expand(ctx, kw); err != nil {
						failures.Add(1)
						t.Errorf("Expand(%q): %v", kw, err)
						return
					}
				} else {
					rs, err := pool.Search(ctx, kw, 10)
					if err != nil {
						failures.Add(1)
						t.Errorf("Search(%q): %v", kw, err)
						return
					}
					if rs == nil {
						failures.Add(1)
						t.Errorf("Search(%q): nil ranking", kw)
						return
					}
				}
				served.Add(1)
			}
		}(w)
	}

	const reloads = 8
	retiredGens := make([]*poolGeneration, 0, reloads)
	manifests := [2]string{manifestB, manifestA}
	for r := 0; r < reloads; r++ {
		old := pool.gen.Load()
		if err := pool.Reload(manifests[r%2]); err != nil {
			t.Fatalf("reload %d: %v", r, err)
		}
		retiredGens = append(retiredGens, old)
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d requests failed across %d reloads (%d served)", n, reloads, served.Load())
	}
	if served.Load() == 0 {
		t.Fatal("no traffic was served during the reload storm")
	}
	if got := pool.Generation(); got != reloads+1 {
		t.Errorf("generation = %d, want %d", got, reloads+1)
	}
	if got := pool.PoolStats().Reloads; got != reloads {
		t.Errorf("reload counter = %d, want %d", got, reloads)
	}
	// Every retired generation drains once its in-flight requests finish.
	for i, g := range retiredGens {
		select {
		case <-g.drained:
		case <-time.After(5 * time.Second):
			t.Fatalf("retired generation %d (seq %d) never drained: %d refs",
				i, g.seq, g.refs.Load())
		}
	}
	// The served world actually switched: after an even number of reloads
	// the pool is back on world A's manifest.
	if !reflect.DeepEqual(pool.Queries(), clientA.Queries()) {
		t.Error("pool did not return to world A after the final reload")
	}
}

// TestPoolReloadSwitchesWorlds pins the observable effect of a reload:
// stats, benchmark and results all come from the new generation, and the
// expansion cache starts cold.
func TestPoolReloadSwitchesWorlds(t *testing.T) {
	clientA := poolTestWorld(t, 0)
	clientB := poolTestWorld(t, 7)
	pool, _ := shardedPool(t, clientA, 2)
	dirB := t.TempDir()
	if err := clientB.SaveShards(dirB, 4); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	kw := clientA.Queries()[0].Keywords
	if _, err := pool.Expand(ctx, kw); err != nil {
		t.Fatal(err)
	}
	if misses := pool.CacheStats().Misses; misses == 0 {
		t.Fatal("expansion did not touch the cache")
	}

	if err := pool.Reload(filepath.Join(dirB, "manifest.json")); err != nil {
		t.Fatal(err)
	}
	if got, want := pool.NumShards(), 4; got != want {
		t.Errorf("NumShards after reload = %d, want %d", got, want)
	}
	if got, want := pool.Stats().Documents, clientB.Stats().Documents; got != want {
		t.Errorf("documents after reload = %d, want world B's %d", got, want)
	}
	if !reflect.DeepEqual(pool.Queries(), clientB.Queries()) {
		t.Error("benchmark after reload is not world B's")
	}
	if st := pool.CacheStats(); st.Hits != 0 || st.Misses != 0 {
		t.Errorf("expansion cache not cold after reload: %+v", st)
	}
	q := clientB.Queries()[0]
	want, err := clientB.Search(ctx, q.Keywords, 15)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pool.Search(ctx, q.Keywords, 15)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("post-reload ranking is not bit-identical to world B's client")
	}
}

// TestPoolReloadFailureKeepsServing: a reload pointed at garbage returns
// ErrBadManifest and the pool keeps serving the generation it had.
func TestPoolReloadFailureKeepsServing(t *testing.T) {
	client := poolTestWorld(t, 0)
	pool, _ := shardedPool(t, client, 2)
	before := pool.Generation()
	err := pool.Reload(filepath.Join(t.TempDir(), "missing", "manifest.json"))
	if !errors.Is(err, ErrBadManifest) {
		t.Fatalf("reload of missing manifest: got %v, want ErrBadManifest", err)
	}
	if got := pool.Generation(); got != before {
		t.Errorf("failed reload advanced the generation: %d -> %d", before, got)
	}
	q := client.Queries()[0]
	want, err := client.Search(context.Background(), q.Keywords, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pool.Search(context.Background(), q.Keywords, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("pool stopped serving correctly after a failed reload")
	}
}

// TestOpenPoolBadManifest: every open failure wraps ErrBadManifest.
func TestOpenPoolBadManifest(t *testing.T) {
	if _, err := OpenPool(filepath.Join(t.TempDir(), "manifest.json")); !errors.Is(err, ErrBadManifest) {
		t.Errorf("missing manifest: got %v, want ErrBadManifest", err)
	}
}

// TestPoolPreCancelledContext mirrors the Client contract: a context that
// is already done returns ctx.Err() from every query-path method without
// running anything.
func TestPoolPreCancelledContext(t *testing.T) {
	client := poolTestWorld(t, 0)
	pool, _ := shardedPool(t, client, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	kw := client.Queries()[0].Keywords
	if _, err := pool.Search(ctx, kw, 5); !errors.Is(err, context.Canceled) {
		t.Errorf("Search: %v", err)
	}
	if _, err := pool.SearchAll(ctx, []string{kw}, 5, BatchOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("SearchAll: %v", err)
	}
	if _, err := pool.Expand(ctx, kw); !errors.Is(err, context.Canceled) {
		t.Errorf("Expand: %v", err)
	}
	if _, err := pool.ExpandAll(ctx, []string{kw}, BatchOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("ExpandAll: %v", err)
	}
	if _, _, err := pool.SearchExpansion(ctx, &Expansion{Keywords: kw}, 5); !errors.Is(err, context.Canceled) {
		t.Errorf("SearchExpansion: %v", err)
	}
}

// TestPoolInvalidQuery mirrors the Client error model over the pool.
func TestPoolInvalidQuery(t *testing.T) {
	client := poolTestWorld(t, 0)
	pool, _ := shardedPool(t, client, 2)
	if _, err := pool.Search(context.Background(), "#combine(", 5); !errors.Is(err, ErrInvalidQuery) {
		t.Errorf("Search: got %v, want ErrInvalidQuery", err)
	}
	if _, err := pool.Expand(context.Background(), "x", WithMaxFeatures(-1)); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("Expand: got %v, want ErrInvalidOptions", err)
	}
}
