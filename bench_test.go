// Package querygraph_test hosts the benchmark harness: one testing.B
// benchmark per table and figure of the paper's evaluation (see DESIGN.md's
// per-experiment index), two ablation benchmarks, and micro-benchmarks of
// the hot paths (indexing, search, linking, cycle mining, online
// expansion). Run with:
//
//	go test -bench=. -benchmem
//
// Headline numbers are attached to each benchmark via b.ReportMetric, so
// the -bench output doubles as a compact experiment report.
package querygraph_test

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"github.com/querygraph/querygraph/internal/core"
	"github.com/querygraph/querygraph/internal/cycles"
	"github.com/querygraph/querygraph/internal/graph"
	"github.com/querygraph/querygraph/internal/groundtruth"
	"github.com/querygraph/querygraph/internal/search"
	"github.com/querygraph/querygraph/internal/shard"
	"github.com/querygraph/querygraph/internal/synth"
	"github.com/querygraph/querygraph/internal/text"
)

// bench holds the shared benchmark environment, built once per process: the
// default synthetic world (the same one cmd/qbench uses, reduced to 30
// queries to keep -bench wall time moderate), the assembled system, the
// ground truths and the full analysis.
type benchEnv struct {
	world    *synth.World
	system   *core.System
	queries  []core.Query
	gts      []*core.GroundTruth
	analysis *core.Analysis
}

var (
	envOnce sync.Once
	env     *benchEnv
)

func benchSetup(b *testing.B) *benchEnv {
	b.Helper()
	envOnce.Do(func() {
		cfg := synth.Default()
		cfg.Queries = 30
		w, err := synth.Generate(cfg)
		if err != nil {
			panic(err)
		}
		s, err := core.FromWorld(w)
		if err != nil {
			panic(err)
		}
		qs := core.QueriesFromWorld(w)
		gts, err := s.BuildAllGroundTruths(context.Background(), qs, core.GroundTruthConfig{
			Search: groundtruth.Config{Seed: 1},
		})
		if err != nil {
			panic(err)
		}
		a, err := s.Analyze(context.Background(), gts, core.AnalysisConfig{})
		if err != nil {
			panic(err)
		}
		env = &benchEnv{world: w, system: s, queries: qs, gts: gts, analysis: a}
	})
	return env
}

// BenchmarkTable2GroundTruthPrecision measures the Section 2 pipeline that
// produces Table 2: entity linking, the ADD/REMOVE/SWAP local search and
// the query-graph assembly for one query.
func BenchmarkTable2GroundTruthPrecision(b *testing.B) {
	e := benchSetup(b)
	// ResetTimer deletes user metrics, so reporting is deferred to the end.
	defer func() {
		b.ReportMetric(e.analysis.Table2[1].Median, "medianP@1")
		b.ReportMetric(e.analysis.Table2[15].Median, "medianP@15")
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := e.queries[i%len(e.queries)]
		if _, err := e.system.BuildGroundTruth(context.Background(), q, core.GroundTruthConfig{
			Search: groundtruth.Config{Seed: 1},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3QueryGraphStats measures the largest-component statistics
// of Table 3 over all assembled query graphs.
func BenchmarkTable3QueryGraphStats(b *testing.B) {
	e := benchSetup(b)
	defer func() {
		b.ReportMetric(e.analysis.Table3.CategoryFrac.Median, "medianCatFrac")
		b.ReportMetric(e.analysis.Table3.RelSize.Median, "medianRelSize")
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, gt := range e.gts {
			_ = gt.Graph.LargestComponentStats()
		}
	}
}

// BenchmarkTable4CycleLengthConfigs regenerates Table 4: per-query cycle
// mining plus one retrieval evaluation per cycle-length configuration.
func BenchmarkTable4CycleLengthConfigs(b *testing.B) {
	e := benchSetup(b)
	defer func() {
		for _, row := range e.analysis.Table4 {
			if row.Config.Label == "2 & 3 & 4 & 5" {
				b.ReportMetric(row.PrecisionAt[1], "allLengthsP@1")
				b.ReportMetric(row.PrecisionAt[15], "allLengthsP@15")
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.system.Analyze(context.Background(), e.gts, core.AnalysisConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// reportLengthMetric attaches a per-length metric map to the benchmark.
func reportLengthMetric(b *testing.B, m map[int]float64, suffix string) {
	b.Helper()
	for _, l := range []int{2, 3, 4, 5} {
		if v, ok := m[l]; ok {
			b.ReportMetric(v, "len"+string(rune('0'+l))+suffix)
		}
	}
}

// analyzeBody is the shared benchmark body for the figure benchmarks: each
// figure is one aggregation over the same per-query cycle evaluation, so
// the measured work is the Analyze pass.
func analyzeBody(b *testing.B, e *benchEnv) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := e.system.Analyze(context.Background(), e.gts, core.AnalysisConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5ContributionByLength regenerates Figure 5 (average cycle
// contribution per length).
func BenchmarkFig5ContributionByLength(b *testing.B) {
	e := benchSetup(b)
	defer reportLengthMetric(b, e.analysis.Fig5, "contrib%")
	b.ResetTimer()
	analyzeBody(b, e)
}

// BenchmarkFig6CycleCounts regenerates Figure 6 (average number of cycles
// per length).
func BenchmarkFig6CycleCounts(b *testing.B) {
	e := benchSetup(b)
	defer reportLengthMetric(b, e.analysis.Fig6, "cycles")
	b.ResetTimer()
	analyzeBody(b, e)
}

// BenchmarkFig7aCategoryRatio regenerates Figure 7a (average category ratio
// per cycle length).
func BenchmarkFig7aCategoryRatio(b *testing.B) {
	e := benchSetup(b)
	defer func() {
		reportLengthMetric(b, e.analysis.Fig7a, "catRatio")
		b.ReportMetric(e.analysis.Fig7aTrend.Slope, "trendSlope")
	}()
	b.ResetTimer()
	analyzeBody(b, e)
}

// BenchmarkFig7bExtraEdgeDensity regenerates Figure 7b (average density of
// extra edges per cycle length).
func BenchmarkFig7bExtraEdgeDensity(b *testing.B) {
	e := benchSetup(b)
	defer reportLengthMetric(b, e.analysis.Fig7b, "density")
	b.ResetTimer()
	analyzeBody(b, e)
}

// BenchmarkFig9DensityVsContribution regenerates Figure 9 (density of
// extra edges vs. contribution trend).
func BenchmarkFig9DensityVsContribution(b *testing.B) {
	e := benchSetup(b)
	defer func() {
		b.ReportMetric(e.analysis.Fig9Trend.Slope, "trendSlope")
		b.ReportMetric(e.analysis.Fig9Trend.R, "trendR")
	}()
	b.ResetTimer()
	analyzeBody(b, e)
}

// BenchmarkText3StructuralFacts regenerates the Section 3 text numbers
// (TPR of the largest components and the reciprocal-link ratio).
func BenchmarkText3StructuralFacts(b *testing.B) {
	e := benchSetup(b)
	defer func() {
		b.ReportMetric(e.analysis.Text.MeanTPR, "meanTPR")
		b.ReportMetric(e.analysis.Text.ReciprocalLinkRatio, "reciprocal")
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.world.Snapshot.ReciprocalLinkRatio()
		for _, gt := range e.gts {
			_ = gt.Graph.LargestComponentStats().TPR
		}
	}
}

// BenchmarkAblationExpanderVsNaive compares the paper-tuned cycle expander
// against the naive 1-hop link baseline (ablation A1 of DESIGN.md).
func BenchmarkAblationExpanderVsNaive(b *testing.B) {
	e := benchSetup(b)
	rows, err := e.system.CompareExpanders(context.Background(), e.queries, core.AblationConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		for _, row := range rows {
			switch row.Label {
			case "dense cycles (paper)":
				b.ReportMetric(row.MeanO, "cyclesMeanO")
			case "naive 1-hop links":
				b.ReportMetric(row.MeanO, "naiveMeanO")
			case "baseline (no expansion)":
				b.ReportMetric(row.MeanO, "baselineMeanO")
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := e.queries[i%len(e.queries)]
		if _, err := e.system.Expand(context.Background(), q.Keywords, core.DefaultExpanderOptions()); err != nil {
			b.Fatal(err)
		}
		if _, err := e.system.ExpandNaive(context.Background(), q.Keywords, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCategoryRatioFilter isolates the ~30% category-ratio
// filter (ablation A2): the expander with and without structural filters.
func BenchmarkAblationCategoryRatioFilter(b *testing.B) {
	e := benchSetup(b)
	rows, err := e.system.CompareExpanders(context.Background(), e.queries, core.AblationConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		for _, row := range rows {
			switch row.Label {
			case "dense cycles (paper)":
				b.ReportMetric(row.MeanO, "filteredMeanO")
			case "cycles, filters off":
				b.ReportMetric(row.MeanO, "unfilteredMeanO")
			}
		}
	}()
	noFilter := core.DefaultExpanderOptions()
	noFilter.MinCategoryRatio = 0
	noFilter.MaxCategoryRatio = 1
	noFilter.MinDensity = -1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := e.queries[i%len(e.queries)]
		if _, err := e.system.Expand(context.Background(), q.Keywords, noFilter); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks of the substrates --------------------------------

// BenchmarkIndexCollection measures analyzing + indexing the whole corpus.
func BenchmarkIndexCollection(b *testing.B) {
	e := benchSetup(b)
	an := text.NewAnalyzer(true, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = search.IndexCollection(e.world.Collection, an)
	}
}

// benchQueryNodes builds one expanded title query per benchmark query,
// mirroring what the serving layer evaluates after expansion.
func benchQueryNodes(b *testing.B, e *benchEnv) []search.Node {
	b.Helper()
	nodes := make([]search.Node, 0, len(e.queries))
	for i, q := range e.queries {
		gt := e.gts[i]
		arts := append(append([]graph.NodeID{}, gt.QueryArticles...), gt.Expansion...)
		titles := make([]string, len(arts))
		for j, a := range arts {
			titles[j] = e.world.Snapshot.Name(a)
		}
		if node, ok := search.BuildTitleQuery(q.Keywords, titles, e.system.Engine.Analyzer()); ok {
			nodes = append(nodes, node)
		}
	}
	if len(nodes) == 0 {
		b.Fatal("no benchmark query nodes")
	}
	return nodes
}

// BenchmarkSearch measures the single-query retrieval hot path — the
// accumulator-merge scorer with the bounded top-k heap — cycling through
// every benchmark query's expanded form.
func BenchmarkSearch(b *testing.B) {
	e := benchSetup(b)
	nodes := benchQueryNodes(b, e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.system.Engine.Search(nodes[i%len(nodes)], core.MaxRank); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchAll measures the concurrent batch retrieval layer over
// the full benchmark query set.
func BenchmarkSearchAll(b *testing.B) {
	e := benchSetup(b)
	nodes := benchQueryNodes(b, e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.system.SearchAll(context.Background(), nodes, core.MaxRank, core.BatchOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*len(nodes))/b.Elapsed().Seconds(), "queries/sec")
}

// benchShardSet writes an n-shard partition of the benchmark world and
// loads its scatter-gather runtime.
func benchShardSet(b *testing.B, e *benchEnv, n int) *shard.Set {
	b.Helper()
	dir := b.TempDir()
	if _, err := shard.WriteShards(dir, e.system.Archive(e.queries), n); err != nil {
		b.Fatal(err)
	}
	set, err := shard.Load(dir + "/manifest.json")
	if err != nil {
		b.Fatal(err)
	}
	return set
}

// BenchmarkPoolSearchAll measures the sharded batch retrieval layer on
// the same expanded title queries as BenchmarkSearchAll, at 4 shards:
// each worker scatters its query over the partitioned indexes and merges
// under globally aggregated statistics. Compare queries/sec against
// BenchmarkSearchAll for the sharding overhead/benefit on one machine.
func BenchmarkPoolSearchAll(b *testing.B) {
	e := benchSetup(b)
	nodes := benchQueryNodes(b, e)
	set := benchShardSet(b, e, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := set.SearchAll(context.Background(), nodes, core.MaxRank, core.BatchOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*len(nodes))/b.Elapsed().Seconds(), "queries/sec")
}

// BenchmarkPoolSearch measures single-query scatter-gather latency at 4
// shards (per-shard planning and scoring run concurrently), against
// BenchmarkSearch's single-index latency.
func BenchmarkPoolSearch(b *testing.B) {
	e := benchSetup(b)
	nodes := benchQueryNodes(b, e)
	set := benchShardSet(b, e, 4)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := set.Search(ctx, nodes[i%len(nodes)], core.MaxRank); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExpandAll measures the batch expansion layer with the sharded
// LRU cache on a fresh system: the first pass over the query set is cold,
// every later pass is served from memory, so the steady state this
// benchmark converges to is the cached serving rate.
func BenchmarkExpandAll(b *testing.B) {
	e := benchSetup(b)
	s, err := core.FromWorld(e.world)
	if err != nil {
		b.Fatal(err)
	}
	keywords := make([]string, len(e.queries))
	for i, q := range e.queries {
		keywords[i] = q.Keywords
	}
	opts := core.DefaultExpanderOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ExpandAll(context.Background(), keywords, opts, core.BatchOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	st := s.ExpandCacheStats()
	b.ReportMetric(float64(b.N*len(keywords))/b.Elapsed().Seconds(), "queries/sec")
	b.ReportMetric(100*st.HitRate(), "cacheHit%")
}

// BenchmarkSearchTitleQuery measures one expanded retrieval (the paper's
// real-time requirement for query expansion systems).
func BenchmarkSearchTitleQuery(b *testing.B) {
	e := benchSetup(b)
	q := e.queries[0]
	gt := e.gts[0]
	arts := append(append([]graph.NodeID{}, gt.QueryArticles...), gt.Expansion...)
	titles := make([]string, len(arts))
	for i, a := range arts {
		titles[i] = e.world.Snapshot.Name(a)
	}
	node, ok := search.BuildTitleQuery(q.Keywords, titles, e.system.Engine.Analyzer())
	if !ok {
		b.Fatal("query not buildable")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.system.Engine.Search(node, 15); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEntityLinking measures linking a document's relevant text.
func BenchmarkEntityLinking(b *testing.B) {
	e := benchSetup(b)
	doc := e.world.Collection.Docs()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.system.Linker.LinkMain(doc.Text)
	}
}

// BenchmarkCycleEnumeration measures mining cycles of length <= 5 on the
// largest assembled query graph, the operation the paper reports as the
// key performance challenge (§4).
func BenchmarkCycleEnumeration(b *testing.B) {
	e := benchSetup(b)
	var biggest *core.GroundTruth
	for _, gt := range e.gts {
		if biggest == nil || gt.Graph.Size() > biggest.Graph.Size() {
			biggest = gt
		}
	}
	sub := biggest.Graph.Sub
	var seeds []graph.NodeID
	for _, qa := range biggest.QueryArticles {
		if sid, ok := sub.ToSub[qa]; ok {
			seeds = append(seeds, sid)
		}
	}
	defer b.ReportMetric(float64(sub.NumNodes()), "graphNodes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cycles.Enumerate(sub.Graph, seeds, 5, graph.ExcludeRedirects); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExpandOnline measures the end-to-end online expansion latency —
// the "respond in real time" requirement of the paper's conclusions. The
// system is built with the expansion cache disabled so every iteration
// pays for the full pipeline (BenchmarkExpandAll covers the cached path).
func BenchmarkExpandOnline(b *testing.B) {
	e := benchSetup(b)
	s, err := core.FromWorld(e.world, core.WithExpandCache(0))
	if err != nil {
		b.Fatal(err)
	}
	opts := core.DefaultExpanderOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := e.queries[i%len(e.queries)]
		if _, err := s.Expand(context.Background(), q.Keywords, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorldGeneration measures deterministic world generation.
func BenchmarkWorldGeneration(b *testing.B) {
	cfg := synth.Default()
	cfg.Topics = 10
	cfg.Queries = 10
	for i := 0; i < b.N; i++ {
		if _, err := synth.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- snapshot startup path (internal/store) ----------------------------

// BenchmarkRebuildSystem measures cold startup without a snapshot on the
// default benchmark world: world generation plus system assembly (corpus
// indexing, linker construction). This is the cost every qbench/qgraph run
// used to pay — the baseline BenchmarkLoadSystem is compared against.
func BenchmarkRebuildSystem(b *testing.B) {
	e := benchSetup(b)
	cfg := e.world.Config
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := synth.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.FromWorld(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSaveSystem measures encoding the full serving state plus query
// benchmark into the binary snapshot format.
func BenchmarkSaveSystem(b *testing.B) {
	e := benchSetup(b)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := e.system.Save(&buf, e.queries); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(buf.Len())/(1<<20), "snapshotMiB")
}

// BenchmarkLoadSystem measures snapshot-based startup on the same default
// world as BenchmarkRebuildSystem: decode graph, titles, corpus, index and
// queries, then assemble the engine and linker. The roadmap's serving
// requirement is that this is at least 5x faster than rebuilding
// (world generation + indexing); in practice it is far more.
func BenchmarkLoadSystem(b *testing.B) {
	e := benchSetup(b)
	var buf bytes.Buffer
	if err := e.system.Save(&buf, e.queries); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, qs, err := core.LoadSystem(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if s == nil || len(qs) != len(e.queries) {
			b.Fatal("short load")
		}
	}
}
