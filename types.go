package querygraph

import (
	"github.com/querygraph/querygraph/internal/core"
	"github.com/querygraph/querygraph/internal/corpus"
	"github.com/querygraph/querygraph/internal/eval"
	"github.com/querygraph/querygraph/internal/graph"
	"github.com/querygraph/querygraph/internal/search"
	"github.com/querygraph/querygraph/internal/stats"
	"github.com/querygraph/querygraph/internal/synth"
)

// The facade re-exports the pipeline's data types by alias, so values flow
// between the public API and the reproduction's internals without copying.
// All of them are read-only from the caller's point of view unless a
// method documents otherwise.
type (
	// NodeID identifies one node (article, category or redirect) of the
	// knowledge base.
	NodeID = graph.NodeID

	// Query is one benchmark query: keywords plus relevant document ids.
	Query = core.Query

	// Result is one ranked document: dense doc id plus retrieval score.
	Result = search.Result

	// Expansion is the outcome of expanding one query: the linked
	// entities, the proposed features and the cycle counters.
	Expansion = core.Expansion

	// Feature is one proposed expansion feature with the structural
	// provenance of the cycle that introduced it.
	Feature = core.Feature

	// GroundTruth is the per-query Section 2 artifact: linked sets, the
	// local-search result X(q) and the assembled query graph G(q).
	GroundTruth = core.GroundTruth

	// Analysis bundles every measurement behind the paper's Tables 2-4
	// and Figures 5-9.
	Analysis = core.Analysis

	// AblationRow is one expansion strategy measured over the benchmark.
	AblationRow = core.AblationRow

	// CacheStats reports the expansion cache's counters.
	CacheStats = core.CacheStats

	// CacheOutcome classifies how one Expand request was served by the
	// expansion cache (hit, miss, single-flight dedup, or bypass when
	// caching is disabled); see ExpandObservation.
	CacheOutcome = core.CacheOutcome

	// BatchOptions bounds the concurrency of SearchAll / ExpandAll;
	// Workers <= 0 means GOMAXPROCS.
	BatchOptions = core.BatchOptions

	// Summary is a five-number statistic (min, quartiles, max, mean).
	Summary = stats.Summary

	// Document is one ingestable metadata record — an ImageCLEF <image>
	// element (the paper's Figure 2 schema). Backend.Ingest indexes each
	// document's relevant text (Section 2.1 extraction) into the live delta
	// segment. The ID field is the optional external id; when set it must
	// be unique across the whole collection, base and delta alike.
	Document = corpus.Image

	// DocumentText is one per-language metadata section of a Document.
	DocumentText = corpus.Text

	// Caption is one caption of a DocumentText section, linked to the
	// article it was extracted from.
	Caption = corpus.Caption

	// World is a generated synthetic benchmark world: knowledge base,
	// document collection and query set.
	World = synth.World

	// WorldConfig shapes GenerateWorld; see DefaultWorldConfig.
	WorldConfig = synth.Config
)

// MaxRank is the deepest rank cutoff the paper evaluates (top-15).
const MaxRank = core.MaxRank

// The per-request cache outcomes of ExpandObservation.Cache.
const (
	CacheBypass  = core.CacheBypass
	CacheHit     = core.CacheHit
	CacheMiss    = core.CacheMiss
	CacheDeduped = core.CacheDeduped
)

// DefaultRanks returns the paper's rank cutoffs R = {1, 5, 10, 15}.
func DefaultRanks() []int {
	out := make([]int, len(eval.DefaultRanks))
	copy(out, eval.DefaultRanks)
	return out
}

// Contribution is the paper's relative-improvement measure in percent:
// 100 * (after - before) / before, and 0 when before is 0.
func Contribution(before, after float64) float64 {
	return eval.Contribution(before, after)
}

// PrecisionAt is top-r precision of a ranking against a relevant set.
func PrecisionAt(ranked []int32, relevant []int32, r int) (float64, error) {
	return eval.PrecisionAtR(ranked, eval.NewRelevance(relevant), r)
}

// Summarize computes the five-number summary of a sample.
func Summarize(xs []float64) (Summary, error) { return stats.Summarize(xs) }
