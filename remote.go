package querygraph

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/querygraph/querygraph/internal/core"
	"github.com/querygraph/querygraph/internal/rpc"
	"github.com/querygraph/querygraph/internal/shard"
	"github.com/querygraph/querygraph/internal/trace"
)

// Topology describes a fleet of qshard servers: which shard of the
// partition each serves, on which addresses (first is the primary,
// the rest replicas), and the coordinator's fan-out policy. It is the
// JSON schema of the topology file OpenBackend sniffs alongside
// snapshots and manifests.
type Topology struct {
	// Version is the topology schema version (1).
	Version int `json:"version"`
	// Shards lists one entry per shard slot, ids 0..N-1.
	Shards []TopologyShard `json:"shards"`
	// Policy is the partial-failure policy: "fail" (default — any shard
	// down fails the request with ErrShardUnavailable) or "degrade"
	// (serve the surviving shards' merged ranking alongside an error
	// wrapping ErrPartialResult).
	Policy string `json:"policy,omitempty"`
	// MinShards is the degrade policy's quorum: fewer surviving shards
	// than this fails the request even under "degrade" (default 1).
	MinShards int `json:"min_shards,omitempty"`
	// TimeoutMS bounds each shard RPC attempt (default 2000). The
	// caller's ctx deadline still applies when sooner.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Retries is how many additional attempts a failed shard call gets,
	// rotating through the shard's addresses (default 1).
	Retries int `json:"retries,omitempty"`
	// RetryBackoffMS is the pause before each retry (default 10).
	RetryBackoffMS int `json:"retry_backoff_ms,omitempty"`
	// HedgeAfterMS, when > 0 and a shard has replicas, launches a
	// speculative duplicate of a slow first attempt against a replica
	// after this many milliseconds; the first response wins.
	HedgeAfterMS int `json:"hedge_after_ms,omitempty"`
}

// TopologyShard is one shard slot of a topology.
type TopologyShard struct {
	ID int `json:"id"`
	// Addrs are the host:port addresses serving this shard; the first is
	// the primary, later ones replicas used for retry failover and
	// hedged requests.
	Addrs []string `json:"addrs"`
}

// ReadTopology reads and validates a topology file. Every failure —
// unreadable file, malformed JSON, unknown fields, missing or duplicate
// shard slots, a shard with no addresses, an unknown policy — returns an
// error wrapping ErrBadTopology.
func ReadTopology(path string) (Topology, error) {
	var t Topology
	f, err := os.Open(path)
	if err != nil {
		return t, fmt.Errorf("%w: %v", ErrBadTopology, err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return t, fmt.Errorf("%w: %s: %v", ErrBadTopology, path, err)
	}
	if err := t.validate(); err != nil {
		return t, fmt.Errorf("%w: %s: %v", ErrBadTopology, path, err)
	}
	t.applyDefaults()
	return t, nil
}

func (t *Topology) validate() error {
	if t.Version != 1 {
		return fmt.Errorf("unsupported topology version %d (this build speaks 1)", t.Version)
	}
	if len(t.Shards) == 0 {
		return fmt.Errorf("topology names no shards")
	}
	seen := make([]bool, len(t.Shards))
	for _, sh := range t.Shards {
		if sh.ID < 0 || sh.ID >= len(t.Shards) {
			return fmt.Errorf("shard id %d outside 0..%d", sh.ID, len(t.Shards)-1)
		}
		if seen[sh.ID] {
			return fmt.Errorf("shard id %d appears twice", sh.ID)
		}
		seen[sh.ID] = true
		if len(sh.Addrs) == 0 {
			return fmt.Errorf("shard %d has no addresses", sh.ID)
		}
		for _, a := range sh.Addrs {
			if a == "" {
				return fmt.Errorf("shard %d has an empty address", sh.ID)
			}
		}
	}
	switch t.Policy {
	case "", "fail", "degrade":
	default:
		return fmt.Errorf("unknown policy %q (want \"fail\" or \"degrade\")", t.Policy)
	}
	if t.MinShards < 0 || t.MinShards > len(t.Shards) {
		return fmt.Errorf("min_shards %d outside 0..%d", t.MinShards, len(t.Shards))
	}
	if t.TimeoutMS < 0 || t.Retries < 0 || t.RetryBackoffMS < 0 || t.HedgeAfterMS < 0 {
		return fmt.Errorf("timeout_ms, retries, retry_backoff_ms and hedge_after_ms must be non-negative")
	}
	return nil
}

func (t *Topology) applyDefaults() {
	if t.Policy == "" {
		t.Policy = "fail"
	}
	if t.MinShards == 0 {
		t.MinShards = 1
	}
	if t.TimeoutMS == 0 {
		t.TimeoutMS = 2000
	}
	if t.Retries == 0 {
		t.Retries = 1
	}
	if t.RetryBackoffMS == 0 {
		t.RetryBackoffMS = 10
	}
	// Shards may be listed in any order in the file; index by id.
	ordered := make([]TopologyShard, len(t.Shards))
	for _, sh := range t.Shards {
		ordered[sh.ID] = sh
	}
	t.Shards = ordered
}

// Remote is the fan-out coordinator: a Backend served by a fleet of
// qshard servers named in a topology file. Retrieval scatters the
// stateless plan/top-k protocol across every shard over pooled
// persistent connections — per-shard deadlines, retry-with-backoff
// across replica addresses, optional hedged requests — and merges the
// per-shard rankings by (score desc, global doc asc), bit-identical to
// the in-process Pool when the fleet is healthy. Expansion, linking and
// the accessors route to any single shard (the graph and benchmark are
// replicated), with failover.
//
// Partial failure follows the topology's policy: "fail" turns any
// unreachable shard into an error wrapping ErrShardUnavailable;
// "degrade" serves the surviving shards' merged ranking alongside an
// error wrapping ErrPartialResult (results AND error non-nil — the one
// such pairing in the API).
//
// All methods are safe for concurrent use. After Close — which drains
// in-flight fan-outs, then closes every pooled connection — query-path
// methods return ErrClosed.
//
//qlint:serving
//qlint:observed
type Remote struct {
	topo  Topology
	conns *rpc.ConnPool
	cfg   clientConfig

	// ident is shard 0's handshake identity; the global statistics every
	// top-k request carries.
	ident   rpc.Identity
	queries []Query

	mu       sync.Mutex
	closed   bool
	inflight sync.WaitGroup
}

func (c *Remote) obs() observers { return c.cfg.obs }

// OpenTopology reads a topology file, dials and handshakes every shard
// (partition identity, global statistics and engine configuration must
// agree — the network analogue of the manifest cross-validation), and
// assembles the coordinator. An unreachable shard returns an error
// wrapping ErrShardUnavailable; a fleet that disagrees with its topology
// returns one wrapping ErrBadTopology.
func OpenTopology(path string, opts ...Option) (*Remote, error) {
	var cfg clientConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	topo, err := ReadTopology(path)
	if err != nil {
		return nil, err
	}
	c := &Remote{
		topo:  topo,
		cfg:   cfg,
		conns: rpc.NewConnPool(time.Duration(topo.TimeoutMS) * time.Millisecond),
	}
	if err := c.handshake(); err != nil {
		c.conns.CloseAll()
		return nil, err
	}
	return c, nil
}

// handshake validates every shard against the topology and caches shard
// 0's identity and the replicated benchmark.
func (c *Remote) handshake() error {
	n := len(c.topo.Shards)
	idents := make([]rpc.Identity, n)
	for i, sh := range c.topo.Shards {
		payload, err := c.callShard(nil, sh, rpc.OpHealthz, nil)
		if err != nil {
			return err
		}
		r := rpc.NewReader(payload)
		idents[i] = rpc.ReadIdentity(r)
		if err := r.Done(); err != nil {
			return fmt.Errorf("%w: shard %d handshake: %v", ErrBadTopology, sh.ID, err)
		}
	}
	ref := idents[0]
	for i, id := range idents {
		switch {
		case id.ShardID != i:
			return fmt.Errorf("%w: the server at shard slot %d identifies as shard %d", ErrBadTopology, i, id.ShardID)
		case id.ShardCount != n:
			return fmt.Errorf("%w: shard %d belongs to a %d-shard partition, topology has %d", ErrBadTopology, i, id.ShardCount, n)
		case id.GlobalDocs != ref.GlobalDocs || id.GlobalTokens != ref.GlobalTokens:
			return fmt.Errorf("%w: shard %d global statistics (%d docs, %d tokens) disagree with shard 0 (%d, %d); mixed generations?",
				ErrBadTopology, i, id.GlobalDocs, id.GlobalTokens, ref.GlobalDocs, ref.GlobalTokens)
		case id.Mu != ref.Mu || id.IncludeKeywordTerms != ref.IncludeKeywordTerms ||
			id.RemoveStopwords != ref.RemoveStopwords || id.Stem != ref.Stem:
			return fmt.Errorf("%w: shard %d engine configuration disagrees with shard 0; mixed generations?", ErrBadTopology, i)
		}
	}
	c.ident = ref
	payload, err := c.anyShard(nil, rpc.OpQueries, nil)
	if err != nil {
		return err
	}
	r := rpc.NewReader(payload)
	qs := rpc.ReadQueries(r)
	if err := r.Done(); err != nil {
		return fmt.Errorf("%w: benchmark fetch: %v", ErrBadTopology, err)
	}
	c.queries = make([]Query, len(qs))
	for i, q := range qs {
		c.queries[i] = Query(q)
	}
	return nil
}

// NumShards returns the fleet's shard count (0 once closed).
func (c *Remote) NumShards() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0
	}
	return len(c.topo.Shards)
}

// shardCount is the Shards coordinate of observations, mirroring the
// other runtimes (0 once closed).
func (c *Remote) shardCount() int { return c.NumShards() }

// Close retires the coordinator: query-path methods start failing with
// ErrClosed, in-flight fan-outs (including hedges) drain, then every
// pooled connection is closed. Idempotent.
func (c *Remote) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.inflight.Wait()
	c.conns.CloseAll()
	return nil
}

// begin gates a query path: it fails with ErrClosed after Close, and
// otherwise registers the request with the in-flight drain. The returned
// func must be called when the request finishes.
func (c *Remote) begin() (func(), error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	c.inflight.Add(1)
	return c.inflight.Done, nil
}

// --- the RPC core ------------------------------------------------------

// ctxErr is ctx.Err() tolerating the nil ctx of the ctx-less accessors
// (Link, Title, Stats — the Backend contract carries no context there).
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// attemptDeadline bounds one RPC attempt: the per-shard topology timeout,
// or the caller's ctx deadline when sooner.
func (c *Remote) attemptDeadline(ctx context.Context) time.Time {
	d := time.Now().Add(time.Duration(c.topo.TimeoutMS) * time.Millisecond)
	if ctx != nil {
		if cd, ok := ctx.Deadline(); ok && cd.Before(d) {
			return cd
		}
	}
	return d
}

// doRPC performs one observed attempt against one address. Every
// attempt — first try, retry, or hedge — lands one span on the request
// trace with its shard, attempt number and dialed address, and carries
// the trace ID to the shard in the v2 request header so server-side
// work is attributable to this request.
func (c *Remote) doRPC(ctx context.Context, shardID int, addr string, op rpc.Op, body []byte, deadline time.Time, attempt int, hedged bool) ([]byte, error) {
	tr := trace.FromContext(ctx)
	start := time.Now()
	payload, err := c.rawRPC(addr, op, body, deadline, uint64(tr.ID()))
	c.obs().rpc(start, shardID, addr, op.String(), attempt, hedged, err)
	if tr != nil {
		tr.Add("rpc:"+op.String(), start, shardID, attempt, hedged, ErrorClass(err), addr)
	}
	return payload, err
}

func (c *Remote) rawRPC(addr string, op rpc.Op, body []byte, deadline time.Time, traceID uint64) ([]byte, error) {
	conn, err := c.conns.Get(addr)
	if err != nil {
		return nil, err
	}
	payload, err := conn.Do(op, body, deadline, traceID)
	c.conns.Put(conn)
	return payload, err
}

// abortErr classifies an attempt failure: a non-nil return is an
// application error the whole request aborts with (bad query, bad
// options, the caller's own dead ctx); nil means "this shard failed" —
// retry, fail over, or apply the partial-failure policy.
func abortErr(ctx context.Context, err error) error {
	var rerr *rpc.RemoteError
	if errors.As(err, &rerr) {
		switch rerr.Class {
		case rpc.ClassInvalidQuery:
			return fmt.Errorf("%w: %s", ErrInvalidQuery, rerr.Msg)
		case rpc.ClassInvalidOptions:
			return fmt.Errorf("%w: %s", ErrInvalidOptions, rerr.Msg)
		}
		// timeout / canceled / closed / internal: the shard (or its
		// deadline) failed this attempt, not the request — unless the
		// caller's own ctx is what expired, checked below.
	}
	if cerr := ctxErr(ctx); cerr != nil {
		return cerr
	}
	return nil
}

// callShard performs one logical call against a shard: up to 1+Retries
// attempts rotating through the shard's addresses with backoff, hedging
// the first attempt to a replica when configured. Application errors
// abort immediately; exhausting every attempt returns an error wrapping
// ErrShardUnavailable.
func (c *Remote) callShard(ctx context.Context, sh TopologyShard, op rpc.Op, body []byte) ([]byte, error) {
	var lastErr error
	backoff := time.Duration(c.topo.RetryBackoffMS) * time.Millisecond
	for attempt := 0; attempt <= c.topo.Retries; attempt++ {
		if attempt > 0 && backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		if cerr := ctxErr(ctx); cerr != nil {
			return nil, cerr
		}
		addr := sh.Addrs[attempt%len(sh.Addrs)]
		deadline := c.attemptDeadline(ctx)
		var payload []byte
		var err error
		if attempt == 0 && c.topo.HedgeAfterMS > 0 && len(sh.Addrs) > 1 {
			payload, err = c.attemptHedged(ctx, sh.ID, addr, sh.Addrs[1], op, body, deadline)
		} else {
			payload, err = c.doRPC(ctx, sh.ID, addr, op, body, deadline, attempt, false)
		}
		if err == nil {
			return payload, nil
		}
		if aerr := abortErr(ctx, err); aerr != nil {
			return nil, aerr
		}
		lastErr = err
	}
	return nil, fmt.Errorf("%w: shard %d after %d attempts: %v", ErrShardUnavailable, sh.ID, c.topo.Retries+1, lastErr)
}

// attemptHedged races the primary against a delayed speculative request
// to a replica; the first success wins and the loser is left to finish
// on its own connection (tracked by the in-flight drain, so Close never
// strands it).
func (c *Remote) attemptHedged(ctx context.Context, shardID int, primary, replica string, op rpc.Op, body []byte, deadline time.Time) ([]byte, error) {
	type result struct {
		payload []byte
		err     error
	}
	ch := make(chan result, 2)
	run := func(addr string, hedged bool) {
		defer c.inflight.Done()
		p, e := c.doRPC(ctx, shardID, addr, op, body, deadline, 0, hedged)
		ch <- result{p, e}
	}
	// Add while the calling request still holds its own in-flight count,
	// so the Add can never race a Close that already started Waiting at
	// zero.
	c.inflight.Add(1)
	go run(primary, false)
	pending := 1
	hedge := time.NewTimer(time.Duration(c.topo.HedgeAfterMS) * time.Millisecond)
	defer hedge.Stop()
	var firstErr error
	for {
		select {
		case res := <-ch:
			if res.err == nil {
				return res.payload, nil
			}
			if firstErr == nil {
				firstErr = res.err
			}
			if pending--; pending == 0 {
				return nil, firstErr
			}
		case <-hedge.C:
			c.inflight.Add(1)
			pending++
			go run(replica, true)
		}
	}
}

// anyShard performs one logical call against any single shard — the
// routing for everything answered by the replicated state (expansion,
// linking, stats, benchmark): shard 0 first, failing over through the
// rest. Application errors abort; only when every shard is unavailable
// does the last ErrShardUnavailable surface.
func (c *Remote) anyShard(ctx context.Context, op rpc.Op, body []byte) ([]byte, error) {
	var lastErr error
	for i := range c.topo.Shards {
		payload, err := c.callShard(ctx, c.topo.Shards[i], op, body)
		if err == nil {
			return payload, nil
		}
		if !errors.Is(err, ErrShardUnavailable) {
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// --- scatter-gather ----------------------------------------------------

// shardState tracks one shard through a scatter: its plan-phase result
// and whether it has been dropped under the degrade policy.
type shardState struct {
	cfs     []int64
	ok      bool
	dropped bool
}

// scatter runs the two-phase distributed search for one encoded query:
// plan every shard's leaves and local collection frequencies, aggregate
// to global statistics, score every surviving shard under them, and
// merge. ok=false means the query (an expansion) had nothing to search
// for. dropped counts shards lost to the degrade policy; the fail policy
// never drops (it errors).
func (c *Remote) scatter(ctx context.Context, queryBody []byte, k int) (rs []Result, ok bool, dropped int, err error) {
	n := len(c.topo.Shards)
	states := make([]shardState, n)
	errs := make([]error, n)
	tr := trace.FromContext(ctx)

	planStart := time.Now()
	c.eachShard(func(i int) {
		payload, err := c.callShard(ctx, c.topo.Shards[i], rpc.OpPlan, queryBody)
		if err != nil {
			errs[i] = err
			return
		}
		r := rpc.NewReader(payload)
		if r.Byte() == 0 {
			if err := r.Done(); err != nil {
				errs[i] = fmt.Errorf("shard %d plan: %w", i, err)
			}
			return
		}
		m := r.Int()
		cfs := make([]int64, 0, m)
		for j := 0; j < m; j++ {
			cfs = append(cfs, int64(r.Uvarint()))
		}
		if err := r.Done(); err != nil {
			errs[i] = fmt.Errorf("shard %d plan: %w", i, err)
			return
		}
		states[i].ok = true
		states[i].cfs = cfs
	})
	if dropped, err = c.applyPolicy(states, errs); err != nil {
		tr.Span("plan", planStart, ErrorClass(err))
		return nil, false, 0, err
	}
	tr.Span("plan", planStart, "")

	// Searchable and leaf structure must agree across survivors — they
	// derive it from the same replicated analyzer and graph.
	aggStart := time.Now()
	first := -1
	for i := range states {
		if !states[i].dropped {
			first = i
			break
		}
	}
	if !states[first].ok {
		return nil, false, dropped, nil
	}
	leafCF := make([]int64, len(states[first].cfs))
	for i := range states {
		if states[i].dropped {
			continue
		}
		if !states[i].ok || len(states[i].cfs) != len(leafCF) {
			return nil, false, 0, fmt.Errorf("shard %d planned %d leaves, shard %d planned %d: fleet disagrees on query structure",
				first, len(leafCF), i, len(states[i].cfs))
		}
		for j, cf := range states[i].cfs {
			leafCF[j] += cf
		}
	}

	topkBody := make([]byte, 0, len(queryBody)+16+10*len(leafCF))
	topkBody = append(topkBody, queryBody...)
	topkBody = rpc.AppendVarint(topkBody, int64(k))
	topkBody = rpc.AppendUvarint(topkBody, uint64(c.ident.GlobalTokens))
	topkBody = rpc.AppendUvarint(topkBody, uint64(len(leafCF)))
	for _, cf := range leafCF {
		topkBody = rpc.AppendUvarint(topkBody, uint64(cf))
	}
	tr.Span("aggregate", aggStart, "")

	topkStart := time.Now()
	locals := make([][]Result, n)
	c.eachShard(func(i int) {
		if states[i].dropped {
			return
		}
		payload, err := c.callShard(ctx, c.topo.Shards[i], rpc.OpTopK, topkBody)
		if err != nil {
			errs[i] = err
			return
		}
		r := rpc.NewReader(payload)
		if r.Byte() == 0 {
			errs[i] = fmt.Errorf("shard %d: plan phase was searchable, top-k phase was not", i)
			return
		}
		locals[i] = rpc.ReadResults(r)
		if err := r.Done(); err != nil {
			errs[i] = fmt.Errorf("shard %d topk: %w", i, err)
		}
	})
	if dropped, err = c.applyPolicy(states, errs); err != nil {
		tr.Span("topk", topkStart, ErrorClass(err))
		return nil, false, 0, err
	}
	tr.Span("topk", topkStart, "")

	mergeStart := time.Now()
	merged := make([][]Result, 0, n)
	for i := range states {
		if !states[i].dropped {
			merged = append(merged, locals[i])
		}
	}
	rs = shard.MergeRanked(merged, k)
	tr.Span("merge", mergeStart, "")
	return rs, true, dropped, nil
}

// applyPolicy folds per-shard errors into the partial-failure policy:
// application errors abort (in shard order, deterministically); shard
// failures abort under "fail", or drop the shard under "degrade" as long
// as the surviving quorum holds. It returns the total dropped count.
func (c *Remote) applyPolicy(states []shardState, errs []error) (dropped int, err error) {
	for i, e := range errs {
		if e != nil && !errors.Is(e, ErrShardUnavailable) {
			return 0, e
		}
		if e != nil && c.topo.Policy != "degrade" {
			return 0, e
		}
		if e != nil {
			states[i].dropped = true
			errs[i] = nil
		}
	}
	survivors := 0
	for i := range states {
		if !states[i].dropped {
			survivors++
		} else {
			dropped++
		}
	}
	if survivors < c.topo.MinShards {
		return 0, fmt.Errorf("%w: %d of %d shards unavailable, quorum needs %d survivors",
			ErrShardUnavailable, dropped, len(states), c.topo.MinShards)
	}
	return dropped, nil
}

// eachShard runs fn concurrently over every shard index and waits.
func (c *Remote) eachShard(fn func(i int)) {
	n := len(c.topo.Shards)
	if n == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// partialErr builds the degraded-response error (results stay attached).
func (c *Remote) partialErr(dropped int) error {
	return fmt.Errorf("%w: served by %d of %d shards", ErrPartialResult, len(c.topo.Shards)-dropped, len(c.topo.Shards))
}

// --- the Backend surface -----------------------------------------------

// Search is Client.Search served by the fleet: same contract, same
// ranking. Under the "degrade" policy a response missing shards returns
// the surviving ranking AND an error wrapping ErrPartialResult.
func (c *Remote) Search(ctx context.Context, query string, k int) ([]Result, error) {
	start := time.Now()
	rs, shards, err := c.searchText(ctx, query, k)
	c.obs().search(start, k, shards, false, err)
	return rs, err
}

// SearchInto is Search reusing dst's storage for the returned ranking
// (dst may be nil). The network round trip still allocates decode
// buffers — the zero-allocation steady state is a *Client property — but
// the contract (results copied into dst, nothing retained) is identical.
func (c *Remote) SearchInto(ctx context.Context, query string, k int, dst []Result) ([]Result, error) {
	start := time.Now()
	rs, shards, err := c.searchText(ctx, query, k)
	if err == nil || errors.Is(err, ErrPartialResult) {
		if dst != nil || rs == nil {
			rs = append(dst[:0], rs...)
		}
	}
	c.obs().search(start, k, shards, false, err)
	return rs, err
}

// Ingest implements Backend. The remote coordinator is read-only: the
// shard servers own their snapshots, so ingest against a fleet goes to
// the shards themselves. Every call fails with a typed ErrReadOnly
// (ErrClosed once closed, ctx.Err() on a dead context).
func (c *Remote) Ingest(ctx context.Context, docs []Document) (IngestStats, error) {
	start := time.Now()
	shards, err := c.readOnlyCall(ctx)
	c.obs().ingest(start, len(docs), 0, shards, err)
	return IngestStats{}, err
}

// Compact implements Backend; read-only like Ingest — compaction is a
// per-shard-server operation, not a coordinator one.
func (c *Remote) Compact(ctx context.Context) (CompactStats, error) {
	start := time.Now()
	shards, err := c.readOnlyCall(ctx)
	c.obs().compact(start, 0, 0, shards, err)
	return CompactStats{}, err
}

// readOnlyCall is the shared gate of the write-path stubs: dead context,
// then closed coordinator, then the typed read-only refusal.
func (c *Remote) readOnlyCall(ctx context.Context) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	done, err := c.begin()
	if err != nil {
		return 0, err
	}
	defer done()
	return len(c.topo.Shards), ErrReadOnly
}

func (c *Remote) searchText(ctx context.Context, query string, k int) ([]Result, int, error) {
	done, err := c.begin()
	if err != nil {
		return nil, 0, err
	}
	defer done()
	shards := len(c.topo.Shards)
	if err := ctx.Err(); err != nil {
		return nil, shards, err
	}
	rs, _, dropped, err := c.scatter(ctx, rpc.AppendTextQuery(nil, query), k)
	if err != nil {
		return nil, shards, err
	}
	if dropped > 0 {
		return rs, shards, c.partialErr(dropped)
	}
	return rs, shards, nil
}

// SearchAll is Client.SearchAll served by the fleet: every query in the
// batch runs its own scatter on a bounded worker pool. A degraded item
// degrades the whole batch (results kept, error wraps ErrPartialResult).
func (c *Remote) SearchAll(ctx context.Context, queries []string, k int, opts BatchOptions) ([][]Result, error) {
	start := time.Now()
	rss, shards, err := c.searchAll(ctx, queries, k, opts)
	c.obs().batch(start, BatchSearch, len(queries), k, shards, err)
	return rss, err
}

func (c *Remote) searchAll(ctx context.Context, queries []string, k int, opts BatchOptions) ([][]Result, int, error) {
	done, err := c.begin()
	if err != nil {
		return nil, 0, err
	}
	defer done()
	shards := len(c.topo.Shards)
	if err := ctx.Err(); err != nil {
		return nil, shards, err
	}
	out := make([][]Result, len(queries))
	var partial atomic.Bool
	err = core.ForEach(ctx, len(queries), opts.Workers, func(i int) error {
		rs, _, dropped, err := c.scatter(ctx, rpc.AppendTextQuery(nil, queries[i]), k)
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
		if dropped > 0 {
			partial.Store(true)
		}
		out[i] = rs
		return nil
	})
	if err != nil {
		return nil, shards, err
	}
	if partial.Load() {
		return out, shards, fmt.Errorf("%w: batch served degraded", ErrPartialResult)
	}
	return out, shards, nil
}

// Expand is Client.Expand served by the fleet: the pipeline runs on one
// shard's replicated graph (shard 0, failing over through the rest),
// memoized in that shard's expansion cache.
func (c *Remote) Expand(ctx context.Context, keywords string, opts ...ExpandOption) (*Expansion, error) {
	start := time.Now()
	exp, outcome, shards, err := c.expand(ctx, keywords, opts)
	c.obs().expand(start, outcome, exp, shards, err)
	return exp, err
}

func (c *Remote) expand(ctx context.Context, keywords string, opts []ExpandOption) (*Expansion, CacheOutcome, int, error) {
	done, err := c.begin()
	if err != nil {
		return nil, CacheBypass, 0, err
	}
	defer done()
	shards := len(c.topo.Shards)
	if err := ctx.Err(); err != nil {
		return nil, CacheBypass, shards, err
	}
	eopts, err := normalizeExpandOptions(opts)
	if err != nil {
		return nil, CacheBypass, shards, err
	}
	exp, outcome, err := c.expandRemote(ctx, keywords, eopts)
	return exp, outcome, shards, err
}

func (c *Remote) expandRemote(ctx context.Context, keywords string, eopts core.ExpanderOptions) (*Expansion, CacheOutcome, error) {
	tr := trace.FromContext(ctx)
	start := time.Now()
	body := rpc.AppendString(nil, keywords)
	body = rpc.AppendExpanderOptions(body, eopts)
	payload, err := c.anyShard(ctx, rpc.OpExpand, body)
	if err != nil {
		if tr != nil {
			tr.Add("expand", start, -1, 0, false, ErrorClass(err), "")
		}
		return nil, CacheBypass, err
	}
	r := rpc.NewReader(payload)
	outcome := CacheOutcome(r.Byte())
	exp := rpc.ReadExpansion(r)
	if err := r.Done(); err != nil {
		return nil, CacheBypass, fmt.Errorf("expand response: %w", err)
	}
	if tr != nil {
		// The serving shard's cache outcome rides in the span detail —
		// the per-request view of the expand-cache lookup.
		tr.Add("expand", start, -1, 0, false, "", outcome.String())
	}
	return exp, outcome, nil
}

// ExpandAll is Client.ExpandAll served by the fleet: per-keyword remote
// expansions on a bounded worker pool, deduplicated by the serving
// shard's single-flight cache.
func (c *Remote) ExpandAll(ctx context.Context, keywords []string, bopts BatchOptions, opts ...ExpandOption) ([]*Expansion, error) {
	start := time.Now()
	exps, shards, err := c.expandAll(ctx, keywords, bopts, opts)
	c.obs().batch(start, BatchExpand, len(keywords), 0, shards, err)
	return exps, err
}

func (c *Remote) expandAll(ctx context.Context, keywords []string, bopts BatchOptions, opts []ExpandOption) ([]*Expansion, int, error) {
	done, err := c.begin()
	if err != nil {
		return nil, 0, err
	}
	defer done()
	shards := len(c.topo.Shards)
	if err := ctx.Err(); err != nil {
		return nil, shards, err
	}
	eopts, err := normalizeExpandOptions(opts)
	if err != nil {
		return nil, shards, err
	}
	out := make([]*Expansion, len(keywords))
	err = core.ForEach(ctx, len(keywords), bopts.Workers, func(i int) error {
		exp, _, err := c.expandRemote(ctx, keywords[i], eopts)
		if err != nil {
			return fmt.Errorf("keywords %d: %w", i, err)
		}
		out[i] = exp
		return nil
	})
	if err != nil {
		return nil, shards, err
	}
	return out, shards, nil
}

// SearchExpansion is Client.SearchExpansion served by the fleet: the
// expansion's keywords and article list travel to every shard, which
// rebuilds the expanded title query on its replicated graph and scores
// its slice. ok=false means the expansion had nothing to search for.
func (c *Remote) SearchExpansion(ctx context.Context, exp *Expansion, k int) (results []Result, ok bool, err error) {
	start := time.Now()
	rs, ok, shards, err := c.searchExpansion(ctx, exp, k)
	c.obs().search(start, k, shards, true, err)
	return rs, ok, err
}

func (c *Remote) searchExpansion(ctx context.Context, exp *Expansion, k int) ([]Result, bool, int, error) {
	done, err := c.begin()
	if err != nil {
		return nil, false, 0, err
	}
	defer done()
	shards := len(c.topo.Shards)
	if err := ctx.Err(); err != nil {
		return nil, false, shards, err
	}
	rs, ok, dropped, err := c.scatter(ctx, rpc.AppendExpansionQuery(nil, exp), k)
	if err != nil {
		return nil, false, shards, err
	}
	if !ok {
		return nil, false, shards, nil
	}
	if dropped > 0 {
		return rs, true, shards, c.partialErr(dropped)
	}
	return rs, true, shards, nil
}

// SearchExpansions is Client.SearchExpansions served by the fleet;
// expansions with nothing to search for keep a nil ranking.
func (c *Remote) SearchExpansions(ctx context.Context, exps []*Expansion, k int, opts BatchOptions) ([][]Result, error) {
	start := time.Now()
	rss, shards, err := c.searchExpansions(ctx, exps, k, opts)
	c.obs().batch(start, BatchSearchExpansions, len(exps), k, shards, err)
	return rss, err
}

func (c *Remote) searchExpansions(ctx context.Context, exps []*Expansion, k int, opts BatchOptions) ([][]Result, int, error) {
	done, err := c.begin()
	if err != nil {
		return nil, 0, err
	}
	defer done()
	shards := len(c.topo.Shards)
	if err := ctx.Err(); err != nil {
		return nil, shards, err
	}
	out := make([][]Result, len(exps))
	var partial atomic.Bool
	err = core.ForEach(ctx, len(exps), opts.Workers, func(i int) error {
		rs, ok, dropped, err := c.scatter(ctx, rpc.AppendExpansionQuery(nil, exps[i]), k)
		if err != nil {
			return fmt.Errorf("expansion %d: %w", i, err)
		}
		if dropped > 0 {
			partial.Store(true)
		}
		if ok {
			out[i] = rs
		}
		return nil
	})
	if err != nil {
		return nil, shards, err
	}
	if partial.Load() {
		return out, shards, fmt.Errorf("%w: batch served degraded", ErrPartialResult)
	}
	return out, shards, nil
}

// Link computes L(q.k) against any shard's replicated graph (nil on
// failure or once closed — the ctx-less accessor contract).
func (c *Remote) Link(keywords string) []Entity {
	done, err := c.begin()
	if err != nil {
		return nil
	}
	defer done()
	payload, err := c.anyShard(nil, rpc.OpLink, rpc.AppendString(nil, keywords))
	if err != nil {
		return nil
	}
	r := rpc.NewReader(payload)
	n := r.Int()
	out := make([]Entity, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Entity{ID: NodeID(r.Uvarint()), Title: r.String()})
	}
	if r.Done() != nil {
		return nil
	}
	return out
}

// Title resolves a node id on any shard's replicated graph ("" on
// failure or once closed).
func (c *Remote) Title(id NodeID) string {
	done, err := c.begin()
	if err != nil {
		return ""
	}
	defer done()
	payload, err := c.anyShard(nil, rpc.OpTitle, rpc.AppendUvarint(nil, uint64(id)))
	if err != nil {
		return ""
	}
	r := rpc.NewReader(payload)
	title := r.String()
	if r.Done() != nil {
		return ""
	}
	return title
}

// Queries returns the benchmark fetched from the fleet at open time
// (replicated into every shard).
func (c *Remote) Queries() []Query {
	out := make([]Query, len(c.queries))
	copy(out, c.queries)
	return out
}

// Stats reports the fleet's serving-state summary, fetched from any
// shard (the graph and benchmark are replicated; Documents is the global
// count). Zero once closed or when no shard answers.
func (c *Remote) Stats() Stats {
	done, err := c.begin()
	if err != nil {
		return Stats{}
	}
	defer done()
	payload, err := c.anyShard(nil, rpc.OpStats, nil)
	if err != nil {
		return Stats{}
	}
	r := rpc.NewReader(payload)
	st := Stats{
		Articles:         r.Int(),
		Redirects:        r.Int(),
		Categories:       r.Int(),
		Links:            r.Int(),
		Documents:        r.Int(),
		BenchmarkQueries: r.Int(),
		Cache: CacheStats{
			Hits:     r.Uvarint(),
			Misses:   r.Uvarint(),
			Deduped:  r.Uvarint(),
			Entries:  r.Int(),
			Capacity: r.Int(),
		},
	}
	if r.Done() != nil {
		return Stats{}
	}
	return st
}

// CacheStats reports the expansion-cache counters of the shard currently
// serving expansions (zero once closed or when no shard answers).
func (c *Remote) CacheStats() CacheStats { return c.Stats().Cache }
