package querygraph

import (
	"bytes"
	"context"
	"errors"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// testClient builds one small world per test binary; the client is
// read-only afterwards (except for its internal cache, which is safe for
// concurrent use).
var (
	clientOnce sync.Once
	testC      *Client
)

func client(t *testing.T) *Client {
	t.Helper()
	clientOnce.Do(func() {
		cfg := DefaultWorldConfig()
		cfg.Topics = 8
		cfg.ArticlesPerTopic = 12
		cfg.DocsPerTopic = 20
		cfg.Queries = 10
		cfg.NoiseVocab = 80
		w, err := GenerateWorld(cfg)
		if err != nil {
			panic(err)
		}
		c, err := Build(w)
		if err != nil {
			panic(err)
		}
		testC = c
	})
	return testC
}

func TestOpenReaderBadSnapshot(t *testing.T) {
	_, err := OpenReader(strings.NewReader("definitely not a snapshot"))
	if !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("err = %v, want ErrBadSnapshot", err)
	}
	// Truncated but correctly-prefixed bytes are also a bad snapshot.
	c := client(t)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	_, err = OpenReader(bytes.NewReader(buf.Bytes()[:buf.Len()/2]))
	if !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("truncated snapshot err = %v, want ErrBadSnapshot", err)
	}
}

func TestOpenMissingFilePassesThroughOSError(t *testing.T) {
	_, err := Open("/definitely/not/a/real/path.qgs")
	if err == nil || errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("err = %v, want a plain file-system error", err)
	}
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want os.ErrNotExist", err)
	}
}

func TestSaveOpenRoundTrip(t *testing.T) {
	ctx := context.Background()
	c := client(t)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := OpenReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(loaded.Queries()), len(c.Queries()); got != want {
		t.Fatalf("loaded %d benchmark queries, want %d", got, want)
	}
	q := c.Queries()[0]
	r1, err := c.Search(ctx, q.Keywords, MaxRank)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := loaded.Search(ctx, q.Keywords, MaxRank)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("loaded client ranks differently:\nbuilt:  %v\nloaded: %v", r1, r2)
	}
}

// TestPreCancelledContext is the acceptance contract: a Client call with
// an already-cancelled context returns ctx.Err() without running the
// pipeline.
func TestPreCancelledContext(t *testing.T) {
	c := client(t)
	q := c.Queries()[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	before := c.CacheStats()
	calls := []struct {
		name string
		run  func() error
	}{
		{"Search", func() error { _, err := c.Search(ctx, q.Keywords, 5); return err }},
		{"SearchAll", func() error { _, err := c.SearchAll(ctx, []string{q.Keywords}, 5, BatchOptions{}); return err }},
		{"Expand", func() error { _, err := c.Expand(ctx, q.Keywords); return err }},
		{"ExpandAll", func() error { _, err := c.ExpandAll(ctx, []string{q.Keywords}, BatchOptions{}); return err }},
		{"SearchExpansion", func() error { _, _, err := c.SearchExpansion(ctx, &Expansion{Keywords: q.Keywords}, 5); return err }},
		{"SearchExpansions", func() error { _, err := c.SearchExpansions(ctx, nil, 5, BatchOptions{}); return err }},
		{"Evaluate", func() error { _, _, err := c.Evaluate(ctx, q.Keywords, nil, q.Relevant); return err }},
		{"GroundTruth", func() error { _, err := c.GroundTruth(ctx, q, GroundTruthOptions{}); return err }},
		{"GroundTruths", func() error { _, err := c.GroundTruths(ctx, c.Queries(), GroundTruthOptions{}); return err }},
		{"Analyze", func() error { _, err := c.Analyze(ctx, AnalyzeOptions{}); return err }},
		{"CompareExpanders", func() error { _, err := c.CompareExpanders(ctx, AblationOptions{}); return err }},
		{"MineCycles", func() error { _, err := c.MineCycles(ctx, &GroundTruth{}, 5); return err }},
	}
	for _, call := range calls {
		if err := call.run(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", call.name, err)
		}
	}
	after := c.CacheStats()
	if before != after {
		t.Errorf("pre-cancelled calls touched the expansion cache: %+v -> %+v", before, after)
	}
}

func TestSearchInvalidQuery(t *testing.T) {
	c := client(t)
	ctx := context.Background()
	for _, bad := range []string{"#combine(unclosed", "#1(", ""} {
		if _, err := c.Search(ctx, bad, 5); !errors.Is(err, ErrInvalidQuery) {
			t.Errorf("Search(%q): err = %v, want ErrInvalidQuery", bad, err)
		}
	}
	if _, err := c.SearchAll(ctx, []string{"fine", "#combine("}, 5, BatchOptions{}); !errors.Is(err, ErrInvalidQuery) {
		t.Errorf("SearchAll with one bad query: err = %v, want ErrInvalidQuery", err)
	}
}

func TestExpandOptionValidation(t *testing.T) {
	c := client(t)
	ctx := context.Background()
	kw := c.Queries()[0].Keywords
	bad := []struct {
		name string
		opt  ExpandOption
	}{
		{"inverted band", WithCategoryRatioBand(0.6, 0.2)},
		{"band above 1", WithCategoryRatioBand(0.2, 1.5)},
		{"negative band", WithCategoryRatioBand(-0.1, 0.5)},
		{"cycle len too small", WithMaxCycleLen(1)},
		{"cycle len too large", WithMaxCycleLen(9)},
		{"zero radius", WithRadius(0)},
		{"zero neighborhood", WithMaxNeighborhood(0)},
		{"density above 1", WithMinDensity(1.5)},
		{"negative density", WithMinDensity(-0.5)},
		{"zero features", WithMaxFeatures(0)},
	}
	for _, tc := range bad {
		if _, err := c.Expand(ctx, kw, tc.opt); !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("%s: err = %v, want ErrInvalidOptions", tc.name, err)
		}
		if _, err := c.ExpandAll(ctx, []string{kw}, BatchOptions{}, tc.opt); !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("%s (batch): err = %v, want ErrInvalidOptions", tc.name, err)
		}
	}
}

// TestExplicitBandSurvivesNormalization pins the satellite fix: an
// explicit all-zero category-ratio band used to be indistinguishable from
// "unset" and was silently replaced by the paper band; through the public
// options it survives as given.
func TestExplicitBandSurvivesNormalization(t *testing.T) {
	got, err := normalizeExpandOptions([]ExpandOption{WithCategoryRatioBand(0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if got.MinCategoryRatio != 0 || got.MaxCategoryRatio != 0 || !got.ExplicitBand {
		t.Fatalf("band = [%g, %g] (explicit=%v), want explicit [0, 0]",
			got.MinCategoryRatio, got.MaxCategoryRatio, got.ExplicitBand)
	}
	// [0, 0.5] — the half-explicit case — also survives.
	got, err = normalizeExpandOptions([]ExpandOption{WithCategoryRatioBand(0, 0.5)})
	if err != nil {
		t.Fatal(err)
	}
	if got.MinCategoryRatio != 0 || got.MaxCategoryRatio != 0.5 {
		t.Fatalf("band = [%g, %g], want [0, 0.5]", got.MinCategoryRatio, got.MaxCategoryRatio)
	}
	// No options at all resolve to the paper defaults, two-cycles kept.
	got, err = normalizeExpandOptions(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.MinCategoryRatio != 0.2 || got.MaxCategoryRatio != 0.5 || !got.KeepTwoCycles {
		t.Fatalf("defaults = %+v, want the paper band [0.2, 0.5] with two-cycles kept", got)
	}
	// WithMinDensity(0) disables the filter rather than re-enabling the
	// internal 0.25 default.
	got, err = normalizeExpandOptions([]ExpandOption{WithMinDensity(0)})
	if err != nil {
		t.Fatal(err)
	}
	if got.MinDensity > 0 {
		t.Fatalf("MinDensity = %g after WithMinDensity(0), want the filter disabled", got.MinDensity)
	}
}

func TestExpandAndSearchExpansion(t *testing.T) {
	c := client(t)
	ctx := context.Background()
	for _, q := range c.Queries() {
		exp, err := c.Expand(ctx, q.Keywords)
		if err != nil {
			t.Fatalf("Expand(%q): %v", q.Keywords, err)
		}
		if exp.Keywords != q.Keywords {
			t.Fatalf("expansion echoes %q, want %q", exp.Keywords, q.Keywords)
		}
		rs, ok, err := c.SearchExpansion(ctx, exp, MaxRank)
		if err != nil {
			t.Fatalf("SearchExpansion(%q): %v", q.Keywords, err)
		}
		if ok && len(rs) == 0 {
			t.Errorf("SearchExpansion(%q): ok with zero results", q.Keywords)
		}
	}
}

func TestExpandAllMatchesExpand(t *testing.T) {
	c := client(t)
	ctx := context.Background()
	keywords := make([]string, 0, len(c.Queries()))
	for _, q := range c.Queries() {
		keywords = append(keywords, q.Keywords)
	}
	batch, err := c.ExpandAll(ctx, keywords, BatchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, kw := range keywords {
		one, err := c.Expand(ctx, kw)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch[i].FeatureTitles(), one.FeatureTitles()) {
			t.Errorf("batch[%d] features diverge from single expand", i)
		}
	}
}

func TestSearchExpansionsAlignment(t *testing.T) {
	c := client(t)
	ctx := context.Background()
	qs := c.Queries()
	exps := make([]*Expansion, 0, len(qs)+1)
	for _, q := range qs[:3] {
		exp, err := c.Expand(ctx, q.Keywords)
		if err != nil {
			t.Fatal(err)
		}
		exps = append(exps, exp)
	}
	// An unexpandable entry must keep its slot (nil ranking), not shift
	// the batch.
	exps = append(exps, &Expansion{Keywords: ""})
	rs, err := c.SearchExpansions(ctx, exps, MaxRank, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(exps) {
		t.Fatalf("got %d rankings for %d expansions", len(rs), len(exps))
	}
	if rs[len(rs)-1] != nil {
		t.Errorf("unexpandable entry got a ranking")
	}
	for i := range exps[:3] {
		single, ok, err := c.SearchExpansion(ctx, exps[i], MaxRank)
		if err != nil || !ok {
			t.Fatalf("single search %d: ok=%v err=%v", i, ok, err)
		}
		if !reflect.DeepEqual(rs[i], single) {
			t.Errorf("batch ranking %d diverges from single", i)
		}
	}
}

func TestAnalyzeNoBenchmark(t *testing.T) {
	c := client(t)
	bare := &Client{}          // a client whose snapshot carried no benchmark
	bare.st.Store(c.st.Load()) //qlint:ignore atomicguard constructor: bare has not escaped, no concurrent writer exists yet
	ctx := context.Background()
	if _, err := bare.Analyze(ctx, AnalyzeOptions{}); !errors.Is(err, ErrNoBenchmark) {
		t.Errorf("Analyze err = %v, want ErrNoBenchmark", err)
	}
	if _, err := bare.CompareExpanders(ctx, AblationOptions{}); !errors.Is(err, ErrNoBenchmark) {
		t.Errorf("CompareExpanders err = %v, want ErrNoBenchmark", err)
	}
}

func TestGroundTruthAndCycles(t *testing.T) {
	c := client(t)
	ctx := context.Background()
	gt, err := c.GroundTruth(ctx, c.Queries()[0], GroundTruthOptions{Seed: 1, MaxIterations: 8, MaxEvaluations: 800})
	if err != nil {
		t.Fatal(err)
	}
	if gt.Graph == nil || gt.Graph.Size() == 0 {
		t.Fatal("ground truth carries no query graph")
	}
	cs, err := c.MineCycles(ctx, gt, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, cy := range cs {
		if cy.Length < 2 || cy.Length > 5 {
			t.Errorf("cycle length %d outside [2, 5]", cy.Length)
		}
		if len(cy.Titles) != cy.Length || len(cy.IsCategory) != cy.Length {
			t.Errorf("cycle metadata misaligned: %d titles / %d flags for length %d",
				len(cy.Titles), len(cy.IsCategory), cy.Length)
		}
		for _, title := range cy.Titles {
			if title == "" {
				t.Error("cycle node with empty title")
			}
		}
	}
	var dot bytes.Buffer
	if err := c.WriteQueryGraphDOT(&dot, gt, "q0"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot.String(), "q0") {
		t.Error("DOT output misses the graph name")
	}
}

func TestLinkAndEvaluate(t *testing.T) {
	c := client(t)
	ctx := context.Background()
	q := c.Queries()[0]
	ents := c.Link(q.Keywords)
	if len(ents) == 0 {
		t.Fatalf("Link(%q) found no entities", q.Keywords)
	}
	ids := make([]NodeID, len(ents))
	for i, e := range ents {
		ids[i] = e.ID
		if e.Title == "" || c.Title(e.ID) != e.Title {
			t.Errorf("entity %v title mismatch", e.ID)
		}
	}
	score, ranked, err := c.Evaluate(ctx, q.Keywords, ids, q.Relevant)
	if err != nil {
		t.Fatal(err)
	}
	if score < 0 || score > 1 {
		t.Errorf("objective %g outside [0, 1]", score)
	}
	if len(ranked) > MaxRank {
		t.Errorf("ranked %d docs, want at most %d", len(ranked), MaxRank)
	}
}
