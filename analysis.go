package querygraph

import (
	"context"
	"fmt"
	"io"

	"github.com/querygraph/querygraph/internal/core"
	"github.com/querygraph/querygraph/internal/cycles"
	"github.com/querygraph/querygraph/internal/eval"
	"github.com/querygraph/querygraph/internal/graph"
	"github.com/querygraph/querygraph/internal/groundtruth"
)

func newRelevance(docs []int32) eval.Relevance { return eval.NewRelevance(docs) }

// GroundTruthOptions controls the Section 2 ground-truth construction.
// The zero value is valid: seed 0, default search budgets, GOMAXPROCS
// workers.
type GroundTruthOptions struct {
	// Seed drives the ADD/REMOVE/SWAP local search; the effective
	// per-query seed is Seed + the query id, so queries are independent
	// and the whole build is reproducible.
	Seed int64
	// MaxIterations caps improvement rounds (<= 0 means the default 64).
	MaxIterations int
	// MaxEvaluations caps objective calls (<= 0 means the default 20000).
	MaxEvaluations int
	// Workers bounds the parallel fan-out over queries; <= 0 means
	// GOMAXPROCS.
	Workers int
}

func (o GroundTruthOptions) coreConfig() core.GroundTruthConfig {
	return core.GroundTruthConfig{
		Search: groundtruth.Config{
			Seed:           o.Seed,
			MaxIterations:  o.MaxIterations,
			MaxEvaluations: o.MaxEvaluations,
		},
		Workers: o.Workers,
	}
}

// GroundTruth runs the full Section 2 pipeline for one query: entity-link
// the keywords and the relevant documents, search for X(q), and assemble
// the query graph. A done ctx returns ctx.Err() before any work.
func (c *Client) GroundTruth(ctx context.Context, q Query, opts GroundTruthOptions) (*GroundTruth, error) {
	if err := c.ready(ctx); err != nil {
		return nil, err
	}
	return c.cur().sys.BuildGroundTruth(ctx, q, opts.coreConfig())
}

// GroundTruths fans the per-query pipeline out over a bounded worker pool
// and returns the artifacts in query order. Cancelling ctx stops
// scheduling and returns ctx.Err().
func (c *Client) GroundTruths(ctx context.Context, qs []Query, opts GroundTruthOptions) ([]*GroundTruth, error) {
	if err := c.ready(ctx); err != nil {
		return nil, err
	}
	return c.cur().sys.BuildAllGroundTruths(ctx, qs, opts.coreConfig())
}

// AnalyzeOptions controls Analyze. The zero value reproduces the paper's
// configuration over the loaded benchmark.
type AnalyzeOptions struct {
	// GroundTruth configures the Section 2 construction the analysis is
	// built on.
	GroundTruth GroundTruthOptions
	// MaxCycleLen caps cycle enumeration (<= 0 means 5, the paper's
	// bound).
	MaxCycleLen int
	// Fig9Bins is the bucket count of the density/contribution scatter
	// (<= 0 means 10).
	Fig9Bins int
	// Workers bounds the per-query fan-out; <= 0 means GOMAXPROCS.
	Workers int
}

// Analyze reproduces the paper's complete evaluation — every measurement
// behind Tables 2-4 and Figures 5, 6, 7a, 7b and 9 — over the client's
// loaded query benchmark: it builds the per-query ground truths, then runs
// the cycle analysis. Returns ErrNoBenchmark when the client has no
// benchmark queries; cancelling ctx stops the per-query fan-out and
// returns ctx.Err().
func (c *Client) Analyze(ctx context.Context, opts AnalyzeOptions) (*Analysis, error) {
	if err := c.ready(ctx); err != nil {
		return nil, err
	}
	if len(c.queries) == 0 {
		return nil, ErrNoBenchmark
	}
	gtOpts := opts.GroundTruth
	if gtOpts.Workers <= 0 {
		gtOpts.Workers = opts.Workers
	}
	gts, err := c.GroundTruths(ctx, c.queries, gtOpts)
	if err != nil {
		return nil, err
	}
	return c.cur().sys.Analyze(ctx, gts, core.AnalysisConfig{
		MaxCycleLen: opts.MaxCycleLen,
		Fig9Bins:    opts.Fig9Bins,
		Workers:     opts.Workers,
	})
}

// AblationOptions controls CompareExpanders.
type AblationOptions struct {
	// MaxFeatures caps every strategy's feature count for a fair fight
	// (<= 0 means 10).
	MaxFeatures int
	// Workers bounds the per-query fan-out; <= 0 means GOMAXPROCS.
	Workers int
}

// CompareExpanders measures the expansion strategies of the design
// document's ablations over the loaded benchmark: no expansion, naive
// 1-hop links, the paper-tuned cycle expander, the expander with filters
// off, frequency ranking and redirect aliases. Returns ErrNoBenchmark when
// the client has no benchmark queries.
func (c *Client) CompareExpanders(ctx context.Context, opts AblationOptions) ([]AblationRow, error) {
	if err := c.ready(ctx); err != nil {
		return nil, err
	}
	if len(c.queries) == 0 {
		return nil, ErrNoBenchmark
	}
	return c.cur().sys.CompareExpanders(ctx, c.queries, core.AblationConfig{
		MaxFeatures: opts.MaxFeatures,
		Workers:     opts.Workers,
	})
}

// Cycle is one mined cycle of a query graph, in the paper's Section 3
// vocabulary.
type Cycle struct {
	// Length is the number of edges (== nodes) of the cycle.
	Length int
	// Titles are the node titles in cycle order; IsCategory flags which
	// of them are categories.
	Titles     []string
	IsCategory []bool
	// Articles are the knowledge-base ids of the cycle's article nodes —
	// the candidate expansion features it proposes.
	Articles []NodeID
	// CategoryRatio is the fraction of category nodes; ExtraEdgeDensity
	// is the density of edges beyond the cycle itself.
	CategoryRatio    float64
	ExtraEdgeDensity float64
}

// MineCycles enumerates the cycles of a ground truth's query graph that
// contain a query article (up to maxLen edges; <= 0 means 5, the paper's
// bound) and measures each one. A done ctx returns ctx.Err() before any
// work.
func (c *Client) MineCycles(ctx context.Context, gt *GroundTruth, maxLen int) ([]Cycle, error) {
	if err := c.ready(ctx); err != nil {
		return nil, err
	}
	if maxLen <= 0 {
		maxLen = 5
	}
	snap := c.cur().sys.Snapshot
	sub := gt.Graph.Sub
	var seeds []NodeID
	for _, qa := range gt.QueryArticles {
		if sid, ok := sub.ToSub[qa]; ok {
			seeds = append(seeds, sid)
		}
	}
	cs, err := cycles.Enumerate(sub.Graph, seeds, maxLen, graph.ExcludeRedirects)
	if err != nil {
		return nil, fmt.Errorf("querygraph: mine cycles: %w", err)
	}
	out := make([]Cycle, 0, len(cs))
	for _, cy := range cs {
		m, err := cycles.Measure(sub.Graph, cy, graph.ExcludeRedirects)
		if err != nil {
			return nil, fmt.Errorf("querygraph: mine cycles: %w", err)
		}
		info := Cycle{
			Length:           m.Length,
			Titles:           make([]string, len(cy.Nodes)),
			IsCategory:       make([]bool, len(cy.Nodes)),
			CategoryRatio:    m.CategoryRatio,
			ExtraEdgeDensity: m.ExtraEdgeDensity,
		}
		for i, n := range cy.Nodes {
			info.Titles[i] = snap.Name(sub.ToParent[n])
			info.IsCategory[i] = sub.Kind(n) == graph.Category
		}
		for _, n := range cycles.ArticlesOf(sub.Graph, cy) {
			info.Articles = append(info.Articles, sub.ToParent[n])
		}
		out = append(out, info)
	}
	return out, nil
}

// WriteQueryGraphDOT renders a ground truth's query graph G(q) in Graphviz
// DOT format with article titles as labels.
func (c *Client) WriteQueryGraphDOT(w io.Writer, gt *GroundTruth, name string) error {
	sub := gt.Graph.Sub
	snap := c.cur().sys.Snapshot
	label := func(n NodeID) string { return snap.Name(sub.ToParent[n]) }
	return sub.Graph.WriteDOT(w, name, label)
}
