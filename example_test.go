package querygraph_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"

	querygraph "github.com/querygraph/querygraph"
)

// exampleClient builds a small deterministic world; real deployments call
// querygraph.Open("world.qgs") instead and skip the build entirely.
func exampleClient() *querygraph.Client {
	cfg := querygraph.DefaultWorldConfig()
	cfg.Topics = 10
	cfg.DocsPerTopic = 30
	cfg.Queries = 10
	world, err := querygraph.GenerateWorld(cfg)
	if err != nil {
		panic(err)
	}
	client, err := querygraph.Build(world)
	if err != nil {
		panic(err)
	}
	return client
}

// Build a client from a generated world, expand one benchmark query with
// the paper-tuned cycle miner and run the expanded retrieval.
func Example() {
	client := exampleClient()
	ctx := context.Background()

	query := client.Queries()[0]
	expansion, err := client.Expand(ctx, query.Keywords)
	if err != nil {
		panic(err)
	}
	fmt.Printf("entities linked: %d\n", len(expansion.QueryArticles))
	fmt.Printf("cycles: %d considered, %d accepted\n",
		expansion.CyclesConsidered, expansion.CyclesAccepted)
	fmt.Printf("features proposed: %d\n", len(expansion.Features))

	results, ok, err := client.SearchExpansion(ctx, expansion, 5)
	if err != nil || !ok {
		panic(fmt.Sprint(ok, err))
	}
	fmt.Printf("top results: %d\n", len(results))
	// Output:
	// entities linked: 3
	// cycles: 2383 considered, 1007 accepted
	// features proposed: 10
	// top results: 5
}

// Save a serving snapshot and reopen it: the reopened client serves
// bit-identical rankings, which is the build-once / serve-instantly
// deployment path.
func ExampleOpenReader() {
	client := exampleClient()
	ctx := context.Background()

	var snapshot bytes.Buffer
	if err := client.Save(&snapshot); err != nil {
		panic(err)
	}
	reopened, err := querygraph.OpenReader(&snapshot)
	if err != nil {
		panic(err)
	}

	query := client.Queries()[0].Keywords
	a, _ := client.Search(ctx, query, 3)
	b, _ := reopened.Search(ctx, query, 3)
	fmt.Printf("identical rankings: %v\n", fmt.Sprint(a) == fmt.Sprint(b))
	// Output: identical rankings: true
}

// Expansion options are functional and validated: invalid values fail
// loudly with ErrInvalidOptions instead of silently falling back.
func ExampleClient_Expand_options() {
	client := exampleClient()
	ctx := context.Background()
	keywords := client.Queries()[0].Keywords

	_, err := client.Expand(ctx, keywords,
		querygraph.WithCategoryRatioBand(0.9, 0.1))
	fmt.Println("invalid band rejected:", errors.Is(err, querygraph.ErrInvalidOptions))

	wide, err := client.Expand(ctx, keywords,
		querygraph.WithCategoryRatioBand(0, 1),
		querygraph.WithMinDensity(0),
		querygraph.WithMaxFeatures(3))
	if err != nil {
		panic(err)
	}
	fmt.Printf("filters off keeps every cycle: %v\n",
		wide.CyclesAccepted == wide.CyclesConsidered)
	fmt.Printf("feature budget respected: %v\n", len(wide.Features) <= 3)
	// Output:
	// invalid band rejected: true
	// filters off keeps every cycle: true
	// feature budget respected: true
}

// A context that is already done never reaches the pipeline.
func ExampleClient_Search_cancellation() {
	client := exampleClient()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	_, err := client.Search(ctx, "venice", 5)
	fmt.Println(errors.Is(err, context.Canceled))
	// Output: true
}

// Any runtime behind the Backend contract serves the typed requests: one
// value carries the query, depth and per-request deadline, and K > 0 on
// an ExpandRequest attaches the expanded retrieval.
func ExampleExpandRequest() {
	var backend querygraph.Backend = exampleClient() // or OpenBackend(path)
	defer backend.Close()
	ctx := context.Background()

	resp, err := querygraph.ExpandRequest{
		Keywords: backend.Queries()[0].Keywords,
		Options:  []querygraph.ExpandOption{querygraph.WithMaxFeatures(5)},
		K:        5,
	}.Do(ctx, backend)
	if err != nil {
		panic(err)
	}
	fmt.Printf("features: %d\n", len(resp.Expansion.Features))
	fmt.Printf("expanded retrieval attached: %v\n", resp.Searched && len(resp.Results) == 5)

	// After Close, every query path reports ErrClosed.
	backend.Close()
	_, err = querygraph.SearchRequest{Query: "anything", K: 3}.Do(ctx, backend)
	fmt.Println("closed backend classified:", errors.Is(err, querygraph.ErrClosed))
	// Output:
	// features: 5
	// expanded retrieval attached: true
	// closed backend classified: true
}

// Search accepts the INDRI-style operators the paper's queries use.
func ExampleClient_Search() {
	client := exampleClient()
	ctx := context.Background()

	// A bad query is reported as ErrInvalidQuery with the parser detail.
	_, err := client.Search(ctx, "#combine(unclosed", 5)
	fmt.Println("parse failure classified:", errors.Is(err, querygraph.ErrInvalidQuery))

	// An entity title as an exact phrase.
	title := client.Link(client.Queries()[0].Keywords)[0].Title
	results, err := client.Search(ctx, "#1("+strings.ToLower(title)+")", 5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("phrase query matched: %v\n", len(results) > 0)
	// Output:
	// parse failure classified: true
	// phrase query matched: true
}
