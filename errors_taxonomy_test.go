package querygraph

import (
	"context"
	"errors"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// sentinelClasses is the full taxonomy: every public sentinel and the
// stable ErrorClass label instrumentation sees for it. Adding a
// sentinel to errors.go without extending this table (and ErrorClass)
// fails TestErrorClassTaxonomy, so the Observer label set can never
// silently lag the error surface.
var sentinelClasses = map[string]struct {
	err   error
	class string
}{
	"ErrBadSnapshot":      {ErrBadSnapshot, "bad_snapshot"},
	"ErrInvalidOptions":   {ErrInvalidOptions, "invalid_options"},
	"ErrInvalidQuery":     {ErrInvalidQuery, "invalid_query"},
	"ErrNoBenchmark":      {ErrNoBenchmark, "no_benchmark"},
	"ErrBadManifest":      {ErrBadManifest, "bad_manifest"},
	"ErrClosed":           {ErrClosed, "closed"},
	"ErrBadTopology":      {ErrBadTopology, "bad_topology"},
	"ErrShardUnavailable": {ErrShardUnavailable, "shard_unavailable"},
	"ErrPartialResult":    {ErrPartialResult, "partial_result"},
	"ErrReadOnly":         {ErrReadOnly, "read_only"},
	"ErrDeltaFull":        {ErrDeltaFull, "delta_full"},
}

// declaredSentinels parses errors.go and returns every package-level
// Err* variable it declares — the mechanical source of truth the
// taxonomy is checked against.
func declaredSentinels(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "errors.go", nil, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing errors.go: %v", err)
	}
	var names []string
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				if len(name.Name) > 3 && name.Name[:3] == "Err" {
					names = append(names, name.Name)
				}
			}
		}
	}
	if len(names) == 0 {
		t.Fatal("errors.go declares no Err* sentinels; the parser or the file moved")
	}
	return names
}

// TestErrorClassTaxonomy pins the sentinel → ErrorClass mapping both
// ways: every sentinel declared in errors.go must be classified (new
// sentinels fail until a class is chosen), every table entry must still
// be declared, classes must be distinct, never "internal"/"", and
// wrapping must not change the class.
func TestErrorClassTaxonomy(t *testing.T) {
	declared := declaredSentinels(t)

	seen := make(map[string]bool)
	for _, name := range declared {
		entry, ok := sentinelClasses[name]
		if !ok {
			t.Errorf("sentinel %s is declared in errors.go but not classified: add it to sentinelClasses and to ErrorClass (and metricClasses)", name)
			continue
		}
		seen[name] = true

		if got := ErrorClass(entry.err); got != entry.class {
			t.Errorf("ErrorClass(%s) = %q, want %q", name, got, entry.class)
		}
		wrapped := fmt.Errorf("outer: %w", fmt.Errorf("%w: detail", entry.err))
		if got := ErrorClass(wrapped); got != entry.class {
			t.Errorf("ErrorClass(wrapped %s) = %q, want %q — wrapping must not change the class", name, got, entry.class)
		}
		if entry.class == "internal" || entry.class == "" {
			t.Errorf("%s maps to %q; every sentinel needs a class of its own", name, entry.class)
		}
	}
	for name := range sentinelClasses {
		if !seen[name] {
			t.Errorf("sentinelClasses entry %s is not declared in errors.go; remove it", name)
		}
	}

	// Classes are distinct labels (a shared label would make two error
	// surfaces indistinguishable in metrics).
	byClass := make(map[string]string)
	for name, entry := range sentinelClasses {
		if prev, dup := byClass[entry.class]; dup {
			t.Errorf("sentinels %s and %s share class %q", prev, name, entry.class)
		}
		byClass[entry.class] = name
	}

	// Every sentinel class is a metrics label: classIndex must resolve
	// it to its own counter slot, not the catch-all internal slot.
	for name, entry := range sentinelClasses {
		if metricClasses[classIndex(entry.class)] != entry.class {
			t.Errorf("class %q (sentinel %s) is missing from metricClasses: its errors would be counted as internal", entry.class, name)
		}
	}

	// The non-sentinel classes stay pinned too.
	fixed := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{context.DeadlineExceeded, "timeout"},
		{context.Canceled, "canceled"},
		{errors.New("anything else"), "internal"},
	}
	for _, tc := range fixed {
		if got := ErrorClass(tc.err); got != tc.want {
			t.Errorf("ErrorClass(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}
