// Quickstart: generate a small synthetic world, expand one query with the
// cycle-based expander, and inspect the proposed expansion features.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/querygraph/querygraph/internal/core"
	"github.com/querygraph/querygraph/internal/synth"
)

func main() {
	log.SetFlags(0)

	// 1. A deterministic world: Wikipedia-shaped knowledge base, an
	//    ImageCLEF-shaped document collection and a query benchmark.
	cfg := synth.Default()
	cfg.Topics = 10
	cfg.DocsPerTopic = 30
	cfg.Queries = 10
	world, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Assemble the system: index the collection, build the engine and
	//    the entity linker.
	system, err := core.FromWorld(world)
	if err != nil {
		log.Fatal(err)
	}
	stats := world.Snapshot.Stats()
	fmt.Printf("knowledge base: %d articles, %d redirects, %d categories\n",
		stats.Articles, stats.Redirects, stats.Categories)
	fmt.Printf("collection: %d documents\n\n", world.Collection.Len())

	// 3. Expand a benchmark query with the paper's findings: mine cycles of
	//    length <= 5 around the query entities and keep the dense ones with
	//    a category ratio around 30%.
	query := world.Queries[0]
	fmt.Printf("query: %q\n", query.Keywords)

	expansion, err := system.Expand(query.Keywords, core.DefaultExpanderOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("linked entities:\n")
	for _, id := range expansion.QueryArticles {
		fmt.Printf("  - %s\n", world.Snapshot.Name(id))
	}
	fmt.Printf("cycles: %d considered, %d accepted by the structural filters\n",
		expansion.CyclesConsidered, expansion.CyclesAccepted)
	fmt.Printf("expansion features:\n")
	for _, f := range expansion.Features {
		fmt.Printf("  - %-30s (from a length-%d cycle, density %.2f, category ratio %.2f)\n",
			f.Title, f.CycleLen, f.Density, f.CategoryRatio)
	}

	// 4. Run the expanded query.
	node, ok := expansion.Query(system)
	if !ok {
		log.Fatal("query not expandable")
	}
	results, err := system.Engine.Search(node, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop results (doc id, score):\n")
	for i, r := range results {
		relevant := ""
		for _, d := range query.Relevant {
			if d == r.Doc {
				relevant = "  [relevant]"
				break
			}
		}
		fmt.Printf("  %2d. doc %-6d %.3f%s\n", i+1, r.Doc, r.Score, relevant)
	}
}
