// Quickstart: build (or load) a small synthetic world through the public
// querygraph API, expand one query with the cycle-based expander, and
// inspect the proposed expansion features. Serving goes through the
// unified querygraph.Backend contract, so the same code drives a built
// client, a loaded snapshot, or a sharded pool.
//
// Run: go run ./examples/quickstart
//
// The serving state can be persisted and restored through the binary
// snapshot subsystem:
//
//	go run ./examples/quickstart -save world.qgs            # build once
//	go run ./examples/quickstart -load world.qgs            # serve instantly
//	go run ./examples/quickstart -load DIR/manifest.json    # sharded pool
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	querygraph "github.com/querygraph/querygraph"
)

func main() {
	log.SetFlags(0)
	loadPath := flag.String("load", "", "load a serving artifact (.qgs snapshot or shard manifest.json) instead of generating")
	savePath := flag.String("save", "", "after generating, save the serving state to this .qgs file")
	flag.Parse()
	ctx := context.Background()

	var backend querygraph.Backend
	if *loadPath != "" {
		// 1b. Load a previously saved serving state: OpenBackend sniffs
		//     whether the path is a single snapshot or a shard manifest and
		//     returns the matching runtime behind the one Backend contract.
		start := time.Now()
		be, err := querygraph.OpenBackend(*loadPath)
		if err != nil {
			log.Fatal(err)
		}
		backend = be
		fmt.Printf("loaded %s in %v\n", *loadPath, time.Since(start).Round(time.Millisecond))
	} else {
		// 1. A deterministic world: Wikipedia-shaped knowledge base, an
		//    ImageCLEF-shaped document collection and a query benchmark.
		cfg := querygraph.DefaultWorldConfig()
		cfg.Topics = 10
		cfg.DocsPerTopic = 30
		cfg.Queries = 10
		world, err := querygraph.GenerateWorld(cfg)
		if err != nil {
			log.Fatal(err)
		}

		// 2. Assemble the client: index the collection, build the engine
		//    and the entity linker.
		client, err := querygraph.Build(world)
		if err != nil {
			log.Fatal(err)
		}
		if *savePath != "" {
			f, err := os.Create(*savePath)
			if err != nil {
				log.Fatal(err)
			}
			if err := client.Save(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("saved serving state to %s\n", *savePath)
		}
		backend = client
	}
	defer backend.Close()
	stats := backend.Stats()
	fmt.Printf("knowledge base: %d articles, %d redirects, %d categories\n",
		stats.Articles, stats.Redirects, stats.Categories)
	fmt.Printf("collection: %d documents\n\n", stats.Documents)
	queries := backend.Queries()
	if len(queries) == 0 {
		log.Fatal("no benchmark queries available")
	}

	// 3. Expand a benchmark query with the paper's findings — mine cycles
	//    of length <= 5 around the query entities and keep the dense ones
	//    with a category ratio around 30% — and run the expanded retrieval
	//    in the same typed request (K > 0 attaches the top documents).
	query := queries[0]
	fmt.Printf("query: %q\n", query.Keywords)

	resp, err := querygraph.ExpandRequest{Keywords: query.Keywords, K: 10}.Do(ctx, backend)
	if err != nil {
		log.Fatal(err)
	}
	expansion := resp.Expansion
	fmt.Printf("linked entities:\n")
	for _, id := range expansion.QueryArticles {
		fmt.Printf("  - %s\n", backend.Title(id))
	}
	fmt.Printf("cycles: %d considered, %d accepted by the structural filters\n",
		expansion.CyclesConsidered, expansion.CyclesAccepted)
	fmt.Printf("expansion features:\n")
	for _, f := range expansion.Features {
		fmt.Printf("  - %-30s (from a length-%d cycle, density %.2f, category ratio %.2f)\n",
			f.Title, f.CycleLen, f.Density, f.CategoryRatio)
	}

	// 4. The expanded retrieval rode along in the request.
	if !resp.Searched {
		log.Fatal("query not expandable")
	}
	fmt.Printf("\ntop results (doc id, score), expanded in %v:\n", resp.Took.Round(time.Millisecond))
	for i, r := range resp.Results {
		relevant := ""
		for _, d := range query.Relevant {
			if d == r.Doc {
				relevant = "  [relevant]"
				break
			}
		}
		fmt.Printf("  %2d. doc %-6d %.3f%s\n", i+1, r.Doc, r.Score, relevant)
	}
}
