// Groundtruthlab: the Section 2 pipeline end to end — build X(q) for every
// benchmark query via the ADD/REMOVE/SWAP local search and print the
// Table 2-style precision statistics of the resulting ground truth.
// Everything runs through the public querygraph API.
//
// Run: go run ./examples/groundtruthlab [-load world.qgs]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	querygraph "github.com/querygraph/querygraph"
)

func main() {
	log.SetFlags(0)
	loadPath := flag.String("load", "", "load a binary world snapshot (qgen -out FILE.qgs) instead of generating")
	flag.Parse()
	ctx := context.Background()

	var (
		client *querygraph.Client
		err    error
	)
	if *loadPath != "" {
		client, err = querygraph.Open(*loadPath)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		cfg := querygraph.DefaultWorldConfig()
		cfg.Queries = 20 // a fast subset; cmd/qbench runs the full set
		world, gerr := querygraph.GenerateWorld(cfg)
		if gerr != nil {
			log.Fatal(gerr)
		}
		if client, err = querygraph.Build(world); err != nil {
			log.Fatal(err)
		}
	}
	defer client.Close()
	queries := client.Queries()
	if len(queries) > 20 {
		queries = queries[:20] // a fast subset; cmd/qbench runs the full set
	}

	gts, err := client.GroundTruths(ctx, queries, querygraph.GroundTruthOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-4s  %-30s  |L(q.k)|  |L(q.D)|  |A'|  baseline  X(q)\n", "q", "keywords")
	for _, gt := range gts {
		kw := gt.Query.Keywords
		if len(kw) > 30 {
			kw = kw[:27] + "..."
		}
		fmt.Printf("%-4d  %-30s  %8d  %8d  %4d  %8.3f  %.3f\n",
			gt.Query.ID, kw,
			len(gt.QueryArticles), len(gt.Candidates), len(gt.Expansion),
			gt.Baseline, gt.Score)
	}

	fmt.Println("\nground-truth precision (Table 2 of the paper):")
	fmt.Printf("%-7s  %6s  %6s  %6s  %6s  %6s\n", "top-r", "min", "25%", "50%", "75%", "max")
	for _, r := range querygraph.DefaultRanks() {
		vals := make([]float64, len(gts))
		for i, gt := range gts {
			vals[i] = gt.PrecisionAt[r]
		}
		s, err := querygraph.Summarize(vals)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("top-%-3d  %6.3f  %6.3f  %6.3f  %6.3f  %6.3f\n",
			r, s.Min, s.Q1, s.Median, s.Q3, s.Max)
	}
}
