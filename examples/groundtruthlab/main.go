// Groundtruthlab: the Section 2 pipeline end to end — build X(q) for every
// benchmark query via the ADD/REMOVE/SWAP local search and print the
// Table 2-style precision statistics of the resulting ground truth.
//
// Run: go run ./examples/groundtruthlab [-load world.qgs]
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/querygraph/querygraph/internal/core"
	"github.com/querygraph/querygraph/internal/eval"
	"github.com/querygraph/querygraph/internal/groundtruth"
	"github.com/querygraph/querygraph/internal/stats"
	"github.com/querygraph/querygraph/internal/synth"
)

func main() {
	log.SetFlags(0)
	loadPath := flag.String("load", "", "load a binary world snapshot (qgen -out FILE.qgs) instead of generating")
	flag.Parse()

	var (
		system  *core.System
		queries []core.Query
	)
	if *loadPath != "" {
		var err error
		system, queries, err = core.LoadSystemFile(*loadPath)
		if err != nil {
			log.Fatal(err)
		}
		if len(queries) > 20 {
			queries = queries[:20] // a fast subset; cmd/qbench runs the full set
		}
	} else {
		cfg := synth.Default()
		cfg.Queries = 20 // a fast subset; cmd/qbench runs the full set
		world, err := synth.Generate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if system, err = core.FromWorld(world); err != nil {
			log.Fatal(err)
		}
		queries = core.QueriesFromWorld(world)
	}

	gts, err := system.BuildAllGroundTruths(queries, core.GroundTruthConfig{
		Search: groundtruth.Config{Seed: 1},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-4s  %-30s  |L(q.k)|  |L(q.D)|  |A'|  baseline  X(q)\n", "q", "keywords")
	for _, gt := range gts {
		kw := gt.Query.Keywords
		if len(kw) > 30 {
			kw = kw[:27] + "..."
		}
		fmt.Printf("%-4d  %-30s  %8d  %8d  %4d  %8.3f  %.3f\n",
			gt.Query.ID, kw,
			len(gt.QueryArticles), len(gt.Candidates), len(gt.Expansion),
			gt.Baseline, gt.Score)
	}

	fmt.Println("\nground-truth precision (Table 2 of the paper):")
	fmt.Printf("%-7s  %6s  %6s  %6s  %6s  %6s\n", "top-r", "min", "25%", "50%", "75%", "max")
	for _, r := range eval.DefaultRanks {
		vals := make([]float64, len(gts))
		for i, gt := range gts {
			vals[i] = gt.PrecisionAt[r]
		}
		s, err := stats.Summarize(vals)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("top-%-3d  %6.3f  %6.3f  %6.3f  %6.3f  %6.3f\n",
			r, s.Min, s.Q1, s.Median, s.Q3, s.Max)
	}
}
