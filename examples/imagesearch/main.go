// Imagesearch: the paper's motivating scenario — retrieval quality over an
// ImageCLEF-style image-metadata collection, with and without cycle-based
// query expansion, for every benchmark query. Everything runs through the
// public querygraph API.
//
// Run: go run ./examples/imagesearch [-load world.qgs]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	querygraph "github.com/querygraph/querygraph"
)

func main() {
	log.SetFlags(0)
	loadPath := flag.String("load", "", "load a binary world snapshot (qgen -out FILE.qgs) instead of generating")
	flag.Parse()
	ctx := context.Background()

	var (
		client *querygraph.Client
		err    error
	)
	if *loadPath != "" {
		client, err = querygraph.Open(*loadPath)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		world, gerr := querygraph.GenerateWorld(querygraph.DefaultWorldConfig())
		if gerr != nil {
			log.Fatal(gerr)
		}
		if client, err = querygraph.Build(world); err != nil {
			log.Fatal(err)
		}
	}
	defer client.Close()

	fmt.Printf("%-4s  %-34s  %8s  %8s  %8s\n", "q", "keywords", "baseline", "expanded", "gain")
	var baseSum, expSum float64
	n := 0
	for _, q := range client.Queries() {
		// Unexpanded: exact phrases for the linked entities only.
		entities := client.Link(q.Keywords)
		articles := make([]querygraph.NodeID, len(entities))
		for i, e := range entities {
			articles[i] = e.ID
		}
		baseline, _, err := client.Evaluate(ctx, q.Keywords, articles, q.Relevant)
		if err != nil {
			log.Fatal(err)
		}

		// Expanded: add the features mined from dense, category-balanced
		// cycles around the entities (a typed request against the Backend
		// contract the client satisfies).
		resp, err := querygraph.ExpandRequest{Keywords: q.Keywords}.Do(ctx, client)
		if err != nil {
			log.Fatal(err)
		}
		expansion := resp.Expansion
		expandedArts := append([]querygraph.NodeID{}, articles...)
		for _, f := range expansion.Features {
			expandedArts = append(expandedArts, f.Node)
		}
		expanded, _, err := client.Evaluate(ctx, q.Keywords, expandedArts, q.Relevant)
		if err != nil {
			log.Fatal(err)
		}

		kw := q.Keywords
		if len(kw) > 34 {
			kw = kw[:31] + "..."
		}
		fmt.Printf("%-4d  %-34s  %8.3f  %8.3f  %+7.1f%%\n",
			q.ID, kw, baseline, expanded, querygraph.Contribution(baseline, expanded))
		baseSum += baseline
		expSum += expanded
		n++
	}
	fmt.Printf("\nmean objective O over %d queries: baseline %.3f, expanded %.3f (%+.1f%%)\n",
		n, baseSum/float64(n), expSum/float64(n),
		querygraph.Contribution(baseSum/float64(n), expSum/float64(n)))
}
