// Imagesearch: the paper's motivating scenario — retrieval quality over an
// ImageCLEF-style image-metadata collection, with and without cycle-based
// query expansion, for every benchmark query.
//
// Run: go run ./examples/imagesearch
package main

import (
	"fmt"
	"log"

	"github.com/querygraph/querygraph/internal/core"
	"github.com/querygraph/querygraph/internal/eval"
	"github.com/querygraph/querygraph/internal/graph"
	"github.com/querygraph/querygraph/internal/synth"
)

func main() {
	log.SetFlags(0)
	world, err := synth.Generate(synth.Default())
	if err != nil {
		log.Fatal(err)
	}
	system, err := core.FromWorld(world)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-4s  %-34s  %8s  %8s  %8s\n", "q", "keywords", "baseline", "expanded", "gain")
	var baseSum, expSum float64
	n := 0
	for _, q := range world.Queries {
		relevant := eval.NewRelevance(q.Relevant)
		queryArts := system.LinkKeywords(q.Keywords)

		// Unexpanded: exact phrases for the linked entities only.
		baseline, _, err := system.EvaluateArticles(q.Keywords, queryArts, relevant)
		if err != nil {
			log.Fatal(err)
		}

		// Expanded: add the features mined from dense, category-balanced
		// cycles around the entities.
		expansion, err := system.Expand(q.Keywords, core.DefaultExpanderOptions())
		if err != nil {
			log.Fatal(err)
		}
		arts := append([]graph.NodeID{}, queryArts...)
		for _, f := range expansion.Features {
			arts = append(arts, f.Node)
		}
		expanded, _, err := system.EvaluateArticles(q.Keywords, arts, relevant)
		if err != nil {
			log.Fatal(err)
		}

		kw := q.Keywords
		if len(kw) > 34 {
			kw = kw[:31] + "..."
		}
		fmt.Printf("%-4d  %-34s  %8.3f  %8.3f  %+7.1f%%\n",
			q.ID, kw, baseline, expanded, eval.Contribution(baseline, expanded))
		baseSum += baseline
		expSum += expanded
		n++
	}
	fmt.Printf("\nmean objective O over %d queries: baseline %.3f, expanded %.3f (%+.1f%%)\n",
		n, baseSum/float64(n), expSum/float64(n),
		eval.Contribution(baseSum/float64(n), expSum/float64(n)))
}
