// Imagesearch: the paper's motivating scenario — retrieval quality over an
// ImageCLEF-style image-metadata collection, with and without cycle-based
// query expansion, for every benchmark query.
//
// Run: go run ./examples/imagesearch [-load world.qgs]
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/querygraph/querygraph/internal/core"
	"github.com/querygraph/querygraph/internal/eval"
	"github.com/querygraph/querygraph/internal/graph"
	"github.com/querygraph/querygraph/internal/synth"
)

func main() {
	log.SetFlags(0)
	loadPath := flag.String("load", "", "load a binary world snapshot (qgen -out FILE.qgs) instead of generating")
	flag.Parse()

	var (
		system  *core.System
		queries []core.Query
	)
	if *loadPath != "" {
		var err error
		system, queries, err = core.LoadSystemFile(*loadPath)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		world, err := synth.Generate(synth.Default())
		if err != nil {
			log.Fatal(err)
		}
		if system, err = core.FromWorld(world); err != nil {
			log.Fatal(err)
		}
		queries = core.QueriesFromWorld(world)
	}

	fmt.Printf("%-4s  %-34s  %8s  %8s  %8s\n", "q", "keywords", "baseline", "expanded", "gain")
	var baseSum, expSum float64
	n := 0
	for _, q := range queries {
		relevant := eval.NewRelevance(q.Relevant)
		queryArts := system.LinkKeywords(q.Keywords)

		// Unexpanded: exact phrases for the linked entities only.
		baseline, _, err := system.EvaluateArticles(q.Keywords, queryArts, relevant)
		if err != nil {
			log.Fatal(err)
		}

		// Expanded: add the features mined from dense, category-balanced
		// cycles around the entities.
		expansion, err := system.Expand(q.Keywords, core.DefaultExpanderOptions())
		if err != nil {
			log.Fatal(err)
		}
		arts := append([]graph.NodeID{}, queryArts...)
		for _, f := range expansion.Features {
			arts = append(arts, f.Node)
		}
		expanded, _, err := system.EvaluateArticles(q.Keywords, arts, relevant)
		if err != nil {
			log.Fatal(err)
		}

		kw := q.Keywords
		if len(kw) > 34 {
			kw = kw[:31] + "..."
		}
		fmt.Printf("%-4d  %-34s  %8.3f  %8.3f  %+7.1f%%\n",
			q.ID, kw, baseline, expanded, eval.Contribution(baseline, expanded))
		baseSum += baseline
		expSum += expanded
		n++
	}
	fmt.Printf("\nmean objective O over %d queries: baseline %.3f, expanded %.3f (%+.1f%%)\n",
		n, baseSum/float64(n), expSum/float64(n),
		eval.Contribution(baseSum/float64(n), expSum/float64(n)))
}
