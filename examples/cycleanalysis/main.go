// Cycleanalysis: the structural study of Section 3 on one query — assemble
// the query graph, enumerate its cycles, and print the per-cycle
// characteristics (length, category ratio, density of extra edges,
// contribution), in the spirit of the paper's Figures 3, 4 and 8.
//
// Run: go run ./examples/cycleanalysis [-load world.qgs] [query-id]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"github.com/querygraph/querygraph/internal/core"
	"github.com/querygraph/querygraph/internal/cycles"
	"github.com/querygraph/querygraph/internal/eval"
	"github.com/querygraph/querygraph/internal/graph"
	"github.com/querygraph/querygraph/internal/groundtruth"
	"github.com/querygraph/querygraph/internal/synth"
)

func main() {
	log.SetFlags(0)
	loadPath := flag.String("load", "", "load a binary world snapshot (qgen -out FILE.qgs) instead of generating")
	flag.Parse()
	queryID := 3
	if flag.NArg() > 0 {
		id, err := strconv.Atoi(flag.Arg(0))
		if err != nil {
			log.Fatalf("bad query id %q", flag.Arg(0))
		}
		queryID = id
	}

	system, queries, err := buildOrLoad(*loadPath)
	if err != nil {
		log.Fatal(err)
	}
	if queryID < 0 || queryID >= len(queries) {
		log.Fatalf("query id out of range [0, %d)", len(queries))
	}
	q := queries[queryID]

	gt, err := system.BuildGroundTruth(q, core.GroundTruthConfig{
		Search: groundtruth.Config{Seed: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query #%d %q\n", q.ID, q.Keywords)
	fmt.Printf("G(q): %d nodes in %d components; baseline O = %.3f\n\n",
		gt.Graph.Size(), gt.Graph.NumComponents(), gt.Baseline)

	sub := gt.Graph.Sub
	var seeds []graph.NodeID
	for _, qa := range gt.QueryArticles {
		if sid, ok := sub.ToSub[qa]; ok {
			seeds = append(seeds, sid)
		}
	}
	cs, err := cycles.Enumerate(sub.Graph, seeds, 5, graph.ExcludeRedirects)
	if err != nil {
		log.Fatal(err)
	}
	relevant := eval.NewRelevance(q.Relevant)
	fmt.Printf("%-5s  %-55s  %5s  %7s  %8s\n", "len", "cycle", "cats", "density", "contrib")
	for _, c := range cs {
		m, err := cycles.Measure(sub.Graph, c, graph.ExcludeRedirects)
		if err != nil {
			log.Fatal(err)
		}
		// Contribution: add the cycle's articles (ignoring categories, as
		// the paper does) to L(q.k) and re-evaluate.
		arts := append([]graph.NodeID{}, gt.QueryArticles...)
		for _, n := range cycles.ArticlesOf(sub.Graph, c) {
			arts = append(arts, sub.ToParent[n])
		}
		after, _, err := system.EvaluateArticles(q.Keywords, arts, relevant)
		if err != nil {
			log.Fatal(err)
		}
		names := make([]string, len(c.Nodes))
		for i, n := range c.Nodes {
			name := system.Snapshot.Name(sub.ToParent[n])
			if sub.Kind(n) == graph.Category {
				name = "[" + name + "]"
			}
			names[i] = name
		}
		desc := strings.Join(names, " — ")
		if len(desc) > 55 {
			desc = desc[:52] + "..."
		}
		fmt.Printf("%-5d  %-55s  %5d  %7.2f  %+7.1f%%\n",
			m.Length, desc, m.Categories, m.ExtraEdgeDensity,
			eval.Contribution(gt.Baseline, after))
	}
	if len(cs) == 0 {
		fmt.Println("(no cycles around the query articles — try another query)")
	}
}

// buildOrLoad assembles the serving system and queries, decoding a binary
// snapshot when path is given and generating the default world otherwise.
func buildOrLoad(path string) (*core.System, []core.Query, error) {
	if path != "" {
		return core.LoadSystemFile(path)
	}
	world, err := synth.Generate(synth.Default())
	if err != nil {
		return nil, nil, err
	}
	system, err := core.FromWorld(world)
	if err != nil {
		return nil, nil, err
	}
	return system, core.QueriesFromWorld(world), nil
}
