// Cycleanalysis: the structural study of Section 3 on one query — assemble
// the query graph, enumerate its cycles, and print the per-cycle
// characteristics (length, category ratio, density of extra edges,
// contribution), in the spirit of the paper's Figures 3, 4 and 8.
// Everything runs through the public querygraph API.
//
// Run: go run ./examples/cycleanalysis [-load world.qgs] [query-id]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	querygraph "github.com/querygraph/querygraph"
)

func main() {
	log.SetFlags(0)
	loadPath := flag.String("load", "", "load a binary world snapshot (qgen -out FILE.qgs) instead of generating")
	flag.Parse()
	ctx := context.Background()
	queryID := 3
	if flag.NArg() > 0 {
		id, err := strconv.Atoi(flag.Arg(0))
		if err != nil {
			log.Fatalf("bad query id %q", flag.Arg(0))
		}
		queryID = id
	}

	client, err := buildOrLoad(*loadPath)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	queries := client.Queries()
	if queryID < 0 || queryID >= len(queries) {
		log.Fatalf("query id out of range [0, %d)", len(queries))
	}
	q := queries[queryID]

	gt, err := client.GroundTruth(ctx, q, querygraph.GroundTruthOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query #%d %q\n", q.ID, q.Keywords)
	fmt.Printf("G(q): %d nodes in %d components; baseline O = %.3f\n\n",
		gt.Graph.Size(), gt.Graph.NumComponents(), gt.Baseline)

	cycles, err := client.MineCycles(ctx, gt, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-5s  %-55s  %5s  %7s  %8s\n", "len", "cycle", "cats", "density", "contrib")
	for _, c := range cycles {
		// Contribution: add the cycle's articles (ignoring categories, as
		// the paper does) to L(q.k) and re-evaluate.
		arts := append([]querygraph.NodeID{}, gt.QueryArticles...)
		arts = append(arts, c.Articles...)
		after, _, err := client.Evaluate(ctx, q.Keywords, arts, q.Relevant)
		if err != nil {
			log.Fatal(err)
		}
		names := make([]string, len(c.Titles))
		cats := 0
		for i, title := range c.Titles {
			if c.IsCategory[i] {
				names[i] = "[" + title + "]"
				cats++
			} else {
				names[i] = title
			}
		}
		desc := strings.Join(names, " — ")
		if len(desc) > 55 {
			desc = desc[:52] + "..."
		}
		fmt.Printf("%-5d  %-55s  %5d  %7.2f  %+7.1f%%\n",
			c.Length, desc, cats, c.ExtraEdgeDensity,
			querygraph.Contribution(gt.Baseline, after))
	}
	if len(cycles) == 0 {
		fmt.Println("(no cycles around the query articles — try another query)")
	}
}

// buildOrLoad assembles the serving client, decoding a binary snapshot
// when path is given and generating the default world otherwise.
func buildOrLoad(path string) (*querygraph.Client, error) {
	if path != "" {
		return querygraph.Open(path)
	}
	world, err := querygraph.GenerateWorld(querygraph.DefaultWorldConfig())
	if err != nil {
		return nil, err
	}
	return querygraph.Build(world)
}
