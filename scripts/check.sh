#!/usr/bin/env sh
# check.sh — run the CI gates locally, in the same order as
# .github/workflows/ci.yml. Fails fast on the first broken gate.
#
# staticcheck and govulncheck run only when installed (CI pins their
# versions via STATICCHECK_VERSION / GOVULNCHECK_VERSION in ci.yml;
# install the same ones locally with `go install`). Everything else is
# stdlib-only and always runs.
set -eu

cd "$(dirname "$0")/.."

step() {
	echo "==> $*"
}

step gofmt
out="$(gofmt -l .)"
if [ -n "$out" ]; then
	echo "gofmt needed on:" >&2
	echo "$out" >&2
	exit 1
fi

step "go build"
go build ./...

step "go vet"
go vet ./...

step "qlint (serving-stack invariants)"
go run ./cmd/qlint ./...

if command -v staticcheck >/dev/null 2>&1; then
	step staticcheck
	staticcheck ./...
else
	step "staticcheck (skipped: not installed)"
fi

if command -v govulncheck >/dev/null 2>&1; then
	step govulncheck
	govulncheck ./...
else
	step "govulncheck (skipped: not installed)"
fi

step "go test"
go test -shuffle=on ./...

step "flake smoke (close/reload lifecycle, -count=2)"
go test -count=2 -shuffle=on -run '^(TestCloseLifecycle|TestPoolCloseExtras|TestPoolCloseDrainsInFlight|TestCloseConcurrentWithRequests|TestPoolReloadUnderLoad|TestPoolReloadSwitchesWorlds)$' .

echo "all checks passed"
