package querygraph

import (
	"context"
	"fmt"
	"time"

	"github.com/querygraph/querygraph/internal/core"
	"github.com/querygraph/querygraph/internal/corpus"
	"github.com/querygraph/querygraph/internal/index"
	"github.com/querygraph/querygraph/internal/live"
	"github.com/querygraph/querygraph/internal/store"
)

// IngestStats reports the outcome of one Backend.Ingest call.
type IngestStats struct {
	// Ingested is the number of documents admitted by this call (0 when
	// the call failed — the batch is atomic).
	Ingested int `json:"ingested"`
	// DeltaDocs and DeltaBytes describe the delta segment after the call:
	// its document count and pending-compaction text bytes.
	DeltaDocs  int   `json:"delta_docs"`
	DeltaBytes int64 `json:"delta_bytes"`
	// Generation is the serving generation the segment sits above.
	Generation uint64 `json:"generation"`
}

// CompactStats reports the outcome of one Backend.Compact call.
type CompactStats struct {
	// Compacted is the number of delta documents folded into the new
	// generation (0 for the empty-delta no-op).
	Compacted int `json:"compacted"`
	// Documents is the compacted generation's total document count.
	Documents int `json:"documents"`
	// Generation is the sequence number now being served — advanced by a
	// real compaction, unchanged by the no-op and on failure.
	Generation uint64 `json:"generation"`
}

// DeltaStats summarizes the live delta segment inside Stats.
type DeltaStats struct {
	// Documents is the delta segment's current document count.
	Documents int `json:"documents"`
	// PendingBytes is the extracted text volume awaiting compaction.
	PendingBytes int64 `json:"pending_bytes"`
	// Generation is the serving generation the segment sits above.
	Generation uint64 `json:"generation"`
	// Compactions counts this backend's completed non-empty compactions.
	Compactions uint64 `json:"compactions"`
}

// liveConfigOf derives the delta segment's analysis/scoring configuration
// from the serving system it sits above; matching configurations are what
// make merged-statistics scoring equal the monolithic rebuild.
func liveConfigOf(sys *core.System) live.Config {
	an := sys.Engine.Analyzer()
	return live.Config{
		Mu:              sys.Engine.Mu(),
		RemoveStopwords: an.RemovesStopwords(),
		Stem:            an.Stems(),
	}
}

// mergedArchive is the cold-rebuild form of a client state with a
// non-empty delta: the base collection extended by the delta documents
// (renumbered into the global id space they already occupy when served)
// and the merged positional index. Compact, Save and SaveShards all feed
// from it, so the compacted artifact is the one a from-scratch build over
// the same documents would produce.
func mergedArchive(st *clientState, queries []Query) (*store.Archive, error) {
	base := st.sys.Collection.Docs()
	docs := make([]corpus.Document, 0, len(base)+st.delta.NumDocs())
	docs = append(docs, base...)
	for _, d := range st.delta.Docs() {
		d.ID = corpus.DocID(len(docs))
		docs = append(docs, d)
	}
	coll, err := corpus.LoadCollection(docs)
	if err != nil {
		return nil, err
	}
	arch := st.sys.Archive(queries)
	arch.Collection = coll
	arch.Index = index.Merge(st.sys.Engine.Index(), st.delta.Index())
	return arch, nil
}

// Ingest appends documents to the client's in-memory delta segment; they
// are searchable by the time the call returns — scored under merged
// base+delta collection statistics, bit-identical to a rebuilt index —
// and survive into the next compaction. The batch is atomic: a duplicate
// external id (against base and delta alike) or a segment past its
// capacity (WithDeltaCapacity) admits nothing. docs is not retained.
func (c *Client) Ingest(ctx context.Context, docs []Document) (IngestStats, error) {
	start := time.Now()
	st, err := c.ingest(ctx, docs)
	c.obs.ingest(start, len(docs), st.DeltaDocs, c.shardCount(), err)
	return st, err
}

func (c *Client) ingest(ctx context.Context, docs []Document) (IngestStats, error) {
	if err := c.ready(ctx); err != nil {
		return IngestStats{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() {
		return IngestStats{}, ErrClosed
	}
	cur := c.cur()
	out := IngestStats{
		DeltaDocs:  cur.delta.NumDocs(),
		DeltaBytes: cur.delta.Bytes(),
		Generation: cur.gen,
	}
	if len(docs) == 0 {
		return out, nil
	}
	if held := cur.delta.NumDocs(); held+len(docs) > c.deltaCap {
		return out, fmt.Errorf("%w: %d held + %d submitted exceeds capacity %d",
			ErrDeltaFull, held, len(docs), c.deltaCap)
	}
	for _, d := range docs {
		if d.ID == "" {
			continue
		}
		if _, ok := cur.sys.Collection.ByExternalID(d.ID); ok {
			return out, fmt.Errorf("%w: duplicate external id %q", ErrInvalidOptions, d.ID)
		}
	}
	next, err := live.Append(cur.delta, liveConfigOf(cur.sys), cur.sys.Collection.Len(), docs)
	if err != nil {
		return out, fmt.Errorf("%w: %v", ErrInvalidOptions, err)
	}
	c.st.Store(&clientState{sys: cur.sys, delta: next, gen: cur.gen})
	c.maybeAutoCompactLocked(next.NumDocs())
	return IngestStats{
		Ingested:   len(docs),
		DeltaDocs:  next.NumDocs(),
		DeltaBytes: next.Bytes(),
		Generation: cur.gen,
	}, nil
}

// Compact folds the delta segment into a fresh base generation — the
// merged collection and index a cold rebuild would produce — and swaps it
// in with zero downtime: requests that pinned the old state finish on it,
// new requests see the compacted one, and search results are identical
// before and after. An empty delta is a successful no-op with the
// generation unchanged; a real compaction advances it and starts the
// expansion cache cold (the knowledge graph is untouched, so cached
// expansions are merely recomputed, never wrong).
func (c *Client) Compact(ctx context.Context) (CompactStats, error) {
	start := time.Now()
	cs, err := c.compactState(ctx)
	c.obs.compact(start, cs.Compacted, cs.Generation, c.shardCount(), err)
	return cs, err
}

func (c *Client) compactState(ctx context.Context) (CompactStats, error) {
	if err := c.ready(ctx); err != nil {
		return CompactStats{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.compactLocked()
}

// compactLocked does the fold-and-swap; callers hold mu.
//
//qlint:locked mu
func (c *Client) compactLocked() (CompactStats, error) {
	if c.closed.Load() {
		return CompactStats{}, ErrClosed
	}
	cur := c.cur()
	if cur.delta.NumDocs() == 0 {
		return CompactStats{Documents: cur.sys.Collection.Len(), Generation: cur.gen}, nil
	}
	arch, err := mergedArchive(cur, c.queries)
	if err != nil {
		return CompactStats{Generation: cur.gen}, err
	}
	sys, _, err := core.SystemFromArchive(arch, c.sysOpts...)
	if err != nil {
		return CompactStats{Generation: cur.gen}, err
	}
	next := &clientState{sys: sys, gen: cur.gen + 1}
	c.st.Store(next)
	c.compactions.Add(1)
	return CompactStats{
		Compacted:  cur.delta.NumDocs(),
		Documents:  sys.Collection.Len(),
		Generation: next.gen,
	}, nil
}

// maybeAutoCompactLocked launches one background compaction when the
// segment has reached the WithAutoCompact threshold; at most one runs at
// a time and the triggering Ingest returns immediately. Callers hold mu.
//
//qlint:locked mu
func (c *Client) maybeAutoCompactLocked(deltaDocs int) {
	if c.autoCompact <= 0 || deltaDocs < c.autoCompact {
		return
	}
	if !c.compacting.CompareAndSwap(false, true) {
		return
	}
	c.bg.Add(1)
	go func() {
		defer c.bg.Done()
		defer c.compacting.Store(false)
		start := time.Now()
		cs, err := func() (CompactStats, error) {
			c.mu.Lock()
			defer c.mu.Unlock()
			return c.compactLocked()
		}()
		c.obs.compact(start, cs.Compacted, cs.Generation, c.shardCount(), err)
	}()
}
