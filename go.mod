module github.com/querygraph/querygraph

go 1.24
