package querygraph

import (
	"context"
	"errors"
	"time"
)

// Observer is the instrumentation seam of the serving runtimes: attach one
// with WithObserver and its hooks fire on every request path of a Client
// or Pool — single and batch, cached and uncached, success and failure —
// plus every Pool reload. Hooks are called synchronously on the request
// goroutine after the work completes (including the fast-failure paths:
// dead context, closed backend, invalid options), so implementations must
// be cheap and safe for concurrent use. MetricsObserver is the built-in
// counter implementation.
type Observer interface {
	// ObserveSearch fires after every single-query retrieval:
	// Search and SearchExpansion on both runtimes.
	ObserveSearch(SearchObservation)
	// ObserveExpand fires after every single-query expansion: Expand on
	// both runtimes (per-item expansions inside ExpandAll surface through
	// ObserveBatch, not here).
	ObserveExpand(ExpandObservation)
	// ObserveBatch fires after every batch entry point: SearchAll,
	// ExpandAll and SearchExpansions on both runtimes.
	ObserveBatch(BatchObservation)
	// ObserveReload fires after every Pool.Reload, successful or not
	// (a Client never emits it).
	ObserveReload(ReloadObservation)
}

// SearchObservation describes one completed single-query retrieval.
type SearchObservation struct {
	// Duration is the request's wall time inside the backend.
	Duration time.Duration
	// K is the requested ranking depth (<= 0 ranks every candidate).
	K int
	// Shards is the serving generation's shard count (1 on a Client,
	// 0 when the backend was already closed).
	Shards int
	// Expanded is true when the request evaluated an expansion
	// (SearchExpansion) rather than raw query text (Search).
	Expanded bool
	// Err is the request's error class ("" on success); see ErrorClass.
	Err string
}

// ExpandObservation describes one completed single-query expansion.
type ExpandObservation struct {
	Duration time.Duration
	// Cache is how the expansion cache served the request: hit, miss,
	// single-flight dedup, or bypass when caching is disabled.
	Cache CacheOutcome
	// Features is the number of expansion features returned (0 on error).
	Features int
	Shards   int
	Err      string
}

// Batch kinds reported in BatchObservation.Kind.
const (
	BatchSearch           = "search"
	BatchExpand           = "expand"
	BatchSearchExpansions = "search_expansions"
)

// BatchObservation describes one completed batch entry point.
type BatchObservation struct {
	// Kind is the batch's operation: BatchSearch (SearchAll), BatchExpand
	// (ExpandAll) or BatchSearchExpansions (SearchExpansions).
	Kind string
	// Size is the number of items submitted in the batch.
	Size int
	// K is the ranking depth for retrieval batches (0 for ExpandAll).
	K        int
	Shards   int
	Duration time.Duration
	Err      string
}

// ReloadObservation describes one Pool.Reload attempt.
type ReloadObservation struct {
	Duration time.Duration
	// Generation is the sequence number now being served — the new
	// generation's on success, the untouched old one's on failure.
	Generation uint64
	// Shards is the shard count now being served.
	Shards int
	Err    string
}

// RPCObservation describes one completed shard RPC attempt of the remote
// coordinator (*Remote): every attempt is observed individually — first
// tries, retries and hedges alike — so per-shard latency and failure
// structure are visible even when the request as a whole succeeds.
type RPCObservation struct {
	// Shard is the target shard's id; Addr the address this attempt hit.
	Shard int
	Addr  string
	// Op is the protocol operation ("plan", "topk", "expand", ...).
	Op string
	// Duration is the attempt's wall time including connection checkout.
	Duration time.Duration
	// Attempt numbers the tries within one logical call (0 = first).
	Attempt int
	// Hedged is true for a speculative replica request launched because
	// the primary exceeded the hedge threshold.
	Hedged bool
	// DeadlineHit is true when the attempt failed on its per-shard
	// deadline (the hanging-shard signal).
	DeadlineHit bool
	// Err is the attempt's error class ("" on success); see ErrorClass.
	Err string
}

// RPCObserver is an optional extension of Observer: implementations that
// also want per-shard RPC attempts (latency, retries, hedges, deadline
// hits) implement it and are fed by the remote coordinator. Plain
// Observers are untouched — the coordinator type-asserts per observer.
type RPCObserver interface {
	ObserveRPC(RPCObservation)
}

// IngestObservation describes one completed Backend.Ingest call,
// successful or not (a rejected batch — duplicate external id, full
// delta, closed backend — observes with Docs = the submitted size and
// DeltaDocs unchanged).
type IngestObservation struct {
	Duration time.Duration
	// Docs is the number of documents submitted in this call.
	Docs int
	// DeltaDocs is the delta segment's document count after the call.
	DeltaDocs int
	Shards    int
	Err       string
}

// CompactObservation describes one completed compaction — admin-
// triggered (Backend.Compact) or fired by the auto-compactor
// (WithAutoCompact). An empty delta compacts as a successful no-op with
// Compacted = 0 and the generation unchanged.
type CompactObservation struct {
	Duration time.Duration
	// Compacted is the number of delta documents folded into the new
	// generation.
	Compacted int
	// Generation is the sequence number now being served — the new
	// generation's on success, the untouched old one's on failure.
	Generation uint64
	Shards     int
	Err        string
}

// LiveObserver is an optional extension of Observer for the live-index
// write path: implementations that also want ingest and compaction
// telemetry implement it and are fed by Client and Pool. Plain Observers
// are untouched — the runtimes type-assert per observer, like
// RPCObserver.
type LiveObserver interface {
	ObserveIngest(IngestObservation)
	ObserveCompact(CompactObservation)
}

// ingest feeds one Ingest call to every attached observer that opted
// into LiveObserver.
func (os observers) ingest(start time.Time, docs, deltaDocs, shards int, err error) {
	if len(os) == 0 {
		return
	}
	obs := IngestObservation{
		Duration:  time.Since(start),
		Docs:      docs,
		DeltaDocs: deltaDocs,
		Shards:    shards,
		Err:       ErrorClass(err),
	}
	for _, o := range os {
		if lo, ok := o.(LiveObserver); ok {
			lo.ObserveIngest(obs)
		}
	}
}

// compact feeds one compaction to every attached observer that opted
// into LiveObserver.
func (os observers) compact(start time.Time, compacted int, generation uint64, shards int, err error) {
	if len(os) == 0 {
		return
	}
	obs := CompactObservation{
		Duration:   time.Since(start),
		Compacted:  compacted,
		Generation: generation,
		Shards:     shards,
		Err:        ErrorClass(err),
	}
	for _, o := range os {
		if lo, ok := o.(LiveObserver); ok {
			lo.ObserveCompact(obs)
		}
	}
}

// rpc feeds one RPC attempt to every attached observer that opted into
// RPCObserver. Unlike the Observe* hooks this is per attempt, not per
// request — it deliberately does not count toward the one-hook contract
// of the query-path methods.
func (os observers) rpc(start time.Time, shardID int, addr, op string, attempt int, hedged bool, err error) {
	if len(os) == 0 {
		return
	}
	obs := RPCObservation{
		Shard:       shardID,
		Addr:        addr,
		Op:          op,
		Duration:    time.Since(start),
		Attempt:     attempt,
		Hedged:      hedged,
		DeadlineHit: errors.Is(err, context.DeadlineExceeded),
		Err:         ErrorClass(err),
	}
	for _, o := range os {
		if ro, ok := o.(RPCObserver); ok {
			ro.ObserveRPC(obs)
		}
	}
}

// ErrorClass maps an error from the serving API onto a small, stable label
// set for instrumentation: "" (success), "timeout", "canceled", "closed",
// "invalid_query", "invalid_options", "bad_manifest", "bad_snapshot",
// "no_benchmark", "bad_topology", "shard_unavailable", "partial_result",
// "read_only", "delta_full", or "internal" for anything else. Every
// sentinel in errors.go has a class of its own — TestErrorClassTaxonomy
// parses the sentinel declarations and fails when a new sentinel is added
// without classifying it here — and the classes mirror the HTTP error
// model cmd/qserve serves.
func ErrorClass(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, ErrClosed):
		return "closed"
	case errors.Is(err, ErrInvalidQuery):
		return "invalid_query"
	case errors.Is(err, ErrInvalidOptions):
		return "invalid_options"
	case errors.Is(err, ErrBadManifest):
		return "bad_manifest"
	case errors.Is(err, ErrBadSnapshot):
		return "bad_snapshot"
	case errors.Is(err, ErrNoBenchmark):
		return "no_benchmark"
	case errors.Is(err, ErrBadTopology):
		return "bad_topology"
	case errors.Is(err, ErrShardUnavailable):
		return "shard_unavailable"
	case errors.Is(err, ErrPartialResult):
		return "partial_result"
	case errors.Is(err, ErrReadOnly):
		return "read_only"
	case errors.Is(err, ErrDeltaFull):
		return "delta_full"
	default:
		return "internal"
	}
}

// observers is the fan-out list a runtime carries; every hook helper is a
// no-op on an empty list, so an uninstrumented backend pays only a
// time.Now per request.
type observers []Observer

func (os observers) search(start time.Time, k, shards int, expanded bool, err error) {
	if len(os) == 0 {
		return
	}
	obs := SearchObservation{
		Duration: time.Since(start),
		K:        k,
		Shards:   shards,
		Expanded: expanded,
		Err:      ErrorClass(err),
	}
	for _, o := range os {
		o.ObserveSearch(obs)
	}
}

func (os observers) expand(start time.Time, outcome CacheOutcome, exp *Expansion, shards int, err error) {
	if len(os) == 0 {
		return
	}
	obs := ExpandObservation{
		Duration: time.Since(start),
		Cache:    outcome,
		Shards:   shards,
		Err:      ErrorClass(err),
	}
	if exp != nil {
		obs.Features = len(exp.Features)
	}
	for _, o := range os {
		o.ObserveExpand(obs)
	}
}

func (os observers) batch(start time.Time, kind string, size, k, shards int, err error) {
	if len(os) == 0 {
		return
	}
	obs := BatchObservation{
		Kind:     kind,
		Size:     size,
		K:        k,
		Shards:   shards,
		Duration: time.Since(start),
		Err:      ErrorClass(err),
	}
	for _, o := range os {
		o.ObserveBatch(obs)
	}
}

func (os observers) reload(start time.Time, generation uint64, shards int, err error) {
	if len(os) == 0 {
		return
	}
	obs := ReloadObservation{
		Duration:   time.Since(start),
		Generation: generation,
		Shards:     shards,
		Err:        ErrorClass(err),
	}
	for _, o := range os {
		o.ObserveReload(obs)
	}
}
