package querygraph

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/querygraph/querygraph/internal/hist"
)

// conformanceWorld builds a fresh client over a small deterministic world
// (every call returns an independent instance, so tests may Close them).
func conformanceWorld(t *testing.T) *Client {
	t.Helper()
	cfg := DefaultWorldConfig()
	cfg.Topics = 6
	cfg.ArticlesPerTopic = 10
	cfg.DocsPerTopic = 14
	cfg.Queries = 8
	cfg.NoiseVocab = 60
	w, err := GenerateWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Build(w)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// conformanceBackends returns the reference client plus every runtime
// under test, each opened through OpenBackend so the constructor's
// artifact sniffing is on the conformance path too: the snapshot-backed
// Client, the sharded Pool at 1 and 4 shards, and the fan-out Remote
// coordinator over a live 2-shard qshard fleet on loopback.
func conformanceBackends(t *testing.T, opts ...Option) (*Client, map[string]Backend) {
	t.Helper()
	ref := conformanceWorld(t)
	dir := t.TempDir()

	snap := filepath.Join(dir, "world.qgs")
	f, err := os.Create(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	backends := map[string]Backend{}
	be, err := OpenBackend(snap, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := be.(*Client); !ok {
		t.Fatalf("OpenBackend(%s) = %T, want *Client", snap, be)
	}
	backends["client"] = be

	for _, shards := range []int{1, 4} {
		sdir := filepath.Join(dir, fmt.Sprintf("shards-%d", shards))
		if err := ref.SaveShards(sdir, shards); err != nil {
			t.Fatal(err)
		}
		be, err := OpenBackend(filepath.Join(sdir, "manifest.json"), opts...)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := be.(*Pool); !ok {
			t.Fatalf("OpenBackend(manifest) = %T, want *Pool", be)
		}
		backends[fmt.Sprintf("pool-%d", shards)] = be
	}

	fleetDir := filepath.Join(dir, "fleet")
	if err := ref.SaveShards(fleetDir, 2); err != nil {
		t.Fatal(err)
	}
	topo, _ := startShardFleet(t, fleetDir, 2, nil)
	be, err = OpenBackend(topo, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := be.(*Remote); !ok {
		t.Fatalf("OpenBackend(topology) = %T, want *Remote", be)
	}
	backends["remote-2"] = be

	t.Cleanup(func() {
		for _, be := range backends {
			_ = be.Close()
		}
		_ = ref.Close()
	})
	return ref, backends
}

// TestBackendConformance is the shared golden suite of the unified API:
// every runtime behind the Backend interface — single snapshot, 1-shard
// pool, 4-shard pool — must serve bit-identical Search, Expand,
// SearchExpansion, Link and benchmark results to the reference in-memory
// client, through both the plain methods and the typed requests.
func TestBackendConformance(t *testing.T) {
	ctx := context.Background()
	ref, backends := conformanceBackends(t)
	qs := ref.Queries()
	keywords := make([]string, len(qs))
	for i, q := range qs {
		keywords[i] = q.Keywords
	}

	// Golden values from the reference client.
	wantSearch := make([][]Result, len(qs))
	for i, q := range qs {
		rs, err := ref.Search(ctx, q.Keywords, MaxRank)
		if err != nil {
			t.Fatal(err)
		}
		wantSearch[i] = rs
	}
	wantExp, err := ref.ExpandAll(ctx, keywords, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantExpSearch, err := ref.SearchExpansions(ctx, wantExp, MaxRank, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}

	for name, be := range backends {
		t.Run(name, func(t *testing.T) {
			if got, want := len(be.Queries()), len(qs); got != want {
				t.Fatalf("Queries: %d, want %d", got, want)
			}
			st := be.Stats()
			refSt := ref.Stats()
			if st.Articles != refSt.Articles || st.Documents != refSt.Documents ||
				st.BenchmarkQueries != refSt.BenchmarkQueries {
				t.Errorf("Stats = %+v, want the reference shape %+v", st, refSt)
			}

			for i, q := range qs {
				rs, err := be.Search(ctx, q.Keywords, MaxRank)
				if err != nil {
					t.Fatalf("Search %q: %v", q.Keywords, err)
				}
				if !reflect.DeepEqual(rs, wantSearch[i]) {
					t.Fatalf("Search %q diverges:\n got %v\nwant %v", q.Keywords, rs, wantSearch[i])
				}
			}

			// SearchInto matches Search bit for bit, with a nil dst, a
			// reused dst, and an undersized dst; the reused storage is
			// actually reused (no fresh backing array when cap suffices).
			var dst []Result
			for i, q := range qs {
				rs, err := be.SearchInto(ctx, q.Keywords, MaxRank, nil)
				if err != nil {
					t.Fatalf("SearchInto %q: %v", q.Keywords, err)
				}
				if rs == nil || !reflect.DeepEqual(rs, wantSearch[i]) {
					t.Fatalf("SearchInto %q (nil dst) diverges:\n got %v\nwant %v", q.Keywords, rs, wantSearch[i])
				}
				dst, err = be.SearchInto(ctx, q.Keywords, MaxRank, dst)
				if err != nil {
					t.Fatalf("SearchInto %q (reused dst): %v", q.Keywords, err)
				}
				if !reflect.DeepEqual(dst, wantSearch[i]) {
					t.Fatalf("SearchInto %q (reused dst) diverges:\n got %v\nwant %v", q.Keywords, dst, wantSearch[i])
				}
			}
			if len(wantSearch) > 0 && len(wantSearch[0]) > 0 {
				prev := dst[:0]
				got, err := be.SearchInto(ctx, qs[0].Keywords, MaxRank, prev)
				if err != nil {
					t.Fatal(err)
				}
				if cap(prev) >= len(got) && &got[0] != &prev[:1][0] {
					t.Error("SearchInto did not reuse the provided dst storage")
				}
			}

			batch, err := be.SearchAll(ctx, keywords, MaxRank, BatchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(batch, wantSearch) {
				t.Error("SearchAll diverges from per-query Search golden results")
			}

			for i, kw := range keywords {
				exp, err := be.Expand(ctx, kw)
				if err != nil {
					t.Fatalf("Expand %q: %v", kw, err)
				}
				w := wantExp[i]
				if exp.Keywords != w.Keywords ||
					!reflect.DeepEqual(exp.QueryArticles, w.QueryArticles) ||
					!reflect.DeepEqual(exp.Features, w.Features) ||
					exp.CyclesConsidered != w.CyclesConsidered ||
					exp.CyclesAccepted != w.CyclesAccepted {
					t.Fatalf("Expand %q diverges:\n got %+v\nwant %+v", kw, exp, w)
				}
			}

			expSearch, err := be.SearchExpansions(ctx, wantExp, MaxRank, BatchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(expSearch, wantExpSearch) {
				t.Error("SearchExpansions diverges from the reference rankings")
			}
			rs, ok, err := be.SearchExpansion(ctx, wantExp[0], MaxRank)
			if err != nil {
				t.Fatal(err)
			}
			if wantRanked := wantExpSearch[0] != nil; ok != wantRanked {
				t.Fatalf("SearchExpansion ok = %v, want %v", ok, wantRanked)
			}
			if ok && !reflect.DeepEqual(rs, wantExpSearch[0]) {
				t.Error("SearchExpansion diverges from the reference ranking")
			}

			ents := be.Link(qs[0].Keywords)
			if !reflect.DeepEqual(ents, ref.Link(qs[0].Keywords)) {
				t.Errorf("Link diverges: %v", ents)
			}
			for _, e := range ents {
				if got := be.Title(e.ID); got != e.Title {
					t.Errorf("Title(%d) = %q, want %q", e.ID, got, e.Title)
				}
			}

			// The typed requests are sugar over the same backend — same
			// golden results.
			sresp, err := SearchRequest{Query: qs[0].Keywords, K: MaxRank}.Do(ctx, be)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(sresp.Results, wantSearch[0]) {
				t.Error("SearchRequest.Do diverges from Search")
			}
			eresp, err := ExpandRequest{Keywords: keywords[0], K: MaxRank}.Do(ctx, be)
			if err != nil {
				t.Fatal(err)
			}
			if eresp.Expansion.Keywords != wantExp[0].Keywords ||
				!reflect.DeepEqual(eresp.Expansion.Features, wantExp[0].Features) {
				t.Error("ExpandRequest.Do diverges from Expand")
			}
			if eresp.Searched != (wantExpSearch[0] != nil) {
				t.Errorf("ExpandRequest.Do searched = %v", eresp.Searched)
			}
			if eresp.Searched && !reflect.DeepEqual(eresp.Results, wantExpSearch[0]) {
				t.Error("ExpandRequest.Do retrieval diverges from SearchExpansions")
			}
			bresp, err := SearchBatchRequest{Queries: keywords, K: MaxRank}.Do(ctx, be)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(bresp.Results, wantSearch) {
				t.Error("SearchBatchRequest.Do diverges from SearchAll")
			}
			ebresp, err := ExpandBatchRequest{Keywords: keywords, K: MaxRank}.Do(ctx, be)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ebresp.Results, wantExpSearch) {
				t.Error("ExpandBatchRequest.Do retrieval diverges from SearchExpansions")
			}
		})
	}
}

// TestOpenBackendSniffs pins the constructor's artifact detection: content
// beats extension (a snapshot under a .bin name opens as a Client, a
// manifest under an extension-less name opens as a Pool), and garbage is
// an ErrBadSnapshot, not a panic or a misrouted manifest error.
func TestOpenBackendSniffs(t *testing.T) {
	ref := conformanceWorld(t)
	defer ref.Close()
	dir := t.TempDir()

	odd := filepath.Join(dir, "world.bin")
	f, err := os.Create(odd)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	be, err := OpenBackend(odd)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := be.(*Client); !ok {
		t.Fatalf("snapshot under .bin opened as %T, want *Client", be)
	}
	be.Close()

	if err := ref.SaveShards(filepath.Join(dir, "sh"), 2); err != nil {
		t.Fatal(err)
	}
	// A manifest copied to an extension-less path still sniffs as JSON,
	// but its shard files resolve relative to the manifest's directory, so
	// copy it in place.
	manifest := filepath.Join(dir, "sh", "manifest.json")
	blob, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	bare := filepath.Join(dir, "sh", "serving-manifest")
	if err := os.WriteFile(bare, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	be, err = OpenBackend(bare)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := be.(*Pool); !ok {
		t.Fatalf("manifest without .json opened as %T, want *Pool", be)
	}
	be.Close()

	garbage := filepath.Join(dir, "garbage.qgs")
	if err := os.WriteFile(garbage, []byte("this is not a serving artifact at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenBackend(garbage); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("garbage err = %v, want ErrBadSnapshot", err)
	}
	tiny := filepath.Join(dir, "tiny")
	if err := os.WriteFile(tiny, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenBackend(tiny); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("tiny file err = %v, want ErrBadSnapshot", err)
	}
	if _, err := OpenBackend(filepath.Join(dir, "missing.qgs")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file err = %v, want os.ErrNotExist", err)
	}

	// A fleet topology is the third artifact kind: JSON whose shard
	// entries carry addresses, not snapshot paths.
	topo := filepath.Join(dir, "topology.json")
	if err := os.WriteFile(topo, []byte(`{"version":1,"shards":[{"id":0,"addrs":["127.0.0.1:1"]}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if kind, err := sniffArtifact(topo); err != nil || kind != artifactTopology {
		t.Fatalf("topology sniffed as %v (err %v), want artifactTopology", kind, err)
	}
	if kind, err := sniffArtifact(manifest); err != nil || kind != artifactManifest {
		t.Fatalf("manifest sniffed as %v (err %v), want artifactManifest", kind, err)
	}
	// Opening a topology whose only shard is unreachable fails with the
	// shard-unavailable sentinel — proof the sniff routed to OpenTopology.
	if _, err := OpenBackend(topo); !errors.Is(err, ErrShardUnavailable) {
		t.Fatalf("unreachable topology err = %v, want ErrShardUnavailable", err)
	}
}

// closeCases enumerates the query paths that must fail with ErrClosed
// after Close, for any backend.
func assertClosed(t *testing.T, be Backend) {
	t.Helper()
	ctx := context.Background()
	exp := &Expansion{Keywords: "x"}
	cases := []struct {
		name string
		run  func() error
	}{
		{"Search", func() error { _, err := be.Search(ctx, "x", 5); return err }},
		{"SearchAll", func() error { _, err := be.SearchAll(ctx, []string{"x"}, 5, BatchOptions{}); return err }},
		{"Expand", func() error { _, err := be.Expand(ctx, "x"); return err }},
		{"ExpandAll", func() error { _, err := be.ExpandAll(ctx, []string{"x"}, BatchOptions{}); return err }},
		{"SearchExpansion", func() error { _, _, err := be.SearchExpansion(ctx, exp, 5); return err }},
		{"SearchExpansions", func() error { _, err := be.SearchExpansions(ctx, []*Expansion{exp}, 5, BatchOptions{}); return err }},
	}
	for _, tc := range cases {
		if err := tc.run(); !errors.Is(err, ErrClosed) {
			t.Errorf("%s after Close: err = %v, want ErrClosed", tc.name, err)
		}
	}
}

// TestCloseLifecycle pins the lifecycle satellite on every runtime:
// double Close returns nil, post-Close requests return ErrClosed, and the
// typed requests propagate it.
func TestCloseLifecycle(t *testing.T) {
	_, backends := conformanceBackends(t)
	for name, be := range backends {
		t.Run(name, func(t *testing.T) {
			if err := be.Close(); err != nil {
				t.Fatalf("first Close: %v", err)
			}
			if err := be.Close(); err != nil {
				t.Fatalf("second Close: %v (want nil — Close is idempotent)", err)
			}
			assertClosed(t, be)
			if _, err := (SearchRequest{Query: "x", K: 5}).Do(context.Background(), be); !errors.Is(err, ErrClosed) {
				t.Errorf("typed request after Close: err = %v, want ErrClosed", err)
			}
			// The Client-only research pipeline honors the contract too —
			// a closed handle must not silently repopulate the purged cache.
			if c, ok := be.(*Client); ok {
				ctx := context.Background()
				q := c.Queries()[0]
				if _, err := c.Analyze(ctx, AnalyzeOptions{}); !errors.Is(err, ErrClosed) {
					t.Errorf("Analyze after Close: err = %v, want ErrClosed", err)
				}
				if _, err := c.GroundTruth(ctx, q, GroundTruthOptions{}); !errors.Is(err, ErrClosed) {
					t.Errorf("GroundTruth after Close: err = %v, want ErrClosed", err)
				}
				if _, err := c.GroundTruths(ctx, c.Queries(), GroundTruthOptions{}); !errors.Is(err, ErrClosed) {
					t.Errorf("GroundTruths after Close: err = %v, want ErrClosed", err)
				}
				if _, err := c.CompareExpanders(ctx, AblationOptions{}); !errors.Is(err, ErrClosed) {
					t.Errorf("CompareExpanders after Close: err = %v, want ErrClosed", err)
				}
				if _, err := c.MineCycles(ctx, &GroundTruth{}, 5); !errors.Is(err, ErrClosed) {
					t.Errorf("MineCycles after Close: err = %v, want ErrClosed", err)
				}
				if _, _, err := c.Evaluate(ctx, q.Keywords, nil, q.Relevant); !errors.Is(err, ErrClosed) {
					t.Errorf("Evaluate after Close: err = %v, want ErrClosed", err)
				}
			}
		})
	}
}

// TestPoolCloseExtras pins the pool-specific lifecycle: Reload on a
// closed pool fails with ErrClosed and the zero-value accessors answer
// harmlessly.
func TestPoolCloseExtras(t *testing.T) {
	_, backends := conformanceBackends(t)
	pool := backends["pool-4"].(*Pool)
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pool.Reload(""); !errors.Is(err, ErrClosed) {
		t.Fatalf("Reload after Close: err = %v, want ErrClosed", err)
	}
	if n := pool.NumShards(); n != 0 {
		t.Errorf("NumShards after Close = %d, want 0", n)
	}
	if g := pool.Generation(); g != 0 {
		t.Errorf("Generation after Close = %d, want 0", g)
	}
	if qs := pool.Queries(); qs != nil {
		t.Errorf("Queries after Close = %v, want nil", qs)
	}
	if title := pool.Title(1); title != "" {
		t.Errorf("Title after Close = %q, want empty", title)
	}
	if st := pool.Stats(); st != (Stats{}) {
		t.Errorf("Stats after Close = %+v, want zero", st)
	}
	if cs := pool.CacheStats(); cs != (CacheStats{}) {
		t.Errorf("CacheStats after Close = %+v, want zero", cs)
	}
}

// TestPoolCloseDrainsInFlight: Close must not return while a request
// still pins the generation — exactly the Reload drain guarantee, applied
// to shutdown.
func TestPoolCloseDrainsInFlight(t *testing.T) {
	_, backends := conformanceBackends(t)
	pool := backends["pool-1"].(*Pool)

	//qlint:ignore refpair the late manual release is the test: Close must block until it happens
	g, err := pool.acquire() // stand in for a long in-flight request
	if err != nil {
		t.Fatal(err)
	}
	closed := make(chan error, 1)
	go func() { closed <- pool.Close() }()

	select {
	case err := <-closed:
		t.Fatalf("Close returned (%v) while a request still pinned the generation", err)
	case <-time.After(50 * time.Millisecond):
	}
	g.release()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close never returned after the last request released")
	}
}

// TestCloseConcurrentWithRequests hammers Search from many goroutines
// while Close lands mid-storm: every call must either succeed or fail
// with ErrClosed — no panics, no torn state — under -race.
func TestCloseConcurrentWithRequests(t *testing.T) {
	_, backends := conformanceBackends(t)
	ctx := context.Background()
	for name, be := range backends {
		t.Run(name, func(t *testing.T) {
			kw := "ciazia"
			var wg sync.WaitGroup
			start := make(chan struct{})
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					<-start
					for i := 0; i < 200; i++ {
						_, err := be.Search(ctx, kw, 5)
						if err != nil && !errors.Is(err, ErrClosed) {
							t.Errorf("Search during Close: %v", err)
							return
						}
					}
				}()
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				if err := be.Close(); err != nil {
					t.Errorf("Close: %v", err)
				}
			}()
			close(start)
			wg.Wait()
			assertClosed(t, be)
		})
	}
}

// recordingObserver counts hook firings and remembers the last
// observation of each kind.
type recordingObserver struct {
	mu                                  sync.Mutex
	searches, expands, batches, reloads int
	ingests, compacts                   int
	lastSearch                          SearchObservation
	lastExpand                          ExpandObservation
	lastBatch                           BatchObservation
	lastReload                          ReloadObservation
	lastIngest                          IngestObservation
	lastCompact                         CompactObservation
	searchDur, expandDur                time.Duration
}

func (r *recordingObserver) ObserveSearch(o SearchObservation) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.searches++
	r.lastSearch = o
	r.searchDur += o.Duration
}

func (r *recordingObserver) ObserveExpand(o ExpandObservation) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.expands++
	r.lastExpand = o
	r.expandDur += o.Duration
}

func (r *recordingObserver) ObserveBatch(o BatchObservation) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.batches++
	r.lastBatch = o
}

func (r *recordingObserver) ObserveReload(o ReloadObservation) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.reloads++
	r.lastReload = o
}

func (r *recordingObserver) ObserveIngest(o IngestObservation) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ingests++
	r.lastIngest = o
}

func (r *recordingObserver) ObserveCompact(o CompactObservation) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.compacts++
	r.lastCompact = o
}

func (r *recordingObserver) snapshot() recordingObserver {
	r.mu.Lock()
	defer r.mu.Unlock()
	return recordingObserver{
		searches: r.searches, expands: r.expands, batches: r.batches, reloads: r.reloads,
		ingests: r.ingests, compacts: r.compacts,
		lastSearch: r.lastSearch, lastExpand: r.lastExpand,
		lastBatch: r.lastBatch, lastReload: r.lastReload,
		lastIngest: r.lastIngest, lastCompact: r.lastCompact,
		searchDur: r.searchDur, expandDur: r.expandDur,
	}
}

// TestObserverHooks drives single, batch, cached, error, closed and
// reload paths on both runtimes and asserts the hook counts, labels and
// durations.
func TestObserverHooks(t *testing.T) {
	ctx := context.Background()
	obs := map[string]*recordingObserver{"client": {}, "pool-1": {}, "pool-4": {}}
	mkOpt := func(name string) []Option { return []Option{WithObserver(obs[name])} }

	ref := conformanceWorld(t)
	defer ref.Close()
	dir := t.TempDir()
	snap := filepath.Join(dir, "world.qgs")
	f, err := os.Create(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := ref.SaveShards(filepath.Join(dir, "sh1"), 1); err != nil {
		t.Fatal(err)
	}
	if err := ref.SaveShards(filepath.Join(dir, "sh4"), 4); err != nil {
		t.Fatal(err)
	}
	backends := map[string]Backend{}
	if backends["client"], err = OpenBackend(snap, mkOpt("client")...); err != nil {
		t.Fatal(err)
	}
	if backends["pool-1"], err = OpenBackend(filepath.Join(dir, "sh1", "manifest.json"), mkOpt("pool-1")...); err != nil {
		t.Fatal(err)
	}
	if backends["pool-4"], err = OpenBackend(filepath.Join(dir, "sh4", "manifest.json"), mkOpt("pool-4")...); err != nil {
		t.Fatal(err)
	}
	kw := ref.Queries()[0].Keywords
	wantShards := map[string]int{"client": 1, "pool-1": 1, "pool-4": 4}

	for name, be := range backends {
		t.Run(name, func(t *testing.T) {
			rec := obs[name]

			if _, err := be.Search(ctx, kw, 7); err != nil {
				t.Fatal(err)
			}
			s := rec.snapshot()
			if s.searches != 1 {
				t.Fatalf("searches = %d after one Search, want 1", s.searches)
			}
			if s.lastSearch.K != 7 || s.lastSearch.Err != "" || s.lastSearch.Expanded ||
				s.lastSearch.Shards != wantShards[name] {
				t.Errorf("search observation = %+v", s.lastSearch)
			}
			if s.lastSearch.Duration <= 0 {
				t.Errorf("search duration = %v, want > 0", s.lastSearch.Duration)
			}

			// Error path: the class label rides in the observation.
			if _, err := be.Search(ctx, "#combine(", 5); !errors.Is(err, ErrInvalidQuery) {
				t.Fatalf("err = %v, want ErrInvalidQuery", err)
			}
			if s = rec.snapshot(); s.lastSearch.Err != "invalid_query" {
				t.Errorf("error search observation = %+v, want class invalid_query", s.lastSearch)
			}

			// Cold expand misses, warm expand hits; both observed.
			if _, err := be.Expand(ctx, kw); err != nil {
				t.Fatal(err)
			}
			if s = rec.snapshot(); s.expands != 1 || s.lastExpand.Cache != CacheMiss {
				t.Fatalf("cold expand observation = %+v (expands=%d), want CacheMiss", s.lastExpand, s.expands)
			}
			if _, err := be.Expand(ctx, kw); err != nil {
				t.Fatal(err)
			}
			if s = rec.snapshot(); s.expands != 2 || s.lastExpand.Cache != CacheHit {
				t.Fatalf("warm expand observation = %+v (expands=%d), want CacheHit", s.lastExpand, s.expands)
			}
			if s.expandDur <= 0 {
				t.Errorf("accumulated expand duration = %v, want > 0", s.expandDur)
			}

			// Batch paths: one ObserveBatch per entry point, sized.
			if _, err := be.SearchAll(ctx, []string{kw, kw}, 5, BatchOptions{}); err != nil {
				t.Fatal(err)
			}
			if s = rec.snapshot(); s.batches != 1 || s.lastBatch.Kind != BatchSearch || s.lastBatch.Size != 2 {
				t.Fatalf("batch observation = %+v (batches=%d)", s.lastBatch, s.batches)
			}
			if _, err := be.ExpandAll(ctx, []string{kw}, BatchOptions{}); err != nil {
				t.Fatal(err)
			}
			if s = rec.snapshot(); s.batches != 2 || s.lastBatch.Kind != BatchExpand || s.lastBatch.Size != 1 {
				t.Fatalf("expand batch observation = %+v", s.lastBatch)
			}

			// SearchExpansion reports Expanded.
			exp, err := be.Expand(ctx, kw)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := be.SearchExpansion(ctx, exp, 5); err != nil {
				t.Fatal(err)
			}
			if s = rec.snapshot(); !s.lastSearch.Expanded {
				t.Errorf("SearchExpansion observation = %+v, want Expanded", s.lastSearch)
			}
			searchesBeforeClose := s.searches

			// Ingest and Compact fire the live-observer hooks, error paths
			// included.
			if _, err := be.Ingest(ctx, []Document{{
				Name:  "observed.jpg",
				Texts: []DocumentText{{Lang: "en", Description: "an observed ingest"}},
			}}); err != nil {
				t.Fatal(err)
			}
			if s = rec.snapshot(); s.ingests != 1 || s.lastIngest.Docs != 1 ||
				s.lastIngest.DeltaDocs != 1 || s.lastIngest.Err != "" ||
				s.lastIngest.Shards != wantShards[name] {
				t.Fatalf("ingest observation = %+v (ingests=%d)", s.lastIngest, s.ingests)
			}
			if _, err := be.Compact(ctx); err != nil {
				t.Fatal(err)
			}
			if s = rec.snapshot(); s.compacts != 1 || s.lastCompact.Compacted != 1 ||
				s.lastCompact.Generation != 2 || s.lastCompact.Err != "" {
				t.Fatalf("compact observation = %+v (compacts=%d)", s.lastCompact, s.compacts)
			}

			// Reload fires ObserveReload on pools. The compaction above
			// already advanced the pool to generation 2, so the reload
			// publishes generation 3.
			if pool, ok := be.(*Pool); ok {
				if err := pool.Reload(""); err != nil {
					t.Fatal(err)
				}
				if s = rec.snapshot(); s.reloads != 1 || s.lastReload.Generation != 3 ||
					s.lastReload.Shards != wantShards[name] || s.lastReload.Err != "" {
					t.Fatalf("reload observation = %+v (reloads=%d)", s.lastReload, s.reloads)
				}
				if err := pool.Reload("/nonexistent/manifest.json"); err == nil {
					t.Fatal("bad reload succeeded")
				}
				if s = rec.snapshot(); s.reloads != 2 || s.lastReload.Err != "bad_manifest" {
					t.Fatalf("failed reload observation = %+v", s.lastReload)
				}
			}

			// Even the closed fast-failure path is observed.
			if err := be.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := be.Search(ctx, kw, 5); !errors.Is(err, ErrClosed) {
				t.Fatalf("err = %v, want ErrClosed", err)
			}
			if s = rec.snapshot(); s.searches != searchesBeforeClose+1 || s.lastSearch.Err != "closed" {
				t.Errorf("closed search observation = %+v (searches=%d)", s.lastSearch, s.searches)
			}
			if s.lastSearch.Shards != 0 {
				t.Errorf("closed observation Shards = %d, want 0 on both runtimes", s.lastSearch.Shards)
			}
		})
	}
}

// TestMetricsObserver drives the built-in observer end to end and checks
// both the programmatic snapshot and the Prometheus rendering.
func TestMetricsObserver(t *testing.T) {
	ctx := context.Background()
	m := NewMetricsObserver()
	ref, backends := conformanceBackends(t, WithObserver(m))
	kw := ref.Queries()[0].Keywords
	be := backends["client"]

	if _, err := be.Search(ctx, kw, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := be.Search(ctx, "#combine(", 5); err == nil {
		t.Fatal("invalid query succeeded")
	}
	if _, err := be.Expand(ctx, kw); err != nil {
		t.Fatal(err)
	}
	if _, err := be.Expand(ctx, kw); err != nil {
		t.Fatal(err)
	}
	if _, err := be.SearchAll(ctx, []string{kw, kw, kw}, 5, BatchOptions{}); err != nil {
		t.Fatal(err)
	}

	// A failed expand counts as a request + error but never as a cache
	// outcome (a fast failure's zero-value CacheBypass must not pollute
	// the "caching disabled" signal).
	if _, err := be.Expand(ctx, kw, WithMaxFeatures(-1)); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("err = %v, want ErrInvalidOptions", err)
	}

	s := m.Snapshot()
	if s.Searches != 2 || s.SearchErrors != 1 {
		t.Errorf("snapshot searches = %d/%d errors, want 2/1", s.Searches, s.SearchErrors)
	}
	if s.Expands != 3 || s.ExpandErrors != 1 {
		t.Errorf("snapshot expands = %d/%d errors, want 3/1", s.Expands, s.ExpandErrors)
	}
	if s.Cache[CacheMiss] != 1 || s.Cache[CacheHit] != 1 || s.Cache[CacheBypass] != 0 {
		t.Errorf("snapshot cache = %v, want 1 miss, 1 hit, 0 bypass", s.Cache)
	}
	if s.Batches != 1 || s.BatchItems != 3 {
		t.Errorf("snapshot batches = %d with %d items, want 1 with 3", s.Batches, s.BatchItems)
	}

	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`querygraph_requests_total{op="search"} 2`,
		`querygraph_request_errors_total{op="search",class="invalid_query"} 1`,
		`querygraph_expand_cache_total{outcome="hit"} 1`,
		`querygraph_expand_cache_total{outcome="miss"} 1`,
		`querygraph_batch_items_total 3`,
		`querygraph_request_duration_seconds_count{op="search"} 2`,
		"# TYPE querygraph_requests_total counter",
		"# TYPE querygraph_search_duration_seconds histogram",
		`querygraph_search_duration_seconds_bucket{le="+Inf"} 2`,
		"querygraph_search_duration_seconds_count 2",
		`querygraph_expand_duration_seconds_bucket{le="+Inf"} 3`,
		"querygraph_expand_duration_seconds_count 3",
		"# TYPE querygraph_rpc_attempt_duration_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Prometheus output missing %q:\n%s", want, text)
		}
	}
}

// TestMetricsHistogramBuckets pins the cumulative-bucket rendering: an
// observation lands in every le bucket at or above its latency and none
// below, and the bucket boundaries are the exact internal bucket edges
// from hist.DefaultExposition.
func TestMetricsHistogramBuckets(t *testing.T) {
	m := NewMetricsObserver()
	m.ObserveSearch(SearchObservation{Duration: 30 * time.Microsecond})
	m.ObserveSearch(SearchObservation{Duration: 40 * time.Millisecond})

	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	var les []float64
	var counts []uint64
	for _, line := range strings.Split(sb.String(), "\n") {
		if !strings.HasPrefix(line, `querygraph_search_duration_seconds_bucket{le="`) {
			continue
		}
		rest := strings.TrimPrefix(line, `querygraph_search_duration_seconds_bucket{le="`)
		boundary, count, ok := strings.Cut(rest, `"} `)
		if !ok {
			t.Fatalf("malformed bucket line %q", line)
		}
		n, err := strconv.ParseUint(count, 10, 64)
		if err != nil {
			t.Fatalf("bucket count in %q: %v", line, err)
		}
		counts = append(counts, n)
		if boundary == "+Inf" {
			les = append(les, math.Inf(1))
			continue
		}
		le, err := strconv.ParseFloat(boundary, 64)
		if err != nil {
			t.Fatalf("bucket boundary in %q: %v", line, err)
		}
		les = append(les, le)
	}
	if want := len(hist.DefaultExposition) + 1; len(les) != want {
		t.Fatalf("got %d bucket lines, want %d", len(les), want)
	}
	for i := range les {
		// Boundaries strictly increase and counts are cumulative.
		if i > 0 && (les[i] <= les[i-1] || counts[i] < counts[i-1]) {
			t.Errorf("bucket %d: le=%g count=%d not cumulative over le=%g count=%d",
				i, les[i], counts[i], les[i-1], counts[i-1])
		}
		// Each observation counts in every bucket whose boundary exceeds
		// its latency (boundaries are exclusive uppers).
		var want uint64
		for _, d := range []float64{30e-6, 40e-3} {
			if d < les[i] {
				want++
			}
		}
		if counts[i] != want {
			t.Errorf("bucket le=%g count = %d, want %d", les[i], counts[i], want)
		}
	}
	if counts[len(counts)-1] != 2 {
		t.Errorf("+Inf bucket = %d, want 2", counts[len(counts)-1])
	}
}

// TestErrorClass pins the label mapping the observers and metrics rely on.
func TestErrorClass(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{context.DeadlineExceeded, "timeout"},
		{context.Canceled, "canceled"},
		{ErrClosed, "closed"},
		{fmt.Errorf("wrap: %w", ErrInvalidQuery), "invalid_query"},
		{fmt.Errorf("wrap: %w", ErrInvalidOptions), "invalid_options"},
		{fmt.Errorf("wrap: %w", ErrBadManifest), "bad_manifest"},
		{fmt.Errorf("wrap: %w", ErrBadSnapshot), "bad_snapshot"},
		{errors.New("boom"), "internal"},
	}
	for _, tc := range cases {
		if got := ErrorClass(tc.err); got != tc.want {
			t.Errorf("ErrorClass(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}
