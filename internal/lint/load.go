package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one directory of parsed Go files (test files included —
// several invariants, sentinel-error discipline above all, bind in tests
// too). No type information is attached; the analyzers are syntactic.
type Package struct {
	// Name is the package name of the first non-test file (the test
	// package's name when the directory only holds tests).
	Name string
	// Dir is the directory the files were read from.
	Dir string
	// Files are the parsed files, comments preserved, sorted by name.
	Files []*ast.File
}

// Load resolves go-tool-style package patterns relative to root and
// parses every matched directory into a Package. Supported patterns:
// "./...", "dir/...", "dir", "." — the subset cmd/qlint and the tests
// need. Directories named testdata or vendor, and hidden directories,
// are skipped, matching the go tool's matching rules.
func Load(fset *token.FileSet, root string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs := make(map[string]bool)
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		recursive := false
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
		}
		if pat == "" {
			pat = "."
		}
		base := filepath.Join(root, filepath.FromSlash(pat))
		info, err := os.Stat(base)
		if err != nil {
			return nil, fmt.Errorf("pattern %q: %w", pat, err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("pattern %q: not a directory", pat)
		}
		if !recursive {
			dirs[base] = true
			continue
		}
		err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor" || name == "node_modules") {
				return filepath.SkipDir
			}
			dirs[path] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	var pkgs []*Package
	for _, dir := range sorted {
		pkg, err := parseDir(fset, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// parseDir parses every buildable .go file directly inside dir (no
// recursion) into one Package; a directory without Go files yields nil.
func parseDir(fset *token.FileSet, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Dir: dir}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		if pkg.Name == "" || (!IsTestFile(name) && strings.HasSuffix(pkg.Name, "_test")) {
			pkg.Name = f.Name.Name
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}
