// Package senterr is the senterr analyzer's fixture: sentinel-error
// discipline (errors.Is, %w wrapping).
package senterr

import (
	"errors"
	"fmt"
)

var ErrClosed = errors.New("backend closed")
var ErrBadSnapshot = errors.New("bad snapshot")

type qg struct{}

func (qg) do() error { return nil }

func compare() {
	err := qg{}.do()
	if err == ErrClosed { // want `use errors\.Is\(err, ErrClosed\)`
		return
	}
	if err != ErrBadSnapshot { // want `use errors\.Is\(err, ErrBadSnapshot\)`
		return
	}
	if errors.Is(err, ErrClosed) { // the corrected form
		return
	}
	if err == nil { // nil checks are not sentinel comparisons
		return
	}
}

func qualified(err error) bool {
	return err == fmtpkg.ErrRemote // want `use errors\.Is\(err, fmtpkg\.ErrRemote\)`
}

var fmtpkg struct{ ErrRemote error }

func switching(err error) string {
	switch err {
	case nil:
		return "ok"
	case ErrClosed: // want `switch on error identity`
		return "closed"
	}
	switch { // the corrected form
	case errors.Is(err, ErrClosed):
		return "closed"
	}
	return ""
}

func wrapping(err error) error {
	if err != nil {
		return fmt.Errorf("decode failed: %v (%v)", ErrBadSnapshot, err) // want `without %w`
	}
	return fmt.Errorf("%w: decode failed: %v", ErrBadSnapshot, err) // the corrected form
}

func suppressed(err error) bool {
	// Identity comparison is the point of this assertion: the API
	// promises the un-wrapped sentinel itself.
	return err == ErrClosed //qlint:ignore senterr asserts identity, not class
}
