// Package atomicguard is the atomicguard analyzer's fixture: stores to
// mutex-guarded atomic fields.
package atomicguard

import (
	"sync"
	"sync/atomic"
)

type generation struct{}

// Pool mirrors the real pool: lock-free loads, mutex-serialized swaps.
type Pool struct {
	// gen is the serving generation.
	//
	//qlint:guarded-by mu
	gen atomic.Pointer[generation]

	mu sync.Mutex
}

// Close is the corrected form: the store happens under the mutex.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.gen.Store(nil)
}

// swapLocked is the annotated-helper form: the caller holds mu.
//
//qlint:locked mu
func (p *Pool) swapLocked(next *generation) {
	p.gen.Swap(next)
}

func (p *Pool) rogueStore(next *generation) {
	p.gen.Store(next) // want `neither calls p\.mu\.Lock\(\) nor is annotated`
}

func (p *Pool) rogueSwap(next *generation) *generation {
	return p.gen.Swap(next) // want `neither calls p\.mu\.Lock\(\) nor is annotated`
}

// Loads are lock-free by design: never flagged.
func (p *Pool) load() *generation { return p.gen.Load() }

// newPool stores before the value escapes; the suppression names why.
func newPool() *Pool {
	p := &Pool{}
	p.gen.Store(&generation{}) //qlint:ignore atomicguard constructor, pool not shared yet
	return p
}

// Unannotated fields are unconstrained.
type Counter struct {
	n atomic.Int64
}

func (c *Counter) bump() { c.n.Store(1) }
