package ctxflow

import "context"

// Test files may build fresh contexts: there is no caller to inherit a
// deadline from.
func testishHelper() context.Context {
	return context.Background()
}
