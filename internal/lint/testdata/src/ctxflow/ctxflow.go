// Package ctxflow is the ctxflow analyzer's fixture: context threading
// violations and their corrected forms.
package ctxflow

import "context"

// --- rule 1: context.Context must be the first parameter ---

func firstOK(ctx context.Context, query string) error { _ = ctx; _ = query; return nil }

func notFirst(query string, ctx context.Context) error { // want `context\.Context must be the first parameter`
	_ = ctx
	_ = query
	return nil
}

// Iface demonstrates the same rule on interface methods.
type Iface interface {
	Good(ctx context.Context, k int) error
	Bad(k int, ctx context.Context) error // want `context\.Context must be the first parameter`
}

// --- rule 2: no context.Background()/TODO() outside main and tests ---

func freshContexts() {
	_ = context.Background() // want `detaches this call from the caller's deadline`
	_ = context.TODO()       // want `detaches this call from the caller's deadline`
}

func threaded(ctx context.Context) context.Context {
	return ctx // the corrected form: use what the caller handed over
}

func suppressed() context.Context {
	//qlint:ignore ctxflow startup path, no caller ctx exists yet
	return context.Background()
}

// --- rule 3: Search*/Expand* on //qlint:serving types take ctx first ---

// Serving is a serving-path runtime.
//
//qlint:serving
type Serving struct{}

func (s *Serving) Search(ctx context.Context, q string, k int) error { // corrected form
	_ = ctx
	_ = q
	_ = k
	return nil
}

func (s *Serving) ExpandAll(keywords []string) error { // want `must take ctx context\.Context as its first parameter`
	_ = keywords
	return nil
}

// Helper is not annotated, so its methods are unconstrained.
type Helper struct{}

func (h *Helper) SearchIndex(q string) error { _ = q; return nil }

// Contract shows the rule on an annotated interface.
//
//qlint:serving
type Contract interface {
	Expand(ctx context.Context, keywords string) error
	SearchExpansion(exp string, k int) error // want `must take ctx context\.Context as its first parameter`
	Title(id int) string
}
