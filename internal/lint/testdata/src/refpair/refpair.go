// Package refpair is the refpair analyzer's fixture: generation
// refcount acquire/release pairing.
package refpair

import "errors"

type generation struct{}

func (g *generation) release() {}
func (g *generation) retire()  {}

type pool struct{}

func (p *pool) acquire() (*generation, error) { return &generation{}, nil }

var errClosed = errors.New("closed")

// deferredOK is the corrected form: release deferred right after the
// error check, so every return path — panics included — unpins.
func deferredOK(p *pool) error {
	g, err := p.acquire()
	if err != nil {
		return err
	}
	defer g.release()
	return nil
}

// deferredClosureOK releases inside a deferred closure; still covered.
func deferredClosureOK(p *pool) error {
	g, err := p.acquire()
	if err != nil {
		return err
	}
	defer func() { g.release() }()
	return nil
}

// retireOK: retire drops the owner reference, counting as the release.
func retireOK(p *pool) {
	g, err := p.acquire()
	if err != nil {
		return
	}
	defer g.retire()
}

func notDeferred(p *pool) error {
	g, err := p.acquire() // want `release of "g" is not deferred`
	if err != nil {
		return err
	}
	if somethingWrong() {
		return errClosed // leaks g on this path
	}
	g.release()
	return nil
}

func leaked(p *pool) error {
	g, err := p.acquire() // want `no matching release/retire`
	if err != nil {
		return err
	}
	_ = g
	return nil
}

func discarded(p *pool) {
	_, _ = p.acquire() // want `acquire result discarded`
}

// suppressed pins a generation across a hand-off on purpose; the
// justification names the protocol.
func suppressed(p *pool) *generation {
	//qlint:ignore refpair ownership transfers to the caller, which releases
	g, _ := p.acquire()
	return g
}

// nested closures are independent scopes: the literal's own acquire
// needs its own defer.
func nestedScopes(p *pool) {
	fn := func() {
		g, err := p.acquire() // want `no matching release/retire`
		if err != nil {
			return
		}
		_ = g
	}
	fn()
	g, err := p.acquire()
	if err != nil {
		return
	}
	defer g.release()
}

func somethingWrong() bool { return false }
