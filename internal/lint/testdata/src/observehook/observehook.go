// Package observehook is the observehook analyzer's fixture: Observer
// hook coverage on the query-path methods of an observed runtime.
package observehook

import (
	"context"
	"time"
)

type observers struct{}

func (observers) search(start time.Time, k, shards int, expanded bool, err error) {}
func (observers) batch(start time.Time, kind string, size, k, shards int, err error) {
}
func (observers) expand(start time.Time, features, shards int, err error) {}
func (observers) reload(start time.Time, generation uint64, shards int, err error) {
}

// Runtime is a serving runtime whose request paths must be observed.
//
//qlint:observed
type Runtime struct {
	obs observers
}

func (r *Runtime) searchText(ctx context.Context, q string, k int) error { return nil }

// Search is the enforced wrapper shape: one hook, top level, after the
// inner call that contains every early return.
func (r *Runtime) Search(ctx context.Context, q string, k int) error {
	start := time.Now()
	err := r.searchText(ctx, q, k)
	r.obs.search(start, k, 1, false, err)
	return err
}

func (r *Runtime) SearchAll(ctx context.Context, qs []string, k int) error { // want `fires no Observe\* hook`
	return r.searchText(ctx, "", k)
}

func (r *Runtime) Expand(ctx context.Context, kw string) error { // want `fires 2 Observe\* hooks`
	start := time.Now()
	err := r.searchText(ctx, kw, 0)
	r.obs.expand(start, 0, 1, err)
	r.obs.expand(start, 0, 1, err)
	return err
}

func (r *Runtime) ExpandAll(ctx context.Context, kws []string) error { // want `nested inside a conditional`
	start := time.Now()
	err := r.searchText(ctx, "", 0)
	if err == nil {
		// The error path skips the hook: exactly the bug class the
		// analyzer exists for.
		r.obs.batch(start, "expand", len(kws), 0, 1, err)
	}
	return err
}

// Reload with the method-value form p.obs().reload(...) is recognized
// too.
func (r *Runtime) obsList() observers { return r.obs }

// Unobserved types are unconstrained.
type Plain struct{ obs observers }

func (p *Plain) Search(ctx context.Context, q string, k int) error { return nil }
