package lint_test

import (
	"testing"

	"github.com/querygraph/querygraph/internal/lint"
	"github.com/querygraph/querygraph/internal/lint/linttest"
)

func TestAtomicguard(t *testing.T) {
	linttest.Run(t, "testdata/src/atomicguard", lint.Atomicguard)
}
