// Package lint is the project-native static-analysis suite: a set of
// analyzers that mechanically enforce the serving-stack invariants
// DESIGN.md states in prose — context flow, refcount pairing, observer
// coverage, sentinel-error discipline and mutex-guarded atomics — so the
// bit-identical-results guarantees stay cheap to preserve as the codebase
// grows. cmd/qlint is the multichecker front end; CI runs it blocking.
//
// The Analyzer/Pass/Diagnostic contract deliberately mirrors
// golang.org/x/tools/go/analysis so analyzers port mechanically if the
// module ever takes on the real dependency; the framework here is a
// self-contained reimplementation on the standard library's go/ast and
// go/parser because the module is dependency-free by policy (and the
// build environment is offline). Analyzers are purely syntactic: they
// see parsed files, not type information, and the invariants they encode
// are written so that syntax is enough (annotated types, fixed method
// sets, sentinel naming conventions).
//
// # Directives
//
// Analyzers read //qlint: directive comments (directive comments are
// hidden from godoc, like //go:noinline):
//
//	//qlint:serving            on a type: exported Search*/Expand* methods
//	                           must take ctx context.Context first (ctxflow)
//	//qlint:observed           on a type: its query-path methods must fire
//	                           exactly one Observe* hook (observehook)
//	//qlint:guarded-by mu      on a struct field: Store/Swap/CompareAndSwap
//	                           on the field require mu to be held (atomicguard)
//	//qlint:locked mu          on a function: declares the caller holds mu
//	                           (atomicguard accepts stores without a Lock)
//	//qlint:ignore NAME why    on (or immediately above) a line: suppress
//	                           analyzer NAME's diagnostic there; the
//	                           justification text is mandatory
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //qlint:ignore directives. By convention it is a single
	// lower-case word.
	Name string

	// Doc is the one-paragraph description printed by qlint -list:
	// the invariant, and what a diagnostic means.
	Doc string

	// Run inspects one package and reports diagnostics through the
	// pass. It must not retain the pass after returning.
	Run func(*Pass)
}

// A Pass connects one analyzer run to one package, like
// golang.org/x/tools/go/analysis.Pass (minus type information).
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Pkg is the package under analysis; Pkg.Files are its parsed
	// files, comments included.
	Pkg *Package

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is a resolved diagnostic: analyzer, file position, message.
// Findings are what the runner returns after //qlint:ignore filtering.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Atomicguard,
		Ctxflow,
		Observehook,
		Refpair,
		Senterr,
	}
}

// Run applies every analyzer to every package, filters the diagnostics
// through the packages' //qlint:ignore directives, and returns the
// surviving findings sorted by position.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		findings = append(findings, RunPackage(fset, pkg, analyzers)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// RunPackage applies the analyzers to one package and returns the
// ignore-filtered findings, unsorted.
func RunPackage(fset *token.FileSet, pkg *Package, analyzers []*Analyzer) []Finding {
	ignores := collectIgnores(fset, pkg)
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Pkg: pkg}
		a.Run(pass)
		for _, d := range pass.diags {
			pos := fset.Position(d.Pos)
			if ignores.matches(a.Name, pos) {
				continue
			}
			findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		}
	}
	return findings
}

// ignoreSet records //qlint:ignore directives by file and the line they
// suppress (the directive's own line, and the following line when the
// directive stands alone).
type ignoreSet map[string]map[int][]string // filename -> line -> analyzer names

func (s ignoreSet) matches(analyzer string, pos token.Position) bool {
	names, ok := s[pos.Filename][pos.Line]
	if !ok {
		return false
	}
	for _, n := range names {
		if n == analyzer || n == "all" {
			return true
		}
	}
	return false
}

// ignoreRe parses "//qlint:ignore name[,name...] justification". The
// justification is mandatory: an ignore without a reason is itself a
// finding (reported under the analyzer it tries to suppress would be
// circular, so the runner surfaces it as a plain "qlint" finding via
// BadIgnores).
var ignoreRe = regexp.MustCompile(`^//qlint:ignore\s+([\w,]+)(\s+(.*))?$`)

func collectIgnores(fset *token.FileSet, pkg *Package) ignoreSet {
	set := make(ignoreSet)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				if strings.TrimSpace(m[3]) == "" {
					// No justification: the directive is inert.
					continue
				}
				pos := fset.Position(c.Pos())
				names := strings.Split(m[1], ",")
				byLine := set[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					set[pos.Filename] = byLine
				}
				// A directive suppresses its own line (trailing form)
				// and the next line (stand-alone form above the
				// statement).
				byLine[pos.Line] = append(byLine[pos.Line], names...)
				byLine[pos.Line+1] = append(byLine[pos.Line+1], names...)
			}
		}
	}
	return set
}

// BadIgnores reports //qlint:ignore directives that carry no
// justification, so suppressions can never silently accumulate.
func BadIgnores(fset *token.FileSet, pkgs []*Package) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := ignoreRe.FindStringSubmatch(c.Text)
					if m == nil || strings.TrimSpace(m[3]) != "" {
						continue
					}
					findings = append(findings, Finding{
						Analyzer: "qlint",
						Pos:      fset.Position(c.Pos()),
						Message:  "//qlint:ignore needs a justification: //qlint:ignore " + m[1] + " <why>",
					})
				}
			}
		}
	}
	return findings
}

// --- shared syntactic helpers used by the analyzers ---

// IsTestFile reports whether filename is a _test.go file.
func IsTestFile(filename string) bool {
	return strings.HasSuffix(filename, "_test.go")
}

// hasDirective reports whether the comment group carries the given
// //qlint: directive (exact name match, e.g. "serving").
func hasDirective(doc *ast.CommentGroup, name string) bool {
	_, ok := directiveArg(doc, name)
	return ok
}

// directiveArg returns the text after "//qlint:name" (trimmed) and
// whether the directive is present at all.
func directiveArg(doc *ast.CommentGroup, name string) (string, bool) {
	if doc == nil {
		return "", false
	}
	prefix := "//qlint:" + name
	for _, c := range doc.List {
		if c.Text == prefix {
			return "", true
		}
		if rest, ok := strings.CutPrefix(c.Text, prefix+" "); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// recvTypeName returns the receiver's base type name ("" for functions).
func recvTypeName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Generic receivers look like T[P]; unwrap the index.
	switch x := t.(type) {
	case *ast.IndexExpr:
		t = x.X
	case *ast.IndexListExpr:
		t = x.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// isContextContext reports whether the expression is the selector
// context.Context.
func isContextContext(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "context"
}

// selectorCall matches a call of the form X.name(...) and returns the
// receiver expression X.
func selectorCall(call *ast.CallExpr, names ...string) (ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	for _, n := range names {
		if sel.Sel.Name == n {
			return sel.X, true
		}
	}
	return nil, false
}

// typeDirectives scans the package for type declarations annotated with
// the directive and returns the set of annotated type names. Both the
// GenDecl doc ("var ( ... )" grouping) and the TypeSpec doc are honored.
func typeDirectives(pkg *Package, directive string) map[string]bool {
	names := make(map[string]bool)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if hasDirective(ts.Doc, directive) || (len(gd.Specs) == 1 && hasDirective(gd.Doc, directive)) {
					names[ts.Name.Name] = true
				}
			}
		}
	}
	return names
}
