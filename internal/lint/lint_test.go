package lint_test

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/querygraph/querygraph/internal/lint"
)

// TestRunSortsAndFilters drives the production pipeline (Load + Run over
// every analyzer) on a synthetic tree and checks ordering, ignore
// filtering and the mandatory-justification rule.
func TestRunSortsAndFilters(t *testing.T) {
	dir := t.TempDir()
	src := `package demo

import "errors"

var ErrGone = errors.New("gone")

func b(err error) bool { return err == ErrGone }

func a(err error) bool {
	return err != ErrGone //qlint:ignore senterr identity is the contract here
}

func c(err error) bool {
	//qlint:ignore senterr
	return err == ErrGone
}
`
	if err := os.WriteFile(filepath.Join(dir, "demo.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	fset := token.NewFileSet()
	pkgs, err := lint.Load(fset, dir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	findings := lint.Run(fset, pkgs, lint.All())

	// b's comparison is a finding; a's is suppressed with a
	// justification; c's ignore has no justification, so it is inert and
	// the comparison still surfaces.
	var got []int
	for _, f := range findings {
		if f.Analyzer != "senterr" {
			t.Fatalf("unexpected analyzer %q in %v", f.Analyzer, f)
		}
		got = append(got, f.Pos.Line)
	}
	if len(got) != 2 || got[0] >= got[1] {
		t.Fatalf("findings at lines %v, want two sorted lines", got)
	}

	// The justification-less ignore is itself a finding.
	bad := lint.BadIgnores(fset, pkgs)
	if len(bad) != 1 || !strings.Contains(bad[0].Message, "needs a justification") {
		t.Fatalf("BadIgnores = %v, want one justification finding", bad)
	}
}

// TestLoadSkipsTestdata pins the loader's directory-skipping rules:
// testdata, vendor and hidden directories never produce packages (the
// analyzers' own fixtures must not be linted by cmd/qlint ./...).
func TestLoadSkipsTestdata(t *testing.T) {
	dir := t.TempDir()
	for _, sub := range []string{
		"pkg", "pkg/sub", "testdata/fix", "vendor/dep", ".hidden/inner", "_skipped/inner",
	} {
		full := filepath.Join(dir, filepath.FromSlash(sub))
		if err := os.MkdirAll(full, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(full, "p.go"), []byte("package p\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	fset := token.NewFileSet()
	pkgs, err := lint.Load(fset, dir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, p := range pkgs {
		rel, _ := filepath.Rel(dir, p.Dir)
		dirs = append(dirs, filepath.ToSlash(rel))
	}
	want := []string{"pkg", "pkg/sub"}
	if len(dirs) != len(want) || dirs[0] != want[0] || dirs[1] != want[1] {
		t.Fatalf("loaded %v, want %v", dirs, want)
	}
}
