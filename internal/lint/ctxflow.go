package lint

import (
	"go/ast"
	"strings"
)

// Ctxflow enforces the context contract of the serving path (DESIGN.md,
// "Public API & HTTP serving layer"): every request threads the caller's
// context.Context so deadlines and cancellation propagate end to end.
//
// Three rules:
//
//  1. A context.Context parameter is the FIRST parameter, on every
//     function and interface method (Go convention; mandatory here).
//  2. context.Background()/context.TODO() are reserved for package main
//     and _test.go files. Library code must use the ctx it was handed —
//     a fresh background context silently detaches a request from its
//     deadline, which is exactly the bug class that broke deadline tests
//     before PR 3 threaded ctx through the stack.
//  3. On a type annotated //qlint:serving, every exported method whose
//     name starts with Search, Expand, Ingest or Compact (the
//     query/write-path naming scheme of the Backend contract) must take
//     ctx context.Context first, so new serving paths added to
//     Client/Pool/Backend cannot forget the contract.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc: "context.Context is the first parameter everywhere; context.Background/TODO only in main and tests; " +
		"exported Search*/Expand*/Ingest*/Compact* methods on //qlint:serving types take ctx first",
	Run: runCtxflow,
}

func runCtxflow(pass *Pass) {
	serving := typeDirectives(pass.Pkg, "serving")

	for _, f := range pass.Pkg.Files {
		filename := pass.Fset.Position(f.Pos()).Filename
		inMainOrTest := pass.Pkg.Name == "main" || f.Name.Name == "main" || IsTestFile(filename)

		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkCtxPosition(pass, n.Type, n.Name.Name)
				if recv := recvTypeName(n); recv != "" && serving[recv] {
					checkServingMethod(pass, n.Type, n.Name.Name)
				}
			case *ast.TypeSpec:
				iface, ok := n.Type.(*ast.InterfaceType)
				if !ok {
					return true
				}
				for _, m := range iface.Methods.List {
					ft, ok := m.Type.(*ast.FuncType)
					if !ok || len(m.Names) == 0 {
						continue
					}
					name := m.Names[0].Name
					checkCtxPosition(pass, ft, name)
					if serving[n.Name.Name] {
						checkServingMethod(pass, ft, name)
					}
				}
			case *ast.CallExpr:
				if inMainOrTest {
					return true
				}
				if _, ok := selectorCall(n, "Background", "TODO"); ok {
					if sel := n.Fun.(*ast.SelectorExpr); isPkgIdent(sel.X, "context") {
						pass.Reportf(n.Pos(),
							"%s.%s detaches this call from the caller's deadline; thread the request ctx (Background/TODO are for main and tests)",
							"context", sel.Sel.Name)
					}
				}
			}
			return true
		})
	}
}

// checkCtxPosition flags a context.Context parameter that is not first.
func checkCtxPosition(pass *Pass, ft *ast.FuncType, name string) {
	if ft.Params == nil {
		return
	}
	argIndex := 0
	for _, field := range ft.Params.List {
		width := len(field.Names)
		if width == 0 {
			width = 1 // unnamed parameter
		}
		if isContextContext(field.Type) && argIndex > 0 {
			pass.Reportf(field.Pos(), "%s: context.Context must be the first parameter", name)
			return
		}
		argIndex += width
	}
}

// checkServingMethod requires exported Search*/Expand*/Ingest*/Compact*
// methods of a //qlint:serving type to take ctx context.Context first.
func checkServingMethod(pass *Pass, ft *ast.FuncType, name string) {
	if !ast.IsExported(name) ||
		(!strings.HasPrefix(name, "Search") && !strings.HasPrefix(name, "Expand") &&
			!strings.HasPrefix(name, "Ingest") && !strings.HasPrefix(name, "Compact")) {
		return
	}
	if ft.Params == nil || len(ft.Params.List) == 0 || !isContextContext(ft.Params.List[0].Type) {
		pass.Reportf(ft.Pos(),
			"%s is a query-path method of a //qlint:serving type and must take ctx context.Context as its first parameter", name)
	}
}

// isPkgIdent reports whether e is the bare identifier name (a package
// qualifier, syntactically).
func isPkgIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}
