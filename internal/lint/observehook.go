package lint

import (
	"go/ast"
)

// Observehook enforces the Observer coverage contract from PR 5
// (observe.go: hooks "fire on every request path ... including the
// fast-failure paths"): on a type annotated //qlint:observed, every
// exported query-path method must fire EXACTLY ONE Observe* hook, and
// the hook call must be an unconditional top-level statement of the
// method body so early-error returns are observed too.
//
// The enforced shape is the wrapper pattern both runtimes use:
//
//	func (c *Client) Search(ctx ..., ...) (..., error) {
//		start := time.Now()
//		rs, err := c.searchText(ctx, ...)   // all early returns inside
//		c.obs.search(start, ...)            // the one hook, top level
//		return rs, err
//	}
//
// Zero hooks means an unobserved path (metrics silently undercount);
// two means double counting; a hook nested inside an if/switch/for can
// be skipped by the very error paths the contract promises to observe.
var Observehook = &Analyzer{
	Name: "observehook",
	Doc: "exported query-path methods of //qlint:observed types fire exactly one Observe* hook " +
		"as an unconditional top-level statement (early-error returns must be observed)",
	Run: runObservehook,
}

// observedMethods is the query- and write-path method set of the
// Backend contract plus the Pool's reload path. Close and the cheap
// accessors are deliberately outside: they have no observation in the
// Observer interface.
var observedMethods = map[string]bool{
	"Search":           true,
	"SearchAll":        true,
	"Expand":           true,
	"ExpandAll":        true,
	"SearchExpansion":  true,
	"SearchExpansions": true,
	"Reload":           true,
	"Ingest":           true,
	"Compact":          true,
}

// hookNames are the observers fan-out helpers (observe.go).
var hookNames = []string{"search", "expand", "batch", "reload", "ingest", "compact"}

func runObservehook(pass *Pass) {
	observed := typeDirectives(pass.Pkg, "observed")
	if len(observed) == 0 {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !observedMethods[fn.Name.Name] || !ast.IsExported(fn.Name.Name) {
				continue
			}
			if recv := recvTypeName(fn); recv == "" || !observed[recv] {
				continue
			}
			checkHooks(pass, fn)
		}
	}
}

func checkHooks(pass *Pass, fn *ast.FuncDecl) {
	var total, topLevel int
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isHookCall(call) {
			total++
		}
		return true
	})
	for _, stmt := range fn.Body.List {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		if call, ok := es.X.(*ast.CallExpr); ok && isHookCall(call) {
			topLevel++
		}
	}
	switch {
	case total == 0:
		pass.Reportf(fn.Name.Pos(),
			"%s is a query-path method of a //qlint:observed type but fires no Observe* hook: this path is invisible to metrics", fn.Name.Name)
	case total > 1:
		pass.Reportf(fn.Name.Pos(),
			"%s fires %d Observe* hooks; exactly one is the contract (double counting)", fn.Name.Name, total)
	case topLevel != 1:
		pass.Reportf(fn.Name.Pos(),
			"%s's Observe* hook is nested inside a conditional; it must be an unconditional top-level statement so early-error returns are observed", fn.Name.Name)
	}
}

// isHookCall matches the observers helper calls: obs.search(...),
// c.obs.search(...), p.obs().batch(...) — a selector call of a hook
// name whose receiver chain mentions an obs field or obs() method.
func isHookCall(call *ast.CallExpr) bool {
	x, ok := selectorCall(call, hookNames...)
	if !ok {
		return false
	}
	return mentionsObs(x)
}

func mentionsObs(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name == "obs" || e.Name == "observers"
	case *ast.SelectorExpr:
		return e.Sel.Name == "obs" || mentionsObs(e.X)
	case *ast.CallExpr:
		return mentionsObs(e.Fun)
	}
	return false
}
