// Package linttest is the project's analysistest: it runs one analyzer
// over a testdata source directory and checks its diagnostics against
// want-comments, mirroring golang.org/x/tools/go/analysis/analysistest
// (same comment syntax) without the dependency.
//
// A want-comment annotates the line it sits on:
//
//	err == ErrClosed // want `use errors\.Is`
//	ok()             // no comment: any diagnostic here fails the test
//
// The pattern is a regexp matched against the diagnostic message;
// several patterns on one line expect several diagnostics. Both
// `backquoted` and "quoted" patterns are accepted. //qlint:ignore
// directives are honored, so testdata can demonstrate suppression.
package linttest

import (
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/querygraph/querygraph/internal/lint"
)

// wantRe pulls the expectation list out of a comment; patternRe then
// splits the quoted/backquoted patterns.
var (
	wantRe    = regexp.MustCompile(`//\s*want\s+(.*)$`)
	patternRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")
)

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Run loads the single package in dir, runs the analyzer with
// //qlint:ignore filtering applied (the production pipeline), and
// reports every mismatch between diagnostics and want-comments as a
// test error.
func Run(t *testing.T, dir string, a *lint.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := lint.Load(fset, dir, []string{"."})
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loading %s: got %d packages, want 1", dir, len(pkgs))
	}
	pkg := pkgs[0]

	wants := collectWants(t, fset, pkg)
	findings := lint.RunPackage(fset, pkg, []*lint.Analyzer{a})

	for _, f := range findings {
		key := lineKey{f.Pos.Filename, f.Pos.Line}
		if !claim(wants[key], f.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", f.Pos.Filename, f.Pos.Line, f.Message)
		}
	}
	for key, exps := range wants {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, e.re.String())
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

// claim marks the first unmatched expectation whose pattern matches the
// message, reporting whether one was found.
func claim(exps []*expectation, message string) bool {
	for _, e := range exps {
		if !e.matched && e.re.MatchString(message) {
			e.matched = true
			return true
		}
	}
	return false
}

// collectWants scans every comment of the package for want-comments.
func collectWants(t *testing.T, fset *token.FileSet, pkg *lint.Package) map[lineKey][]*expectation {
	t.Helper()
	wants := make(map[lineKey][]*expectation)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, raw := range patternRe.FindAllString(m[1], -1) {
					pat, err := unquotePattern(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, raw, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %s: %v", pos.Filename, pos.Line, raw, err)
					}
					key := lineKey{pos.Filename, pos.Line}
					wants[key] = append(wants[key], &expectation{re: re})
				}
			}
		}
	}
	return wants
}

func unquotePattern(raw string) (string, error) {
	if strings.HasPrefix(raw, "`") {
		return strings.Trim(raw, "`"), nil
	}
	return strconv.Unquote(raw)
}
