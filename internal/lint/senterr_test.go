package lint_test

import (
	"testing"

	"github.com/querygraph/querygraph/internal/lint"
	"github.com/querygraph/querygraph/internal/lint/linttest"
)

func TestSenterr(t *testing.T) {
	linttest.Run(t, "testdata/src/senterr", lint.Senterr)
}
