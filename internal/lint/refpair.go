package lint

import (
	"go/ast"
	"go/token"
)

// Refpair enforces the generation-refcount pairing of the hot-reload
// machinery (DESIGN.md, "Hot reload: generations, refcounts, drain"):
// every acquire() that pins a generation must be released on ALL return
// paths — including panics — which in Go means `defer g.release()`
// immediately after the error check. An unpaired acquire permanently
// leaks the generation: its refcount never reaches zero, drained never
// closes, and Pool.Close blocks forever.
//
// The analyzer flags, within one function body:
//
//   - an acquire whose result has no release/retire at all
//     (the generation leaks), and
//   - an acquire whose release is reachable but not deferred
//     (a panic or an early return between acquire and release leaks).
//
// Manual release patterns (tests holding a generation across an
// assertion, the retry loop inside acquire itself) carry a
// //qlint:ignore refpair justification.
var Refpair = &Analyzer{
	Name: "refpair",
	Doc: "every generation/refcount acquire() is paired with a deferred release() on all return paths; " +
		"non-deferred releases leak on panic, missing releases leak always",
	Run: runRefpair,
}

// refAcquireNames and refReleaseNames are the method-name conventions
// the analyzer binds to. retire() counts as a release: it drops the
// owner reference by definition (pool.go).
var (
	refAcquireNames = []string{"acquire", "Acquire"}
	refReleaseNames = []string{"release", "Release", "retire", "Retire"}
)

func runRefpair(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		// Walk function by function; nested function literals are
		// independent scopes (a defer inside a closure does not protect
		// the enclosing function's acquire).
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkRefpairBody(pass, n.Body)
				}
			case *ast.FuncLit:
				checkRefpairBody(pass, n.Body)
			}
			return true
		})
	}
}

// checkRefpairBody analyzes one function body, not descending into
// nested literals for acquires (they are visited separately).
func checkRefpairBody(pass *Pass, body *ast.BlockStmt) {
	var acquires []struct {
		name string
		pos  ast.Node
	}
	walkShallow(body, func(n ast.Node) {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		if _, ok := selectorCall(call, refAcquireNames...); !ok {
			if id, isIdent := call.Fun.(*ast.Ident); !isIdent || (id.Name != "acquire" && id.Name != "Acquire") {
				return
			}
		}
		id, ok := assign.Lhs[0].(*ast.Ident)
		if !ok {
			return
		}
		if id.Name == "_" {
			pass.Reportf(assign.Pos(), "acquire result discarded: the pinned reference can never be released")
			return
		}
		acquires = append(acquires, struct {
			name string
			pos  ast.Node
		}{id.Name, assign})
	})

	for _, acq := range acquires {
		deferred, direct := findReleases(body, acq.name)
		switch {
		case deferred:
			// Paired on all paths, panics included.
		case direct:
			pass.Reportf(acq.pos.Pos(),
				"release of %q is not deferred: a panic or early return between acquire and release leaks the generation reference", acq.name)
		default:
			pass.Reportf(acq.pos.Pos(),
				"acquire of %q has no matching release/retire in this function: the generation reference leaks and Close will block forever", acq.name)
		}
	}
}

// findReleases scans the whole body (nested literals included — a
// release captured by a deferred closure still runs at function exit)
// for releases of variable name, classifying each as deferred (inside a
// DeferStmt subtree) or direct.
func findReleases(body *ast.BlockStmt, name string) (deferred, direct bool) {
	var defers []*ast.DeferStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			defers = append(defers, d)
		}
		return true
	})
	inDefer := func(pos token.Pos) bool {
		for _, d := range defers {
			if d.Pos() <= pos && pos <= d.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isReleaseOf(call, name) {
			if inDefer(call.Pos()) {
				deferred = true
			} else {
				direct = true
			}
		}
		return true
	})
	return deferred, direct
}

func isReleaseOf(call *ast.CallExpr, name string) bool {
	x, ok := selectorCall(call, refReleaseNames...)
	if !ok {
		return false
	}
	id, ok := x.(*ast.Ident)
	return ok && id.Name == name
}

// walkShallow visits every node of body except the interiors of nested
// function literals.
func walkShallow(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
