package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Senterr enforces the sentinel-error discipline of the public API
// (errors.go: "test with errors.Is"): the package's guarantees are
// stated in terms of errors.Is-able sentinels, and both runtimes wrap
// them (`fmt.Errorf("%w: %v", ErrBadSnapshot, err)`), so identity
// comparison against a sentinel is latently wrong — it works until the
// first wrap, then silently stops matching.
//
// Flagged forms:
//
//   - err == ErrX / err != ErrX (any expression compared to an
//     identifier matching the sentinel naming convention ^Err[A-Z],
//     bare or package-qualified) — use errors.Is(err, ErrX),
//   - switch err { case ErrX: } — error identity switching,
//   - fmt.Errorf with a sentinel argument but no %w verb — the wrap
//     severs the errors.Is chain.
//
// Constructing or returning sentinels, and errors.Is/As, are clean.
var Senterr = &Analyzer{
	Name: "senterr",
	Doc: "error comparisons against Err* sentinels use errors.Is, never ==/!= or switch; " +
		"fmt.Errorf wrapping a sentinel uses %w",
	Run: runSenterr,
}

// sentinelNameRe is the package convention for sentinel error variables
// (errors.go, internal/stats, ...): Err followed by an upper-case
// letter. "Err" alone (a field or variable holding an error string)
// does not match.
var sentinelNameRe = regexp.MustCompile(`^Err[A-Z]`)

func runSenterr(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				name, ok := sentinelRef(n.X)
				if !ok {
					name, ok = sentinelRef(n.Y)
				}
				if ok {
					pass.Reportf(n.Pos(),
						"sentinel compared with %s: use errors.Is(err, %s) — identity comparison breaks on the first fmt.Errorf(%%w) wrap",
						n.Op, name)
				}
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				for _, clause := range n.Body.List {
					cc, ok := clause.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if name, ok := sentinelRef(e); ok {
							pass.Reportf(e.Pos(),
								"switch on error identity with case %s: use an errors.Is chain (switch { case errors.Is(err, %s): ... })",
								name, name)
						}
					}
				}
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			}
			return true
		})
	}
}

// checkErrorfWrap flags fmt.Errorf calls that pass a sentinel but never
// use %w, severing the errors.Is chain.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" || !isPkgIdent(sel.X, "fmt") || len(call.Args) < 2 {
		return
	}
	format, ok := call.Args[0].(*ast.BasicLit)
	if !ok || format.Kind != token.STRING || strings.Contains(format.Value, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if name, ok := sentinelRef(arg); ok {
			pass.Reportf(arg.Pos(),
				"fmt.Errorf formats sentinel %s without %%w: the result no longer matches errors.Is(err, %s)", name, name)
			return
		}
	}
}

// sentinelRef reports whether e syntactically references a sentinel
// error: a bare identifier ErrX or a package-qualified pkg.ErrX.
func sentinelRef(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		if sentinelNameRe.MatchString(e.Name) {
			return e.Name, true
		}
	case *ast.SelectorExpr:
		// Only package qualifiers (lower-case identifier receivers)
		// count: x.ErrSomething on a struct value is possible but the
		// convention reserves Err[A-Z] names for package-level
		// sentinels either way.
		if sentinelNameRe.MatchString(e.Sel.Name) {
			if id, ok := e.X.(*ast.Ident); ok {
				return id.Name + "." + e.Sel.Name, true
			}
		}
	}
	return "", false
}
