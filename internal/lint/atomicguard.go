package lint

import (
	"go/ast"
	"strings"
)

// Atomicguard enforces the write-side locking discipline of
// atomic-pointer generation swaps (pool.go: "mu serializes Reload and
// Close; the serving path never takes it"). Loads are lock-free by
// design, but every Store/Swap/CompareAndSwap on a field annotated
//
//	//qlint:guarded-by mu
//
// must happen with mu held: either the function itself calls
// <recv>.mu.Lock(), or it is annotated //qlint:locked mu declaring that
// its callers hold the mutex (reloadLocked-style helpers). An unguarded
// store races the Reload/Close serialization and can resurrect a
// retired generation or lose a close.
//
// The check is syntactic and per-function: it does not prove the Lock
// dominates the store, only that the locking intent is written down
// next to the code that needs it — which is what review needs to see.
var Atomicguard = &Analyzer{
	Name: "atomicguard",
	Doc: "Store/Swap/CompareAndSwap on //qlint:guarded-by fields only in functions that Lock the named mutex " +
		"or are annotated //qlint:locked",
	Run: runAtomicguard,
}

var guardedStoreNames = []string{"Store", "Swap", "CompareAndSwap"}

func runAtomicguard(pass *Pass) {
	guarded := collectGuardedFields(pass.Pkg)
	if len(guarded) == 0 {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkGuardedStores(pass, fn, guarded)
		}
	}
}

// collectGuardedFields finds struct fields annotated
// //qlint:guarded-by <mutex> and maps the FIELD NAME to the mutex field
// name. Matching stores by field name rather than by receiver type is a
// deliberate syntactic over-approximation: it also covers free
// functions (constructors, helpers) that store through a local variable
// of the guarded type, which a receiver-based match would miss. A
// colliding field name on an unrelated type can be suppressed with
// //qlint:ignore.
func collectGuardedFields(pkg *Package) map[string]string {
	out := make(map[string]string)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mutex, ok := directiveArg(field.Doc, "guarded-by")
				if !ok {
					mutex, ok = directiveArg(field.Comment, "guarded-by")
				}
				if !ok || mutex == "" {
					continue
				}
				for _, name := range field.Names {
					out[name.Name] = mutex
				}
			}
			return true
		})
	}
	return out
}

func checkGuardedStores(pass *Pass, fn *ast.FuncDecl, guarded map[string]string) {
	lockedArg, hasLocked := directiveArg(fn.Doc, "locked")

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		x, ok := selectorCall(call, guardedStoreNames...)
		if !ok {
			return true
		}
		// Match <base>.<field>.Store(...): x is base.field.
		fieldSel, ok := x.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := fieldSel.X.(*ast.Ident)
		if !ok {
			return true
		}
		mutex, ok := guarded[fieldSel.Sel.Name]
		if !ok {
			return true
		}
		if hasLocked && lockedMentions(lockedArg, mutex) {
			return true
		}
		if locksMutex(fn.Body, base.Name, mutex) {
			return true
		}
		pass.Reportf(call.Pos(),
			"store to %s.%s (//qlint:guarded-by %s) in a function that neither calls %s.%s.Lock() nor is annotated //qlint:locked %s",
			base.Name, fieldSel.Sel.Name, mutex, base.Name, mutex, mutex)
		return true
	})
}

// lockedMentions reports whether the //qlint:locked argument names the
// mutex (the argument may carry a trailing justification).
func lockedMentions(arg, mutex string) bool {
	for _, f := range strings.Fields(arg) {
		if f == mutex || f == mutex+"," {
			return true
		}
	}
	return false
}

// locksMutex reports whether the body contains <recv>.<mutex>.Lock().
func locksMutex(body *ast.BlockStmt, recvName, mutex string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		x, ok := selectorCall(call, "Lock")
		if !ok {
			return true
		}
		sel, ok := x.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != mutex {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == recvName {
			found = true
		}
		return true
	})
	return found
}
