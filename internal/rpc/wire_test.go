package rpc

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"

	"github.com/querygraph/querygraph/internal/core"
	"github.com/querygraph/querygraph/internal/graph"
	"github.com/querygraph/querygraph/internal/search"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{
		nil,
		{},
		[]byte("x"),
		bytes.Repeat([]byte{0xAB}, 1<<16),
	}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(&buf)
	for i, p := range payloads {
		got, err := ReadFrame(br)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(p))
		}
	}
	if _, err := ReadFrame(br); err != io.EOF {
		t.Fatalf("clean end err = %v, want io.EOF", err)
	}
}

func TestFrameTornMidPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	torn := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(torn))); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn frame err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	if err := WriteFrame(io.Discard, make([]byte, MaxFrame+1)); err == nil {
		t.Fatal("oversized write succeeded")
	}
	// A hostile length prefix must be rejected before allocation.
	var hdr bytes.Buffer
	hdr.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}) // huge uvarint
	if _, err := ReadFrame(bufio.NewReader(&hdr)); err == nil || !strings.Contains(err.Error(), "MaxFrame") {
		t.Fatalf("hostile length err = %v, want MaxFrame rejection", err)
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{0x05}) // length prefix 5 with no bytes behind it
	if s := r.String(); s != "" {
		t.Fatalf("truncated string = %q, want empty", s)
	}
	if r.Err() == nil {
		t.Fatal("no error after truncated read")
	}
	// Every later read stays zero-valued, no panics.
	if v := r.Uvarint(); v != 0 {
		t.Fatalf("post-error uvarint = %d", v)
	}
	if v := r.F64(); v != 0 {
		t.Fatalf("post-error f64 = %v", v)
	}
	if err := r.Done(); err == nil {
		t.Fatal("Done cleared the sticky error")
	}
}

func TestReaderTrailingGarbage(t *testing.T) {
	b := AppendUvarint(nil, 7)
	b = append(b, 0xFF)
	r := NewReader(b)
	if v := r.Uvarint(); v != 7 {
		t.Fatalf("uvarint = %d", v)
	}
	if err := r.Done(); err == nil {
		t.Fatal("trailing byte not flagged")
	}
}

func TestScalarRoundTrips(t *testing.T) {
	b := AppendUvarint(nil, 0)
	b = AppendUvarint(b, math.MaxUint32)
	b = AppendVarint(b, -12345)
	b = AppendString(b, "héllo")
	b = AppendString(b, "")
	b = AppendF64(b, -0.0)
	b = AppendF64(b, math.Pi)
	r := NewReader(b)
	if v := r.Uvarint(); v != 0 {
		t.Errorf("uvarint = %d", v)
	}
	if v := r.Uvarint(); v != math.MaxUint32 {
		t.Errorf("uvarint = %d", v)
	}
	if v := r.Varint(); v != -12345 {
		t.Errorf("varint = %d", v)
	}
	if s := r.String(); s != "héllo" {
		t.Errorf("string = %q", s)
	}
	if s := r.String(); s != "" {
		t.Errorf("string = %q", s)
	}
	if v := r.F64(); math.Float64bits(v) != math.Float64bits(-0.0) {
		t.Errorf("f64 bits = %x, want negative zero preserved", math.Float64bits(v))
	}
	if v := r.F64(); v != math.Pi {
		t.Errorf("f64 = %v", v)
	}
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestParseResponse(t *testing.T) {
	body, err := ParseResponse(AppendString(AppendOKHeader(nil), "payload"))
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(body)
	if s := r.String(); s != "payload" {
		t.Fatalf("body = %q", s)
	}

	_, err = ParseResponse(AppendErrorResponse(nil, ClassInvalidQuery, "boom"))
	var rerr *RemoteError
	if !errors.As(err, &rerr) || rerr.Class != ClassInvalidQuery || rerr.Msg != "boom" {
		t.Fatalf("error response = %v", err)
	}

	if _, err := ParseResponse([]byte{Version + 9, 0}); err == nil || strings.Contains(err.Error(), "shard error") {
		t.Fatalf("version mismatch err = %v, want plain protocol error", err)
	}
	if _, err := ParseResponse([]byte{Version}); err == nil {
		t.Fatal("short header accepted")
	}
	if _, err := ParseResponse([]byte{Version, 7}); err == nil {
		t.Fatal("unknown status accepted")
	}
}

func TestIdentityRoundTrip(t *testing.T) {
	id := Identity{
		ShardID: 2, ShardCount: 4, GlobalDocs: 1000, GlobalTokens: 123456,
		LocalDocs: 250, NumQueries: 8, Mu: 2500,
		IncludeKeywordTerms: true, Stem: true,
	}
	r := NewReader(AppendIdentity(nil, id))
	got := ReadIdentity(r)
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
	if got != id {
		t.Fatalf("identity = %+v, want %+v", got, id)
	}
}

func TestExpanderOptionsRoundTrip(t *testing.T) {
	o := core.ExpanderOptions{
		MaxCycleLen: 4, Radius: 2, MaxNeighborhood: 500, MaxFeatures: 15,
		MinCategoryRatio: 0.25, MaxCategoryRatio: 0.75, MinDensity: 0.5,
		ExplicitBand: true, KeepTwoCycles: true, RankByFrequency: false,
		IncludeRedirectAliases: true,
	}
	r := NewReader(AppendExpanderOptions(nil, o))
	got := ReadExpanderOptions(r)
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
	if got != o {
		t.Fatalf("options = %+v, want %+v", got, o)
	}
}

// TestExpansionRoundTrip pins the nil-versus-empty distinction the public
// conformance suite checks with reflect.DeepEqual.
func TestExpansionRoundTrip(t *testing.T) {
	cases := []*core.Expansion{
		{Keywords: "alpha beta", QueryArticles: []graph.NodeID{3, 9},
			Features: []core.Feature{
				{Node: 17, Title: "T", CycleLen: 3, Density: 0.5, CategoryRatio: 0.25},
			},
			CyclesConsidered: 10, CyclesAccepted: 2},
		{Keywords: "bare"}, // nil slices stay nil
		{Keywords: "empty", QueryArticles: []graph.NodeID{}, Features: []core.Feature{}}, // empty stays empty
	}
	for _, exp := range cases {
		r := NewReader(AppendExpansion(nil, exp))
		got := ReadExpansion(r)
		if err := r.Done(); err != nil {
			t.Fatalf("%q: %v", exp.Keywords, err)
		}
		if !reflect.DeepEqual(got, exp) {
			t.Fatalf("%q round trip:\n got %+v\nwant %+v", exp.Keywords, got, exp)
		}
	}
}

func TestQueriesRoundTrip(t *testing.T) {
	qs := []core.Query{
		{ID: 1, Keywords: "a b", Relevant: []int32{5, 9, 11}},
		{ID: -2, Keywords: "c", Relevant: nil},
		{ID: 3, Keywords: "", Relevant: []int32{}},
	}
	r := NewReader(AppendQueries(nil, qs))
	got := ReadQueries(r)
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, qs) {
		t.Fatalf("queries round trip:\n got %+v\nwant %+v", got, qs)
	}
}

func TestResultsRoundTrip(t *testing.T) {
	rs := []search.Result{{Doc: 0, Score: -1.5}, {Doc: 1 << 20, Score: 0}}
	r := NewReader(AppendResults(nil, rs))
	got := ReadResults(r)
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rs) {
		t.Fatalf("results = %v, want %v", got, rs)
	}

	// Empty decodes non-nil: the public no-match contract.
	r = NewReader(AppendResults(nil, nil))
	got = ReadResults(r)
	if err := r.Done(); err != nil {
		t.Fatal(err)
	}
	if got == nil || len(got) != 0 {
		t.Fatalf("empty results = %v, want non-nil empty", got)
	}

	// A hostile count must not drive a huge allocation.
	r = NewReader(AppendUvarint(nil, 1<<40))
	ReadResults(r)
	if r.Err() == nil {
		t.Fatal("hostile result count accepted")
	}
}

func TestOpString(t *testing.T) {
	names := map[Op]string{
		OpHealthz: "healthz", OpPlan: "plan", OpTopK: "topk", OpExpand: "expand",
		OpStats: "stats", OpQueries: "queries", OpLink: "link", OpTitle: "title",
	}
	for op, want := range names {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
	if got := Op(200).String(); got != "op200" {
		t.Errorf("unknown op label = %q", got)
	}
}
