package rpc

import (
	"github.com/querygraph/querygraph/internal/core"
	"github.com/querygraph/querygraph/internal/graph"
	"github.com/querygraph/querygraph/internal/search"
)

// This file holds the message bodies both endpoints speak: the shard
// identity handshake, the plan/top-k query union, expansion payloads and
// the replicated benchmark. Encoders and decoders live side by side so a
// field added to one cannot be forgotten in the other.
//
// Nil-ness of slices is preserved with a presence byte wherever the
// public conformance contract compares decoded structs with
// reflect.DeepEqual (an Expansion's QueryArticles and Features, a
// benchmark query's Relevant): a nil slice must come back nil, an empty
// one empty.

// Identity is the shard's partition identity plus the engine
// configuration fixed at build time. The coordinator handshakes every
// shard with OpHealthz and refuses topologies whose shards disagree —
// the network analogue of shard.Load's cross-validation.
type Identity struct {
	ShardID      int
	ShardCount   int
	GlobalDocs   int
	GlobalTokens int64
	LocalDocs    int
	NumQueries   int

	Mu                  float64
	IncludeKeywordTerms bool
	RemoveStopwords     bool
	Stem                bool
}

// AppendIdentity encodes an OpHealthz response body.
func AppendIdentity(b []byte, id Identity) []byte {
	b = AppendUvarint(b, uint64(id.ShardID))
	b = AppendUvarint(b, uint64(id.ShardCount))
	b = AppendUvarint(b, uint64(id.GlobalDocs))
	b = AppendUvarint(b, uint64(id.GlobalTokens))
	b = AppendUvarint(b, uint64(id.LocalDocs))
	b = AppendUvarint(b, uint64(id.NumQueries))
	b = AppendF64(b, id.Mu)
	var flags byte
	if id.IncludeKeywordTerms {
		flags |= 1
	}
	if id.RemoveStopwords {
		flags |= 2
	}
	if id.Stem {
		flags |= 4
	}
	return append(b, flags)
}

// ReadIdentity decodes an OpHealthz response body.
func ReadIdentity(r *Reader) Identity {
	id := Identity{
		ShardID:      r.Int(),
		ShardCount:   r.Int(),
		GlobalDocs:   r.Int(),
		GlobalTokens: int64(r.Uvarint()),
		LocalDocs:    r.Int(),
		NumQueries:   r.Int(),
		Mu:           r.F64(),
	}
	flags := r.Byte()
	id.IncludeKeywordTerms = flags&1 != 0
	id.RemoveStopwords = flags&2 != 0
	id.Stem = flags&4 != 0
	return id
}

// --- query union -------------------------------------------------------

// AppendTextQuery encodes the plan/top-k query union's raw-text arm.
func AppendTextQuery(b []byte, query string) []byte {
	b = append(b, QueryText)
	return AppendString(b, query)
}

// AppendExpansionQuery encodes the union's expansion arm: the keywords
// plus the combined article list (query articles, then feature nodes) —
// everything a shard needs to rebuild the expanded title query on its
// replicated graph.
func AppendExpansionQuery(b []byte, exp *core.Expansion) []byte {
	b = append(b, QueryExpansion)
	b = AppendString(b, exp.Keywords)
	b = AppendUvarint(b, uint64(len(exp.QueryArticles)+len(exp.Features)))
	for _, a := range exp.QueryArticles {
		b = AppendUvarint(b, uint64(a))
	}
	for _, f := range exp.Features {
		b = AppendUvarint(b, uint64(f.Node))
	}
	return b
}

// ReadQueryLeaves decodes the query union against a serving system and
// derives the scoring leaves. ok=false means the query is valid but has
// nothing to search for (an empty expansion). A parse failure returns a
// RemoteError of class invalid_query; a malformed body, class internal.
func ReadQueryLeaves(r *Reader, sys *core.System) (leaves []search.Leaf, ok bool, rerr *RemoteError) {
	switch kind := r.Byte(); kind {
	case QueryText:
		text := r.String()
		if err := r.Err(); err != nil {
			return nil, false, &RemoteError{Class: ClassInternal, Msg: err.Error()}
		}
		leaves, err := sys.Engine.LeavesForQuery(text)
		if err != nil {
			return nil, false, &RemoteError{Class: ClassInvalidQuery, Msg: err.Error()}
		}
		return leaves, true, nil
	case QueryExpansion:
		keywords := r.String()
		n := r.Int()
		if r.Err() == nil && n > len(r.Rest()) {
			r.fail("article count beyond body")
		}
		arts := make([]graph.NodeID, 0, n)
		for i := 0; i < n; i++ {
			arts = append(arts, graph.NodeID(r.Uvarint()))
		}
		if err := r.Err(); err != nil {
			return nil, false, &RemoteError{Class: ClassInternal, Msg: err.Error()}
		}
		exp := &core.Expansion{Keywords: keywords, QueryArticles: arts}
		node, searchable := exp.Query(sys)
		if !searchable {
			return nil, false, nil
		}
		leaves, err := search.Flatten(node)
		if err != nil {
			return nil, false, &RemoteError{Class: ClassInternal, Msg: err.Error()}
		}
		return leaves, true, nil
	default:
		return nil, false, &RemoteError{Class: ClassInternal, Msg: "unknown query kind"}
	}
}

// --- expander options --------------------------------------------------

// AppendExpanderOptions encodes the full option set, so the shard expands
// under exactly the coordinator's normalized options (cache keys on both
// ends agree).
func AppendExpanderOptions(b []byte, o core.ExpanderOptions) []byte {
	b = AppendVarint(b, int64(o.MaxCycleLen))
	b = AppendVarint(b, int64(o.Radius))
	b = AppendVarint(b, int64(o.MaxNeighborhood))
	b = AppendVarint(b, int64(o.MaxFeatures))
	b = AppendF64(b, o.MinCategoryRatio)
	b = AppendF64(b, o.MaxCategoryRatio)
	b = AppendF64(b, o.MinDensity)
	var flags byte
	if o.ExplicitBand {
		flags |= 1
	}
	if o.KeepTwoCycles {
		flags |= 2
	}
	if o.RankByFrequency {
		flags |= 4
	}
	if o.IncludeRedirectAliases {
		flags |= 8
	}
	return append(b, flags)
}

// ReadExpanderOptions decodes AppendExpanderOptions.
func ReadExpanderOptions(r *Reader) core.ExpanderOptions {
	o := core.ExpanderOptions{
		MaxCycleLen:      int(r.Varint()),
		Radius:           int(r.Varint()),
		MaxNeighborhood:  int(r.Varint()),
		MaxFeatures:      int(r.Varint()),
		MinCategoryRatio: r.F64(),
		MaxCategoryRatio: r.F64(),
		MinDensity:       r.F64(),
	}
	flags := r.Byte()
	o.ExplicitBand = flags&1 != 0
	o.KeepTwoCycles = flags&2 != 0
	o.RankByFrequency = flags&4 != 0
	o.IncludeRedirectAliases = flags&8 != 0
	return o
}

// --- expansions --------------------------------------------------------

// AppendExpansion encodes an expansion result (OpExpand response body,
// after the cache-outcome byte).
func AppendExpansion(b []byte, exp *core.Expansion) []byte {
	b = AppendString(b, exp.Keywords)
	b = appendNodeList(b, exp.QueryArticles)
	if exp.Features == nil {
		b = append(b, 0)
	} else {
		b = append(b, 1)
		b = AppendUvarint(b, uint64(len(exp.Features)))
		for _, f := range exp.Features {
			b = AppendUvarint(b, uint64(f.Node))
			b = AppendString(b, f.Title)
			b = AppendUvarint(b, uint64(f.CycleLen))
			b = AppendF64(b, f.Density)
			b = AppendF64(b, f.CategoryRatio)
		}
	}
	b = AppendUvarint(b, uint64(exp.CyclesConsidered))
	return AppendUvarint(b, uint64(exp.CyclesAccepted))
}

// ReadExpansion decodes AppendExpansion.
func ReadExpansion(r *Reader) *core.Expansion {
	exp := &core.Expansion{Keywords: r.String()}
	exp.QueryArticles = readNodeList(r)
	if r.Byte() == 1 {
		n := r.Int()
		if r.Err() == nil && n > len(r.Rest()) {
			r.fail("feature count beyond body")
		}
		exp.Features = make([]core.Feature, 0, n)
		for i := 0; i < n; i++ {
			exp.Features = append(exp.Features, core.Feature{
				Node:          graph.NodeID(r.Uvarint()),
				Title:         r.String(),
				CycleLen:      r.Int(),
				Density:       r.F64(),
				CategoryRatio: r.F64(),
			})
		}
	}
	exp.CyclesConsidered = r.Int()
	exp.CyclesAccepted = r.Int()
	return exp
}

func appendNodeList(b []byte, ids []graph.NodeID) []byte {
	if ids == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	b = AppendUvarint(b, uint64(len(ids)))
	for _, id := range ids {
		b = AppendUvarint(b, uint64(id))
	}
	return b
}

func readNodeList(r *Reader) []graph.NodeID {
	if r.Byte() == 0 {
		return nil
	}
	n := r.Int()
	if r.Err() == nil && n > len(r.Rest()) {
		r.fail("node count beyond body")
	}
	ids := make([]graph.NodeID, 0, n)
	for i := 0; i < n; i++ {
		ids = append(ids, graph.NodeID(r.Uvarint()))
	}
	return ids
}

// --- benchmark queries -------------------------------------------------

// AppendQueries encodes the replicated benchmark (OpQueries response).
func AppendQueries(b []byte, qs []core.Query) []byte {
	b = AppendUvarint(b, uint64(len(qs)))
	for _, q := range qs {
		b = AppendVarint(b, int64(q.ID))
		b = AppendString(b, q.Keywords)
		if q.Relevant == nil {
			b = append(b, 0)
			continue
		}
		b = append(b, 1)
		b = AppendUvarint(b, uint64(len(q.Relevant)))
		for _, d := range q.Relevant {
			b = AppendUvarint(b, uint64(d))
		}
	}
	return b
}

// ReadQueries decodes AppendQueries.
func ReadQueries(r *Reader) []core.Query {
	n := r.Int()
	if r.Err() == nil && n > len(r.Rest()) {
		r.fail("query count beyond body")
	}
	qs := make([]core.Query, 0, n)
	for i := 0; i < n; i++ {
		q := core.Query{ID: int(r.Varint()), Keywords: r.String()}
		if r.Byte() == 1 {
			m := r.Int()
			if r.Err() == nil && m > len(r.Rest()) {
				r.fail("relevance count beyond body")
			}
			q.Relevant = make([]int32, 0, m)
			for j := 0; j < m; j++ {
				q.Relevant = append(q.Relevant, int32(r.Uvarint()))
			}
		}
		qs = append(qs, q)
	}
	return qs
}

// --- results -----------------------------------------------------------

// AppendResults encodes a ranking in the global doc-id space (OpTopK
// response body, after the searchable byte).
func AppendResults(b []byte, rs []search.Result) []byte {
	b = AppendUvarint(b, uint64(len(rs)))
	for _, r := range rs {
		b = AppendUvarint(b, uint64(r.Doc))
		b = AppendF64(b, r.Score)
	}
	return b
}

// ReadResults decodes AppendResults. The ranking decodes non-nil even
// when empty — the public Search contract returns an empty, non-nil
// slice on no match.
func ReadResults(r *Reader) []search.Result {
	n := r.Int()
	// Each entry is at least 9 bytes (one-byte doc uvarint + 8-byte score).
	if r.Err() == nil && n > len(r.Rest())/9 {
		r.fail("result count beyond body")
	}
	rs := make([]search.Result, 0, n)
	for i := 0; i < n; i++ {
		rs = append(rs, search.Result{Doc: int32(r.Uvarint()), Score: r.F64()})
	}
	return rs
}
