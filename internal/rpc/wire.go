// Package rpc is the compact binary shard protocol of the distributed
// serving runtime: a qshard server (cmd/qshard) exposes one shard
// snapshot's plan-leaves / top-k / expand / stats surface over
// length-prefixed frames, and the fan-out coordinator
// (querygraph.OpenTopology) scatters requests across a fleet of them.
//
// Framing: every message is one frame — a uvarint payload length followed
// by the payload, capped at MaxFrame. A version-1 request payload is
//
//	[version byte][op byte][uvarint deadline-millis][op-specific body]
//
// and version 2 inserts one optional field after the deadline:
//
//	[version byte][op byte][uvarint deadline-millis][uvarint trace-id][op-specific body]
//
// carrying the originating request's 64-bit trace ID so a shard can
// attribute its server-side work to the coordinator request that caused
// it (0 = untraced). A client sends the oldest version that can express
// its request — v1 when untraced, bit-identical to the pre-trace
// protocol — and a server accepts every version in [VersionMin,
// Version], answering with the version the request spoke, so fleets
// roll forward shards-first without a flag day. A response payload is
//
//	[version byte][status byte][body]
//
// where status 0 carries an op-specific body and status 1 carries an
// error as two length-prefixed strings: a stable class label (the
// querygraph.ErrorClass taxonomy, so instrumentation labels survive the
// wire) and a human message. The deadline is propagated as milliseconds
// remaining — an absolute clock would need synchronized hosts — and 0
// means "no deadline".
//
// Body encoding is varint-first: unsigned counts and ids as uvarints,
// signed scalars zigzag-encoded, float64 as 8 little-endian bytes of the
// IEEE bits (scores must survive bit-exactly for the coordinator's merge
// to reproduce the single-system ranking), strings and lists
// length-prefixed. Queries travel as raw text (or as an expansion's
// keywords + article ids): every shard re-derives the scoring leaves
// locally through its memoized leaf cache, which is both cheaper than
// shipping leaves and guarantees the leaves agree with the shard's
// analyzer configuration.
package rpc

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Version is the newest protocol version this build speaks; VersionMin
// is the oldest it still accepts. A peer outside the window is rejected
// before any body decoding. v2 added the optional trace-id request
// header field; v1 requests are served unchanged (trace id 0).
const (
	Version    = 2
	VersionMin = 1
)

// MaxFrame bounds one frame's payload. Top-k responses with k <= 0 rank
// every candidate document, so the cap is sized for whole-shard rankings,
// not just top-15s.
const MaxFrame = 64 << 20

// Op identifies one request kind.
type Op byte

// The protocol's operations.
const (
	// OpHealthz is the handshake: it returns the shard's partition
	// identity and global collection statistics, which the coordinator
	// cross-validates against the topology before serving.
	OpHealthz Op = 1
	// OpPlan is scatter phase one: plan the query's scoring leaves
	// against this shard and return the per-leaf local collection
	// frequencies for global aggregation.
	OpPlan Op = 2
	// OpTopK is scatter phase two: score the query under the supplied
	// global statistics and return this shard's top k in the global
	// doc-id space.
	OpTopK Op = 3
	// OpExpand runs the cycle-based expansion pipeline on the shard's
	// replicated graph (any shard answers identically).
	OpExpand Op = 4
	// OpStats returns the shard's serving-state summary.
	OpStats Op = 5
	// OpQueries returns the replicated query benchmark.
	OpQueries Op = 6
	// OpLink entity-links keywords against the replicated graph.
	OpLink Op = 7
	// OpTitle resolves one node id to its display title.
	OpTitle Op = 8
)

// String returns the op's stable metric label.
func (o Op) String() string {
	switch o {
	case OpHealthz:
		return "healthz"
	case OpPlan:
		return "plan"
	case OpTopK:
		return "topk"
	case OpExpand:
		return "expand"
	case OpStats:
		return "stats"
	case OpQueries:
		return "queries"
	case OpLink:
		return "link"
	case OpTitle:
		return "title"
	default:
		return fmt.Sprintf("op%d", byte(o))
	}
}

// Response status bytes.
const (
	statusOK  = 0
	statusErr = 1
)

// Query kind tags of the plan/top-k query union.
const (
	// QueryText is raw INDRI-style query text.
	QueryText = 0
	// QueryExpansion is an expansion's title query: the keywords plus the
	// combined article list (query articles then feature nodes); the
	// shard rebuilds the expanded title query on its replicated graph.
	QueryExpansion = 1
)

// RemoteError is an application-level error a shard reported in a
// response frame: the shard answered, the request failed. Class is the
// stable querygraph.ErrorClass label the shard chose, so the coordinator
// can map it back onto the public sentinel taxonomy. Transport failures
// (dial, I/O, framing) are ordinary errors, never a RemoteError — the
// distinction is what separates "the request is bad" from "the shard is
// unavailable" in the coordinator's partial-failure policy.
type RemoteError struct {
	Class string
	Msg   string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("shard error (%s): %s", e.Class, e.Msg)
}

// Error classes a shard can report (mirroring querygraph.ErrorClass).
const (
	ClassTimeout        = "timeout"
	ClassCanceled       = "canceled"
	ClassClosed         = "closed"
	ClassInvalidQuery   = "invalid_query"
	ClassInvalidOptions = "invalid_options"
	ClassInternal       = "internal"
)

// --- frame I/O ---------------------------------------------------------

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("rpc: frame of %d bytes exceeds MaxFrame %d", len(payload), MaxFrame)
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame, enforcing MaxFrame. A clean
// EOF before the first length byte surfaces as io.EOF (connection closed
// between requests); anything torn mid-frame is an unexpected-EOF error.
func ReadFrame(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("rpc: incoming frame of %d bytes exceeds MaxFrame %d", n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return payload, nil
}

// --- append-style encoders ---------------------------------------------

// AppendUvarint appends v as a uvarint.
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// AppendVarint appends v zigzag-encoded.
func AppendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// AppendString appends a length-prefixed string.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// AppendF64 appends the 8 little-endian bytes of f's IEEE-754 bits —
// bit-exact round-tripping, which the coordinator's ranking merge
// requires.
func AppendF64(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

// --- sticky-error decoder ----------------------------------------------

// Reader decodes a frame body with a sticky error: after the first
// malformed field every subsequent read returns zero values, and Err
// reports what went wrong — so decode sites read a whole struct and check
// once.
type Reader struct {
	b   []byte
	i   int
	err error
}

// NewReader wraps a frame body.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decode error (nil when all reads succeeded).
func (r *Reader) Err() error { return r.err }

// Rest returns the undecoded remainder (for layered decoding).
func (r *Reader) Rest() []byte { return r.b[r.i:] }

// Done reports a fully-consumed body and flags trailing garbage.
func (r *Reader) Done() error {
	if r.err == nil && r.i != len(r.b) {
		r.err = fmt.Errorf("rpc: %d trailing bytes after message body", len(r.b)-r.i)
	}
	return r.err
}

func (r *Reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("rpc: truncated or malformed %s at offset %d", what, r.i)
	}
}

// Byte reads one byte.
func (r *Reader) Byte() byte {
	if r.err != nil || r.i >= len(r.b) {
		r.fail("byte")
		return 0
	}
	v := r.b[r.i]
	r.i++
	return v
}

// Uvarint reads one uvarint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.i:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.i += n
	return v
}

// Varint reads one zigzag varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.i:])
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.i += n
	return v
}

// Int reads a uvarint that must fit a non-negative int.
func (r *Reader) Int() int {
	v := r.Uvarint()
	if r.err == nil && v > math.MaxInt32 {
		r.fail("int out of range")
		return 0
	}
	return int(v)
}

// Len reads a uvarint length and bounds it by the bytes remaining (a
// corrupt length cannot drive a huge allocation).
func (r *Reader) Len() int {
	v := r.Uvarint()
	if r.err == nil && v > uint64(len(r.b)-r.i) {
		r.fail("length prefix beyond body")
		return 0
	}
	return int(v)
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Len()
	if r.err != nil {
		return ""
	}
	s := string(r.b[r.i : r.i+n])
	r.i += n
	return s
}

// F64 reads 8 little-endian IEEE-754 bytes.
func (r *Reader) F64() float64 {
	if r.err != nil || r.i+8 > len(r.b) {
		r.fail("float64")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.i:]))
	r.i += 8
	return v
}

// --- error responses ---------------------------------------------------

// AppendErrorResponse builds an error response payload.
func AppendErrorResponse(b []byte, class, msg string) []byte {
	b = append(b, Version, statusErr)
	b = AppendString(b, class)
	return AppendString(b, msg)
}

// AppendOKHeader starts a success response payload.
func AppendOKHeader(b []byte) []byte {
	return append(b, Version, statusOK)
}

// ParseResponse splits a response payload into its body, surfacing a
// shard-reported error as *RemoteError and a version/framing problem as a
// plain error.
func ParseResponse(payload []byte) ([]byte, error) {
	r := NewReader(payload)
	ver := r.Byte()
	status := r.Byte()
	if r.Err() != nil {
		return nil, fmt.Errorf("rpc: short response header")
	}
	if ver < VersionMin || ver > Version {
		return nil, fmt.Errorf("rpc: response speaks protocol version %d, this build speaks %d..%d", ver, VersionMin, Version)
	}
	switch status {
	case statusOK:
		return r.Rest(), nil
	case statusErr:
		class := r.String()
		msg := r.String()
		if err := r.Done(); err != nil {
			return nil, fmt.Errorf("rpc: malformed error response: %w", err)
		}
		return nil, &RemoteError{Class: class, Msg: msg}
	default:
		return nil, fmt.Errorf("rpc: unknown response status %d", status)
	}
}
