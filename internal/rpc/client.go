package rpc

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrPoolClosed is returned by ConnPool.Get after CloseAll.
var ErrPoolClosed = errors.New("rpc: connection pool closed")

// Conn is one persistent client connection to a shard server. A Conn
// serves one request at a time; the ConnPool multiplexes concurrent
// fan-out over many Conns per address.
type Conn struct {
	addr string
	nc   net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	// req accumulates the request payload between calls, so steady-state
	// requests reuse one buffer.
	req []byte
	// broken marks a conn whose transport failed mid-request; the pool
	// discards it instead of recycling.
	broken bool
}

// Dial connects to a shard server. dialTimeout bounds the TCP connect
// only; per-request deadlines are set per Do.
func Dial(addr string, dialTimeout time.Duration) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, err
	}
	return &Conn{
		addr: addr,
		nc:   nc,
		br:   bufio.NewReader(nc),
		bw:   bufio.NewWriter(nc),
	}, nil
}

// Addr returns the dialed address.
func (c *Conn) Addr() string { return c.addr }

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.nc.Close() }

// Do performs one request/response exchange: it frames
// [version][op][deadline-millis][trace-id?][body], writes it under
// deadline, reads the response frame and splits it. traceID attributes
// the shard's work to the originating coordinator request; 0 means
// untraced, and an untraced request is framed as protocol v1 — byte-
// identical to the pre-trace wire format, so an untraced coordinator
// interoperates with v1-only shards. A shard-reported failure surfaces
// as *RemoteError (the conn stays healthy); any transport failure marks
// the conn broken and a deadline expiry maps onto
// context.DeadlineExceeded so callers classify timeouts uniformly.
func (c *Conn) Do(op Op, body []byte, deadline time.Time, traceID uint64) ([]byte, error) {
	var millis uint64
	if !deadline.IsZero() {
		left := time.Until(deadline)
		if left <= 0 {
			return nil, context.DeadlineExceeded
		}
		millis = uint64(left / time.Millisecond)
		if millis == 0 {
			millis = 1
		}
		if err := c.nc.SetDeadline(deadline); err != nil {
			c.broken = true
			return nil, err
		}
	} else if err := c.nc.SetDeadline(time.Time{}); err != nil {
		c.broken = true
		return nil, err
	}

	c.req = c.req[:0]
	if traceID == 0 {
		c.req = append(c.req, VersionMin, byte(op))
		c.req = AppendUvarint(c.req, millis)
	} else {
		c.req = append(c.req, Version, byte(op))
		c.req = AppendUvarint(c.req, millis)
		c.req = AppendUvarint(c.req, traceID)
	}
	c.req = append(c.req, body...)
	if err := WriteFrame(c.bw, c.req); err != nil {
		c.broken = true
		return nil, c.transportErr("write", err)
	}
	if err := c.bw.Flush(); err != nil {
		c.broken = true
		return nil, c.transportErr("write", err)
	}
	payload, err := ReadFrame(c.br)
	if err != nil {
		c.broken = true
		return nil, c.transportErr("read", err)
	}
	return ParseResponse(payload)
}

// transportErr wraps a transport failure with the peer address, mapping
// an expired I/O deadline onto context.DeadlineExceeded.
func (c *Conn) transportErr(verb string, err error) error {
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return fmt.Errorf("rpc: %s %s: %w", verb, c.addr, context.DeadlineExceeded)
	}
	return fmt.Errorf("rpc: %s %s: %w", verb, c.addr, err)
}

// ConnPool keeps persistent connections per shard address: Get reuses an
// idle conn or dials, Put recycles a healthy one, and CloseAll closes
// every connection — including checked-out ones, which interrupts any
// blocked I/O so a coordinator Close never waits on a hung shard.
type ConnPool struct {
	dialTimeout time.Duration

	mu     sync.Mutex
	closed bool
	idle   map[string][]*Conn
	busy   map[*Conn]struct{}
}

// NewConnPool builds an empty pool.
func NewConnPool(dialTimeout time.Duration) *ConnPool {
	return &ConnPool{
		dialTimeout: dialTimeout,
		idle:        make(map[string][]*Conn),
		busy:        make(map[*Conn]struct{}),
	}
}

// Get checks out a connection to addr, reusing an idle one when
// available.
func (p *ConnPool) Get(addr string) (*Conn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	if conns := p.idle[addr]; len(conns) > 0 {
		c := conns[len(conns)-1]
		p.idle[addr] = conns[:len(conns)-1]
		p.busy[c] = struct{}{}
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()

	c, err := Dial(addr, p.dialTimeout)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		_ = c.Close()
		return nil, ErrPoolClosed
	}
	p.busy[c] = struct{}{}
	p.mu.Unlock()
	return c, nil
}

// Put returns a checked-out connection: healthy conns go back to the
// idle list, broken ones are closed.
func (p *ConnPool) Put(c *Conn) {
	p.mu.Lock()
	delete(p.busy, c)
	if p.closed || c.broken {
		p.mu.Unlock()
		_ = c.Close()
		return
	}
	p.idle[c.addr] = append(p.idle[c.addr], c)
	p.mu.Unlock()
}

// CloseAll retires the pool: every idle and checked-out connection is
// closed (interrupting blocked I/O) and future Gets fail with
// ErrPoolClosed.
func (p *ConnPool) CloseAll() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for _, conns := range p.idle {
		for _, c := range conns {
			_ = c.Close()
		}
	}
	for c := range p.busy {
		_ = c.Close()
	}
	p.idle = make(map[string][]*Conn)
	p.busy = make(map[*Conn]struct{})
	p.mu.Unlock()
}
