package rpc

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"github.com/querygraph/querygraph/internal/core"
	"github.com/querygraph/querygraph/internal/graph"
	"github.com/querygraph/querygraph/internal/search"
	"github.com/querygraph/querygraph/internal/store"
)

// ErrServerClosed is returned by Serve after Close retires the server.
var ErrServerClosed = errors.New("rpc: server closed")

// Server serves one shard snapshot over the binary protocol: the
// stateless plan/top-k scatter surface, expansion on the replicated
// graph, and the handshake/stats/benchmark accessors. One Server handles
// many concurrent connections, each pipelining requests sequentially.
//
// The protocol is deliberately stateless — OpTopK re-derives the query's
// scoring leaves rather than referencing an OpPlan result — so the
// coordinator may retry or hedge any request on any replica without a
// session handshake.
type Server struct {
	sys     *core.System
	queries []core.Query
	ident   Identity
	// docGlobal maps local doc ids to global (nil for an unsharded
	// snapshot, where local ids are global).
	docGlobal []int32

	// hook, when set (before Serve), observes every handled request.
	hook RequestHook

	mu     sync.Mutex
	closed bool
	ln     net.Listener
	conns  map[net.Conn]*connState
	wg     sync.WaitGroup
}

// RequestHook observes one handled request: the op, the originating
// trace ID from the v2 request header (0 for untraced or v1 requests),
// when handling started and how long it took, and the error class the
// shard reported ("" on success). cmd/qshard wires this to its flight
// recorder, latency metrics and slow-request log. The hook runs on the
// connection's serve goroutine, so it must be fast and non-blocking.
type RequestHook func(op Op, traceID uint64, start time.Time, dur time.Duration, errClass string)

// SetRequestHook installs the request hook. Must be called before
// Serve; a nil hook (the default) costs one nil check per request.
func (s *Server) SetRequestHook(h RequestHook) { s.hook = h }

// connState tracks whether a connection is mid-request, so Close can
// hard-close idle connections while busy ones finish their response
// first (the drain contract).
type connState struct {
	busy bool
}

// NewServer assembles a shard server around a decoded archive. A sharded
// snapshot (qgen -shards N) carries its partition identity; a complete
// single snapshot serves as the sole shard of a one-shard fleet.
func NewServer(arch *store.Archive, opts ...core.SystemOption) (*Server, error) {
	sys, queries, err := core.SystemFromArchive(arch, opts...)
	if err != nil {
		return nil, err
	}
	s := &Server{
		sys:     sys,
		queries: queries,
		conns:   make(map[net.Conn]*connState),
	}
	s.ident = Identity{
		ShardID:             0,
		ShardCount:          1,
		GlobalDocs:          arch.Collection.Len(),
		GlobalTokens:        arch.Index.TotalTokens(),
		LocalDocs:           arch.Collection.Len(),
		NumQueries:          len(queries),
		Mu:                  arch.Mu,
		IncludeKeywordTerms: arch.IncludeKeywordTerms,
		RemoveStopwords:     arch.RemoveStopwords,
		Stem:                arch.Stem,
	}
	if sh := arch.Shard; sh != nil {
		s.ident.ShardID = sh.ShardID
		s.ident.ShardCount = sh.ShardCount
		s.ident.GlobalDocs = sh.GlobalDocs
		s.ident.GlobalTokens = sh.GlobalTokens
		s.docGlobal = sh.DocGlobal
	}
	return s, nil
}

// LoadServerFile is NewServer over a snapshot file path — what cmd/qshard
// boots from.
func LoadServerFile(path string, opts ...core.SystemOption) (*Server, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	arch, err := store.Read(f)
	if err != nil {
		return nil, fmt.Errorf("rpc: %s: %w", path, err)
	}
	return NewServer(arch, opts...)
}

// Identity returns the served shard's partition identity.
func (s *Server) Identity() Identity { return s.ident }

// Serve accepts connections on ln until Close or ctx cancellation (which
// triggers Close). It returns nil on a clean shutdown. ctx is also the
// base context every per-request deadline derives from.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()

	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			_ = s.Close()
		case <-watchDone:
		}
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isClosed() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return nil
		}
		st := &connState{}
		s.conns[conn] = st
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(ctx, conn, st)
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close drains and retires the server: the listener stops accepting,
// idle connections are closed immediately, connections mid-request
// finish writing their response first, and Close returns once every
// connection goroutine has exited. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for conn, st := range s.conns {
		if !st.busy {
			_ = conn.Close()
		}
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// serveConn services one connection's request loop: read a frame, handle
// it, write the response, repeat — until the peer disconnects or Close
// drains the server.
func (s *Server) serveConn(ctx context.Context, conn net.Conn, st *connState) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		payload, err := ReadFrame(br)
		if err != nil {
			return // peer gone, torn frame, or Close interrupted the read
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		st.busy = true
		s.mu.Unlock()

		resp := s.handle(ctx, payload)
		werr := WriteFrame(bw, resp)
		if werr == nil {
			werr = bw.Flush()
		}

		s.mu.Lock()
		st.busy = false
		closed := s.closed
		s.mu.Unlock()
		if werr != nil || closed {
			return
		}
	}
}

// handle decodes the request header, derives the per-request deadline
// from the propagated milliseconds-remaining, and dispatches the op.
// The response mirrors the request's protocol version (a v1 coordinator
// keeps getting v1 responses from an upgraded shard), and the optional
// v2 trace-id field is surfaced to the request hook so the process can
// attribute its work to the originating coordinator request.
func (s *Server) handle(ctx context.Context, payload []byte) []byte {
	start := time.Now()
	r := NewReader(payload)
	ver := r.Byte()
	op := Op(r.Byte())
	millis := r.Uvarint()
	if r.Err() != nil {
		return AppendErrorResponse(nil, ClassInternal, "short request header")
	}
	if ver < VersionMin || ver > Version {
		return AppendErrorResponse(nil, ClassInternal,
			fmt.Sprintf("request speaks protocol version %d, this shard speaks %d..%d", ver, VersionMin, Version))
	}
	var traceID uint64
	if ver >= 2 {
		traceID = r.Uvarint()
		if r.Err() != nil {
			return AppendErrorResponse(nil, ClassInternal, "short request header")
		}
	}
	if millis > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(millis)*time.Millisecond)
		defer cancel()
	}
	resp, rerr := s.dispatch(ctx, op, r)
	errClass := ""
	if rerr != nil {
		errClass = rerr.Class
		resp = AppendErrorResponse(nil, rerr.Class, rerr.Msg)
	}
	// Every response builder stamps the build's own Version at byte 0;
	// overwrite it to speak the requester's version back.
	resp[0] = ver
	if hook := s.hook; hook != nil {
		hook(op, traceID, start, time.Since(start), errClass)
	}
	return resp
}

func (s *Server) dispatch(ctx context.Context, op Op, r *Reader) ([]byte, *RemoteError) {
	if err := ctx.Err(); err != nil {
		return nil, remoteErr(err)
	}
	switch op {
	case OpHealthz:
		return AppendIdentity(AppendOKHeader(nil), s.ident), nil
	case OpPlan:
		return s.handlePlan(r)
	case OpTopK:
		return s.handleTopK(r)
	case OpExpand:
		return s.handleExpand(ctx, r)
	case OpStats:
		return s.handleStats()
	case OpQueries:
		return AppendQueries(AppendOKHeader(nil), s.queries), nil
	case OpLink:
		return s.handleLink(r)
	case OpTitle:
		return s.handleTitle(r)
	default:
		return nil, &RemoteError{Class: ClassInternal, Msg: fmt.Sprintf("unknown op %d", op)}
	}
}

// remoteErr classifies an application error for the wire.
func remoteErr(err error) *RemoteError {
	class := ClassInternal
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		class = ClassTimeout
	case errors.Is(err, context.Canceled):
		class = ClassCanceled
	}
	return &RemoteError{Class: class, Msg: err.Error()}
}

// handlePlan is scatter phase one: derive the query's scoring leaves and
// return this shard's per-leaf local collection frequencies. Response
// body: [searchable byte][uvarint numLeaves][uvarint cf]... — searchable
// 0 means an empty expansion with nothing to search for.
func (s *Server) handlePlan(r *Reader) ([]byte, *RemoteError) {
	leaves, ok, rerr := ReadQueryLeaves(r, s.sys)
	if rerr != nil {
		return nil, rerr
	}
	if err := r.Done(); err != nil {
		return nil, &RemoteError{Class: ClassInternal, Msg: err.Error()}
	}
	b := AppendOKHeader(nil)
	if !ok {
		return append(b, 0), nil
	}
	plan := s.sys.Engine.PlanLeaves(leaves)
	b = append(b, 1)
	b = AppendUvarint(b, uint64(plan.NumLeaves()))
	for i := 0; i < plan.NumLeaves(); i++ {
		b = AppendUvarint(b, uint64(plan.LocalCF(i)))
	}
	return b, nil
}

// handleTopK is scatter phase two: re-derive the leaves (stateless — any
// replica can serve the retry), score under the supplied global
// statistics and return this shard's top k in the global doc-id space.
// Request body: query union, zigzag k, uvarint global tokens, leaf CF
// list. Response body: [searchable byte][results].
func (s *Server) handleTopK(r *Reader) ([]byte, *RemoteError) {
	leaves, ok, rerr := ReadQueryLeaves(r, s.sys)
	if rerr != nil {
		return nil, rerr
	}
	k := int(r.Varint())
	totalTokens := int64(r.Uvarint())
	n := r.Int()
	if r.Err() == nil && n > len(r.Rest()) {
		r.fail("leaf count beyond body")
	}
	leafCF := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		leafCF = append(leafCF, int64(r.Uvarint()))
	}
	if err := r.Done(); err != nil {
		return nil, &RemoteError{Class: ClassInternal, Msg: err.Error()}
	}
	b := AppendOKHeader(nil)
	if !ok {
		return append(b, 0), nil
	}
	if n != len(leaves) {
		return nil, &RemoteError{Class: ClassInternal,
			Msg: fmt.Sprintf("query plans %d leaves on this shard, request carries %d collection frequencies", len(leaves), n)}
	}
	plan := s.sys.Engine.PlanLeaves(leaves)
	rs, err := s.sys.Engine.SearchPlan(plan, k, &search.Stats{TotalTokens: totalTokens, LeafCF: leafCF})
	if err != nil {
		return nil, remoteErr(err)
	}
	if s.docGlobal != nil {
		for i := range rs {
			rs[i].Doc = s.docGlobal[rs[i].Doc]
		}
	}
	b = append(b, 1)
	return AppendResults(b, rs), nil
}

// handleExpand runs the expansion pipeline on the replicated graph.
// Request body: keywords + full expander options. Response body:
// [cache-outcome byte][expansion].
func (s *Server) handleExpand(ctx context.Context, r *Reader) ([]byte, *RemoteError) {
	keywords := r.String()
	opts := ReadExpanderOptions(r)
	if err := r.Done(); err != nil {
		return nil, &RemoteError{Class: ClassInternal, Msg: err.Error()}
	}
	exp, outcome, err := s.sys.ExpandOutcome(ctx, keywords, opts)
	if err != nil {
		return nil, remoteErr(err)
	}
	b := AppendOKHeader(nil)
	b = append(b, byte(outcome))
	return AppendExpansion(b, exp), nil
}

// handleStats returns the shard's serving-state summary: the replicated
// knowledge-base shape, global document count, benchmark size and this
// shard's expansion-cache counters.
func (s *Server) handleStats() ([]byte, *RemoteError) {
	st := s.sys.Snapshot.Stats()
	cs := s.sys.ExpandCacheStats()
	b := AppendOKHeader(nil)
	b = AppendUvarint(b, uint64(st.Articles))
	b = AppendUvarint(b, uint64(st.Redirects))
	b = AppendUvarint(b, uint64(st.Categories))
	b = AppendUvarint(b, uint64(st.Links))
	b = AppendUvarint(b, uint64(s.ident.GlobalDocs))
	b = AppendUvarint(b, uint64(len(s.queries)))
	b = AppendUvarint(b, cs.Hits)
	b = AppendUvarint(b, cs.Misses)
	b = AppendUvarint(b, cs.Deduped)
	b = AppendUvarint(b, uint64(cs.Entries))
	b = AppendUvarint(b, uint64(cs.Capacity))
	return b, nil
}

// handleLink entity-links keywords against the replicated graph.
// Response body: uvarint n, then n × (uvarint node id, title).
func (s *Server) handleLink(r *Reader) ([]byte, *RemoteError) {
	keywords := r.String()
	if err := r.Done(); err != nil {
		return nil, &RemoteError{Class: ClassInternal, Msg: err.Error()}
	}
	ids := s.sys.LinkKeywords(keywords)
	b := AppendOKHeader(nil)
	b = AppendUvarint(b, uint64(len(ids)))
	for _, id := range ids {
		b = AppendUvarint(b, uint64(id))
		b = AppendString(b, s.sys.Snapshot.Name(id))
	}
	return b, nil
}

// handleTitle resolves one node id to its display title.
func (s *Server) handleTitle(r *Reader) ([]byte, *RemoteError) {
	id := r.Uvarint()
	if err := r.Done(); err != nil {
		return nil, &RemoteError{Class: ClassInternal, Msg: err.Error()}
	}
	b := AppendOKHeader(nil)
	return AppendString(b, s.sys.Snapshot.Name(graph.NodeID(id))), nil
}
