// Package wiki models the part of the Wikipedia schema the paper uses
// (its Figure 1): Article and Category entries connected by link
// (article→article), belongs (article→category, at least one per main
// article), inside (category→category, forming a mostly-tree hierarchy) and
// redirects_to (redirect article→main article) relations.
//
// A Snapshot is an immutable, validated knowledge base; Builder constructs
// one while enforcing the schema invariants:
//
//   - titles are unique after normalization (shared between articles and
//     redirects: the linker must resolve any title unambiguously);
//   - every main article belongs to at least one category;
//   - a redirect article has exactly one relation — its redirects_to edge —
//     so redirects can never close a cycle, as the paper observes;
//   - redirect chains (redirect → redirect) are rejected.
package wiki

import (
	"fmt"
	"sort"

	"github.com/querygraph/querygraph/internal/graph"
	"github.com/querygraph/querygraph/internal/text"
)

// Snapshot is a validated, immutable Wikipedia knowledge base. It is safe
// for concurrent reads.
type Snapshot struct {
	g        *graph.Graph
	names    []string // display name per node ID
	byTitle  map[string]graph.NodeID
	redirect map[graph.NodeID]graph.NodeID // redirect article -> main article
	inbound  map[graph.NodeID][]graph.NodeID
}

// Graph returns the underlying typed graph. The graph must be treated as
// read-only.
func (s *Snapshot) Graph() *graph.Graph { return s.g }

// Name returns the display title (articles) or name (categories) of node n.
func (s *Snapshot) Name(n graph.NodeID) string { return s.names[n] }

// Lookup resolves a title or category name to its node by normalized
// comparison. Redirect titles resolve to the redirect node itself; use
// MainOf to follow the redirect.
func (s *Snapshot) Lookup(title string) (graph.NodeID, bool) {
	id, ok := s.byTitle[text.Normalize(title)]
	return id, ok
}

// IsRedirect reports whether node n is a redirect article.
func (s *Snapshot) IsRedirect(n graph.NodeID) bool {
	_, ok := s.redirect[n]
	return ok
}

// MainOf resolves a redirect article to its main article; for main articles
// and categories it returns n unchanged.
func (s *Snapshot) MainOf(n graph.NodeID) graph.NodeID {
	if main, ok := s.redirect[n]; ok {
		return main
	}
	return n
}

// RedirectsTo returns the redirect articles pointing at main article a,
// i.e. the alternative titles the paper derives synonyms from.
func (s *Snapshot) RedirectsTo(a graph.NodeID) []graph.NodeID {
	return s.inbound[a]
}

// CategoriesOf returns the categories article a belongs to, ascending.
func (s *Snapshot) CategoriesOf(a graph.NodeID) []graph.NodeID {
	var out []graph.NodeID
	for _, arc := range s.g.Out(a) {
		if arc.Kind == graph.Belongs {
			out = append(out, arc.To)
		}
	}
	return out
}

// NumArticles returns the number of main (non-redirect) articles.
func (s *Snapshot) NumArticles() int {
	return s.g.CountKind(graph.Article) - len(s.redirect)
}

// NumRedirects returns the number of redirect articles.
func (s *Snapshot) NumRedirects() int { return len(s.redirect) }

// NumCategories returns the number of categories.
func (s *Snapshot) NumCategories() int { return s.g.CountKind(graph.Category) }

// MainArticles returns the IDs of all main articles in ascending order.
func (s *Snapshot) MainArticles() []graph.NodeID {
	var out []graph.NodeID
	for _, id := range s.g.NodesOfKind(graph.Article) {
		if !s.IsRedirect(id) {
			out = append(out, id)
		}
	}
	return out
}

// ReciprocalLinkRatio returns the fraction of unordered article pairs
// connected by at least one link that are connected in both directions. The
// paper measures 11.47% on Wikipedia; the synthetic generator targets the
// same rate.
func (s *Snapshot) ReciprocalLinkRatio() float64 {
	linked := 0
	reciprocal := 0
	for _, e := range s.g.Edges() {
		if e.Kind != graph.Link {
			continue
		}
		back := s.g.HasEdge(e.To, e.From, graph.Link)
		if back && e.From > e.To {
			continue // count each unordered pair once
		}
		linked++
		if back {
			reciprocal++
		}
	}
	if linked == 0 {
		return 0
	}
	return float64(reciprocal) / float64(linked)
}

// Titles returns every normalized title in the snapshot mapped to its node.
// The returned map is owned by the snapshot and must not be modified; it is
// what the entity linker builds its trie from.
func (s *Snapshot) Titles() map[string]graph.NodeID { return s.byTitle }

// Stats summarizes a snapshot for reports and sanity checks.
type Stats struct {
	Articles, Redirects, Categories int
	Links, Belongs, Inside          int
	ReciprocalLinkRatio             float64
}

// Stats computes summary statistics.
func (s *Snapshot) Stats() Stats {
	st := Stats{
		Articles:   s.NumArticles(),
		Redirects:  s.NumRedirects(),
		Categories: s.NumCategories(),
	}
	for _, e := range s.g.Edges() {
		switch e.Kind {
		case graph.Link:
			st.Links++
		case graph.Belongs:
			st.Belongs++
		case graph.Inside:
			st.Inside++
		}
	}
	st.ReciprocalLinkRatio = s.ReciprocalLinkRatio()
	return st
}

// Load reassembles a Snapshot from a decoded graph and its node names,
// deriving the title dictionary, redirect table and inbound-alias lists in
// one pass instead of replaying the Builder. This is the decode path of
// the binary snapshot subsystem (internal/store): the input is trusted to
// originate from a valid Snapshot (it is checksummed on disk), so the
// global schema validation of Builder.Build is not repeated — only shape
// checks that later lookups depend on run. The graph and names are owned
// by the snapshot afterwards.
func Load(g *graph.Graph, names []string) (*Snapshot, error) {
	if g == nil {
		return nil, fmt.Errorf("wiki: load: nil graph")
	}
	if len(names) != g.NumNodes() {
		return nil, fmt.Errorf("wiki: load: %d names for %d nodes", len(names), g.NumNodes())
	}
	byTitle := make(map[string]graph.NodeID, len(names))
	for i, name := range names {
		norm := text.Normalize(name)
		if norm == "" {
			return nil, fmt.Errorf("wiki: load: node %d has an empty name", i)
		}
		if prev, ok := byTitle[norm]; ok {
			return nil, fmt.Errorf("wiki: load: node %d (%q) collides with node %d (%q)",
				i, name, prev, names[prev])
		}
		byTitle[norm] = graph.NodeID(i)
	}
	redirect := make(map[graph.NodeID]graph.NodeID)
	inbound := make(map[graph.NodeID][]graph.NodeID)
	// Ascending node scan, so every inbound list comes out sorted — the
	// same order Build produces.
	for i := 0; i < g.NumNodes(); i++ {
		id := graph.NodeID(i)
		for _, arc := range g.Out(id) {
			if arc.Kind == graph.Redirect {
				redirect[id] = arc.To
				inbound[arc.To] = append(inbound[arc.To], id)
			}
		}
	}
	return &Snapshot{
		g:        g,
		names:    names,
		byTitle:  byTitle,
		redirect: redirect,
		inbound:  inbound,
	}, nil
}

// Builder assembles a Snapshot. Methods return errors immediately for local
// violations (duplicate titles, wrong node kinds); Build performs the global
// schema validation.
type Builder struct {
	g        *graph.Graph
	names    []string
	byTitle  map[string]graph.NodeID
	redirect map[graph.NodeID]graph.NodeID
}

// NewBuilder returns an empty Builder with a capacity hint of n nodes.
func NewBuilder(n int) *Builder {
	return &Builder{
		g:        graph.New(n),
		byTitle:  make(map[string]graph.NodeID, n),
		redirect: make(map[graph.NodeID]graph.NodeID),
	}
}

func (b *Builder) addNode(kind graph.NodeKind, name string) (graph.NodeID, error) {
	norm := text.Normalize(name)
	if norm == "" {
		return 0, fmt.Errorf("wiki: empty %s name %q", kind, name)
	}
	if prev, ok := b.byTitle[norm]; ok {
		return 0, fmt.Errorf("wiki: %s %q collides with existing node %d (%q)",
			kind, name, prev, b.names[prev])
	}
	id := b.g.AddNode(kind)
	b.names = append(b.names, name)
	b.byTitle[norm] = id
	return id, nil
}

// AddArticle creates a main article with the given title. Titles must be
// unique after normalization across articles, redirects and categories.
func (b *Builder) AddArticle(title string) (graph.NodeID, error) {
	return b.addNode(graph.Article, title)
}

// AddCategory creates a category with the given name.
func (b *Builder) AddCategory(name string) (graph.NodeID, error) {
	return b.addNode(graph.Category, name)
}

// AddRedirect creates a redirect article with the given alternative title
// pointing at main. It fails if main is not a main article.
func (b *Builder) AddRedirect(title string, main graph.NodeID) (graph.NodeID, error) {
	if err := b.requireKind(main, graph.Article); err != nil {
		return 0, fmt.Errorf("wiki: redirect %q: %w", title, err)
	}
	if _, isRedir := b.redirect[main]; isRedir {
		return 0, fmt.Errorf("wiki: redirect %q points at redirect node %d; chains are not allowed", title, main)
	}
	id, err := b.addNode(graph.Article, title)
	if err != nil {
		return 0, err
	}
	if err := b.g.AddEdge(id, main, graph.Redirect); err != nil {
		return 0, fmt.Errorf("wiki: redirect %q: %w", title, err)
	}
	b.redirect[id] = main
	return id, nil
}

func (b *Builder) requireKind(n graph.NodeID, kind graph.NodeKind) error {
	if !b.g.Valid(n) {
		return fmt.Errorf("unknown node %d", n)
	}
	if b.g.Kind(n) != kind {
		return fmt.Errorf("node %d is a %s, want %s", n, b.g.Kind(n), kind)
	}
	return nil
}

func (b *Builder) requireMainArticle(n graph.NodeID, role string) error {
	if err := b.requireKind(n, graph.Article); err != nil {
		return err
	}
	if _, isRedir := b.redirect[n]; isRedir {
		return fmt.Errorf("%s %d is a redirect; redirects have no relations besides redirects_to", role, n)
	}
	return nil
}

// AddLink inserts a link edge between two main articles.
func (b *Builder) AddLink(from, to graph.NodeID) error {
	if err := b.requireMainArticle(from, "link source"); err != nil {
		return fmt.Errorf("wiki: %w", err)
	}
	if err := b.requireMainArticle(to, "link target"); err != nil {
		return fmt.Errorf("wiki: %w", err)
	}
	return b.g.AddEdge(from, to, graph.Link)
}

// AddBelongs asserts that main article a belongs to category c.
func (b *Builder) AddBelongs(a, c graph.NodeID) error {
	if err := b.requireMainArticle(a, "belongs source"); err != nil {
		return fmt.Errorf("wiki: %w", err)
	}
	if err := b.requireKind(c, graph.Category); err != nil {
		return fmt.Errorf("wiki: %w", err)
	}
	return b.g.AddEdge(a, c, graph.Belongs)
}

// AddInside nests category child inside category parent.
func (b *Builder) AddInside(child, parent graph.NodeID) error {
	if err := b.requireKind(child, graph.Category); err != nil {
		return fmt.Errorf("wiki: %w", err)
	}
	if err := b.requireKind(parent, graph.Category); err != nil {
		return fmt.Errorf("wiki: %w", err)
	}
	return b.g.AddEdge(child, parent, graph.Inside)
}

// Build validates the global schema and returns the immutable Snapshot.
// The builder must not be used afterwards.
func (b *Builder) Build() (*Snapshot, error) {
	inbound := make(map[graph.NodeID][]graph.NodeID)
	for redir, main := range b.redirect {
		inbound[main] = append(inbound[main], redir)
	}
	// Sort each alias list: b.redirect is a map, so append order above is
	// nondeterministic, and RedirectsTo order is visible (redirect-alias
	// expansion features, snapshot encoding).
	for _, ins := range inbound {
		sort.Slice(ins, func(i, j int) bool { return ins[i] < ins[j] })
	}
	for _, id := range b.g.NodesOfKind(graph.Article) {
		if _, isRedir := b.redirect[id]; isRedir {
			continue
		}
		hasCategory := false
		for _, arc := range b.g.Out(id) {
			if arc.Kind == graph.Belongs {
				hasCategory = true
				break
			}
		}
		if !hasCategory {
			return nil, fmt.Errorf("wiki: article %d (%q) belongs to no category; the schema requires at least one",
				id, b.names[id])
		}
	}
	return &Snapshot{
		g:        b.g,
		names:    b.names,
		byTitle:  b.byTitle,
		redirect: b.redirect,
		inbound:  inbound,
	}, nil
}
