package wiki

import (
	"strings"
	"testing"

	"github.com/querygraph/querygraph/internal/graph"
)

// buildVenice builds the small knowledge base used across the wiki tests,
// modeled on the paper's running example (query #90 "gondola in venice").
func buildVenice(t *testing.T) (*Snapshot, map[string]graph.NodeID) {
	t.Helper()
	b := NewBuilder(16)
	ids := map[string]graph.NodeID{}
	add := func(name string, f func() (graph.NodeID, error)) {
		t.Helper()
		id, err := f()
		if err != nil {
			t.Fatalf("add %q: %v", name, err)
		}
		ids[name] = id
	}
	add("gondola", func() (graph.NodeID, error) { return b.AddArticle("Gondola") })
	add("venice", func() (graph.NodeID, error) { return b.AddArticle("Venice") })
	add("grand canal", func() (graph.NodeID, error) { return b.AddArticle("Grand Canal (Venice)") })
	add("cannaregio", func() (graph.NodeID, error) { return b.AddArticle("Cannaregio") })
	add("cat:venice", func() (graph.NodeID, error) { return b.AddCategory("Category:Venice") })
	add("cat:canals", func() (graph.NodeID, error) { return b.AddCategory("Canals in Italy") })
	add("cat:italy", func() (graph.NodeID, error) { return b.AddCategory("Italy") })
	add("regata", func() (graph.NodeID, error) { return b.AddRedirect("Regata", ids["gondola"]) })

	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(b.AddLink(ids["gondola"], ids["venice"]))
	must(b.AddLink(ids["venice"], ids["gondola"])) // reciprocal
	must(b.AddLink(ids["venice"], ids["grand canal"]))
	must(b.AddLink(ids["grand canal"], ids["cannaregio"]))
	must(b.AddBelongs(ids["gondola"], ids["cat:venice"]))
	must(b.AddBelongs(ids["venice"], ids["cat:venice"]))
	must(b.AddBelongs(ids["grand canal"], ids["cat:canals"]))
	must(b.AddBelongs(ids["cannaregio"], ids["cat:venice"]))
	must(b.AddInside(ids["cat:venice"], ids["cat:italy"]))
	must(b.AddInside(ids["cat:canals"], ids["cat:italy"]))

	s, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return s, ids
}

func TestSnapshotBasics(t *testing.T) {
	s, ids := buildVenice(t)
	if s.NumArticles() != 4 {
		t.Errorf("NumArticles = %d, want 4", s.NumArticles())
	}
	if s.NumRedirects() != 1 {
		t.Errorf("NumRedirects = %d, want 1", s.NumRedirects())
	}
	if s.NumCategories() != 3 {
		t.Errorf("NumCategories = %d, want 3", s.NumCategories())
	}
	if got := len(s.MainArticles()); got != 4 {
		t.Errorf("MainArticles len = %d, want 4", got)
	}
	if s.Name(ids["gondola"]) != "Gondola" {
		t.Errorf("Name = %q", s.Name(ids["gondola"]))
	}
}

func TestLookupNormalization(t *testing.T) {
	s, ids := buildVenice(t)
	for _, q := range []string{"grand canal (venice)", "Grand Canal (Venice)", "GRAND canal venice"} {
		id, ok := s.Lookup(q)
		if !ok || id != ids["grand canal"] {
			t.Errorf("Lookup(%q) = %d,%v want %d,true", q, id, ok, ids["grand canal"])
		}
	}
	if _, ok := s.Lookup("palazzo bembo"); ok {
		t.Error("Lookup of missing title should fail")
	}
	// Redirect titles resolve to the redirect node.
	id, ok := s.Lookup("regata")
	if !ok || !s.IsRedirect(id) {
		t.Fatalf("Lookup(regata) = %d,%v; want a redirect node", id, ok)
	}
	if s.MainOf(id) != ids["gondola"] {
		t.Errorf("MainOf(regata) = %d, want gondola %d", s.MainOf(id), ids["gondola"])
	}
}

func TestMainOfIdentityForNonRedirects(t *testing.T) {
	s, ids := buildVenice(t)
	if s.MainOf(ids["venice"]) != ids["venice"] {
		t.Error("MainOf(main article) should be identity")
	}
	if s.MainOf(ids["cat:italy"]) != ids["cat:italy"] {
		t.Error("MainOf(category) should be identity")
	}
}

func TestRedirectsTo(t *testing.T) {
	s, ids := buildVenice(t)
	rs := s.RedirectsTo(ids["gondola"])
	if len(rs) != 1 || s.Name(rs[0]) != "Regata" {
		t.Errorf("RedirectsTo(gondola) = %v", rs)
	}
	if rs := s.RedirectsTo(ids["venice"]); len(rs) != 0 {
		t.Errorf("RedirectsTo(venice) = %v, want empty", rs)
	}
}

func TestCategoriesOf(t *testing.T) {
	s, ids := buildVenice(t)
	cats := s.CategoriesOf(ids["gondola"])
	if len(cats) != 1 || cats[0] != ids["cat:venice"] {
		t.Errorf("CategoriesOf(gondola) = %v", cats)
	}
}

func TestReciprocalLinkRatio(t *testing.T) {
	s, _ := buildVenice(t)
	// Linked unordered pairs: {gondola,venice} (reciprocal), {venice,grand
	// canal}, {grand canal,cannaregio} -> 1/3.
	got := s.ReciprocalLinkRatio()
	if got < 0.333 || got > 0.334 {
		t.Errorf("ReciprocalLinkRatio = %g, want 1/3", got)
	}
}

func TestStats(t *testing.T) {
	s, _ := buildVenice(t)
	st := s.Stats()
	if st.Articles != 4 || st.Redirects != 1 || st.Categories != 3 {
		t.Errorf("Stats nodes = %+v", st)
	}
	if st.Links != 4 || st.Belongs != 4 || st.Inside != 2 {
		t.Errorf("Stats edges = %+v", st)
	}
}

func TestDuplicateTitleRejected(t *testing.T) {
	b := NewBuilder(4)
	if _, err := b.AddArticle("Venice"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddArticle("venice"); err == nil {
		t.Error("normalized duplicate title should be rejected")
	}
	if _, err := b.AddCategory("VENICE"); err == nil {
		t.Error("category colliding with article title should be rejected")
	}
	if _, err := b.AddArticle("  !! "); err == nil {
		t.Error("empty-after-normalization title should be rejected")
	}
}

func TestSchemaViolations(t *testing.T) {
	b := NewBuilder(8)
	a, _ := b.AddArticle("A")
	c, _ := b.AddCategory("C")
	r, err := b.AddRedirect("R", a)
	if err != nil {
		t.Fatal(err)
	}

	if err := b.AddLink(a, c); err == nil {
		t.Error("link to category should fail")
	}
	if err := b.AddLink(c, a); err == nil {
		t.Error("link from category should fail")
	}
	if err := b.AddLink(a, r); err == nil {
		t.Error("link to redirect should fail")
	}
	if err := b.AddLink(r, a); err == nil {
		t.Error("link from redirect should fail")
	}
	if err := b.AddBelongs(c, c); err == nil {
		t.Error("belongs from category should fail")
	}
	if err := b.AddBelongs(r, c); err == nil {
		t.Error("belongs from redirect should fail")
	}
	if err := b.AddInside(a, c); err == nil {
		t.Error("inside from article should fail")
	}
	if _, err := b.AddRedirect("R2", r); err == nil {
		t.Error("redirect chain should fail")
	}
	if _, err := b.AddRedirect("R3", c); err == nil {
		t.Error("redirect to category should fail")
	}
	if _, err := b.AddRedirect("R4", 999); err == nil {
		t.Error("redirect to unknown node should fail")
	}
}

func TestBuildRequiresCategory(t *testing.T) {
	b := NewBuilder(2)
	if _, err := b.AddArticle("Orphan"); err != nil {
		t.Fatal(err)
	}
	_, err := b.Build()
	if err == nil {
		t.Fatal("Build should fail for an article without categories")
	}
	if !strings.Contains(err.Error(), "Orphan") {
		t.Errorf("error should name the offending article: %v", err)
	}
}

func TestBuildRedirectNeedsNoCategory(t *testing.T) {
	b := NewBuilder(4)
	a, _ := b.AddArticle("Main")
	c, _ := b.AddCategory("Cat")
	if err := b.AddBelongs(a, c); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddRedirect("Alias", a); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err != nil {
		t.Errorf("redirects must not require categories: %v", err)
	}
}

func TestTitlesMapCoversEverything(t *testing.T) {
	s, _ := buildVenice(t)
	titles := s.Titles()
	if len(titles) != 8 { // 4 articles + 1 redirect + 3 categories
		t.Errorf("Titles() has %d entries, want 8", len(titles))
	}
	for norm, id := range titles {
		if norm == "" {
			t.Error("empty normalized title in map")
		}
		if !s.Graph().Valid(id) {
			t.Errorf("title %q maps to invalid node", norm)
		}
	}
}

func TestReciprocalRatioEmptyGraph(t *testing.T) {
	b := NewBuilder(0)
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if s.ReciprocalLinkRatio() != 0 {
		t.Error("empty snapshot should have ratio 0")
	}
}
