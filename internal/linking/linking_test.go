package linking

import (
	"testing"

	"github.com/querygraph/querygraph/internal/graph"
	"github.com/querygraph/querygraph/internal/wiki"
)

// buildKB constructs the linker test knowledge base:
//
//	articles: "Gondola", "Venice", "Grand Canal", "Street Art", "Art",
//	          "Regatta", "Regatta Storica"
//	redirects: "Regata" -> Regatta, "La Serenissima" -> Venice
func buildKB(t *testing.T) (*wiki.Snapshot, map[string]graph.NodeID) {
	t.Helper()
	b := wiki.NewBuilder(16)
	ids := map[string]graph.NodeID{}
	mustA := func(title string) graph.NodeID {
		t.Helper()
		id, err := b.AddArticle(title)
		if err != nil {
			t.Fatal(err)
		}
		ids[title] = id
		return id
	}
	cat, err := b.AddCategory("Things")
	if err != nil {
		t.Fatal(err)
	}
	for _, title := range []string{"Gondola", "Venice", "Grand Canal", "Street Art", "Art", "Regatta", "Regatta Storica"} {
		id := mustA(title)
		if err := b.AddBelongs(id, cat); err != nil {
			t.Fatal(err)
		}
	}
	r1, err := b.AddRedirect("Regata", ids["Regatta"])
	if err != nil {
		t.Fatal(err)
	}
	ids["Regata"] = r1
	r2, err := b.AddRedirect("La Serenissima", ids["Venice"])
	if err != nil {
		t.Fatal(err)
	}
	ids["La Serenissima"] = r2
	snap, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return snap, ids
}

func TestLinkSimple(t *testing.T) {
	snap, ids := buildKB(t)
	l := New(snap)
	ms := l.Link("a gondola in venice")
	if len(ms) != 2 {
		t.Fatalf("mentions = %+v", ms)
	}
	if ms[0].Node != ids["Gondola"] || ms[1].Node != ids["Venice"] {
		t.Errorf("mentions = %+v", ms)
	}
	if ms[0].Start != 1 || ms[0].End != 2 || ms[1].Start != 3 || ms[1].End != 4 {
		t.Errorf("spans = %+v", ms)
	}
}

func TestMaximalMunch(t *testing.T) {
	snap, ids := buildKB(t)
	l := New(snap)
	// "street art" must match the longer title, not the nested "art".
	ms := l.Link("graffiti street art")
	if len(ms) != 1 || ms[0].Node != ids["Street Art"] {
		t.Fatalf("mentions = %+v, want only Street Art", ms)
	}
	// A lone "art" still matches "Art".
	ms = l.Link("modern art here")
	if len(ms) != 1 || ms[0].Node != ids["Art"] {
		t.Fatalf("mentions = %+v, want Art", ms)
	}
}

func TestNoOverlapAfterMatch(t *testing.T) {
	snap, ids := buildKB(t)
	l := New(snap)
	// After consuming "grand canal", scanning resumes after it.
	ms := l.Link("grand canal venice")
	if len(ms) != 2 {
		t.Fatalf("mentions = %+v", ms)
	}
	if ms[0].Node != ids["Grand Canal"] || ms[1].Node != ids["Venice"] {
		t.Errorf("mentions = %+v", ms)
	}
}

func TestCaseAndPunctuationInsensitive(t *testing.T) {
	snap, ids := buildKB(t)
	l := New(snap)
	ms := l.Link("GONDOLA, Venice!")
	if len(ms) != 2 || ms[0].Node != ids["Gondola"] || ms[1].Node != ids["Venice"] {
		t.Fatalf("mentions = %+v", ms)
	}
}

func TestRedirectTitleMatches(t *testing.T) {
	snap, ids := buildKB(t)
	l := New(snap)
	ms := l.Link("la serenissima by night")
	if len(ms) != 1 || ms[0].Node != ids["La Serenissima"] {
		t.Fatalf("mentions = %+v", ms)
	}
	if snap.MainOf(ms[0].Node) != ids["Venice"] {
		t.Error("redirect should resolve to Venice")
	}
	mains := l.LinkMain("la serenissima by night")
	if len(mains) != 1 || mains[0] != ids["Venice"] {
		t.Errorf("LinkMain = %v", mains)
	}
}

func TestSynonymSubstitution(t *testing.T) {
	snap, ids := buildKB(t)
	l := New(snap)
	// "regata storica": no article title matches literally, but the paper's
	// synonym-phrase mechanism applies — "regata" redirects to "Regatta",
	// and replacing the term by its synonym yields the phrase "regatta
	// storica", which matches the title "Regatta Storica".
	ms := l.Link("regata storica 2011")
	if len(ms) != 1 {
		t.Fatalf("mentions = %+v", ms)
	}
	if !ms[0].Substituted {
		t.Errorf("match should be flagged as substituted: %+v", ms[0])
	}
	if ms[0].Node != ids["Regatta Storica"] {
		t.Errorf("mention = %+v, want Regatta Storica", ms[0])
	}
	if ms[0].Start != 0 || ms[0].End != 2 {
		t.Errorf("span = %+v, want [0,2)", ms[0])
	}
}

func TestLiteralPreferredOverSubstituted(t *testing.T) {
	snap, ids := buildKB(t)
	l := New(snap)
	// "regata" alone matches the redirect literally; no substitution needed.
	ms := l.Link("regata")
	if len(ms) != 1 || ms[0].Substituted || ms[0].Node != ids["Regata"] {
		t.Fatalf("mentions = %+v", ms)
	}
}

func TestLinkSetDedupesAndSorts(t *testing.T) {
	snap, ids := buildKB(t)
	l := New(snap)
	set := l.LinkSet("venice venice gondola venice")
	if len(set) != 2 {
		t.Fatalf("LinkSet = %v", set)
	}
	if set[0] != ids["Gondola"] || set[1] != ids["Venice"] {
		t.Errorf("LinkSet = %v (gondola=%d venice=%d)", set, ids["Gondola"], ids["Venice"])
	}
}

func TestLinkNothing(t *testing.T) {
	snap, _ := buildKB(t)
	l := New(snap)
	if ms := l.Link("totally unrelated words"); len(ms) != 0 {
		t.Errorf("mentions = %+v, want none", ms)
	}
	if ms := l.Link(""); len(ms) != 0 {
		t.Errorf("mentions of empty = %+v", ms)
	}
	if set := l.LinkSet(""); len(set) != 0 {
		t.Errorf("LinkSet of empty = %v", set)
	}
}

func TestCategoriesNotLinkable(t *testing.T) {
	snap, _ := buildKB(t)
	l := New(snap)
	if ms := l.Link("things"); len(ms) != 0 {
		t.Errorf("category name produced mentions: %+v", ms)
	}
}

func TestMentionOrderAndSpans(t *testing.T) {
	snap, _ := buildKB(t)
	l := New(snap)
	ms := l.Link("venice grand canal gondola")
	if len(ms) != 3 {
		t.Fatalf("mentions = %+v", ms)
	}
	for i := 1; i < len(ms); i++ {
		if ms[i].Start < ms[i-1].End {
			t.Errorf("overlapping mentions: %+v", ms)
		}
	}
}
