// Package linking implements the entity-linking step of the paper's
// Section 2.1: representing a text as the set of Wikipedia articles whose
// titles occur in it.
//
// The process "consists in identifying the set of the largest substrings in
// the input query that matches with the title of an article in Wikipedia";
// additionally the paper searches synonym phrases, where a term of the
// input is replaced by a synonymous term derived from Wikipedia redirects
// (given a term t whose title matches article a, the synonyms of t are the
// titles of the redirects of a, and symmetrically the main title when t is
// itself a redirect).
//
// The Linker builds a token-level trie over every normalized title
// (articles, redirects and categories are all in the dictionary; only
// article titles produce mentions) and runs greedy maximal-munch matching
// left to right, allowing at most one synonym substitution per mention.
package linking

import (
	"sort"

	"github.com/querygraph/querygraph/internal/graph"
	"github.com/querygraph/querygraph/internal/text"
	"github.com/querygraph/querygraph/internal/wiki"
)

// Mention is one matched article occurrence in the input text.
type Mention struct {
	Node graph.NodeID // matched article (may be a redirect article)
	// Start and End are the token span [Start, End) in the tokenized input.
	Start, End int
	// Substituted reports whether the match needed a synonym substitution.
	Substituted bool
}

type trieNode struct {
	children map[string]*trieNode
	terminal bool
	node     graph.NodeID
}

func (tn *trieNode) child(tok string) *trieNode {
	if tn.children == nil {
		return nil
	}
	return tn.children[tok]
}

func (tn *trieNode) ensure(tok string) *trieNode {
	if tn.children == nil {
		tn.children = make(map[string]*trieNode)
	}
	ch, ok := tn.children[tok]
	if !ok {
		ch = &trieNode{}
		tn.children[tok] = ch
	}
	return ch
}

// Linker links free text to the articles of one Snapshot. It is safe for
// concurrent use once constructed.
type Linker struct {
	snap *wiki.Snapshot
	root *trieNode
	// synonyms maps a single token to the alternative token sequences
	// derived from redirects (redirect title <-> main title).
	synonyms map[string][][]string
}

// New builds the linker's trie and synonym table from the snapshot.
func New(snap *wiki.Snapshot) *Linker {
	l := &Linker{
		snap:     snap,
		root:     &trieNode{},
		synonyms: make(map[string][][]string),
	}
	g := snap.Graph()
	for norm, id := range snap.Titles() {
		if g.Kind(id) != graph.Article {
			continue // category names are not linkable entities
		}
		tokens := text.Tokenize(norm)
		cur := l.root
		for _, tok := range tokens {
			cur = cur.ensure(tok)
		}
		cur.terminal = true
		cur.node = id
	}
	// Synonym table: for every single-token article title, the alternative
	// titles of the same underlying main article.
	for norm, id := range snap.Titles() {
		if g.Kind(id) != graph.Article {
			continue
		}
		tokens := text.Tokenize(norm)
		if len(tokens) != 1 {
			continue
		}
		main := snap.MainOf(id)
		var alts [][]string
		addAlt := func(altID graph.NodeID) {
			if altID == id {
				return
			}
			altTokens := text.Tokenize(snap.Name(altID))
			if len(altTokens) > 0 {
				alts = append(alts, altTokens)
			}
		}
		addAlt(main)
		for _, r := range snap.RedirectsTo(main) {
			addAlt(r)
		}
		if len(alts) > 0 {
			l.synonyms[tokens[0]] = alts
		}
	}
	return l
}

// match is a trie walk outcome: the number of input tokens consumed and the
// matched article.
type match struct {
	consumed    int
	node        graph.NodeID
	substituted bool
}

// longestFrom finds the longest match starting at tokens[start]. Literal
// consumption is always tried; at most one token may be replaced by one of
// its synonym expansions. Longer matches win; on equal length a literal
// match beats a substituted one.
func (l *Linker) longestFrom(tokens []string, start int) (match, bool) {
	best := match{}
	found := false
	better := func(m match) bool {
		if !found {
			return true
		}
		if m.consumed != best.consumed {
			return m.consumed > best.consumed
		}
		return best.substituted && !m.substituted
	}
	// walk explores from trie node tn at input offset i.
	var walk func(tn *trieNode, i int, substituted bool)
	walk = func(tn *trieNode, i int, substituted bool) {
		if tn.terminal {
			m := match{consumed: i - start, node: tn.node, substituted: substituted}
			if m.consumed > 0 && better(m) {
				best = m
				found = true
			}
		}
		if i >= len(tokens) {
			return
		}
		if next := tn.child(tokens[i]); next != nil {
			walk(next, i+1, substituted)
		}
		if substituted {
			return
		}
		for _, alt := range l.synonyms[tokens[i]] {
			cur := tn
			ok := true
			for _, altTok := range alt {
				cur = cur.child(altTok)
				if cur == nil {
					ok = false
					break
				}
			}
			if ok {
				walk(cur, i+1, true)
			}
		}
	}
	walk(l.root, start, false)
	return best, found
}

// Link tokenizes the input and returns the mentions found by greedy
// maximal-munch matching, in input order. Overlaps are not produced: after
// a match the scan resumes past it, mirroring the paper's "largest
// substrings" extraction.
func (l *Linker) Link(input string) []Mention {
	tokens := text.Tokenize(input)
	var out []Mention
	for i := 0; i < len(tokens); {
		m, ok := l.longestFrom(tokens, i)
		if !ok {
			i++
			continue
		}
		out = append(out, Mention{
			Node:        m.node,
			Start:       i,
			End:         i + m.consumed,
			Substituted: m.substituted,
		})
		i += m.consumed
	}
	return out
}

// LinkSet returns the deduplicated set of matched article nodes (redirects
// are preserved as matched), sorted ascending. This is the paper's L(·).
func (l *Linker) LinkSet(input string) []graph.NodeID {
	return dedupe(l.Link(input), func(m Mention) graph.NodeID { return m.Node })
}

// LinkMain returns the deduplicated set of main articles mentioned in the
// input: matched redirects are resolved through MainOf.
func (l *Linker) LinkMain(input string) []graph.NodeID {
	return dedupe(l.Link(input), func(m Mention) graph.NodeID { return l.snap.MainOf(m.Node) })
}

func dedupe(ms []Mention, key func(Mention) graph.NodeID) []graph.NodeID {
	seen := make(map[graph.NodeID]struct{}, len(ms))
	out := make([]graph.NodeID, 0, len(ms))
	for _, m := range ms {
		id := key(m)
		if _, ok := seen[id]; ok {
			continue
		}
		seen[id] = struct{}{}
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
