package text

import (
	"strings"
	"testing"
	"testing/quick"
	"unicode"
)

func TestTokenizeBasic(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Graffiti Street Art", []string{"graffiti", "street", "art"}},
		{"  gondola   in  VENICE ", []string{"gondola", "in", "venice"}},
		{"Grand Canal (Venice)", []string{"grand", "canal", "venice"}},
		{"don't stop-me_now", []string{"don", "t", "stop", "me", "now"}},
		{"", nil},
		{"...!!!", nil},
		{"ImageCLEF2011 file_82531.jpg", []string{"imageclef2011", "file", "82531", "jpg"}},
		{"Centaurea cyanus", []string{"centaurea", "cyanus"}},
		{"blühendes Feld", []string{"blühendes", "feld"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if strings.Join(got, "|") != strings.Join(c.want, "|") {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormalize(t *testing.T) {
	if got := Normalize("  Grand   CANAL (Venice) "); got != "grand canal venice" {
		t.Errorf("Normalize = %q", got)
	}
	if got := Normalize(""); got != "" {
		t.Errorf("Normalize(empty) = %q", got)
	}
}

// Property: tokens never contain separators and are always lowercase.
func TestTokenizePropertyClean(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				return false
			}
			for _, r := range tok {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					return false
				}
				// Lowercasing must be a fixed point. (Some uppercase letters,
				// e.g. mathematical capitals, have no lowercase mapping and
				// legitimately survive ToLower.)
				if unicode.ToLower(r) != r {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: normalization is idempotent.
func TestNormalizeIdempotentProperty(t *testing.T) {
	f := func(s string) bool {
		n := Normalize(s)
		return Normalize(n) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestIsStopword(t *testing.T) {
	for _, w := range []string{"the", "in", "of", "and"} {
		if !IsStopword(w) {
			t.Errorf("IsStopword(%q) = false, want true", w)
		}
	}
	for _, w := range []string{"gondola", "venice", "", "thee"} {
		if IsStopword(w) {
			t.Errorf("IsStopword(%q) = true, want false", w)
		}
	}
}

// Porter test vectors from the original paper and its reference vocabulary.
func TestPorterKnownVectors(t *testing.T) {
	cases := map[string]string{
		// step 1a
		"caresses": "caress",
		"ponies":   "poni",
		"ties":     "ti",
		"caress":   "caress",
		"cats":     "cat",
		// step 1b
		"feed":      "feed",
		"agreed":    "agre",
		"plastered": "plaster",
		"bled":      "bled",
		"motoring":  "motor",
		"sing":      "sing",
		"conflated": "conflat",
		"troubled":  "troubl",
		"sized":     "size",
		"hopping":   "hop",
		"tanned":    "tan",
		"falling":   "fall",
		"hissing":   "hiss",
		"fizzed":    "fizz",
		"failing":   "fail",
		"filing":    "file",
		// step 1c
		"happy": "happi",
		"sky":   "sky",
		// step 2
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		// step 3
		"triplicate":  "triplic",
		"formative":   "form",
		"formalize":   "formal",
		"electriciti": "electr",
		"electrical":  "electr",
		"hopeful":     "hope",
		"goodness":    "good",
		// step 4
		"revival":     "reviv",
		"allowance":   "allow",
		"inference":   "infer",
		"airliner":    "airlin",
		"gyroscopic":  "gyroscop",
		"adjustable":  "adjust",
		"defensible":  "defens",
		"irritant":    "irrit",
		"replacement": "replac",
		"adjustment":  "adjust",
		"dependent":   "depend",
		"adoption":    "adopt",
		"homologou":   "homolog",
		"communism":   "commun",
		"activate":    "activ",
		"angulariti":  "angular",
		"homologous":  "homolog",
		"effective":   "effect",
		"bowdlerize":  "bowdler",
		// step 5
		"probate":  "probat",
		"rate":     "rate",
		"cease":    "ceas",
		"controll": "control",
		"roll":     "roll",
		// misc sanity
		"generalization": "gener",
		"oscillators":    "oscil",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortAndNonASCII(t *testing.T) {
	for _, w := range []string{"a", "be", "", "né", "café", "x9y"} {
		if w == "x9y" {
			continue // digits: handled below
		}
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
	if got := Stem("x9y"); got != "x9y" {
		t.Errorf("Stem with digit = %q, want unchanged", got)
	}
}

// Property: stemming never lengthens a word beyond one appended 'e' and is
// idempotent on its own output for plain ASCII words.
func TestStemIdempotentProperty(t *testing.T) {
	words := []string{
		"running", "connection", "connections", "connective", "carefully",
		"italian", "painters", "venetian", "attractions", "bridges",
		"completed", "established", "organizations", "photographs",
		"windsurfing", "quarantine", "anthrax", "gondolas", "historic",
	}
	for _, w := range words {
		once := Stem(w)
		twice := Stem(once)
		// Porter is not idempotent in general, but must be stable within two
		// applications for our vocabulary (the index stems exactly once; the
		// linker must agree).
		if Stem(twice) != twice {
			t.Errorf("Stem unstable for %q: %q -> %q -> %q", w, once, twice, Stem(twice))
		}
	}
}

func TestAnalyzer(t *testing.T) {
	plain := NewAnalyzer(false, false)
	if got := plain.Analyze("The Bridges of Venice"); strings.Join(got, " ") != "the bridges of venice" {
		t.Errorf("plain analyze = %v", got)
	}
	stop := NewAnalyzer(true, false)
	if got := stop.Analyze("The Bridges of Venice"); strings.Join(got, " ") != "bridges venice" {
		t.Errorf("stopword analyze = %v", got)
	}
	full := NewAnalyzer(true, true)
	if got := full.Analyze("The Bridges of Venice"); strings.Join(got, " ") != "bridg venic" {
		t.Errorf("full analyze = %v", got)
	}
	if !full.Stems() || !full.RemovesStopwords() {
		t.Error("full analyzer flags wrong")
	}
	if plain.Stems() || plain.RemovesStopwords() {
		t.Error("plain analyzer flags wrong")
	}
}

func TestAnalyzerNilSafe(t *testing.T) {
	var a *Analyzer
	if got := a.Analyze("Venice Canals"); strings.Join(got, " ") != "venice canals" {
		t.Errorf("nil analyzer analyze = %v", got)
	}
	if a.Stems() || a.RemovesStopwords() {
		t.Error("nil analyzer should report no filters")
	}
}
