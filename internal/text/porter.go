package text

// Porter stemming algorithm (M.F. Porter, "An algorithm for suffix
// stripping", Program 14(3), 1980). This is a faithful implementation of the
// original five-step algorithm operating on lowercase ASCII words; words
// containing non-ASCII-letter bytes are returned unchanged, as are words of
// length <= 2 (per the original paper's guard).

// Stem returns the Porter stem of the lowercase word w.
func Stem(w string) string {
	if len(w) <= 2 {
		return w
	}
	for i := 0; i < len(w); i++ {
		if w[i] < 'a' || w[i] > 'z' {
			return w
		}
	}
	s := &stemmer{b: []byte(w)}
	s.step1a()
	s.step1b()
	s.step1c()
	s.step2()
	s.step3()
	s.step4()
	s.step5a()
	s.step5b()
	return string(s.b)
}

type stemmer struct {
	b []byte
}

// isConsonant reports whether the letter at index i acts as a consonant.
// 'y' is a consonant when it starts the word or follows a vowel-acting
// letter.
func (s *stemmer) isConsonant(i int) bool {
	switch s.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !s.isConsonant(i - 1)
	}
	return true
}

// measure computes m for the prefix b[0:end]: the number of VC sequences in
// the canonical form [C](VC)^m[V].
func (s *stemmer) measure(end int) int {
	n := 0
	i := 0
	// Skip the optional initial consonant run.
	for i < end && s.isConsonant(i) {
		i++
	}
	for i < end {
		// Vowel run.
		for i < end && !s.isConsonant(i) {
			i++
		}
		if i >= end {
			break
		}
		// Consonant run: one VC sequence completed.
		n++
		for i < end && s.isConsonant(i) {
			i++
		}
	}
	return n
}

// hasVowel reports whether the prefix b[0:end] contains a vowel.
func (s *stemmer) hasVowel(end int) bool {
	for i := 0; i < end; i++ {
		if !s.isConsonant(i) {
			return true
		}
	}
	return false
}

// doubleConsonant reports whether the word ends in a doubled consonant.
func (s *stemmer) doubleConsonant() bool {
	n := len(s.b)
	return n >= 2 && s.b[n-1] == s.b[n-2] && s.isConsonant(n-1)
}

// cvc reports whether the prefix of length end ends consonant-vowel-consonant
// where the final consonant is not w, x or y (the *o condition).
func (s *stemmer) cvc(end int) bool {
	if end < 3 {
		return false
	}
	i := end - 1
	if !s.isConsonant(i) || s.isConsonant(i-1) || !s.isConsonant(i-2) {
		return false
	}
	switch s.b[i] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// hasSuffix reports whether the word ends with suf.
func (s *stemmer) hasSuffix(suf string) bool {
	n := len(s.b)
	if n < len(suf) {
		return false
	}
	return string(s.b[n-len(suf):]) == suf
}

// stemEnd returns the length of the word with suf removed.
func (s *stemmer) stemEnd(suf string) int { return len(s.b) - len(suf) }

// replace replaces the suffix suf (which must be present) with rep.
func (s *stemmer) replace(suf, rep string) {
	s.b = append(s.b[:s.stemEnd(suf)], rep...)
}

// replaceIfM replaces suf with rep when the stem before suf has measure > m.
// It reports whether suf was present (not whether the rule fired), matching
// the "first matching suffix wins" control flow of the original algorithm.
func (s *stemmer) replaceIfM(suf, rep string, m int) bool {
	if !s.hasSuffix(suf) {
		return false
	}
	if s.measure(s.stemEnd(suf)) > m {
		s.replace(suf, rep)
	}
	return true
}

func (s *stemmer) step1a() {
	switch {
	case s.hasSuffix("sses"):
		s.replace("sses", "ss")
	case s.hasSuffix("ies"):
		s.replace("ies", "i")
	case s.hasSuffix("ss"):
		// unchanged
	case s.hasSuffix("s"):
		s.replace("s", "")
	}
}

func (s *stemmer) step1b() {
	if s.hasSuffix("eed") {
		if s.measure(s.stemEnd("eed")) > 0 {
			s.replace("eed", "ee")
		}
		return
	}
	fired := false
	if s.hasSuffix("ed") && s.hasVowel(s.stemEnd("ed")) {
		s.replace("ed", "")
		fired = true
	} else if s.hasSuffix("ing") && s.hasVowel(s.stemEnd("ing")) {
		s.replace("ing", "")
		fired = true
	}
	if !fired {
		return
	}
	switch {
	case s.hasSuffix("at"):
		s.replace("at", "ate")
	case s.hasSuffix("bl"):
		s.replace("bl", "ble")
	case s.hasSuffix("iz"):
		s.replace("iz", "ize")
	case s.doubleConsonant():
		switch s.b[len(s.b)-1] {
		case 'l', 's', 'z':
			// keep the double letter
		default:
			s.b = s.b[:len(s.b)-1]
		}
	case s.measure(len(s.b)) == 1 && s.cvc(len(s.b)):
		s.b = append(s.b, 'e')
	}
}

func (s *stemmer) step1c() {
	if s.hasSuffix("y") && s.hasVowel(s.stemEnd("y")) {
		s.b[len(s.b)-1] = 'i'
	}
}

func (s *stemmer) step2() {
	// Pairs are checked in the original algorithm's order; the first suffix
	// present stops the scan whether or not the measure condition holds.
	rules := []struct{ suf, rep string }{
		{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
		{"anci", "ance"}, {"izer", "ize"}, {"abli", "able"},
		{"alli", "al"}, {"entli", "ent"}, {"eli", "e"}, {"ousli", "ous"},
		{"ization", "ize"}, {"ation", "ate"}, {"ator", "ate"},
		{"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
		{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"},
		{"biliti", "ble"},
	}
	for _, r := range rules {
		if s.replaceIfM(r.suf, r.rep, 0) {
			return
		}
	}
}

func (s *stemmer) step3() {
	rules := []struct{ suf, rep string }{
		{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
		{"ical", "ic"}, {"ful", ""}, {"ness", ""},
	}
	for _, r := range rules {
		if s.replaceIfM(r.suf, r.rep, 0) {
			return
		}
	}
}

func (s *stemmer) step4() {
	suffixes := []string{
		"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
		"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
	}
	for _, suf := range suffixes {
		if !s.hasSuffix(suf) {
			continue
		}
		end := s.stemEnd(suf)
		if s.measure(end) > 1 {
			if suf == "ion" && end > 0 && s.b[end-1] != 's' && s.b[end-1] != 't' {
				return // ion only strips after s or t
			}
			s.b = s.b[:end]
		}
		return
	}
}

func (s *stemmer) step5a() {
	if !s.hasSuffix("e") {
		return
	}
	end := s.stemEnd("e")
	m := s.measure(end)
	if m > 1 || (m == 1 && !s.cvc(end)) {
		s.b = s.b[:end]
	}
}

func (s *stemmer) step5b() {
	n := len(s.b)
	if n >= 2 && s.b[n-1] == 'l' && s.b[n-2] == 'l' && s.measure(n) > 1 {
		s.b = s.b[:n-1]
	}
}
