// Package text implements the lexical analysis chain used by the indexing,
// search and entity-linking layers: Unicode-aware tokenization, stopword
// filtering, the Porter stemming algorithm and title normalization.
//
// The paper relies on INDRI's text pipeline; this package is the equivalent
// substrate. An Analyzer bundles the configured steps so that the indexer,
// the query parser and the entity linker are guaranteed to agree on token
// boundaries.
package text

import (
	"strings"
	"unicode"
)

// Tokenize splits s into lowercase tokens. A token is a maximal run of
// letters or digits; everything else is a separator. The function never
// returns empty tokens.
func Tokenize(s string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return tokens
}

// Normalize canonicalizes a title or phrase: lowercase, tokens joined by a
// single space. Two strings that tokenize identically normalize identically,
// which is the equality used by the entity linker ("Grand Canal (Venice)"
// and "grand canal venice" collide deliberately; Wikipedia disambiguation
// suffixes are part of the title and therefore of the token stream).
func Normalize(s string) string {
	return strings.Join(Tokenize(s), " ")
}

// Analyzer bundles a tokenization configuration. The zero value tokenizes
// only; use NewAnalyzer to enable stopword removal and stemming.
type Analyzer struct {
	removeStopwords bool
	stem            bool
}

// NewAnalyzer returns an Analyzer with the given steps enabled.
func NewAnalyzer(removeStopwords, stem bool) *Analyzer {
	return &Analyzer{removeStopwords: removeStopwords, stem: stem}
}

// Analyze converts raw text into index terms by tokenizing and applying the
// configured filters in order (stopword removal, then stemming).
func (a *Analyzer) Analyze(s string) []string {
	tokens := Tokenize(s)
	if a == nil {
		return tokens
	}
	out := tokens[:0]
	for _, tok := range tokens {
		if a.removeStopwords && IsStopword(tok) {
			continue
		}
		if a.stem {
			tok = Stem(tok)
		}
		out = append(out, tok)
	}
	return out
}

// Stems reports whether stemming is enabled.
func (a *Analyzer) Stems() bool { return a != nil && a.stem }

// RemovesStopwords reports whether stopword removal is enabled.
func (a *Analyzer) RemovesStopwords() bool { return a != nil && a.removeStopwords }
