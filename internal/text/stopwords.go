package text

// stopwords is the classic English stopword list used by SMART-era IR
// systems, trimmed to the terms that actually occur in query logs and image
// captions. Retrieval quality in the experiments is insensitive to the exact
// list; what matters is that queries such as "gondola in venice" drop the
// "in" on both the index and the query side.
var stopwords = map[string]struct{}{}

func init() {
	for _, w := range []string{
		"a", "about", "above", "after", "again", "against", "all", "am",
		"an", "and", "any", "are", "as", "at", "be", "because", "been",
		"before", "being", "below", "between", "both", "but", "by", "can",
		"did", "do", "does", "doing", "down", "during", "each", "few",
		"for", "from", "further", "had", "has", "have", "having", "he",
		"her", "here", "hers", "him", "his", "how", "i", "if", "in",
		"into", "is", "it", "its", "just", "me", "more", "most", "my",
		"no", "nor", "not", "now", "of", "off", "on", "once", "only",
		"or", "other", "our", "ours", "out", "over", "own", "same",
		"she", "should", "so", "some", "such", "than", "that", "the",
		"their", "theirs", "them", "then", "there", "these", "they",
		"this", "those", "through", "to", "too", "under", "until", "up",
		"very", "was", "we", "were", "what", "when", "where", "which",
		"while", "who", "whom", "why", "will", "with", "you", "your",
		"yours",
	} {
		stopwords[w] = struct{}{}
	}
}

// IsStopword reports whether the lowercase token w is an English stopword.
func IsStopword(w string) bool {
	_, ok := stopwords[w]
	return ok
}
