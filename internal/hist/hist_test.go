package hist

import (
	"sort"
	"sync"
	"testing"
	"time"
)

// TestHistQuantiles checks the log-linear histogram against an exact
// sorted-slice oracle on a deterministic latency population: every
// quantile must land within the structure's ~3% relative error (plus one
// sub-bucket of absolute slack at the low end). This is the oracle test
// that pinned qload's private histogram before its promotion here — the
// population and bounds are unchanged, so any behavioral drift in the
// move would fail it.
func TestHistQuantiles(t *testing.T) {
	var h Hist
	// Deterministic LCG covering several orders of magnitude, µs to
	// seconds — the shape of real latency populations.
	var state uint64 = 0x9e3779b97f4a7c15
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state
	}
	exact := make([]uint64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Spread exponents 10..30 → 1µs..1s.
		exp := 10 + next()%21
		ns := (1 << exp) + next()%(1<<exp)
		exact = append(exact, ns)
		h.Record(time.Duration(ns))
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })

	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1.0} {
		idx := int(q * float64(len(exact)))
		if idx >= len(exact) {
			idx = len(exact) - 1
		}
		want := exact[idx]
		got := uint64(h.Quantile(q))
		// The reported value is the bucket's upper bound: never below the
		// true quantile's own bucket, and within one sub-bucket width
		// (1/Sub relative) above it.
		lo := want - want/Sub - (1 << Unit)
		hi := want + want/Sub*2 + (2 << Unit)
		if got < lo || got > hi {
			t.Errorf("q%.3f: hist %d, exact %d (allowed [%d, %d])", q, got, want, lo, hi)
		}
	}
	if h.N != 20000 {
		t.Errorf("n = %d, want 20000", h.N)
	}
	if got, want := uint64(h.Quantile(1.0)), exact[len(exact)-1]; got != want {
		t.Errorf("q1.0 = %d, want exact max %d", got, want)
	}
}

// TestHistMerge pins that merging per-worker histograms is lossless:
// recording a population into one histogram and spreading it across
// several then merging must agree exactly (struct comparison — the
// counts, n, sum and max all match).
func TestHistMerge(t *testing.T) {
	var one Hist
	parts := make([]Hist, 4)
	for i := 0; i < 10000; i++ {
		d := time.Duration((i%977)*1000 + 500)
		one.Record(d)
		parts[i%len(parts)].Record(d)
	}
	var merged Hist
	for i := range parts {
		merged.Merge(&parts[i])
	}
	if merged != one {
		t.Fatal("merged per-worker histograms differ from single-histogram recording")
	}
}

func TestBucketMonotone(t *testing.T) {
	prev := -1
	for ns := uint64(1); ns < 1<<40; ns = ns*3/2 + 1 {
		idx := BucketOf(ns)
		if idx < prev {
			t.Fatalf("BucketOf not monotone at %dns: %d after %d", ns, idx, prev)
		}
		if upper := BucketUpper(idx); upper < ns {
			t.Fatalf("BucketUpper(%d) = %d < value %d", idx, upper, ns)
		}
		prev = idx
	}
}

// TestAtomicMatchesHist pins that the concurrent form is the same
// histogram: a population recorded into an Atomic from many goroutines
// snapshots to exactly what a plain Hist records single-threaded.
func TestAtomicMatchesHist(t *testing.T) {
	var want Hist
	durations := make([]time.Duration, 5000)
	for i := range durations {
		d := time.Duration((i%1231)*777 + 100)
		durations[i] = d
		want.Record(d)
	}

	var a Atomic
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(durations); i += workers {
				a.Record(durations[i])
			}
		}(w)
	}
	wg.Wait()

	if got := a.Snapshot(); got != want {
		t.Fatalf("Atomic snapshot differs from plain recording: n=%d/%d sum=%d/%d max=%d/%d",
			got.N, want.N, got.Sum, want.Sum, got.Max, want.Max)
	}
}

// TestExpositionIndices pins the Prometheus boundary scheme: indices are
// strictly increasing, each target is enclosed by its bucket (upper ≥
// target), and the le boundaries are exact bucket uppers so cumulative
// counts stay exact.
func TestExpositionIndices(t *testing.T) {
	if len(DefaultExposition) == 0 {
		t.Fatal("DefaultExposition is empty")
	}
	prev := -1
	for _, idx := range DefaultExposition {
		if idx <= prev {
			t.Fatalf("exposition indices not strictly increasing: %d after %d", idx, prev)
		}
		if idx < 0 || idx >= NumBuckets {
			t.Fatalf("exposition index %d out of range", idx)
		}
		prev = idx
	}
	// Snapping invariant: the exposed boundary is an exact bucket edge —
	// everything below it is in buckets ≤ idx, everything at or above it
	// in buckets > idx, so a cumulative bucket sum is an exact count.
	for _, idx := range DefaultExposition {
		upper := BucketUpper(idx)
		if got := BucketOf(upper - 1); got > idx {
			t.Errorf("BucketOf(upper(%d)-1) = %d > %d", idx, got, idx)
		}
		if got := BucketOf(upper); got <= idx {
			t.Errorf("BucketOf(upper(%d)) = %d ≤ %d", idx, got, idx)
		}
	}
	// Duplicate collapse.
	if got := ExpositionIndices([]time.Duration{time.Microsecond, time.Microsecond, time.Second}); len(got) != 2 {
		t.Errorf("duplicate targets not collapsed: %v", got)
	}
}
