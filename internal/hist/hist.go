// Package hist implements an HDR-style log-linear latency histogram:
// values are bucketed by octave with Sub linear sub-buckets per octave,
// giving a bounded relative error (≤ 1/Sub ≈ 3%) across the whole range
// instead of a fixed absolute resolution. It began life as qload's
// private per-worker histogram and was promoted here so the serving
// stack (MetricsObserver's Prometheus exposition) and the load driver
// share one bucket scheme — a scrape and a qload report bucket
// identically.
//
// Hist is the plain, unsynchronized form: each recorder owns one (a
// qload worker, a single-threaded merge) and increments are uncontended
// plain stores. Atomic is the shared form for concurrent request paths;
// its Snapshot folds down to a Hist so quantile/merge logic exists only
// once.
//
// The unit is ~1µs (1024ns, a shift instead of a divide); the bucket
// table spans past multi-hour latencies, far beyond any plausible
// request.
package hist

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// SubBits is log2 of the linear sub-buckets per octave.
	SubBits = 5
	// Sub is the number of linear sub-buckets per octave; the relative
	// error bound of any reported quantile is ≤ 1/Sub.
	Sub = 1 << SubBits
	// NumBuckets covers 1024ns << 49 ≈ 6.6 days.
	NumBuckets = 50 * Sub
	// Unit is the ns → ~µs shift applied before bucketing.
	Unit = 10
)

// Hist is the plain log-linear histogram. The zero value is ready to
// use. All fields are exported and the struct is comparable, so a
// lossless merge can be asserted with == (pinned by the oracle tests).
type Hist struct {
	Counts [NumBuckets]uint64
	N      uint64
	Sum    uint64 // total ns; 2^64 ns ≈ 584 years, no overflow concern
	Max    uint64 // ns, tracked exactly
}

// BucketOf maps a latency in ns to its bucket index. Monotone: the
// linear range [0, Sub) flows directly into the first log octave.
func BucketOf(ns uint64) int {
	u := ns >> Unit
	if u < Sub {
		return int(u)
	}
	exp := bits.Len64(u) - SubBits - 1
	idx := exp*Sub + int(u>>exp)
	if idx >= NumBuckets {
		return NumBuckets - 1
	}
	return idx
}

// BucketUpper is the inclusive upper bound of a bucket, in ns — the
// value a quantile landing in the bucket reports, and the exact `le`
// boundary the Prometheus exposition uses.
func BucketUpper(idx int) uint64 {
	if idx < Sub {
		return uint64(idx+1) << Unit
	}
	exp := idx/Sub - 1
	sub := idx - exp*Sub
	return uint64(sub+1) << (exp + Unit)
}

// Record adds one observation.
func (h *Hist) Record(d time.Duration) {
	ns := uint64(d)
	h.Counts[BucketOf(ns)]++
	h.N++
	h.Sum += ns
	if ns > h.Max {
		h.Max = ns
	}
}

// Merge folds other into h. Exact: merging per-worker histograms agrees
// bucket-for-bucket with recording into one.
func (h *Hist) Merge(other *Hist) {
	for i, c := range other.Counts {
		h.Counts[i] += c
	}
	h.N += other.N
	h.Sum += other.Sum
	if other.Max > h.Max {
		h.Max = other.Max
	}
}

// Quantile returns the latency at quantile q in [0,1]: the upper bound
// of the bucket holding the q·n-th observation (capped at the true max,
// which is tracked exactly).
func (h *Hist) Quantile(q float64) time.Duration {
	if h.N == 0 {
		return 0
	}
	rank := uint64(q * float64(h.N))
	if rank >= h.N {
		rank = h.N - 1
	}
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if seen > rank {
			if v := BucketUpper(i); v < h.Max {
				return time.Duration(v)
			}
			return time.Duration(h.Max)
		}
	}
	return time.Duration(h.Max)
}

// Mean returns the exact arithmetic mean (Sum is tracked in full ns).
func (h *Hist) Mean() time.Duration {
	if h.N == 0 {
		return 0
	}
	return time.Duration(h.Sum / h.N)
}

// Atomic is the concurrent form: many goroutines Record, any goroutine
// Snapshots. Counters are independent atomics, so a snapshot taken
// during recording may be off by in-flight observations (N vs Counts
// can disagree transiently) — fine for monitoring, where the next
// scrape catches up. The zero value is ready to use.
type Atomic struct {
	counts [NumBuckets]atomic.Uint64
	n      atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Uint64
}

// Record adds one observation. Lock-free: two unconditional adds plus a
// CAS loop that almost always exits on the first load once the running
// max stabilizes.
func (a *Atomic) Record(d time.Duration) {
	ns := uint64(d)
	a.counts[BucketOf(ns)].Add(1)
	a.n.Add(1)
	a.sum.Add(ns)
	for {
		cur := a.max.Load()
		if ns <= cur || a.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Snapshot folds the atomic counters into a plain Hist for
// quantile/merge/exposition work.
func (a *Atomic) Snapshot() Hist {
	var h Hist
	for i := range a.counts {
		h.Counts[i] = a.counts[i].Load()
	}
	h.N = a.n.Load()
	h.Sum = a.sum.Load()
	h.Max = a.max.Load()
	return h
}

// ExpositionIndices maps round-number latency targets to the bucket
// indices whose uppers enclose them — the Prometheus `le` boundaries.
// Snapping `le` to an exact BucketUpper makes each cumulative bucket an
// exact sum of whole histogram buckets (no mid-bucket interpolation):
// everything below the boundary is in buckets ≤ idx, everything at or
// above it in later buckets. Duplicate indices (targets inside one
// bucket) collapse.
func ExpositionIndices(targets []time.Duration) []int {
	idxs := make([]int, 0, len(targets))
	last := -1
	for _, t := range targets {
		i := BucketOf(uint64(t))
		if i != last {
			idxs = append(idxs, i)
			last = i
		}
	}
	return idxs
}

// DefaultExposition is the standard boundary set for serving-latency
// families: ~25µs to ~10s, log-spaced, 18 buckets plus the implicit
// +Inf — wide enough for both in-process search (tens of µs) and
// cross-fleet RPC (ms to s).
var DefaultExposition = ExpositionIndices([]time.Duration{
	25 * time.Microsecond,
	50 * time.Microsecond,
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
	10 * time.Second,
})
