package graph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildDiamond constructs a small schema-shaped graph used across tests:
//
//	a0 <-> a1 (reciprocal links), both belong to c0, c0 inside c1,
//	a2 isolated article with redirect r -> a0.
func buildDiamond(t *testing.T) (*Graph, []NodeID) {
	t.Helper()
	g := New(8)
	a0 := g.AddNode(Article)
	a1 := g.AddNode(Article)
	a2 := g.AddNode(Article)
	r := g.AddNode(Article)
	c0 := g.AddNode(Category)
	c1 := g.AddNode(Category)
	for _, e := range []struct {
		from, to NodeID
		kind     EdgeKind
	}{
		{a0, a1, Link}, {a1, a0, Link},
		{a0, c0, Belongs}, {a1, c0, Belongs},
		{c0, c1, Inside},
		{r, a0, Redirect},
	} {
		if err := g.AddEdge(e.from, e.to, e.kind); err != nil {
			t.Fatalf("AddEdge(%v): %v", e, err)
		}
	}
	return g, []NodeID{a0, a1, a2, r, c0, c1}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(2)
	a := g.AddNode(Article)
	b := g.AddNode(Article)
	if err := g.AddEdge(a, 99, Link); err == nil {
		t.Error("edge to unknown node should fail")
	}
	if err := g.AddEdge(99, a, Link); err == nil {
		t.Error("edge from unknown node should fail")
	}
	if err := g.AddEdge(a, a, Link); err == nil {
		t.Error("self-loop should fail")
	}
	if err := g.AddEdge(a, b, Link); err != nil {
		t.Fatalf("first edge: %v", err)
	}
	if err := g.AddEdge(a, b, Link); err == nil {
		t.Error("duplicate (from,to,kind) should fail")
	}
	if err := g.AddEdge(a, b, Redirect); err != nil {
		t.Errorf("same pair different kind should succeed: %v", err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestKindsAndCounts(t *testing.T) {
	g, ids := buildDiamond(t)
	if g.NumNodes() != 6 || g.NumEdges() != 6 {
		t.Fatalf("nodes/edges = %d/%d, want 6/6", g.NumNodes(), g.NumEdges())
	}
	if g.CountKind(Article) != 4 || g.CountKind(Category) != 2 {
		t.Errorf("kind counts wrong: %d articles, %d categories",
			g.CountKind(Article), g.CountKind(Category))
	}
	arts := g.NodesOfKind(Article)
	if len(arts) != 4 || arts[0] != ids[0] {
		t.Errorf("NodesOfKind(Article) = %v", arts)
	}
	if !g.Valid(ids[5]) || g.Valid(100) {
		t.Error("Valid misbehaves")
	}
	if Article.String() != "article" || Category.String() != "category" {
		t.Error("NodeKind strings wrong")
	}
	if Link.String() != "link" || Redirect.String() != "redirects_to" {
		t.Error("EdgeKind strings wrong")
	}
	if NodeKind(9).String() == "" || EdgeKind(9).String() == "" {
		t.Error("unknown kind strings should not be empty")
	}
}

func TestHasEdgeAndEdgesBetween(t *testing.T) {
	g, ids := buildDiamond(t)
	a0, a1, c0 := ids[0], ids[1], ids[4]
	if !g.HasEdge(a0, a1, Link) || !g.HasEdge(a1, a0, Link) {
		t.Error("reciprocal link missing")
	}
	if g.HasEdge(a0, c0, Link) {
		t.Error("kind should be matched")
	}
	if n := g.EdgesBetween(a0, a1, nil); n != 2 {
		t.Errorf("EdgesBetween(a0,a1) = %d, want 2", n)
	}
	if n := g.EdgesBetween(a0, c0, nil); n != 1 {
		t.Errorf("EdgesBetween(a0,c0) = %d, want 1", n)
	}
	r, a2 := ids[3], ids[2]
	if n := g.EdgesBetween(r, a0, ExcludeRedirects); n != 0 {
		t.Errorf("EdgesBetween with filter = %d, want 0", n)
	}
	if n := g.EdgesBetween(a2, a0, nil); n != 0 {
		t.Errorf("EdgesBetween(disconnected) = %d, want 0", n)
	}
}

func TestNeighbors(t *testing.T) {
	g, ids := buildDiamond(t)
	a0 := ids[0]
	nbs := g.Neighbors(a0, nil)
	// a0: link to/from a1, belongs to c0, redirect from r.
	want := []NodeID{ids[1], ids[3], ids[4]}
	if len(nbs) != 3 || nbs[0] != want[0] && nbs[0] != want[1] {
		t.Fatalf("Neighbors(a0) = %v, want %v", nbs, want)
	}
	nbsNoRedir := g.Neighbors(a0, ExcludeRedirects)
	if len(nbsNoRedir) != 2 {
		t.Fatalf("Neighbors(a0, no redirects) = %v, want 2 entries", nbsNoRedir)
	}
	for i := 1; i < len(nbs); i++ {
		if nbs[i-1] >= nbs[i] {
			t.Error("neighbors must be sorted ascending")
		}
	}
}

func TestComponents(t *testing.T) {
	g, ids := buildDiamond(t)
	comps := g.Components(nil)
	// Redirect connects r to the main component: {a0,a1,r,c0,c1}, {a2}.
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2: %v", len(comps), comps)
	}
	if len(comps[0]) != 5 || len(comps[1]) != 1 {
		t.Errorf("component sizes = %d,%d want 5,1", len(comps[0]), len(comps[1]))
	}
	if comps[1][0] != ids[2] {
		t.Errorf("singleton should be a2, got %v", comps[1])
	}
	// Excluding redirects detaches r.
	comps = g.Components(ExcludeRedirects)
	if len(comps) != 3 {
		t.Fatalf("got %d components without redirects, want 3", len(comps))
	}
	if lc := g.LargestComponent(ExcludeRedirects); len(lc) != 4 {
		t.Errorf("largest component = %v, want 4 nodes", lc)
	}
	empty := New(0)
	if lc := empty.LargestComponent(nil); lc != nil {
		t.Errorf("empty graph largest component = %v, want nil", lc)
	}
}

func TestTriangleParticipation(t *testing.T) {
	g := New(5)
	a := g.AddNode(Article)
	b := g.AddNode(Article)
	c := g.AddNode(Category)
	d := g.AddNode(Article)
	// Triangle a-b-c (link + two belongs), d hangs off a.
	mustEdge(t, g, a, b, Link)
	mustEdge(t, g, a, c, Belongs)
	mustEdge(t, g, b, c, Belongs)
	mustEdge(t, g, a, d, Link)
	nodes := []NodeID{a, b, c, d}
	if tpr := g.TriangleParticipation(nodes, nil); tpr != 0.75 {
		t.Errorf("TPR = %g, want 0.75", tpr)
	}
	if tpr := g.TriangleParticipation(nil, nil); tpr != 0 {
		t.Errorf("TPR(empty) = %g, want 0", tpr)
	}
	// Restricting the node set to a,b,d has no triangle.
	if tpr := g.TriangleParticipation([]NodeID{a, b, d}, nil); tpr != 0 {
		t.Errorf("TPR(no triangle subset) = %g, want 0", tpr)
	}
}

func mustEdge(t *testing.T, g *Graph, from, to NodeID, kind EdgeKind) {
	t.Helper()
	if err := g.AddEdge(from, to, kind); err != nil {
		t.Fatal(err)
	}
}

func TestBFSDistances(t *testing.T) {
	g, ids := buildDiamond(t)
	dist := g.BFSDistances([]NodeID{ids[0]}, ExcludeRedirects)
	if dist[ids[0]] != 0 || dist[ids[1]] != 1 || dist[ids[4]] != 1 || dist[ids[5]] != 2 {
		t.Errorf("distances = %v", dist)
	}
	if _, ok := dist[ids[2]]; ok {
		t.Error("a2 should be unreachable")
	}
	if _, ok := dist[ids[3]]; ok {
		t.Error("r should be unreachable without redirect edges")
	}
	// Multi-source: minimum distance wins.
	dist = g.BFSDistances([]NodeID{ids[0], ids[5]}, ExcludeRedirects)
	if dist[ids[4]] != 1 {
		t.Errorf("multi-source distance to c0 = %d, want 1", dist[ids[4]])
	}
	// Invalid sources are skipped.
	dist = g.BFSDistances([]NodeID{999}, nil)
	if len(dist) != 0 {
		t.Errorf("invalid source should yield empty map, got %v", dist)
	}
}

func TestInduce(t *testing.T) {
	g, ids := buildDiamond(t)
	sub := g.Induce([]NodeID{ids[0], ids[1], ids[4], ids[4], 999})
	if sub.NumNodes() != 3 {
		t.Fatalf("induced nodes = %d, want 3 (dups and invalid dropped)", sub.NumNodes())
	}
	// Edges among {a0,a1,c0}: a0<->a1 links, two belongs = 4 directed edges.
	if sub.NumEdges() != 4 {
		t.Errorf("induced edges = %d, want 4", sub.NumEdges())
	}
	for parent, sid := range sub.ToSub {
		if sub.ToParent[sid] != parent {
			t.Errorf("mapping mismatch: parent %d -> sub %d -> parent %d",
				parent, sid, sub.ToParent[sid])
		}
		if sub.Kind(sid) != g.Kind(parent) {
			t.Errorf("kind not preserved for parent %d", parent)
		}
	}
	empty := g.Induce(nil)
	if empty.NumNodes() != 0 || empty.NumEdges() != 0 {
		t.Error("inducing empty set should give empty graph")
	}
}

func TestWriteDOT(t *testing.T) {
	g, _ := buildDiamond(t)
	var sb strings.Builder
	if err := g.WriteDOT(&sb, "q", nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", "shape=box", "shape=ellipse", "redirects_to", "style=dashed"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	var sb2 strings.Builder
	if err := g.WriteDOT(&sb2, "q", func(n NodeID) string { return "X" }); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb2.String(), `label="X"`) {
		t.Error("custom label not used")
	}
}

// randomGraph builds a random graph from a seed for property tests.
func randomGraph(seed int64, maxNodes int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(maxNodes)
	g := New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(4) == 0 {
			g.AddNode(Category)
		} else {
			g.AddNode(Article)
		}
	}
	edges := rng.Intn(3 * n)
	for i := 0; i < edges; i++ {
		from := NodeID(rng.Intn(n))
		to := NodeID(rng.Intn(n))
		kind := EdgeKind(rng.Intn(4))
		_ = g.AddEdge(from, to, kind) // self-loops/dups rejected, fine
	}
	return g
}

// Property: components partition the node set exactly.
func TestComponentsPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 60)
		comps := g.Components(nil)
		seen := make(map[NodeID]int)
		for _, comp := range comps {
			for _, n := range comp {
				seen[n]++
			}
		}
		if len(seen) != g.NumNodes() {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		// Sorted by size descending.
		for i := 1; i < len(comps); i++ {
			if len(comps[i]) > len(comps[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: every pair of nodes in the same component is connected via
// BFS, and nodes in different components are not.
func TestComponentsReachabilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 40)
		comps := g.Components(nil)
		for _, comp := range comps {
			dist := g.BFSDistances(comp[:1], nil)
			if len(dist) != len(comp) {
				return false
			}
			for _, n := range comp {
				if _, ok := dist[n]; !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: induced subgraph of the full node set is isomorphic in counts.
func TestInduceFullSetProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 50)
		all := make([]NodeID, g.NumNodes())
		for i := range all {
			all[i] = NodeID(i)
		}
		sub := g.Induce(all)
		return sub.NumNodes() == g.NumNodes() && sub.NumEdges() == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: TPR is always within [0, 1].
func TestTPRBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 40)
		all := make([]NodeID, g.NumNodes())
		for i := range all {
			all[i] = NodeID(i)
		}
		tpr := g.TriangleParticipation(all, nil)
		return tpr >= 0 && tpr <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
