package graph

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format for inspection, in the
// visual language of the paper's Figure 3: articles as ellipses, categories
// as boxes, with one edge per relation labeled by kind. The label function
// supplies node captions; a nil label prints node IDs. Output order is
// deterministic.
func (g *Graph) WriteDOT(w io.Writer, name string, label func(NodeID) string) error {
	if label == nil {
		label = func(n NodeID) string { return fmt.Sprintf("n%d", n) }
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	for i := 0; i < g.NumNodes(); i++ {
		id := NodeID(i)
		shape := "ellipse"
		if g.Kind(id) == Category {
			shape = "box"
		}
		fmt.Fprintf(&b, "  n%d [label=%q shape=%s];\n", i, label(id), shape)
	}
	for _, e := range g.Edges() {
		style := ""
		if e.Kind == Redirect {
			style = " style=dashed"
		}
		fmt.Fprintf(&b, "  n%d -> n%d [label=%q%s];\n", e.From, e.To, e.Kind.String(), style)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
