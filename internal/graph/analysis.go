package graph

import "sort"

// Components computes the connected components of the undirected view of g,
// considering only edges whose kind passes the filter (nil keeps all). The
// result is sorted by size descending, ties broken by smallest member ID, and
// each component's node list is ascending.
func (g *Graph) Components(exclude func(EdgeKind) bool) [][]NodeID {
	n := g.NumNodes()
	visited := make([]bool, n)
	var comps [][]NodeID
	queue := make([]NodeID, 0, 64)
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		visited[start] = true
		queue = append(queue[:0], NodeID(start))
		comp := []NodeID{NodeID(start)}
		for len(queue) > 0 {
			cur := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, nb := range g.Neighbors(cur, exclude) {
				if !visited[nb] {
					visited[nb] = true
					queue = append(queue, nb)
					comp = append(comp, nb)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
	return comps
}

// LargestComponent returns the largest connected component under the filter,
// or nil for an empty graph.
func (g *Graph) LargestComponent(exclude func(EdgeKind) bool) []NodeID {
	comps := g.Components(exclude)
	if len(comps) == 0 {
		return nil
	}
	return comps[0]
}

// TriangleParticipation returns the fraction of the given nodes that belong
// to at least one triangle in the undirected view restricted to those nodes.
// The paper reports a TPR of roughly 0.3 for the largest connected component
// of the query graphs. An empty node set yields 0.
func (g *Graph) TriangleParticipation(nodes []NodeID, exclude func(EdgeKind) bool) float64 {
	if len(nodes) == 0 {
		return 0
	}
	inSet := make(map[NodeID]struct{}, len(nodes))
	for _, n := range nodes {
		inSet[n] = struct{}{}
	}
	// Restricted adjacency sets.
	adj := make(map[NodeID]map[NodeID]struct{}, len(nodes))
	for _, n := range nodes {
		set := make(map[NodeID]struct{})
		for _, nb := range g.Neighbors(n, exclude) {
			if _, ok := inSet[nb]; ok {
				set[nb] = struct{}{}
			}
		}
		adj[n] = set
	}
	inTriangle := make(map[NodeID]struct{})
	for _, u := range nodes {
		for v := range adj[u] {
			if v <= u {
				continue
			}
			for w := range adj[v] {
				if w <= v {
					continue
				}
				if _, ok := adj[u][w]; ok {
					inTriangle[u] = struct{}{}
					inTriangle[v] = struct{}{}
					inTriangle[w] = struct{}{}
				}
			}
		}
	}
	return float64(len(inTriangle)) / float64(len(nodes))
}

// BFSDistances returns the undirected hop distance from each of the sources
// to every reachable node under the filter. Unreachable nodes are absent
// from the map. Multiple sources give the multi-source distance (minimum
// over sources), which the analysis uses to measure how far expansion
// features sit from the query articles.
func (g *Graph) BFSDistances(sources []NodeID, exclude func(EdgeKind) bool) map[NodeID]int {
	dist := make(map[NodeID]int, len(sources)*4)
	queue := make([]NodeID, 0, len(sources))
	for _, s := range sources {
		if !g.Valid(s) {
			continue
		}
		if _, ok := dist[s]; !ok {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range g.Neighbors(cur, exclude) {
			if _, ok := dist[nb]; !ok {
				dist[nb] = dist[cur] + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist
}

// Subgraph is an induced subgraph together with the node mappings between
// the parent graph and the subgraph.
type Subgraph struct {
	*Graph
	// ToSub maps parent IDs to subgraph IDs.
	ToSub map[NodeID]NodeID
	// ToParent maps subgraph IDs back to parent IDs (indexed by subgraph ID).
	ToParent []NodeID
}

// Induce builds the subgraph induced by the given parent nodes: all of the
// nodes, and every edge of the parent whose endpoints are both in the set.
// Duplicate input nodes are ignored. Edge kinds and node kinds carry over.
func (g *Graph) Induce(nodes []NodeID) *Subgraph {
	sub := &Subgraph{
		Graph: New(len(nodes)),
		ToSub: make(map[NodeID]NodeID, len(nodes)),
	}
	ordered := append([]NodeID(nil), nodes...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	for _, n := range ordered {
		if !g.Valid(n) {
			continue
		}
		if _, dup := sub.ToSub[n]; dup {
			continue
		}
		id := sub.Graph.AddNode(g.Kind(n))
		sub.ToSub[n] = id
		sub.ToParent = append(sub.ToParent, n)
	}
	for parent, sid := range sub.ToSub {
		for _, a := range g.Out(parent) {
			if tid, ok := sub.ToSub[a.To]; ok {
				// Parent edges are unique by (from,to,kind), so this cannot fail.
				if err := sub.Graph.AddEdge(sid, tid, a.Kind); err != nil {
					panic("graph: induce broke edge uniqueness: " + err.Error())
				}
			}
		}
	}
	return sub
}
