// Package graph implements the typed directed multigraph underlying the
// Wikipedia model and every structural analysis in the paper: connected
// components, triangle participation, induced subgraphs, BFS distances and
// the undirected adjacency views the cycle miner works on.
//
// Nodes carry a NodeKind (article or category) and edges an EdgeKind (link,
// belongs, inside, redirect), mirroring the paper's Figure 1 schema. The
// graph itself does not enforce schema constraints between kinds — that is
// the wiki layer's job — but it preserves kinds so analyses can filter on
// them (for example, cycle mining ignores redirect edges because a redirect
// can never close a cycle).
package graph

import (
	"fmt"
	"sort"
)

// NodeID is a dense identifier allocated by the graph, starting at 0.
type NodeID uint32

// NodeKind distinguishes the two entry types of the paper's schema.
type NodeKind uint8

// Node kinds.
const (
	Article NodeKind = iota
	Category
)

func (k NodeKind) String() string {
	switch k {
	case Article:
		return "article"
	case Category:
		return "category"
	}
	return fmt.Sprintf("NodeKind(%d)", uint8(k))
}

// EdgeKind distinguishes the relation types of the paper's schema.
type EdgeKind uint8

// Edge kinds.
const (
	Link     EdgeKind = iota // article -> article
	Belongs                  // article -> category
	Inside                   // category -> category
	Redirect                 // redirect article -> main article
)

func (k EdgeKind) String() string {
	switch k {
	case Link:
		return "link"
	case Belongs:
		return "belongs"
	case Inside:
		return "inside"
	case Redirect:
		return "redirects_to"
	}
	return fmt.Sprintf("EdgeKind(%d)", uint8(k))
}

// Arc is one directed adjacency entry.
type Arc struct {
	To   NodeID
	Kind EdgeKind
}

// Edge is a fully-specified directed edge, as returned by Edges.
type Edge struct {
	From, To NodeID
	Kind     EdgeKind
}

// Graph is a directed multigraph with typed nodes and edges. The zero value
// is an empty graph ready for use. Graph is not safe for concurrent
// mutation; once built it is safe for concurrent reads.
type Graph struct {
	kinds []NodeKind
	out   [][]Arc
	in    [][]Arc
	edges int
}

// New returns an empty graph with capacity hints for n nodes.
func New(n int) *Graph {
	return &Graph{
		kinds: make([]NodeKind, 0, n),
		out:   make([][]Arc, 0, n),
		in:    make([][]Arc, 0, n),
	}
}

// AddNode allocates a new node of the given kind and returns its ID.
func (g *Graph) AddNode(kind NodeKind) NodeID {
	id := NodeID(len(g.kinds))
	g.kinds = append(g.kinds, kind)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return id
}

// AddEdge inserts a directed edge. It returns an error if either endpoint
// does not exist or the edge would be a self-loop (the Wikipedia schema has
// no self-relations). Parallel edges of different kinds are allowed;
// duplicate (from, to, kind) triples are rejected.
func (g *Graph) AddEdge(from, to NodeID, kind EdgeKind) error {
	if int(from) >= len(g.kinds) {
		return fmt.Errorf("graph: unknown source node %d", from)
	}
	if int(to) >= len(g.kinds) {
		return fmt.Errorf("graph: unknown target node %d", to)
	}
	if from == to {
		return fmt.Errorf("graph: self-loop on node %d rejected", from)
	}
	for _, a := range g.out[from] {
		if a.To == to && a.Kind == kind {
			return fmt.Errorf("graph: duplicate %s edge %d->%d", kind, from, to)
		}
	}
	g.out[from] = append(g.out[from], Arc{To: to, Kind: kind})
	g.in[to] = append(g.in[to], Arc{To: from, Kind: kind})
	g.edges++
	return nil
}

// Load reconstructs a graph directly from its raw adjacency — node kinds
// and per-node outgoing arc lists in stored order — without replaying
// AddEdge's per-edge duplicate scan. This is the decode path of the binary
// snapshot subsystem (internal/store): the input is trusted to originate
// from a Graph (it is checksummed on disk), so only structural bounds are
// validated. The incoming-arc lists are derived; their internal order is
// unspecified, which is safe because no exported API exposes it unsorted.
// The given slices are owned by the graph afterwards.
func Load(kinds []NodeKind, out [][]Arc) (*Graph, error) {
	if len(kinds) != len(out) {
		return nil, fmt.Errorf("graph: load: %d kinds but %d adjacency lists", len(kinds), len(out))
	}
	n := len(kinds)
	g := &Graph{kinds: kinds, out: out, in: make([][]Arc, n)}
	indeg := make([]int, n)
	for from, arcs := range out {
		for _, a := range arcs {
			if int(a.To) >= n {
				return nil, fmt.Errorf("graph: load: arc %d->%d beyond %d nodes", from, a.To, n)
			}
			if int(a.To) == from {
				return nil, fmt.Errorf("graph: load: self-loop on node %d", from)
			}
			indeg[a.To]++
			g.edges++
		}
	}
	for to, d := range indeg {
		if d > 0 {
			g.in[to] = make([]Arc, 0, d)
		}
	}
	for from, arcs := range out {
		for _, a := range arcs {
			g.in[a.To] = append(g.in[a.To], Arc{To: NodeID(from), Kind: a.Kind})
		}
	}
	return g, nil
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.kinds) }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return g.edges }

// Kind returns the kind of node n. It panics on an invalid ID, consistent
// with slice indexing: node IDs are only minted by AddNode.
func (g *Graph) Kind(n NodeID) NodeKind { return g.kinds[n] }

// Valid reports whether n is an allocated node ID.
func (g *Graph) Valid(n NodeID) bool { return int(n) < len(g.kinds) }

// Out returns the outgoing arcs of n. The returned slice is owned by the
// graph and must not be modified.
func (g *Graph) Out(n NodeID) []Arc { return g.out[n] }

// In returns the incoming arcs of n (Arc.To holds the source). The returned
// slice is owned by the graph and must not be modified.
func (g *Graph) In(n NodeID) []Arc { return g.in[n] }

// HasEdge reports whether a directed edge (from, to, kind) exists.
func (g *Graph) HasEdge(from, to NodeID, kind EdgeKind) bool {
	for _, a := range g.out[from] {
		if a.To == to && a.Kind == kind {
			return true
		}
	}
	return false
}

// EdgesBetween counts directed edges between a and b in both directions,
// excluding the kinds in exclude. This is E(C)'s building block: the cycle
// density formula counts every directed edge among the cycle's nodes.
func (g *Graph) EdgesBetween(a, b NodeID, exclude func(EdgeKind) bool) int {
	n := 0
	for _, arc := range g.out[a] {
		if arc.To == b && (exclude == nil || !exclude(arc.Kind)) {
			n++
		}
	}
	for _, arc := range g.out[b] {
		if arc.To == a && (exclude == nil || !exclude(arc.Kind)) {
			n++
		}
	}
	return n
}

// Edges returns all directed edges in deterministic order (by source, then
// insertion order).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.edges)
	for from := range g.out {
		for _, a := range g.out[from] {
			out = append(out, Edge{From: NodeID(from), To: a.To, Kind: a.Kind})
		}
	}
	return out
}

// Neighbors returns the deduplicated, sorted undirected neighbors of n,
// considering edges in both directions and skipping kinds for which exclude
// returns true. A nil exclude keeps every kind.
func (g *Graph) Neighbors(n NodeID, exclude func(EdgeKind) bool) []NodeID {
	seen := make(map[NodeID]struct{})
	for _, a := range g.out[n] {
		if exclude == nil || !exclude(a.Kind) {
			seen[a.To] = struct{}{}
		}
	}
	for _, a := range g.in[n] {
		if exclude == nil || !exclude(a.Kind) {
			seen[a.To] = struct{}{}
		}
	}
	out := make([]NodeID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NodesOfKind returns all node IDs of the given kind in ascending order.
func (g *Graph) NodesOfKind(kind NodeKind) []NodeID {
	var out []NodeID
	for i, k := range g.kinds {
		if k == kind {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// CountKind returns the number of nodes of the given kind.
func (g *Graph) CountKind(kind NodeKind) int {
	n := 0
	for _, k := range g.kinds {
		if k == kind {
			n++
		}
	}
	return n
}

// ExcludeRedirects is the standard edge filter of the structural analysis:
// the paper observes that redirect edges can never close a cycle (a redirect
// article has exactly one outgoing relation), so cycle mining and component
// statistics operate on the link/belongs/inside view.
func ExcludeRedirects(k EdgeKind) bool { return k == Redirect }
