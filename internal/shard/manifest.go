package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"github.com/querygraph/querygraph/internal/store"
)

// ManifestVersion is the current manifest schema version; readers reject
// unknown versions the same way the snapshot decoder does.
const ManifestVersion = 1

// ManifestFileName is the conventional manifest name WriteShards uses
// inside the output directory.
const ManifestFileName = "manifest.json"

// Manifest describes one generation of a sharded snapshot: where each
// shard file lives and the global shape the set must agree on. It is a
// small JSON file so operators can inspect, template and atomically
// replace it; hot reload (querygraph.Pool.Reload) re-reads it and swaps
// the whole generation.
type Manifest struct {
	Version    int             `json:"version"`
	ShardCount int             `json:"shard_count"`
	GlobalDocs int             `json:"global_docs"`
	Shards     []ManifestShard `json:"shards"`
}

// ManifestShard locates one shard file. Path is relative to the manifest
// file's directory (absolute paths pass through), so a generation
// directory can be moved as a unit.
type ManifestShard struct {
	ID   int    `json:"id"`
	Path string `json:"path"`
	Docs int    `json:"docs"`
}

// ReadManifest parses and structurally validates a manifest file: known
// version, a complete 0..N-1 shard slot assignment, non-empty paths.
func ReadManifest(path string) (*Manifest, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("shard: manifest %s: %w", path, err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("shard: manifest %s: unsupported version %d (this build reads version %d)",
			path, m.Version, ManifestVersion)
	}
	if m.ShardCount < 1 || len(m.Shards) != m.ShardCount {
		return nil, fmt.Errorf("shard: manifest %s: %d shard entries for shard_count %d",
			path, len(m.Shards), m.ShardCount)
	}
	seen := make([]bool, m.ShardCount)
	for _, e := range m.Shards {
		if e.ID < 0 || e.ID >= m.ShardCount || seen[e.ID] {
			return nil, fmt.Errorf("shard: manifest %s: shard id %d missing, duplicated or out of range", path, e.ID)
		}
		if e.Path == "" {
			return nil, fmt.Errorf("shard: manifest %s: shard %d has no path", path, e.ID)
		}
		seen[e.ID] = true
	}
	return &m, nil
}

// shardPath resolves a manifest entry's path against the manifest's
// directory.
func shardPath(manifestPath string, entry ManifestShard) string {
	if filepath.IsAbs(entry.Path) {
		return entry.Path
	}
	return filepath.Join(filepath.Dir(manifestPath), entry.Path)
}

// WriteShards partitions a complete archive into n shard snapshots inside
// dir (created if needed) and writes the manifest last. Every file —
// each shard and the manifest — lands via a temp file and an atomic
// rename, so a reader never observes a truncated or half-written file:
// an already-open old file keeps its old bytes, and a Load that races a
// regeneration of the same directory either sees one complete generation
// or fails the cross-shard validation ("mixed generations") and can be
// retried; it can never serve a torn one. Publishing into a fresh
// directory per generation avoids even the benign retry.
func WriteShards(dir string, a *store.Archive, n int) (*Manifest, error) {
	parts, err := Partition(a, n)
	if err != nil {
		return nil, err
	}
	return WriteArchives(filepath.Join(dir, ManifestFileName), parts)
}

func writeArchiveFile(path string, a *store.Archive) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := store.Write(f, a); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("shard: write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
