package shard

import (
	"context"
	"fmt"
	"os"
	"sync"

	"github.com/querygraph/querygraph/internal/core"
	"github.com/querygraph/querygraph/internal/search"
	"github.com/querygraph/querygraph/internal/store"
)

// Set is one loaded generation of a sharded snapshot: every shard wrapped
// in its own serving System, plus the cross-shard identity needed for
// scatter-gather. A Set is immutable after Load and safe for concurrent
// use; hot reload (querygraph.Pool) swaps whole Sets.
//
// Division of labor: retrieval scatters to every shard and merges;
// expansion runs once on shard 0's replicated graph (the expansion cache
// therefore lives on shard 0's System).
type Set struct {
	systems []*core.System
	queries []core.Query
	// docMaps[s] maps shard s's dense local doc ids to global ids.
	docMaps      [][]int32
	globalDocs   int
	globalTokens int64

	// union is the fused in-process scorer over all shards (one global
	// accumulator, one heap) — the batch hot path. The per-shard
	// scatter-gather path (searchNode) remains the distributable
	// architecture and serves concurrent single-query fan-out.
	union *search.Union

	// scratch pools the per-query scatter state (plans, aggregated leaf
	// frequencies, per-shard rankings, merge cursors) so the hot path does
	// not reallocate it per query.
	scratch sync.Pool
}

// setScratch is the pooled per-query scatter state.
type setScratch struct {
	plans   []*search.Plan
	leafCF  []int64
	locals  [][]search.Result
	cursors []int
}

func (s *Set) getScratch() *setScratch {
	sc, _ := s.scratch.Get().(*setScratch)
	n := len(s.systems)
	if sc == nil {
		sc = &setScratch{
			plans:   make([]*search.Plan, n),
			locals:  make([][]search.Result, n),
			cursors: make([]int, n),
		}
		for i := range sc.plans {
			sc.plans[i] = &search.Plan{}
		}
	}
	return sc
}

// Load opens every shard named by the manifest (concurrently — decode
// dominates startup) and cross-validates the generation: complete slot
// assignment, agreeing shard counts, global statistics and engine
// configuration, and a doc-id map that tiles the global space exactly.
// opts apply to every shard's System; the expansion cache is kept on
// shard 0 only, where Expand runs.
func Load(manifestPath string, opts ...core.SystemOption) (*Set, error) {
	m, err := ReadManifest(manifestPath)
	if err != nil {
		return nil, err
	}
	n := m.ShardCount
	archives := make([]*store.Archive, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for _, e := range m.Shards {
		wg.Add(1)
		go func(e ManifestShard) {
			defer wg.Done()
			archives[e.ID], errs[e.ID] = readArchiveFile(shardPath(manifestPath, e))
		}(e)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
	}

	set := &Set{
		systems: make([]*core.System, n),
		docMaps: make([][]int32, n),
	}
	ref := archives[0]
	if ref.Shard == nil {
		return nil, fmt.Errorf("shard 0: snapshot carries no partition identity; regenerate with qgen -shards")
	}
	set.globalDocs, set.globalTokens = ref.Shard.GlobalDocs, ref.Shard.GlobalTokens
	if set.globalDocs != m.GlobalDocs {
		return nil, fmt.Errorf("shard 0: snapshot spans %d global documents, manifest says %d",
			set.globalDocs, m.GlobalDocs)
	}
	seen := make([]bool, set.globalDocs)
	covered := 0
	for s, a := range archives {
		sh := a.Shard
		switch {
		case sh == nil:
			return nil, fmt.Errorf("shard %d: snapshot carries no partition identity", s)
		case sh.ShardID != s:
			return nil, fmt.Errorf("shard %d: file identifies as shard %d", s, sh.ShardID)
		case sh.ShardCount != n:
			return nil, fmt.Errorf("shard %d: file belongs to a %d-shard partition, manifest has %d",
				s, sh.ShardCount, n)
		case sh.GlobalDocs != set.globalDocs || sh.GlobalTokens != set.globalTokens:
			return nil, fmt.Errorf("shard %d: global statistics (%d docs, %d tokens) disagree with shard 0 (%d, %d); mixed generations?",
				s, sh.GlobalDocs, sh.GlobalTokens, set.globalDocs, set.globalTokens)
		case a.Mu != ref.Mu || a.IncludeKeywordTerms != ref.IncludeKeywordTerms ||
			a.RemoveStopwords != ref.RemoveStopwords || a.Stem != ref.Stem:
			return nil, fmt.Errorf("shard %d: engine configuration disagrees with shard 0; mixed generations?", s)
		}
		for _, g := range sh.DocGlobal {
			if seen[g] {
				return nil, fmt.Errorf("shard %d: global document %d owned by two shards", s, g)
			}
			seen[g] = true
		}
		covered += len(sh.DocGlobal)
		set.docMaps[s] = sh.DocGlobal

		shardOpts := opts
		if s != 0 {
			// Expansion runs on shard 0 only; don't size caches the other
			// shards will never consult.
			shardOpts = append(append([]core.SystemOption{}, opts...), core.WithExpandCache(0))
		}
		sys, queries, err := core.SystemFromArchive(a, shardOpts...)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		set.systems[s] = sys
		if s == 0 {
			set.queries = queries
		}
	}
	if covered != set.globalDocs {
		return nil, fmt.Errorf("shards cover %d of %d global documents", covered, set.globalDocs)
	}
	engines := make([]*search.Engine, n)
	for i, sys := range set.systems {
		engines[i] = sys.Engine
	}
	union, err := search.NewUnion(engines, set.docMaps, set.globalDocs, set.globalTokens)
	if err != nil {
		return nil, err
	}
	set.union = union
	return set, nil
}

func readArchiveFile(path string) (*store.Archive, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return store.Read(f)
}

// NumShards returns the shard count of the loaded generation.
func (s *Set) NumShards() int { return len(s.systems) }

// Systems returns the per-shard serving systems (index = shard id), for
// stats reporting. Treat as read-only.
func (s *Set) Systems() []*core.System { return s.systems }

// Queries returns the replicated benchmark. Treat as read-only.
func (s *Set) Queries() []core.Query { return s.queries }

// GlobalDocs returns the whole collection's document count.
func (s *Set) GlobalDocs() int { return s.globalDocs }

// GlobalTokens returns the whole collection's token count.
func (s *Set) GlobalTokens() int64 { return s.globalTokens }

// Parse parses query text with the replicated analyzer configuration.
func (s *Set) Parse(query string) (search.Node, error) {
	return s.systems[0].Engine.Parse(query)
}

// ExpansionQuery builds the expanded title query for an expansion against
// the replicated graph (ok = false when there is nothing to search for).
func (s *Set) ExpansionQuery(exp *core.Expansion) (search.Node, bool) {
	return exp.Query(s.systems[0])
}

// Search evaluates one parsed query across all shards with the scatter
// phases run concurrently, and merges the per-shard top k into the global
// top k (descending score, ties by ascending global doc id) — exactly the
// single-system ranking, because every shard scores under the globally
// aggregated statistics.
func (s *Set) Search(ctx context.Context, node search.Node, k int) ([]search.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.searchNode(node, k, len(s.systems) > 1)
}

// SearchExtra is Search with one extra in-memory source appended to the
// shard fan-out — the live delta segment sitting above this generation.
// Every source (shards and extra alike) scores under the summed collection
// statistics (globalTokens + extraTokens, per-leaf collection frequencies
// aggregated across all sources), so the merged ranking is bit-identical
// to a monolithic index containing the base and extra documents together.
func (s *Set) SearchExtra(ctx context.Context, node search.Node, k int, extra search.Source, extraTokens int64) ([]search.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sources := make([]search.Source, 0, len(s.systems)+1)
	for i, sys := range s.systems {
		sources = append(sources, search.Source{Engine: sys.Engine, DocMap: s.docMaps[i]})
	}
	sources = append(sources, extra)
	return search.SearchSources(sources, s.globalTokens+extraTokens, node, k)
}

// SearchAll evaluates a batch of parsed queries on a bounded worker pool
// (input order preserved, fail-fast, cancel-aware — the batch contract of
// core.System.SearchAll). The batch already saturates the cores with one
// worker per query, so each query takes the fused union scorer — one
// global accumulator over all shards, no per-shard heaps or merge — which
// runs the single-system instruction stream over the partitioned
// postings.
func (s *Set) SearchAll(ctx context.Context, nodes []search.Node, k int, opts core.BatchOptions) ([][]search.Result, error) {
	out := make([][]search.Result, len(nodes))
	err := core.ForEach(ctx, len(nodes), opts.Workers, func(i int) error {
		rs, err := s.union.Search(nodes[i], k)
		if err != nil {
			return fmt.Errorf("shard: search %d: %w", i, err)
		}
		out[i] = rs
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// searchNode is the scatter-gather core: plan the flattened leaves on
// every shard, sum the per-leaf collection frequencies into the global
// statistics (exact integer addition — aggregation order cannot perturb
// scores), score every shard under those statistics, map local doc ids to
// global, and merge.
func (s *Set) searchNode(node search.Node, k int, concurrent bool) ([]search.Result, error) {
	leaves, err := search.Flatten(node)
	if err != nil {
		return nil, err
	}
	sc := s.getScratch()
	defer s.scratch.Put(sc)
	plans := sc.plans
	s.eachShard(concurrent, func(i int) error {
		plans[i] = s.systems[i].Engine.PlanLeavesInto(plans[i], leaves)
		return nil
	})

	if cap(sc.leafCF) < len(leaves) {
		sc.leafCF = make([]int64, len(leaves))
	}
	leafCF := sc.leafCF[:len(leaves)]
	for j := range leafCF {
		leafCF[j] = 0
	}
	for _, plan := range plans {
		for j := range leafCF {
			leafCF[j] += plan.LocalCF(j)
		}
	}
	stats := &search.Stats{TotalTokens: s.globalTokens, LeafCF: leafCF}

	locals := sc.locals
	if err := s.eachShard(concurrent, func(i int) error {
		rs, err := s.systems[i].Engine.SearchPlan(plans[i], k, stats)
		if err != nil {
			return err
		}
		if dm := s.docMaps[i]; dm != nil {
			for j := range rs {
				rs[j].Doc = dm[rs[j].Doc]
			}
		}
		locals[i] = rs
		return nil
	}); err != nil {
		return nil, err
	}
	return mergeRanked(locals, k, sc.cursors), nil
}

// eachShard runs fn over every shard index, concurrently when asked, and
// returns the first error in shard order.
func (s *Set) eachShard(concurrent bool, fn func(i int) error) error {
	n := len(s.systems)
	if !concurrent || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// mergeRanked merges the per-shard rankings into the global top k.
// The algorithm lives in search.MergeRankedScratch, shared with the
// live runtime's base+delta merge; cursors is caller-provided scratch
// of at least len(locals).
func mergeRanked(locals [][]search.Result, k int, cursors []int) []search.Result {
	return search.MergeRankedScratch(nil, locals, k, cursors)
}

// MergeRanked merges per-shard rankings — each ordered by (score desc,
// global doc asc) — into the global top k, exactly like the in-process
// scatter-gather path. Exported for the network coordinator
// (querygraph.Remote), whose remote shards return rankings of the same
// shape; sharing the merge is what keeps the two runtimes bit-identical.
func MergeRanked(locals [][]search.Result, k int) []search.Result {
	return search.MergeRanked(locals, k)
}

// Expand runs the online expansion pipeline once on the replicated graph
// (shard 0), through shard 0's memoizing single-flight cache. The graph
// is identical in every shard, so this is bit-identical to the
// single-system expansion.
func (s *Set) Expand(ctx context.Context, keywords string, opts core.ExpanderOptions) (*core.Expansion, error) {
	return s.systems[0].Expand(ctx, keywords, opts)
}

// ExpandOutcome is Expand plus the per-request cache outcome, for the
// instrumented public facade.
func (s *Set) ExpandOutcome(ctx context.Context, keywords string, opts core.ExpanderOptions) (*core.Expansion, core.CacheOutcome, error) {
	return s.systems[0].ExpandOutcome(ctx, keywords, opts)
}

// ExpandAll is the batch form of Expand, on shard 0's batch layer.
func (s *Set) ExpandAll(ctx context.Context, keywords []string, eopts core.ExpanderOptions, opts core.BatchOptions) ([]*core.Expansion, error) {
	return s.systems[0].ExpandAll(ctx, keywords, eopts, opts)
}

// ExpandCacheStats reports shard 0's expansion cache counters.
func (s *Set) ExpandCacheStats() core.CacheStats {
	return s.systems[0].ExpandCacheStats()
}
