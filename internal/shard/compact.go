package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"github.com/querygraph/querygraph/internal/corpus"
	"github.com/querygraph/querygraph/internal/index"
	"github.com/querygraph/querygraph/internal/live"
	"github.com/querygraph/querygraph/internal/store"
)

// Fold distributes a delta segment's documents over a loaded generation
// and returns the per-shard archives of the next generation — the
// compaction output, ready for WriteArchives. Delta document j takes
// global id GlobalDocs()+j, exactly the id the two-source serving path
// already exposed for it, and is hashed to its owning shard by ShardOf
// like any other document. Because delta global ids sort above every
// base id, each shard's new locals append at the tail of its dense local
// space: the base postings and doc maps are reused untouched (shared,
// not copied) and the merged per-shard index is index.Merge of the base
// and a mini-index over the shard's new documents — bit-identical to
// Partition of a monolithic rebuild holding the same documents, which
// TestFoldMatchesPartition pins.
func Fold(s *Set, delta *live.Delta) ([]*store.Archive, error) {
	if s == nil || len(s.systems) == 0 {
		return nil, fmt.Errorf("shard: fold into an empty set")
	}
	if delta.BaseDocs() != s.globalDocs {
		return nil, fmt.Errorf("shard: delta sits above %d docs, set holds %d", delta.BaseDocs(), s.globalDocs)
	}
	n := len(s.systems)
	an := s.systems[0].Engine.Analyzer()

	// Assign the delta documents: owner shard and, per shard, the new
	// globals in ascending order (delta docs arrive in ascending global
	// order already).
	newDocs := delta.Docs()
	newGlobals := make([][]int32, n)
	newLocal := make([][]corpus.Document, n)
	minis := make([]*index.Index, n)
	var deltaTokens int64
	for i := range minis {
		minis[i] = index.New()
	}
	for j, doc := range newDocs {
		g := int32(s.globalDocs + j)
		sh := ShardOf(g, n)
		newGlobals[sh] = append(newGlobals[sh], g)
		newLocal[sh] = append(newLocal[sh], doc)
		tokens := an.Analyze(doc.Text)
		minis[sh].AddDocument(tokens)
		deltaTokens += int64(len(tokens))
	}

	out := make([]*store.Archive, n)
	for sh := 0; sh < n; sh++ {
		sys := s.systems[sh]
		baseDocs := sys.Collection.Docs()
		docs := make([]corpus.Document, 0, len(baseDocs)+len(newLocal[sh]))
		docs = append(docs, baseDocs...)
		for _, doc := range newLocal[sh] {
			doc.ID = corpus.DocID(len(docs))
			docs = append(docs, doc)
		}
		coll, err := corpus.LoadCollection(docs)
		if err != nil {
			return nil, fmt.Errorf("shard: fold shard %d: %w", sh, err)
		}
		docGlobal := make([]int32, 0, len(s.docMaps[sh])+len(newGlobals[sh]))
		docGlobal = append(docGlobal, s.docMaps[sh]...)
		docGlobal = append(docGlobal, newGlobals[sh]...)
		arch := sys.Archive(s.queries)
		arch.Collection = coll
		arch.Index = index.Merge(sys.Engine.Index(), minis[sh])
		arch.Shard = &store.ShardInfo{
			ShardID:      sh,
			ShardCount:   n,
			GlobalDocs:   s.globalDocs + len(newDocs),
			GlobalTokens: s.globalTokens + deltaTokens,
			DocGlobal:    docGlobal,
		}
		out[sh] = arch
	}
	return out, nil
}

// WriteArchives publishes a generation of shard archives as the sharded
// snapshot at manifestPath: each shard lands as shard-NNN.qgs next to
// the manifest via a temp file and atomic rename, and the manifest is
// written last, so a concurrent Load sees either the old generation, the
// new one, or a cross-validation failure it can retry — never a torn
// mix. The archives must carry their ShardInfo (Partition and Fold
// both produce it).
func WriteArchives(manifestPath string, archives []*store.Archive) (*Manifest, error) {
	if len(archives) == 0 {
		return nil, fmt.Errorf("shard: write of zero archives")
	}
	dir := filepath.Dir(manifestPath)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	m := &Manifest{Version: ManifestVersion, ShardCount: len(archives)}
	for s, part := range archives {
		if part.Shard == nil {
			return nil, fmt.Errorf("shard: archive %d carries no shard info", s)
		}
		name := fmt.Sprintf("shard-%03d.qgs", s)
		if err := writeArchiveFile(filepath.Join(dir, name), part); err != nil {
			return nil, err
		}
		m.Shards = append(m.Shards, ManifestShard{ID: s, Path: name, Docs: part.Index.NumDocs()})
	}
	m.GlobalDocs = archives[0].Shard.GlobalDocs
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	tmp := manifestPath + ".tmp"
	if err := os.WriteFile(tmp, append(blob, '\n'), 0o644); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, manifestPath); err != nil {
		return nil, err
	}
	return m, nil
}
