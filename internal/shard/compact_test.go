package shard

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/querygraph/querygraph/internal/core"
	"github.com/querygraph/querygraph/internal/corpus"
	"github.com/querygraph/querygraph/internal/live"
	"github.com/querygraph/querygraph/internal/synth"
)

// foldFixture builds a world, splits its collection at cut, and returns:
// the monolithic system over every document (the reference a compaction
// must be indistinguishable from), a loaded Set partitioned over just the
// first cut documents, and a delta segment holding the tail.
func foldFixture(t *testing.T, seed int64, n, cut int) (*core.System, []core.Query, *Set, *live.Delta) {
	t.Helper()
	cfg := synth.Default()
	cfg.Seed = seed
	cfg.Topics = 5
	cfg.ArticlesPerTopic = 8
	cfg.DocsPerTopic = 12
	cfg.Queries = 6
	w, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full, err := core.FromWorld(w)
	if err != nil {
		t.Fatal(err)
	}
	queries := core.QueriesFromWorld(w)
	docs := w.Collection.Docs()
	if cut > len(docs) {
		t.Fatalf("cut %d beyond %d docs", cut, len(docs))
	}
	// The base snapshot can only reference base documents in its
	// benchmark (the store validates relevant ids against the corpus), so
	// clamp the relevant lists to the base range on both sides of the
	// comparison; a live deployment's benchmark likewise predates ingest.
	for i := range queries {
		kept := queries[i].Relevant[:0:0]
		for _, d := range queries[i].Relevant {
			if int(d) < cut {
				kept = append(kept, d)
			}
		}
		queries[i].Relevant = kept
	}
	baseColl, err := corpus.LoadCollection(docs[:cut])
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.NewSystem(w.Snapshot, baseColl)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := WriteShards(dir, base.Archive(queries), n); err != nil {
		t.Fatal(err)
	}
	set, err := Load(filepath.Join(dir, ManifestFileName))
	if err != nil {
		t.Fatal(err)
	}
	an := base.Engine.Analyzer()
	lcfg := live.Config{Mu: base.Engine.Mu(), RemoveStopwords: an.RemovesStopwords(), Stem: an.Stems()}
	var delta *live.Delta
	// Two appends so the segment's own merge path is exercised too.
	mid := cut + (len(docs)-cut)/2
	for _, span := range [][]corpus.Document{docs[cut:mid], docs[mid:]} {
		imgs := make([]corpus.Image, len(span))
		for i, d := range span {
			imgs[i] = d.Image
		}
		delta, err = live.Append(delta, lcfg, cut, imgs)
		if err != nil {
			t.Fatal(err)
		}
	}
	return full, queries, set, delta
}

// TestFoldMatchesPartition pins the compaction contract structurally:
// folding the delta into the loaded base generation produces, shard for
// shard, the archives Partition produces from the monolithic system that
// indexed every document from scratch.
func TestFoldMatchesPartition(t *testing.T) {
	for _, n := range []int{1, 3} {
		full, queries, set, delta := foldFixture(t, 29, n, 40)
		folded, err := Fold(set, delta)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Partition(full.Archive(queries), n)
		if err != nil {
			t.Fatal(err)
		}
		if len(folded) != len(want) {
			t.Fatalf("n=%d: %d folded archives, want %d", n, len(folded), len(want))
		}
		for s := range want {
			w, g := want[s], folded[s]
			if !reflect.DeepEqual(w.Shard, g.Shard) {
				t.Fatalf("n=%d shard %d: shard info diverged\nwant %+v\ngot  %+v", n, s, w.Shard, g.Shard)
			}
			if w.Mu != g.Mu || w.IncludeKeywordTerms != g.IncludeKeywordTerms ||
				w.RemoveStopwords != g.RemoveStopwords || w.Stem != g.Stem {
				t.Fatalf("n=%d shard %d: engine configuration diverged", n, s)
			}
			if !reflect.DeepEqual(w.Collection.Docs(), g.Collection.Docs()) {
				t.Fatalf("n=%d shard %d: collections diverged", n, s)
			}
			if !reflect.DeepEqual(w.Queries, g.Queries) {
				t.Fatalf("n=%d shard %d: benchmark diverged", n, s)
			}
			wantTerms := w.Index.Terms()
			if !reflect.DeepEqual(wantTerms, g.Index.Terms()) {
				t.Fatalf("n=%d shard %d: vocabulary diverged", n, s)
			}
			for _, term := range wantTerms {
				wp, wcf := w.Index.Lookup(term)
				gp, gcf := g.Index.Lookup(term)
				if wcf != gcf || !reflect.DeepEqual(wp, gp) {
					t.Fatalf("n=%d shard %d term %q: postings diverged", n, s, term)
				}
			}
			if w.Index.TotalTokens() != g.Index.TotalTokens() || w.Index.NumDocs() != g.Index.NumDocs() {
				t.Fatalf("n=%d shard %d: index shape diverged", n, s)
			}
		}
	}
}

// TestFoldWriteLoadServes is the end-to-end compaction path: fold, write
// with WriteArchives over the old generation's directory, Load the new
// generation, and check it serves bit-identically to the monolithic
// system — the restart-equivalence a compacted snapshot must satisfy.
func TestFoldWriteLoadServes(t *testing.T) {
	full, queries, set, delta := foldFixture(t, 31, 2, 55)
	folded, err := Fold(set, delta)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	manifestPath := filepath.Join(dir, ManifestFileName)
	if _, err := WriteArchives(manifestPath, folded); err != nil {
		t.Fatal(err)
	}
	next, err := Load(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	if next.GlobalDocs() != full.Collection.Len() {
		t.Fatalf("compacted generation holds %d docs, want %d", next.GlobalDocs(), full.Collection.Len())
	}
	ctx := context.Background()
	for _, q := range queries {
		node, err := full.Engine.Parse(q.Keywords)
		if err != nil {
			t.Fatal(err)
		}
		want, err := full.Engine.Search(node, 15)
		if err != nil {
			t.Fatal(err)
		}
		got, err := next.Search(ctx, node, 15)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("query %q: compacted ranking diverged\nwant %+v\ngot  %+v", q.Keywords, want, got)
		}
	}
}

// TestFoldRejectsMismatchedDelta: a delta built above a different base
// doc count must be refused, not folded into the wrong id space.
func TestFoldRejectsMismatchedDelta(t *testing.T) {
	_, _, set, _ := foldFixture(t, 29, 2, 40)
	wrong, err := live.Append(nil, live.Config{Mu: 2500, RemoveStopwords: true, Stem: true}, set.GlobalDocs()+1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Fold(set, wrong); err == nil {
		t.Fatal("fold accepted a delta above the wrong base")
	}
}
