// Package shard is the horizontal-scaling subsystem of the serving stack:
// it partitions a complete serving snapshot into N per-shard snapshots
// plus a versioned manifest, and serves the partition through a
// scatter-gather runtime (Set) whose results are bit-identical to the
// single-snapshot system.
//
// The split follows the paper's structure: the knowledge graph (and the
// query benchmark) is small and drives expansion, so it is replicated
// into every shard; the document collection and its positional index are
// the bulk, so they are hash-partitioned by document id. Collection
// statistics — document counts, token counts — are aggregated globally at
// build time and stored in every shard's snapshot, and per-leaf collection
// frequencies are aggregated at query time by exact integer summation
// across shards, so each shard scores against the whole collection's
// background model and the merged ranking equals the unsharded one score
// for score.
package shard

import (
	"fmt"

	"github.com/querygraph/querygraph/internal/corpus"
	"github.com/querygraph/querygraph/internal/index"
	"github.com/querygraph/querygraph/internal/store"
)

// ShardOf maps a global document id to its owning shard: FNV-1a over the
// id's four little-endian bytes, mod the shard count. A hash (rather than
// a range or modulo split) keeps topically clustered id ranges — the
// synthetic generator emits documents topic by topic — spread evenly.
func ShardOf(doc int32, shards int) int {
	h := uint32(2166136261)
	for i := 0; i < 4; i++ {
		h ^= uint32(byte(doc >> (8 * i)))
		h *= 16777619
	}
	return int(h % uint32(shards))
}

// Partition splits a complete (unsharded) archive into n per-shard
// archives: graph, names, engine configuration and the query benchmark
// are replicated; the corpus and the positional index are partitioned by
// ShardOf with local doc ids densely reassigned in ascending global
// order. Every shard carries the global doc/token counts so its scorer
// smooths against the whole collection. The shard archives share the
// parent's strings, positions and graph; treat everything as read-only.
func Partition(a *store.Archive, n int) ([]*store.Archive, error) {
	if a == nil || a.Index == nil || a.Collection == nil || a.Snapshot == nil {
		return nil, fmt.Errorf("shard: partition of an incomplete archive")
	}
	if a.Shard != nil {
		return nil, fmt.Errorf("shard: archive is already shard %d of %d; partition a complete snapshot",
			a.Shard.ShardID, a.Shard.ShardCount)
	}
	if n < 1 {
		return nil, fmt.Errorf("shard: shard count %d must be >= 1", n)
	}
	numDocs := a.Index.NumDocs()

	// Assign documents: owner[global] = shard, localID[global] = dense id
	// within the owner (ascending global order within each shard).
	owner := make([]int, numDocs)
	localID := make([]int32, numDocs)
	docGlobal := make([][]int32, n)
	for d := 0; d < numDocs; d++ {
		s := ShardOf(int32(d), n)
		owner[d] = s
		localID[d] = int32(len(docGlobal[s]))
		docGlobal[s] = append(docGlobal[s], int32(d))
	}

	// Partition the corpus and document lengths.
	docs := a.Collection.Docs()
	partDocs := make([][]corpus.Document, n)
	partLens := make([][]int64, n)
	for s := 0; s < n; s++ {
		partDocs[s] = make([]corpus.Document, 0, len(docGlobal[s]))
		partLens[s] = make([]int64, 0, len(docGlobal[s]))
	}
	for d := 0; d < numDocs; d++ {
		s := owner[d]
		doc := docs[d]
		doc.ID = corpus.DocID(localID[d])
		partDocs[s] = append(partDocs[s], doc)
		dl, err := a.Index.DocLen(int32(d))
		if err != nil {
			return nil, fmt.Errorf("shard: partition: %w", err)
		}
		partLens[s] = append(partLens[s], dl)
	}

	// Partition the postings: one pass per term distributing its postings
	// into per-shard lists (position slices shared with the parent), then
	// keep the term only in shards where it occurs.
	partTerms := make([][]string, n)
	partPostings := make([][][]index.Posting, n)
	buckets := make([][]index.Posting, n)
	for _, term := range a.Index.Terms() {
		for s := range buckets {
			buckets[s] = nil
		}
		for _, post := range a.Index.Postings(term) {
			s := owner[post.Doc]
			buckets[s] = append(buckets[s], index.Posting{Doc: localID[post.Doc], Positions: post.Positions})
		}
		for s, plist := range buckets {
			if len(plist) > 0 {
				partTerms[s] = append(partTerms[s], term)
				partPostings[s] = append(partPostings[s], plist)
			}
		}
	}

	out := make([]*store.Archive, n)
	for s := 0; s < n; s++ {
		coll, err := corpus.LoadCollection(partDocs[s])
		if err != nil {
			return nil, fmt.Errorf("shard: partition shard %d: %w", s, err)
		}
		ix, err := index.Load(partLens[s], partTerms[s], partPostings[s])
		if err != nil {
			return nil, fmt.Errorf("shard: partition shard %d: %w", s, err)
		}
		out[s] = &store.Archive{
			Mu:                  a.Mu,
			IncludeKeywordTerms: a.IncludeKeywordTerms,
			RemoveStopwords:     a.RemoveStopwords,
			Stem:                a.Stem,
			Snapshot:            a.Snapshot,
			Collection:          coll,
			Index:               ix,
			Queries:             a.Queries,
			Shard: &store.ShardInfo{
				ShardID:      s,
				ShardCount:   n,
				GlobalDocs:   numDocs,
				GlobalTokens: a.Index.TotalTokens(),
				DocGlobal:    docGlobal[s],
			},
		}
	}
	return out, nil
}
