package shard

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/querygraph/querygraph/internal/core"
	"github.com/querygraph/querygraph/internal/corpus"
	"github.com/querygraph/querygraph/internal/synth"
)

// testWorldSystem builds a small deterministic world and its serving
// system.
func testWorldSystem(t *testing.T, seed int64) (*core.System, []core.Query) {
	t.Helper()
	cfg := synth.Default()
	cfg.Seed = seed
	cfg.Topics = 6
	cfg.ArticlesPerTopic = 10
	cfg.DocsPerTopic = 15
	cfg.Queries = 8
	w, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.FromWorld(w)
	if err != nil {
		t.Fatal(err)
	}
	return sys, core.QueriesFromWorld(w)
}

func TestShardOfCoversAllShards(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		hit := make([]int, n)
		for d := int32(0); d < 1000; d++ {
			s := ShardOf(d, n)
			if s < 0 || s >= n {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", d, n, s)
			}
			hit[s]++
		}
		for s, c := range hit {
			if c == 0 {
				t.Errorf("n=%d: shard %d received no documents out of 1000", n, s)
			}
		}
		// Determinism: the hash is part of the on-disk contract.
		if ShardOf(42, n) != ShardOf(42, n) {
			t.Fatal("ShardOf is not deterministic")
		}
	}
}

// TestPartitionTilesTheCollection: every document lands in exactly one
// shard with its text, length and postings intact, global statistics are
// the parent's, and the graph and benchmark are replicated.
func TestPartitionTilesTheCollection(t *testing.T) {
	sys, queries := testWorldSystem(t, 11)
	arch := sys.Archive(queries)
	const n = 4
	parts, err := Partition(arch, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != n {
		t.Fatalf("got %d shards, want %d", len(parts), n)
	}
	seen := make([]bool, arch.Index.NumDocs())
	var tokens int64
	for s, part := range parts {
		sh := part.Shard
		if sh == nil || sh.ShardID != s || sh.ShardCount != n {
			t.Fatalf("shard %d: bad identity %+v", s, sh)
		}
		if sh.GlobalDocs != arch.Index.NumDocs() || sh.GlobalTokens != arch.Index.TotalTokens() {
			t.Errorf("shard %d: global stats %d/%d, want %d/%d",
				s, sh.GlobalDocs, sh.GlobalTokens, arch.Index.NumDocs(), arch.Index.TotalTokens())
		}
		if part.Snapshot != arch.Snapshot {
			t.Errorf("shard %d: graph not replicated by reference", s)
		}
		if !reflect.DeepEqual(part.Queries, arch.Queries) {
			t.Errorf("shard %d: benchmark not replicated", s)
		}
		if part.Collection.Len() != len(sh.DocGlobal) || part.Index.NumDocs() != len(sh.DocGlobal) {
			t.Fatalf("shard %d: %d corpus docs, %d index docs, %d map entries",
				s, part.Collection.Len(), part.Index.NumDocs(), len(sh.DocGlobal))
		}
		tokens += part.Index.TotalTokens()
		for local, g := range sh.DocGlobal {
			if ShardOf(g, n) != s {
				t.Fatalf("shard %d owns document %d, ShardOf says %d", s, g, ShardOf(g, n))
			}
			if seen[g] {
				t.Fatalf("document %d owned twice", g)
			}
			seen[g] = true
			got, err := part.Collection.Doc(corpus.DocID(local))
			if err != nil {
				t.Fatal(err)
			}
			orig, err := arch.Collection.Doc(corpus.DocID(g))
			if err != nil {
				t.Fatal(err)
			}
			if got.Text != orig.Text || got.Image.ID != orig.Image.ID {
				t.Fatalf("shard %d local %d: document content diverged from global %d", s, local, g)
			}
			wantLen, _ := arch.Index.DocLen(g)
			gotLen, _ := part.Index.DocLen(int32(local))
			if wantLen != gotLen {
				t.Fatalf("shard %d local %d: doc length %d, want %d", s, local, gotLen, wantLen)
			}
		}
	}
	for g, ok := range seen {
		if !ok {
			t.Errorf("document %d unowned", g)
		}
	}
	if tokens != arch.Index.TotalTokens() {
		t.Errorf("shard token counts sum to %d, want %d", tokens, arch.Index.TotalTokens())
	}

	// Per-term collection frequencies tile too: summed local cf equals the
	// global cf for every term of the global vocabulary.
	for _, term := range arch.Index.Terms() {
		var cf int64
		for _, part := range parts {
			cf += part.Index.CollectionFreq(term)
		}
		if cf != arch.Index.CollectionFreq(term) {
			t.Fatalf("term %q: shard cfs sum to %d, want %d", term, cf, arch.Index.CollectionFreq(term))
		}
	}
}

func TestPartitionRejectsBadInput(t *testing.T) {
	sys, queries := testWorldSystem(t, 11)
	arch := sys.Archive(queries)
	if _, err := Partition(arch, 0); err == nil {
		t.Error("shard count 0 accepted")
	}
	parts, err := Partition(arch, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Partition(parts[0], 2); err == nil || !strings.Contains(err.Error(), "already shard") {
		t.Errorf("re-partitioning a shard: got %v", err)
	}
}

// TestWriteShardsLoadSearchEquivalence is the subsystem-level equivalence
// check: a Set loaded from written shard files returns bit-identical
// Search and Expand results to the single unsharded system (the public
// Pool equivalence test at the repository root covers more shard counts).
func TestWriteShardsLoadSearchEquivalence(t *testing.T) {
	sys, queries := testWorldSystem(t, 17)
	dir := t.TempDir()
	if _, err := WriteShards(dir, sys.Archive(queries), 3); err != nil {
		t.Fatal(err)
	}
	set, err := Load(filepath.Join(dir, ManifestFileName))
	if err != nil {
		t.Fatal(err)
	}
	if set.NumShards() != 3 {
		t.Fatalf("NumShards = %d, want 3", set.NumShards())
	}
	if len(set.Queries()) != len(queries) {
		t.Fatalf("replicated benchmark has %d queries, want %d", len(set.Queries()), len(queries))
	}
	ctx := context.Background()
	for _, q := range queries {
		node, err := sys.Engine.Parse(q.Keywords)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sys.Engine.Search(node, 15)
		if err != nil {
			t.Fatal(err)
		}
		got, err := set.Search(ctx, node, 15)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %q: sharded ranking diverged\ngot  %+v\nwant %+v", q.Keywords, got, want)
		}

		exp, err := set.Expand(ctx, q.Keywords, core.DefaultExpanderOptions())
		if err != nil {
			t.Fatal(err)
		}
		wantExp, err := sys.Expand(ctx, q.Keywords, core.DefaultExpanderOptions())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(exp, wantExp) {
			t.Fatalf("query %q: sharded expansion diverged", q.Keywords)
		}
	}
}

// TestLoadRejectsInvalidManifests drives the cross-shard validation: a
// generation assembled from mismatched files must be refused at load
// time, never served.
func TestLoadRejectsInvalidManifests(t *testing.T) {
	sysA, queriesA := testWorldSystem(t, 17)
	dirA := t.TempDir()
	if _, err := WriteShards(dirA, sysA.Archive(queriesA), 2); err != nil {
		t.Fatal(err)
	}
	sysB, queriesB := testWorldSystem(t, 99)
	dirB := t.TempDir()
	if _, err := WriteShards(dirB, sysB.Archive(queriesB), 2); err != nil {
		t.Fatal(err)
	}
	manifest := func(t *testing.T, m Manifest) string {
		t.Helper()
		dir := t.TempDir()
		blob, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, ManifestFileName)
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	abs := func(dir, name string) string { return filepath.Join(dir, name) }

	cases := []struct {
		name    string
		m       Manifest
		wantErr string
	}{
		{
			name: "unsupported version",
			m: Manifest{Version: 99, ShardCount: 1,
				Shards: []ManifestShard{{ID: 0, Path: abs(dirA, "shard-000.qgs")}}},
			wantErr: "unsupported version",
		},
		{
			name: "duplicate slot",
			m: Manifest{Version: ManifestVersion, ShardCount: 2, GlobalDocs: 90, Shards: []ManifestShard{
				{ID: 0, Path: abs(dirA, "shard-000.qgs")},
				{ID: 0, Path: abs(dirA, "shard-000.qgs")}}},
			wantErr: "missing, duplicated or out of range",
		},
		{
			name: "wrong slot for file",
			m: Manifest{Version: ManifestVersion, ShardCount: 2, GlobalDocs: 90, Shards: []ManifestShard{
				{ID: 0, Path: abs(dirA, "shard-001.qgs")},
				{ID: 1, Path: abs(dirA, "shard-000.qgs")}}},
			wantErr: "identifies as shard",
		},
		{
			name: "mixed generations",
			m: Manifest{Version: ManifestVersion, ShardCount: 2, GlobalDocs: 90, Shards: []ManifestShard{
				{ID: 0, Path: abs(dirA, "shard-000.qgs")},
				{ID: 1, Path: abs(dirB, "shard-001.qgs")}}},
			wantErr: "", // any validation error will do; worlds differ in several ways
		},
		{
			name: "wrong shard count",
			m: Manifest{Version: ManifestVersion, ShardCount: 1, GlobalDocs: 90, Shards: []ManifestShard{
				{ID: 0, Path: abs(dirA, "shard-000.qgs")}}},
			wantErr: "belongs to a 2-shard partition",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Load(manifest(t, c.m))
			if err == nil {
				t.Fatal("invalid generation loaded without error")
			}
			if c.wantErr != "" && !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}
