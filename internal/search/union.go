package search

import (
	"fmt"
	"math"
	"sync"

	"github.com/querygraph/querygraph/internal/index"
)

// Union scores one logical collection that is split across several
// partition indexes as if it were a single index. At construction it
// merges the partition dictionaries into one union dictionary — per term,
// the per-partition postings side by side plus the build-time-aggregated
// global collection frequency — so query planning probes each term once,
// not once per partition. At query time, all partitions' postings fold
// into one global dense accumulator under one smoothing computation
// (phrase frequencies are the only statistic still summed at query time,
// by exact integer addition), ranked by one top-k heap over global doc
// ids.
//
// This is the in-process fast path of the sharded runtime: it executes
// the same arithmetic as the single-index scorer — one log per leaf, one
// per posting, one per candidate — so it is bit-identical to it, with
// none of the per-partition heap/merge overhead of the distributable
// scatter-gather path (Plan/SearchPlan + external merge). It requires all
// partitions in one address space, which a shard Set always has.
type Union struct {
	// dict is the merged vocabulary: per-partition postings plus the
	// global collection frequency per term.
	dict map[string]*unionEntry
	// docMaps[p] maps partition p's local doc ids to global ids (nil =
	// identity).
	docMaps [][]int32
	// docLens[g] is the global document length table, assembled once at
	// construction so ranking never chases partition indirections.
	docLens []int64
	parts   int
	mu      float64
	total   int64

	scratch sync.Pool
}

type unionEntry struct {
	// parts[p] is the term's postings in partition p (nil where absent);
	// doc ids are partition-local.
	parts [][]index.Posting
	// cf is the global collection frequency, summed over the partitions
	// at construction time.
	cf int64
}

// unionScratch is the pooled per-search state: the per-leaf phrase
// working tables and the dense global accumulator.
type unionScratch struct {
	// phraseEnts / phraseLists / phraseParts are the per-leaf phrase
	// tables: dictionary entries per constituent, constituent lists per
	// partition, and the resulting per-partition phrase postings.
	phraseEnts  []*unionEntry
	phraseLists [][]index.Posting
	phraseParts [][]index.Posting
	ph          index.PhraseScratch
	sc          scorerScratch
}

// NewUnion assembles the fused scorer over the partition engines. The
// engines must share one smoothing parameter (they always do in a shard
// set: the engine configuration is replicated) and the doc maps must
// cover [0, globalDocs) without overlap — the caller (internal/shard)
// validates coverage; lengths are checked here.
func NewUnion(engines []*Engine, docMaps [][]int32, globalDocs int, globalTokens int64) (*Union, error) {
	if len(engines) == 0 || len(engines) != len(docMaps) {
		return nil, fmt.Errorf("search: union of %d engines with %d doc maps", len(engines), len(docMaps))
	}
	u := &Union{
		dict:    make(map[string]*unionEntry),
		docMaps: docMaps,
		docLens: make([]int64, globalDocs),
		parts:   len(engines),
		mu:      engines[0].mu,
		total:   globalTokens,
	}
	for p, e := range engines {
		if e.mu != u.mu {
			return nil, fmt.Errorf("search: union partition %d has mu %g, partition 0 has %g", p, e.mu, u.mu)
		}
		dm := docMaps[p]
		ix := e.ix
		n := ix.NumDocs()
		if dm != nil && len(dm) != n {
			return nil, fmt.Errorf("search: union partition %d: %d doc map entries for %d documents", p, len(dm), n)
		}
		for local := 0; local < n; local++ {
			dl, err := ix.DocLen(int32(local))
			if err != nil {
				return nil, err
			}
			g := int32(local)
			if dm != nil {
				g = dm[local]
			}
			if g < 0 || int(g) >= globalDocs {
				return nil, fmt.Errorf("search: union partition %d: global doc %d beyond %d", p, g, globalDocs)
			}
			u.docLens[g] = dl
		}
		for _, term := range ix.Terms() {
			ent := u.dict[term]
			if ent == nil {
				ent = &unionEntry{parts: make([][]index.Posting, len(engines))}
				u.dict[term] = ent
			}
			plist, cf := ix.Lookup(term)
			ent.parts[p] = plist
			ent.cf += cf
		}
	}
	return u, nil
}

func (u *Union) getScratch() *unionScratch {
	us, _ := u.scratch.Get().(*unionScratch)
	if us == nil {
		us = &unionScratch{phraseParts: make([][]index.Posting, u.parts)}
	}
	n := len(u.docLens)
	if len(us.sc.acc) < n {
		us.sc.acc = make([]float64, n)
		us.sc.epoch = make([]uint32, n)
		us.sc.cur = 0
	}
	us.sc.cur++
	if us.sc.cur == 0 {
		clear(us.sc.epoch)
		us.sc.cur = 1
	}
	us.sc.docs = us.sc.docs[:0]
	return us
}

// Search evaluates the query over the partition union under the Engine's
// Search contract (top k by descending score, ties by ascending global
// doc id, empty non-nil slice on no match, k <= 0 ranks all candidates).
func (u *Union) Search(q Node, k int) ([]Result, error) {
	leaves, err := Flatten(q)
	if err != nil {
		return nil, err
	}
	if len(u.docLens) == 0 || u.total == 0 {
		return []Result{}, nil
	}
	total := float64(u.total)

	us := u.getScratch()
	defer u.scratch.Put(us)

	sc := &us.sc
	var zeroSum, weightSum float64
	for _, lf := range leaves {
		var cf int64
		var parts [][]index.Posting
		if len(lf.Terms) == 1 {
			if ent, ok := u.dict[lf.Terms[0]]; ok {
				cf, parts = ent.cf, ent.parts
			}
		} else {
			cf, parts = u.phraseParts(us, lf.Terms)
		}
		muPc := u.mu * math.Max(float64(cf), unseenFloor) / total
		logMuPc := math.Log(muPc)
		zeroSum += lf.Weight * logMuPc
		weightSum += lf.Weight
		for p, plist := range parts {
			dm := u.docMaps[p]
			for _, post := range plist {
				delta := lf.Weight * (math.Log(float64(len(post.Positions))+muPc) - logMuPc)
				g := post.Doc
				if dm != nil {
					g = dm[g]
				}
				if sc.epoch[g] == sc.cur {
					sc.acc[g] += delta
				} else {
					sc.epoch[g] = sc.cur
					sc.acc[g] = delta
					sc.docs = append(sc.docs, g)
				}
			}
		}
	}
	if len(sc.docs) == 0 {
		return []Result{}, nil
	}

	if k <= 0 || k > len(sc.docs) {
		k = len(sc.docs)
	}
	top := newTopK(k)
	for _, doc := range sc.docs {
		score := zeroSum + sc.acc[doc] - weightSum*math.Log(float64(u.docLens[doc])+u.mu)
		top.offer(Result{Doc: doc, Score: score})
	}
	return top.ranked(), nil
}

// phraseParts computes the exact phrase's per-partition postings (into
// us.phraseParts, valid until the next call) and its global collection
// frequency. Phrase occurrences never cross partitions — a document lives
// wholly in one — so the per-partition sums are exactly the global
// frequency. One dictionary probe per constituent term covers all
// partitions.
func (u *Union) phraseParts(us *unionScratch, terms []string) (int64, [][]index.Posting) {
	if cap(us.phraseEnts) < len(terms) {
		us.phraseEnts = make([]*unionEntry, len(terms))
		us.phraseLists = make([][]index.Posting, len(terms))
	}
	ents := us.phraseEnts[:len(terms)]
	for i, t := range terms {
		ent, ok := u.dict[t]
		if !ok {
			return 0, nil // a constituent missing globally: no occurrences anywhere
		}
		ents[i] = ent
	}
	lists := us.phraseLists[:len(terms)]
	var cf int64
	parts := us.phraseParts
	for p := 0; p < u.parts; p++ {
		parts[p] = nil
		complete := true
		for i, ent := range ents {
			if lists[i] = ent.parts[p]; lists[i] == nil {
				complete = false
				break
			}
		}
		if !complete {
			continue
		}
		parts[p] = index.IntersectPhrase(lists, &us.ph)
		cf += index.PostingsCollectionFreq(parts[p])
	}
	return cf, parts
}
