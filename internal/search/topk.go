package search

// topK selects the best k results by (score descending, doc ascending)
// without sorting every candidate: a binary min-heap whose root is the
// worst retained result, so ranking n candidates costs O(n log k) and the
// final drain O(k log k).
type topK struct {
	k int
	h []Result
}

func newTopK(k int) *topK {
	return &topK{k: k, h: make([]Result, 0, k)}
}

// worse reports whether a ranks strictly below b: lower score, ties broken
// by higher document ID (so ascending doc IDs win ties, matching the
// engine's determinism contract).
func worse(a, b Result) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Doc > b.Doc
}

// offer considers one candidate, keeping it only if it beats the current
// worst of the best k.
func (t *topK) offer(r Result) {
	if len(t.h) < t.k {
		t.h = append(t.h, r)
		t.siftUp(len(t.h) - 1)
		return
	}
	if t.k == 0 || !worse(t.h[0], r) {
		return
	}
	t.h[0] = r
	t.siftDown(t.h, 0)
}

func (t *topK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !worse(t.h[i], t.h[parent]) {
			return
		}
		t.h[i], t.h[parent] = t.h[parent], t.h[i]
		i = parent
	}
}

func (t *topK) siftDown(h []Result, i int) {
	for {
		least := i
		if l := 2*i + 1; l < len(h) && worse(h[l], h[least]) {
			least = l
		}
		if r := 2*i + 2; r < len(h) && worse(h[r], h[least]) {
			least = r
		}
		if least == i {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// ranked drains the heap in place and returns the retained results best
// first. The topK must not be reused afterwards.
func (t *topK) ranked() []Result {
	out := t.h
	for n := len(out) - 1; n > 0; n-- {
		out[0], out[n] = out[n], out[0]
		t.siftDown(out[:n], 0)
	}
	t.h = nil
	return out
}
