// Package search implements the retrieval engine the paper uses through
// INDRI: a query language with #combine, #weight and #1 (exact phrase)
// operators evaluated with Dirichlet-smoothed query likelihood over the
// positional index.
//
// The paper writes expansion queries "in the INDRI query language, based on
// exact phrase matching" from article titles; BuildTitleQuery constructs
// exactly that shape.
package search

import (
	"fmt"
	"strings"

	"github.com/querygraph/querygraph/internal/text"
)

// Node is a query AST node.
type Node interface {
	// String renders the node in the query language (parse-compatible).
	String() string
	node()
}

// Term is a single analyzed term.
type Term struct{ Text string }

func (t Term) String() string { return t.Text }
func (Term) node()            {}

// Phrase is an exact-phrase (#1) operator over analyzed terms: the terms
// must occur adjacent and in order.
type Phrase struct{ Terms []string }

func (p Phrase) String() string { return "#1(" + strings.Join(p.Terms, " ") + ")" }
func (Phrase) node()            {}

// Combine scores the document against each child and sums the log scores
// (query-likelihood product), i.e. INDRI's #combine.
type Combine struct{ Children []Node }

func (c Combine) String() string {
	parts := make([]string, len(c.Children))
	for i, ch := range c.Children {
		parts[i] = ch.String()
	}
	return "#combine(" + strings.Join(parts, " ") + ")"
}
func (Combine) node() {}

// Weight is INDRI's #weight: a weighted sum of child log scores. Weights
// are normalized to sum to 1 at scoring time.
type Weight struct {
	Weights  []float64
	Children []Node
}

func (w Weight) String() string {
	var sb strings.Builder
	sb.WriteString("#weight(")
	for i, ch := range w.Children {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%g %s", w.Weights[i], ch.String())
	}
	sb.WriteByte(')')
	return sb.String()
}
func (Weight) node() {}

// NewPhrase analyzes raw text into a Phrase node using the given analyzer.
// It returns ok=false when analysis leaves no terms (e.g. a stopword-only
// title).
func NewPhrase(raw string, an *text.Analyzer) (Phrase, bool) {
	terms := an.Analyze(raw)
	if len(terms) == 0 {
		return Phrase{}, false
	}
	return Phrase{Terms: terms}, true
}

// BuildTitleQuery builds the paper's expansion query: the original keywords
// as bare terms combined with one exact-phrase operator per article title.
// Titles or keywords that analyze to nothing are dropped; the function
// returns ok=false when the whole query would be empty.
func BuildTitleQuery(keywords string, titles []string, an *text.Analyzer) (Node, bool) {
	var children []Node
	for _, kw := range an.Analyze(keywords) {
		children = append(children, Term{Text: kw})
	}
	for _, title := range titles {
		if p, ok := NewPhrase(title, an); ok {
			children = append(children, p)
		}
	}
	if len(children) == 0 {
		return nil, false
	}
	return Combine{Children: children}, true
}
