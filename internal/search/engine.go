package search

import (
	"fmt"
	"math"
	"sync"

	"github.com/querygraph/querygraph/internal/corpus"
	"github.com/querygraph/querygraph/internal/index"
	"github.com/querygraph/querygraph/internal/text"
)

// DefaultMu is the Dirichlet smoothing parameter, INDRI's default.
const DefaultMu = 2500

// unseenFloor stands in for the collection frequency of a term or phrase
// never seen in the collection, so that its background probability is small
// but non-zero (INDRI applies the same kind of floor for out-of-vocabulary
// terms).
const unseenFloor = 0.5

// Result is one ranked document.
type Result struct {
	Doc   int32
	Score float64
}

// Engine scores queries against an index with Dirichlet-smoothed query
// likelihood. It is safe for concurrent use once constructed.
type Engine struct {
	ix *index.Index
	an *text.Analyzer
	mu float64

	// scratch pools the dense per-search accumulators so concurrent
	// searches don't contend and repeated searches don't reallocate.
	scratch sync.Pool

	// planPool recycles Plan values for SearchLeaves, and leaves caches
	// parsed+flattened query text, so the text search path allocates
	// nothing at steady state.
	planPool sync.Pool
	leaves   leafCache
}

// Option configures an Engine.
type Option func(*Engine)

// WithMu overrides the Dirichlet smoothing parameter.
func WithMu(mu float64) Option {
	return func(e *Engine) { e.mu = mu }
}

// NewEngine wraps an index and the analyzer that produced its terms.
func NewEngine(ix *index.Index, an *text.Analyzer, opts ...Option) (*Engine, error) {
	if ix == nil {
		return nil, fmt.Errorf("search: nil index")
	}
	e := &Engine{ix: ix, an: an, mu: DefaultMu}
	for _, opt := range opts {
		opt(e)
	}
	if e.mu <= 0 {
		return nil, fmt.Errorf("search: mu must be positive, got %g", e.mu)
	}
	return e, nil
}

// Analyzer returns the engine's analysis chain (shared with the linker and
// the indexer).
func (e *Engine) Analyzer() *text.Analyzer { return e.an }

// Index returns the underlying index.
func (e *Engine) Index() *index.Index { return e.ix }

// Mu returns the engine's Dirichlet smoothing parameter.
func (e *Engine) Mu() float64 { return e.mu }

// IndexCollection analyzes and indexes every document of the collection in
// dense-ID order, so corpus.DocID and index doc IDs coincide. It returns the
// populated index.
func IndexCollection(c *corpus.Collection, an *text.Analyzer) *index.Index {
	ix := index.New()
	for _, doc := range c.Docs() {
		ix.AddDocument(an.Analyze(doc.Text))
	}
	return ix
}

// Parse parses a query string with the engine's analyzer.
func (e *Engine) Parse(query string) (Node, error) { return ParseQuery(query, e.an) }

// Leaf is one scoring leaf of a flattened query: a term (len(Terms) == 1)
// or an exact phrase (len(Terms) > 1) with its effective weight.
type Leaf struct {
	Terms  []string
	Weight float64
}

// Flatten converts the AST into weighted scoring leaves, in the
// deterministic left-to-right order the scorer folds them. Distributed
// callers flatten once, plan the leaves against every partition
// (PlanLeaves) and aggregate per-leaf collection statistics before scoring
// (SearchPlan).
func Flatten(n Node) ([]Leaf, error) { return flatten(n, 1, nil) }

// flatten converts the AST into weighted leaves. #combine is an unweighted
// sum of child log scores, so it passes weight w through to every child;
// #weight normalizes its weights to sum 1 and distributes w * (wi / Σw).
func flatten(n Node, w float64, out []Leaf) ([]Leaf, error) {
	switch t := n.(type) {
	case Term:
		return append(out, Leaf{Terms: []string{t.Text}, Weight: w}), nil
	case Phrase:
		if len(t.Terms) == 0 {
			return nil, fmt.Errorf("search: empty phrase node")
		}
		return append(out, Leaf{Terms: t.Terms, Weight: w}), nil
	case Combine:
		if len(t.Children) == 0 {
			return nil, fmt.Errorf("search: empty combine node")
		}
		var err error
		for _, ch := range t.Children {
			out, err = flatten(ch, w, out)
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	case Weight:
		if len(t.Children) == 0 {
			return nil, fmt.Errorf("search: empty weight node")
		}
		if len(t.Children) != len(t.Weights) {
			return nil, fmt.Errorf("search: weight node has %d children but %d weights",
				len(t.Children), len(t.Weights))
		}
		var sum float64
		for _, wi := range t.Weights {
			if wi < 0 {
				return nil, fmt.Errorf("search: negative weight %g", wi)
			}
			sum += wi
		}
		if sum == 0 {
			return nil, fmt.Errorf("search: weight node with zero total weight")
		}
		var err error
		for i, ch := range t.Children {
			out, err = flatten(ch, w*t.Weights[i]/sum, out)
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	case nil:
		return nil, fmt.Errorf("search: nil query node")
	default:
		return nil, fmt.Errorf("search: unknown node type %T", n)
	}
}

// scorerScratch holds the dense per-search working state. Accumulators are
// keyed directly by the index's dense int32 doc IDs; epoch marking makes
// reuse across searches O(candidates) instead of O(NumDocs) clearing.
type scorerScratch struct {
	acc   []float64 // acc[doc]: tf-dependent score mass of this search
	epoch []uint32  // epoch[doc] == cur marks doc as a candidate
	cur   uint32
	docs  []int32  // candidate docs in first-touch order
	heap  []Result // top-k heap storage, reused across searches
}

func (e *Engine) getScratch() *scorerScratch {
	sc, _ := e.scratch.Get().(*scorerScratch)
	if sc == nil {
		sc = &scorerScratch{}
	}
	if n := e.ix.NumDocs(); len(sc.acc) < n {
		sc.acc = make([]float64, n)
		sc.epoch = make([]uint32, n)
		sc.cur = 0
	}
	sc.cur++
	if sc.cur == 0 { // epoch counter wrapped: stale marks would alias
		clear(sc.epoch)
		sc.cur = 1
	}
	sc.docs = sc.docs[:0]
	return sc
}

// Plan is one query prepared against this engine's index: the flattened
// leaves with their postings and local collection frequencies fetched, but
// not yet scored. Separating statistics gathering from scoring is the hook
// the sharded runtime (internal/shard) builds on: it plans the same leaves
// against every partition, sums each leaf's collection frequency across
// the partitions — exact integer addition, so order cannot perturb the
// result — and then scores every partition with the same global Stats,
// which makes partitioned scoring bit-identical to the single-index
// scorer.
type Plan struct {
	leaves   []Leaf
	postings [][]index.Posting
	localCF  []int64
	// phraseScratch is reused across the plan's phrase leaves (and across
	// re-plans of a pooled Plan); the produced postings do not alias it.
	phraseScratch index.PhraseScratch
}

// NumLeaves returns the number of scoring leaves in the plan.
func (p *Plan) NumLeaves() int { return len(p.leaves) }

// LocalCF returns this index's collection frequency of leaf i (for a
// phrase leaf, the occurrence count of the exact phrase in this index).
func (p *Plan) LocalCF(i int) int64 { return p.localCF[i] }

// PlanLeaves fetches the postings and local collection frequency of every
// leaf against this engine's index. A term or phrase absent from the index
// plans as empty postings with zero frequency.
func (e *Engine) PlanLeaves(leaves []Leaf) *Plan {
	return e.PlanLeavesInto(nil, leaves)
}

// PlanLeavesInto is PlanLeaves reusing dst's storage (dst may be nil) —
// the allocation-free re-planning path a scatter caller takes when it
// plans the same leaves against many partition indexes per query.
func (e *Engine) PlanLeavesInto(dst *Plan, leaves []Leaf) *Plan {
	p := dst
	if p == nil {
		p = &Plan{}
	}
	p.leaves = leaves
	if cap(p.postings) < len(leaves) {
		p.postings = make([][]index.Posting, len(leaves))
		p.localCF = make([]int64, len(leaves))
	}
	p.postings = p.postings[:len(leaves)]
	p.localCF = p.localCF[:len(leaves)]
	for i, lf := range leaves {
		if len(lf.Terms) == 1 {
			p.postings[i], p.localCF[i] = e.ix.Lookup(lf.Terms[0])
		} else {
			p.postings[i] = e.ix.PhrasePostingsScratch(lf.Terms, &p.phraseScratch)
			p.localCF[i] = index.PostingsCollectionFreq(p.postings[i])
		}
	}
	return p
}

// Stats is the collection-statistics view the Dirichlet scorer smooths
// with. A nil *Stats means "this index is the whole collection": the
// engine's own token count and the plan's local frequencies.
type Stats struct {
	// TotalTokens is the collection length |C| the background model
	// divides by.
	TotalTokens int64
	// LeafCF is the collection frequency per scoring leaf, aligned with
	// the flattened leaf order; nil keeps the plan's local frequencies.
	LeafCF []int64
}

// Search evaluates the query and returns the top k documents by descending
// score, ties broken by ascending document ID for determinism. Only
// documents matching at least one leaf are candidates; k <= 0 returns all
// candidates ranked. A query with no matching documents returns an empty
// (non-nil) slice.
func (e *Engine) Search(q Node, k int) ([]Result, error) {
	leaves, err := Flatten(q)
	if err != nil {
		return nil, err
	}
	return e.SearchLeaves(leaves, k, nil)
}

// LeavesForQuery parses and flattens raw query text into scoring leaves,
// memoized in the engine's bounded LRU so repeated query strings skip the
// parse entirely (the steady-state serving case). The returned leaves are
// shared and must be treated as read-only; errors are never cached.
func (e *Engine) LeavesForQuery(query string) ([]Leaf, error) {
	if leaves, ok := e.leaves.get(query); ok {
		return leaves, nil
	}
	node, err := ParseQuery(query, e.an)
	if err != nil {
		return nil, err
	}
	leaves, err := Flatten(node)
	if err != nil {
		return nil, err
	}
	e.leaves.put(query, leaves)
	return leaves, nil
}

// SearchText evaluates raw query text under the Search contract, reusing
// dst's storage for the returned ranking (dst may be nil). With a warm
// leaves cache and a caller-pooled dst this path allocates nothing.
func (e *Engine) SearchText(query string, k int, dst []Result) ([]Result, error) {
	leaves, err := e.LeavesForQuery(query)
	if err != nil {
		return nil, err
	}
	return e.SearchLeaves(leaves, k, dst)
}

// SearchLeaves evaluates pre-flattened scoring leaves under the Search
// contract, reusing dst's storage for the returned ranking (dst may be
// nil). The plan is drawn from a pool, so repeated searches do not
// reallocate postings tables.
func (e *Engine) SearchLeaves(leaves []Leaf, k int, dst []Result) ([]Result, error) {
	p, _ := e.planPool.Get().(*Plan)
	p = e.PlanLeavesInto(p, leaves)
	rs, err := e.SearchPlanInto(p, k, nil, dst)
	p.leaves = nil // do not pin caller (or cached) leaves across pool reuse
	e.planPool.Put(p)
	return rs, err
}

// SearchPlan scores a planned query under the given collection statistics
// (nil = this index's own) and returns the top k under the Search
// contract.
//
// The scorer is a doc-ordered accumulator merge: each leaf's postings are
// walked once, folding that leaf's contribution into a dense per-document
// accumulator. A document's Dirichlet query-likelihood score decomposes as
//
//	score(d) = Σ_l w_l·log(tf_l(d) + µ·pc_l) − (Σ_l w_l)·log(|d| + µ)
//
// so the merge accumulates the tf-dependent part only where tf > 0 (zeroSum
// carries the tf = 0 baseline) and applies the length normalization once
// per candidate. Ranking uses a bounded top-k heap instead of sorting every
// candidate.
func (e *Engine) SearchPlan(p *Plan, k int, stats *Stats) ([]Result, error) {
	return e.SearchPlanInto(p, k, stats, nil)
}

// SearchPlanInto is SearchPlan reusing dst's storage for the returned
// ranking (dst may be nil, in which case a fresh slice is allocated). The
// top-k heap itself lives in the engine's pooled scratch, so a caller that
// recycles dst completes the whole scoring pass without allocating.
func (e *Engine) SearchPlanInto(p *Plan, k int, stats *Stats, dst []Result) ([]Result, error) {
	totalTokens := e.ix.TotalTokens()
	leafCF := p.localCF
	if stats != nil {
		totalTokens = stats.TotalTokens
		if stats.LeafCF != nil {
			if len(stats.LeafCF) != len(p.leaves) {
				return nil, fmt.Errorf("search: stats carry %d leaf frequencies for %d plan leaves",
					len(stats.LeafCF), len(p.leaves))
			}
			leafCF = stats.LeafCF
		}
	}
	if e.ix.NumDocs() == 0 || totalTokens == 0 {
		return emptyResults(dst), nil
	}
	total := float64(totalTokens)

	sc := e.getScratch()
	defer e.scratch.Put(sc)

	var zeroSum, weightSum float64
	for i, lf := range p.leaves {
		muPc := e.mu * math.Max(float64(leafCF[i]), unseenFloor) / total
		logMuPc := math.Log(muPc)
		zeroSum += lf.Weight * logMuPc
		weightSum += lf.Weight
		for _, post := range p.postings[i] {
			delta := lf.Weight * (math.Log(float64(len(post.Positions))+muPc) - logMuPc)
			if sc.epoch[post.Doc] == sc.cur {
				sc.acc[post.Doc] += delta
			} else {
				sc.epoch[post.Doc] = sc.cur
				sc.acc[post.Doc] = delta
				sc.docs = append(sc.docs, post.Doc)
			}
		}
	}
	if len(sc.docs) == 0 {
		return emptyResults(dst), nil
	}

	if k <= 0 || k > len(sc.docs) {
		k = len(sc.docs)
	}
	top := topK{k: k, h: sc.heap[:0]}
	for _, doc := range sc.docs {
		dl, err := e.ix.DocLen(doc)
		if err != nil {
			return nil, err
		}
		score := zeroSum + sc.acc[doc] - weightSum*math.Log(float64(dl)+e.mu)
		top.offer(Result{Doc: doc, Score: score})
	}
	out := top.ranked()
	sc.heap = out[:0] // the drained heap's storage stays pooled
	if dst == nil {
		res := make([]Result, len(out))
		copy(res, out)
		return res, nil
	}
	return append(dst[:0], out...), nil
}

// emptyResults is the no-candidates ranking under the Search contract: an
// empty, non-nil slice, reusing dst's storage when the caller supplied one.
func emptyResults(dst []Result) []Result {
	if dst != nil {
		return dst[:0]
	}
	return []Result{}
}

// Docs extracts the document IDs of results in rank order.
func Docs(rs []Result) []int32 {
	out := make([]int32, len(rs))
	for i, r := range rs {
		out[i] = r.Doc
	}
	return out
}
