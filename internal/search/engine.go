package search

import (
	"fmt"
	"math"
	"sync"

	"github.com/querygraph/querygraph/internal/corpus"
	"github.com/querygraph/querygraph/internal/index"
	"github.com/querygraph/querygraph/internal/text"
)

// DefaultMu is the Dirichlet smoothing parameter, INDRI's default.
const DefaultMu = 2500

// unseenFloor stands in for the collection frequency of a term or phrase
// never seen in the collection, so that its background probability is small
// but non-zero (INDRI applies the same kind of floor for out-of-vocabulary
// terms).
const unseenFloor = 0.5

// Result is one ranked document.
type Result struct {
	Doc   int32
	Score float64
}

// Engine scores queries against an index with Dirichlet-smoothed query
// likelihood. It is safe for concurrent use once constructed.
type Engine struct {
	ix *index.Index
	an *text.Analyzer
	mu float64

	// scratch pools the dense per-search accumulators so concurrent
	// searches don't contend and repeated searches don't reallocate.
	scratch sync.Pool
}

// Option configures an Engine.
type Option func(*Engine)

// WithMu overrides the Dirichlet smoothing parameter.
func WithMu(mu float64) Option {
	return func(e *Engine) { e.mu = mu }
}

// NewEngine wraps an index and the analyzer that produced its terms.
func NewEngine(ix *index.Index, an *text.Analyzer, opts ...Option) (*Engine, error) {
	if ix == nil {
		return nil, fmt.Errorf("search: nil index")
	}
	e := &Engine{ix: ix, an: an, mu: DefaultMu}
	for _, opt := range opts {
		opt(e)
	}
	if e.mu <= 0 {
		return nil, fmt.Errorf("search: mu must be positive, got %g", e.mu)
	}
	return e, nil
}

// Analyzer returns the engine's analysis chain (shared with the linker and
// the indexer).
func (e *Engine) Analyzer() *text.Analyzer { return e.an }

// Index returns the underlying index.
func (e *Engine) Index() *index.Index { return e.ix }

// Mu returns the engine's Dirichlet smoothing parameter.
func (e *Engine) Mu() float64 { return e.mu }

// IndexCollection analyzes and indexes every document of the collection in
// dense-ID order, so corpus.DocID and index doc IDs coincide. It returns the
// populated index.
func IndexCollection(c *corpus.Collection, an *text.Analyzer) *index.Index {
	ix := index.New()
	for _, doc := range c.Docs() {
		ix.AddDocument(an.Analyze(doc.Text))
	}
	return ix
}

// Parse parses a query string with the engine's analyzer.
func (e *Engine) Parse(query string) (Node, error) { return ParseQuery(query, e.an) }

// leaf is a scoring leaf: a term or phrase with its effective weight.
type leaf struct {
	terms  []string // len 1 = term, len > 1 = phrase
	weight float64
}

// flatten converts the AST into weighted leaves. #combine is an unweighted
// sum of child log scores, so it passes weight w through to every child;
// #weight normalizes its weights to sum 1 and distributes w * (wi / Σw).
func flatten(n Node, w float64, out []leaf) ([]leaf, error) {
	switch t := n.(type) {
	case Term:
		return append(out, leaf{terms: []string{t.Text}, weight: w}), nil
	case Phrase:
		if len(t.Terms) == 0 {
			return nil, fmt.Errorf("search: empty phrase node")
		}
		return append(out, leaf{terms: t.Terms, weight: w}), nil
	case Combine:
		if len(t.Children) == 0 {
			return nil, fmt.Errorf("search: empty combine node")
		}
		var err error
		for _, ch := range t.Children {
			out, err = flatten(ch, w, out)
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	case Weight:
		if len(t.Children) == 0 {
			return nil, fmt.Errorf("search: empty weight node")
		}
		if len(t.Children) != len(t.Weights) {
			return nil, fmt.Errorf("search: weight node has %d children but %d weights",
				len(t.Children), len(t.Weights))
		}
		var sum float64
		for _, wi := range t.Weights {
			if wi < 0 {
				return nil, fmt.Errorf("search: negative weight %g", wi)
			}
			sum += wi
		}
		if sum == 0 {
			return nil, fmt.Errorf("search: weight node with zero total weight")
		}
		var err error
		for i, ch := range t.Children {
			out, err = flatten(ch, w*t.Weights[i]/sum, out)
			if err != nil {
				return nil, err
			}
		}
		return out, nil
	case nil:
		return nil, fmt.Errorf("search: nil query node")
	default:
		return nil, fmt.Errorf("search: unknown node type %T", n)
	}
}

// scorerScratch holds the dense per-search working state. Accumulators are
// keyed directly by the index's dense int32 doc IDs; epoch marking makes
// reuse across searches O(candidates) instead of O(NumDocs) clearing.
type scorerScratch struct {
	acc   []float64 // acc[doc]: tf-dependent score mass of this search
	epoch []uint32  // epoch[doc] == cur marks doc as a candidate
	cur   uint32
	docs  []int32 // candidate docs in first-touch order
}

func (e *Engine) getScratch() *scorerScratch {
	sc, _ := e.scratch.Get().(*scorerScratch)
	if sc == nil {
		sc = &scorerScratch{}
	}
	if n := e.ix.NumDocs(); len(sc.acc) < n {
		sc.acc = make([]float64, n)
		sc.epoch = make([]uint32, n)
		sc.cur = 0
	}
	sc.cur++
	if sc.cur == 0 { // epoch counter wrapped: stale marks would alias
		clear(sc.epoch)
		sc.cur = 1
	}
	sc.docs = sc.docs[:0]
	return sc
}

// Search evaluates the query and returns the top k documents by descending
// score, ties broken by ascending document ID for determinism. Only
// documents matching at least one leaf are candidates; k <= 0 returns all
// candidates ranked. A query with no matching documents returns an empty
// (non-nil) slice.
//
// The scorer is a doc-ordered accumulator merge: each leaf's postings are
// walked once, folding that leaf's contribution into a dense per-document
// accumulator. A document's Dirichlet query-likelihood score decomposes as
//
//	score(d) = Σ_l w_l·log(tf_l(d) + µ·pc_l) − (Σ_l w_l)·log(|d| + µ)
//
// so the merge accumulates the tf-dependent part only where tf > 0 (zeroSum
// carries the tf = 0 baseline) and applies the length normalization once
// per candidate. Ranking uses a bounded top-k heap instead of sorting every
// candidate.
func (e *Engine) Search(q Node, k int) ([]Result, error) {
	leaves, err := flatten(q, 1, nil)
	if err != nil {
		return nil, err
	}
	if e.ix.NumDocs() == 0 || e.ix.TotalTokens() == 0 {
		return []Result{}, nil
	}
	total := float64(e.ix.TotalTokens())

	sc := e.getScratch()
	defer e.scratch.Put(sc)

	var zeroSum, weightSum float64
	for _, lf := range leaves {
		var postings []index.Posting
		var cf int64
		if len(lf.terms) == 1 {
			postings = e.ix.Postings(lf.terms[0])
			cf = e.ix.CollectionFreq(lf.terms[0])
		} else {
			postings = e.ix.PhrasePostings(lf.terms)
			cf = index.PostingsCollectionFreq(postings)
		}
		muPc := e.mu * math.Max(float64(cf), unseenFloor) / total
		logMuPc := math.Log(muPc)
		zeroSum += lf.weight * logMuPc
		weightSum += lf.weight
		for _, p := range postings {
			delta := lf.weight * (math.Log(float64(len(p.Positions))+muPc) - logMuPc)
			if sc.epoch[p.Doc] == sc.cur {
				sc.acc[p.Doc] += delta
			} else {
				sc.epoch[p.Doc] = sc.cur
				sc.acc[p.Doc] = delta
				sc.docs = append(sc.docs, p.Doc)
			}
		}
	}
	if len(sc.docs) == 0 {
		return []Result{}, nil
	}

	if k <= 0 || k > len(sc.docs) {
		k = len(sc.docs)
	}
	top := newTopK(k)
	for _, doc := range sc.docs {
		dl, err := e.ix.DocLen(doc)
		if err != nil {
			return nil, err
		}
		score := zeroSum + sc.acc[doc] - weightSum*math.Log(float64(dl)+e.mu)
		top.offer(Result{Doc: doc, Score: score})
	}
	return top.ranked(), nil
}

// Docs extracts the document IDs of results in rank order.
func Docs(rs []Result) []int32 {
	out := make([]int32, len(rs))
	for i, r := range rs {
		out[i] = r.Doc
	}
	return out
}
