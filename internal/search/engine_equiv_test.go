package search

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/querygraph/querygraph/internal/index"
)

// referenceSearch is the pre-accumulator scorer — per-leaf tf hash maps, a
// map candidate set and a full sort over every candidate — kept as the
// oracle the accumulator+heap scorer must agree with on docs, scores and
// tie-breaks.
func referenceSearch(e *Engine, q Node, k int) ([]Result, error) {
	leaves, err := flatten(q, 1, nil)
	if err != nil {
		return nil, err
	}
	if e.ix.NumDocs() == 0 || e.ix.TotalTokens() == 0 {
		return nil, nil
	}
	total := float64(e.ix.TotalTokens())

	type leafStats struct {
		weight float64
		pc     float64
		tf     map[int32]float64
	}
	stats := make([]leafStats, 0, len(leaves))
	candidates := make(map[int32]struct{})
	for _, lf := range leaves {
		var postings []index.Posting
		var cf int64
		if len(lf.Terms) == 1 {
			postings = e.ix.Postings(lf.Terms[0])
			cf = e.ix.CollectionFreq(lf.Terms[0])
		} else {
			postings = e.ix.PhrasePostings(lf.Terms)
			for _, p := range postings {
				cf += int64(len(p.Positions))
			}
		}
		ls := leafStats{
			weight: lf.Weight,
			pc:     math.Max(float64(cf), unseenFloor) / total,
			tf:     make(map[int32]float64, len(postings)),
		}
		for _, p := range postings {
			ls.tf[p.Doc] = float64(len(p.Positions))
			candidates[p.Doc] = struct{}{}
		}
		stats = append(stats, ls)
	}
	if len(candidates) == 0 {
		return nil, nil
	}

	results := make([]Result, 0, len(candidates))
	for doc := range candidates {
		dl, err := e.ix.DocLen(doc)
		if err != nil {
			return nil, err
		}
		score := 0.0
		for _, ls := range stats {
			tf := ls.tf[doc]
			score += ls.weight * math.Log((tf+e.mu*ls.pc)/(float64(dl)+e.mu))
		}
		results = append(results, Result{Doc: doc, Score: score})
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		return results[i].Doc < results[j].Doc
	})
	if k > 0 && len(results) > k {
		results = results[:k]
	}
	return results, nil
}

// randomIndex builds a small index of random documents over a compact
// vocabulary, so terms collide across docs and phrases actually occur.
func randomIndex(rng *rand.Rand, numDocs, vocab, maxLen int) *index.Index {
	ix := index.New()
	for d := 0; d < numDocs; d++ {
		n := rng.Intn(maxLen + 1) // empty docs allowed
		tokens := make([]string, n)
		for i := range tokens {
			tokens[i] = fmt.Sprintf("t%d", rng.Intn(vocab))
		}
		ix.AddDocument(tokens)
	}
	return ix
}

// randomQuery assembles a random AST of terms, phrases, #combine and
// #weight nodes over the same vocabulary.
func randomQuery(rng *rand.Rand, vocab int) Node {
	term := func() string { return fmt.Sprintf("t%d", rng.Intn(vocab)) }
	leaf := func() Node {
		if rng.Intn(3) == 0 {
			n := 2 + rng.Intn(2)
			terms := make([]string, n)
			for i := range terms {
				terms[i] = term()
			}
			return Phrase{Terms: terms}
		}
		return Term{Text: term()}
	}
	n := 1 + rng.Intn(5)
	children := make([]Node, n)
	for i := range children {
		children[i] = leaf()
	}
	if rng.Intn(2) == 0 {
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = 0.1 + rng.Float64()
		}
		return Weight{Children: children, Weights: weights}
	}
	return Combine{Children: children}
}

// TestSearchMatchesReference is the property test for the rewritten hot
// path: on randomized indexes and queries, the accumulator+heap scorer
// must return the same ranked documents in the same order, with the same
// tie-breaks and numerically equal scores, as the map+sort oracle, for
// every truncation depth.
func TestSearchMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		numDocs := 1 + rng.Intn(120)
		vocab := 2 + rng.Intn(25)
		ix := randomIndex(rng, numDocs, vocab, 30)
		e, err := NewEngine(ix, plain, WithMu(float64(1+rng.Intn(4000))))
		if err != nil {
			t.Fatal(err)
		}
		for qi := 0; qi < 8; qi++ {
			q := randomQuery(rng, vocab)
			for _, k := range []int{0, 1, 3, 10, numDocs + 5} {
				want, err := referenceSearch(e, q, k)
				if err != nil {
					t.Fatalf("trial %d query %v: reference: %v", trial, q, err)
				}
				got, err := e.Search(q, k)
				if err != nil {
					t.Fatalf("trial %d query %v: %v", trial, q, err)
				}
				if got == nil {
					t.Fatalf("trial %d query %v k=%d: nil results", trial, q, k)
				}
				if len(got) != len(want) {
					t.Fatalf("trial %d query %v k=%d: %d results, want %d",
						trial, q, k, len(got), len(want))
				}
				for i := range want {
					if got[i].Doc != want[i].Doc {
						t.Fatalf("trial %d query %v k=%d rank %d: doc %d, want %d\ngot  %+v\nwant %+v",
							trial, q, k, i, got[i].Doc, want[i].Doc, got, want)
					}
					if !approxEqual(got[i].Score, want[i].Score) {
						t.Fatalf("trial %d query %v k=%d rank %d: score %g, want %g",
							trial, q, k, i, got[i].Score, want[i].Score)
					}
				}
			}
		}
	}
}

// approxEqual compares scores up to the float reassociation the
// accumulator decomposition introduces.
func approxEqual(a, b float64) bool {
	diff := math.Abs(a - b)
	return diff <= 1e-9 || diff <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// TestSearchScratchReuse exercises the pooled scratch across many
// searches on one engine, including concurrent use, so epoch marking and
// accumulator reuse are covered.
func TestSearchScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ix := randomIndex(rng, 80, 12, 25)
	e, err := NewEngine(ix, plain)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]Node, 20)
	for i := range queries {
		queries[i] = randomQuery(rng, 12)
	}
	wants := make([][]Result, len(queries))
	for i, q := range queries {
		if wants[i], err = referenceSearch(e, q, 10); err != nil {
			t.Fatal(err)
		}
	}
	// Sequential reuse: every search reuses the same pooled scratch.
	for round := 0; round < 5; round++ {
		for i, q := range queries {
			got, err := e.Search(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(wants[i]) {
				t.Fatalf("round %d query %d: %d results, want %d", round, i, len(got), len(wants[i]))
			}
			for j := range got {
				if got[j].Doc != wants[i][j].Doc {
					t.Fatalf("round %d query %d rank %d: doc %d, want %d",
						round, i, j, got[j].Doc, wants[i][j].Doc)
				}
			}
		}
	}
	// Concurrent use: distinct scratches, same answers.
	t.Run("concurrent", func(t *testing.T) {
		done := make(chan error, len(queries))
		for i, q := range queries {
			go func(i int, q Node) {
				got, err := e.Search(q, 10)
				if err != nil {
					done <- err
					return
				}
				for j := range got {
					if got[j].Doc != wants[i][j].Doc {
						done <- fmt.Errorf("query %d rank %d: doc %d, want %d",
							i, j, got[j].Doc, wants[i][j].Doc)
						return
					}
				}
				done <- nil
			}(i, q)
		}
		for range queries {
			if err := <-done; err != nil {
				t.Error(err)
			}
		}
	})
}
