// Allocation regression tests are meaningless under the race detector —
// its instrumentation allocates on paths that are clean in normal builds.
//go:build !race

package search

import "testing"

// TestSearchTextSteadyStateAllocs pins the engine-level zero-allocation
// contract the qserve fast path builds on: with a warm leaves cache and a
// reused dst, SearchText allocates nothing.
func TestSearchTextSteadyStateAllocs(t *testing.T) {
	e := buildEngine(t,
		"venice grand canal gondola",
		"venice carnival mask",
		"canal water transport venice",
	)
	dst := make([]Result, 0, 16)
	if _, err := e.SearchText("venice canal", 2, dst); err != nil { // warm
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		rs, err := e.SearchText("venice canal", 2, dst)
		if err != nil || len(rs) == 0 {
			t.Fatal("unexpected result", rs, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("SearchText steady state allocates %v per op, want 0", allocs)
	}
}
