package search

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/querygraph/querygraph/internal/index"
)

// TestSearchPlanPartitionedMatchesSingle is the engine-level half of the
// sharded-equivalence guarantee: scoring two disjoint partitions of an
// index under globally aggregated statistics (summed leaf frequencies,
// the full collection's token count) and merging by (score desc, doc asc)
// must reproduce the single-index ranking bit for bit — scores compared
// with ==, not approximately.
func TestSearchPlanPartitionedMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		numDocs := 2 + rng.Intn(100)
		vocab := 2 + rng.Intn(20)
		parts := 2 + rng.Intn(3)

		// One token stream per document, partitioned round-robin-by-hash
		// into per-partition indexes with a local→global doc map.
		docs := make([][]string, numDocs)
		full := index.New()
		for d := range docs {
			n := rng.Intn(25)
			tokens := make([]string, n)
			for i := range tokens {
				tokens[i] = "t" + string(rune('a'+rng.Intn(vocab)))
			}
			docs[d] = tokens
			full.AddDocument(tokens)
		}
		partIx := make([]*index.Index, parts)
		partMap := make([][]int32, parts)
		for p := range partIx {
			partIx[p] = index.New()
		}
		for d, tokens := range docs {
			p := (d * 2654435761) % parts // deterministic pseudo-hash
			partIx[p].AddDocument(tokens)
			partMap[p] = append(partMap[p], int32(d))
		}

		mu := float64(1 + rng.Intn(4000))
		single, err := NewEngine(full, plain, WithMu(mu))
		if err != nil {
			t.Fatal(err)
		}
		engines := make([]*Engine, parts)
		for p := range engines {
			if engines[p], err = NewEngine(partIx[p], plain, WithMu(mu)); err != nil {
				t.Fatal(err)
			}
		}

		for qi := 0; qi < 6; qi++ {
			q := randomQuery(rng, vocab)
			leaves, err := Flatten(q)
			if err != nil {
				t.Fatal(err)
			}
			plans := make([]*Plan, parts)
			leafCF := make([]int64, len(leaves))
			for p, e := range engines {
				plans[p] = e.PlanLeaves(leaves)
				for i := range leaves {
					leafCF[i] += plans[p].LocalCF(i)
				}
			}
			stats := &Stats{TotalTokens: full.TotalTokens(), LeafCF: leafCF}

			for _, k := range []int{0, 1, 5, numDocs + 3} {
				want, err := single.Search(q, k)
				if err != nil {
					t.Fatal(err)
				}
				var merged []Result
				for p, e := range engines {
					local, err := e.SearchPlan(plans[p], k, stats)
					if err != nil {
						t.Fatal(err)
					}
					for _, r := range local {
						merged = append(merged, Result{Doc: partMap[p][r.Doc], Score: r.Score})
					}
				}
				sort.Slice(merged, func(i, j int) bool {
					if merged[i].Score != merged[j].Score {
						return merged[i].Score > merged[j].Score
					}
					return merged[i].Doc < merged[j].Doc
				})
				if k > 0 && len(merged) > k {
					merged = merged[:k]
				}
				if len(merged) != len(want) {
					t.Fatalf("trial %d query %v k=%d: merged %d results, single %d",
						trial, q, k, len(merged), len(want))
				}
				for i := range want {
					if merged[i].Doc != want[i].Doc || merged[i].Score != want[i].Score {
						t.Fatalf("trial %d query %v k=%d rank %d: merged (%d, %v), single (%d, %v)",
							trial, q, k, i, merged[i].Doc, merged[i].Score, want[i].Doc, want[i].Score)
					}
				}
			}
		}
	}
}
