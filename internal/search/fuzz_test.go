package search

import (
	"strings"
	"testing"

	"github.com/querygraph/querygraph/internal/text"
)

// FuzzParse drives ParseQuery with arbitrary input. The parser's contract
// under fuzzing:
//
//   - it never panics — syntax problems are errors, not crashes;
//   - err == nil implies a non-nil Node;
//   - an accepted query renders (Node.String is documented as
//     parse-compatible) back into a query the parser accepts again, with
//     one carve-out: analysis is not idempotent, so re-analyzing already
//     analyzed terms may collapse the query to nothing (found by fuzzing:
//     "BYS" stems to "by", which is a stopword). That specific "analyzes
//     to nothing" outcome is legal; any other re-parse failure is a bug.
//
// Both the full analysis chain and the bare tokenizing analyzer run, since
// stopword removal changes which constructs collapse to nothing.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"",
		"gondola in venice",
		"grand canal venice",
		"#combine(a b c)",
		"#1(grand canal)",
		"#weight(0.7 venice 0.3 #1(grand canal))",
		"#weight(1 #combine(a) 2 b)",
		"#combine(#combine(a) #1(b c) #weight(1 d))",
		"#combine(the of and)", // stopwords only: analyzes to nothing
		"#1()",
		"#combine()",
		"#weight()",
		"#weight(x y)",
		"#weight(-1 a)",
		"#weight(1e300 a 2.5e-7 b)",
		"#1(a #combine(b))",
		"#2(a b)",
		"#",
		"##",
		"#combine(a",
		"#1(a b",
		"((((",
		"))))",
		")a(",
		"word#word",
		"süß #1(ñ ü)",
		"\x00\xff\xfe",
		"#weight(0 a 0 b)",
		"#weight(NaN a)",
		"#weight(Inf a)",
	} {
		f.Add(seed)
	}
	full := text.NewAnalyzer(true, true)
	bare := &text.Analyzer{}
	f.Fuzz(func(t *testing.T, query string) {
		for _, an := range []*text.Analyzer{full, bare} {
			node, err := ParseQuery(query, an)
			if err != nil {
				if node != nil {
					t.Fatalf("ParseQuery(%q) returned both a node and error %v", query, err)
				}
				continue
			}
			if node == nil {
				t.Fatalf("ParseQuery(%q) returned nil node without error", query)
			}
			rendered := node.String()
			if _, err := ParseQuery(rendered, an); err != nil &&
				!strings.Contains(err.Error(), "analyzes to nothing") {
				t.Fatalf("ParseQuery(%q) accepted, but its rendering %q does not re-parse: %v",
					query, rendered, err)
			}
		}
	})
}
