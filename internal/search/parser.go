package search

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"github.com/querygraph/querygraph/internal/text"
)

// ParseQuery parses a query string in the supported INDRI subset:
//
//	query   := node+                      (multiple nodes imply #combine)
//	node    := "#combine" "(" node+ ")"
//	         | "#weight"  "(" (number node)+ ")"
//	         | "#1"       "(" word+ ")"
//	         | word
//
// Words are analyzed with the engine's analyzer; words that analyze to
// nothing (stopwords under a stopping analyzer) are dropped. An error is
// returned for syntax problems or a query that analyzes to nothing.
func ParseQuery(query string, an *text.Analyzer) (Node, error) {
	toks, err := lex(query)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, an: an}
	var nodes []Node
	for !p.done() {
		n, err := p.parseNode()
		if err != nil {
			return nil, err
		}
		if n != nil {
			nodes = append(nodes, n)
		}
	}
	switch len(nodes) {
	case 0:
		return nil, fmt.Errorf("search: query %q analyzes to nothing", query)
	case 1:
		return nodes[0], nil
	default:
		return Combine{Children: nodes}, nil
	}
}

type token struct {
	kind byte // 'w' word, '(' open, ')' close, '#' operator
	val  string
}

func lex(s string) ([]token, error) {
	var toks []token
	i := 0
	runes := []rune(s)
	for i < len(runes) {
		r := runes[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '(':
			toks = append(toks, token{kind: '('})
			i++
		case r == ')':
			toks = append(toks, token{kind: ')'})
			i++
		case r == '#':
			j := i + 1
			for j < len(runes) && (unicode.IsLetter(runes[j]) || unicode.IsDigit(runes[j])) {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("search: dangling # at offset %d", i)
			}
			toks = append(toks, token{kind: '#', val: strings.ToLower(string(runes[i+1 : j]))})
			i = j
		default:
			j := i
			for j < len(runes) && !unicode.IsSpace(runes[j]) && runes[j] != '(' && runes[j] != ')' && runes[j] != '#' {
				j++
			}
			toks = append(toks, token{kind: 'w', val: string(runes[i:j])})
			i = j
		}
	}
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
	an   *text.Analyzer
}

func (p *parser) done() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() (token, bool) {
	if p.done() {
		return token{}, false
	}
	return p.toks[p.pos], true
}

func (p *parser) next() (token, bool) {
	t, ok := p.peek()
	if ok {
		p.pos++
	}
	return t, ok
}

func (p *parser) expect(kind byte) error {
	t, ok := p.next()
	if !ok || t.kind != kind {
		return fmt.Errorf("search: expected %q, got %q", string(kind), t.val)
	}
	return nil
}

// parseNode returns nil (no error) when the construct analyzes to nothing.
func (p *parser) parseNode() (Node, error) {
	t, ok := p.next()
	if !ok {
		return nil, fmt.Errorf("search: unexpected end of query")
	}
	switch t.kind {
	case 'w':
		terms := p.an.Analyze(t.val)
		switch len(terms) {
		case 0:
			return nil, nil
		case 1:
			return Term{Text: terms[0]}, nil
		default:
			children := make([]Node, len(terms))
			for i, term := range terms {
				children[i] = Term{Text: term}
			}
			return Combine{Children: children}, nil
		}
	case '#':
		switch t.val {
		case "1":
			return p.parsePhrase()
		case "combine":
			return p.parseCombine()
		case "weight":
			return p.parseWeight()
		default:
			return nil, fmt.Errorf("search: unsupported operator #%s", t.val)
		}
	default:
		return nil, fmt.Errorf("search: unexpected token %q", string(t.kind))
	}
}

func (p *parser) parsePhrase() (Node, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	var raw []string
	for {
		t, ok := p.next()
		if !ok {
			return nil, fmt.Errorf("search: unterminated #1(...)")
		}
		if t.kind == ')' {
			break
		}
		if t.kind != 'w' {
			return nil, fmt.Errorf("search: #1 accepts only words, got %q", t.val)
		}
		raw = append(raw, t.val)
	}
	phrase, ok := NewPhrase(strings.Join(raw, " "), p.an)
	if !ok {
		return nil, nil
	}
	return phrase, nil
}

func (p *parser) parseCombine() (Node, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	var children []Node
	for {
		t, ok := p.peek()
		if !ok {
			return nil, fmt.Errorf("search: unterminated #combine(...)")
		}
		if t.kind == ')' {
			p.pos++
			break
		}
		n, err := p.parseNode()
		if err != nil {
			return nil, err
		}
		if n != nil {
			children = append(children, n)
		}
	}
	if len(children) == 0 {
		return nil, nil
	}
	return Combine{Children: children}, nil
}

func (p *parser) parseWeight() (Node, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	var node Weight
	for {
		t, ok := p.peek()
		if !ok {
			return nil, fmt.Errorf("search: unterminated #weight(...)")
		}
		if t.kind == ')' {
			p.pos++
			break
		}
		wt, ok := p.next()
		if !ok || wt.kind != 'w' {
			return nil, fmt.Errorf("search: #weight expects a number, got %q", wt.val)
		}
		w, err := strconv.ParseFloat(wt.val, 64)
		if err != nil {
			return nil, fmt.Errorf("search: #weight expects a number, got %q", wt.val)
		}
		if w < 0 {
			return nil, fmt.Errorf("search: negative weight %g", w)
		}
		child, err := p.parseNode()
		if err != nil {
			return nil, err
		}
		if child != nil {
			node.Weights = append(node.Weights, w)
			node.Children = append(node.Children, child)
		}
	}
	if len(node.Children) == 0 {
		return nil, nil
	}
	return node, nil
}
