package search

import (
	"math"
	"strings"
	"testing"

	"github.com/querygraph/querygraph/internal/corpus"
	"github.com/querygraph/querygraph/internal/index"
	"github.com/querygraph/querygraph/internal/text"
)

var plain = text.NewAnalyzer(false, false)

func buildEngine(t *testing.T, docs ...string) *Engine {
	t.Helper()
	ix := index.New()
	for _, d := range docs {
		ix.AddDocument(plain.Analyze(d))
	}
	e, err := NewEngine(ix, plain)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func search(t *testing.T, e *Engine, q string, k int) []Result {
	t.Helper()
	node, err := e.Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	rs, err := e.Search(node, k)
	if err != nil {
		t.Fatalf("Search(%q): %v", q, err)
	}
	return rs
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil, plain); err == nil {
		t.Error("nil index should fail")
	}
	if _, err := NewEngine(index.New(), plain, WithMu(-1)); err == nil {
		t.Error("negative mu should fail")
	}
	e, err := NewEngine(index.New(), plain, WithMu(100))
	if err != nil {
		t.Fatal(err)
	}
	if e.Analyzer() != plain || e.Index() == nil {
		t.Error("accessors broken")
	}
}

func TestTermRanking(t *testing.T) {
	e := buildEngine(t,
		"venice venice venice gondola", // doc 0: heavy on venice
		"venice canal",                 // doc 1
		"florence duomo",               // doc 2: no match
	)
	rs := search(t, e, "venice", 10)
	if len(rs) != 2 {
		t.Fatalf("results = %+v, want 2 candidates", rs)
	}
	if rs[0].Doc != 0 || rs[1].Doc != 1 {
		t.Errorf("ranking = %+v, want doc0 first", rs)
	}
	if rs[0].Score <= rs[1].Score {
		t.Errorf("scores not descending: %+v", rs)
	}
}

func TestPhraseBeatsScattered(t *testing.T) {
	e := buildEngine(t,
		"the grand canal of venice", // doc 0: exact phrase
		"grand hotel near a canal",  // doc 1: words, no phrase
		"canal grand",               // doc 2: wrong order
	)
	rs := search(t, e, "#1(grand canal)", 10)
	if len(rs) != 1 || rs[0].Doc != 0 {
		t.Fatalf("phrase results = %+v, want only doc 0", rs)
	}
}

func TestCombineQuery(t *testing.T) {
	e := buildEngine(t,
		"gondola in venice", // doc 0: both
		"gondola race",      // doc 1: one
		"venice carnival",   // doc 2: one
		"florence bridge",   // doc 3: none
	)
	rs := search(t, e, "#combine(gondola venice)", 10)
	if len(rs) != 3 {
		t.Fatalf("results = %+v", rs)
	}
	if rs[0].Doc != 0 {
		t.Errorf("doc 0 should rank first: %+v", rs)
	}
}

func TestWeightQuery(t *testing.T) {
	e := buildEngine(t,
		"apple apple banana",
		"banana banana apple",
	)
	// Heavily weighting banana must rank doc 1 first; weighting apple, doc 0.
	rs := search(t, e, "#weight(9 banana 1 apple)", 10)
	if rs[0].Doc != 1 {
		t.Errorf("banana-weighted ranking = %+v", rs)
	}
	rs = search(t, e, "#weight(1 banana 9 apple)", 10)
	if rs[0].Doc != 0 {
		t.Errorf("apple-weighted ranking = %+v", rs)
	}
}

func TestTieBreakByDocID(t *testing.T) {
	e := buildEngine(t, "same text", "same text", "same text")
	rs := search(t, e, "same", 10)
	if len(rs) != 3 || rs[0].Doc != 0 || rs[1].Doc != 1 || rs[2].Doc != 2 {
		t.Errorf("tie break = %+v", rs)
	}
}

func TestTopKTruncation(t *testing.T) {
	e := buildEngine(t, "x a", "x b", "x c", "x d")
	if rs := search(t, e, "x", 2); len(rs) != 2 {
		t.Errorf("k=2 gave %d results", len(rs))
	}
	if rs := search(t, e, "x", 0); len(rs) != 4 {
		t.Errorf("k=0 should return all candidates, got %d", len(rs))
	}
	if rs := search(t, e, "x", -1); len(rs) != 4 {
		t.Errorf("k<0 should return all candidates, got %d", len(rs))
	}
}

func TestNoMatchesAndEmptyIndex(t *testing.T) {
	// Contract: every no-result path returns an empty, non-nil slice, so
	// len(rs) == 0 and range loops behave uniformly whether the query was
	// truncated to nothing or never matched at all.
	e := buildEngine(t, "alpha beta")
	if rs := search(t, e, "missingterm", 10); rs == nil || len(rs) != 0 {
		t.Errorf("no-match query = %#v, want empty non-nil slice", rs)
	}
	empty, err := NewEngine(index.New(), plain)
	if err != nil {
		t.Fatal(err)
	}
	node, err := empty.Parse("anything")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := empty.Search(node, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rs == nil || len(rs) != 0 {
		t.Errorf("empty index search = %#v, want empty non-nil slice", rs)
	}
	// Zero-length documents only: the index has docs but no tokens.
	zeroTok := index.New()
	zeroTok.AddDocument(nil)
	ze, err := NewEngine(zeroTok, plain)
	if err != nil {
		t.Fatal(err)
	}
	rs, err = ze.Search(Term{Text: "anything"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rs == nil || len(rs) != 0 {
		t.Errorf("zero-token search = %#v, want empty non-nil slice", rs)
	}
}

func TestSearchErrors(t *testing.T) {
	e := buildEngine(t, "a b")
	if _, err := e.Search(nil, 5); err == nil {
		t.Error("nil node should fail")
	}
	if _, err := e.Search(Combine{}, 5); err == nil {
		t.Error("empty combine should fail")
	}
	if _, err := e.Search(Phrase{}, 5); err == nil {
		t.Error("empty phrase should fail")
	}
	if _, err := e.Search(Weight{Children: []Node{Term{"a"}}, Weights: []float64{1, 2}}, 5); err == nil {
		t.Error("mismatched weights should fail")
	}
	if _, err := e.Search(Weight{Children: []Node{Term{"a"}}, Weights: []float64{0}}, 5); err == nil {
		t.Error("zero total weight should fail")
	}
	if _, err := e.Search(Weight{Children: []Node{Term{"a"}}, Weights: []float64{-1}}, 5); err == nil {
		t.Error("negative weight should fail")
	}
}

func TestParser(t *testing.T) {
	n, err := ParseQuery("#combine( #1(grand canal) gondola )", plain)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := n.(Combine)
	if !ok || len(c.Children) != 2 {
		t.Fatalf("parsed = %#v", n)
	}
	if _, ok := c.Children[0].(Phrase); !ok {
		t.Errorf("first child = %#v, want Phrase", c.Children[0])
	}
	if term, ok := c.Children[1].(Term); !ok || term.Text != "gondola" {
		t.Errorf("second child = %#v", c.Children[1])
	}
	// Bare multi-word query becomes a combine of terms.
	n, err = ParseQuery("gondola venice", plain)
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := n.(Combine); !ok || len(c.Children) != 2 {
		t.Fatalf("bare multiword = %#v", n)
	}
}

func TestParserWeight(t *testing.T) {
	n, err := ParseQuery("#weight(0.7 venice 0.3 #1(grand canal))", plain)
	if err != nil {
		t.Fatal(err)
	}
	w, ok := n.(Weight)
	if !ok || len(w.Children) != 2 || w.Weights[0] != 0.7 || w.Weights[1] != 0.3 {
		t.Fatalf("parsed = %#v", n)
	}
}

func TestParserErrors(t *testing.T) {
	for _, q := range []string{
		"",
		"#combine(",
		"#1(a",
		"#1(#combine(a))",
		"#weight(x venice)",
		"#weight(0.5)",
		"#weight(-1 venice)",
		"#unknown(a)",
		"#",
		"#combine)",
	} {
		if _, err := ParseQuery(q, plain); err == nil {
			t.Errorf("ParseQuery(%q) should fail", q)
		}
	}
}

func TestParserStopwordDrop(t *testing.T) {
	stopping := text.NewAnalyzer(true, false)
	n, err := ParseQuery("gondola in venice", stopping)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := n.(Combine)
	if !ok || len(c.Children) != 2 {
		t.Fatalf("stopword query = %#v, want 2 children", n)
	}
	// A query of only stopwords analyzes to nothing.
	if _, err := ParseQuery("the of in", stopping); err == nil {
		t.Error("stopword-only query should fail")
	}
}

func TestASTStringRoundTrip(t *testing.T) {
	for _, q := range []string{
		"#combine(venice gondola)",
		"#1(grand canal)",
		"#weight(0.5 venice 0.5 #1(grand canal))",
	} {
		n, err := ParseQuery(q, plain)
		if err != nil {
			t.Fatal(err)
		}
		n2, err := ParseQuery(n.String(), plain)
		if err != nil {
			t.Fatalf("re-parse %q: %v", n.String(), err)
		}
		if n.String() != n2.String() {
			t.Errorf("round trip: %q -> %q", n.String(), n2.String())
		}
	}
}

func TestBuildTitleQuery(t *testing.T) {
	n, ok := BuildTitleQuery("gondola in venice", []string{"Grand Canal (Venice)", "Bridge of Sighs"}, plain)
	if !ok {
		t.Fatal("BuildTitleQuery failed")
	}
	s := n.String()
	if !strings.Contains(s, "#1(grand canal venice)") || !strings.Contains(s, "#1(bridge of sighs)") {
		t.Errorf("query = %s", s)
	}
	if !strings.Contains(s, "gondola") {
		t.Errorf("keywords missing: %s", s)
	}
	if _, ok := BuildTitleQuery("", nil, plain); ok {
		t.Error("empty inputs should fail")
	}
	// Stopword-only title dropped, keywords retained.
	stopping := text.NewAnalyzer(true, false)
	n, ok = BuildTitleQuery("gondola", []string{"of the"}, stopping)
	if !ok || strings.Contains(n.String(), "#1") {
		t.Errorf("stopword title should be dropped: %v %v", n, ok)
	}
}

func TestIndexCollection(t *testing.T) {
	var c corpus.Collection
	if _, err := c.Add(corpus.Image{ID: "1", Name: "Gondola in Venice.jpg"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Add(corpus.Image{ID: "2", Name: "Florence Duomo.jpg"}); err != nil {
		t.Fatal(err)
	}
	ix := IndexCollection(&c, plain)
	if ix.NumDocs() != 2 {
		t.Fatalf("NumDocs = %d", ix.NumDocs())
	}
	if ix.DocFreq("gondola") != 1 || ix.DocFreq("duomo") != 1 {
		t.Error("collection terms missing")
	}
}

func TestDirichletScoreValue(t *testing.T) {
	// Hand-checked Dirichlet score: one doc "a b", query "a".
	ix := index.New()
	ix.AddDocument([]string{"a", "b"})
	e, err := NewEngine(ix, plain, WithMu(10))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := e.Search(Term{Text: "a"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// tf=1, pc = 1/2, dl=2, mu=10: log((1 + 10*0.5) / (2+10)) = log(6/12).
	want := math.Log(0.5)
	if math.Abs(rs[0].Score-want) > 1e-12 {
		t.Errorf("score = %g, want %g", rs[0].Score, want)
	}
}

func TestDocsHelper(t *testing.T) {
	got := Docs([]Result{{Doc: 3}, {Doc: 1}})
	if len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Errorf("Docs = %v", got)
	}
}
