package search

import "fmt"

// Source is one index of a logically concatenated collection: its engine
// plus the local→global doc-id translation. The live runtime searches two
// sources per request — the base snapshot and the in-memory delta segment
// (internal/live) — but the algorithm is the same scatter the sharded
// runtime runs over N partitions.
type Source struct {
	// Engine scores this source's slice of the collection.
	Engine *Engine
	// DocMap translates this source's dense local ids to global ids
	// (shard-style partitions). Nil means the identity shifted by Offset.
	DocMap []int32
	// Offset is added to local ids when DocMap is nil — the delta
	// segment's case, where local doc j is global baseDocs+j.
	Offset int32
}

// SearchSources evaluates a query across multiple sources as if their
// documents lived in one index: plan the flattened leaves against every
// source, sum each leaf's collection frequency (exact integer addition),
// score every source under the same merged statistics, translate doc
// ids, and merge by (score desc, global doc asc). Because a document's
// Dirichlet score depends only on its own term frequencies and lengths
// plus the merged collection statistics, the ranking is bit-identical to
// a cold rebuild holding the same documents — the same argument (and the
// same Plan/SearchPlan machinery) that makes the sharded runtime exact.
//
// totalTokens is the merged collection length (the sum of the sources'
// TotalTokens). k <= 0 ranks every candidate. A query with no matching
// documents returns an empty, non-nil slice.
func SearchSources(sources []Source, totalTokens int64, q Node, k int) ([]Result, error) {
	leaves, err := Flatten(q)
	if err != nil {
		return nil, err
	}
	return SearchSourcesLeaves(sources, totalTokens, leaves, k, nil)
}

// SearchSourcesLeaves is SearchSources on pre-flattened leaves, reusing
// dst's storage for the returned ranking (dst may be nil). Callers with
// a warm leaves cache (Engine.LeavesForQuery) use this form to skip the
// parse.
func SearchSourcesLeaves(sources []Source, totalTokens int64, leaves []Leaf, k int, dst []Result) ([]Result, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("search: no sources")
	}
	plans := make([]*Plan, len(sources))
	leafCF := make([]int64, len(leaves))
	for i := range sources {
		plans[i] = sources[i].Engine.PlanLeaves(leaves)
		for j := range leafCF {
			leafCF[j] += plans[i].LocalCF(j)
		}
	}
	stats := &Stats{TotalTokens: totalTokens, LeafCF: leafCF}
	locals := make([][]Result, len(sources))
	for i := range sources {
		rs, err := sources[i].Engine.SearchPlan(plans[i], k, stats)
		if err != nil {
			return nil, err
		}
		if dm := sources[i].DocMap; dm != nil {
			for j := range rs {
				rs[j].Doc = dm[rs[j].Doc]
			}
		} else if off := sources[i].Offset; off != 0 {
			for j := range rs {
				rs[j].Doc += off
			}
		}
		locals[i] = rs
	}
	return MergeRankedScratch(dst, locals, k, make([]int, len(locals))), nil
}

// MergeRanked merges per-source rankings — each ordered by (score desc,
// global doc asc), the engine's determinism contract — into the global
// top k. (score, doc) is a total order, so the merged prefix is exactly
// the single-index ranking; k <= 0 keeps every candidate.
func MergeRanked(locals [][]Result, k int) []Result {
	return MergeRankedScratch(nil, locals, k, make([]int, len(locals)))
}

// MergeRankedScratch is MergeRanked with caller-owned storage: the
// ranking is appended into dst (nil allocates fresh, and the result is
// always non-nil), and cursors is scratch of at least len(locals). The
// sharded runtime's hot path supplies both so a scatter merge allocates
// nothing.
func MergeRankedScratch(dst []Result, locals [][]Result, k int, cursors []int) []Result {
	total := 0
	for i, rs := range locals {
		total += len(rs)
		cursors[i] = 0
	}
	if k <= 0 || k > total {
		k = total
	}
	merged := dst
	if merged == nil {
		merged = make([]Result, 0, k)
	} else {
		merged = merged[:0]
	}
	for len(merged) < k {
		best := -1
		for s, rs := range locals {
			c := cursors[s]
			if c >= len(rs) {
				continue
			}
			if best < 0 {
				best = s
				continue
			}
			b := locals[best][cursors[best]]
			if rs[c].Score > b.Score || (rs[c].Score == b.Score && rs[c].Doc < b.Doc) {
				best = s
			}
		}
		merged = append(merged, locals[best][cursors[best]])
		cursors[best]++
	}
	return merged
}
