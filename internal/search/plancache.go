package search

import (
	"strings"
	"sync"
)

// The leaf cache memoizes LeavesForQuery: parsing and flattening raw query
// text is the only per-request work of the text search path that cannot
// reuse pooled storage, so serving traffic — which repeats query strings —
// would otherwise pay an AST's worth of garbage on every request. The
// cache is sharded like the expansion cache to keep lock contention off
// the hot path, and a hit costs a hash, one shard lock and two pointer
// swaps: no allocation.
//
// Entries are immutable once inserted: leaves are deep-copied on insert
// (slice, terms and strings), so a cached entry never aliases caller
// memory — in particular the reusable request buffers cmd/qserve parses
// query text out of.

// leafCacheShards must be a power of two (the hash is masked, not
// modulo'd).
const leafCacheShards = 16

// leafCacheCapacity bounds the total number of cached query strings
// across all shards; beyond it the least recently used entry of the
// insert's shard is evicted.
const leafCacheCapacity = 4096

// leafCacheMaxKey bounds the cached query length: pathological
// multi-kilobyte queries flow through uncached rather than evicting the
// working set.
const leafCacheMaxKey = 1024

type leafEntry struct {
	key        string
	leaves     []Leaf
	prev, next *leafEntry
}

type leafShard struct {
	mu      sync.Mutex
	entries map[string]*leafEntry
	// head is the most recently used entry, tail the eviction candidate.
	head, tail *leafEntry
}

type leafCache struct {
	shards [leafCacheShards]leafShard
}

// fnv1a hashes the query to a shard without allocating.
func fnv1a(s string) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime
	}
	return h
}

func (c *leafCache) shard(query string) *leafShard {
	return &c.shards[fnv1a(query)&(leafCacheShards-1)]
}

// get returns the cached leaves for query, refreshing its recency.
func (c *leafCache) get(query string) ([]Leaf, bool) {
	if len(query) > leafCacheMaxKey {
		return nil, false
	}
	s := c.shard(query)
	s.mu.Lock()
	e, ok := s.entries[query]
	if ok {
		s.moveToFront(e)
	}
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	return e.leaves, true
}

// put inserts a deep copy of leaves under a cloned key, evicting the
// shard's least recently used entry at capacity. Concurrent duplicate
// inserts keep the first entry.
func (c *leafCache) put(query string, leaves []Leaf) {
	if len(query) > leafCacheMaxKey {
		return
	}
	e := &leafEntry{key: strings.Clone(query), leaves: cloneLeaves(leaves)}
	s := c.shard(query)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.entries == nil {
		s.entries = make(map[string]*leafEntry)
	}
	if _, dup := s.entries[e.key]; dup {
		return
	}
	if len(s.entries) >= leafCacheCapacity/leafCacheShards {
		s.evictTail()
	}
	s.entries[e.key] = e
	s.pushFront(e)
}

// cloneLeaves deep-copies leaves so the cache shares no memory with the
// query they were flattened from.
func cloneLeaves(leaves []Leaf) []Leaf {
	out := make([]Leaf, len(leaves))
	for i, lf := range leaves {
		terms := make([]string, len(lf.Terms))
		for j, t := range lf.Terms {
			terms[j] = strings.Clone(t)
		}
		out[i] = Leaf{Terms: terms, Weight: lf.Weight}
	}
	return out
}

func (s *leafShard) pushFront(e *leafEntry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *leafShard) unlink(e *leafEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *leafShard) moveToFront(e *leafEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

func (s *leafShard) evictTail() {
	e := s.tail
	if e == nil {
		return
	}
	s.unlink(e)
	delete(s.entries, e.key)
}
