package search

import (
	"fmt"
	"sync"
	"testing"
)

// TestSearchTextMatchesSearch proves the cached text path returns exactly
// what parse+Search does, on cold and warm cache, with and without a
// caller-provided dst.
func TestSearchTextMatchesSearch(t *testing.T) {
	e := buildEngine(t,
		"venice grand canal gondola",
		"venice carnival mask",
		"rome colosseum forum",
		"canal water transport venice",
	)
	queries := []string{
		"venice",
		"venice canal",
		"#combine(venice canal)",
		"#weight(2 venice 1 canal)",
		"#1(grand canal)",
		"missingterm",
	}
	var dst []Result
	for round := 0; round < 3; round++ { // round 0 cold, later rounds warm
		for _, q := range queries {
			want := search(t, e, q, 3)
			got, err := e.SearchText(q, 3, nil)
			if err != nil {
				t.Fatalf("SearchText(%q): %v", q, err)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("round %d SearchText(%q) = %v, want %v", round, q, got, want)
			}
			if got == nil {
				t.Fatalf("SearchText(%q) returned nil slice", q)
			}
			dst, err = e.SearchText(q, 3, dst)
			if err != nil {
				t.Fatalf("SearchText(%q, dst): %v", q, err)
			}
			if fmt.Sprint(dst) != fmt.Sprint(want) {
				t.Fatalf("round %d SearchText(%q, dst) = %v, want %v", round, q, dst, want)
			}
		}
	}
}

func TestSearchTextParseErrorsNotCached(t *testing.T) {
	e := buildEngine(t, "venice canal")
	for i := 0; i < 2; i++ {
		if _, err := e.SearchText("#combine(", 3, nil); err == nil {
			t.Fatal("expected parse error")
		}
	}
	if _, ok := e.leaves.get("#combine("); ok {
		t.Fatal("parse error was cached")
	}
}

func TestLeafCacheEvictsLRU(t *testing.T) {
	var c leafCache
	perShard := leafCacheCapacity / leafCacheShards
	// Find enough distinct keys landing in one shard to overflow it.
	target := c.shard("probe")
	var keys []string
	for i := 0; len(keys) < perShard+1; i++ {
		k := fmt.Sprintf("query %d", i)
		if c.shard(k) == target {
			keys = append(keys, k)
		}
	}
	for _, k := range keys[:perShard] {
		c.put(k, []Leaf{{Terms: []string{k}, Weight: 1}})
	}
	// Refresh the oldest entry, then overflow: the second-oldest must go.
	if _, ok := c.get(keys[0]); !ok {
		t.Fatal("freshly inserted key missing")
	}
	c.put(keys[perShard], []Leaf{{Terms: []string{"new"}, Weight: 1}})
	if _, ok := c.get(keys[0]); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, ok := c.get(keys[1]); ok {
		t.Fatal("least recently used entry survived eviction")
	}
	if _, ok := c.get(keys[perShard]); !ok {
		t.Fatal("new entry missing after eviction")
	}
}

func TestLeafCacheSkipsOversizedKeys(t *testing.T) {
	var c leafCache
	big := make([]byte, leafCacheMaxKey+1)
	for i := range big {
		big[i] = 'a'
	}
	c.put(string(big), []Leaf{{Terms: []string{"a"}, Weight: 1}})
	if _, ok := c.get(string(big)); ok {
		t.Fatal("oversized key was cached")
	}
}

// TestLeafCacheClones proves cached leaves share no memory with the
// insert's arguments: mutating the caller's slices after put must not be
// visible through get.
func TestLeafCacheClones(t *testing.T) {
	var c leafCache
	terms := []string{"venice"}
	leaves := []Leaf{{Terms: terms, Weight: 1}}
	c.put("q", leaves)
	terms[0] = "mutated"
	leaves[0].Weight = 99
	got, ok := c.get("q")
	if !ok {
		t.Fatal("entry missing")
	}
	if got[0].Terms[0] != "venice" || got[0].Weight != 1 {
		t.Fatalf("cached leaves alias caller memory: %+v", got[0])
	}
}

func TestSearchTextConcurrent(t *testing.T) {
	e := buildEngine(t,
		"venice grand canal gondola",
		"venice carnival mask",
		"rome colosseum forum",
	)
	want := fmt.Sprint(search(t, e, "venice canal", 2))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var dst []Result
			for i := 0; i < 200; i++ {
				var err error
				dst, err = e.SearchText("venice canal", 2, dst)
				if err != nil {
					t.Error(err)
					return
				}
				if fmt.Sprint(dst) != want {
					t.Errorf("got %v, want %s", dst, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}
