package search

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/querygraph/querygraph/internal/index"
	"github.com/querygraph/querygraph/internal/text"
)

// buildTokenEngine indexes the token docs and wraps them in an engine.
func buildTokenEngine(t *testing.T, docs [][]string) *Engine {
	t.Helper()
	ix := index.New()
	for _, d := range docs {
		ix.AddDocument(d)
	}
	e, err := NewEngine(ix, text.NewAnalyzer(false, false))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestSearchSourcesMatchesMonolith pins the live-index scoring rule: a
// base+delta split scored under merged collection statistics ranks
// bit-identically (same docs, same float scores) to one index holding
// every document.
func TestSearchSourcesMatchesMonolith(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vocab := []string{"motif", "graph", "query", "expansion", "cycle", "hub"}
	queries := []string{
		"motif graph",
		"#combine(motif #1(graph query))",
		"#weight(2 cycle 1 #1(motif graph) 3 hub)",
		"expansion",
	}
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(30)
		docs := make([][]string, n)
		for i := range docs {
			ln := rng.Intn(10)
			for j := 0; j < ln; j++ {
				docs[i] = append(docs[i], vocab[rng.Intn(len(vocab))])
			}
		}
		cut := rng.Intn(n + 1)
		mono := buildTokenEngine(t, docs)
		base := buildTokenEngine(t, docs[:cut])
		delta := buildTokenEngine(t, docs[cut:])
		sources := []Source{
			{Engine: base},
			{Engine: delta, Offset: int32(cut)},
		}
		total := base.Index().TotalTokens() + delta.Index().TotalTokens()
		for _, q := range queries {
			for _, k := range []int{0, 1, 3, 1000} {
				node, err := mono.Parse(q)
				if err != nil {
					t.Fatal(err)
				}
				want, err := mono.Search(node, k)
				if err != nil {
					t.Fatal(err)
				}
				got, err := SearchSources(sources, total, node, k)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("trial %d cut %d query %q k %d:\nmono  %v\nsplit %v",
						trial, cut, q, k, want, got)
				}
			}
		}
	}
}

// TestSearchSourcesDocMap checks the shard-style translation (explicit
// DocMap) alongside the delta-style Offset on the same scatter.
func TestSearchSourcesDocMap(t *testing.T) {
	docs := [][]string{
		{"motif", "graph"},
		{"graph", "cycle"},
		{"motif", "hub", "motif"},
		{"query"},
	}
	mono := buildTokenEngine(t, docs)
	// Shard-style: even docs in source 0, odd docs in source 1.
	a := buildTokenEngine(t, [][]string{docs[0], docs[2]})
	b := buildTokenEngine(t, [][]string{docs[1], docs[3]})
	sources := []Source{
		{Engine: a, DocMap: []int32{0, 2}},
		{Engine: b, DocMap: []int32{1, 3}},
	}
	node, err := mono.Parse("#combine(motif graph)")
	if err != nil {
		t.Fatal(err)
	}
	want, err := mono.Search(node, 10)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SearchSources(sources, mono.Index().TotalTokens(), node, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("docmap scatter:\nmono  %v\nsplit %v", want, got)
	}
}

// TestSearchSourcesEmpty pins the empty contracts: a no-match query
// returns an empty non-nil slice, and zero sources is an error.
func TestSearchSourcesEmpty(t *testing.T) {
	base := buildTokenEngine(t, [][]string{{"motif"}})
	delta := buildTokenEngine(t, nil)
	node, err := base.Parse("absentterm")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := SearchSources([]Source{{Engine: base}, {Engine: delta, Offset: 1}},
		base.Index().TotalTokens(), node, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rs == nil || len(rs) != 0 {
		t.Fatalf("no-match ranking: want empty non-nil, got %#v", rs)
	}
	if _, err := SearchSources(nil, 0, node, 5); err == nil {
		t.Fatal("zero sources: want error")
	}
}
