package report

import (
	"context"
	"strings"
	"sync"
	"testing"

	"github.com/querygraph/querygraph/internal/core"
	"github.com/querygraph/querygraph/internal/groundtruth"
	"github.com/querygraph/querygraph/internal/synth"
)

var (
	once     sync.Once
	analysis *core.Analysis
	ablation []core.AblationRow
)

func setup(t *testing.T) (*core.Analysis, []core.AblationRow) {
	t.Helper()
	once.Do(func() {
		cfg := synth.Default()
		cfg.Topics = 6
		cfg.ArticlesPerTopic = 12
		cfg.DocsPerTopic = 15
		cfg.Queries = 8
		w, err := synth.Generate(cfg)
		if err != nil {
			panic(err)
		}
		s, err := core.FromWorld(w)
		if err != nil {
			panic(err)
		}
		qs := core.QueriesFromWorld(w)
		gts, err := s.BuildAllGroundTruths(context.Background(), qs, core.GroundTruthConfig{
			Search: groundtruth.Config{Seed: 1, MaxIterations: 8, MaxEvaluations: 800},
		})
		if err != nil {
			panic(err)
		}
		analysis, err = s.Analyze(context.Background(), gts, core.AnalysisConfig{})
		if err != nil {
			panic(err)
		}
		ablation, err = s.CompareExpanders(context.Background(), qs, core.AblationConfig{MaxFeatures: 5})
		if err != nil {
			panic(err)
		}
	})
	return analysis, ablation
}

func TestRenderersContainPaperReferences(t *testing.T) {
	a, ab := setup(t)
	cases := map[string]struct {
		out      string
		contains []string
	}{
		"Table2": {Table2(a), []string{"Table 2", "top-1", "top-15", "0.65"}},
		"Table3": {Table3(a), []string{"Table 3", "%categories", "expansion ratio", "0.783"}},
		"Table4": {Table4(a), []string{"Table 4", "2 & 3 & 4 & 5", "0.944"}},
		"Fig5":   {Fig5(a), []string{"Figure 5", "50.53"}},
		"Fig6":   {Fig6(a), []string{"Figure 6", "136.84"}},
		"Fig7a":  {Fig7a(a), []string{"Figure 7a", "0.366", "trend slope"}},
		"Fig7b":  {Fig7b(a), []string{"Figure 7b", "0.380"}},
		"Fig9":   {Fig9(a), []string{"Figure 9", "trend"}},
		"Text3":  {Text3(a), []string{"0.1147", "208.22"}},
		"Ablation": {Ablation(ab), []string{"baseline (no expansion)", "dense cycles (paper)",
			"naive 1-hop links", "cycles, filters off"}},
	}
	for name, c := range cases {
		for _, want := range c.contains {
			if !strings.Contains(c.out, want) {
				t.Errorf("%s output missing %q:\n%s", name, want, c.out)
			}
		}
	}
}

func TestAllIncludesEverySection(t *testing.T) {
	a, ab := setup(t)
	out := All(a, ab)
	for _, section := range []string{
		"Table 2", "Table 3", "Table 4", "Figure 5", "Figure 6",
		"Figure 7a", "Figure 7b", "Figure 9", "Section 3", "Ablation",
	} {
		if !strings.Contains(out, section) {
			t.Errorf("All() missing section %q", section)
		}
	}
	// Without ablation rows the section is omitted.
	out = All(a, nil)
	if strings.Contains(out, "Ablation") {
		t.Error("All(a, nil) should omit the ablation section")
	}
}

func TestTablesAreWellFormedMarkdown(t *testing.T) {
	a, ab := setup(t)
	for _, out := range []string{Table2(a), Table3(a), Table4(a), Fig5(a), Fig6(a), Fig7a(a), Fig7b(a), Fig9(a), Text3(a), Ablation(ab)} {
		var header, separator bool
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "|") {
				if !header {
					header = true
					continue
				}
				if !separator {
					if !strings.HasPrefix(line, "|-") {
						t.Errorf("second table row is not a separator: %q", line)
					}
					separator = true
				}
			}
		}
		if !header || !separator {
			t.Errorf("output lacks a markdown table:\n%s", out)
		}
	}
}
