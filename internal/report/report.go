// Package report renders the reproduction's experiment results as
// paper-style tables, side by side with the values the paper reports.
// Both cmd/qbench and EXPERIMENTS.md are generated from these renderers.
package report

import (
	"fmt"
	"sort"
	"strings"

	"github.com/querygraph/querygraph/internal/core"
	"github.com/querygraph/querygraph/internal/eval"
	"github.com/querygraph/querygraph/internal/stats"
)

// Paper reference values, transcribed from the publication.
var (
	// PaperTable2 maps rank -> {min, q1, median, q3, max}.
	PaperTable2 = map[int][5]float64{
		1:  {0, 1, 1, 1, 1},
		5:  {0, 1, 1, 1, 1},
		10: {0.2, 0.6, 0.9, 1, 1},
		15: {0.2, 0.65, 0.8, 0.85, 1},
	}
	// PaperTable3 rows in order: %size, %query nodes, %articles,
	// %categories, expansion ratio.
	PaperTable3 = map[string][5]float64{
		"%size":           {0.164, 0.477, 0.587, 0.688, 1},
		"%query nodes":    {0, 1, 1, 1, 1},
		"%articles":       {0.025, 0.148, 0.217, 0.269, 0.5},
		"%categories":     {0.5, 0.731, 0.783, 0.852, 0.975},
		"expansion ratio": {0, 2.125, 4.5, 23.750, 176},
	}
	// PaperTable4 maps config label -> P@{1,5,10,15}.
	PaperTable4 = map[string][4]float64{
		"2":             {0.826, 0.539, 0.539, 0.552},
		"3":             {0.833, 0.578, 0.519, 0.513},
		"4":             {0.703, 0.589, 0.541, 0.494},
		"5":             {0.788, 0.624, 0.588, 0.547},
		"2 & 3":         {0.944, 0.656, 0.583, 0.621},
		"2 & 3 & 4":     {0.944, 0.667, 0.594, 0.629},
		"2 & 3 & 4 & 5": {0.944, 0.667, 0.622, 0.658},
	}
	// PaperFig5 maps cycle length -> average contribution (%).
	PaperFig5 = map[int]float64{2: 50.53, 3: 24.38, 4: 32.74, 5: 32.31}
	// PaperFig6 maps cycle length -> average number of cycles.
	PaperFig6 = map[int]float64{2: 1.56, 3: 9.1, 4: 35.22, 5: 136.84}
	// PaperFig7a maps cycle length -> average category ratio.
	PaperFig7a = map[int]float64{3: 0.366, 4: 0.375, 5: 0.382}
	// PaperFig7b maps cycle length -> average density of extra edges.
	PaperFig7b = map[int]float64{3: 0.289, 4: 0.38, 5: 0.333}
	// PaperTPR and PaperReciprocal are the Section 3 text facts.
	PaperTPR            = 0.3
	PaperReciprocal     = 0.1147
	PaperQueryGraphSize = 208.22
)

// Table2 renders the ground-truth precision statistics.
func Table2(a *core.Analysis) string {
	var b strings.Builder
	b.WriteString("## Table 2 — precision of the ground truth X(q)\n\n")
	b.WriteString("| top-r | min | 25% | 50% | 75% | max | paper (min/25/50/75/max) |\n")
	b.WriteString("|-------|-----|-----|-----|-----|-----|--------------------------|\n")
	for _, r := range eval.DefaultRanks {
		s := a.Table2[r]
		p := PaperTable2[r]
		fmt.Fprintf(&b, "| top-%d | %.3f | %.3f | %.3f | %.3f | %.3f | %g / %g / %g / %g / %g |\n",
			r, s.Min, s.Q1, s.Median, s.Q3, s.Max, p[0], p[1], p[2], p[3], p[4])
	}
	return b.String()
}

func summaryRow(b *strings.Builder, label string, s stats.Summary, paper [5]float64) {
	fmt.Fprintf(b, "| %s | %.3f | %.3f | %.3f | %.3f | %.3f | %g / %g / %g / %g / %g |\n",
		label, s.Min, s.Q1, s.Median, s.Q3, s.Max,
		paper[0], paper[1], paper[2], paper[3], paper[4])
}

// Table3 renders the largest-connected-component statistics.
func Table3(a *core.Analysis) string {
	var b strings.Builder
	b.WriteString("## Table 3 — largest connected component of the query graphs\n\n")
	b.WriteString("| metric | min | 25% | 50% | 75% | max | paper (min/25/50/75/max) |\n")
	b.WriteString("|--------|-----|-----|-----|-----|-----|--------------------------|\n")
	summaryRow(&b, "%size", a.Table3.RelSize, PaperTable3["%size"])
	summaryRow(&b, "%query nodes", a.Table3.QueryNodeFrac, PaperTable3["%query nodes"])
	summaryRow(&b, "%articles", a.Table3.ArticleFrac, PaperTable3["%articles"])
	summaryRow(&b, "%categories", a.Table3.CategoryFrac, PaperTable3["%categories"])
	summaryRow(&b, "expansion ratio", a.Table3.ExpansionRatio, PaperTable3["expansion ratio"])
	return b.String()
}

// Table4 renders the cycle-length configuration precisions.
func Table4(a *core.Analysis) string {
	var b strings.Builder
	b.WriteString("## Table 4 — precision by cycle-length configuration\n\n")
	b.WriteString("| cycle lengths | P@1 | P@5 | P@10 | P@15 | paper (P@1/5/10/15) |\n")
	b.WriteString("|---------------|-----|-----|------|------|---------------------|\n")
	for _, row := range a.Table4 {
		p := PaperTable4[row.Config.Label]
		fmt.Fprintf(&b, "| %s | %.3f | %.3f | %.3f | %.3f | %.3f / %.3f / %.3f / %.3f |\n",
			row.Config.Label,
			row.PrecisionAt[1], row.PrecisionAt[5], row.PrecisionAt[10], row.PrecisionAt[15],
			p[0], p[1], p[2], p[3])
	}
	return b.String()
}

func lengthTable(title, valueCol string, measured map[int]float64, paper map[int]float64, format string) string {
	var b strings.Builder
	b.WriteString(title + "\n\n")
	fmt.Fprintf(&b, "| cycle length | %s | paper |\n", valueCol)
	b.WriteString("|--------------|----------|-------|\n")
	lengths := make([]int, 0, len(measured))
	for l := range measured {
		lengths = append(lengths, l)
	}
	sort.Ints(lengths)
	for _, l := range lengths {
		fmt.Fprintf(&b, "| %d | "+format+" | "+format+" |\n", l, measured[l], paper[l])
	}
	return b.String()
}

// Fig5 renders average contribution by cycle length.
func Fig5(a *core.Analysis) string {
	return lengthTable("## Figure 5 — average contribution vs. cycle length (%)",
		"contribution (%)", a.Fig5, PaperFig5, "%.2f")
}

// Fig6 renders average cycle counts by length.
func Fig6(a *core.Analysis) string {
	return lengthTable("## Figure 6 — average number of cycles vs. cycle length",
		"avg cycles/query", a.Fig6, PaperFig6, "%.2f")
}

// Fig7a renders category ratio by cycle length.
func Fig7a(a *core.Analysis) string {
	out := lengthTable("## Figure 7a — average category ratio vs. cycle length",
		"category ratio", a.Fig7a, PaperFig7a, "%.3f")
	return out + fmt.Sprintf("\ntrend slope: %.4f (paper: \"almost 0\")\n", a.Fig7aTrend.Slope)
}

// Fig7b renders extra-edge density by cycle length.
func Fig7b(a *core.Analysis) string {
	return lengthTable("## Figure 7b — average density of extra edges vs. cycle length",
		"density", a.Fig7b, PaperFig7b, "%.3f")
}

// Fig9 renders the binned density-vs-contribution scatter and trend.
func Fig9(a *core.Analysis) string {
	var b strings.Builder
	b.WriteString("## Figure 9 — density of extra edges vs. average contribution\n\n")
	b.WriteString("| density bin | mean contribution (%) | cycles |\n")
	b.WriteString("|------------|------------------------|--------|\n")
	for _, bin := range a.Fig9 {
		fmt.Fprintf(&b, "| %.2f | %.2f | %d |\n", bin.X, bin.Mean, bin.N)
	}
	fmt.Fprintf(&b, "\ntrend: slope %.2f, r %.3f (paper: positive trend — \"the denser the cycle, the better its contribution\")\n",
		a.Fig9Trend.Slope, a.Fig9Trend.R)
	return b.String()
}

// Text3 renders the standalone Section 3 facts.
func Text3(a *core.Analysis) string {
	var b strings.Builder
	b.WriteString("## Section 3 text facts\n\n")
	b.WriteString("| fact | measured | paper |\n|------|----------|-------|\n")
	fmt.Fprintf(&b, "| mean TPR of largest component | %.3f | ≈ %.1f |\n", a.Text.MeanTPR, PaperTPR)
	fmt.Fprintf(&b, "| reciprocal linked-pair ratio | %.4f | %.4f |\n", a.Text.ReciprocalLinkRatio, PaperReciprocal)
	fmt.Fprintf(&b, "| mean query-graph size (nodes) | %.2f | %.2f (full Wikipedia scale) |\n", a.Text.MeanQueryGraphSize, PaperQueryGraphSize)
	fmt.Fprintf(&b, "| mean connected components | %.2f | \"disconnected, one moderately large\" |\n", a.Text.MeanComponents)
	fmt.Fprintf(&b, "| max query→feature distance | %d | up to 3 |\n", a.Text.MaxExpansionDistance)
	return b.String()
}

// Ablation renders the expander comparison.
func Ablation(rows []core.AblationRow) string {
	var b strings.Builder
	b.WriteString("## Ablation — online expansion strategies (Section 4 future work)\n\n")
	b.WriteString("| strategy | mean O | P@1 | P@5 | P@10 | P@15 | mean features |\n")
	b.WriteString("|----------|--------|-----|-----|------|------|---------------|\n")
	for _, row := range rows {
		fmt.Fprintf(&b, "| %s | %.3f | %.3f | %.3f | %.3f | %.3f | %.1f |\n",
			row.Label, row.MeanO,
			row.PrecisionAt[1], row.PrecisionAt[5], row.PrecisionAt[10], row.PrecisionAt[15],
			row.MeanFeatures)
	}
	return b.String()
}

// All renders every experiment in paper order.
func All(a *core.Analysis, ablation []core.AblationRow) string {
	sections := []string{
		Table2(a), Table3(a), Table4(a),
		Fig5(a), Fig6(a), Fig7a(a), Fig7b(a), Fig9(a), Text3(a),
	}
	if ablation != nil {
		sections = append(sections, Ablation(ablation))
	}
	return strings.Join(sections, "\n")
}
