package corpus

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
)

// DocID is a dense document identifier within a Collection, starting at 0.
type DocID int

// Document is an image record registered in a collection, with its dense ID
// and the pre-extracted relevant text.
type Document struct {
	ID    DocID
	Image Image
	// Text is the linkable text per the paper's Figure 2 extraction,
	// computed once at registration.
	Text string
}

// Collection is an in-memory document collection with dense IDs. The zero
// value is empty and ready for use. Collections are not safe for concurrent
// mutation; once populated they are safe for concurrent reads.
type Collection struct {
	docs  []Document
	byExt map[string]DocID
}

// Add registers an image and returns its dense ID. External IDs must be
// unique when present.
func (c *Collection) Add(im Image) (DocID, error) {
	if c.byExt == nil {
		c.byExt = make(map[string]DocID)
	}
	if im.ID != "" {
		if prev, ok := c.byExt[im.ID]; ok {
			return 0, fmt.Errorf("corpus: duplicate external id %q (doc %d)", im.ID, prev)
		}
	}
	id := DocID(len(c.docs))
	c.docs = append(c.docs, Document{ID: id, Image: im, Text: im.RelevantText()})
	if im.ID != "" {
		c.byExt[im.ID] = id
	}
	return id, nil
}

// LoadCollection reassembles a collection from decoded documents, keeping
// their stored relevant text instead of re-running the Figure 2 extraction.
// This is the decode path of the binary snapshot subsystem (internal/store).
// Documents must carry the dense IDs they were saved with, i.e. their slice
// positions; the slice is owned by the collection afterwards.
func LoadCollection(docs []Document) (*Collection, error) {
	c := &Collection{docs: docs, byExt: make(map[string]DocID, len(docs))}
	for i, d := range docs {
		if d.ID != DocID(i) {
			return nil, fmt.Errorf("corpus: load: document at position %d carries id %d", i, d.ID)
		}
		if d.Image.ID != "" {
			if prev, ok := c.byExt[d.Image.ID]; ok {
				return nil, fmt.Errorf("corpus: load: duplicate external id %q (doc %d)", d.Image.ID, prev)
			}
			c.byExt[d.Image.ID] = d.ID
		}
	}
	return c, nil
}

// Len returns the number of documents.
func (c *Collection) Len() int { return len(c.docs) }

// Doc returns the document with dense ID id.
func (c *Collection) Doc(id DocID) (Document, error) {
	if id < 0 || int(id) >= len(c.docs) {
		return Document{}, fmt.Errorf("corpus: unknown document %d", id)
	}
	return c.docs[id], nil
}

// ByExternalID resolves an ImageCLEF id attribute to the dense ID.
func (c *Collection) ByExternalID(ext string) (DocID, bool) {
	id, ok := c.byExt[ext]
	return id, ok
}

// Docs returns the underlying document slice. It is owned by the collection
// and must not be modified.
func (c *Collection) Docs() []Document { return c.docs }

// EncodeImage renders one image record as indented XML, matching the
// ImageCLEF file layout.
func EncodeImage(w io.Writer, im Image) error {
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	start := xml.StartElement{Name: xml.Name{Local: "image"}}
	if err := enc.EncodeElement(wrapImage(im), start); err != nil {
		return fmt.Errorf("corpus: encode image %q: %w", im.ID, err)
	}
	if err := enc.Flush(); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// wrapImage exists because Image has no XMLName field (it is reused for
// decode where the element name varies in tests); EncodeElement supplies it.
func wrapImage(im Image) any { return im }

// DecodeImages reads a stream of <image> elements (one or many, optionally
// wrapped in arbitrary container elements) and returns them in document
// order. It tolerates surrounding whitespace, processing instructions and
// comments, mirroring how ImageCLEF ships one XML file per image but
// evaluation scripts concatenate them.
func DecodeImages(r io.Reader) ([]Image, error) {
	dec := xml.NewDecoder(r)
	var out []Image
	for {
		tok, err := dec.Token()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, fmt.Errorf("corpus: decode: %w", err)
		}
		start, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		if start.Name.Local != "image" {
			continue // descend into containers
		}
		var im Image
		if err := dec.DecodeElement(&im, &start); err != nil {
			return out, fmt.Errorf("corpus: decode image: %w", err)
		}
		out = append(out, im)
	}
}

// ReadCollection decodes every image from r into a fresh collection.
func ReadCollection(r io.Reader) (*Collection, error) {
	imgs, err := DecodeImages(r)
	if err != nil {
		return nil, err
	}
	c := &Collection{}
	for _, im := range imgs {
		if _, err := c.Add(im); err != nil {
			return nil, err
		}
	}
	return c, nil
}
