package corpus

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

// figure2XML mirrors the paper's Figure 2 example document.
const figure2XML = `<?xml version="1.0" encoding="UTF-8" ?>
<image id="82531" file="images/9/82531.jpg">
  <name>Field Hamois Belgium Luc Viatour.jpg</name>
  <text xml:lang="en">
    <description>Summer field in Belgium (Hamois). The blue flower is Centaurea cyanus.</description>
    <comment />
    <caption article="text/en/1/302887">Summer field in Belgium (Hamois).</caption>
    <caption article="text/en/1/303807">A field in summer.</caption>
  </text>
  <text xml:lang="de">
    <description>Ein Feld in Belgien.</description>
    <comment />
    <caption article="text/de/1/404730">Ein Feld im Sommer</caption>
  </text>
  <comment>({{Information |Description= Flowers in Belgium |Source= Flickr |Date= 1/1/85 |Author= JA |Permission= GFDL |other_versions= }})</comment>
  <license>GFDL</license>
</image>`

func decodeFigure2(t *testing.T) Image {
	t.Helper()
	imgs, err := DecodeImages(strings.NewReader(figure2XML))
	if err != nil {
		t.Fatal(err)
	}
	if len(imgs) != 1 {
		t.Fatalf("decoded %d images, want 1", len(imgs))
	}
	return imgs[0]
}

func TestDecodeFigure2(t *testing.T) {
	im := decodeFigure2(t)
	if im.ID != "82531" || im.File != "images/9/82531.jpg" {
		t.Errorf("attrs = %q %q", im.ID, im.File)
	}
	if im.Name != "Field Hamois Belgium Luc Viatour.jpg" {
		t.Errorf("name = %q", im.Name)
	}
	if len(im.Texts) != 2 {
		t.Fatalf("texts = %d, want 2", len(im.Texts))
	}
	en, ok := im.EnglishText()
	if !ok {
		t.Fatal("no English section found")
	}
	if !strings.Contains(en.Description, "Centaurea cyanus") {
		t.Errorf("description = %q", en.Description)
	}
	if len(en.Captions) != 2 || en.Captions[0].Article != "text/en/1/302887" {
		t.Errorf("captions = %+v", en.Captions)
	}
	if im.License != "GFDL" {
		t.Errorf("license = %q", im.License)
	}
}

func TestEnglishTextMissing(t *testing.T) {
	im := Image{Texts: []Text{{Lang: "de"}}}
	if _, ok := im.EnglishText(); ok {
		t.Error("EnglishText should fail when absent")
	}
	im2 := Image{Texts: []Text{{Lang: "EN", Description: "x"}}}
	if _, ok := im2.EnglishText(); !ok {
		t.Error("EnglishText should match case-insensitively")
	}
}

func TestRelevantTextFigure2(t *testing.T) {
	im := decodeFigure2(t)
	txt := im.RelevantText()
	// 1: file name without extension.
	if !strings.Contains(txt, "Field Hamois Belgium Luc Viatour") {
		t.Errorf("missing name part: %q", txt)
	}
	if strings.Contains(txt, ".jpg") {
		t.Errorf("extension not stripped: %q", txt)
	}
	// 2: English section only.
	if !strings.Contains(txt, "Centaurea cyanus") || !strings.Contains(txt, "A field in summer") {
		t.Errorf("missing English content: %q", txt)
	}
	if strings.Contains(txt, "Ein Feld") {
		t.Errorf("German content leaked: %q", txt)
	}
	// 3: Description field of the general comment.
	if !strings.Contains(txt, "Flowers in Belgium") {
		t.Errorf("missing template description: %q", txt)
	}
	if strings.Contains(txt, "Flickr") || strings.Contains(txt, "GFDL") {
		t.Errorf("non-description template fields leaked: %q", txt)
	}
}

func TestRelevantTextEmptyImage(t *testing.T) {
	var im Image
	if got := im.RelevantText(); got != "" {
		t.Errorf("empty image relevant text = %q", got)
	}
}

func TestTemplateField(t *testing.T) {
	cases := []struct{ comment, field, want string }{
		{"({{Information |Description= Flowers |Source= F }})", "Description", "Flowers"},
		{"{{Information|Description=No spaces|Source=X}}", "Description", "No spaces"},
		{"{{Information|description = lower key |Source=X}}", "Description", "lower key"},
		{"{{Information|Source=X}}", "Description", ""},
		{"", "Description", ""},
		{"{{Information|Description=At end}}", "Description", "At end"},
		{"|DescriptionX= wrong |Description= right |", "Description", "right"},
	}
	for _, c := range cases {
		if got := TemplateField(c.comment, c.field); got != c.want {
			t.Errorf("TemplateField(%q) = %q, want %q", c.comment, got, c.want)
		}
	}
}

func TestCollectionAddAndLookup(t *testing.T) {
	var c Collection
	id0, err := c.Add(Image{ID: "a", Name: "x.jpg"})
	if err != nil {
		t.Fatal(err)
	}
	id1, err := c.Add(Image{ID: "b", Name: "y.jpg"})
	if err != nil {
		t.Fatal(err)
	}
	if id0 != 0 || id1 != 1 || c.Len() != 2 {
		t.Errorf("ids = %d,%d len=%d", id0, id1, c.Len())
	}
	if _, err := c.Add(Image{ID: "a"}); err == nil {
		t.Error("duplicate external id should fail")
	}
	doc, err := c.Doc(id1)
	if err != nil || doc.Image.ID != "b" {
		t.Errorf("Doc(1) = %+v, %v", doc, err)
	}
	if _, err := c.Doc(99); err == nil {
		t.Error("unknown doc should fail")
	}
	if _, err := c.Doc(-1); err == nil {
		t.Error("negative doc should fail")
	}
	got, ok := c.ByExternalID("b")
	if !ok || got != id1 {
		t.Errorf("ByExternalID = %d,%v", got, ok)
	}
	if _, ok := c.ByExternalID("zzz"); ok {
		t.Error("unknown external id should miss")
	}
	if len(c.Docs()) != 2 {
		t.Error("Docs() length wrong")
	}
}

func TestCollectionPrecomputesText(t *testing.T) {
	var c Collection
	id, err := c.Add(Image{Name: "Gondola in Venice.jpg"})
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := c.Doc(id)
	if doc.Text != "Gondola in Venice" {
		t.Errorf("precomputed text = %q", doc.Text)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	im := decodeFigure2(t)
	var buf bytes.Buffer
	if err := EncodeImage(&buf, im); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeImages(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 {
		t.Fatalf("round trip count = %d", len(back))
	}
	if back[0].ID != im.ID || back[0].Name != im.Name || len(back[0].Texts) != len(im.Texts) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", im, back[0])
	}
	if back[0].Comment != im.Comment {
		t.Errorf("comment mismatch: %q vs %q", im.Comment, back[0].Comment)
	}
}

func TestDecodeMultipleAndWrapped(t *testing.T) {
	src := `<collection>` + figure2XML[strings.Index(figure2XML, "<image"):] +
		`<image id="2" file="f"><name>n.png</name></image></collection>`
	imgs, err := DecodeImages(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(imgs) != 2 || imgs[1].ID != "2" {
		t.Fatalf("decoded %d images: %+v", len(imgs), imgs)
	}
}

func TestDecodeMalformed(t *testing.T) {
	_, err := DecodeImages(strings.NewReader(`<image id="1"><name>broken`))
	if err == nil {
		t.Error("malformed XML should fail")
	}
}

func TestReadCollection(t *testing.T) {
	c, err := ReadCollection(strings.NewReader(figure2XML))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("collection len = %d", c.Len())
	}
	doc := c.Docs()[0]
	if !strings.Contains(doc.Text, "Centaurea cyanus") {
		t.Errorf("collection text = %q", doc.Text)
	}
	// Duplicate ids across files must surface as errors.
	two := figure2XML + figure2XML
	if _, err := ReadCollection(strings.NewReader(two)); err == nil {
		t.Error("duplicate ids should fail collection read")
	}
}

// Property: encode→decode is lossless for the fields the pipeline uses.
func TestRoundTripProperty(t *testing.T) {
	f := func(id, file, name, desc, caption, comment string) bool {
		// XML 1.0 cannot carry arbitrary code points; restrict to the spec's
		// character range (encoding/xml substitutes U+FFFD outside it, which
		// would break the round trip) minus markup characters.
		valid := func(r rune) bool {
			return (r >= 0x20 && r <= 0xD7FF) ||
				(r >= 0xE000 && r < 0xFFFD) ||
				(r >= 0x10000 && r <= 0x10FFFF)
		}
		clean := func(s string) string {
			var b strings.Builder
			for _, r := range s {
				if valid(r) && r != '<' && r != '&' && r != '>' {
					b.WriteRune(r)
				}
			}
			return strings.TrimSpace(b.String())
		}
		im := Image{
			ID:   clean(id),
			File: clean(file),
			Name: clean(name),
			Texts: []Text{{
				Lang:        "en",
				Description: clean(desc),
				Captions:    []Caption{{Article: "a/1", Value: clean(caption)}},
			}},
			Comment: clean(comment),
		}
		var buf bytes.Buffer
		if err := EncodeImage(&buf, im); err != nil {
			return false
		}
		back, err := DecodeImages(&buf)
		if err != nil || len(back) != 1 {
			return false
		}
		got := back[0]
		return got.ID == im.ID && got.Name == im.Name &&
			got.Texts[0].Description == im.Texts[0].Description &&
			got.Texts[0].Captions[0].Value == im.Texts[0].Captions[0].Value &&
			got.Comment == im.Comment
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
