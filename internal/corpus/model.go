// Package corpus implements the document collection substrate: the
// ImageCLEF 2011 XML metadata schema the paper works with (its Figure 2),
// a streaming parser and writer, the relevant-text extraction rule of
// Section 2.1, and an in-memory collection with dense document IDs.
package corpus

import (
	"path"
	"strings"
)

// Image is one ImageCLEF metadata record. The XML layout follows the
// paper's Figure 2: an <image> element with a file name, per-language
// <text> sections (description, comment, captions), a general wiki-template
// <comment> and a <license>.
type Image struct {
	ID      string `xml:"id,attr"`
	File    string `xml:"file,attr"`
	Name    string `xml:"name"`
	Texts   []Text `xml:"text"`
	Comment string `xml:"comment"`
	License string `xml:"license"`
}

// Text is one per-language metadata section.
type Text struct {
	Lang        string    `xml:"lang,attr"`
	Description string    `xml:"description"`
	Comment     string    `xml:"comment"`
	Captions    []Caption `xml:"caption"`
}

// Caption is a caption linked to the article it was extracted from.
type Caption struct {
	Article string `xml:"article,attr"`
	Value   string `xml:",chardata"`
}

// EnglishText returns the English-language section, if present.
func (im *Image) EnglishText() (Text, bool) {
	for _, t := range im.Texts {
		if strings.EqualFold(t.Lang, "en") {
			return t, true
		}
	}
	return Text{}, false
}

// RelevantText implements the extraction step of the paper's Section 2.1
// (the circled items of Figure 2): it combines
//
//  1. the file name without its extension,
//  2. the information in the English section (description, section comment
//     and captions), and
//  3. the Description field of the general wiki-template comment,
//
// into a single string on which entity linking is performed.
func (im *Image) RelevantText() string {
	var parts []string
	if name := strings.TrimSpace(strings.TrimSuffix(im.Name, path.Ext(im.Name))); name != "" {
		parts = append(parts, name)
	}
	if en, ok := im.EnglishText(); ok {
		if d := strings.TrimSpace(en.Description); d != "" {
			parts = append(parts, d)
		}
		if c := strings.TrimSpace(en.Comment); c != "" {
			parts = append(parts, c)
		}
		for _, cap := range en.Captions {
			if v := strings.TrimSpace(cap.Value); v != "" {
				parts = append(parts, v)
			}
		}
	}
	if d := TemplateField(im.Comment, "Description"); d != "" {
		parts = append(parts, d)
	}
	return strings.Join(parts, " . ")
}

// TemplateField extracts a named field from a MediaWiki-style template
// string such as
//
//	({{Information |Description= Flowers in Belgium |Source= Flickr ...}})
//
// It returns the trimmed value of the first occurrence of "|<name>=", up to
// the next '|' or closing braces, or "" when absent.
func TemplateField(comment, name string) string {
	lower := strings.ToLower(comment)
	needle := "|" + strings.ToLower(name)
	idx := strings.Index(lower, needle)
	for idx >= 0 {
		rest := comment[idx+len(needle):]
		trimmed := strings.TrimLeft(rest, " \t")
		if strings.HasPrefix(trimmed, "=") {
			val := trimmed[1:]
			if end := strings.IndexAny(val, "|}"); end >= 0 {
				val = val[:end]
			}
			return strings.TrimSpace(val)
		}
		next := strings.Index(lower[idx+1:], needle)
		if next < 0 {
			break
		}
		idx += 1 + next
	}
	return ""
}
