// Package stats provides the descriptive statistics used throughout the
// paper's evaluation: five-number summaries (min, quartiles, max), means,
// least-squares trend lines and binned aggregation for scatter plots.
//
// All functions are pure and operate on float64 slices; callers own the data.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one observation.
var ErrEmpty = errors.New("stats: empty sample")

// Summary is the five-number summary the paper reports in Tables 2 and 3
// (minimum, first, second and third quartiles, maximum) plus the mean and
// the sample size.
type Summary struct {
	Min, Q1, Median, Q3, Max float64
	Mean                     float64
	N                        int
}

// Summarize computes the five-number summary of xs. Quartiles use linear
// interpolation between closest ranks (type-7, the R and NumPy default),
// which is well defined for any N >= 1.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return Summary{
		Min:    s[0],
		Q1:     Quantile(s, 0.25),
		Median: Quantile(s, 0.50),
		Q3:     Quantile(s, 0.75),
		Max:    s[len(s)-1],
		Mean:   sum / float64(len(s)),
		N:      len(s),
	}, nil
}

// Quantile returns the p-quantile (0 <= p <= 1) of an ascending-sorted
// sample using linear interpolation between closest ranks. The slice must be
// sorted and non-empty; out-of-range p is clamped.
func Quantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	h := p * float64(len(sorted)-1)
	lo := int(math.Floor(h))
	hi := int(math.Ceil(h))
	if lo == hi {
		return sorted[lo]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (NaN if fewer than two
// observations).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	for _, v := range xs {
		d := v - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// TrendLine is a least-squares fit y = Intercept + Slope*x, with the Pearson
// correlation coefficient R of the underlying points. The paper draws trend
// lines in Figures 7a and 9.
type TrendLine struct {
	Slope, Intercept, R float64
	N                   int
}

// Fit computes the least-squares trend line through the paired samples. It
// returns an error when the samples are empty, mismatched in length, or the
// x values are all identical (vertical line).
func Fit(xs, ys []float64) (TrendLine, error) {
	if len(xs) == 0 {
		return TrendLine{}, ErrEmpty
	}
	if len(xs) != len(ys) {
		return TrendLine{}, fmt.Errorf("stats: mismatched sample sizes %d and %d", len(xs), len(ys))
	}
	n := float64(len(xs))
	var sx, sy, sxx, syy, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		syy += ys[i] * ys[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return TrendLine{}, errors.New("stats: degenerate fit: all x values identical")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	r := 0.0
	if vy := n*syy - sy*sy; vy > 0 {
		r = (n*sxy - sx*sy) / math.Sqrt(den*vy)
	}
	return TrendLine{Slope: slope, Intercept: intercept, R: r, N: len(xs)}, nil
}

// At evaluates the trend line at x.
func (t TrendLine) At(x float64) float64 { return t.Intercept + t.Slope*x }

// Bin is one bucket of a binned scatter: the x-range midpoint, the mean of
// the y values that fell in the bucket, and the count.
type Bin struct {
	X    float64 // bucket midpoint
	Mean float64 // mean of y values in the bucket
	N    int
}

// BinnedMeans buckets the paired samples into nbins equal-width bins over
// [min(x), max(x)] and returns the per-bin mean of y. Empty bins are
// omitted. The paper's Figure 9 is this aggregation of (density,
// contribution) points.
func BinnedMeans(xs, ys []float64, nbins int) ([]Bin, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("stats: mismatched sample sizes %d and %d", len(xs), len(ys))
	}
	if nbins < 1 {
		return nil, fmt.Errorf("stats: nbins must be positive, got %d", nbins)
	}
	lo, hi := xs[0], xs[0]
	for _, v := range xs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	width := (hi - lo) / float64(nbins)
	if width == 0 {
		// All x identical: a single bin holding everything.
		return []Bin{{X: lo, Mean: Mean(ys), N: len(ys)}}, nil
	}
	sums := make([]float64, nbins)
	counts := make([]int, nbins)
	for i, v := range xs {
		b := int((v - lo) / width)
		if b >= nbins {
			b = nbins - 1
		}
		sums[b] += ys[i]
		counts[b]++
	}
	var out []Bin
	for b := 0; b < nbins; b++ {
		if counts[b] == 0 {
			continue
		}
		out = append(out, Bin{
			X:    lo + (float64(b)+0.5)*width,
			Mean: sums[b] / float64(counts[b]),
			N:    counts[b],
		})
	}
	return out, nil
}

// Histogram counts how many values fall into nbins equal-width bins over
// [lo, hi]. Values outside the range are clamped into the edge bins.
func Histogram(xs []float64, lo, hi float64, nbins int) ([]int, error) {
	if nbins < 1 {
		return nil, fmt.Errorf("stats: nbins must be positive, got %d", nbins)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: invalid range [%g, %g]", lo, hi)
	}
	counts := make([]int, nbins)
	width := (hi - lo) / float64(nbins)
	for _, v := range xs {
		b := int((v - lo) / width)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts, nil
}
