package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Summarize(nil) err = %v, want ErrEmpty", err)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{3.5})
	if err != nil {
		t.Fatal(err)
	}
	for name, got := range map[string]float64{
		"Min": s.Min, "Q1": s.Q1, "Median": s.Median, "Q3": s.Q3, "Max": s.Max, "Mean": s.Mean,
	} {
		if got != 3.5 {
			t.Errorf("%s = %g, want 3.5", name, got)
		}
	}
	if s.N != 1 {
		t.Errorf("N = %d, want 1", s.N)
	}
}

func TestSummarizeKnown(t *testing.T) {
	// 1..5: quartiles via type-7 interpolation.
	s, err := Summarize([]float64{5, 1, 4, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("min/median/max = %g/%g/%g, want 1/3/5", s.Min, s.Median, s.Max)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Errorf("Q1/Q3 = %g/%g, want 2/4", s.Q1, s.Q3)
	}
	if s.Mean != 3 {
		t.Errorf("Mean = %g, want 3", s.Mean)
	}
}

func TestSummarizeInterpolated(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(s.Q1, 1.75, 1e-12) || !almostEqual(s.Median, 2.5, 1e-12) || !almostEqual(s.Q3, 3.25, 1e-12) {
		t.Errorf("quartiles = %g/%g/%g, want 1.75/2.5/3.25", s.Q1, s.Median, s.Q3)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	if _, err := Summarize(in); err != nil {
		t.Fatal(err)
	}
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestQuantileClamping(t *testing.T) {
	s := []float64{1, 2, 3}
	if Quantile(s, -1) != 1 {
		t.Errorf("Quantile(p<0) = %g, want min", Quantile(s, -1))
	}
	if Quantile(s, 2) != 3 {
		t.Errorf("Quantile(p>1) = %g, want max", Quantile(s, 2))
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(empty) should be NaN")
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Errorf("Mean = %g, want 5", Mean(xs))
	}
	// Sample variance of the classic example: SS = 32, n-1 = 7.
	if !almostEqual(Variance(xs), 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %g, want %g", Variance(xs), 32.0/7.0)
	}
	if !almostEqual(StdDev(xs), math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %g", StdDev(xs))
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance([]float64{1})) {
		t.Error("degenerate inputs should yield NaN")
	}
}

func TestFitPerfectLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 3, 5, 7, 9} // y = 1 + 2x
	tl, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(tl.Slope, 2, 1e-12) || !almostEqual(tl.Intercept, 1, 1e-12) {
		t.Errorf("fit = %+v, want slope 2 intercept 1", tl)
	}
	if !almostEqual(tl.R, 1, 1e-12) {
		t.Errorf("R = %g, want 1", tl.R)
	}
	if !almostEqual(tl.At(10), 21, 1e-12) {
		t.Errorf("At(10) = %g, want 21", tl.At(10))
	}
}

func TestFitNegativeCorrelation(t *testing.T) {
	tl, err := Fit([]float64{0, 1, 2}, []float64{4, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if tl.Slope >= 0 || tl.R >= 0 {
		t.Errorf("expected negative slope and R, got %+v", tl)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil); err == nil {
		t.Error("Fit(empty) should error")
	}
	if _, err := Fit([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("Fit(mismatched) should error")
	}
	if _, err := Fit([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("Fit(vertical) should error")
	}
}

func TestFitHorizontalLineHasZeroR(t *testing.T) {
	tl, err := Fit([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if tl.Slope != 0 || tl.R != 0 {
		t.Errorf("horizontal fit = %+v, want slope 0 R 0", tl)
	}
}

func TestBinnedMeans(t *testing.T) {
	xs := []float64{0, 0.1, 0.9, 1.0}
	ys := []float64{1, 3, 10, 20}
	bins, err := BinnedMeans(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 2 {
		t.Fatalf("got %d bins, want 2", len(bins))
	}
	if bins[0].N != 2 || bins[0].Mean != 2 {
		t.Errorf("bin0 = %+v, want N=2 mean=2", bins[0])
	}
	if bins[1].N != 2 || bins[1].Mean != 15 {
		t.Errorf("bin1 = %+v, want N=2 mean=15", bins[1])
	}
}

func TestBinnedMeansAllIdenticalX(t *testing.T) {
	bins, err := BinnedMeans([]float64{2, 2, 2}, []float64{1, 2, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 1 || bins[0].N != 3 || bins[0].Mean != 2 {
		t.Errorf("bins = %+v, want single bin mean 2", bins)
	}
}

func TestBinnedMeansErrors(t *testing.T) {
	if _, err := BinnedMeans(nil, nil, 3); err == nil {
		t.Error("empty input should error")
	}
	if _, err := BinnedMeans([]float64{1}, []float64{1, 2}, 3); err == nil {
		t.Error("mismatched input should error")
	}
	if _, err := BinnedMeans([]float64{1}, []float64{1}, 0); err == nil {
		t.Error("nbins=0 should error")
	}
}

func TestHistogram(t *testing.T) {
	counts, err := Histogram([]float64{-1, 0, 0.5, 0.99, 1, 2}, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// -1 clamps into bin 0; 1 and 2 clamp into bin 1.
	if counts[0] != 2 || counts[1] != 4 {
		t.Errorf("counts = %v, want [2 4]", counts)
	}
	if _, err := Histogram(nil, 1, 0, 2); err == nil {
		t.Error("inverted range should error")
	}
	if _, err := Histogram(nil, 0, 1, 0); err == nil {
		t.Error("nbins=0 should error")
	}
}

// Property: for any sample, Min <= Q1 <= Median <= Q3 <= Max and the mean is
// within [Min, Max].
func TestSummaryOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				// Keep magnitudes sane so the mean cannot overflow.
				xs = append(xs, math.Mod(v, 1e9))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		eps := 1e-9 * (1 + math.Abs(s.Max) + math.Abs(s.Min))
		return s.Min <= s.Q1+eps && s.Q1 <= s.Median+eps && s.Median <= s.Q3+eps &&
			s.Q3 <= s.Max+eps && s.Mean >= s.Min-eps && s.Mean <= s.Max+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: fitting a line through points generated from y = a + b*x recovers
// a and b for non-degenerate x.
func TestFitRecoveryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		a := rng.Float64()*20 - 10
		b := rng.Float64()*20 - 10
		n := 2 + rng.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i) + rng.Float64() // strictly increasing, never degenerate
			ys[i] = a + b*xs[i]
		}
		tl, err := Fit(xs, ys)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !almostEqual(tl.Slope, b, 1e-6) || !almostEqual(tl.Intercept, a, 1e-6) {
			t.Fatalf("trial %d: fit %+v, want a=%g b=%g", trial, tl, a, b)
		}
	}
}

// Property: histogram counts always sum to the number of observations.
func TestHistogramConservationProperty(t *testing.T) {
	f := func(raw []float64, nbinsRaw uint8) bool {
		nbins := int(nbinsRaw%16) + 1
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) {
				xs = append(xs, v)
			}
		}
		counts, err := Histogram(xs, -1e6, 1e6, nbins)
		if err != nil {
			return false
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		return total == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
