package synth

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/querygraph/querygraph/internal/graph"
	"github.com/querygraph/querygraph/internal/linking"
)

// smallConfig keeps generation fast in tests.
func smallConfig() Config {
	cfg := Default()
	cfg.Topics = 8
	cfg.ArticlesPerTopic = 12
	cfg.DocsPerTopic = 15
	cfg.Queries = 12
	cfg.NoiseVocab = 60
	return cfg
}

func generate(t *testing.T, cfg Config) *World {
	t.Helper()
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestGenerateCounts(t *testing.T) {
	cfg := smallConfig()
	w := generate(t, cfg)
	if got := w.Snapshot.NumArticles(); got != cfg.Topics*cfg.ArticlesPerTopic {
		t.Errorf("articles = %d, want %d", got, cfg.Topics*cfg.ArticlesPerTopic)
	}
	// Shared topic categories + per-topic leaf pools + supers + root.
	wantCats := cfg.Topics*(cfg.CategoriesPerTopic+cfg.ArticlesPerTopic) +
		(cfg.Topics+cfg.TopicsPerSuper-1)/cfg.TopicsPerSuper + 1
	if got := w.Snapshot.NumCategories(); got != wantCats {
		t.Errorf("categories = %d, want %d", got, wantCats)
	}
	if got := w.Collection.Len(); got != cfg.Topics*cfg.DocsPerTopic {
		t.Errorf("docs = %d, want %d", got, cfg.Topics*cfg.DocsPerTopic)
	}
	if len(w.Queries) != cfg.Queries {
		t.Errorf("queries = %d, want %d", len(w.Queries), cfg.Queries)
	}
	if len(w.TopicOfDoc) != w.Collection.Len() {
		t.Error("TopicOfDoc length mismatch")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := smallConfig()
	w1 := generate(t, cfg)
	w2 := generate(t, cfg)
	if w1.Snapshot.Stats() != w2.Snapshot.Stats() {
		t.Errorf("snapshot stats differ: %+v vs %+v", w1.Snapshot.Stats(), w2.Snapshot.Stats())
	}
	if w1.Collection.Len() != w2.Collection.Len() {
		t.Fatal("collection size differs")
	}
	for i := range w1.Queries {
		if w1.Queries[i].Keywords != w2.Queries[i].Keywords {
			t.Fatalf("query %d keywords differ: %q vs %q",
				i, w1.Queries[i].Keywords, w2.Queries[i].Keywords)
		}
	}
	d1, _ := w1.Collection.Doc(0)
	d2, _ := w2.Collection.Doc(0)
	if d1.Text != d2.Text {
		t.Errorf("doc 0 text differs:\n%q\n%q", d1.Text, d2.Text)
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	cfg := smallConfig()
	w1 := generate(t, cfg)
	cfg.Seed = 99
	w2 := generate(t, cfg)
	if w1.Queries[0].Keywords == w2.Queries[0].Keywords {
		t.Error("different seeds should give different worlds")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Topics = 0 },
		func(c *Config) { c.ArticlesPerTopic = 1 },
		func(c *Config) { c.CategoriesPerTopic = 0 },
		func(c *Config) { c.TopicsPerSuper = 0 },
		func(c *Config) { c.DocsPerTopic = 0 },
		func(c *Config) { c.MentionsPerDoc = 0 },
		func(c *Config) { c.Queries = 0 },
		func(c *Config) { c.QueryArticlesMax = 0 },
		func(c *Config) { c.NoiseVocab = 0 },
		func(c *Config) { c.HubLinkProb = 1.5 },
		func(c *Config) { c.ReciprocalProb = -0.1 },
	}
	for i, mutate := range bad {
		cfg := Default()
		mutate(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestReciprocalRatioNearTarget(t *testing.T) {
	cfg := Default()
	cfg.Topics = 20
	cfg.DocsPerTopic = 1 // corpus size irrelevant here
	cfg.Queries = 1
	w := generate(t, cfg)
	got := w.Snapshot.ReciprocalLinkRatio()
	// The paper measures 11.47% on Wikipedia. Hub backlinks and intra-topic
	// backlinks both contribute; the generator should land in a band around
	// the target.
	if got < 0.05 || got > 0.30 {
		t.Errorf("reciprocal link ratio = %g, want within [0.05, 0.30]", got)
	}
}

func TestCategoryGraphTriangleFree(t *testing.T) {
	w := generate(t, smallConfig())
	g := w.Snapshot.Graph()
	cats := g.NodesOfKind(graph.Category)
	onlyInside := func(k graph.EdgeKind) bool { return k != graph.Inside }
	if tpr := g.TriangleParticipation(cats, onlyInside); tpr != 0 {
		t.Errorf("category graph TPR = %g, want 0 (tree-like)", tpr)
	}
}

func TestQueriesHaveRelevantDocsAndEntities(t *testing.T) {
	w := generate(t, smallConfig())
	for _, q := range w.Queries {
		if len(q.Relevant) == 0 {
			t.Fatalf("query %d has no relevant docs", q.ID)
		}
		if len(q.Entities) == 0 {
			t.Fatalf("query %d has no entities", q.ID)
		}
		if q.Keywords == "" {
			t.Fatalf("query %d has empty keywords", q.ID)
		}
		for _, d := range q.Relevant {
			if w.TopicOfDoc[d] != q.Topic {
				t.Fatalf("query %d: relevant doc %d belongs to topic %d, want %d",
					q.ID, d, w.TopicOfDoc[d], q.Topic)
			}
		}
		// Entities are sorted and unique.
		for i := 1; i < len(q.Entities); i++ {
			if q.Entities[i-1] >= q.Entities[i] {
				t.Fatalf("query %d entities not sorted/unique: %v", q.ID, q.Entities)
			}
		}
	}
}

func TestQueryKeywordsLinkable(t *testing.T) {
	w := generate(t, smallConfig())
	l := linking.New(w.Snapshot)
	for _, q := range w.Queries {
		found := l.LinkMain(q.Keywords)
		set := make(map[graph.NodeID]bool, len(found))
		for _, id := range found {
			set[id] = true
		}
		for _, want := range q.Entities {
			if !set[want] {
				t.Fatalf("query %d (%q): entity %q not recovered by linking (got %v)",
					q.ID, q.Keywords, w.Snapshot.Name(want), found)
			}
		}
	}
}

func TestDocumentsMentionTopicArticles(t *testing.T) {
	w := generate(t, smallConfig())
	l := linking.New(w.Snapshot)
	topicSet := make([]map[graph.NodeID]bool, len(w.TopicArticles))
	for t2, arts := range w.TopicArticles {
		topicSet[t2] = make(map[graph.NodeID]bool, len(arts))
		for _, a := range arts {
			topicSet[t2][a] = true
		}
	}
	misses := 0
	for _, doc := range w.Collection.Docs() {
		topic := w.TopicOfDoc[doc.ID]
		hit := false
		for _, id := range l.LinkMain(doc.Text) {
			if topicSet[topic][id] {
				hit = true
				break
			}
		}
		if !hit {
			misses++
		}
	}
	if misses > 0 {
		t.Errorf("%d/%d documents mention no article of their own topic",
			misses, w.Collection.Len())
	}
}

func TestGermanSectionExcludedFromText(t *testing.T) {
	w := generate(t, smallConfig())
	doc, err := w.Collection.Doc(0)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(doc.Text, "ein bild") {
		t.Errorf("German section leaked into relevant text: %q", doc.Text)
	}
	if !strings.Contains(doc.Image.Comment, "Description=") {
		t.Errorf("comment template missing: %q", doc.Image.Comment)
	}
}

func TestRedirectsGenerated(t *testing.T) {
	w := generate(t, smallConfig())
	if w.Snapshot.NumRedirects() == 0 {
		t.Error("no redirects generated")
	}
}

func TestNameGenUniqueness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ng := newNameGen(rng)
	seen := make(map[string]struct{})
	for i := 0; i < 5000; i++ {
		n := ng.unique(1 + i%3)
		if _, dup := seen[n]; dup {
			t.Fatalf("duplicate name %q at iteration %d", n, i)
		}
		seen[n] = struct{}{}
	}
}

func TestTitleCase(t *testing.T) {
	if got := titleCase("grand canal"); got != "Grand Canal" {
		t.Errorf("titleCase = %q", got)
	}
	if got := titleCase(""); got != "" {
		t.Errorf("titleCase(empty) = %q", got)
	}
}
