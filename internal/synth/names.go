// Package synth generates the synthetic world the experiments run on: a
// Wikipedia snapshot, an ImageCLEF-shaped document collection and a query
// benchmark, all derived deterministically from a seed.
//
// The generator substitutes for data this reproduction cannot ship (the
// English Wikipedia dump and the ImageCLEF 2011 collection). It recreates
// the structural mechanisms the paper's analysis depends on rather than the
// data itself:
//
//   - articles cluster into topics and link densely within a topic, with a
//     hub article per topic (the "venice" of the paper's running example);
//   - a configurable fraction of linked article pairs is reciprocal
//     (the paper measures 11.47% on Wikipedia);
//   - every article belongs to >= 1 topic category; categories form a
//     mostly-tree hierarchy (so the category graph alone has no triangles);
//   - some articles have redirect aliases (synonym sources);
//   - sparse cross-topic links and deliberate category-free triangles play
//     the role of the semantically-distant "sheep / quarantine / anthrax"
//     relations;
//   - documents are written *about* topics: they mention the titles of
//     articles of their topic, so relevance is known by construction.
package synth

import (
	"fmt"
	"math/rand"
	"strings"
)

// nameGen produces pronounceable, unique synthetic words and multi-word
// names from a seeded RNG. Words are built from consonant-vowel syllables,
// so they never collide with English stopwords and tokenize to themselves.
type nameGen struct {
	rng  *rand.Rand
	used map[string]struct{}
}

var (
	onsets = []string{"b", "c", "d", "f", "g", "l", "m", "n", "p", "r", "s", "t", "v", "z", "br", "tr", "gl", "pr", "st"}
	nuclei = []string{"a", "e", "i", "o", "u", "ia", "ei", "ou"}
)

func newNameGen(rng *rand.Rand) *nameGen {
	return &nameGen{rng: rng, used: make(map[string]struct{})}
}

// word returns one random syllabic word of 2–3 syllables (not necessarily
// unique across calls; uniqueness is enforced at the name level).
func (n *nameGen) word() string {
	var b strings.Builder
	syllables := 2 + n.rng.Intn(2)
	for i := 0; i < syllables; i++ {
		b.WriteString(onsets[n.rng.Intn(len(onsets))])
		b.WriteString(nuclei[n.rng.Intn(len(nuclei))])
	}
	return b.String()
}

// unique returns a name of the requested word count that has not been
// returned before (case-normalized). It retries with fresh words and, as a
// last resort, appends a numeric disambiguator, mirroring Wikipedia's
// parenthetical disambiguation.
func (n *nameGen) unique(words int) string {
	if words < 1 {
		words = 1
	}
	for attempt := 0; ; attempt++ {
		parts := make([]string, words)
		for i := range parts {
			parts[i] = n.word()
		}
		name := strings.Join(parts, " ")
		if attempt >= 20 {
			name = fmt.Sprintf("%s %d", name, n.rng.Intn(1_000_000))
		}
		if _, dup := n.used[name]; !dup {
			n.used[name] = struct{}{}
			return name
		}
	}
}
