package synth

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"github.com/querygraph/querygraph/internal/corpus"
	"github.com/querygraph/querygraph/internal/graph"
	"github.com/querygraph/querygraph/internal/wiki"
)

// Config controls the synthetic world. The zero value is not usable; start
// from Default().
type Config struct {
	Seed int64

	// Knowledge base shape.
	Topics             int // number of topics
	ArticlesPerTopic   int // articles per topic, including the hub
	CategoriesPerTopic int // shared categories per topic (>= 1)
	// SpecificCatsPerArticle is the mean number of specific (leaf)
	// categories each article belongs to, drawn from a per-topic pool of
	// ArticlesPerTopic leaf categories. Wikipedia articles carry several
	// such narrow categories ("1697 births", "venetian gothic buildings"),
	// which is what makes the paper's query graphs category-dominated.
	SpecificCatsPerArticle float64
	// LeafInsideMainProb is the probability that a leaf category nests
	// inside the topic's main category rather than directly inside the
	// super-category. Leaves parented outside the topic keep the query
	// graph's triangle participation moderate, as in the paper.
	LeafInsideMainProb float64
	TopicsPerSuper     int     // topics grouped under one super-category
	HubLinkProb        float64 // regular article -> hub link probability
	HubBacklinkProb    float64 // hub -> article backlink (reciprocal) probability
	IntraLinkProb      float64 // link probability between two regular articles of a topic
	ReciprocalProb     float64 // probability that an intra-topic link gets a backlink
	// SharedCatLinkProb links two articles that share a leaf category
	// (semantically close articles link to each other); these links are the
	// main source of the dense short cycles the paper highlights.
	SharedCatLinkProb float64
	// PopularFraction is the top fraction of a topic's articles (by
	// popularity rank) whose links reciprocate at full ReciprocalProb;
	// links between less popular articles reciprocate at a quarter of it.
	// Reciprocal pairs of prominent articles are what makes the paper's
	// 2-cycles scarce but highly contributing.
	PopularFraction float64
	// ZipfExponent skews how often each article is mentioned in documents
	// (0 = uniform). Prominent articles appear in more documents, so the
	// features introduced by 2-cycles retrieve more relevant results.
	ZipfExponent float64
	// ReciprocalAntiCooccur is the probability that a document drops a
	// mention whose article reciprocally links an already-mentioned one.
	// Reciprocal partners therefore cover *complementary* document sets —
	// a picture of the Grand Canal rarely needs the word "Venice" — which
	// is exactly why the paper's 2-cycles are such strong expansion
	// features.
	ReciprocalAntiCooccur float64
	// CoMentionProb is the probability that a document's next mention is a
	// link-neighbor of an already-mentioned article instead of a fresh
	// draw. One-directionally linked articles therefore co-occur, making
	// their coverage redundant: a long cycle of mutually linked articles
	// adds fewer new documents per article than a reciprocal partner.
	CoMentionProb      float64
	SecondCategoryProb float64 // article also belongs to a second topic category
	ForeignCatProb     float64 // article belongs to a category of the next topic (bridge)
	RedirectProb       float64 // article has a redirect alias
	CrossTopicLinks    int     // random cross-topic links added per topic
	CrossTriangleProb  float64 // probability of one category-free cross-topic triangle per topic
	ExtraInsideProb    float64 // probability of one extra inside edge per topic (category DAG noise)

	// Corpus shape.
	DocsPerTopic   int     // documents generated about each topic
	MentionsPerDoc int     // mean number of topic articles mentioned per document
	HubMentionProb float64 // probability a document mentions the topic hub
	ForeignMention float64 // probability a document mentions one article of another topic
	// ForeignHubProb is the probability that a foreign mention is the other
	// topic's hub article. Such documents are lexical false positives for
	// queries about that hub — the vocabulary-mismatch pressure that makes
	// expansion worthwhile, as in the real ImageCLEF collection.
	ForeignHubProb   float64
	NoiseVocab       int // size of the background vocabulary
	NoiseWordsPerDoc int // background words per document

	// Benchmark shape.
	Queries          int // number of queries
	QueryArticlesMax int // up to this many entities per query (>= 1)
}

// Default returns the configuration used by the experiments: a world large
// enough to show the paper's effects, small enough for a laptop test run.
func Default() Config {
	return Config{
		Seed:                   3,
		Topics:                 30,
		ArticlesPerTopic:       32,
		CategoriesPerTopic:     4,
		SpecificCatsPerArticle: 1.8,
		LeafInsideMainProb:     0.3,
		TopicsPerSuper:         6,
		HubLinkProb:            0.6,
		HubBacklinkProb:        0.35,
		IntraLinkProb:          0.08,
		ReciprocalProb:         0.22,
		SharedCatLinkProb:      0.5,
		PopularFraction:        0.25,
		ZipfExponent:           0.9,
		ReciprocalAntiCooccur:  0.85,
		CoMentionProb:          0.6,
		SecondCategoryProb:     0.3,
		ForeignCatProb:         0.08,
		RedirectProb:           0.3,
		CrossTopicLinks:        25,
		CrossTriangleProb:      0.5,
		ExtraInsideProb:        0.3,
		DocsPerTopic:           50,
		MentionsPerDoc:         2,
		HubMentionProb:         0.12,
		ForeignMention:         0.55,
		ForeignHubProb:         0.6,
		NoiseVocab:             150,
		NoiseWordsPerDoc:       8,
		Queries:                50,
		QueryArticlesMax:       3,
	}
}

// Validate checks the configuration for structural impossibilities.
func (c Config) Validate() error {
	switch {
	case c.Topics < 1:
		return fmt.Errorf("synth: Topics must be >= 1, got %d", c.Topics)
	case c.ArticlesPerTopic < 2:
		return fmt.Errorf("synth: ArticlesPerTopic must be >= 2, got %d", c.ArticlesPerTopic)
	case c.CategoriesPerTopic < 1:
		return fmt.Errorf("synth: CategoriesPerTopic must be >= 1, got %d", c.CategoriesPerTopic)
	case c.TopicsPerSuper < 1:
		return fmt.Errorf("synth: TopicsPerSuper must be >= 1, got %d", c.TopicsPerSuper)
	case c.DocsPerTopic < 1:
		return fmt.Errorf("synth: DocsPerTopic must be >= 1, got %d", c.DocsPerTopic)
	case c.MentionsPerDoc < 1:
		return fmt.Errorf("synth: MentionsPerDoc must be >= 1, got %d", c.MentionsPerDoc)
	case c.Queries < 1:
		return fmt.Errorf("synth: Queries must be >= 1, got %d", c.Queries)
	case c.QueryArticlesMax < 1:
		return fmt.Errorf("synth: QueryArticlesMax must be >= 1, got %d", c.QueryArticlesMax)
	case c.NoiseVocab < 1:
		return fmt.Errorf("synth: NoiseVocab must be >= 1, got %d", c.NoiseVocab)
	case c.SpecificCatsPerArticle < 0 || c.SpecificCatsPerArticle > 5:
		return fmt.Errorf("synth: SpecificCatsPerArticle must be in [0,5], got %g", c.SpecificCatsPerArticle)
	case c.ZipfExponent < 0 || c.ZipfExponent > 3:
		return fmt.Errorf("synth: ZipfExponent must be in [0,3], got %g", c.ZipfExponent)
	}
	for name, p := range map[string]float64{
		"HubLinkProb": c.HubLinkProb, "HubBacklinkProb": c.HubBacklinkProb,
		"IntraLinkProb": c.IntraLinkProb, "ReciprocalProb": c.ReciprocalProb,
		"SecondCategoryProb": c.SecondCategoryProb, "ForeignCatProb": c.ForeignCatProb,
		"RedirectProb": c.RedirectProb, "CrossTriangleProb": c.CrossTriangleProb,
		"ExtraInsideProb": c.ExtraInsideProb, "HubMentionProb": c.HubMentionProb,
		"ForeignMention": c.ForeignMention, "ForeignHubProb": c.ForeignHubProb,
		"LeafInsideMainProb": c.LeafInsideMainProb, "SharedCatLinkProb": c.SharedCatLinkProb,
		"PopularFraction": c.PopularFraction, "ReciprocalAntiCooccur": c.ReciprocalAntiCooccur,
		"CoMentionProb": c.CoMentionProb,
	} {
		if p < 0 || p > 1 {
			return fmt.Errorf("synth: %s must be in [0,1], got %g", name, p)
		}
	}
	return nil
}

// Query is one benchmark query: a keyword string and its correct documents
// (the paper's tuple q = <k, D>).
type Query struct {
	ID       int
	Keywords string
	Relevant []int32 // dense corpus doc IDs, ascending
	Topic    int     // provenance: the topic the query is about
	// Entities are the article nodes whose titles were embedded in the
	// keywords (provenance for tests; the pipeline re-derives them by
	// entity linking).
	Entities []graph.NodeID
}

// World is a complete generated benchmark environment.
type World struct {
	Config     Config
	Snapshot   *wiki.Snapshot
	Collection *corpus.Collection
	Queries    []Query

	// Topic provenance.
	TopicOfDoc      []int            // dense doc ID -> topic
	TopicArticles   [][]graph.NodeID // topic -> its article nodes (hub first)
	TopicHub        []graph.NodeID
	TopicCategories [][]graph.NodeID
}

// Generate builds the world deterministically from cfg.Seed.
func Generate(cfg Config) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	names := newNameGen(rng)

	w := &World{Config: cfg}
	b := wiki.NewBuilder(cfg.Topics * (cfg.ArticlesPerTopic + cfg.CategoriesPerTopic))

	if err := buildKnowledgeBase(cfg, rng, names, b, w); err != nil {
		return nil, err
	}
	snap, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("synth: knowledge base invalid: %w", err)
	}
	w.Snapshot = snap

	if err := buildCorpus(cfg, rng, names, w); err != nil {
		return nil, err
	}
	buildQueries(cfg, rng, w)
	return w, nil
}

// buildKnowledgeBase creates categories, articles, links and redirects.
func buildKnowledgeBase(cfg Config, rng *rand.Rand, names *nameGen, b *wiki.Builder, w *World) error {
	root, err := b.AddCategory("root " + names.unique(1))
	if err != nil {
		return err
	}
	// Super-categories shared by groups of topics.
	numSupers := (cfg.Topics + cfg.TopicsPerSuper - 1) / cfg.TopicsPerSuper
	supers := make([]graph.NodeID, numSupers)
	for i := range supers {
		s, err := b.AddCategory("super " + names.unique(1))
		if err != nil {
			return err
		}
		if err := b.AddInside(s, root); err != nil {
			return err
		}
		supers[i] = s
	}

	w.TopicArticles = make([][]graph.NodeID, cfg.Topics)
	w.TopicHub = make([]graph.NodeID, cfg.Topics)
	w.TopicCategories = make([][]graph.NodeID, cfg.Topics)

	for t := 0; t < cfg.Topics; t++ {
		topicWord := names.unique(1)
		// Categories: main topic category plus subcategories.
		cats := make([]graph.NodeID, cfg.CategoriesPerTopic)
		main, err := b.AddCategory(topicWord + " topics")
		if err != nil {
			return err
		}
		if err := b.AddInside(main, supers[t/cfg.TopicsPerSuper]); err != nil {
			return err
		}
		cats[0] = main
		for i := 1; i < cfg.CategoriesPerTopic; i++ {
			c, err := b.AddCategory(fmt.Sprintf("%s %s", topicWord, names.unique(1)))
			if err != nil {
				return err
			}
			if err := b.AddInside(c, main); err != nil {
				return err
			}
			cats[i] = c
		}
		// Occasional extra inside edge: a subcategory also sits under a
		// *different* super-category, so the category graph is a DAG, not a
		// strict tree — while staying triangle-free, matching the paper's
		// observation that the Wikipedia category graph is tree-like and
		// contains no triangles.
		if cfg.CategoriesPerTopic > 1 && numSupers > 1 && rng.Float64() < cfg.ExtraInsideProb {
			sub := cats[1+rng.Intn(cfg.CategoriesPerTopic-1)]
			own := t / cfg.TopicsPerSuper
			other := (own + 1 + rng.Intn(numSupers-1)) % numSupers
			_ = b.AddInside(sub, supers[other]) // duplicate-safe: error ignored
		}
		w.TopicCategories[t] = cats

		// Specific (leaf) categories: a per-topic pool of narrow categories
		// each nested inside the main topic category. Articles draw from
		// this pool, so most leaves hold one or two articles — the shape of
		// the paper's Figure 3, where the query graph is dominated by such
		// categories.
		leaves := make([]graph.NodeID, cfg.ArticlesPerTopic)
		for i := range leaves {
			c, err := b.AddCategory(fmt.Sprintf("%s %s", topicWord, names.unique(1)))
			if err != nil {
				return err
			}
			// Each leaf has exactly one parent (main or super), so the
			// category graph stays triangle-free.
			parent := supers[t/cfg.TopicsPerSuper]
			if rng.Float64() < cfg.LeafInsideMainProb {
				parent = main
			}
			if err := b.AddInside(c, parent); err != nil {
				return err
			}
			leaves[i] = c
		}
		leafMembers := make([][]graph.NodeID, len(leaves))
		drawLeaves := func(a graph.NodeID) {
			k := int(cfg.SpecificCatsPerArticle)
			if frac := cfg.SpecificCatsPerArticle - float64(k); rng.Float64() < frac {
				k++
			}
			for d := 0; d < k; d++ {
				li := rng.Intn(len(leaves))
				if err := b.AddBelongs(a, leaves[li]); err == nil { // may duplicate; skip membership then
					leafMembers[li] = append(leafMembers[li], a)
				}
			}
		}

		// Articles: hub first.
		arts := make([]graph.NodeID, cfg.ArticlesPerTopic)
		hub, err := b.AddArticle(topicWord)
		if err != nil {
			return err
		}
		if err := b.AddBelongs(hub, main); err != nil {
			return err
		}
		drawLeaves(hub)
		arts[0] = hub
		w.TopicHub[t] = hub
		for i := 1; i < cfg.ArticlesPerTopic; i++ {
			title := names.unique(1 + rng.Intn(2))
			a, err := b.AddArticle(title)
			if err != nil {
				return err
			}
			// Primary shared category.
			if err := b.AddBelongs(a, cats[rng.Intn(len(cats))]); err != nil {
				return err
			}
			// Optional second shared category of the same topic.
			if rng.Float64() < cfg.SecondCategoryProb {
				_ = b.AddBelongs(a, cats[rng.Intn(len(cats))]) // may duplicate; ignore
			}
			drawLeaves(a)
			arts[i] = a
		}
		w.TopicArticles[t] = arts

		// Hub links.
		for _, a := range arts[1:] {
			if rng.Float64() < cfg.HubLinkProb {
				if err := b.AddLink(a, hub); err != nil {
					return err
				}
				if rng.Float64() < cfg.HubBacklinkProb {
					_ = b.AddLink(hub, a)
				}
			}
		}
		// Popularity rank: the article's index within the topic (hub = 0 is
		// most prominent). Links between two popular articles reciprocate
		// at the full rate; other pairs rarely do. This concentrates the
		// scarce 2-cycles on prominent, strongly related articles, as the
		// paper observes on Wikipedia.
		popLimit := int(cfg.PopularFraction * float64(len(arts)))
		rank := make(map[graph.NodeID]int, len(arts))
		for i, a := range arts {
			rank[a] = i
		}
		reciprocal := func(a, bb graph.NodeID) float64 {
			if rank[a] < popLimit && rank[bb] < popLimit {
				return cfg.ReciprocalProb
			}
			return cfg.ReciprocalProb / 4
		}
		// Intra-topic links between regular articles.
		for i := 1; i < len(arts); i++ {
			for j := i + 1; j < len(arts); j++ {
				if rng.Float64() < cfg.IntraLinkProb {
					if err := b.AddLink(arts[i], arts[j]); err != nil {
						return err
					}
					if rng.Float64() < reciprocal(arts[i], arts[j]) {
						_ = b.AddLink(arts[j], arts[i])
					}
				}
			}
		}
		// Semantically close articles link: pairs sharing a leaf category
		// link with SharedCatLinkProb. These links close the dense short
		// cycles (article–article–category triangles and the 4-cycles of
		// two articles sharing two categories) that the paper identifies as
		// the best expansion sources.
		for _, members := range leafMembers {
			for i := 0; i < len(members); i++ {
				for j := i + 1; j < len(members); j++ {
					if rng.Float64() < cfg.SharedCatLinkProb {
						_ = b.AddLink(members[i], members[j]) // duplicate-safe
						if rng.Float64() < reciprocal(members[i], members[j]) {
							_ = b.AddLink(members[j], members[i])
						}
					}
				}
			}
		}
		// Redirect aliases.
		for _, a := range arts {
			if rng.Float64() < cfg.RedirectProb {
				if _, err := b.AddRedirect(names.unique(1+rng.Intn(2)), a); err != nil {
					return err
				}
			}
		}
	}

	// Cross-topic category bridges: an article of topic t also belongs to a
	// category of the next topic.
	for t := 0; t < cfg.Topics && cfg.Topics > 1; t++ {
		arts := w.TopicArticles[t]
		next := w.TopicCategories[(t+1)%cfg.Topics]
		for _, a := range arts {
			if rng.Float64() < cfg.ForeignCatProb {
				_ = b.AddBelongs(a, next[rng.Intn(len(next))])
			}
		}
	}
	// Cross-topic noise links and category-free triangles.
	pickArticle := func(topic int) graph.NodeID {
		arts := w.TopicArticles[topic]
		return arts[rng.Intn(len(arts))]
	}
	for t := 0; t < cfg.Topics && cfg.Topics > 1; t++ {
		for i := 0; i < cfg.CrossTopicLinks; i++ {
			other := rng.Intn(cfg.Topics)
			if other == t {
				continue
			}
			_ = b.AddLink(pickArticle(t), pickArticle(other))
		}
		if cfg.Topics > 2 && rng.Float64() < cfg.CrossTriangleProb {
			// The "sheep -> quarantine -> anthrax" pattern: a category-free
			// link triangle across three topics.
			t2 := (t + 1 + rng.Intn(cfg.Topics-1)) % cfg.Topics
			t3 := (t2 + 1 + rng.Intn(cfg.Topics-1)) % cfg.Topics
			if t2 != t && t3 != t && t3 != t2 {
				a, bb, c := pickArticle(t), pickArticle(t2), pickArticle(t3)
				_ = b.AddLink(a, bb)
				_ = b.AddLink(bb, c)
				_ = b.AddLink(c, a)
			}
		}
	}
	return nil
}

// buildCorpus generates DocsPerTopic ImageCLEF-shaped documents per topic.
func buildCorpus(cfg Config, rng *rand.Rand, names *nameGen, w *World) error {
	noise := make([]string, cfg.NoiseVocab)
	for i := range noise {
		noise[i] = names.unique(1)
	}
	noiseWords := func(n int) string {
		parts := make([]string, n)
		for i := range parts {
			parts[i] = noise[rng.Intn(len(noise))]
		}
		return strings.Join(parts, " ")
	}
	snap := w.Snapshot
	coll := &corpus.Collection{}
	w.TopicOfDoc = nil

	// Zipf-like popularity sampler: article index i (excluding the hub,
	// which HubMentionProb governs) is drawn with weight
	// 1/(i+1)^ZipfExponent, so prominent articles are mentioned in more
	// documents.
	sampler := newZipfSampler(cfg.ArticlesPerTopic-1, cfg.ZipfExponent)
	drawRegular := func(t int) graph.NodeID {
		return w.TopicArticles[t][1+sampler.draw(rng)]
	}

	g := snap.Graph()
	reciprocalWith := func(mentions []graph.NodeID, x graph.NodeID) bool {
		for _, y := range mentions {
			if g.HasEdge(x, y, graph.Link) && g.HasEdge(y, x, graph.Link) {
				return true
			}
		}
		return false
	}
	// Intra-topic link neighborhoods, for mention clustering.
	topicOf := make(map[graph.NodeID]int)
	for t, arts := range w.TopicArticles {
		for _, a := range arts {
			topicOf[a] = t
		}
	}
	onlyLinks := func(k graph.EdgeKind) bool { return k != graph.Link }
	linkNbrs := make(map[graph.NodeID][]graph.NodeID)
	for _, arts := range w.TopicArticles {
		for _, a := range arts {
			var same []graph.NodeID
			for _, nb := range g.Neighbors(a, onlyLinks) {
				if topicOf[nb] == topicOf[a] {
					same = append(same, nb)
				}
			}
			linkNbrs[a] = same
		}
	}
	contains := func(mentions []graph.NodeID, x graph.NodeID) bool {
		for _, y := range mentions {
			if y == x {
				return true
			}
		}
		return false
	}
	docSeq := 0
	for t := 0; t < cfg.Topics; t++ {
		for d := 0; d < cfg.DocsPerTopic; d++ {
			var mentions []graph.NodeID
			if rng.Float64() < cfg.HubMentionProb {
				mentions = append(mentions, w.TopicHub[t])
			}
			n := 1 + rng.Intn(2*cfg.MentionsPerDoc-1) // 1 .. 2*mean-1
			for i := 0; i < n; i++ {
				m := drawRegular(t)
				if len(mentions) > 0 && rng.Float64() < cfg.CoMentionProb {
					base := mentions[rng.Intn(len(mentions))]
					if nbrs := linkNbrs[base]; len(nbrs) > 0 {
						m = nbrs[rng.Intn(len(nbrs))]
					}
				}
				if contains(mentions, m) {
					continue
				}
				if reciprocalWith(mentions, m) && rng.Float64() < cfg.ReciprocalAntiCooccur {
					continue
				}
				mentions = append(mentions, m)
			}
			if cfg.Topics > 1 && rng.Float64() < cfg.ForeignMention {
				other := (t + 1 + rng.Intn(cfg.Topics-1)) % cfg.Topics
				foreign := w.TopicArticles[other][rng.Intn(len(w.TopicArticles[other]))]
				if rng.Float64() < cfg.ForeignHubProb {
					foreign = w.TopicHub[other]
				}
				mentions = append(mentions, foreign)
			}
			// Shuffle so no slot (the file name, the description) is
			// reserved for on-topic mentions: a foreign mention can be the
			// document's most prominent term, which is what makes lexical
			// false positives competitive in the real collection.
			rng.Shuffle(len(mentions), func(i, j int) {
				mentions[i], mentions[j] = mentions[j], mentions[i]
			})
			titles := make([]string, len(mentions))
			for i, m := range mentions {
				titles[i] = snap.Name(m)
			}

			im := corpus.Image{
				ID:   fmt.Sprintf("%d", 100000+docSeq),
				File: fmt.Sprintf("images/%d/%d.jpg", t, 100000+docSeq),
				Name: titleCase(titles[0]) + ".jpg",
			}
			// English section: description holds a couple of mentions plus
			// noise; each remaining mention becomes a caption.
			descMentions := titles[:min(2, len(titles))]
			im.Texts = []corpus.Text{{
				Lang: "en",
				Description: fmt.Sprintf("%s with %s near %s",
					noiseWords(2), strings.Join(descMentions, " and "), noiseWords(1)),
			}}
			for _, title := range titles[min(2, len(titles)):] {
				im.Texts[0].Captions = append(im.Texts[0].Captions, corpus.Caption{
					Article: fmt.Sprintf("text/en/%d", rng.Intn(1000)),
					Value:   fmt.Sprintf("a view of %s %s", title, noiseWords(1)),
				})
			}
			// A German section that must be ignored by extraction.
			im.Texts = append(im.Texts, corpus.Text{
				Lang:        "de",
				Description: "ein bild " + noiseWords(2),
			})
			im.Comment = fmt.Sprintf("({{Information |Description= %s |Source= synth |Author= synth |Permission= GFDL }})",
				noiseWords(cfg.NoiseWordsPerDoc))
			im.License = "GFDL"

			if _, err := coll.Add(im); err != nil {
				return fmt.Errorf("synth: corpus: %w", err)
			}
			w.TopicOfDoc = append(w.TopicOfDoc, t)
			docSeq++
		}
	}
	w.Collection = coll
	return nil
}

// connectors are the stopword glue of query keyword strings ("gondola in
// venice").
var connectors = []string{"in", "of", "at", "with", "near"}

// buildQueries creates the benchmark queries round-robin over topics.
func buildQueries(cfg Config, rng *rand.Rand, w *World) {
	snap := w.Snapshot
	for qid := 0; qid < cfg.Queries; qid++ {
		t := qid % cfg.Topics
		arts := w.TopicArticles[t]
		n := 1 + rng.Intn(cfg.QueryArticlesMax)
		if n > len(arts) {
			n = len(arts)
		}
		// The hub plus random regular articles, deduplicated.
		chosen := map[graph.NodeID]struct{}{w.TopicHub[t]: {}}
		for len(chosen) < n {
			chosen[arts[rng.Intn(len(arts))]] = struct{}{}
		}
		entities := make([]graph.NodeID, 0, len(chosen))
		for id := range chosen {
			entities = append(entities, id)
		}
		// Deterministic order: sort by node ID.
		for i := 1; i < len(entities); i++ {
			for j := i; j > 0 && entities[j] < entities[j-1]; j-- {
				entities[j], entities[j-1] = entities[j-1], entities[j]
			}
		}
		parts := make([]string, 0, 2*len(entities)-1)
		for i, e := range entities {
			if i > 0 {
				parts = append(parts, connectors[rng.Intn(len(connectors))])
			}
			parts = append(parts, strings.ToLower(snap.Name(e)))
		}
		var relevant []int32
		for doc, topic := range w.TopicOfDoc {
			if topic == t {
				relevant = append(relevant, int32(doc))
			}
		}
		w.Queries = append(w.Queries, Query{
			ID:       qid,
			Keywords: strings.Join(parts, " "),
			Relevant: relevant,
			Topic:    t,
			Entities: entities,
		})
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// zipfSampler draws indices 0..n-1 with weight 1/(i+1)^exp.
type zipfSampler struct {
	cum []float64
}

func newZipfSampler(n int, exp float64) *zipfSampler {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), exp)
		cum[i] = total
	}
	return &zipfSampler{cum: cum}
}

func (z *zipfSampler) draw(rng *rand.Rand) int {
	r := rng.Float64() * z.cum[len(z.cum)-1]
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// titleCase uppercases the first letter of each ASCII word, mimicking the
// file-name convention of the ImageCLEF collection.
func titleCase(s string) string {
	words := strings.Fields(s)
	for i, w := range words {
		if w[0] >= 'a' && w[0] <= 'z' {
			words[i] = string(w[0]-'a'+'A') + w[1:]
		}
	}
	return strings.Join(words, " ")
}
