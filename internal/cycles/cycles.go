// Package cycles implements the structural analysis at the heart of the
// paper's Section 3: enumerating the undirected cycles of a query graph and
// measuring the characteristics that correlate with expansion quality.
//
// A cycle is a sequence of |C| distinct nodes (articles or categories),
// start and end at the same node, with at least one edge — in either
// direction — between each pair of consecutive nodes. Cycles need not be
// chordless, direction is ignored, lengths are limited (the paper uses 5,
// because enumeration cost grows exponentially with length), and only
// cycles containing at least one query article are of interest. Redirect
// edges are excluded: a redirect article has a single relation and can
// never close a cycle.
//
// A length-2 cycle is a pair of articles linked in both directions (the
// paper's Figure 4a).
package cycles

import (
	"fmt"
	"sort"

	"github.com/querygraph/querygraph/internal/graph"
)

// MaxSupportedLength bounds enumeration; the paper limits cycles to length
// 5 and so does this implementation's analysis, but the enumerator accepts
// any small bound.
const MaxSupportedLength = 8

// Cycle is one enumerated cycle in canonical form: Nodes[0] is the smallest
// node ID in the cycle, and Nodes[1] < Nodes[len-1] (so each rotation/
// reflection class appears exactly once).
type Cycle struct {
	Nodes []graph.NodeID
}

// Len returns |C|.
func (c Cycle) Len() int { return len(c.Nodes) }

// Contains reports whether the cycle includes node n.
func (c Cycle) Contains(n graph.NodeID) bool {
	for _, m := range c.Nodes {
		if m == n {
			return true
		}
	}
	return false
}

// Enumerate returns every cycle of length 2..maxLen in the undirected view
// of g (edges filtered by exclude; nil keeps all kinds) that contains at
// least one seed node. A nil seed set disables the seed filter and returns
// every cycle — the analysis always passes L(q.k), but the generic form is
// useful for whole-graph statistics.
//
// Cycles are returned in deterministic order (by length, then
// lexicographic node sequence).
func Enumerate(g *graph.Graph, seeds []graph.NodeID, maxLen int, exclude func(graph.EdgeKind) bool) ([]Cycle, error) {
	if maxLen < 2 {
		return nil, fmt.Errorf("cycles: maxLen must be >= 2, got %d", maxLen)
	}
	if maxLen > MaxSupportedLength {
		return nil, fmt.Errorf("cycles: maxLen %d exceeds supported maximum %d", maxLen, MaxSupportedLength)
	}
	var seedSet map[graph.NodeID]struct{}
	if seeds != nil {
		seedSet = make(map[graph.NodeID]struct{}, len(seeds))
		for _, s := range seeds {
			if !g.Valid(s) {
				return nil, fmt.Errorf("cycles: unknown seed node %d", s)
			}
			seedSet[s] = struct{}{}
		}
	}
	keep := func(nodes []graph.NodeID) bool {
		if seedSet == nil {
			return true
		}
		for _, n := range nodes {
			if _, ok := seedSet[n]; ok {
				return true
			}
		}
		return false
	}

	n := g.NumNodes()
	adj := make([][]graph.NodeID, n)
	for i := 0; i < n; i++ {
		adj[i] = g.Neighbors(graph.NodeID(i), exclude)
	}

	var out []Cycle

	// Length-2 cycles: pairs connected by at least two directed edges.
	for a := 0; a < n; a++ {
		for _, b := range adj[a] {
			if graph.NodeID(a) >= b {
				continue
			}
			if g.EdgesBetween(graph.NodeID(a), b, exclude) >= 2 {
				nodes := []graph.NodeID{graph.NodeID(a), b}
				if keep(nodes) {
					out = append(out, Cycle{Nodes: nodes})
				}
			}
		}
	}

	// Lengths >= 3: DFS from each start node s, visiting only nodes > s so
	// that s is the canonical minimum; a cycle is emitted when the path can
	// close back to s. Reflections are suppressed by requiring
	// path[1] < path[len-1].
	if maxLen >= 3 {
		path := make([]graph.NodeID, 0, maxLen)
		onPath := make([]bool, n)
		var dfs func(s graph.NodeID, cur graph.NodeID)
		dfs = func(s, cur graph.NodeID) {
			for _, next := range adj[cur] {
				if next == s && len(path) >= 3 && path[1] < path[len(path)-1] {
					nodes := append([]graph.NodeID(nil), path...)
					if keep(nodes) {
						out = append(out, Cycle{Nodes: nodes})
					}
					continue
				}
				if next <= s || onPath[next] || len(path) >= maxLen {
					continue
				}
				path = append(path, next)
				onPath[next] = true
				dfs(s, next)
				onPath[next] = false
				path = path[:len(path)-1]
			}
		}
		for s := 0; s < n; s++ {
			path = append(path[:0], graph.NodeID(s))
			onPath[s] = true
			dfs(graph.NodeID(s), graph.NodeID(s))
			onPath[s] = false
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Nodes, out[j].Nodes
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out, nil
}

// ArticlesOf returns the article nodes of the cycle, ascending. This is the
// set used as expansion features: "in L(q.k) ∪ C we only consider the
// articles in C but ignore the categories".
func ArticlesOf(g *graph.Graph, c Cycle) []graph.NodeID {
	var out []graph.NodeID
	for _, n := range c.Nodes {
		if g.Kind(n) == graph.Article {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Metrics are the per-cycle measurements of the paper's Section 3.
type Metrics struct {
	Length     int
	Articles   int
	Categories int
	// CategoryRatio is Categories / Length (Figure 7a).
	CategoryRatio float64
	// Edges is E(C): the number of edges among the cycle's nodes, counting
	// both directions for article pairs (capped at each pair's schema
	// maximum so density stays within [0, 1]).
	Edges int
	// MaxEdges is the paper's M(C) = A(A-1) + A·K + K(K-1)/2.
	MaxEdges int
	// ExtraEdgeDensity is (E(C) − |C|) / (M(C) − |C|) (Figure 7b); defined
	// as 0 when M(C) = |C| (no room for extra edges, e.g. any 2-cycle).
	ExtraEdgeDensity float64
}

// Measure computes the metrics of one cycle against the graph it was
// enumerated from, using the same edge filter.
func Measure(g *graph.Graph, c Cycle, exclude func(graph.EdgeKind) bool) (Metrics, error) {
	if len(c.Nodes) < 2 {
		return Metrics{}, fmt.Errorf("cycles: cycle of length %d", len(c.Nodes))
	}
	var m Metrics
	m.Length = len(c.Nodes)
	for _, n := range c.Nodes {
		if !g.Valid(n) {
			return Metrics{}, fmt.Errorf("cycles: unknown node %d in cycle", n)
		}
		if g.Kind(n) == graph.Article {
			m.Articles++
		} else {
			m.Categories++
		}
	}
	m.CategoryRatio = float64(m.Categories) / float64(m.Length)

	for i := 0; i < len(c.Nodes); i++ {
		for j := i + 1; j < len(c.Nodes); j++ {
			a, b := c.Nodes[i], c.Nodes[j]
			e := g.EdgesBetween(a, b, exclude)
			if max := pairCapacity(g.Kind(a), g.Kind(b)); e > max {
				e = max
			}
			m.Edges += e
		}
	}
	a, k := m.Articles, m.Categories
	m.MaxEdges = a*(a-1) + a*k + k*(k-1)/2
	if m.MaxEdges > m.Length {
		m.ExtraEdgeDensity = float64(m.Edges-m.Length) / float64(m.MaxEdges-m.Length)
	}
	return m, nil
}

// pairCapacity is the schema maximum of countable edges between two nodes:
// two articles may link in both directions; an article belongs to a
// category at most once; a category nests inside another at most once.
func pairCapacity(a, b graph.NodeKind) int {
	if a == graph.Article && b == graph.Article {
		return 2
	}
	return 1
}

// LengthSummary aggregates cycles of one length (Figures 6, 7a, 7b).
type LengthSummary struct {
	Length            int
	Count             int
	MeanCategoryRatio float64
	MeanDensity       float64
}

// SummarizeByLength measures every cycle and groups the means by length.
// The result maps length -> summary; lengths with no cycles are absent.
func SummarizeByLength(g *graph.Graph, cs []Cycle, exclude func(graph.EdgeKind) bool) (map[int]LengthSummary, error) {
	acc := make(map[int]*LengthSummary)
	for _, c := range cs {
		m, err := Measure(g, c, exclude)
		if err != nil {
			return nil, err
		}
		s := acc[m.Length]
		if s == nil {
			s = &LengthSummary{Length: m.Length}
			acc[m.Length] = s
		}
		s.Count++
		s.MeanCategoryRatio += m.CategoryRatio
		s.MeanDensity += m.ExtraEdgeDensity
	}
	out := make(map[int]LengthSummary, len(acc))
	for l, s := range acc {
		s.MeanCategoryRatio /= float64(s.Count)
		s.MeanDensity /= float64(s.Count)
		out[l] = *s
	}
	return out, nil
}
