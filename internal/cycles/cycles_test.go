package cycles

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/querygraph/querygraph/internal/graph"
)

func mustEdge(t *testing.T, g *graph.Graph, from, to graph.NodeID, kind graph.EdgeKind) {
	t.Helper()
	if err := g.AddEdge(from, to, kind); err != nil {
		t.Fatal(err)
	}
}

// paperGraph builds the Figure 4 shapes:
//
//	n0 venice (article), n1 cannaregio (article): reciprocal links (2-cycle)
//	n2 grand canal (article), n3 palazzo bembo (article):
//	   venice->grand canal, grand canal->palazzo bembo, palazzo bembo->venice (3-cycle)
//	n4 visitor attractions (category), n5 bridge of sighs (article):
//	   venice belongs n4, n5 belongs n4, n5 links venice ... 3-cycle with category
func paperGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(8)
	venice := g.AddNode(graph.Article)     // 0
	cannaregio := g.AddNode(graph.Article) // 1
	canal := g.AddNode(graph.Article)      // 2
	palazzo := g.AddNode(graph.Article)    // 3
	attractions := g.AddNode(graph.Category)
	sighs := g.AddNode(graph.Article) // 5
	mustEdge(t, g, venice, cannaregio, graph.Link)
	mustEdge(t, g, cannaregio, venice, graph.Link)
	mustEdge(t, g, venice, canal, graph.Link)
	mustEdge(t, g, canal, palazzo, graph.Link)
	mustEdge(t, g, palazzo, venice, graph.Link)
	mustEdge(t, g, venice, attractions, graph.Belongs)
	mustEdge(t, g, sighs, attractions, graph.Belongs)
	mustEdge(t, g, sighs, venice, graph.Link)
	return g
}

func TestEnumeratePaperShapes(t *testing.T) {
	g := paperGraph(t)
	cs, err := Enumerate(g, []graph.NodeID{0}, 5, graph.ExcludeRedirects)
	if err != nil {
		t.Fatal(err)
	}
	var got [][]graph.NodeID
	for _, c := range cs {
		got = append(got, c.Nodes)
	}
	want := [][]graph.NodeID{
		{0, 1},    // reciprocal link 2-cycle
		{0, 2, 3}, // article 3-cycle
		{0, 4, 5}, // article-category-article 3-cycle
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("cycles = %v, want %v", got, want)
	}
}

func TestEnumerateSeedFilter(t *testing.T) {
	g := paperGraph(t)
	// Seeded at cannaregio: only the 2-cycle contains it.
	cs, err := Enumerate(g, []graph.NodeID{1}, 5, graph.ExcludeRedirects)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 || !reflect.DeepEqual(cs[0].Nodes, []graph.NodeID{0, 1}) {
		t.Errorf("cycles = %v", cs)
	}
	// nil seeds: every cycle.
	cs, err = Enumerate(g, nil, 5, graph.ExcludeRedirects)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 3 {
		t.Errorf("unfiltered cycles = %v", cs)
	}
	// Empty (non-nil) seeds: no cycle can contain a seed.
	cs, err = Enumerate(g, []graph.NodeID{}, 5, graph.ExcludeRedirects)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 0 {
		t.Errorf("empty-seed cycles = %v", cs)
	}
}

func TestEnumerateLengthCap(t *testing.T) {
	// 5-ring plus one chord making a 4-cycle and a 3-cycle.
	g := graph.New(5)
	for i := 0; i < 5; i++ {
		g.AddNode(graph.Article)
	}
	ring := [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	for _, e := range ring {
		mustEdge(t, g, e[0], e[1], graph.Link)
	}
	mustEdge(t, g, 0, 2, graph.Link) // chord

	cs, err := Enumerate(g, nil, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 || len(cs[0].Nodes) != 3 {
		t.Errorf("maxLen=3 cycles = %v", cs)
	}
	cs, err = Enumerate(g, nil, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Triangle {0,1,2}, 4-cycle {0,2,3,4}, 5-ring {0..4}.
	if len(cs) != 3 {
		t.Errorf("maxLen=5 cycles = %v", cs)
	}
}

func TestEnumerateErrors(t *testing.T) {
	g := graph.New(1)
	g.AddNode(graph.Article)
	if _, err := Enumerate(g, nil, 1, nil); err == nil {
		t.Error("maxLen < 2 should fail")
	}
	if _, err := Enumerate(g, nil, MaxSupportedLength+1, nil); err == nil {
		t.Error("maxLen > max should fail")
	}
	if _, err := Enumerate(g, []graph.NodeID{42}, 3, nil); err == nil {
		t.Error("unknown seed should fail")
	}
}

func TestRedirectsNeverCloseCycles(t *testing.T) {
	// venice <-> gondola links; alias -> venice redirect. Without the
	// exclusion a spurious "cycle" via the redirect could never appear
	// anyway (redirect has one edge), but redirect edges between cycle
	// nodes must not count as closure either.
	g := graph.New(3)
	a := g.AddNode(graph.Article)
	b := g.AddNode(graph.Article)
	r := g.AddNode(graph.Article)
	mustEdge(t, g, a, b, graph.Link)
	mustEdge(t, g, r, a, graph.Redirect)
	// A hypothetical second relation b->a of kind Redirect (not schema-legal
	// in wiki, but the graph allows it) must not create a 2-cycle when
	// redirects are excluded.
	mustEdge(t, g, b, a, graph.Redirect)
	cs, err := Enumerate(g, nil, 5, graph.ExcludeRedirects)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 0 {
		t.Errorf("cycles = %v, want none", cs)
	}
	// Including redirect edges, the reciprocal pair is a 2-cycle.
	cs, err = Enumerate(g, nil, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 {
		t.Errorf("cycles with redirects = %v", cs)
	}
}

func TestArticlesOf(t *testing.T) {
	g := paperGraph(t)
	cs, err := Enumerate(g, []graph.NodeID{0}, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The article-category-article cycle {0,4,5}: articles are 0 and 5.
	var found bool
	for _, c := range cs {
		if reflect.DeepEqual(c.Nodes, []graph.NodeID{0, 4, 5}) {
			arts := ArticlesOf(g, c)
			if !reflect.DeepEqual(arts, []graph.NodeID{0, 5}) {
				t.Errorf("ArticlesOf = %v", arts)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("expected cycle {0,4,5} not enumerated")
	}
}

func TestMeasureTriangleWithCategory(t *testing.T) {
	g := paperGraph(t)
	m, err := Measure(g, Cycle{Nodes: []graph.NodeID{0, 4, 5}}, graph.ExcludeRedirects)
	if err != nil {
		t.Fatal(err)
	}
	if m.Length != 3 || m.Articles != 2 || m.Categories != 1 {
		t.Errorf("counts = %+v", m)
	}
	if math.Abs(m.CategoryRatio-1.0/3.0) > 1e-12 {
		t.Errorf("CategoryRatio = %g", m.CategoryRatio)
	}
	// Edges: venice-attractions belongs(1), sighs-attractions belongs(1),
	// sighs-venice link(1) = 3. M = 2*1 + 2*1 + 0 = 4. density = 0/1 = 0.
	if m.Edges != 3 || m.MaxEdges != 4 {
		t.Errorf("edges = %d/%d", m.Edges, m.MaxEdges)
	}
	if m.ExtraEdgeDensity != 0 {
		t.Errorf("density = %g, want 0", m.ExtraEdgeDensity)
	}
}

func TestMeasureDenseTriangle(t *testing.T) {
	// All-article triangle with every possible directed link: E = 6, M = 6,
	// density = (6-3)/(6-3) = 1.
	g := graph.New(3)
	for i := 0; i < 3; i++ {
		g.AddNode(graph.Article)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i != j {
				mustEdge(t, g, graph.NodeID(i), graph.NodeID(j), graph.Link)
			}
		}
	}
	m, err := Measure(g, Cycle{Nodes: []graph.NodeID{0, 1, 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Edges != 6 || m.MaxEdges != 6 || m.ExtraEdgeDensity != 1 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestMeasureTwoCycleDensityZero(t *testing.T) {
	g := graph.New(2)
	g.AddNode(graph.Article)
	g.AddNode(graph.Article)
	mustEdge(t, g, 0, 1, graph.Link)
	mustEdge(t, g, 1, 0, graph.Link)
	m, err := Measure(g, Cycle{Nodes: []graph.NodeID{0, 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// M = 2 = |C|: no room for extra edges.
	if m.ExtraEdgeDensity != 0 || m.MaxEdges != 2 || m.Edges != 2 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestMeasureErrors(t *testing.T) {
	g := graph.New(1)
	g.AddNode(graph.Article)
	if _, err := Measure(g, Cycle{Nodes: []graph.NodeID{0}}, nil); err == nil {
		t.Error("length-1 cycle should fail")
	}
	if _, err := Measure(g, Cycle{Nodes: []graph.NodeID{0, 99}}, nil); err == nil {
		t.Error("unknown node should fail")
	}
}

func TestSummarizeByLength(t *testing.T) {
	g := paperGraph(t)
	cs, err := Enumerate(g, nil, 5, graph.ExcludeRedirects)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := SummarizeByLength(g, cs, graph.ExcludeRedirects)
	if err != nil {
		t.Fatal(err)
	}
	if sum[2].Count != 1 || sum[3].Count != 2 {
		t.Errorf("summary = %+v", sum)
	}
	// Mean category ratio at length 3: cycles {0,2,3} (0) and {0,4,5} (1/3).
	if math.Abs(sum[3].MeanCategoryRatio-1.0/6.0) > 1e-12 {
		t.Errorf("mean category ratio = %g", sum[3].MeanCategoryRatio)
	}
}

// --- property tests -------------------------------------------------------

// bruteForceCycles enumerates cycles by checking every permutation of every
// node subset of size 2..maxLen, canonicalizing and deduplicating.
func bruteForceCycles(g *graph.Graph, maxLen int, exclude func(graph.EdgeKind) bool) map[string]bool {
	n := g.NumNodes()
	adjacent := func(a, b graph.NodeID) bool {
		return g.EdgesBetween(a, b, exclude) >= 1
	}
	found := make(map[string]bool)
	var nodes []graph.NodeID
	for i := 0; i < n; i++ {
		nodes = append(nodes, graph.NodeID(i))
	}
	// 2-cycles.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if g.EdgesBetween(graph.NodeID(i), graph.NodeID(j), exclude) >= 2 {
				found[key([]graph.NodeID{graph.NodeID(i), graph.NodeID(j)})] = true
			}
		}
	}
	// k-cycles via permutations.
	var permute func(cur []graph.NodeID, rest []graph.NodeID, k int)
	permute = func(cur, rest []graph.NodeID, k int) {
		if len(cur) == k {
			for i := 0; i < k; i++ {
				if !adjacent(cur[i], cur[(i+1)%k]) {
					return
				}
			}
			found[key(canonical(cur))] = true
			return
		}
		for i := range rest {
			next := append(append([]graph.NodeID{}, cur...), rest[i])
			others := append(append([]graph.NodeID{}, rest[:i]...), rest[i+1:]...)
			permute(next, others, k)
		}
	}
	for k := 3; k <= maxLen; k++ {
		permute(nil, nodes, k)
	}
	return found
}

// canonical rotates the cycle so the minimum leads and reflects so the
// second element is smaller than the last.
func canonical(c []graph.NodeID) []graph.NodeID {
	k := len(c)
	minIdx := 0
	for i, v := range c {
		if v < c[minIdx] {
			minIdx = i
		}
	}
	rot := make([]graph.NodeID, k)
	for i := 0; i < k; i++ {
		rot[i] = c[(minIdx+i)%k]
	}
	if k > 2 && rot[1] > rot[k-1] {
		rev := make([]graph.NodeID, k)
		rev[0] = rot[0]
		for i := 1; i < k; i++ {
			rev[i] = rot[k-i]
		}
		return rev
	}
	return rot
}

func key(nodes []graph.NodeID) string {
	b := make([]byte, 0, len(nodes)*4)
	for _, n := range nodes {
		b = append(b, byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	}
	return string(b)
}

// Property: DFS enumeration matches brute force on random small graphs.
func TestEnumerateMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		g := graph.New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(4) == 0 {
				g.AddNode(graph.Category)
			} else {
				g.AddNode(graph.Article)
			}
		}
		for e := 0; e < rng.Intn(3*n); e++ {
			_ = g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)),
				graph.EdgeKind(rng.Intn(3)))
		}
		maxLen := 3 + rng.Intn(3) // 3..5
		got, err := Enumerate(g, nil, maxLen, nil)
		if err != nil {
			return false
		}
		want := bruteForceCycles(g, maxLen, nil)
		if len(got) != len(want) {
			return false
		}
		for _, c := range got {
			if !want[key(c.Nodes)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: every enumerated cycle is valid — distinct nodes, consecutive
// adjacency, canonical form, length within bounds, density within [0,1].
func TestCycleValidityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		g := graph.New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				g.AddNode(graph.Category)
			} else {
				g.AddNode(graph.Article)
			}
		}
		for e := 0; e < rng.Intn(4*n); e++ {
			_ = g.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)),
				graph.EdgeKind(rng.Intn(3)))
		}
		cs, err := Enumerate(g, nil, 5, nil)
		if err != nil {
			return false
		}
		for _, c := range cs {
			k := len(c.Nodes)
			if k < 2 || k > 5 {
				return false
			}
			seen := map[graph.NodeID]bool{}
			for _, nd := range c.Nodes {
				if seen[nd] {
					return false
				}
				seen[nd] = true
			}
			for i := 0; i < k; i++ {
				a, b := c.Nodes[i], c.Nodes[(i+1)%k]
				need := 1
				if k == 2 {
					need = 2
				}
				if g.EdgesBetween(a, b, nil) < need {
					return false
				}
			}
			// Canonical form.
			for _, nd := range c.Nodes[1:] {
				if nd < c.Nodes[0] {
					return false
				}
			}
			if k > 2 && c.Nodes[1] > c.Nodes[k-1] {
				return false
			}
			m, err := Measure(g, c, nil)
			if err != nil {
				return false
			}
			if m.ExtraEdgeDensity < 0 || m.ExtraEdgeDensity > 1 {
				return false
			}
			if m.Articles+m.Categories != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
