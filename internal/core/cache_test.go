package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// sameShardKeys generates n distinct keys that all hash to the same cache
// shard, so eviction-order tests exercise one deterministic LRU list.
func sameShardKeys(t *testing.T, c *expandCache, n int) []expandKey {
	t.Helper()
	target := c.shardFor(expandKey{keywords: "anchor"})
	out := []expandKey{{keywords: "anchor"}}
	for i := 0; len(out) < n; i++ {
		k := expandKey{keywords: fmt.Sprintf("key-%d", i)}
		if c.shardFor(k) == target {
			out = append(out, k)
		}
		if i > 1<<16 {
			t.Fatal("could not find enough same-shard keys")
		}
	}
	return out
}

// TestCacheCapacityOneEviction: with per-shard capacity 1, inserting a
// second key into the same shard must evict the first, and only the first.
func TestCacheCapacityOneEviction(t *testing.T) {
	c := newExpandCache(1) // rounds up to per-shard cap 1
	ks := sameShardKeys(t, c, 2)
	e1, e2 := &Expansion{Keywords: "1"}, &Expansion{Keywords: "2"}

	c.put(ks[0], e1)
	if got, ok := c.get(ks[0]); !ok || got != e1 {
		t.Fatal("first entry not retrievable")
	}
	c.put(ks[1], e2)
	if _, ok := c.get(ks[0]); ok {
		t.Error("capacity-1 shard kept the evicted entry")
	}
	if got, ok := c.get(ks[1]); !ok || got != e2 {
		t.Error("newest entry evicted instead of oldest")
	}
	if st := c.stats(); st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}
}

// TestCacheEvictionIsLRUNotFIFO: a get refreshes recency, so the eviction
// victim is the least recently *used* entry, not the oldest inserted.
func TestCacheEvictionIsLRUNotFIFO(t *testing.T) {
	c := newExpandCache(2 * expandCacheShards) // per-shard cap 2
	ks := sameShardKeys(t, c, 3)
	a, b, d := &Expansion{Keywords: "a"}, &Expansion{Keywords: "b"}, &Expansion{Keywords: "c"}

	c.put(ks[0], a)
	c.put(ks[1], b)
	if _, ok := c.get(ks[0]); !ok { // refresh a: b becomes the LRU
		t.Fatal("warm entry missing")
	}
	c.put(ks[2], d) // evicts b, not a
	if _, ok := c.get(ks[1]); ok {
		t.Error("LRU entry b survived eviction")
	}
	if _, ok := c.get(ks[0]); !ok {
		t.Error("recently used entry a was evicted (FIFO, not LRU)")
	}
	if _, ok := c.get(ks[2]); !ok {
		t.Error("new entry c missing")
	}
}

// TestExpandCacheDisabledRunsPipelineEveryTime: WithExpandCache(0) must
// bypass memoization and single-flight entirely — every Expand pays for
// the pipeline and the stats stay zero.
func TestExpandCacheDisabledRunsPipelineEveryTime(t *testing.T) {
	_, w := testSystem(t)
	s, err := FromWorld(w, WithExpandCache(0))
	if err != nil {
		t.Fatal(err)
	}
	kw := w.Queries[0].Keywords
	for i := 0; i < 3; i++ {
		if _, err := s.Expand(context.Background(), kw, DefaultExpanderOptions()); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.expandCalls.Load(); got != 3 {
		t.Errorf("pipeline ran %d times, want 3 (cache disabled)", got)
	}
	if st := s.ExpandCacheStats(); st != (CacheStats{}) {
		t.Errorf("disabled cache reported stats %+v", st)
	}
}

// TestExpandOptionsKeyDiscrimination: the cache key is (keywords, options)
// — same keywords under different ExpanderOptions must be separate
// pipeline runs and separate entries, while repeats of either hit.
func TestExpandOptionsKeyDiscrimination(t *testing.T) {
	_, w := testSystem(t)
	s, err := FromWorld(w)
	if err != nil {
		t.Fatal(err)
	}
	kw := w.Queries[0].Keywords
	o1 := DefaultExpanderOptions()
	o2 := DefaultExpanderOptions()
	o2.MaxFeatures = 3

	e1, err := s.Expand(context.Background(), kw, o1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := s.Expand(context.Background(), kw, o2)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.expandCalls.Load(); got != 2 {
		t.Fatalf("pipeline ran %d times, want 2 (distinct options)", got)
	}
	// Both variants are now cached: repeats must not run the pipeline.
	r1, err := s.Expand(context.Background(), kw, o1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Expand(context.Background(), kw, o2)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.expandCalls.Load(); got != 2 {
		t.Errorf("pipeline ran %d times after warm repeats, want 2", got)
	}
	if r1 != e1 || r2 != e2 {
		t.Error("cached pointers not shared per options variant")
	}
	if st := s.ExpandCacheStats(); st.Hits != 2 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 2 hits / 2 misses", st)
	}
}

// TestSingleFlightDedupesConcurrentMisses is the deterministic
// single-flight regression test: the leader's pipeline call blocks until
// every follower has joined the in-flight entry, so all concurrency
// interleavings collapse to exactly one invocation.
func TestSingleFlightDedupesConcurrentMisses(t *testing.T) {
	c := newExpandCache(64)
	k := expandKey{keywords: "hot query"}
	const followers = 7
	want := &Expansion{Keywords: "hot query"}
	var calls atomic.Int32

	fn := func() (*Expansion, error) {
		calls.Add(1)
		deadline := time.Now().Add(5 * time.Second)
		for c.deduped.Load() < followers {
			if time.Now().After(deadline) {
				return nil, errors.New("followers never joined the flight")
			}
			time.Sleep(time.Millisecond)
		}
		return want, nil
	}

	var wg sync.WaitGroup
	errs := make([]error, followers+1)
	exps := make([]*Expansion, followers+1)
	for i := 0; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			exps[i], _, errs[i] = c.getOrDo(context.Background(), k, fn)
		}(i)
	}
	wg.Wait()

	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if exps[i] != want {
			t.Fatalf("caller %d got %+v, want the leader's result", i, exps[i])
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("pipeline ran %d times for %d concurrent cold misses, want 1", got, followers+1)
	}
	st := c.stats()
	if st.Misses != 1 || st.Deduped != followers {
		t.Errorf("stats = %+v, want 1 miss and %d deduped", st, followers)
	}
	if _, ok := c.get(k); !ok {
		t.Error("leader's result was not cached")
	}
}

// TestSingleFlightErrorsSharedNotCached: a failing leader propagates its
// error to every waiter, and nothing is cached — the next lookup leads a
// fresh pipeline run.
func TestSingleFlightErrorsSharedNotCached(t *testing.T) {
	c := newExpandCache(64)
	k := expandKey{keywords: "failing"}
	boom := errors.New("pipeline exploded")
	var calls atomic.Int32

	const followers = 3
	fn := func() (*Expansion, error) {
		calls.Add(1)
		deadline := time.Now().Add(5 * time.Second)
		for c.deduped.Load() < followers {
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(time.Millisecond)
		}
		return nil, boom
	}
	var wg sync.WaitGroup
	errs := make([]error, followers+1)
	for i := 0; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = c.getOrDo(context.Background(), k, fn)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("caller %d got %v, want the leader's error", i, err)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("pipeline ran %d times, want 1", calls.Load())
	}
	if _, ok := c.get(k); ok {
		t.Fatal("error result was cached")
	}
	// Errors are not cached: the next lookup runs the pipeline again.
	if _, _, err := c.getOrDo(context.Background(), k, func() (*Expansion, error) { calls.Add(1); return &Expansion{}, nil }); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Errorf("retry after error did not lead a fresh run (%d calls)", calls.Load())
	}
}

// TestExpandAllSingleFlightAcrossWorkers is the end-to-end regression for
// the DESIGN.md limitation this PR removes: a cold batch containing the
// same keywords N times must run the expansion pipeline once per unique
// key, under any interleaving of the worker pool.
func TestExpandAllSingleFlightAcrossWorkers(t *testing.T) {
	_, w := testSystem(t)
	s, err := FromWorld(w)
	if err != nil {
		t.Fatal(err)
	}
	const copies = 32
	unique := []string{w.Queries[0].Keywords, w.Queries[1].Keywords}
	var batch []string
	for i := 0; i < copies; i++ {
		batch = append(batch, unique[i%len(unique)])
	}
	exps, err := s.ExpandAll(context.Background(), batch, DefaultExpanderOptions(), BatchOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != len(batch) {
		t.Fatalf("got %d expansions for %d queries", len(exps), len(batch))
	}
	if got := s.expandCalls.Load(); got != uint64(len(unique)) {
		t.Errorf("pipeline ran %d times for %d unique keys (single-flight broken)", got, len(unique))
	}
	st := s.ExpandCacheStats()
	if lookups := st.Hits + st.Misses + st.Deduped; lookups != uint64(len(batch)) {
		t.Errorf("lookup accounting: %d, want %d (%+v)", lookups, len(batch), st)
	}
}

// TestCacheStatsConcurrent hammers one cache from many goroutines and
// checks the counters add up exactly — run under -race this also proves
// the locking discipline of the sharded LRU plus flight table.
func TestCacheStatsConcurrent(t *testing.T) {
	c := newExpandCache(8 * expandCacheShards)
	const (
		workers = 8
		rounds  = 500
		keys    = 40
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := expandKey{keywords: fmt.Sprintf("key-%d", (w+i)%keys)}
				if _, _, err := c.getOrDo(context.Background(), k, func() (*Expansion, error) {
					return &Expansion{Keywords: k.keywords}, nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.stats()
	if total := st.Hits + st.Misses + st.Deduped; total != workers*rounds {
		t.Errorf("lookups = %d, want %d (%+v)", total, workers*rounds, st)
	}
	if st.Misses < keys {
		t.Errorf("misses = %d, want >= %d distinct keys", st.Misses, keys)
	}
	if st.Entries > st.Capacity {
		t.Errorf("entries %d exceed capacity %d", st.Entries, st.Capacity)
	}
	if rate := st.HitRate(); rate <= 0 || rate >= 1 {
		t.Errorf("hit rate %g out of (0, 1)", rate)
	}
}
