package core

import (
	"context"
	"fmt"

	"github.com/querygraph/querygraph/internal/eval"
	"github.com/querygraph/querygraph/internal/graph"
	"github.com/querygraph/querygraph/internal/stats"
)

// AblationRow is one expansion strategy measured over the query set.
type AblationRow struct {
	Label string
	// MeanO is the mean objective O over all queries.
	MeanO float64
	// PrecisionAt maps rank cutoffs to mean precision.
	PrecisionAt map[int]float64
	// MeanFeatures is the average number of expansion features used.
	MeanFeatures float64
}

// AblationConfig controls the expander comparison.
type AblationConfig struct {
	// MaxFeatures caps every strategy's feature count for a fair fight
	// (default 10).
	MaxFeatures int
	// Workers bounds the per-query fan-out.
	Workers int
}

// CompareExpanders measures the online expansion strategies the design
// document calls ablations A1 and A2:
//
//	baseline            — the unexpanded keyword entities;
//	naive-links         — 1-hop link neighbors (the related-work style);
//	cycles (paper)      — the Expander with the paper-tuned filters;
//	cycles, no filter   — the Expander with the category-ratio and density
//	                      filters disabled, isolating their effect;
//	cycles + frequency  — ranking features by their frequency across
//	                      accepted cycles (the paper's §4 open question);
//	cycles + aliases    — adding redirect titles of selected features (the
//	                      paper's §4 redirect proposal).
func (s *System) CompareExpanders(ctx context.Context, queries []Query, cfg AblationConfig) ([]AblationRow, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("core: no queries for ablation")
	}
	if cfg.MaxFeatures <= 0 {
		cfg.MaxFeatures = 10
	}

	noFilter := DefaultExpanderOptions()
	noFilter.MinCategoryRatio = 0
	noFilter.MaxCategoryRatio = 1
	noFilter.MinDensity = -1 // accept everything
	noFilter.MaxFeatures = cfg.MaxFeatures
	tuned := DefaultExpanderOptions()
	tuned.MaxFeatures = cfg.MaxFeatures
	byFreq := tuned
	byFreq.RankByFrequency = true
	withAliases := tuned
	withAliases.IncludeRedirectAliases = true

	strategies := []struct {
		label  string
		expand func(q Query) ([]graph.NodeID, error)
	}{
		{"baseline (no expansion)", func(Query) ([]graph.NodeID, error) { return nil, nil }},
		{"naive 1-hop links", func(q Query) ([]graph.NodeID, error) {
			exp, err := s.ExpandNaive(ctx, q.Keywords, cfg.MaxFeatures)
			if err != nil {
				return nil, err
			}
			return featureNodes(exp), nil
		}},
		{"dense cycles (paper)", func(q Query) ([]graph.NodeID, error) {
			exp, err := s.Expand(ctx, q.Keywords, tuned)
			if err != nil {
				return nil, err
			}
			return featureNodes(exp), nil
		}},
		{"cycles, filters off", func(q Query) ([]graph.NodeID, error) {
			exp, err := s.Expand(ctx, q.Keywords, noFilter)
			if err != nil {
				return nil, err
			}
			return featureNodes(exp), nil
		}},
		{"cycles + frequency rank (§4)", func(q Query) ([]graph.NodeID, error) {
			exp, err := s.Expand(ctx, q.Keywords, byFreq)
			if err != nil {
				return nil, err
			}
			return featureNodes(exp), nil
		}},
		{"cycles + redirect aliases (§4)", func(q Query) ([]graph.NodeID, error) {
			exp, err := s.Expand(ctx, q.Keywords, withAliases)
			if err != nil {
				return nil, err
			}
			return featureNodes(exp), nil
		}},
	}

	var rows []AblationRow
	for _, strat := range strategies {
		os := make([]float64, len(queries))
		precs := make(map[int][]float64, len(eval.DefaultRanks))
		feats := make([]float64, len(queries))
		for _, r := range eval.DefaultRanks {
			precs[r] = make([]float64, len(queries))
		}
		err := forEachQuery(ctx, len(queries), cfg.Workers, func(i int) error {
			q := queries[i]
			relevant := eval.NewRelevance(q.Relevant)
			features, err := strat.expand(q)
			if err != nil {
				return err
			}
			arts := append(s.LinkKeywords(q.Keywords), features...)
			o, ranked, err := s.EvaluateArticles(q.Keywords, arts, relevant)
			if err != nil {
				return err
			}
			os[i] = o
			feats[i] = float64(len(features))
			for _, r := range eval.DefaultRanks {
				p, err := eval.PrecisionAtR(ranked, relevant, r)
				if err != nil {
					return err
				}
				precs[r][i] = p
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("core: ablation %q: %w", strat.label, err)
		}
		row := AblationRow{
			Label:        strat.label,
			MeanO:        stats.Mean(os),
			MeanFeatures: stats.Mean(feats),
			PrecisionAt:  make(map[int]float64, len(precs)),
		}
		for r, vs := range precs {
			row.PrecisionAt[r] = stats.Mean(vs)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func featureNodes(exp *Expansion) []graph.NodeID {
	out := make([]graph.NodeID, len(exp.Features))
	for i, f := range exp.Features {
		out[i] = f.Node
	}
	return out
}
