package core

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestParallelismUsesGOMAXPROCS pins the documented BatchOptions.Workers
// contract: "<= 0 means GOMAXPROCS" — GOMAXPROCS, not NumCPU.
func TestParallelismUsesGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	// Pick a value that differs from NumCPU so the test can tell the two
	// apart on any machine.
	pinned := runtime.NumCPU() + 3
	runtime.GOMAXPROCS(pinned)
	if got := parallelism(0); got != pinned {
		t.Errorf("parallelism(0) = %d, want GOMAXPROCS = %d", got, pinned)
	}
	if got := parallelism(-7); got != pinned {
		t.Errorf("parallelism(-7) = %d, want GOMAXPROCS = %d", got, pinned)
	}
	if got := parallelism(5); got != 5 {
		t.Errorf("parallelism(5) = %d, want the explicit request", got)
	}
}

// TestForEachQueryCancelStopsScheduling proves that cancelling the batch
// context stops the producer: with every in-flight task blocked until
// cancellation, no more than one task per worker ever starts, the
// remaining indices are never scheduled, and the batch reports ctx.Err().
func TestForEachQueryCancelStopsScheduling(t *testing.T) {
	const (
		n       = 100
		workers = 4
	)
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	allBusy := make(chan struct{})

	err := func() error {
		defer cancel()
		done := make(chan error, 1)
		go func() {
			done <- forEachQuery(ctx, n, workers, func(int) error {
				if started.Add(1) == workers {
					close(allBusy)
				}
				<-ctx.Done()
				return nil
			})
		}()
		select {
		case <-allBusy:
		case <-time.After(5 * time.Second):
			t.Fatal("workers never became busy")
		}
		cancel()
		select {
		case err := <-done:
			return err
		case <-time.After(5 * time.Second):
			t.Fatal("forEachQuery did not return after cancellation")
			return nil
		}
	}()

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The in-flight leak is bounded by the worker count: the producer may
	// have handed out at most one extra index before observing Done.
	if got := started.Load(); got > workers+1 {
		t.Errorf("%d tasks ran after cancellation, want at most %d in flight", got, workers+1)
	}
}

// TestForEachQueryWorkerErrorBeatsCancel keeps the fail-fast contract: a
// worker error recorded before cancellation is what the batch returns.
func TestForEachQueryWorkerErrorBeatsCancel(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := forEachQuery(ctx, 50, 2, func(i int) error {
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the worker error", err)
	}
}

// TestExpandPreCancelledContext: a Client-style call with an already-dead
// context returns ctx.Err() without running the pipeline or touching the
// cache.
func TestExpandPreCancelledContext(t *testing.T) {
	s, w := testSystem(t)
	before := s.expandCalls.Load()
	stBefore := s.ExpandCacheStats()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Expand(ctx, w.Queries[0].Keywords, DefaultExpanderOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("Expand err = %v, want context.Canceled", err)
	}
	if _, err := s.ExpandNaive(ctx, w.Queries[0].Keywords, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExpandNaive err = %v, want context.Canceled", err)
	}
	if _, err := s.ExpandAll(ctx, []string{w.Queries[0].Keywords}, DefaultExpanderOptions(), BatchOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExpandAll err = %v, want context.Canceled", err)
	}
	if _, err := s.BuildGroundTruth(ctx, QueriesFromWorld(w)[0], gtConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("BuildGroundTruth err = %v, want context.Canceled", err)
	}

	if got := s.expandCalls.Load(); got != before {
		t.Errorf("pipeline ran %d times under a pre-cancelled context", got-before)
	}
	stAfter := s.ExpandCacheStats()
	if stAfter.Misses != stBefore.Misses || stAfter.Hits != stBefore.Hits {
		t.Errorf("cache was consulted under a pre-cancelled context: %+v -> %+v", stBefore, stAfter)
	}
}

// TestSingleFlightWaiterAbandonsOnCancel: a follower whose context dies
// mid-wait returns ctx.Err() immediately, while the leader completes and
// its result still lands in the cache for later lookups.
func TestSingleFlightWaiterAbandonsOnCancel(t *testing.T) {
	c := newExpandCache(64)
	k := expandKey{keywords: "slow query"}
	want := &Expansion{Keywords: "slow query"}
	release := make(chan struct{})

	leaderErr := make(chan error, 1)
	go func() {
		exp, _, err := c.getOrDo(context.Background(), k, func() (*Expansion, error) {
			<-release
			return want, nil
		})
		if err == nil && exp != want {
			err = errors.New("leader got a foreign result")
		}
		leaderErr <- err
	}()

	// Wait until the leader holds the flight entry, then join as follower.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := c.shardFor(k)
		s.mu.Lock()
		_, inFlight := s.flight[k]
		s.mu.Unlock()
		if inFlight {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leader never registered the flight")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	followerErr := make(chan error, 1)
	go func() {
		_, _, err := c.getOrDo(ctx, k, func() (*Expansion, error) {
			return nil, errors.New("follower must never run the pipeline")
		})
		followerErr <- err
	}()
	// Let the follower actually join the flight before cancelling.
	for c.deduped.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("follower never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-followerErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("follower err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled follower still waiting on the leader")
	}

	// The leader is unaffected and publishes its result.
	close(release)
	if err := <-leaderErr; err != nil {
		t.Fatalf("leader: %v", err)
	}
	if got, ok := c.get(k); !ok || got != want {
		t.Fatalf("leader result not cached after follower abandoned (ok=%v)", ok)
	}
}

// TestExpandAllCancelledMidBatch cancels a live batch and checks both the
// returned error and that the batch stopped early (bounded work).
func TestExpandAllCancelledMidBatch(t *testing.T) {
	_, w := testSystem(t)
	// A fresh system so this test owns the pipeline counter.
	fresh, err := FromWorld(w)
	if err != nil {
		t.Fatal(err)
	}
	const repeat = 400
	keywords := make([]string, 0, repeat*len(w.Queries))
	for i := 0; i < repeat; i++ {
		for _, q := range w.Queries {
			// Unique keys so every task is a cold pipeline run.
			keywords = append(keywords, q.Keywords+" variant "+string(rune('a'+i%26))+string(rune('a'+(i/26)%26)))
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Cancel as soon as some work has happened.
		deadline := time.Now().Add(5 * time.Second)
		for fresh.expandCalls.Load() == 0 && time.Now().Before(deadline) {
			time.Sleep(100 * time.Microsecond)
		}
		cancel()
	}()
	_, err = fresh.ExpandAll(ctx, keywords, DefaultExpanderOptions(), BatchOptions{Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran := fresh.expandCalls.Load(); ran == 0 || ran >= uint64(len(keywords)) {
		t.Errorf("pipeline ran %d/%d times; cancellation should stop the batch early but after some work", ran, len(keywords))
	}
}
