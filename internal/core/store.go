package core

import (
	"fmt"
	"io"
	"os"

	"github.com/querygraph/querygraph/internal/linking"
	"github.com/querygraph/querygraph/internal/search"
	"github.com/querygraph/querygraph/internal/store"
	"github.com/querygraph/querygraph/internal/text"
)

// Save writes the system's complete serving state — knowledge base, corpus,
// positional index and engine configuration — plus an optional query
// benchmark as a versioned, checksummed binary snapshot (internal/store).
// LoadSystem on the written bytes serves bit-identical Search, Expand and
// Analyze results without re-running world generation, relevant-text
// extraction, entity-dictionary construction or indexing.
func (s *System) Save(w io.Writer, queries []Query) error {
	return store.Write(w, s.Archive(queries))
}

// Archive is the system's complete serving state in snapshot form — what
// Save writes and what the shard partitioner (internal/shard) splits. The
// archive shares the system's substrates; it must be treated as read-only.
func (s *System) Archive(queries []Query) *store.Archive {
	arch := &store.Archive{
		Mu:                  s.Engine.Mu(),
		IncludeKeywordTerms: s.includeKeywordTerms,
		RemoveStopwords:     s.analyzer.RemovesStopwords(),
		Stem:                s.analyzer.Stems(),
		Snapshot:            s.Snapshot,
		Collection:          s.Collection,
		Index:               s.Engine.Index(),
	}
	if len(queries) > 0 {
		arch.Queries = make([]store.Query, len(queries))
		for i, q := range queries {
			arch.Queries[i] = store.Query(q)
		}
	}
	return arch
}

// LoadSystem decodes a snapshot written by Save and assembles a serving
// System around the decoded state. This is the build-once/serve-instantly
// startup path: the graph, title dictionary, corpus and inverted index are
// decoded directly through the substrate Load constructors, not rebuilt,
// so startup cost is dominated by reading the bytes (BenchmarkLoadSystem
// vs BenchmarkRebuildSystem). The snapshot's engine configuration — mu,
// keyword-term inclusion, analyzer steps — is restored first and opts
// apply on top, so WithExpandCache and friends compose; note that
// WithAnalyzer only changes query-side analysis (the stored index keeps
// the terms it was built with) and will normally break score parity.
// The saved query benchmark is returned alongside (empty when none was
// saved).
// LoadSystemFile is LoadSystem over a snapshot file path — the one-liner
// every -load flag (qbench, qgraph, the examples) goes through.
func LoadSystemFile(path string, opts ...SystemOption) (*System, []Query, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return LoadSystem(f, opts...)
}

func LoadSystem(r io.Reader, opts ...SystemOption) (*System, []Query, error) {
	arch, err := store.Read(r)
	if err != nil {
		return nil, nil, err
	}
	return SystemFromArchive(arch, opts...)
}

// SystemFromArchive assembles a serving System around an already decoded
// archive — the assembly half of LoadSystem, split out so the sharded
// runtime (internal/shard) can inspect the archive's partition identity
// before wrapping each shard in its own System.
func SystemFromArchive(arch *store.Archive, opts ...SystemOption) (*System, []Query, error) {
	cfg := systemConfig{
		analyzer:            text.NewAnalyzer(arch.RemoveStopwords, arch.Stem),
		mu:                  arch.Mu,
		includeKeywordTerms: arch.IncludeKeywordTerms,
		expandCacheSize:     DefaultExpandCacheSize,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	engine, err := search.NewEngine(arch.Index, cfg.analyzer, search.WithMu(cfg.mu))
	if err != nil {
		return nil, nil, fmt.Errorf("core: load: %w", err)
	}
	var queries []Query
	if len(arch.Queries) > 0 {
		queries = make([]Query, len(arch.Queries))
		for i, q := range arch.Queries {
			queries[i] = Query(q)
		}
	}
	return &System{
		Snapshot:            arch.Snapshot,
		Collection:          arch.Collection,
		Engine:              engine,
		Linker:              linking.New(arch.Snapshot),
		analyzer:            cfg.analyzer,
		includeKeywordTerms: cfg.includeKeywordTerms,
		expandCache:         newExpandCache(cfg.expandCacheSize),
	}, queries, nil
}
