// Package core ties the substrates into the paper's pipeline and exposes
// the public API of the reproduction:
//
//   - System: a knowledge base + document collection + search engine +
//     entity linker, built once and safe for concurrent reads;
//   - ground-truth construction (Section 2): L(q.k), L(q.D), the
//     ADD/REMOVE/SWAP search for X(q) and the query-graph assembly;
//   - Analyze: every measurement behind the paper's Tables 2–4 and
//     Figures 5, 6, 7a, 7b and 9;
//   - Expander: the paper's proposed future work — an online query
//     expansion engine that mines dense cycles with a ~30% category ratio
//     from the Wikipedia neighborhood of the query entities.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/querygraph/querygraph/internal/corpus"
	"github.com/querygraph/querygraph/internal/eval"
	"github.com/querygraph/querygraph/internal/graph"
	"github.com/querygraph/querygraph/internal/linking"
	"github.com/querygraph/querygraph/internal/search"
	"github.com/querygraph/querygraph/internal/synth"
	"github.com/querygraph/querygraph/internal/text"
	"github.com/querygraph/querygraph/internal/wiki"
)

// System is the assembled environment: everything the pipeline needs to
// link, search and evaluate queries against one knowledge base and corpus.
type System struct {
	Snapshot   *wiki.Snapshot
	Collection *corpus.Collection
	Engine     *search.Engine
	Linker     *linking.Linker

	analyzer *text.Analyzer
	// includeKeywordTerms adds the raw query keywords as bare terms to
	// every title query. The paper writes queries from article titles only;
	// the option exists for the ablation benchmark.
	includeKeywordTerms bool
	// expandCache memoizes Expand results per (keywords, options); nil when
	// caching is disabled.
	expandCache *expandCache
	// expandCalls counts invocations of the uncached expansion pipeline —
	// the observable the single-flight regression tests assert on.
	expandCalls atomic.Uint64
}

// SystemOption configures NewSystem.
type SystemOption func(*systemConfig)

type systemConfig struct {
	analyzer            *text.Analyzer
	mu                  float64
	includeKeywordTerms bool
	expandCacheSize     int
}

// DefaultExpandCacheSize is the expansion cache capacity NewSystem uses
// unless WithExpandCache overrides it.
const DefaultExpandCacheSize = 1024

// WithAnalyzer overrides the text analysis chain (default: stopword removal
// plus Porter stemming, applied consistently to documents and queries).
func WithAnalyzer(an *text.Analyzer) SystemOption {
	return func(c *systemConfig) { c.analyzer = an }
}

// WithMu overrides the engine's Dirichlet smoothing parameter.
func WithMu(mu float64) SystemOption {
	return func(c *systemConfig) { c.mu = mu }
}

// WithKeywordTerms includes the raw keywords as bare terms in title
// queries (ablation; the paper uses titles only).
func WithKeywordTerms(on bool) SystemOption {
	return func(c *systemConfig) { c.includeKeywordTerms = on }
}

// WithExpandCache overrides the expansion cache capacity (default
// DefaultExpandCacheSize). The cache is sharded 16 ways and the per-shard
// capacity rounds up, so the enforced total — what CacheStats reports as
// Capacity — is the given capacity rounded up to a multiple of 16.
// capacity <= 0 disables caching entirely.
func WithExpandCache(capacity int) SystemOption {
	return func(c *systemConfig) { c.expandCacheSize = capacity }
}

// NewSystem indexes the collection and builds the engine and linker.
func NewSystem(snap *wiki.Snapshot, coll *corpus.Collection, opts ...SystemOption) (*System, error) {
	if snap == nil {
		return nil, fmt.Errorf("core: nil snapshot")
	}
	if coll == nil {
		return nil, fmt.Errorf("core: nil collection")
	}
	cfg := systemConfig{
		analyzer:        text.NewAnalyzer(true, true),
		mu:              search.DefaultMu,
		expandCacheSize: DefaultExpandCacheSize,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	ix := search.IndexCollection(coll, cfg.analyzer)
	engine, err := search.NewEngine(ix, cfg.analyzer, search.WithMu(cfg.mu))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &System{
		Snapshot:            snap,
		Collection:          coll,
		Engine:              engine,
		Linker:              linking.New(snap),
		analyzer:            cfg.analyzer,
		includeKeywordTerms: cfg.includeKeywordTerms,
		expandCache:         newExpandCache(cfg.expandCacheSize),
	}, nil
}

// FromWorld assembles a System directly from a generated world.
func FromWorld(w *synth.World, opts ...SystemOption) (*System, error) {
	return NewSystem(w.Snapshot, w.Collection, opts...)
}

// Query is one benchmark query in pipeline form.
type Query struct {
	ID       int
	Keywords string
	Relevant []int32
}

// QueriesFromWorld converts the generator's benchmark queries.
func QueriesFromWorld(w *synth.World) []Query {
	out := make([]Query, len(w.Queries))
	for i, q := range w.Queries {
		out[i] = Query{ID: q.ID, Keywords: q.Keywords, Relevant: q.Relevant}
	}
	return out
}

// MaxRank is the deepest rank cutoff the paper evaluates (top-15).
const MaxRank = 15

// LinkKeywords computes L(q.k): the main articles mentioned in the query
// keywords.
func (s *System) LinkKeywords(keywords string) []graph.NodeID {
	return s.Linker.LinkMain(keywords)
}

// LinkDocuments computes L(D): the union of main articles mentioned in the
// given documents' relevant text.
func (s *System) LinkDocuments(docs []int32) ([]graph.NodeID, error) {
	seen := make(map[graph.NodeID]struct{})
	for _, d := range docs {
		doc, err := s.Collection.Doc(corpus.DocID(d))
		if err != nil {
			return nil, fmt.Errorf("core: L(q.D): %w", err)
		}
		for _, id := range s.Linker.LinkMain(doc.Text) {
			seen[id] = struct{}{}
		}
	}
	out := make([]graph.NodeID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// titleQuery builds the INDRI-style query for a set of articles: one exact
// phrase per title, per the paper's Section 2.2. When no article has a
// usable title the raw keywords back the query off so that the baseline of
// an entity-less query is still defined.
func (s *System) titleQuery(keywords string, articles []graph.NodeID) (search.Node, bool) {
	titles := make([]string, 0, len(articles))
	for _, a := range articles {
		titles = append(titles, s.Snapshot.Name(a))
	}
	kw := ""
	if s.includeKeywordTerms || len(titles) == 0 {
		kw = keywords
	}
	return search.BuildTitleQuery(kw, titles, s.analyzer)
}

// EvaluateArticles computes O(A, D): it writes the title query for the
// articles, retrieves the top-15 and averages precision over the paper's
// rank cutoffs. It also returns the ranked documents for reuse.
func (s *System) EvaluateArticles(keywords string, articles []graph.NodeID, relevant eval.Relevance) (float64, []int32, error) {
	node, ok := s.titleQuery(keywords, articles)
	if !ok {
		return 0, nil, nil // nothing to search for: zero precision by definition
	}
	results, err := s.Engine.Search(node, MaxRank)
	if err != nil {
		return 0, nil, fmt.Errorf("core: evaluate: %w", err)
	}
	ranked := search.Docs(results)
	return eval.O(ranked, relevant), ranked, nil
}

// parallelism returns the worker count for per-query fan-out; <= 0 means
// GOMAXPROCS, matching the documented BatchOptions.Workers contract.
func parallelism(requested int) int {
	if requested > 0 {
		return requested
	}
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// ForEach runs fn over the indices [0, n) on a bounded worker pool with
// the batch layer's scheduling contract (fail fast, drain on cancel) —
// the exported form of forEachQuery for sibling internal packages
// (internal/shard drives per-query scatter-gather through it).
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	return forEachQuery(ctx, n, workers, fn)
}

// forEachQuery runs fn over the indices [0, n) on a bounded worker pool,
// returning the first recorded error. Once any worker reports an error —
// or ctx is cancelled — the producer stops scheduling new indices, so a
// failing or abandoned batch ends after at most the work already in flight
// rather than grinding through the rest. A cancelled ctx is reported as
// ctx.Err() unless a worker error was recorded first.
func forEachQuery(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n == 0 {
		return ctx.Err()
	}
	workers = parallelism(workers)
	if workers > n {
		workers = n
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		failed   atomic.Bool
	)
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				// A cancelled batch still drains the channel so the
				// producer never blocks, but runs no further queries.
				if ctx.Err() != nil {
					continue
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					failed.Store(true)
				}
			}
		}()
	}
	done := ctx.Done()
produce:
	for i := 0; i < n && !failed.Load(); i++ {
		select {
		case idx <- i:
		case <-done:
			break produce
		}
	}
	close(idx)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
