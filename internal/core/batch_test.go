package core

import (
	"context"
	"reflect"
	"sync/atomic"
	"testing"

	"github.com/querygraph/querygraph/internal/search"
)

func TestSearchAllMatchesSequentialOrder(t *testing.T) {
	s, w := testSystem(t)
	var nodes []search.Node
	for _, q := range w.Queries {
		node, err := s.Engine.Parse(q.Keywords)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
	}
	want := make([][]search.Result, len(nodes))
	for i, n := range nodes {
		rs, err := s.Engine.Search(n, MaxRank)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rs
	}
	for _, workers := range []int{0, 1, 3} {
		got, err := s.SearchAll(context.Background(), nodes, MaxRank, BatchOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: batch results differ from sequential", workers)
		}
	}
	// Empty batch is a no-op, not an error.
	if out, err := s.SearchAll(context.Background(), nil, MaxRank, BatchOptions{}); err != nil || len(out) != 0 {
		t.Fatalf("empty batch = %v, %v", out, err)
	}
}

func TestSearchAllEmptyResultContract(t *testing.T) {
	s, _ := testSystem(t)
	node, err := s.Engine.Parse("zzzunknownterm")
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.SearchAll(context.Background(), []search.Node{node}, MaxRank, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] == nil || len(out[0]) != 0 {
		t.Fatalf("no-match batch entry = %#v, want empty non-nil slice", out[0])
	}
}

func TestSearchAllErrorPropagation(t *testing.T) {
	s, w := testSystem(t)
	good, err := s.Engine.Parse(w.Queries[0].Keywords)
	if err != nil {
		t.Fatal(err)
	}
	// An empty #combine node fails flatten inside the engine.
	nodes := []search.Node{good, search.Combine{}, good}
	if _, err := s.SearchAll(context.Background(), nodes, MaxRank, BatchOptions{Workers: 2}); err == nil {
		t.Fatal("batch with a broken query should fail")
	}
}

func TestExpandAllOrderingAndCacheHits(t *testing.T) {
	s, w := testSystem(t)
	opts := DefaultExpanderOptions()
	var keywords []string
	for _, q := range w.Queries[:6] {
		keywords = append(keywords, q.Keywords)
	}
	before := s.ExpandCacheStats()

	cold, err := s.ExpandAll(context.Background(), keywords, opts, BatchOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(cold) != len(keywords) {
		t.Fatalf("got %d expansions", len(cold))
	}
	for i, exp := range cold {
		if exp == nil || exp.Keywords != keywords[i] {
			t.Fatalf("entry %d out of order: %+v", i, exp)
		}
	}
	warm, err := s.ExpandAll(context.Background(), keywords, opts, BatchOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	after := s.ExpandCacheStats()
	if hits := after.Hits - before.Hits; hits < uint64(len(keywords)) {
		t.Errorf("warm batch produced %d cache hits, want >= %d", hits, len(keywords))
	}
	if after.Entries == 0 || after.Capacity != DefaultExpandCacheSize {
		t.Errorf("cache stats = %+v", after)
	}
	if after.HitRate() <= 0 || after.HitRate() > 1 {
		t.Errorf("hit rate = %g", after.HitRate())
	}
	// Warm results come from the cache: same feature rankings.
	for i := range warm {
		if !reflect.DeepEqual(cold[i].FeatureTitles(), warm[i].FeatureTitles()) {
			t.Errorf("entry %d: cached expansion differs", i)
		}
	}
	// Different options must not alias cached entries.
	other := opts
	other.MaxFeatures = 1
	capped, err := s.ExpandAll(context.Background(), keywords[:1], other, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(capped[0].Features) > 1 {
		t.Errorf("options ignored on cache lookup: %d features", len(capped[0].Features))
	}
}

func TestExpandAllErrorPropagation(t *testing.T) {
	s, w := testSystem(t)
	bad := DefaultExpanderOptions()
	bad.MinCategoryRatio = 0.9
	bad.MaxCategoryRatio = 0.1
	if _, err := s.ExpandAll(context.Background(), []string{w.Queries[0].Keywords}, bad, BatchOptions{}); err == nil {
		t.Fatal("invalid options should fail the batch")
	}
}

func TestExpandCacheDisabled(t *testing.T) {
	_, w := testSystem(t)
	s, err := FromWorld(w, WithExpandCache(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Expand(context.Background(), w.Queries[0].Keywords, DefaultExpanderOptions()); err != nil {
		t.Fatal(err)
	}
	if st := s.ExpandCacheStats(); st != (CacheStats{}) {
		t.Errorf("disabled cache reported %+v", st)
	}
}

// TestExpandCacheLRU unit-tests the sharded LRU: keys sharing keywords
// land in one shard, so eviction order within a shard is observable.
func TestExpandCacheLRU(t *testing.T) {
	optsFor := func(i int) ExpanderOptions {
		o := DefaultExpanderOptions()
		o.MaxFeatures = i + 1
		return o
	}
	keyFor := func(i int) expandKey {
		return expandKey{keywords: "same shard", opts: optsFor(i)}
	}
	c := newExpandCache(2 * expandCacheShards) // per-shard capacity 2
	a, b, d := keyFor(0), keyFor(1), keyFor(2)
	c.put(a, &Expansion{Keywords: "a"})
	c.put(b, &Expansion{Keywords: "b"})
	if exp, ok := c.get(a); !ok || exp.Keywords != "a" {
		t.Fatal("a should be cached")
	}
	// a was just used, so inserting d evicts b.
	c.put(d, &Expansion{Keywords: "d"})
	if _, ok := c.get(b); ok {
		t.Error("b should have been evicted as least recently used")
	}
	for _, k := range []expandKey{a, d} {
		if _, ok := c.get(k); !ok {
			t.Errorf("%+v should have survived eviction", k.opts.MaxFeatures)
		}
	}
	// Re-putting an existing key updates in place without eviction.
	c.put(a, &Expansion{Keywords: "a2"})
	if exp, ok := c.get(a); !ok || exp.Keywords != "a2" {
		t.Error("re-put should update the entry")
	}
	if _, ok := c.get(d); !ok {
		t.Error("d should still be cached after re-put of a")
	}
	st := c.stats()
	if st.Entries != 2 {
		t.Errorf("entries = %d, want 2", st.Entries)
	}
}

// TestForEachQueryStopsSchedulingAfterError is the regression test for the
// batch fail-fast fix: with one worker, an error on the first index must
// stop the producer after at most one already-scheduled index.
func TestForEachQueryStopsSchedulingAfterError(t *testing.T) {
	var calls atomic.Int64
	err := forEachQuery(context.Background(), 100, 1, func(i int) error {
		calls.Add(1)
		if i == 0 {
			return errTest
		}
		return nil
	})
	if err != errTest {
		t.Fatalf("err = %v, want errTest", err)
	}
	// The worker records the error before receiving the next index, and
	// the producer re-checks the failure flag before every send, so at
	// most one extra index (already past the check) can run.
	if n := calls.Load(); n > 2 {
		t.Errorf("fn ran %d times after an immediate error, want <= 2", n)
	}
}
