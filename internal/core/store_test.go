package core

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/querygraph/querygraph/internal/synth"
)

// TestSaveLoadRoundTripIdentical is the snapshot subsystem's contract
// proof: on randomized small worlds, a system decoded by LoadSystem
// returns bit-identical Search, Expand and Analyze results to the freshly
// constructed system it was saved from. Scores are float64-compared with
// ==, not a tolerance — the decoded index must reproduce the exact same
// arithmetic, not merely similar rankings.
func TestSaveLoadRoundTripIdentical(t *testing.T) {
	for _, seed := range []int64{3, 11, 29} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			cfg := synth.Default()
			cfg.Seed = seed
			cfg.Topics = 4 + rng.Intn(4)
			cfg.ArticlesPerTopic = 8 + rng.Intn(8)
			cfg.DocsPerTopic = 10 + rng.Intn(10)
			cfg.Queries = 6 + rng.Intn(5)
			cfg.NoiseVocab = 60
			w, err := synth.Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := FromWorld(w)
			if err != nil {
				t.Fatal(err)
			}
			qs := QueriesFromWorld(w)

			var buf bytes.Buffer
			if err := fresh.Save(&buf, qs); err != nil {
				t.Fatalf("Save: %v", err)
			}
			loaded, loadedQs, err := LoadSystem(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("LoadSystem: %v", err)
			}
			if !reflect.DeepEqual(loadedQs, qs) {
				t.Fatalf("query benchmark did not survive the round trip:\ngot  %+v\nwant %+v", loadedQs, qs)
			}

			// Expand and Search parity per benchmark query.
			opts := DefaultExpanderOptions()
			for _, q := range qs {
				e1, err := fresh.Expand(context.Background(), q.Keywords, opts)
				if err != nil {
					t.Fatal(err)
				}
				e2, err := loaded.Expand(context.Background(), q.Keywords, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(e1, e2) {
					t.Fatalf("query %d: expansions differ:\nfresh  %+v\nloaded %+v", q.ID, e1, e2)
				}
				n1, ok1 := e1.Query(fresh)
				n2, ok2 := e2.Query(loaded)
				if ok1 != ok2 {
					t.Fatalf("query %d: buildability differs (%v vs %v)", q.ID, ok1, ok2)
				}
				if !ok1 {
					continue
				}
				r1, err := fresh.Engine.Search(n1, MaxRank)
				if err != nil {
					t.Fatal(err)
				}
				r2, err := loaded.Engine.Search(n2, MaxRank)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(r1, r2) {
					t.Fatalf("query %d: rankings differ:\nfresh  %v\nloaded %v", q.ID, r1, r2)
				}
			}

			// Analyze parity: the full Tables 2-4 / Figures 5-9 pipeline.
			gts1, err := fresh.BuildAllGroundTruths(context.Background(), qs, gtConfig())
			if err != nil {
				t.Fatal(err)
			}
			gts2, err := loaded.BuildAllGroundTruths(context.Background(), qs, gtConfig())
			if err != nil {
				t.Fatal(err)
			}
			a1, err := fresh.Analyze(context.Background(), gts1, AnalysisConfig{})
			if err != nil {
				t.Fatal(err)
			}
			a2, err := loaded.Analyze(context.Background(), gts2, AnalysisConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a1, a2) {
				t.Fatalf("analyses differ:\nfresh  %+v\nloaded %+v", a1, a2)
			}
		})
	}
}

// TestSaveLoadRestoresEngineConfig proves non-default engine configuration
// survives: mu, keyword-term inclusion and analyzer steps are encoded in
// the meta section, and options still apply on top at load time.
func TestSaveLoadRestoresEngineConfig(t *testing.T) {
	_, w := testSystem(t)
	s, err := FromWorld(w, WithMu(1234), WithKeywordTerms(true))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf, nil); err != nil {
		t.Fatal(err)
	}
	loaded, qs, err := LoadSystem(bytes.NewReader(buf.Bytes()), WithExpandCache(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 0 {
		t.Errorf("no queries were saved, got %d", len(qs))
	}
	if got := loaded.Engine.Mu(); got != 1234 {
		t.Errorf("mu not restored: got %g", got)
	}
	if !loaded.includeKeywordTerms {
		t.Error("includeKeywordTerms not restored")
	}
	if !loaded.analyzer.RemovesStopwords() || !loaded.analyzer.Stems() {
		t.Error("analyzer steps not restored")
	}
	if loaded.expandCache != nil {
		t.Error("WithExpandCache(0) ignored by LoadSystem")
	}
}
