package core

import (
	"context"
	"fmt"
	"sort"

	"github.com/querygraph/querygraph/internal/cycles"
	"github.com/querygraph/querygraph/internal/graph"
	"github.com/querygraph/querygraph/internal/search"
)

// ExpanderOptions tune the online cycle-based expansion engine. The
// defaults encode the paper's findings: cycles up to length 5, preferring
// dense cycles whose category ratio sits around 30%.
type ExpanderOptions struct {
	// MaxCycleLen caps cycle enumeration (default 5).
	MaxCycleLen int
	// Radius is the BFS neighborhood radius around the query entities that
	// bounds the candidate graph (default 2; the paper observes expansion
	// features up to distance 3, which a radius-2 ball around *all* query
	// articles covers in practice).
	Radius int
	// MaxNeighborhood caps the candidate graph's node count to keep
	// enumeration real-time (default 400, about twice the paper's average
	// query-graph size).
	MaxNeighborhood int
	// MinCategoryRatio / MaxCategoryRatio bound the category ratio of
	// accepted cycles of length >= 3 (defaults 0.2 and 0.5: "around the
	// 30%"). Category-free cycles such as the paper's sheep–quarantine–
	// anthrax triangle are rejected by the lower bound.
	//
	// Historical footgun: when both are zero AND ExplicitBand is false,
	// withDefaults treats the pair as "unset" and substitutes the paper
	// band, which makes an explicit all-zero band unexpressible. The
	// public querygraph package always normalizes options itself and sets
	// ExplicitBand, so the sentinel only ever fires for legacy zero-value
	// callers inside this module.
	MinCategoryRatio, MaxCategoryRatio float64
	// ExplicitBand marks the category-ratio band as deliberately set,
	// disabling the dual-zero default substitution above.
	ExplicitBand bool
	// MinDensity is the minimum density of extra edges for cycles of
	// length >= 4 (default 0.25; length-3 cycles have little room for
	// extra edges, so the category-ratio filter does the work there).
	MinDensity float64
	// MaxFeatures caps the returned expansion features (default 10).
	MaxFeatures int
	// KeepTwoCycles keeps reciprocal-link pairs regardless of filters
	// (default true; the paper finds them scarce but highest-contributing).
	KeepTwoCycles bool
	// RankByFrequency ranks candidate features by the number of accepted
	// cycles that contain them (ties broken by the cycle-order rank)
	// instead of purely by cycle order. This implements the correlation
	// the paper's Section 4 leaves as future work: "how the frequency of a
	// given article in the cycles and the goodness of its title as
	// expansion feature are correlated".
	RankByFrequency bool
	// IncludeRedirectAliases additionally emits the redirect titles of
	// each selected feature as secondary features (sharing the feature's
	// provenance). The paper's Section 4 proposes studying redirects as
	// expansion features, noting they can never be found through cycles
	// themselves because a redirect cannot close a cycle.
	IncludeRedirectAliases bool
}

func (o ExpanderOptions) withDefaults() ExpanderOptions {
	if o.MaxCycleLen <= 0 {
		o.MaxCycleLen = 5
	}
	if o.Radius <= 0 {
		o.Radius = 2
	}
	if o.MaxNeighborhood <= 0 {
		o.MaxNeighborhood = 400
	}
	if !o.ExplicitBand && o.MinCategoryRatio == 0 && o.MaxCategoryRatio == 0 {
		o.MinCategoryRatio, o.MaxCategoryRatio = 0.2, 0.5
	}
	o.ExplicitBand = true
	if o.MinDensity == 0 {
		o.MinDensity = 0.25
	}
	if o.MaxFeatures <= 0 {
		o.MaxFeatures = 10
	}
	return o
}

// DefaultExpanderOptions returns the paper-tuned defaults. The zero value
// of ExpanderOptions behaves identically except KeepTwoCycles, which the
// zero value disables; DefaultExpanderOptions enables it.
func DefaultExpanderOptions() ExpanderOptions {
	o := ExpanderOptions{KeepTwoCycles: true}.withDefaults()
	return o
}

// Feature is one proposed expansion feature with its provenance.
type Feature struct {
	Node  graph.NodeID
	Title string
	// CycleLen, Density and CategoryRatio describe the best (densest)
	// accepted cycle that introduced the feature.
	CycleLen      int
	Density       float64
	CategoryRatio float64
}

// Expansion is the result of expanding one query.
type Expansion struct {
	Keywords      string
	QueryArticles []graph.NodeID
	Features      []Feature
	// CyclesConsidered / CyclesAccepted count the mined cycles before and
	// after the structural filters.
	CyclesConsidered, CyclesAccepted int
}

// FeatureTitles lists the feature titles in rank order.
func (e *Expansion) FeatureTitles() []string {
	out := make([]string, len(e.Features))
	for i, f := range e.Features {
		out[i] = f.Title
	}
	return out
}

// Query builds the expanded search query: exact phrases for the query
// entities and every feature, or ok=false when nothing is expandable.
func (e *Expansion) Query(s *System) (search.Node, bool) {
	arts := append([]graph.NodeID{}, e.QueryArticles...)
	for _, f := range e.Features {
		arts = append(arts, f.Node)
	}
	return s.titleQuery(e.Keywords, arts)
}

// Expand runs the online pipeline of the paper's conclusions: entity-link
// the keywords, induce the Wikipedia neighborhood of the entities, mine
// cycles containing an entity, keep the structurally promising cycles
// (dense, category ratio around 30%), and rank the articles they introduce.
//
// Results are memoized per (keywords, options) in the system's sharded LRU
// cache (see WithExpandCache), so repeated keywords hit memory, and
// concurrent cold misses on the same key are single-flighted: one caller
// runs the pipeline, the others wait and share its result. The returned
// Expansion may be shared with the cache and other callers and must be
// treated as read-only.
//
// A ctx that is already done returns ctx.Err() without touching the
// pipeline or the cache; a ctx that dies while another caller's pipeline
// run is in flight abandons the wait (the leader still completes and
// populates the cache).
func (s *System) Expand(ctx context.Context, keywords string, opts ExpanderOptions) (*Expansion, error) {
	exp, _, err := s.ExpandOutcome(ctx, keywords, opts)
	return exp, err
}

// ExpandOutcome is Expand plus the per-request cache outcome (hit, miss,
// single-flight dedup, or bypass when caching is disabled) — the form the
// instrumented public facade calls so observers can label each request.
func (s *System) ExpandOutcome(ctx context.Context, keywords string, opts ExpanderOptions) (*Expansion, CacheOutcome, error) {
	if err := ctx.Err(); err != nil {
		return nil, CacheBypass, err
	}
	opts = opts.withDefaults()
	if opts.MinCategoryRatio > opts.MaxCategoryRatio {
		return nil, CacheBypass, fmt.Errorf("core: invalid category ratio band [%g, %g]",
			opts.MinCategoryRatio, opts.MaxCategoryRatio)
	}
	key := expandKey{keywords: keywords, opts: opts}
	return s.expandCache.getOrDo(ctx, key, func() (*Expansion, error) {
		return s.expand(keywords, opts)
	})
}

// expand is the uncached expansion pipeline behind Expand; opts have
// already been defaulted and validated.
func (s *System) expand(keywords string, opts ExpanderOptions) (*Expansion, error) {
	s.expandCalls.Add(1)
	queryArts := s.LinkKeywords(keywords)
	exp := &Expansion{Keywords: keywords, QueryArticles: queryArts}
	if len(queryArts) == 0 {
		return exp, nil // nothing to anchor on; expansion is a no-op
	}

	// Bounded BFS ball around the query articles.
	g := s.Snapshot.Graph()
	dist := g.BFSDistances(queryArts, graph.ExcludeRedirects)
	type nd struct {
		id graph.NodeID
		d  int
	}
	ball := make([]nd, 0, len(dist))
	for id, d := range dist {
		if d <= opts.Radius {
			ball = append(ball, nd{id, d})
		}
	}
	// Nearest nodes first; cap the neighborhood deterministically.
	sort.Slice(ball, func(i, j int) bool {
		if ball[i].d != ball[j].d {
			return ball[i].d < ball[j].d
		}
		return ball[i].id < ball[j].id
	})
	if len(ball) > opts.MaxNeighborhood {
		ball = ball[:opts.MaxNeighborhood]
	}
	nodes := make([]graph.NodeID, len(ball))
	for i, n := range ball {
		nodes[i] = n.id
	}
	sub := g.Induce(nodes)

	var seeds []graph.NodeID
	for _, qa := range queryArts {
		if sid, ok := sub.ToSub[qa]; ok {
			seeds = append(seeds, sid)
		}
	}
	cs, err := cycles.Enumerate(sub.Graph, seeds, opts.MaxCycleLen, graph.ExcludeRedirects)
	if err != nil {
		return nil, fmt.Errorf("core: expand: %w", err)
	}
	exp.CyclesConsidered = len(cs)

	type accepted struct {
		m cycles.Metrics
		c cycles.Cycle
	}
	var kept []accepted
	for _, c := range cs {
		m, err := cycles.Measure(sub.Graph, c, graph.ExcludeRedirects)
		if err != nil {
			return nil, err
		}
		switch {
		case m.Length == 2:
			if !opts.KeepTwoCycles {
				continue
			}
		case m.CategoryRatio < opts.MinCategoryRatio || m.CategoryRatio > opts.MaxCategoryRatio:
			continue
		case m.Length >= 4 && m.ExtraEdgeDensity < opts.MinDensity:
			continue
		}
		kept = append(kept, accepted{m: m, c: c})
	}
	exp.CyclesAccepted = len(kept)

	// Rank: shorter cycles first (they define the user need best), then
	// denser cycles.
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].m.Length != kept[j].m.Length {
			return kept[i].m.Length < kept[j].m.Length
		}
		if kept[i].m.ExtraEdgeDensity != kept[j].m.ExtraEdgeDensity {
			return kept[i].m.ExtraEdgeDensity > kept[j].m.ExtraEdgeDensity
		}
		return less(kept[i].c.Nodes, kept[j].c.Nodes)
	})

	inQuery := make(map[graph.NodeID]struct{}, len(queryArts))
	for _, qa := range queryArts {
		inQuery[qa] = struct{}{}
	}
	// Collect candidate features in cycle order, tracking how many
	// accepted cycles contain each article.
	type candidate struct {
		feature   Feature
		order     int // first appearance in cycle rank order
		frequency int // number of accepted cycles containing the article
	}
	byNode := make(map[graph.NodeID]*candidate)
	var ordered []*candidate
	for _, k := range kept {
		for _, n := range cycles.ArticlesOf(sub.Graph, k.c) {
			parent := sub.ToParent[n]
			if _, isQ := inQuery[parent]; isQ {
				continue
			}
			if cand, dup := byNode[parent]; dup {
				cand.frequency++
				continue
			}
			cand := &candidate{
				feature: Feature{
					Node:          parent,
					Title:         s.Snapshot.Name(parent),
					CycleLen:      k.m.Length,
					Density:       k.m.ExtraEdgeDensity,
					CategoryRatio: k.m.CategoryRatio,
				},
				order:     len(ordered),
				frequency: 1,
			}
			byNode[parent] = cand
			ordered = append(ordered, cand)
		}
	}
	if opts.RankByFrequency {
		sort.Slice(ordered, func(i, j int) bool {
			if ordered[i].frequency != ordered[j].frequency {
				return ordered[i].frequency > ordered[j].frequency
			}
			return ordered[i].order < ordered[j].order
		})
	}
	for _, cand := range ordered {
		if len(exp.Features) >= opts.MaxFeatures {
			break
		}
		exp.Features = append(exp.Features, cand.feature)
		if opts.IncludeRedirectAliases {
			for _, r := range s.Snapshot.RedirectsTo(cand.feature.Node) {
				if len(exp.Features) >= opts.MaxFeatures {
					break
				}
				alias := cand.feature
				alias.Node = r
				alias.Title = s.Snapshot.Name(r)
				exp.Features = append(exp.Features, alias)
			}
		}
	}
	return exp, nil
}

// ExpandNaive is the ablation baseline in the style of the individual-link
// approaches the paper contrasts with ([1, 2, 3] in its related work): the
// features are simply the articles directly linked from or to the query
// entities, ranked by how many query entities they touch, without any
// structural analysis. A done ctx returns ctx.Err() before any work.
func (s *System) ExpandNaive(ctx context.Context, keywords string, maxFeatures int) (*Expansion, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if maxFeatures <= 0 {
		maxFeatures = 10
	}
	queryArts := s.LinkKeywords(keywords)
	exp := &Expansion{Keywords: keywords, QueryArticles: queryArts}
	g := s.Snapshot.Graph()
	inQuery := make(map[graph.NodeID]struct{}, len(queryArts))
	for _, qa := range queryArts {
		inQuery[qa] = struct{}{}
	}
	votes := make(map[graph.NodeID]int)
	onlyLinks := func(k graph.EdgeKind) bool { return k != graph.Link }
	for _, qa := range queryArts {
		for _, nb := range g.Neighbors(qa, onlyLinks) {
			if _, isQ := inQuery[nb]; !isQ {
				votes[nb]++
			}
		}
	}
	type cand struct {
		id graph.NodeID
		v  int
	}
	ranked := make([]cand, 0, len(votes))
	for id, v := range votes {
		ranked = append(ranked, cand{id, v})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].v != ranked[j].v {
			return ranked[i].v > ranked[j].v
		}
		return ranked[i].id < ranked[j].id
	})
	for _, c := range ranked {
		exp.Features = append(exp.Features, Feature{
			Node:  c.id,
			Title: s.Snapshot.Name(c.id),
		})
		if len(exp.Features) >= maxFeatures {
			break
		}
	}
	return exp, nil
}

func less(a, b []graph.NodeID) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
